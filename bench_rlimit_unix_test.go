//go:build linux

package rum

import (
	"syscall"
	"testing"
)

// raiseFDLimit lifts the soft RLIMIT_NOFILE toward the hard limit so the
// cluster benchmark's ~1300 loopback TCP sockets fit under the common
// 1024-descriptor default. Best effort: if the hard limit itself is too
// low the benchmark fails with a clear dial error instead.
func raiseFDLimit(tb testing.TB, want uint64) {
	tb.Helper()
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		tb.Logf("rlimit: getrlimit: %v", err)
		return
	}
	if rl.Cur >= want {
		return
	}
	cur := rl.Cur
	rl.Cur = want
	if rl.Cur > rl.Max {
		// On Linux RLIM_INFINITY is ^uint64(0), so clamping to Max is
		// always safe.
		rl.Cur = rl.Max
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		tb.Logf("rlimit: setrlimit %d→%d: %v", cur, rl.Cur, err)
	}
}
