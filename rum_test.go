package rum

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// TestTCPDeploymentEndToEnd runs the full production path on loopback TCP:
// three emulated switches (wall-clock data plane) dial a RUM ProxyServer,
// which dials a stub controller. The controller installs a rule through
// RUM with general probing and must receive the fine-grained ack only
// after the rule is truly in the switch's data plane.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	clk := NewWallClock()
	network := netsim.New(clk)

	// Shrink the hardware profile's timescales so the wall-clock test
	// stays fast while preserving the lag behaviour.
	hp := switchsim.ProfileHP5406zl()
	hp.SyncPeriod = 50 * time.Millisecond
	hp.SyncStall = 2 * time.Millisecond
	hp.ModBase = 200 * time.Microsecond
	profs := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": hp,
		"s3": switchsim.ProfileSoftware(),
	}
	switches := make(map[string]*switchsim.Switch)
	for i, name := range []string{"s1", "s2", "s3"} {
		switches[name] = switchsim.New(name, uint64(i+1), profs[name], clk, network)
	}
	h1 := netsim.NewHost(network, "h1")
	h2 := netsim.NewHost(network, "h2")
	lat := 100 * time.Microsecond
	network.Connect(h1, h1.Port(), switches["s1"], 1, lat)
	network.Connect(switches["s1"], 2, switches["s2"], 1, lat)
	network.Connect(switches["s2"], 2, switches["s3"], 2, lat)
	network.Connect(switches["s1"], 3, switches["s3"], 3, lat)
	network.Connect(switches["s3"], 1, h2, h2.Port(), lat)

	// Stub controller: accepts RUM's per-switch connections, records acks.
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrlLn.Close()
	type ack struct {
		xid  uint32
		code uint16
		at   time.Time
	}
	var mu sync.Mutex
	var acks []ack
	var ctrlConns []transport.Conn
	dpids := make(map[transport.Conn]uint64)
	go func() {
		for {
			nc, err := ctrlLn.Accept()
			if err != nil {
				return
			}
			conn := transport.NewTCP(nc)
			mu.Lock()
			ctrlConns = append(ctrlConns, conn)
			mu.Unlock()
			conn.SetHandler(func(m of.Message) {
				if xid, code, ok := ParseAck(m); ok {
					mu.Lock()
					acks = append(acks, ack{xid: xid, code: code, at: time.Now()})
					mu.Unlock()
					return
				}
				if fr, ok := m.(*of.FeaturesReply); ok {
					mu.Lock()
					dpids[conn] = fr.DatapathID
					mu.Unlock()
				}
			})
			_ = conn.Send(&of.Hello{})
		}
	}()

	// RUM proxy.
	topo := NewTopology([]TopoLink{
		{A: "s1", APort: 2, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 2},
		{A: "s1", APort: 3, B: "s3", BPort: 3},
	})
	srv, err := NewProxyServer(ProxyConfig{
		RUM:      Config{Clock: clk, Technique: TechGeneral, RUMAware: true},
		Topology: topo,
		Switches: []SwitchIdentity{
			{DPID: 1, Name: "s1"}, {DPID: 2, Name: "s2"}, {DPID: 3, Name: "s3"},
		},
		ControllerAddr: ctrlLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxyLn.Close()
	go func() { _ = srv.Serve(proxyLn) }()

	// Switches dial RUM.
	for _, name := range []string{"s1", "s2", "s3"} {
		nc, err := net.Dial("tcp", proxyLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		switches[name].AttachConn(transport.NewTCP(nc))
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Attached() == 3 })
	// Let probe infrastructure sync into the data planes.
	time.Sleep(200 * time.Millisecond)

	// The "controller" (via its s2 connection) installs a rule on s2.
	mu.Lock()
	if len(ctrlConns) != 3 {
		mu.Unlock()
		t.Fatalf("controller has %d conns, want 3", len(ctrlConns))
	}
	mu.Unlock()

	// Find s2's controller-side conn by sending a features request on
	// each and matching the dpid (the permanent handler records replies).
	mu.Lock()
	for _, c := range ctrlConns {
		fr := &of.FeaturesRequest{}
		fr.SetXID(777)
		_ = c.Send(fr)
	}
	mu.Unlock()
	var s2conn transport.Conn
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for c, d := range dpids {
			if d == 2 {
				s2conn = c
			}
		}
		return s2conn != nil
	})

	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	m.SetNWDst(netip.MustParseAddr("10.1.0.1"))
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	fm.SetXID(4242)
	// Register the ack future before sending: the in-process path to the
	// same acknowledgment the wire carries.
	handle := srv.RUM().Watch("s2", fm.GetXID())
	sent := time.Now()
	if err := s2conn.Send(fm); err != nil {
		t.Fatal(err)
	}

	// Under a wall clock AwaitAck is an ordinary blocking call.
	awaitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := handle.AwaitAck(awaitCtx)
	if err != nil {
		t.Fatalf("AwaitAck: %v", err)
	}
	if res.Outcome != OutcomeInstalled || res.Switch != "s2" || res.XID != 4242 {
		t.Errorf("AwaitAck result = %+v, want installed s2/4242", res)
	}
	if res.Latency < 25*time.Millisecond {
		t.Errorf("future latency %v; suspiciously before the data-plane sync window", res.Latency)
	}

	// The wire-level ack (ParseAck compatibility path) arrives too.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, a := range acks {
			if a.xid == 4242 {
				return true
			}
		}
		return false
	})

	// The ack must not precede the data-plane activation.
	acts := switches["s2"].Activations()
	var activated bool
	for _, a := range acts {
		if a.XID == 4242 {
			activated = true
		}
	}
	if !activated {
		t.Fatal("rule acked but never activated in the data plane")
	}
	mu.Lock()
	var ackDelay time.Duration
	for _, a := range acks {
		if a.xid == 4242 {
			ackDelay = a.at.Sub(sent)
		}
	}
	mu.Unlock()
	// The sync period is 50ms, so a correct ack cannot arrive faster.
	if ackDelay < 25*time.Millisecond {
		t.Errorf("ack arrived after %v; suspiciously before the data-plane sync window", ackDelay)
	}
}

func waitFor(t *testing.T, max time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(max)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
