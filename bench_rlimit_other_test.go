//go:build !linux

package rum

import "testing"

// raiseFDLimit is a no-op where RLIMIT_NOFILE does not exist.
func raiseFDLimit(testing.TB, uint64) {}
