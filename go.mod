module rum

go 1.22
