package rum

// Tests of the redesigned public API: pluggable ack strategies (registry,
// per-switch overrides, user-supplied implementations), ack futures
// (Watch / AwaitAck / Done), the typed event stream, and the wire-level
// ParseAck compatibility path.

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// simTriangle is the paper's triangle topology on the deterministic sim
// clock, driven through the public API.
type simTriangle struct {
	clk      *sim.Sim
	r        *RUM
	switches map[string]*switchsim.Switch
	ctrl     map[string]transport.Conn
}

func newSimTriangle(t *testing.T, cfg Config) *simTriangle {
	t.Helper()
	clk := NewSimClock()
	network := netsim.New(clk)
	profs := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": switchsim.ProfileHP5406zl(),
		"s3": switchsim.ProfileSoftware(),
	}
	tri := &simTriangle{
		clk:      clk,
		switches: make(map[string]*switchsim.Switch),
		ctrl:     make(map[string]transport.Conn),
	}
	for i, name := range []string{"s1", "s2", "s3"} {
		tri.switches[name] = switchsim.New(name, uint64(i+1), profs[name], clk, network)
	}
	h1 := netsim.NewHost(network, "h1")
	h2 := netsim.NewHost(network, "h2")
	lat := 20 * time.Microsecond
	network.Connect(h1, h1.Port(), tri.switches["s1"], 1, lat)
	network.Connect(tri.switches["s1"], 2, tri.switches["s2"], 1, lat)
	network.Connect(tri.switches["s2"], 2, tri.switches["s3"], 2, lat)
	network.Connect(tri.switches["s1"], 3, tri.switches["s3"], 3, lat)
	network.Connect(tri.switches["s3"], 1, h2, h2.Port(), lat)

	cfg.Clock = clk
	cfg.RUMAware = true
	r, err := New(cfg, NewTopology([]TopoLink{
		{A: "s1", APort: 2, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 2},
		{A: "s1", APort: 3, B: "s3", BPort: 3},
	}))
	if err != nil {
		t.Fatal(err)
	}
	tri.r = r
	for name, sw := range tri.switches {
		ctrlTop, ctrlBottom := transport.Pipe(clk, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(clk, 100*time.Microsecond)
		sw.AttachConn(swSide)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			t.Fatal(err)
		}
		tri.ctrl[name] = ctrlTop
	}
	if err := r.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(700 * time.Millisecond)
	return tri
}

func testFlowMod(i int, xid uint32, outPort uint16) *of.FlowMod {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
	m.SetNWDst(netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}))
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: outPort}}}
	fm.SetXID(xid)
	return fm
}

// TestAwaitAckSimHappyPath: an ack future registered before the FlowMod
// resolves into a typed installed result, never before the rule's real
// data-plane activation; a follow-up deletion resolves as removed.
func TestAwaitAckSimHappyPath(t *testing.T) {
	tri := newSimTriangle(t, Config{Technique: TechSequential, ProbeEvery: 2})

	fm := testFlowMod(0, 1000, 2)
	h := tri.r.Watch("s2", fm.GetXID())
	if _, ok := h.Result(); ok {
		t.Fatal("future resolved before the FlowMod was even sent")
	}
	_ = tri.ctrl["s2"].Send(fm)
	tri.clk.RunFor(4 * time.Second)

	// The simulation has fully resolved the future; AwaitAck returns
	// without blocking.
	res, err := h.AwaitAck(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switch != "s2" || res.XID != 1000 {
		t.Errorf("result identity = %s/%d, want s2/1000", res.Switch, res.XID)
	}
	if res.Outcome != OutcomeInstalled {
		t.Errorf("outcome = %s, want installed", res.Outcome)
	}
	if res.Latency <= 0 || res.ConfirmedAt != res.IssuedAt+res.Latency {
		t.Errorf("inconsistent timing: issued=%v confirmed=%v latency=%v",
			res.IssuedAt, res.ConfirmedAt, res.Latency)
	}
	var activatedAt time.Duration
	for _, a := range tri.switches["s2"].Activations() {
		if a.XID == 1000 {
			activatedAt = a.At
		}
	}
	if activatedAt == 0 {
		t.Fatal("rule never activated in the data plane")
	}
	if res.ConfirmedAt < activatedAt {
		t.Errorf("ack future resolved at %v before activation at %v", res.ConfirmedAt, activatedAt)
	}

	// Deleting the rule resolves a second future as removed.
	del := &of.FlowMod{Command: of.FCDeleteStrict, Priority: 100, Match: fm.Match,
		BufferID: of.BufferNone, OutPort: of.PortNone}
	del.SetXID(1001)
	hDel := tri.r.Watch("s2", del.GetXID())
	_ = tri.ctrl["s2"].Send(del)
	tri.clk.RunFor(4 * time.Second)
	delRes, ok := hDel.Result()
	if !ok {
		t.Fatal("deletion future never resolved")
	}
	if delRes.Outcome != OutcomeRemoved {
		t.Errorf("deletion outcome = %s, want removed", delRes.Outcome)
	}
}

// TestAwaitAckContextCancel: a future whose modification never resolves
// honors context cancellation.
func TestAwaitAckContextCancel(t *testing.T) {
	tri := newSimTriangle(t, Config{Technique: TechSequential})
	h := tri.r.Watch("s2", 9999) // never sent
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.AwaitAck(ctx); err != context.Canceled {
		t.Fatalf("AwaitAck(cancelled ctx) err = %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := h.AwaitAck(ctx2); err != context.DeadlineExceeded {
		t.Fatalf("AwaitAck(deadline ctx) err = %v, want context.DeadlineExceeded", err)
	}
	if _, ok := h.Result(); ok {
		t.Fatal("unresolved future reported a result")
	}
}

// TestAwaitAckFallbackOutcome: a host-facing rule (no probe possible)
// resolves its future with the typed fallback outcome.
func TestAwaitAckFallbackOutcome(t *testing.T) {
	tri := newSimTriangle(t, Config{Technique: TechGeneral})
	fm := testFlowMod(1, 2000, 5) // port 5 is unwired: probe impossible
	h := tri.r.Watch("s2", fm.GetXID())
	_ = tri.ctrl["s2"].Send(fm)
	tri.clk.RunFor(3 * time.Second)
	res, ok := h.Result()
	if !ok {
		t.Fatal("fallback future never resolved")
	}
	if res.Outcome != OutcomeFallback {
		t.Errorf("outcome = %s, want fallback", res.Outcome)
	}
	if res.Code != AckFallback {
		t.Errorf("wire code = %d, want AckFallback", res.Code)
	}
}

// recordingStrategy is a user-supplied AckStrategy: it records every
// modification it is asked about and confirms through the timer-tick
// hook, exercising OnFlowMod, OnTick/ScheduleTick, and Confirm from
// outside the core package.
type recordingStrategy struct {
	mu   sync.Mutex
	seen map[string][]uint32 // switch → xids observed
}

func (s *recordingStrategy) Name() string { return "test-recording" }

func (s *recordingStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &recordingSwitch{parent: s, sc: sc}
}

func (s *recordingStrategy) xids(sw string) []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint32(nil), s.seen[sw]...)
}

type recordingSwitch struct {
	BaseSwitchStrategy
	parent *recordingStrategy
	sc     StrategyContext

	mu      sync.Mutex
	pending []*Update
}

func (t *recordingSwitch) OnFlowMod(u *Update) {
	t.parent.mu.Lock()
	t.parent.seen[t.sc.Switch()] = append(t.parent.seen[t.sc.Switch()], u.XID())
	t.parent.mu.Unlock()
	// Updates are pooled: storing one past OnFlowMod requires a
	// reference, released once the strategy is done with it.
	u.Retain()
	t.mu.Lock()
	t.pending = append(t.pending, u)
	t.mu.Unlock()
	t.sc.ScheduleTick(2 * time.Millisecond)
}

func (t *recordingSwitch) OnTick(now time.Duration) {
	t.mu.Lock()
	ready := t.pending
	t.pending = nil
	t.mu.Unlock()
	for _, u := range ready {
		t.sc.Confirm(u, OutcomeInstalled)
		u.Release()
	}
}

// lastRecording hands the most recently built registry instance to the
// test that configured it.
var lastRecording *recordingStrategy

func init() {
	RegisterStrategy("test-recording", func(Config) AckStrategy {
		s := &recordingStrategy{seen: make(map[string][]uint32)}
		lastRecording = s
		return s
	})
}

// TestPerSwitchStrategyOverride: a deployment mixing the barrier baseline
// with a user-registered strategy on one switch routes each switch's
// modifications to its own strategy.
func TestPerSwitchStrategyOverride(t *testing.T) {
	tri := newSimTriangle(t, Config{
		Technique: TechBarriers,
		PerSwitch: map[string]Technique{"s2": "test-recording"},
	})
	rec := lastRecording
	if rec == nil {
		t.Fatal("registry never built the test strategy")
	}

	h2 := tri.r.Watch("s2", 3000)
	h1 := tri.r.Watch("s1", 3001)
	_ = tri.ctrl["s2"].Send(testFlowMod(0, 3000, 2))
	_ = tri.ctrl["s1"].Send(testFlowMod(1, 3001, 2))
	tri.clk.RunFor(2 * time.Second)

	if got := rec.xids("s2"); len(got) != 1 || got[0] != 3000 {
		t.Errorf("custom strategy saw s2 xids %v, want [3000]", got)
	}
	if got := rec.xids("s1"); len(got) != 0 {
		t.Errorf("custom strategy saw s1 xids %v, want none (s1 uses the default)", got)
	}
	res2, ok := h2.Result()
	if !ok || res2.Outcome != OutcomeInstalled {
		t.Errorf("s2 future = %+v ok=%v, want installed via custom strategy", res2, ok)
	}
	if _, ok := h1.Result(); !ok {
		t.Error("s1 future never resolved via the default barrier strategy")
	}
}

// TestPerSwitchMixedProbing: the sequential deployment keeps working for
// the switches it serves when another switch is overridden to a
// control-plane technique — probe arrivals are routed across strategies.
func TestPerSwitchMixedProbing(t *testing.T) {
	tri := newSimTriangle(t, Config{
		Technique:  TechSequential,
		ProbeEvery: 2,
		PerSwitch:  map[string]Technique{"s3": TechTimeout},
	})
	h := tri.r.Watch("s2", 4000)
	_ = tri.ctrl["s2"].Send(testFlowMod(0, 4000, 2))
	h3 := tri.r.Watch("s3", 4001)
	_ = tri.ctrl["s3"].Send(testFlowMod(1, 4001, 2))
	tri.clk.RunFor(4 * time.Second)

	res, ok := h.Result()
	if !ok {
		t.Fatal("sequential-probed s2 never confirmed in the mixed deployment")
	}
	var activatedAt time.Duration
	for _, a := range tri.switches["s2"].Activations() {
		if a.XID == 4000 {
			activatedAt = a.At
		}
	}
	if res.ConfirmedAt < activatedAt {
		t.Errorf("s2 confirmed at %v before activation at %v", res.ConfirmedAt, activatedAt)
	}
	if _, ok := h3.Result(); !ok {
		t.Error("timeout-strategy s3 never confirmed")
	}
	_, probes, _ := tri.r.Stats()
	if probes == 0 {
		t.Error("sequential deployment sent no probes in the mixed setup")
	}
}

// TestEventStream: Subscribe delivers typed AckEvents and ProbeEvents
// carrying the same story as Stats, structured.
func TestEventStream(t *testing.T) {
	tri := newSimTriangle(t, Config{Technique: TechSequential, ProbeEvery: 2})
	sub := tri.r.Subscribe(1024)
	defer sub.Close()

	h := tri.r.Watch("s2", 5000)
	_ = tri.ctrl["s2"].Send(testFlowMod(0, 5000, 2))
	tri.clk.RunFor(4 * time.Second)
	if _, ok := h.Result(); !ok {
		t.Fatal("mod never confirmed")
	}

	var acks, probes int
	var ackEv AckEvent
	for drained := false; !drained; {
		select {
		case ev := <-sub.C:
			switch e := ev.(type) {
			case AckEvent:
				acks++
				if e.XID == 5000 {
					ackEv = e
				}
			case ProbeEvent:
				probes += e.Count
			}
		default:
			drained = true
		}
	}
	if acks == 0 || probes == 0 {
		t.Fatalf("event stream: acks=%d probes=%d, want both > 0", acks, probes)
	}
	if ackEv.XID != 5000 || ackEv.Switch != "s2" || ackEv.Outcome != OutcomeInstalled {
		t.Errorf("ack event = %+v, want installed s2/5000", ackEv)
	}
	if ackEv.Latency <= 0 || ackEv.At != ackEv.IssuedAt+ackEv.Latency {
		t.Errorf("ack event timing inconsistent: %+v", ackEv)
	}
	_, statProbes, _ := tri.r.Stats()
	if uint64(probes) != statProbes {
		t.Errorf("event stream counted %d probes, Stats reports %d", probes, statProbes)
	}
}

// TestParseAckWire keeps the wire-level compatibility path covered: a
// controller on the far side of a TCP proxy still decodes RUM acks from
// reserved-type OpenFlow errors.
func TestParseAckWire(t *testing.T) {
	ack := of.NewRUMAck(0xabcd, AckInstalled)
	xid, code, ok := ParseAck(ack)
	if !ok || xid != 0xabcd || code != AckInstalled {
		t.Fatalf("ParseAck(ack) = %v %v %v", xid, code, ok)
	}
	if _, _, ok := ParseAck(&of.BarrierReply{}); ok {
		t.Error("ParseAck accepted a barrier reply")
	}
	plain := &of.Error{ErrType: of.ErrTypeBadRequest, Code: 1}
	if _, _, ok := ParseAck(plain); ok {
		t.Error("ParseAck accepted a genuine error")
	}
}

// TestSubscriptionDropsWhenFull: a full subscriber buffer never blocks
// the update pipeline; overflow is counted.
func TestSubscriptionDropsWhenFull(t *testing.T) {
	tri := newSimTriangle(t, Config{Technique: TechSequential, ProbeEvery: 2})
	sub := tri.r.Subscribe(1) // tiny buffer, never drained during the run
	defer sub.Close()
	for i := 0; i < 10; i++ {
		_ = tri.ctrl["s2"].Send(testFlowMod(i, uint32(6000+i), 2))
	}
	tri.clk.RunFor(4 * time.Second)
	if sub.Dropped() == 0 {
		t.Error("expected dropped events on a full buffer")
	}
}
