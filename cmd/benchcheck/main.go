// Command benchcheck is the CI benchmark-regression gate: it compares a
// BENCH_results.json produced by the scale benchmarks (go test -bench,
// whose TestMain writes the file) against the checked-in
// BENCH_baseline.json and exits non-zero when a gated metric regressed
// beyond the tolerance.
//
// Only metrics present in the baseline are checked, so the baseline file
// doubles as the gate's configuration: omit a machine-dependent metric
// (e.g. a wall-clock latency tail) to keep it informational. Direction is
// inferred from the metric name:
//
//   - *_per_sec and *speedup: higher is better; fail below
//     baseline×(1−tolerance);
//   - *_ms: lower is better; fail above baseline×(1+tolerance);
//   - metrics containing "allocs" (allocs-per-op, allocs-per-confirmed-
//     update): lower is better; fail above baseline×(1+tolerance) — a
//     zero baseline therefore demands exactly zero allocations (the
//     zero-alloc wire- and ack-path acceptance gates);
//   - anything else (switches, updates, timers — workload sizes): fail
//     below baseline (the workload must not silently shrink).
//
// Six acceptance gates are separate and absolute, regardless of what the
// baseline says: the ShardContention speedup must stay ≥ -min-speedup,
// the WireThroughput coalescing speedup must stay ≥ -min-wire-speedup
// (the coalescing writer must beat the unbuffered path by ≥30%), the
// AckPath steady-state allocations per confirmed update must stay ≤
// -max-ack-allocs (zero: the ack hot path must not regain allocations),
// the FatTreeChurn simulated ack-latency p99 must stay ≤
// -max-fattree-p99-ms (100 ms — a ≥3x improvement over the 300.46 ms
// fixed-timeout tail this gate exists to keep fixed), the fault-wrapped
// churn's p99 must stay within -max-faultwrap-p99-ratio (1.05) of the
// plain churn's — the chaos layer must cost ≤5% when disabled — and the
// PlannerFatTree verify_ratio (HSA wall time over end-to-end plan wall
// time) must stay ≤ -max-planner-verify-ratio (0.20: transient
// verification must remain a thin slice of the update pipeline). The
// ratio is a fraction of a wall time, so the baseline's direction
// inference cannot gate it; it lives only here.
//
// Usage: go run ./cmd/benchcheck [-baseline BENCH_baseline.json]
// [-results BENCH_results.json] [-tolerance 0.20] [-min-speedup 2.0]
// [-min-wire-speedup 1.3] [-max-ack-allocs 0] [-max-fattree-p99-ms 100]
// [-max-faultwrap-p99-ratio 1.05] [-max-planner-verify-ratio 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchFile struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	return &f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
	resultsPath := flag.String("results", "BENCH_results.json", "fresh benchmark results file")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative regression per metric")
	minSpeedup := flag.Float64("min-speedup", 2.0,
		"absolute floor for the ShardContention sharded/unsharded speedup (0 disables)")
	minWireSpeedup := flag.Float64("min-wire-speedup", 1.3,
		"absolute floor for the WireThroughput coalesced/unbuffered speedup (0 disables)")
	maxAckAllocs := flag.Float64("max-ack-allocs", 0,
		"absolute ceiling for AckPath.allocs_per_confirmed_update (negative disables)")
	maxFatTreeP99 := flag.Float64("max-fattree-p99-ms", 100,
		"absolute ceiling for FatTreeChurn.p99_ack_ms in milliseconds (0 disables)")
	maxFaultWrapRatio := flag.Float64("max-faultwrap-p99-ratio", 1.05,
		"absolute ceiling for FatTreeChurnFaultWrapped.p99_ack_ms / FatTreeChurn.p99_ack_ms (0 disables)")
	maxVerifyRatio := flag.Float64("max-planner-verify-ratio", 0.20,
		"absolute ceiling for PlannerFatTree.verify_ratio, HSA verify wall over plan wall (0 disables)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal("loading baseline: %v", err)
	}
	results, err := load(*resultsPath)
	if err != nil {
		fatal("loading results: %v", err)
	}

	failures := 0
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		res, ok := results.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %s: benchmark missing from results\n", name)
			failures++
			continue
		}
		metrics := make([]string, 0, len(base))
		for m := range base {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			want := base[m]
			got, ok := res[m]
			if !ok {
				fmt.Printf("FAIL %s.%s: metric missing from results\n", name, m)
				failures++
				continue
			}
			switch {
			case strings.HasSuffix(m, "_per_sec") || strings.HasSuffix(m, "speedup"):
				floor := want * (1 - *tolerance)
				if got < floor {
					fmt.Printf("FAIL %s.%s: %.2f < %.2f (baseline %.2f − %.0f%%)\n",
						name, m, got, floor, want, *tolerance*100)
					failures++
					continue
				}
				fmt.Printf("ok   %s.%s: %.2f (baseline %.2f)\n", name, m, got, want)
			case strings.Contains(m, "allocs"):
				ceil := want * (1 + *tolerance)
				if got > ceil {
					fmt.Printf("FAIL %s.%s: %.4f allocs/op > %.4f (baseline %.4f + %.0f%%)\n",
						name, m, got, ceil, want, *tolerance*100)
					failures++
					continue
				}
				fmt.Printf("ok   %s.%s: %.4f allocs/op (baseline %.4f)\n", name, m, got, want)
			case strings.HasSuffix(m, "_ms"):
				ceil := want * (1 + *tolerance)
				if got > ceil {
					fmt.Printf("FAIL %s.%s: %.3f ms > %.3f ms (baseline %.3f + %.0f%%)\n",
						name, m, got, ceil, want, *tolerance*100)
					failures++
					continue
				}
				fmt.Printf("ok   %s.%s: %.3f ms (baseline %.3f)\n", name, m, got, want)
			default:
				if got < want {
					fmt.Printf("FAIL %s.%s: workload shrank: %.0f < baseline %.0f\n", name, m, got, want)
					failures++
					continue
				}
				fmt.Printf("ok   %s.%s: %.0f (baseline %.0f)\n", name, m, got, want)
			}
		}
	}

	if *minSpeedup > 0 {
		sc, ok := results.Benchmarks["ShardContention"]
		speedup, has := sc["speedup"]
		if !ok || !has {
			fmt.Println("FAIL ShardContention.speedup: missing from results")
			failures++
		} else if speedup < *minSpeedup {
			fmt.Printf("FAIL ShardContention.speedup: %.2fx < required %.2fx (sharded hot path regressed)\n",
				speedup, *minSpeedup)
			failures++
		} else {
			fmt.Printf("ok   ShardContention.speedup: %.2fx (≥ %.2fx required)\n", speedup, *minSpeedup)
		}
	}

	if *minWireSpeedup > 0 {
		wt, ok := results.Benchmarks["WireThroughput"]
		speedup, has := wt["coalesce_speedup"]
		if !ok || !has {
			fmt.Println("FAIL WireThroughput.coalesce_speedup: missing from results")
			failures++
		} else if speedup < *minWireSpeedup {
			fmt.Printf("FAIL WireThroughput.coalesce_speedup: %.2fx < required %.2fx (coalescing writer regressed)\n",
				speedup, *minWireSpeedup)
			failures++
		} else {
			fmt.Printf("ok   WireThroughput.coalesce_speedup: %.2fx (≥ %.2fx required)\n", speedup, *minWireSpeedup)
		}
	}

	if *maxAckAllocs >= 0 {
		ap, ok := results.Benchmarks["AckPath"]
		allocs, has := ap["allocs_per_confirmed_update"]
		if !ok || !has {
			fmt.Println("FAIL AckPath.allocs_per_confirmed_update: missing from results")
			failures++
		} else if allocs > *maxAckAllocs {
			fmt.Printf("FAIL AckPath.allocs_per_confirmed_update: %.4f > %.4f (ack hot path allocates again)\n",
				allocs, *maxAckAllocs)
			failures++
		} else {
			fmt.Printf("ok   AckPath.allocs_per_confirmed_update: %.4f (≤ %.4f required)\n", allocs, *maxAckAllocs)
		}
	}

	if *maxFatTreeP99 > 0 {
		ft, ok := results.Benchmarks["FatTreeChurn"]
		p99, has := ft["p99_ack_ms"]
		if !ok || !has {
			fmt.Println("FAIL FatTreeChurn.p99_ack_ms: missing from results")
			failures++
		} else if p99 > *maxFatTreeP99 {
			fmt.Printf("FAIL FatTreeChurn.p99_ack_ms: %.2f ms > %.2f ms (ack tail-latency fix regressed)\n",
				p99, *maxFatTreeP99)
			failures++
		} else {
			fmt.Printf("ok   FatTreeChurn.p99_ack_ms: %.2f ms (≤ %.2f ms required)\n", p99, *maxFatTreeP99)
		}
	}

	if *maxFaultWrapRatio > 0 {
		plain, okPlain := results.Benchmarks["FatTreeChurn"]["p99_ack_ms"]
		wrapped, okWrapped := results.Benchmarks["FatTreeChurnFaultWrapped"]["p99_ack_ms"]
		switch {
		case !okPlain || !okWrapped:
			fmt.Println("FAIL FatTreeChurnFaultWrapped p99 ratio: metric missing from results")
			failures++
		case plain <= 0:
			fmt.Println("FAIL FatTreeChurnFaultWrapped p99 ratio: FatTreeChurn.p99_ack_ms is zero")
			failures++
		case wrapped/plain > *maxFaultWrapRatio:
			fmt.Printf("FAIL FatTreeChurnFaultWrapped p99 ratio: %.3f > %.2f (disabled fault wrapper is not free)\n",
				wrapped/plain, *maxFaultWrapRatio)
			failures++
		default:
			fmt.Printf("ok   FatTreeChurnFaultWrapped p99 ratio: %.3f (≤ %.2f required)\n",
				wrapped/plain, *maxFaultWrapRatio)
		}
	}

	if *maxVerifyRatio > 0 {
		pf, ok := results.Benchmarks["PlannerFatTree"]
		ratio, has := pf["verify_ratio"]
		if !ok || !has {
			fmt.Println("FAIL PlannerFatTree.verify_ratio: missing from results")
			failures++
		} else if ratio > *maxVerifyRatio {
			fmt.Printf("FAIL PlannerFatTree.verify_ratio: %.3f > %.2f (HSA verification dominates the update pipeline)\n",
				ratio, *maxVerifyRatio)
			failures++
		} else {
			fmt.Printf("ok   PlannerFatTree.verify_ratio: %.3f (≤ %.2f required)\n", ratio, *maxVerifyRatio)
		}
	}

	if failures > 0 {
		fatal("%d benchmark regression(s); refresh BENCH_baseline.json only for intentional changes (see README)", failures)
	}
	fmt.Println("benchcheck: all gated metrics within tolerance")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
