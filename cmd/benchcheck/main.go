// Command benchcheck is the CI benchmark-regression gate: it compares a
// BENCH_results.json produced by the scale benchmarks (go test -bench,
// whose TestMain writes the file) against the checked-in
// BENCH_baseline.json and exits non-zero when a gated metric regressed
// beyond the tolerance.
//
// Only metrics present in the baseline are checked, so the baseline file
// doubles as the gate's configuration: omit a machine-dependent metric
// (e.g. a wall-clock latency tail) to keep it informational. A benchmark
// named in the baseline but absent from the results is itself a failure —
// a benchmark that silently stops running must not pass the gate.
// Direction is inferred from the metric name:
//
//   - *_per_sec and *speedup: higher is better; fail below
//     baseline×(1−tolerance);
//   - *_ms: lower is better; fail above baseline×(1+tolerance);
//   - metrics containing "allocs" (allocs-per-op, allocs-per-confirmed-
//     update): lower is better; fail above baseline×(1+tolerance) — a
//     zero baseline therefore demands exactly zero allocations (the
//     zero-alloc wire- and ack-path acceptance gates);
//   - anything else (switches, updates, timers — workload sizes): fail
//     below baseline (the workload must not silently shrink).
//
// Eleven acceptance gates are separate and absolute, regardless of what the
// baseline says: the ShardContention speedup must stay ≥ -min-speedup,
// the WireThroughput coalescing speedup must stay ≥ -min-wire-speedup
// (the coalescing writer must beat the unbuffered path by ≥30%), the
// AckPath steady-state allocations per confirmed update must stay ≤
// -max-ack-allocs (zero: the ack hot path must not regain allocations),
// the FatTreeChurn simulated ack-latency p99 must stay ≤
// -max-fattree-p99-ms (100 ms — a ≥3x improvement over the 300.46 ms
// fixed-timeout tail this gate exists to keep fixed), the fault-wrapped
// churn's p99 must stay within -max-faultwrap-p99-ratio (1.05) of the
// plain churn's — the chaos layer must cost ≤5% when disabled — the
// PlannerFatTree verify_ratio (HSA wall time over end-to-end plan wall
// time) must stay ≤ -max-planner-verify-ratio (0.20: transient
// verification must remain a thin slice of the update pipeline), the
// Cluster handoff-recovery p99 (proxy crash → re-dial → adoption → first
// confirmed update) must stay ≤ -max-handoff-recovery-ms — the same bound
// also covers the ClusterRescue rescue-completion p99 (crash → adoption →
// every in-flight future truthfully resolved from the replicated intent
// journal), and the ClusterRescue rescue_failed_pct (journaled futures
// failed despite a reachable switch) must stay ≤ -max-rescue-failed-pct,
// zero by default — the truthful-resolution contract — the Overload
// shed_pct (updates refused with ErrOverloaded under the congested-
// control-channel workload, BenchmarkOverload) must stay ≤
// -max-overload-shed-pct — admission control may refuse work under
// congestion collapse, but a creeping refusal rate means the
// coalescing/degradation machinery stopped absorbing load — the
// Aggregation compression_ratio (logical rules over physical rules at
// the compressible workload's peak) must stay ≥ -min-aggregation-ratio
// (1.5), with its hsa_counterexamples, false_install_acks and
// false_remove_acks all exactly zero — aggregation must pay for itself
// without ever lying to the controller — and the
// 4-member cluster's aggregate confirmed rate must stay ≥
// -min-cluster-speedup × the single-proxy AckPath rate — the scale-out
// acceptance claim. Parallel speedup is physically impossible on a
// starved machine, so that last gate only enforces when the recorded
// Cluster.cpus is ≥ -min-cluster-cpus (default 8); below that it prints
// the measured ratio informationally.
//
// Usage: go run ./cmd/benchcheck [-baseline BENCH_baseline.json]
// [-results BENCH_results.json] [-tolerance 0.20] [-min-speedup 2.0]
// [-min-wire-speedup 1.3] [-max-ack-allocs 0] [-max-fattree-p99-ms 100]
// [-max-faultwrap-p99-ratio 1.05] [-max-planner-verify-ratio 0.20]
// [-min-cluster-speedup 2.0] [-min-cluster-cpus 8]
// [-max-handoff-recovery-ms 250] [-max-overload-shed-pct 15]
// [-max-rescue-failed-pct 0] [-min-aggregation-ratio 1.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type benchFile struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no \"benchmarks\" object", path)
	}
	return &f, nil
}

// gateOpts holds the absolute acceptance thresholds; zero (or negative,
// where zero is meaningful) disables the corresponding gate.
type gateOpts struct {
	tolerance         float64
	minSpeedup        float64
	minWireSpeedup    float64
	maxAckAllocs      float64
	maxFatTreeP99     float64
	maxFaultWrapRatio float64
	maxVerifyRatio    float64
	minClusterSpeedup float64
	minClusterCPUs    float64
	maxHandoffMS      float64
	maxOverloadShed   float64
	maxRescueFailed   float64
	minAggRatio       float64
}

// check runs every baseline comparison and absolute gate, writing one
// line per verdict to w, and returns the number of failures. It is the
// whole gate; main only parses flags, loads the files, and exits 1 when
// the count is non-zero.
func check(baseline, results *benchFile, opts gateOpts, w io.Writer) int {
	failures := 0
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		res, ok := results.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: benchmark missing from results\n", name)
			failures++
			continue
		}
		metrics := make([]string, 0, len(base))
		for m := range base {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			want := base[m]
			got, ok := res[m]
			if !ok {
				fmt.Fprintf(w, "FAIL %s.%s: metric missing from results\n", name, m)
				failures++
				continue
			}
			switch {
			case strings.HasSuffix(m, "_per_sec") || strings.HasSuffix(m, "speedup"):
				floor := want * (1 - opts.tolerance)
				if got < floor {
					fmt.Fprintf(w, "FAIL %s.%s: %.2f < %.2f (baseline %.2f − %.0f%%)\n",
						name, m, got, floor, want, opts.tolerance*100)
					failures++
					continue
				}
				fmt.Fprintf(w, "ok   %s.%s: %.2f (baseline %.2f)\n", name, m, got, want)
			case strings.Contains(m, "allocs"):
				ceil := want * (1 + opts.tolerance)
				if got > ceil {
					fmt.Fprintf(w, "FAIL %s.%s: %.4f allocs/op > %.4f (baseline %.4f + %.0f%%)\n",
						name, m, got, ceil, want, opts.tolerance*100)
					failures++
					continue
				}
				fmt.Fprintf(w, "ok   %s.%s: %.4f allocs/op (baseline %.4f)\n", name, m, got, want)
			case strings.HasSuffix(m, "_ms"):
				ceil := want * (1 + opts.tolerance)
				if got > ceil {
					fmt.Fprintf(w, "FAIL %s.%s: %.3f ms > %.3f ms (baseline %.3f + %.0f%%)\n",
						name, m, got, ceil, want, opts.tolerance*100)
					failures++
					continue
				}
				fmt.Fprintf(w, "ok   %s.%s: %.3f ms (baseline %.3f)\n", name, m, got, want)
			default:
				if got < want {
					fmt.Fprintf(w, "FAIL %s.%s: workload shrank: %.0f < baseline %.0f\n", name, m, got, want)
					failures++
					continue
				}
				fmt.Fprintf(w, "ok   %s.%s: %.0f (baseline %.0f)\n", name, m, got, want)
			}
		}
	}

	// floorGate enforces results.Benchmarks[bench][metric] ≥ min.
	floorGate := func(bench, metric string, min float64, what string) {
		got, has := results.Benchmarks[bench][metric]
		switch {
		case !has:
			fmt.Fprintf(w, "FAIL %s.%s: missing from results\n", bench, metric)
			failures++
		case got < min:
			fmt.Fprintf(w, "FAIL %s.%s: %.2fx < required %.2fx (%s)\n", bench, metric, got, min, what)
			failures++
		default:
			fmt.Fprintf(w, "ok   %s.%s: %.2fx (≥ %.2fx required)\n", bench, metric, got, min)
		}
	}

	if opts.minSpeedup > 0 {
		floorGate("ShardContention", "speedup", opts.minSpeedup, "sharded hot path regressed")
	}
	if opts.minWireSpeedup > 0 {
		floorGate("WireThroughput", "coalesce_speedup", opts.minWireSpeedup, "coalescing writer regressed")
	}

	if opts.maxAckAllocs >= 0 {
		allocs, has := results.Benchmarks["AckPath"]["allocs_per_confirmed_update"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL AckPath.allocs_per_confirmed_update: missing from results")
			failures++
		case allocs > opts.maxAckAllocs:
			fmt.Fprintf(w, "FAIL AckPath.allocs_per_confirmed_update: %.4f > %.4f (ack hot path allocates again)\n",
				allocs, opts.maxAckAllocs)
			failures++
		default:
			fmt.Fprintf(w, "ok   AckPath.allocs_per_confirmed_update: %.4f (≤ %.4f required)\n",
				allocs, opts.maxAckAllocs)
		}
	}

	if opts.maxFatTreeP99 > 0 {
		p99, has := results.Benchmarks["FatTreeChurn"]["p99_ack_ms"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL FatTreeChurn.p99_ack_ms: missing from results")
			failures++
		case p99 > opts.maxFatTreeP99:
			fmt.Fprintf(w, "FAIL FatTreeChurn.p99_ack_ms: %.2f ms > %.2f ms (ack tail-latency fix regressed)\n",
				p99, opts.maxFatTreeP99)
			failures++
		default:
			fmt.Fprintf(w, "ok   FatTreeChurn.p99_ack_ms: %.2f ms (≤ %.2f ms required)\n", p99, opts.maxFatTreeP99)
		}
	}

	if opts.maxFaultWrapRatio > 0 {
		plain, okPlain := results.Benchmarks["FatTreeChurn"]["p99_ack_ms"]
		wrapped, okWrapped := results.Benchmarks["FatTreeChurnFaultWrapped"]["p99_ack_ms"]
		switch {
		case !okPlain || !okWrapped:
			fmt.Fprintln(w, "FAIL FatTreeChurnFaultWrapped p99 ratio: metric missing from results")
			failures++
		case plain <= 0:
			fmt.Fprintln(w, "FAIL FatTreeChurnFaultWrapped p99 ratio: FatTreeChurn.p99_ack_ms is zero")
			failures++
		case wrapped/plain > opts.maxFaultWrapRatio:
			fmt.Fprintf(w, "FAIL FatTreeChurnFaultWrapped p99 ratio: %.3f > %.2f (disabled fault wrapper is not free)\n",
				wrapped/plain, opts.maxFaultWrapRatio)
			failures++
		default:
			fmt.Fprintf(w, "ok   FatTreeChurnFaultWrapped p99 ratio: %.3f (≤ %.2f required)\n",
				wrapped/plain, opts.maxFaultWrapRatio)
		}
	}

	if opts.maxVerifyRatio > 0 {
		ratio, has := results.Benchmarks["PlannerFatTree"]["verify_ratio"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL PlannerFatTree.verify_ratio: missing from results")
			failures++
		case ratio > opts.maxVerifyRatio:
			fmt.Fprintf(w, "FAIL PlannerFatTree.verify_ratio: %.3f > %.2f (HSA verification dominates the update pipeline)\n",
				ratio, opts.maxVerifyRatio)
			failures++
		default:
			fmt.Fprintf(w, "ok   PlannerFatTree.verify_ratio: %.3f (≤ %.2f required)\n", ratio, opts.maxVerifyRatio)
		}
	}

	if opts.maxHandoffMS > 0 {
		// One recovery bound covers both crash paths: the plain handoff
		// (crash → re-dial → adoption → first fresh confirmed update) and
		// the rescue sweep (crash → adoption → every in-flight future
		// truthfully resolved).
		for _, g := range []struct{ bench, metric, what string }{
			{"Cluster", "handoff_recovery_p99_ms", "proxy-crash recovery regressed"},
			{"ClusterRescue", "rescue_completion_p99_ms", "crash-rescue completion regressed"},
		} {
			p99, has := results.Benchmarks[g.bench][g.metric]
			switch {
			case !has:
				fmt.Fprintf(w, "FAIL %s.%s: missing from results\n", g.bench, g.metric)
				failures++
			case p99 > opts.maxHandoffMS:
				fmt.Fprintf(w, "FAIL %s.%s: %.2f ms > %.2f ms (%s)\n",
					g.bench, g.metric, p99, opts.maxHandoffMS, g.what)
				failures++
			default:
				fmt.Fprintf(w, "ok   %s.%s: %.2f ms (≤ %.2f ms required)\n",
					g.bench, g.metric, p99, opts.maxHandoffMS)
			}
		}
	}

	if opts.maxRescueFailed >= 0 {
		pct, has := results.Benchmarks["ClusterRescue"]["rescue_failed_pct"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL ClusterRescue.rescue_failed_pct: missing from results")
			failures++
		case pct > opts.maxRescueFailed:
			fmt.Fprintf(w, "FAIL ClusterRescue.rescue_failed_pct: %.2f%% > %.2f%% (journaled futures failed despite reachable switches)\n",
				pct, opts.maxRescueFailed)
			failures++
		default:
			fmt.Fprintf(w, "ok   ClusterRescue.rescue_failed_pct: %.2f%% (≤ %.2f%% required)\n",
				pct, opts.maxRescueFailed)
		}
	}

	if opts.maxOverloadShed > 0 {
		pct, has := results.Benchmarks["Overload"]["shed_pct"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL Overload.shed_pct: missing from results")
			failures++
		case pct > opts.maxOverloadShed:
			fmt.Fprintf(w, "FAIL Overload.shed_pct: %.2f%% > %.2f%% (overload layer sheds too much under congestion)\n",
				pct, opts.maxOverloadShed)
			failures++
		default:
			fmt.Fprintf(w, "ok   Overload.shed_pct: %.2f%% (≤ %.2f%% required)\n", pct, opts.maxOverloadShed)
		}
	}

	if opts.minAggRatio > 0 {
		// The aggregation gate is compound: the compressible workload must
		// actually compress, and it must do so soundly — the equivalence
		// verifier and the activation-log audit both report zero failures.
		ratio, has := results.Benchmarks["Aggregation"]["compression_ratio"]
		switch {
		case !has:
			fmt.Fprintln(w, "FAIL Aggregation.compression_ratio: missing from results")
			failures++
		case ratio < opts.minAggRatio:
			fmt.Fprintf(w, "FAIL Aggregation.compression_ratio: %.2fx < required %.2fx (incremental FIB aggregation regressed)\n",
				ratio, opts.minAggRatio)
			failures++
		default:
			fmt.Fprintf(w, "ok   Aggregation.compression_ratio: %.2fx (≥ %.2fx required)\n", ratio, opts.minAggRatio)
		}
		for _, m := range []string{"hsa_counterexamples", "false_install_acks", "false_remove_acks"} {
			got, has := results.Benchmarks["Aggregation"][m]
			switch {
			case !has:
				fmt.Fprintf(w, "FAIL Aggregation.%s: missing from results\n", m)
				failures++
			case got != 0:
				fmt.Fprintf(w, "FAIL Aggregation.%s: %.0f (aggregation soundness demands exactly zero)\n", m, got)
				failures++
			default:
				fmt.Fprintf(w, "ok   Aggregation.%s: 0\n", m)
			}
		}
	}

	if opts.minClusterSpeedup > 0 {
		agg, okAgg := results.Benchmarks["Cluster"]["aggregate_confirmed_per_sec"]
		single, okSingle := results.Benchmarks["AckPath"]["confirmed_per_sec"]
		cpus := results.Benchmarks["Cluster"]["cpus"]
		switch {
		case !okAgg || !okSingle:
			fmt.Fprintln(w, "FAIL Cluster aggregate speedup: Cluster.aggregate_confirmed_per_sec or AckPath.confirmed_per_sec missing from results")
			failures++
		case single <= 0:
			fmt.Fprintln(w, "FAIL Cluster aggregate speedup: AckPath.confirmed_per_sec is zero")
			failures++
		case cpus < opts.minClusterCPUs:
			// A 4-member cluster cannot outrun one proxy without cores to
			// run on; report the ratio but do not gate on a starved box.
			fmt.Fprintf(w, "note Cluster aggregate speedup: %.2fx on %.0f CPUs (gate needs ≥ %.0f CPUs; not enforced)\n",
				agg/single, cpus, opts.minClusterCPUs)
		case agg/single < opts.minClusterSpeedup:
			fmt.Fprintf(w, "FAIL Cluster aggregate speedup: %.2fx < required %.2fx (sharded scale-out regressed)\n",
				agg/single, opts.minClusterSpeedup)
			failures++
		default:
			fmt.Fprintf(w, "ok   Cluster aggregate speedup: %.2fx (≥ %.2fx required)\n",
				agg/single, opts.minClusterSpeedup)
		}
	}

	return failures
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
	resultsPath := flag.String("results", "BENCH_results.json", "fresh benchmark results file")
	opts := gateOpts{}
	flag.Float64Var(&opts.tolerance, "tolerance", 0.20, "allowed relative regression per metric")
	flag.Float64Var(&opts.minSpeedup, "min-speedup", 2.0,
		"absolute floor for the ShardContention sharded/unsharded speedup (0 disables)")
	flag.Float64Var(&opts.minWireSpeedup, "min-wire-speedup", 1.3,
		"absolute floor for the WireThroughput coalesced/unbuffered speedup (0 disables)")
	flag.Float64Var(&opts.maxAckAllocs, "max-ack-allocs", 0,
		"absolute ceiling for AckPath.allocs_per_confirmed_update (negative disables)")
	flag.Float64Var(&opts.maxFatTreeP99, "max-fattree-p99-ms", 100,
		"absolute ceiling for FatTreeChurn.p99_ack_ms in milliseconds (0 disables)")
	flag.Float64Var(&opts.maxFaultWrapRatio, "max-faultwrap-p99-ratio", 1.05,
		"absolute ceiling for FatTreeChurnFaultWrapped.p99_ack_ms / FatTreeChurn.p99_ack_ms (0 disables)")
	flag.Float64Var(&opts.maxVerifyRatio, "max-planner-verify-ratio", 0.20,
		"absolute ceiling for PlannerFatTree.verify_ratio, HSA verify wall over plan wall (0 disables)")
	flag.Float64Var(&opts.minClusterSpeedup, "min-cluster-speedup", 2.0,
		"absolute floor for Cluster.aggregate_confirmed_per_sec / AckPath.confirmed_per_sec (0 disables)")
	flag.Float64Var(&opts.minClusterCPUs, "min-cluster-cpus", 8,
		"CPUs the cluster speedup gate needs before it enforces (below: informational)")
	flag.Float64Var(&opts.maxHandoffMS, "max-handoff-recovery-ms", 250,
		"absolute ceiling for Cluster.handoff_recovery_p99_ms in milliseconds (0 disables)")
	flag.Float64Var(&opts.maxOverloadShed, "max-overload-shed-pct", 15,
		"absolute ceiling for Overload.shed_pct, updates refused with ErrOverloaded under the congested-channel workload (0 disables)")
	flag.Float64Var(&opts.maxRescueFailed, "max-rescue-failed-pct", 0,
		"absolute ceiling for ClusterRescue.rescue_failed_pct — journaled in-flight futures failed despite a reachable switch (negative disables; the default demands exactly zero)")
	flag.Float64Var(&opts.minAggRatio, "min-aggregation-ratio", 1.5,
		"absolute floor for Aggregation.compression_ratio; also demands zero HSA counterexamples and zero false acks (0 disables)")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal("loading baseline: %v", err)
	}
	results, err := load(*resultsPath)
	if err != nil {
		fatal("loading results: %v", err)
	}
	if failures := check(baseline, results, opts, os.Stdout); failures > 0 {
		fatal("%d benchmark regression(s); refresh BENCH_baseline.json only for intentional changes (see README)", failures)
	}
	fmt.Println("benchcheck: all gated metrics within tolerance")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
