package main

import (
	"io"
	"strings"
	"testing"
)

// noAbsolute disables every absolute gate so a test can exercise one
// comparison in isolation.
var noAbsolute = gateOpts{
	tolerance:       0.20,
	maxAckAllocs:    -1, // zero means "enforce at zero", so use -1 to disable
	maxRescueFailed: -1, // same zero-is-meaningful convention
}

func bf(m map[string]map[string]float64) *benchFile { return &benchFile{Benchmarks: m} }

// TestMissingBenchmarkFails is the gate's most important property: a
// benchmark named in the baseline that never ran — deleted, renamed, or
// filtered out of the bench invocation — must fail the check rather than
// vacuously pass it.
func TestMissingBenchmarkFails(t *testing.T) {
	baseline := bf(map[string]map[string]float64{
		"AckPath": {"confirmed_per_sec": 1000},
	})
	results := bf(map[string]map[string]float64{
		"Cluster": {"aggregate_confirmed_per_sec": 5000},
	})
	var out strings.Builder
	if got := check(baseline, results, noAbsolute, &out); got != 1 {
		t.Fatalf("check = %d failures, want 1\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "FAIL AckPath: benchmark missing from results") {
		t.Fatalf("missing-benchmark verdict not reported:\n%s", out.String())
	}
}

func TestMissingMetricFails(t *testing.T) {
	baseline := bf(map[string]map[string]float64{
		"AckPath": {"confirmed_per_sec": 1000, "allocs_per_confirmed_update": 0},
	})
	results := bf(map[string]map[string]float64{
		"AckPath": {"confirmed_per_sec": 2000},
	})
	var out strings.Builder
	if got := check(baseline, results, noAbsolute, &out); got != 1 {
		t.Fatalf("check = %d failures, want 1\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "FAIL AckPath.allocs_per_confirmed_update: metric missing") {
		t.Fatalf("missing-metric verdict not reported:\n%s", out.String())
	}
}

// TestDirectionInference pins the name-based gating directions: rates and
// speedups are floors, milliseconds and allocs are ceilings, and bare
// metrics are workload floors.
func TestDirectionInference(t *testing.T) {
	baseline := bf(map[string]map[string]float64{
		"B": {
			"x_per_sec":  1000, // floor at 800 with 20% tolerance
			"speedup":    2.0,  // floor at 1.6
			"p99_ms":     10,   // ceiling at 12
			"allocs_fit": 0,    // zero baseline: ceiling stays 0
			"switches":   320,  // workload floor, no tolerance
		},
	})
	pass := bf(map[string]map[string]float64{
		"B": {"x_per_sec": 900, "speedup": 1.7, "p99_ms": 11, "allocs_fit": 0, "switches": 320},
	})
	if got := check(baseline, pass, noAbsolute, io.Discard); got != 0 {
		t.Fatalf("healthy results failed %d gates", got)
	}
	fail := bf(map[string]map[string]float64{
		"B": {"x_per_sec": 700, "speedup": 1.5, "p99_ms": 13, "allocs_fit": 0.01, "switches": 319},
	})
	var out strings.Builder
	if got := check(baseline, fail, noAbsolute, &out); got != 5 {
		t.Fatalf("check = %d failures, want 5\n%s", got, out.String())
	}
}

// TestClusterSpeedupGate covers the scale-out acceptance gate, including
// its CPU guard: a 4-member cluster cannot beat one proxy on a starved
// machine, so below min-cluster-cpus the ratio is informational.
func TestClusterSpeedupGate(t *testing.T) {
	opts := noAbsolute
	opts.minClusterSpeedup = 2.0
	opts.minClusterCPUs = 8
	mk := func(agg, single, cpus float64) *benchFile {
		return bf(map[string]map[string]float64{
			"Cluster": {"aggregate_confirmed_per_sec": agg, "cpus": cpus},
			"AckPath": {"confirmed_per_sec": single},
		})
	}
	empty := bf(map[string]map[string]float64{})

	if got := check(empty, mk(2000, 1000, 8), opts, io.Discard); got != 0 {
		t.Fatalf("2.0x on 8 cpus: %d failures, want 0", got)
	}
	var out strings.Builder
	if got := check(empty, mk(1900, 1000, 8), opts, &out); got != 1 {
		t.Fatalf("1.9x on 8 cpus: %d failures, want 1\n%s", got, out.String())
	}
	out.Reset()
	if got := check(empty, mk(600, 1000, 1), opts, &out); got != 0 {
		t.Fatalf("starved box must not enforce: %d failures\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "not enforced") {
		t.Fatalf("starved box should report the unenforced ratio:\n%s", out.String())
	}
	out.Reset()
	if got := check(empty, mk(2000, 0, 8), opts, &out); got != 1 {
		t.Fatalf("zero AckPath rate: %d failures, want 1\n%s", got, out.String())
	}
	out.Reset()
	if got := check(empty, bf(map[string]map[string]float64{"AckPath": {"confirmed_per_sec": 1000}}), opts, &out); got != 1 {
		t.Fatalf("missing Cluster benchmark: %d failures, want 1\n%s", got, out.String())
	}
}

func TestHandoffRecoveryGate(t *testing.T) {
	opts := noAbsolute
	opts.maxHandoffMS = 250
	empty := bf(map[string]map[string]float64{})
	ok := bf(map[string]map[string]float64{
		"Cluster":       {"handoff_recovery_p99_ms": 40},
		"ClusterRescue": {"rescue_completion_p99_ms": 60},
	})
	if got := check(empty, ok, opts, io.Discard); got != 0 {
		t.Fatalf("40/60ms recovery failed: %d", got)
	}
	slow := bf(map[string]map[string]float64{
		"Cluster":       {"handoff_recovery_p99_ms": 300},
		"ClusterRescue": {"rescue_completion_p99_ms": 60},
	})
	if got := check(empty, slow, opts, io.Discard); got != 1 {
		t.Fatalf("300ms recovery: %d failures, want 1", got)
	}
	slowRescue := bf(map[string]map[string]float64{
		"Cluster":       {"handoff_recovery_p99_ms": 40},
		"ClusterRescue": {"rescue_completion_p99_ms": 300},
	})
	if got := check(empty, slowRescue, opts, io.Discard); got != 1 {
		t.Fatalf("300ms rescue completion: %d failures, want 1", got)
	}
	if got := check(empty, empty, opts, io.Discard); got != 2 {
		t.Fatalf("missing handoff+rescue metrics: %d failures, want 2", got)
	}
}

// TestRescueFailedGate pins the truthful-resolution gate at its default
// zero threshold: any journaled future failed despite a reachable switch
// fails the check, as does a missing metric.
func TestRescueFailedGate(t *testing.T) {
	opts := noAbsolute
	opts.maxRescueFailed = 0
	empty := bf(map[string]map[string]float64{})
	clean := bf(map[string]map[string]float64{"ClusterRescue": {"rescue_failed_pct": 0}})
	if got := check(empty, clean, opts, io.Discard); got != 0 {
		t.Fatalf("zero rescue failures failed the gate: %d", got)
	}
	dirty := bf(map[string]map[string]float64{"ClusterRescue": {"rescue_failed_pct": 0.5}})
	if got := check(empty, dirty, opts, io.Discard); got != 1 {
		t.Fatalf("0.5%% rescue failures: %d failures, want 1", got)
	}
	if got := check(empty, empty, opts, io.Discard); got != 1 {
		t.Fatalf("missing rescue_failed_pct: %d failures, want 1", got)
	}
}

func TestOverloadShedGate(t *testing.T) {
	opts := noAbsolute
	opts.maxOverloadShed = 15
	empty := bf(map[string]map[string]float64{})
	ok := bf(map[string]map[string]float64{"Overload": {"shed_pct": 6.7}})
	if got := check(empty, ok, opts, io.Discard); got != 0 {
		t.Fatalf("6.7%% shed failed: %d", got)
	}
	heavy := bf(map[string]map[string]float64{"Overload": {"shed_pct": 22}})
	if got := check(empty, heavy, opts, io.Discard); got != 1 {
		t.Fatalf("22%% shed: %d failures, want 1", got)
	}
	if got := check(empty, empty, opts, io.Discard); got != 1 {
		t.Fatalf("missing shed metric: %d failures, want 1", got)
	}
}

// TestZeroAllocGate pins the absolute AckPath alloc gate at its default
// zero threshold: any allocation fails, and a missing metric fails.
func TestZeroAllocGate(t *testing.T) {
	opts := noAbsolute
	opts.maxAckAllocs = 0
	empty := bf(map[string]map[string]float64{})
	clean := bf(map[string]map[string]float64{"AckPath": {"allocs_per_confirmed_update": 0}})
	if got := check(empty, clean, opts, io.Discard); got != 0 {
		t.Fatalf("zero allocs failed: %d", got)
	}
	dirty := bf(map[string]map[string]float64{"AckPath": {"allocs_per_confirmed_update": 0.02}})
	if got := check(empty, dirty, opts, io.Discard); got != 1 {
		t.Fatalf("0.02 allocs: %d failures, want 1", got)
	}
}

// TestAggregationGate covers the compound aggregation gate: the
// compression ratio is a floor, and the soundness counters must be
// exactly zero.
func TestAggregationGate(t *testing.T) {
	opts := noAbsolute
	opts.minAggRatio = 1.5
	empty := bf(map[string]map[string]float64{})
	mk := func(ratio, cex, falseInst, falseRem float64) *benchFile {
		return bf(map[string]map[string]float64{
			"Aggregation": {
				"compression_ratio":   ratio,
				"hsa_counterexamples": cex,
				"false_install_acks":  falseInst,
				"false_remove_acks":   falseRem,
			},
		})
	}
	if got := check(empty, mk(4.2, 0, 0, 0), opts, io.Discard); got != 0 {
		t.Fatalf("healthy aggregation failed the gate: %d", got)
	}
	if got := check(empty, mk(1.2, 0, 0, 0), opts, io.Discard); got != 1 {
		t.Fatalf("1.2x ratio: %d failures, want 1", got)
	}
	if got := check(empty, mk(4.2, 1, 0, 0), opts, io.Discard); got != 1 {
		t.Fatalf("one counterexample: %d failures, want 1", got)
	}
	if got := check(empty, mk(4.2, 0, 2, 1), opts, io.Discard); got != 2 {
		t.Fatalf("false acks: %d failures, want 2", got)
	}
	if got := check(empty, empty, opts, io.Discard); got != 4 {
		t.Fatalf("missing Aggregation metrics: %d failures, want 4", got)
	}
}
