// Command doccheck is the documentation link checker CI runs over
// README.md and docs/: every relative markdown link (and image) must
// resolve to an existing file or directory, so the docs overhaul cannot
// rot silently as files move. External links (http, https, mailto) and
// pure in-page anchors are not checked; fenced code blocks are skipped.
//
// Usage: go run ./cmd/doccheck [paths...]   (default: README.md docs)
//
// A directory argument is walked for *.md files.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces-then-quotes ("title" syntax) keep
// only the path part.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"README.md", "docs"}
	}
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			fatal("%v", err)
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fatal("walking %s: %v", a, err)
		}
	}

	broken, checked := 0, 0
	for _, file := range files {
		buf, err := os.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		dir := filepath.Dir(file)
		inFence := false
		for ln, line := range strings.Split(string(buf), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				if target == "" {
					continue // pure in-page anchor
				}
				checked++
				if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
					fmt.Printf("BROKEN %s:%d: %s\n", file, ln+1, m[0])
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fatal("%d broken relative link(s) across %d checked", broken, checked)
	}
	fmt.Printf("doccheck: %d relative links ok across %d file(s)\n", checked, len(files))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "doccheck: "+format+"\n", args...)
	os.Exit(1)
}
