// Command rumbench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	rumbench [-experiment all|fig1b|fig2|fig6|fig7|fig8|table1|barrier|rates|highrate] [-flows N] [-r N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rum/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	flows := flag.Int("flows", 300, "number of flows for migration experiments")
	r := flag.Int("r", 4000, "number of modifications for Table 1")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	ran := false
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		start := time.Now()
		fn()
		fmt.Printf("  [%s completed in %v wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig1b", func() {
		res := experiments.Fig1b()
		fmt.Print(res.Render())
	})
	run("fig2", func() {
		broken := experiments.Firewall(experiments.FirewallOpts{WithRUM: false})
		withRUM := experiments.Firewall(experiments.FirewallOpts{WithRUM: true})
		fmt.Print(experiments.RenderFirewall(broken, withRUM))
	})
	run("fig6", func() {
		res := experiments.Fig6()
		fmt.Print(res.Render("Figure 6"))
	})
	run("fig7", func() {
		res := experiments.Fig7()
		fmt.Print(res.Render("Figure 7"))
	})
	run("fig8", func() {
		res := experiments.Fig8(experiments.Fig8Opts{})
		fmt.Print(experiments.RenderFig8(res))
	})
	run("table1", func() {
		cells := experiments.Table1(experiments.Table1Opts{R: *r})
		fmt.Print(experiments.RenderTable1(cells, nil))
	})
	run("barrier", func() {
		res := experiments.BarrierLayer(experiments.BarrierLayerOpts{NumFlows: *flows})
		fmt.Print(experiments.RenderBarrierLayer(res))
	})
	run("rates", func() {
		res := experiments.Rates()
		fmt.Print(res.Render())
	})
	run("highrate", func() {
		res := experiments.Fig1bHighRate()
		fmt.Print(res.Render())
	})
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
