// Command switchd runs a small emulated OpenFlow network in real time and
// connects its switches to a controller (or RUM proxy) over TCP: the
// paper's triangle topology (Figure 1a) with two software switches, one
// buggy hardware switch, and hosts h1/h2 exchanging traffic.
//
// Usage:
//
//	switchd -controller 127.0.0.1:6633 [-sync 300ms] [-flows 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"rum/internal/netsim"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

func main() {
	ctrlAddr := flag.String("controller", "127.0.0.1:6633", "controller (or RUM proxy) address")
	syncPeriod := flag.Duration("sync", 300*time.Millisecond, "hardware switch data-plane sync period")
	flows := flag.Int("flows", 0, "background flows h1->h2 at 250 pkt/s")
	flag.Parse()

	clk := sim.NewWall()
	network := netsim.New(clk)

	hp := switchsim.ProfileHP5406zl()
	hp.SyncPeriod = *syncPeriod
	profs := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": hp,
		"s3": switchsim.ProfileSoftware(),
	}
	switches := make(map[string]*switchsim.Switch)
	for i, name := range []string{"s1", "s2", "s3"} {
		switches[name] = switchsim.New(name, uint64(i+1), profs[name], clk, network)
	}
	h1 := netsim.NewHost(network, "h1")
	h2 := netsim.NewHost(network, "h2")
	lat := 100 * time.Microsecond
	network.Connect(h1, h1.Port(), switches["s1"], 1, lat)
	network.Connect(switches["s1"], 2, switches["s2"], 1, lat)
	network.Connect(switches["s2"], 2, switches["s3"], 2, lat)
	network.Connect(switches["s1"], 3, switches["s3"], 3, lat)
	network.Connect(switches["s3"], 1, h2, h2.Port(), lat)

	for name, sw := range switches {
		nc, err := net.Dial("tcp", *ctrlAddr)
		if err != nil {
			log.Fatalf("switchd: dialing %s for %s: %v", *ctrlAddr, name, err)
		}
		sw.AttachConn(transport.NewTCP(nc))
		log.Printf("switchd: %s (dpid %d, profile %s) connected to %s",
			name, sw.DPID(), sw.Profile().Name, *ctrlAddr)
	}

	if *flows > 0 {
		specs := make([]netsim.Flow, *flows)
		for i := range specs {
			src := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
			dst := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
			specs[i] = netsim.Flow{
				ID:     i,
				Pkt:    packet.New(src, dst, packet.ProtoUDP, 4000, 9000),
				Period: 4 * time.Millisecond,
			}
		}
		gen := netsim.NewGenerator(h1, specs)
		gen.Start(time.Millisecond)
		log.Printf("switchd: generating %d flows at 250 pkt/s from h1", *flows)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println()
			for name, sw := range switches {
				mods, pouts, pins, syncs := sw.Counters()
				log.Printf("switchd: %s: mods=%d pktouts=%d pktins=%d syncs=%d ctrl_rules=%d data_rules=%d",
					name, mods, pouts, pins, syncs, sw.CtrlTable().Len(), sw.DataTable().Len())
			}
			return
		case <-ticker.C:
			drops := len(network.Drops())
			arr := len(h2.Arrivals())
			log.Printf("switchd: h2 arrivals=%d drops=%d", arr, drops)
		}
	}
}
