// Command rumproxy deploys RUM as a real TCP proxy between OpenFlow 1.0
// switches and a controller. Switches connect to -listen as if it were
// the controller; rumproxy identifies each by datapath id, connects
// onward to -controller impersonating it, and guarantees that rule
// modification acknowledgments never precede data-plane installation.
//
// The triangle topology and switch identities are configured with
// -switches and -links, e.g.:
//
//	rumproxy -listen :6633 -controller 127.0.0.1:6653 \
//	  -switches 1=s1,2=s2,3=s3 \
//	  -links s1:2-s2:1,s2:2-s3:2,s1:3-s3:3 \
//	  -technique general -per-switch s2=adaptive -barrier-layer
//
// -technique selects any registered ack strategy by name; -per-switch
// overrides it for individual switches, so heterogeneous deployments can
// mix techniques (the adaptive technique is switch-model-specific).
//
// For datacenter-scale fabrics, -fattree k generates the whole k-ary
// fat-tree switch set and link map in place of -switches/-links:
//
//	rumproxy -listen :6633 -controller 127.0.0.1:6653 \
//	  -fattree 8 -technique sequential -barrier-layer
//
// Fabrics too large for one proxy process shard across a cluster:
// -cluster N -shard i makes this instance serve only the switches the
// deterministic shard map assigns to member i (pod-aligned on fat-trees,
// rendezvous-hashed otherwise), while retaining the full topology so
// probe routing still sees every link. Run one instance per shard on its
// own -listen address and point each shard's switches at their owner:
//
//	rumproxy -listen :6633 -fattree 16 -cluster 4 -shard 0 ...
//	rumproxy -listen :6634 -fattree 16 -cluster 4 -shard 1 ...
//
// The shard map is pure function of (switch set, N), so every instance
// computes the same assignment without coordination; see docs/CLUSTER.md
// for the handoff protocol when a member dies.
//
// -pprof ADDR serves net/http/pprof so CPU, allocation, and
// mutex-contention profiles can be captured from a live proxy. Mutex
// profiling is enabled by default alongside the endpoint (allocation
// profiling is always on in the Go runtime), so tail-latency
// investigations start from profiles instead of guesses:
//
//	rumproxy ... -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile   # CPU
//	go tool pprof http://localhost:6060/debug/pprof/allocs    # allocations
//	go tool pprof http://localhost:6060/debug/pprof/mutex     # lock contention
//
// -mutex-fraction tunes the contention sampling rate (0 disables);
// -block-rate ns enables blocking profiles at the given sampling
// granularity (off by default — it is the most intrusive of the three).
//
// -faults interposes the deterministic fault-injection layer on every
// switch-side connection — chaos testing a live deployment without
// touching the switches:
//
//	rumproxy ... -faults "drop=0.01,dup=0.005,delay=2ms:0.02" -fault-seed 7
//
// Supported faults: drop=P, dup=P, reorder=P, corrupt=P, delay=DUR:P
// (or a uniform range, delay=DUR1-DUR2:P), cut=P (kills the channel;
// the switch's reconnect loop recovers it), trace=FILE (replay a
// cyclic latency/loss/bandwidth link profile — see docs/OVERLOAD.md
// for the format), plus "flowmods" to restrict the preceding rules to
// FlowMods. See docs/ARCHITECTURE.md for the fault layer's position in
// the stack.
//
// -outbox-limit bounds each per-switch outbox and -overload selects
// what happens at the bound (block = bounded backpressure, shed = fail
// the update fast with a typed refusal, degrade = widen a slow
// switch's batch window); -max-pending bounds the coalescing TCP
// writer the same way. docs/OVERLOAD.md is the canonical reference:
//
//	rumproxy ... -outbox-limit 256 -overload degrade -max-pending 1048576
//
// -plan turns rumproxy into a consistent-update dry run: instead of
// serving, it compiles one path change into the planner's wave schedule,
// verifies every transient wave with header-space analysis against a
// synthetic FIB holding the old path, prints the schedule and verdict,
// and exits (non-zero if any wave is unsafe). Only the topology flags
// (-links or -fattree) are consulted:
//
//	rumproxy -links s1:2-s2:1,s2:2-s3:2,s1:3-s3:3 \
//	  -plan "10.0.0.1>10.1.0.1" -plan-prio 100 \
//	  -plan-old s1:3,s3:1 -plan-new s1:2,s2:2,s3:1
//
// See docs/PLANNER.md for the wave model and verification obligations.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: live wire-path profiles
	"net/netip"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rum"
	ctrl "rum/internal/controller"
	"rum/internal/of"
)

func main() {
	listen := flag.String("listen", ":6633", "address switches connect to")
	controller := flag.String("controller", "127.0.0.1:6653", "real controller address")
	switchesFlag := flag.String("switches", "", "dpid=name pairs, comma separated")
	linksFlag := flag.String("links", "", "inter-switch links a:pa-b:pb, comma separated")
	fattree := flag.Int("fattree", 0,
		"generate a k-ary fat-tree fabric instead of -switches/-links (dpids 1..N in layer order)")
	clusterN := flag.Int("cluster", 0,
		"shard the fabric across this many proxy instances; this one serves only its -shard (0 disables)")
	shard := flag.Int("shard", 0, "with -cluster: the shard index [0, N) this instance serves")
	techniqueFlag := flag.String("technique", "general",
		"default ack strategy: "+strings.Join(rum.StrategyNames(), "|"))
	perSwitchFlag := flag.String("per-switch", "",
		"per-switch strategy overrides, name=strategy pairs, comma separated")
	timeout := flag.Duration("timeout", 300*time.Millisecond, "timeout-technique delay / fallback delay")
	rate := flag.Float64("rate", 200, "adaptive-technique assumed mods/sec")
	probeEvery := flag.Int("probe-every", 10, "sequential probing batch size")
	barrierLayer := flag.Bool("barrier-layer", false, "enable the reliable barrier layer")
	aggregateFlag := flag.Bool("aggregate", false,
		"maintain an HSA-verified compressed physical FIB per switch; controller acks fan in from physical installs")
	buffer := flag.Bool("buffer", false, "buffer commands after unconfirmed barriers (reordering switches)")
	rumAware := flag.Bool("acks", true, "emit fine-grained RUM acks to the controller")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) for live CPU/allocation/mutex profiles")
	mutexFraction := flag.Int("mutex-fraction", 100,
		"with -pprof: sample 1/n of mutex contention events for /debug/pprof/mutex (0 disables)")
	blockRate := flag.Int("block-rate", 0,
		"with -pprof: blocking-profile sampling granularity in ns for /debug/pprof/block (0 disables)")
	outboxLimit := flag.Int("outbox-limit", 0,
		"bound each per-switch outbox to this many tracked FlowMods; at the bound the -overload policy applies (0 = unbounded)")
	overloadFlag := flag.String("overload", "block",
		"policy at a full outbox: block|shed|degrade (see docs/OVERLOAD.md)")
	overloadDeadline := flag.Duration("overload-deadline", 100*time.Millisecond,
		"with -overload block/degrade: bound on the backpressure wait before shedding")
	maxPending := flag.Int("max-pending", 0,
		"bound each switch conn's coalescing-writer backlog to this many bytes, same -overload policy (0 = unbounded)")
	faultSpec := flag.String("faults", "",
		"fault-injection spec for switch conns, e.g. \"drop=0.01,delay=2ms-8ms:0.02,trace=wan.trace\" (empty/none disables)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -faults schedule")
	planFlow := flag.String("plan", "",
		"dry run: compile and HSA-verify a path change instead of serving; flow as SRC>DST, e.g. \"10.0.0.1>10.1.0.1\"")
	planOld := flag.String("plan-old", "", "with -plan: old path hops switch:outport, comma separated")
	planNew := flag.String("plan-new", "", "with -plan: new path hops switch:outport, comma separated")
	planPrio := flag.Uint("plan-prio", 100, "with -plan: priority of the migrating flow rules")
	flag.Parse()

	if *planFlow != "" {
		links, err := planLinks(*fattree, *linksFlag)
		if err != nil {
			log.Fatalf("rumproxy: -plan: %v", err)
		}
		if err := runPlanMode(links, *planFlow, *planOld, *planNew, uint16(*planPrio)); err != nil {
			log.Fatalf("rumproxy: -plan: %v", err)
		}
		return
	}

	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(*mutexFraction)
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		go func() {
			log.Printf("rumproxy: pprof at http://%s/debug/pprof/ (allocs, mutex 1/%d, block %dns)",
				*pprofAddr, *mutexFraction, *blockRate)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("rumproxy: pprof server: %v", err)
			}
		}()
	}

	var switches []rum.SwitchIdentity
	var topo *rum.Topology
	var ft *rum.FatTree
	if *fattree > 0 {
		if *switchesFlag != "" || *linksFlag != "" {
			log.Fatalf("rumproxy: -fattree replaces -switches/-links; do not combine them")
		}
		var err error
		ft, err = rum.NewFatTree(*fattree)
		if err != nil {
			log.Fatalf("rumproxy: -fattree: %v", err)
		}
		topo, switches = rum.FatTreeTopology(ft)
		log.Printf("rumproxy: generated k=%d fat-tree fabric: %d switches, %d links",
			*fattree, ft.NumSwitches(), len(ft.Links))
	} else {
		var err error
		switches, err = parseSwitches(*switchesFlag)
		if err != nil {
			log.Fatalf("rumproxy: -switches: %v", err)
		}
		links, err := parseLinks(*linksFlag)
		if err != nil {
			log.Fatalf("rumproxy: -links: %v", err)
		}
		topo = rum.NewTopology(links)
	}
	if *clusterN != 0 || *shard != 0 {
		served, err := shardSwitches(switches, ft, *clusterN, *shard)
		if err != nil {
			log.Fatalf("rumproxy: %v", err)
		}
		log.Printf("rumproxy: cluster shard %d/%d serves %d of %d switches",
			*shard, *clusterN, len(served), len(switches))
		// The full topology is kept: probe routing must know every link
		// even when a probed rule's neighbor lives on another shard.
		switches = served
	}
	tech, err := parseTechnique(*techniqueFlag)
	if err != nil {
		log.Fatalf("rumproxy: -technique: %v", err)
	}
	perSwitch, err := parsePerSwitch(*perSwitchFlag)
	if err != nil {
		log.Fatalf("rumproxy: -per-switch: %v", err)
	}
	overload, err := rum.ParseOverloadPolicy(*overloadFlag)
	if err != nil {
		log.Fatalf("rumproxy: -overload: %v", err)
	}

	srv, err := rum.NewProxyServer(rum.ProxyConfig{
		RUM: rum.Config{
			Technique:        tech,
			PerSwitch:        perSwitch,
			RUMAware:         *rumAware,
			Timeout:          *timeout,
			AssumedRate:      *rate,
			ProbeEvery:       *probeEvery,
			BarrierLayer:     *barrierLayer,
			BufferForReorder: *buffer,
			Aggregate:        *aggregateFlag,
			OutboxLimit:      *outboxLimit,
			Overload:         overload,
			OverloadDeadline: *overloadDeadline,
		},
		Topology:       topo,
		Switches:       switches,
		ControllerAddr: *controller,
		TCPMaxPending:  *maxPending,
		FaultSpec:      *faultSpec,
		FaultSeed:      *faultSeed,
	})
	if err != nil {
		log.Fatalf("rumproxy: %v", err)
	}
	if srv.FaultsArmed() {
		log.Printf("rumproxy: fault injection armed: %s (seed %d)", *faultSpec, *faultSeed)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("rumproxy: listen %s: %v", *listen, err)
	}
	log.Printf("rumproxy: technique=%s barrier_layer=%v aggregate=%v listening on %s, controller at %s",
		tech, *barrierLayer, *aggregateFlag, ln.Addr(), *controller)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("rumproxy: serve: %v", err)
	}
}

func parseSwitches(s string) ([]rum.SwitchIdentity, error) {
	if s == "" {
		return nil, fmt.Errorf("at least one dpid=name pair is required")
	}
	var out []rum.SwitchIdentity
	for _, pair := range strings.Split(s, ",") {
		dpidStr, name, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want dpid=name)", pair)
		}
		dpid, err := strconv.ParseUint(dpidStr, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dpid in %q: %v", pair, err)
		}
		out = append(out, rum.SwitchIdentity{DPID: dpid, Name: name})
	}
	return out, nil
}

func parseLinks(s string) ([]rum.TopoLink, error) {
	if s == "" {
		return nil, fmt.Errorf("at least one link is required for probing")
	}
	var out []rum.TopoLink
	for _, l := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(l, "-")
		if !ok {
			return nil, fmt.Errorf("bad link %q (want a:pa-b:pb)", l)
		}
		an, ap, err := parseEnd(a)
		if err != nil {
			return nil, err
		}
		bn, bp, err := parseEnd(b)
		if err != nil {
			return nil, err
		}
		out = append(out, rum.TopoLink{A: an, APort: ap, B: bn, BPort: bp})
	}
	return out, nil
}

func parseEnd(s string) (string, uint16, error) {
	name, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return "", 0, fmt.Errorf("bad link end %q (want name:port)", s)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("bad port in %q: %v", s, err)
	}
	return name, uint16(port), nil
}

// shardSwitches filters the served switch set down to the shard this
// instance owns. The shard map is a pure function of the switch set and
// member count — pod-aligned primaries on a fat-tree, rendezvous hashing
// otherwise — so N instances launched with identical topology flags
// partition the fabric without coordination and without overlap.
func shardSwitches(switches []rum.SwitchIdentity, ft *rum.FatTree, n, shard int) ([]rum.SwitchIdentity, error) {
	if n < 2 {
		return nil, fmt.Errorf("-cluster needs at least 2 shards (got %d); omit it for a single proxy", n)
	}
	if shard < 0 || shard >= n {
		return nil, fmt.Errorf("-shard %d out of range [0, %d)", shard, n)
	}
	smap, err := rum.NewShardMap(n)
	if err != nil {
		return nil, err
	}
	if ft != nil {
		rum.AssignShardMapFatTree(smap, ft)
	}
	var served []rum.SwitchIdentity
	for _, sw := range switches {
		if owner, ok := smap.Owner(sw.Name, nil); ok && owner == shard {
			served = append(served, sw)
		}
	}
	if len(served) == 0 {
		return nil, fmt.Errorf("shard %d/%d owns none of the %d switches", shard, n, len(switches))
	}
	return served, nil
}

// parseTechnique resolves a strategy name against the registry (with the
// historical "nowait" spelling accepted for TechNoWait).
func parseTechnique(s string) (rum.Technique, error) {
	name := strings.ToLower(s)
	if name == "nowait" {
		name = string(rum.TechNoWait)
	}
	for _, reg := range rum.StrategyNames() {
		if name == reg {
			return rum.Technique(name), nil
		}
	}
	return "", fmt.Errorf("unknown technique %q (registered: %s)", s, strings.Join(rum.StrategyNames(), ", "))
}

// planLinks resolves the topology for -plan mode from either -fattree or
// -links, without requiring the serving-mode switch identities.
func planLinks(fattree int, linksFlag string) ([]rum.TopoLink, error) {
	if fattree > 0 {
		if linksFlag != "" {
			return nil, fmt.Errorf("-fattree replaces -links; do not combine them")
		}
		ft, err := rum.NewFatTree(fattree)
		if err != nil {
			return nil, err
		}
		links := make([]rum.TopoLink, len(ft.Links))
		for i, l := range ft.Links {
			links[i] = rum.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
		}
		return links, nil
	}
	return parseLinks(linksFlag)
}

// runPlanMode compiles one path change into its wave schedule, verifies
// every transient wave against a synthetic FIB holding the old path, and
// prints the schedule and verdict. Nothing is sent anywhere: this is the
// offline half of the planner, for vetting an update before deploying it
// through a live proxy.
func runPlanMode(links []rum.TopoLink, flowSpec, oldSpec, newSpec string, prio uint16) error {
	srcStr, dstStr, ok := strings.Cut(flowSpec, ">")
	if !ok {
		return fmt.Errorf("bad -plan flow %q (want SRC>DST)", flowSpec)
	}
	src, err := netip.ParseAddr(srcStr)
	if err != nil || !src.Is4() {
		return fmt.Errorf("bad -plan source %q (want IPv4)", srcStr)
	}
	dst, err := netip.ParseAddr(dstStr)
	if err != nil || !dst.Is4() {
		return fmt.Errorf("bad -plan destination %q (want IPv4)", dstStr)
	}
	oldHops, err := parseHops(oldSpec)
	if err != nil {
		return fmt.Errorf("-plan-old: %v", err)
	}
	newHops, err := parseHops(newSpec)
	if err != nil {
		return fmt.Errorf("-plan-new: %v", err)
	}
	if len(newHops) == 0 {
		return fmt.Errorf("-plan-new is required")
	}

	pc := rum.PathChange{
		Name:     flowSpec,
		Match:    ctrl.FlowMatch(ctrl.FlowSpec{Src: src, Dst: dst}),
		Priority: prio,
		Old:      oldHops,
		New:      newHops,
	}
	seg, err := rum.BuildPlanSegment(pc)
	if err != nil {
		return err
	}

	ports := rum.PortMap(links)
	tables := make(map[string][]rum.FIBRule)
	for _, h := range oldHops {
		tables[h.Switch] = append(tables[h.Switch], rum.FIBRule{
			Priority: prio, Match: pc.Match,
			Actions: []of.Action{of.ActionOutput{Port: h.OutPort}},
		})
	}

	nOps := 0
	for _, st := range seg.Stages {
		nOps += len(st.Ops)
	}
	fmt.Printf("plan %q: region %s, %d waves / %d ops\n", pc.Name, seg.Region, len(seg.Stages), nOps)
	start := time.Now()
	for i, st := range seg.Stages {
		next := cloneTables(tables)
		for _, op := range st.Ops {
			next[op.Switch] = applyFM(next[op.Switch], op.FM)
		}
		names := make([]string, len(st.Ops))
		for j, op := range st.Ops {
			names[j] = fmtPlanOp(op)
		}
		verr := rum.VerifyTransient(
			&rum.NetState{Tables: tables, Ports: ports},
			&rum.NetState{Tables: next, Ports: ports}, seg.Region)
		if verr != nil {
			fmt.Printf("  wave %d: %s — UNSAFE\n", i+1, strings.Join(names, ", "))
			return fmt.Errorf("wave %d rejected: %w", i+1, verr)
		}
		fmt.Printf("  wave %d: %-32s verified loop-free, blackhole-free\n", i+1, strings.Join(names, ", "))
		tables = next
	}
	fmt.Printf("verdict: SAFE — %d waves verified in %v\n",
		len(seg.Stages), time.Since(start).Round(time.Microsecond))
	return nil
}

// parseHops parses a comma-separated switch:outport hop list.
func parseHops(s string) ([]rum.PathHop, error) {
	if s == "" {
		return nil, nil
	}
	var out []rum.PathHop
	for _, h := range strings.Split(s, ",") {
		name, port, err := parseEnd(h)
		if err != nil {
			return nil, err
		}
		out = append(out, rum.PathHop{Switch: name, OutPort: port})
	}
	return out, nil
}

// cloneTables copies the per-switch rule slices so a staged wave never
// mutates the previous state it is verified against.
func cloneTables(t map[string][]rum.FIBRule) map[string][]rum.FIBRule {
	out := make(map[string][]rum.FIBRule, len(t))
	for k, v := range t {
		out[k] = append([]rum.FIBRule(nil), v...)
	}
	return out
}

// applyFM applies one planner FlowMod to a synthetic table with the
// flowtable's add-replaces / strict-delete semantics.
func applyFM(table []rum.FIBRule, fm *of.FlowMod) []rum.FIBRule {
	switch fm.Command {
	case of.FCAdd:
		for i, r := range table {
			if r.Match == fm.Match && r.Priority == fm.Priority {
				table[i].Actions = fm.Actions
				return table
			}
		}
		return append(table, rum.FIBRule{Priority: fm.Priority, Match: fm.Match, Actions: fm.Actions})
	case of.FCDeleteStrict:
		out := table[:0]
		for _, r := range table {
			if !(r.Match == fm.Match && r.Priority == fm.Priority) {
				out = append(out, r)
			}
		}
		return out
	default:
		return table
	}
}

func fmtPlanOp(op rum.PlanOp) string {
	if op.FM.Command == of.FCDeleteStrict {
		return fmt.Sprintf("del %s", op.Switch)
	}
	for _, a := range op.FM.Actions {
		if ao, isOut := a.(of.ActionOutput); isOut {
			return fmt.Sprintf("%s→%d", op.Switch, ao.Port)
		}
	}
	return op.Switch
}

// parsePerSwitch parses name=strategy override pairs.
func parsePerSwitch(s string) (map[string]rum.Technique, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]rum.Technique)
	for _, pair := range strings.Split(s, ",") {
		name, techStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want switch=strategy)", pair)
		}
		tech, err := parseTechnique(techStr)
		if err != nil {
			return nil, err
		}
		out[name] = tech
	}
	return out, nil
}
