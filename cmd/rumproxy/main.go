// Command rumproxy deploys RUM as a real TCP proxy between OpenFlow 1.0
// switches and a controller. Switches connect to -listen as if it were
// the controller; rumproxy identifies each by datapath id, connects
// onward to -controller impersonating it, and guarantees that rule
// modification acknowledgments never precede data-plane installation.
//
// The triangle topology and switch identities are configured with
// -switches and -links, e.g.:
//
//	rumproxy -listen :6633 -controller 127.0.0.1:6653 \
//	  -switches 1=s1,2=s2,3=s3 \
//	  -links s1:2-s2:1,s2:2-s3:2,s1:3-s3:3 \
//	  -technique general -per-switch s2=adaptive -barrier-layer
//
// -technique selects any registered ack strategy by name; -per-switch
// overrides it for individual switches, so heterogeneous deployments can
// mix techniques (the adaptive technique is switch-model-specific).
//
// For datacenter-scale fabrics, -fattree k generates the whole k-ary
// fat-tree switch set and link map in place of -switches/-links:
//
//	rumproxy -listen :6633 -controller 127.0.0.1:6653 \
//	  -fattree 8 -technique sequential -barrier-layer
//
// -pprof ADDR serves net/http/pprof so CPU, allocation, and
// mutex-contention profiles can be captured from a live proxy. Mutex
// profiling is enabled by default alongside the endpoint (allocation
// profiling is always on in the Go runtime), so tail-latency
// investigations start from profiles instead of guesses:
//
//	rumproxy ... -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile   # CPU
//	go tool pprof http://localhost:6060/debug/pprof/allocs    # allocations
//	go tool pprof http://localhost:6060/debug/pprof/mutex     # lock contention
//
// -mutex-fraction tunes the contention sampling rate (0 disables);
// -block-rate ns enables blocking profiles at the given sampling
// granularity (off by default — it is the most intrusive of the three).
//
// -faults interposes the deterministic fault-injection layer on every
// switch-side connection — chaos testing a live deployment without
// touching the switches:
//
//	rumproxy ... -faults "drop=0.01,dup=0.005,delay=2ms:0.02" -fault-seed 7
//
// Supported faults: drop=P, dup=P, reorder=P, corrupt=P, delay=DUR:P,
// cut=P (kills the channel; the switch's reconnect loop recovers it),
// plus "flowmods" to restrict the preceding rules to FlowMods. See
// docs/ARCHITECTURE.md for the fault layer's position in the stack.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: live wire-path profiles
	"runtime"
	"strconv"
	"strings"
	"time"

	"rum"
)

func main() {
	listen := flag.String("listen", ":6633", "address switches connect to")
	controller := flag.String("controller", "127.0.0.1:6653", "real controller address")
	switchesFlag := flag.String("switches", "", "dpid=name pairs, comma separated")
	linksFlag := flag.String("links", "", "inter-switch links a:pa-b:pb, comma separated")
	fattree := flag.Int("fattree", 0,
		"generate a k-ary fat-tree fabric instead of -switches/-links (dpids 1..N in layer order)")
	techniqueFlag := flag.String("technique", "general",
		"default ack strategy: "+strings.Join(rum.StrategyNames(), "|"))
	perSwitchFlag := flag.String("per-switch", "",
		"per-switch strategy overrides, name=strategy pairs, comma separated")
	timeout := flag.Duration("timeout", 300*time.Millisecond, "timeout-technique delay / fallback delay")
	rate := flag.Float64("rate", 200, "adaptive-technique assumed mods/sec")
	probeEvery := flag.Int("probe-every", 10, "sequential probing batch size")
	barrierLayer := flag.Bool("barrier-layer", false, "enable the reliable barrier layer")
	buffer := flag.Bool("buffer", false, "buffer commands after unconfirmed barriers (reordering switches)")
	rumAware := flag.Bool("acks", true, "emit fine-grained RUM acks to the controller")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) for live CPU/allocation/mutex profiles")
	mutexFraction := flag.Int("mutex-fraction", 100,
		"with -pprof: sample 1/n of mutex contention events for /debug/pprof/mutex (0 disables)")
	blockRate := flag.Int("block-rate", 0,
		"with -pprof: blocking-profile sampling granularity in ns for /debug/pprof/block (0 disables)")
	faultSpec := flag.String("faults", "",
		"fault-injection spec for switch conns, e.g. \"drop=0.01,dup=0.005,delay=2ms:0.02\" (empty/none disables)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -faults schedule")
	flag.Parse()

	if *pprofAddr != "" {
		runtime.SetMutexProfileFraction(*mutexFraction)
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		go func() {
			log.Printf("rumproxy: pprof at http://%s/debug/pprof/ (allocs, mutex 1/%d, block %dns)",
				*pprofAddr, *mutexFraction, *blockRate)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("rumproxy: pprof server: %v", err)
			}
		}()
	}

	var switches []rum.SwitchIdentity
	var topo *rum.Topology
	if *fattree > 0 {
		if *switchesFlag != "" || *linksFlag != "" {
			log.Fatalf("rumproxy: -fattree replaces -switches/-links; do not combine them")
		}
		ft, err := rum.NewFatTree(*fattree)
		if err != nil {
			log.Fatalf("rumproxy: -fattree: %v", err)
		}
		topo, switches = rum.FatTreeTopology(ft)
		log.Printf("rumproxy: generated k=%d fat-tree fabric: %d switches, %d links",
			*fattree, ft.NumSwitches(), len(ft.Links))
	} else {
		var err error
		switches, err = parseSwitches(*switchesFlag)
		if err != nil {
			log.Fatalf("rumproxy: -switches: %v", err)
		}
		links, err := parseLinks(*linksFlag)
		if err != nil {
			log.Fatalf("rumproxy: -links: %v", err)
		}
		topo = rum.NewTopology(links)
	}
	tech, err := parseTechnique(*techniqueFlag)
	if err != nil {
		log.Fatalf("rumproxy: -technique: %v", err)
	}
	perSwitch, err := parsePerSwitch(*perSwitchFlag)
	if err != nil {
		log.Fatalf("rumproxy: -per-switch: %v", err)
	}

	srv, err := rum.NewProxyServer(rum.ProxyConfig{
		RUM: rum.Config{
			Technique:        tech,
			PerSwitch:        perSwitch,
			RUMAware:         *rumAware,
			Timeout:          *timeout,
			AssumedRate:      *rate,
			ProbeEvery:       *probeEvery,
			BarrierLayer:     *barrierLayer,
			BufferForReorder: *buffer,
		},
		Topology:       topo,
		Switches:       switches,
		ControllerAddr: *controller,
		FaultSpec:      *faultSpec,
		FaultSeed:      *faultSeed,
	})
	if err != nil {
		log.Fatalf("rumproxy: %v", err)
	}
	if srv.FaultsArmed() {
		log.Printf("rumproxy: fault injection armed: %s (seed %d)", *faultSpec, *faultSeed)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("rumproxy: listen %s: %v", *listen, err)
	}
	log.Printf("rumproxy: technique=%s barrier_layer=%v listening on %s, controller at %s",
		tech, *barrierLayer, ln.Addr(), *controller)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("rumproxy: serve: %v", err)
	}
}

func parseSwitches(s string) ([]rum.SwitchIdentity, error) {
	if s == "" {
		return nil, fmt.Errorf("at least one dpid=name pair is required")
	}
	var out []rum.SwitchIdentity
	for _, pair := range strings.Split(s, ",") {
		dpidStr, name, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want dpid=name)", pair)
		}
		dpid, err := strconv.ParseUint(dpidStr, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dpid in %q: %v", pair, err)
		}
		out = append(out, rum.SwitchIdentity{DPID: dpid, Name: name})
	}
	return out, nil
}

func parseLinks(s string) ([]rum.TopoLink, error) {
	if s == "" {
		return nil, fmt.Errorf("at least one link is required for probing")
	}
	var out []rum.TopoLink
	for _, l := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(l, "-")
		if !ok {
			return nil, fmt.Errorf("bad link %q (want a:pa-b:pb)", l)
		}
		an, ap, err := parseEnd(a)
		if err != nil {
			return nil, err
		}
		bn, bp, err := parseEnd(b)
		if err != nil {
			return nil, err
		}
		out = append(out, rum.TopoLink{A: an, APort: ap, B: bn, BPort: bp})
	}
	return out, nil
}

func parseEnd(s string) (string, uint16, error) {
	name, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return "", 0, fmt.Errorf("bad link end %q (want name:port)", s)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("bad port in %q: %v", s, err)
	}
	return name, uint16(port), nil
}

// parseTechnique resolves a strategy name against the registry (with the
// historical "nowait" spelling accepted for TechNoWait).
func parseTechnique(s string) (rum.Technique, error) {
	name := strings.ToLower(s)
	if name == "nowait" {
		name = string(rum.TechNoWait)
	}
	for _, reg := range rum.StrategyNames() {
		if name == reg {
			return rum.Technique(name), nil
		}
	}
	return "", fmt.Errorf("unknown technique %q (registered: %s)", s, strings.Join(rum.StrategyNames(), ", "))
}

// parsePerSwitch parses name=strategy override pairs.
func parsePerSwitch(s string) (map[string]rum.Technique, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]rum.Technique)
	for _, pair := range strings.Split(s, ",") {
		name, techStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad pair %q (want switch=strategy)", pair)
		}
		tech, err := parseTechnique(techStr)
		if err != nil {
			return nil, err
		}
		out[name] = tech
	}
	return out, nil
}
