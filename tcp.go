package rum

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"rum/internal/core"
	"rum/internal/faults"
	"rum/internal/of"
	"rum/internal/transport"
)

// SwitchIdentity names one switch RUM expects to connect.
type SwitchIdentity struct {
	// DPID is the datapath id the switch reports in its FeaturesReply.
	DPID uint64
	// Name must match the topology's switch names.
	Name string
}

// ProxyConfig parameterizes a TCP deployment of RUM (cmd/rumproxy).
type ProxyConfig struct {
	// RUM is the monitoring-layer configuration (including strategy
	// selection via Technique, Strategy, and PerSwitch). Clock defaults
	// to a wall clock.
	RUM Config
	// Topology describes the inter-switch links (probe routing).
	Topology *Topology
	// Switches maps expected datapath ids to topology names. Connections
	// from unknown datapaths are rejected.
	Switches []SwitchIdentity
	// ControllerAddr is the real controller's TCP address; RUM dials one
	// connection per switch, impersonating it (§4 of the paper).
	ControllerAddr string
	// HandshakeTimeout bounds the identification handshake per switch.
	HandshakeTimeout time.Duration
	// OnError receives asynchronous errors from connection-handler
	// goroutines (failed handshakes, rejected datapaths, controller dial
	// failures, bootstrap errors). Defaults to logging via the standard
	// logger.
	OnError func(error)
	// TCPMaxPending, when positive, bounds the bytes each switch-side
	// connection's coalescing writer may hold queued but unwritten. At
	// the bound the RUM.Overload policy applies: Block waits up to
	// RUM.OverloadDeadline for the writer to drain, Shed fails the send
	// with transport.ErrOverloaded. Zero leaves the writer unbounded.
	// See docs/OVERLOAD.md.
	TCPMaxPending int
	// FaultSpec, when non-empty, interposes the fault-injection layer on
	// every switch-side connection — chaos testing a live proxy. The
	// syntax is internal/faults.ParsePlan's ("drop=0.01,dup=0.005,
	// delay=2ms-8ms:0.02,trace=wan.trace,..."); "none" or empty disables
	// injection entirely. A proxied session with faults enabled runs
	// under shared-ownership buffer rules, so the zero-copy recycling
	// fast paths are bypassed.
	FaultSpec string
	// FaultSeed seeds the fault schedule (default 1). Over a wall clock
	// schedules are statistical rather than replayable; the seed still
	// pins the decision stream for a given message interleaving.
	FaultSeed int64
}

// ProxyServer runs RUM as a real TCP proxy: switches connect to it as if
// it were the controller; it connects onward to the actual controller.
type ProxyServer struct {
	cfg  ProxyConfig
	rum  *RUM
	byID map[uint64]string

	faultPlan *faults.Plan     // nil when fault injection is off
	faultInj  *faults.Injector // shared across every wrapped conn

	mu       sync.Mutex
	attached map[string]bool
	booted   bool
}

// NewProxyServer validates the configuration and builds the server.
func NewProxyServer(cfg ProxyConfig) (*ProxyServer, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("rum: ProxyConfig.Topology is required")
	}
	if cfg.ControllerAddr == "" {
		return nil, fmt.Errorf("rum: ProxyConfig.ControllerAddr is required")
	}
	if cfg.RUM.Clock == nil {
		cfg.RUM.Clock = NewWallClock()
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	byID := make(map[uint64]string, len(cfg.Switches))
	names := make(map[string]bool, len(cfg.Switches))
	for _, s := range cfg.Switches {
		if s.Name == "" {
			return nil, fmt.Errorf("rum: switch %#x has no name", s.DPID)
		}
		byID[s.DPID] = s.Name
		names[s.Name] = true
	}
	// Catch per-switch override typos here, against the authoritative set
	// of attachable switches (a name may legitimately be absent from the
	// topology when its strategy needs no probe routing).
	for sw := range cfg.RUM.PerSwitch {
		if !names[sw] {
			return nil, fmt.Errorf("rum: PerSwitch[%q] names a switch not in ProxyConfig.Switches", sw)
		}
	}
	r, err := core.New(cfg.RUM, cfg.Topology)
	if err != nil {
		return nil, err
	}
	p := &ProxyServer{
		cfg:      cfg,
		rum:      r,
		byID:     byID,
		attached: make(map[string]bool),
	}
	if cfg.FaultSpec != "" {
		plan, err := faults.ParsePlan(cfg.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("rum: ProxyConfig.FaultSpec: %w", err)
		}
		if plan.Enabled() {
			seed := cfg.FaultSeed
			if seed == 0 {
				seed = 1
			}
			p.faultPlan = plan
			p.faultInj = faults.NewInjector(seed)
		}
	}
	return p, nil
}

// FaultsArmed reports whether ProxyConfig.FaultSpec parsed to an active
// fault plan (an empty or "none" spec leaves injection off).
func (p *ProxyServer) FaultsArmed() bool { return p.faultInj != nil }

// FaultStats reports the fault-injection tally when ProxyConfig.FaultSpec
// is active (zero value otherwise).
func (p *ProxyServer) FaultStats() faults.Stats {
	if p.faultInj == nil {
		return faults.Stats{}
	}
	return p.faultInj.Stats()
}

// RUM exposes the underlying instance (Watch, Subscribe, Stats,
// Bootstrap).
func (p *ProxyServer) RUM() *RUM { return p.rum }

// reportError surfaces an asynchronous error from a handler goroutine.
func (p *ProxyServer) reportError(err error) {
	if p.cfg.OnError != nil {
		p.cfg.OnError(err)
		return
	}
	log.Printf("rum: %v", err)
}

// Serve accepts switch connections on ln until the listener closes. Once
// every configured switch has attached, probe infrastructure is installed
// automatically. Per-connection failures are reported through
// ProxyConfig.OnError and close the offending connection; they do not
// stop the server.
func (p *ProxyServer) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := p.handle(nc); err != nil {
				_ = nc.Close()
				p.reportError(err)
			}
		}()
	}
}

// handle identifies one switch connection and splices it into RUM. On
// error every resource it acquired — including the onward controller
// connection — is released before returning.
func (p *ProxyServer) handle(nc net.Conn) error {
	// Identification handshake, performed by RUM itself before the
	// controller ever sees the switch: hello + features request.
	deadline := time.Now().Add(p.cfg.HandshakeTimeout)
	_ = nc.SetDeadline(deadline)
	if err := of.WriteMessage(nc, &of.Hello{}); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	fr := &of.FeaturesRequest{}
	fr.SetXID(0xf0f0f0f0)
	if err := of.WriteMessage(nc, fr); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	var dpid uint64
	for {
		m, err := of.ReadMessage(nc)
		if err != nil {
			return fmt.Errorf("handshake: %w", err)
		}
		if rep, ok := m.(*of.FeaturesReply); ok {
			dpid = rep.DatapathID
			break
		}
		// Hello / echo traffic before the reply is fine; answer echoes.
		if er, ok := m.(*of.EchoRequest); ok {
			rep := &of.EchoReply{Data: er.Data}
			rep.SetXID(er.GetXID())
			if err := of.WriteMessage(nc, rep); err != nil {
				return fmt.Errorf("handshake: %w", err)
			}
		}
	}
	_ = nc.SetDeadline(time.Time{})

	name, known := p.byID[dpid]
	if !known {
		return fmt.Errorf("unknown datapath %#x", dpid)
	}
	ctrlNC, err := net.Dial("tcp", p.cfg.ControllerAddr)
	if err != nil {
		return fmt.Errorf("dialing controller for %s: %w", name, err)
	}
	swConn := transport.NewTCPOpts(nc, transport.TCPOptions{
		MaxPending:    p.cfg.TCPMaxPending,
		Policy:        p.cfg.RUM.Overload,
		BlockDeadline: p.cfg.RUM.OverloadDeadline,
	})
	ctrlConn := transport.NewTCP(ctrlNC)
	if p.faultPlan != nil {
		wrapped := faults.Wrap(swConn, p.cfg.RUM.Clock, p.faultInj, p.faultPlan)
		if fc, ok := wrapped.(*faults.Conn); ok {
			// A fault-cut channel looks exactly like a switch dying: the
			// session is detached (failing its futures with
			// ErrChannelLost) and the real switch's broken TCP conn will
			// drive its reconnect loop back through Serve.
			fc.OnKill(func() {
				if p.rum.DetachSwitchCause(name, ErrChannelLost) {
					p.reportError(fmt.Errorf("faults: cut control channel of %s", name))
				}
			})
		}
		swConn = wrapped
	}
	_, err = p.rum.AttachSwitch(name, dpid, ctrlConn, swConn)
	if err != nil {
		// A switch that reconnects after a dropped TCP session still owns
		// its name: evict the stale session (closing its conns) and splice
		// the new connection in its place. Last-connected wins — two live
		// devices misconfigured with the same DPID will evict each other,
		// visible as a reconnect loop in the OnError/log stream.
		if p.rum.DetachSwitch(name) {
			_, err = p.rum.AttachSwitch(name, dpid, ctrlConn, swConn)
		}
	}
	if err != nil {
		// The dialed controller connection is not yet owned by a session
		// and must not leak.
		_ = ctrlConn.Close()
		return fmt.Errorf("attaching %s: %w", name, err)
	}

	p.mu.Lock()
	p.attached[name] = true
	ready := len(p.attached) == len(p.byID)
	alreadyBooted := p.booted
	if ready && !p.booted {
		// Claim the fleet-wide bootstrap atomically: a switch reconnecting
		// while it is in flight must take the single-switch path, not start
		// a second, concurrent full Bootstrap that would reset live probe
		// rules.
		p.booted = true
	}
	p.mu.Unlock()
	var bootErr error
	switch {
	case alreadyBooted:
		// Reconnection after the fleet was bootstrapped: reinstall probe
		// infrastructure on this switch only — re-bootstrapping everyone
		// would reset live probe rules mid-confirmation.
		bootErr = p.rum.BootstrapSwitch(name)
	case ready:
		bootErr = p.rum.Bootstrap()
		if bootErr != nil {
			// Release the claim so the next attach retries the full
			// Bootstrap.
			p.mu.Lock()
			p.booted = false
			p.mu.Unlock()
		}
	}
	if bootErr != nil {
		// Bootstrap failures are fleet-level configuration problems, not
		// this connection's fault: keep the session proxying (RUM degrades
		// to pass-through for unbootstrapped strategies) and surface the
		// error. With p.booted still false, the next attach retries the
		// full Bootstrap.
		p.reportError(fmt.Errorf("rum: bootstrap: %w", bootErr))
	}
	return nil
}

// Attached reports how many switches have completed identification.
func (p *ProxyServer) Attached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.attached)
}
