package rum

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rum/internal/core"
	"rum/internal/of"
	"rum/internal/transport"
)

// SwitchIdentity names one switch RUM expects to connect.
type SwitchIdentity struct {
	// DPID is the datapath id the switch reports in its FeaturesReply.
	DPID uint64
	// Name must match the topology's switch names.
	Name string
}

// ProxyConfig parameterizes a TCP deployment of RUM (cmd/rumproxy).
type ProxyConfig struct {
	// RUM is the monitoring-layer configuration. Clock defaults to a wall
	// clock.
	RUM Config
	// Topology describes the inter-switch links (probe routing).
	Topology *Topology
	// Switches maps expected datapath ids to topology names. Connections
	// from unknown datapaths are rejected.
	Switches []SwitchIdentity
	// ControllerAddr is the real controller's TCP address; RUM dials one
	// connection per switch, impersonating it (§4 of the paper).
	ControllerAddr string
	// HandshakeTimeout bounds the identification handshake per switch.
	HandshakeTimeout time.Duration
}

// ProxyServer runs RUM as a real TCP proxy: switches connect to it as if
// it were the controller; it connects onward to the actual controller.
type ProxyServer struct {
	cfg  ProxyConfig
	rum  *RUM
	byID map[uint64]string

	mu       sync.Mutex
	attached map[string]bool
}

// NewProxyServer validates the configuration and builds the server.
func NewProxyServer(cfg ProxyConfig) (*ProxyServer, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("rum: ProxyConfig.Topology is required")
	}
	if cfg.ControllerAddr == "" {
		return nil, fmt.Errorf("rum: ProxyConfig.ControllerAddr is required")
	}
	if cfg.RUM.Clock == nil {
		cfg.RUM.Clock = NewWallClock()
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	byID := make(map[uint64]string, len(cfg.Switches))
	for _, s := range cfg.Switches {
		if s.Name == "" {
			return nil, fmt.Errorf("rum: switch %#x has no name", s.DPID)
		}
		byID[s.DPID] = s.Name
	}
	return &ProxyServer{
		cfg:      cfg,
		rum:      core.New(cfg.RUM, cfg.Topology),
		byID:     byID,
		attached: make(map[string]bool),
	}, nil
}

// RUM exposes the underlying instance (stats, Bootstrap).
func (p *ProxyServer) RUM() *RUM { return p.rum }

// Serve accepts switch connections on ln until the listener closes. Once
// every configured switch has attached, probe infrastructure is installed
// automatically.
func (p *ProxyServer) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := p.handle(nc); err != nil {
				_ = nc.Close()
			}
		}()
	}
}

// handle identifies one switch connection and splices it into RUM.
func (p *ProxyServer) handle(nc net.Conn) error {
	// Identification handshake, performed by RUM itself before the
	// controller ever sees the switch: hello + features request.
	deadline := time.Now().Add(p.cfg.HandshakeTimeout)
	_ = nc.SetDeadline(deadline)
	if err := of.WriteMessage(nc, &of.Hello{}); err != nil {
		return err
	}
	fr := &of.FeaturesRequest{}
	fr.SetXID(0xf0f0f0f0)
	if err := of.WriteMessage(nc, fr); err != nil {
		return err
	}
	var dpid uint64
	for {
		m, err := of.ReadMessage(nc)
		if err != nil {
			return err
		}
		if rep, ok := m.(*of.FeaturesReply); ok {
			dpid = rep.DatapathID
			break
		}
		// Hello / echo traffic before the reply is fine; answer echoes.
		if er, ok := m.(*of.EchoRequest); ok {
			rep := &of.EchoReply{Data: er.Data}
			rep.SetXID(er.GetXID())
			if err := of.WriteMessage(nc, rep); err != nil {
				return err
			}
		}
	}
	_ = nc.SetDeadline(time.Time{})

	name, known := p.byID[dpid]
	if !known {
		return fmt.Errorf("rum: unknown datapath %#x", dpid)
	}
	ctrlNC, err := net.Dial("tcp", p.cfg.ControllerAddr)
	if err != nil {
		return fmt.Errorf("rum: dialing controller for %s: %w", name, err)
	}
	swConn := transport.NewTCP(nc)
	ctrlConn := transport.NewTCP(ctrlNC)
	p.rum.AttachSwitch(name, dpid, ctrlConn, swConn)

	p.mu.Lock()
	p.attached[name] = true
	ready := len(p.attached) == len(p.byID)
	p.mu.Unlock()
	if ready {
		if err := p.rum.Bootstrap(); err != nil {
			return err
		}
	}
	return nil
}

// Attached reports how many switches have completed identification.
func (p *ProxyServer) Attached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.attached)
}
