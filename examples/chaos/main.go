// Chaos: the reliability experiment suite. A fat-tree fabric under the
// mixed-strategy churn is subjected to each fault profile — message
// loss, duplication and reordering, corruption, control-channel cuts,
// switch crashes with FIB wipes, and mid-run slow-dataplane
// degradation — and every acknowledgment strategy is scored on the three
// reliability axes the paper's premise demands:
//
//   - completeness: every future resolves (positive ack or typed error;
//     a wedged future means the strategy lost an update);
//   - honesty: false-ack rate against data-plane ground truth (an
//     "installed" ack for a rule that never became visible);
//   - recovery: how quickly a reconnected switch confirms new updates.
//
// The fault schedule is seed-deterministic: the same seed replays the
// same faults and the same ack trace, byte for byte.
//
// Run: go run ./examples/chaos [-k 4] [-updates 20] [-seed 1] [-profile loss]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"rum/internal/core"
	"rum/internal/experiments"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity (even)")
	updates := flag.Int("updates", 20, "rule updates per switch per wave")
	seed := flag.Int64("seed", 1, "fault-schedule seed")
	profile := flag.String("profile", "", "run a single profile (default: the whole suite)")
	flag.Parse()

	profiles := experiments.FaultProfiles()
	if *profile != "" {
		want := experiments.FaultProfile(*profile)
		known := false
		for _, p := range profiles {
			if p == want {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "chaos: unknown profile %q (profiles: %v)\n", *profile, profiles)
			os.Exit(2)
		}
		profiles = []experiments.FaultProfile{want}
	}

	fmt.Printf("%-12s %8s %8s %8s %8s %10s %10s  %s\n",
		"profile", "acked", "failed", "wedged", "false", "p99", "recovery", "injected faults")
	for _, p := range profiles {
		res, err := experiments.FaultChurn(experiments.FaultChurnOpts{
			Profile:          p,
			Seed:             *seed,
			K:                *k,
			UpdatesPerSwitch: *updates,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %8d %8d %8d %8d %10s %10s  %s\n",
			res.Profile, res.Acked, res.FailedTyped, res.Wedged, res.FalseAcks,
			round(res.P99), round(res.RecoveryMax), res.Injected)

		techs := make([]core.Technique, 0, len(res.PerTechnique))
		for t := range res.PerTechnique {
			techs = append(techs, t)
		}
		sort.Slice(techs, func(i, j int) bool { return techs[i] < techs[j] })
		for _, t := range techs {
			st := res.PerTechnique[t]
			fmt.Printf("    %-10s %4d updates: %d acked, %d failed-typed, %d send-failed, %d wedged, %d false-acks\n",
				t, st.Updates, st.Acked, st.FailedTyped, st.SendFailed, st.Wedged, st.FalseAcks)
		}
		if res.Wedged > 0 {
			fmt.Fprintf(os.Stderr, "chaos: %s wedged %d futures\n", res.Profile, res.Wedged)
			os.Exit(1)
		}
	}
	fmt.Println("\nevery future resolved under every profile: ack or typed error, none wedged")
}

func round(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}
