// Quickstart: install one rule on a buggy hardware switch through RUM and
// watch the difference between the switch's (premature) barrier reply and
// RUM's data-plane-verified acknowledgment.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"
	"time"

	"rum"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

func main() {
	// Everything runs on a deterministic simulated clock.
	clk := rum.NewSimClock()
	network := netsim.New(clk)

	// The paper's triangle: software s1/s3 around the buggy hardware s2.
	profiles := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": switchsim.ProfileHP5406zl(), // barrier replies up to 300 ms early
		"s3": switchsim.ProfileSoftware(),
	}
	switches := map[string]*switchsim.Switch{}
	for i, name := range []string{"s1", "s2", "s3"} {
		switches[name] = switchsim.New(name, uint64(i+1), profiles[name], clk, network)
	}
	h1 := netsim.NewHost(network, "h1")
	h2 := netsim.NewHost(network, "h2")
	lat := 20 * time.Microsecond
	network.Connect(h1, h1.Port(), switches["s1"], 1, lat)
	network.Connect(switches["s1"], 2, switches["s2"], 1, lat)
	network.Connect(switches["s2"], 2, switches["s3"], 2, lat)
	network.Connect(switches["s1"], 3, switches["s3"], 3, lat)
	network.Connect(switches["s3"], 1, h2, h2.Port(), lat)

	// RUM with general (per-rule) data-plane probing, selected by strategy
	// name from the registry.
	r, err := rum.New(rum.Config{
		Clock:     clk,
		Technique: rum.TechGeneral,
		RUMAware:  true,
	}, rum.NewTopology([]rum.TopoLink{
		{A: "s1", APort: 2, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 2},
		{A: "s1", APort: 3, B: "s3", BPort: 3},
	}))
	if err != nil {
		panic(err)
	}

	// Splice RUM between a "controller" conn and each switch.
	ctrl := map[string]transport.Conn{}
	for name, sw := range switches {
		ctrlTop, ctrlBottom := transport.Pipe(clk, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(clk, 100*time.Microsecond)
		sw.AttachConn(swSide)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			panic(err)
		}
		ctrl[name] = ctrlTop
	}

	// Watch the barrier reply on the wire; RUM's own ack arrives as a
	// typed AckResult through the future below.
	var barrierReplyAt time.Duration
	ctrl["s2"].SetHandler(func(m of.Message) {
		if m.MsgType() == of.TypeBarrierReply {
			barrierReplyAt = clk.Now()
		}
	})

	// And subscribe to the typed event stream for probe visibility.
	sub := r.Subscribe(256)
	defer sub.Close()

	// Install probe rules, wait for the switch data planes to absorb them.
	if err := r.Bootstrap(); err != nil {
		panic(err)
	}
	clk.RunFor(700 * time.Millisecond)

	// The controller installs a rule on the buggy switch, with a barrier.
	// Watch the modification first: the handle resolves into a typed
	// AckResult once RUM proves the rule is in the data plane.
	start := clk.Now()
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	m.SetNWDst(netip.MustParseAddr("10.1.0.1"))
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	fm.SetXID(1)
	handle := r.Watch("s2", fm.GetXID())
	_ = ctrl["s2"].Send(fm)
	br := &of.BarrierRequest{}
	br.SetXID(2)
	_ = ctrl["s2"].Send(br)

	clk.RunFor(2 * time.Second)

	res, ok := handle.Result()
	if !ok {
		panic("rule never acknowledged")
	}
	rumAckAt := res.ConfirmedAt
	fmt.Printf("t=%8v  ack future resolved: xid=%d outcome=%s latency=%v\n",
		res.ConfirmedAt.Round(time.Millisecond), res.XID, res.Outcome,
		res.Latency.Round(time.Millisecond))
	probes := 0
	for drained := false; !drained; {
		select {
		case ev := <-sub.C:
			if _, isProbe := ev.(rum.ProbeEvent); isProbe {
				probes++
			}
		default:
			drained = true
		}
	}
	fmt.Printf("           event stream saw %d probe injections\n", probes)

	// Ground truth from the emulated switch.
	var activatedAt time.Duration
	for _, a := range switches["s2"].Activations() {
		if a.XID == 1 {
			activatedAt = a.At
		}
	}
	fmt.Printf("\n  switch barrier reply : t=%v   (%-v after the FlowMod)\n",
		barrierReplyAt.Round(time.Millisecond), (barrierReplyAt - start).Round(time.Millisecond))
	fmt.Printf("  data-plane activation: t=%v  (%v after the FlowMod)\n",
		activatedAt.Round(time.Millisecond), (activatedAt - start).Round(time.Millisecond))
	fmt.Printf("  RUM acknowledgment   : t=%v  (%v after the FlowMod)\n\n",
		rumAckAt.Round(time.Millisecond), (rumAckAt - start).Round(time.Millisecond))
	if barrierReplyAt < activatedAt {
		fmt.Printf("the barrier reply arrived %v BEFORE the rule was in the data plane;\n",
			(activatedAt - barrierReplyAt).Round(time.Millisecond))
	}
	if rumAckAt >= activatedAt {
		fmt.Println("RUM's ack arrived only after the rule was truly active.")
	}
}
