// Path migration: the paper's §1 end-to-end experiment. 300 flows move
// from S1→S3 to S1→S2→S3 under a consistent update. With broken barrier
// acknowledgments packets drop for up to ~300 ms per flow; with RUM's
// probing acknowledgments, nothing is lost.
//
// The update itself is compiled by the consistent-update planner: each
// flow becomes a PathChange, the planner orders the waves
// (add-before-remove, flip only after downstream confirms) and verifies
// every transient configuration with header-space analysis before
// releasing it. The per-run wave counts below come from that planner.
//
// Run: go run ./examples/pathmigration [-flows 300] [-technique sequential]
package main

import (
	"flag"
	"fmt"
	"log"
	"slices"
	"time"

	"rum/internal/core"
	"rum/internal/experiments"
	"rum/internal/metrics"
)

func main() {
	flows := flag.Int("flows", 300, "number of flows to migrate")
	technique := flag.String("technique", "sequential", "RUM technique for the safe run")
	flag.Parse()

	// Any registered ack strategy works for the safe run; validate the
	// name against the registry.
	tech := core.Technique(*technique)
	if !slices.Contains(core.StrategyNames(), *technique) {
		log.Fatalf("unknown technique %q (registered: %v)", *technique, core.StrategyNames())
	}

	fmt.Printf("migrating %d flows (250 pkt/s each) on the triangle topology\n\n", *flows)

	broken := experiments.RunMigration(experiments.MigrationOpts{
		Technique: core.TechBarriers, NumFlows: *flows,
	})
	report("plain OpenFlow barriers (buggy switch)", broken)

	safe := experiments.RunMigration(experiments.MigrationOpts{
		Technique: tech, NumFlows: *flows,
	})
	report(fmt.Sprintf("RUM %s acknowledgments", tech), safe)

	fmt.Println("broken-time distribution (barriers):")
	bt := metrics.BrokenTimes(broken.Updates)
	for _, p := range []float64{50, 90, 99, 100} {
		fmt.Printf("  p%-3.0f %v\n", p, metrics.Percentile(bt, p).Round(time.Millisecond))
	}
}

func report(name string, res *experiments.MigrationResult) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  packets lost        : %d\n", res.TotalLost)
	fmt.Printf("  max broken time     : %v\n", res.MaxBroken.Round(time.Millisecond))
	fmt.Printf("  mean flow update    : %v\n", res.MeanUpdate.Round(time.Millisecond))
	fmt.Printf("  total update length : %v\n", res.Duration.Round(time.Millisecond))
	fmt.Printf("  waves HSA-verified  : %d (%v wall)\n\n", res.VerifiedWaves, res.VerifyWall.Round(time.Microsecond))
}
