// TCP deployment: the production wiring of §4, entirely on loopback. An
// emulated switch network (real-time clock) dials a RUM ProxyServer over
// TCP; RUM dials a miniature controller; the controller installs a rule
// on the buggy switch and awaits the data-plane-verified acknowledgment
// as a typed ack future (AwaitAck) — ParseAck remains available for
// controllers on the far side of the wire.
//
// Run: go run ./examples/tcpproxy
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"

	"rum"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

func main() {
	clk := rum.NewWallClock()
	network := netsim.New(clk)

	// A compressed-timescale hardware profile keeps the demo snappy while
	// preserving the control/data-plane gap.
	hp := switchsim.ProfileHP5406zl()
	hp.SyncPeriod = 200 * time.Millisecond
	hp.ModBase = 500 * time.Microsecond
	profiles := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": hp,
		"s3": switchsim.ProfileSoftware(),
	}
	switches := map[string]*switchsim.Switch{}
	for i, name := range []string{"s1", "s2", "s3"} {
		switches[name] = switchsim.New(name, uint64(i+1), profiles[name], clk, network)
	}
	h1 := netsim.NewHost(network, "h1")
	h2 := netsim.NewHost(network, "h2")
	lat := 100 * time.Microsecond
	network.Connect(h1, h1.Port(), switches["s1"], 1, lat)
	network.Connect(switches["s1"], 2, switches["s2"], 1, lat)
	network.Connect(switches["s2"], 2, switches["s3"], 2, lat)
	network.Connect(switches["s1"], 3, switches["s3"], 3, lat)
	network.Connect(switches["s3"], 1, h2, h2.Port(), lat)

	// Miniature controller.
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctrlLn.Close()
	var mu sync.Mutex
	conns := map[uint64]transport.Conn{}
	go func() {
		for {
			nc, err := ctrlLn.Accept()
			if err != nil {
				return
			}
			conn := transport.NewTCP(nc)
			conn.SetHandler(func(m of.Message) {
				if fr, ok := m.(*of.FeaturesReply); ok {
					mu.Lock()
					conns[fr.DatapathID] = conn
					mu.Unlock()
				}
			})
			_ = conn.Send(&of.Hello{})
			freq := &of.FeaturesRequest{}
			freq.SetXID(100)
			_ = conn.Send(freq)
		}
	}()

	// RUM proxy between the two.
	srv, err := rum.NewProxyServer(rum.ProxyConfig{
		RUM: rum.Config{Clock: clk, Technique: rum.TechGeneral, RUMAware: true},
		Topology: rum.NewTopology([]rum.TopoLink{
			{A: "s1", APort: 2, B: "s2", BPort: 1},
			{A: "s2", APort: 2, B: "s3", BPort: 2},
			{A: "s1", APort: 3, B: "s3", BPort: 3},
		}),
		Switches: []rum.SwitchIdentity{
			{DPID: 1, Name: "s1"}, {DPID: 2, Name: "s2"}, {DPID: 3, Name: "s3"},
		},
		ControllerAddr: ctrlLn.Addr().String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer proxyLn.Close()
	go func() { _ = srv.Serve(proxyLn) }()
	fmt.Printf("controller at %s, RUM proxy at %s\n", ctrlLn.Addr(), proxyLn.Addr())

	// Switches dial RUM.
	for _, name := range []string{"s1", "s2", "s3"} {
		nc, err := net.Dial("tcp", proxyLn.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer nc.Close()
		switches[name].AttachConn(transport.NewTCP(nc))
	}
	for srv.Attached() < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("all three switches attached; probe rules installing...")
	time.Sleep(500 * time.Millisecond)

	// Install a rule on the buggy switch via the controller's s2 channel.
	mu.Lock()
	s2conn := conns[2]
	mu.Unlock()
	if s2conn == nil {
		log.Fatal("controller never identified s2")
	}
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	m.SetNWDst(netip.MustParseAddr("10.1.0.1"))
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	fm.SetXID(4242)
	// Register the ack future before sending, then block on it: under a
	// wall clock AwaitAck is an ordinary blocking call.
	handle := srv.RUM().Watch("s2", fm.GetXID())
	sentAt := time.Now()
	_ = s2conn.Send(fm)
	fmt.Println("FlowMod xid=4242 sent to s2 through RUM; awaiting the data-plane-verified ack...")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := handle.AwaitAck(ctx)
	if err != nil {
		log.Fatalf("no ack within 10s: %v", err)
	}
	fmt.Printf("ack future: xid=%d outcome=%s latency=%v wall=%v (data-plane sync period is %v)\n",
		res.XID, res.Outcome, res.Latency.Round(time.Millisecond),
		time.Since(sentAt).Round(time.Millisecond), hp.SyncPeriod)
}
