// Fattree: the datacenter-scale churn workload. A k-ary fat-tree fabric
// of emulated switches (80 at k=8) is proxied by one RUM instance while
// every switch receives a storm of concurrent rule updates, with the
// acknowledgment strategy mixed per layer: sequential probing on the
// edge, general probing on the aggregation layer, the timeout technique
// in the core. The run reports the hot-path scale metrics — updates/sec
// through the proxy and the p50/p99 ack latency — and can replay the
// same storm over the pre-sharding compatibility path for comparison.
//
// Run: go run ./examples/fattree [-k 8] [-updates 25] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"

	"rum/internal/experiments"
)

func main() {
	k := flag.Int("k", 8, "fat-tree arity (even)")
	updates := flag.Int("updates", 25, "rule updates per switch")
	compare := flag.Bool("compare", false,
		"also run the pre-sharding (unsharded) hot path and compare switch load")
	flag.Parse()

	run := func(unsharded bool) *experiments.FatTreeChurnResult {
		res, err := experiments.FatTreeChurn(experiments.FatTreeChurnOpts{
			K:                *k,
			UpdatesPerSwitch: *updates,
			Mixed:            true,
			Unsharded:        unsharded,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fattree:", err)
			os.Exit(1)
		}
		return res
	}

	res := run(false)
	fmt.Printf("k=%d fat-tree: %d switches, %d updates (mixed strategies)\n",
		res.K, res.Switches, res.Updates)
	fmt.Printf("  completed %d  failed %d  unacked %d\n", res.Completed, res.Failed, res.Unacked)
	fmt.Printf("  wall %v  (%.0f updates/sec through the proxy)\n", res.WallElapsed, res.UpdatesPerSec)
	fmt.Printf("  ack latency p50 %v  p99 %v (simulated)\n", res.P50, res.P99)
	fmt.Printf("  acks %d  probes %d  fallbacks %d  switch barriers %d\n",
		res.Acks, res.Probes, res.Fallbacks, res.SwitchBarriers)

	if *compare {
		// The deterministic cross-mode comparison is switch load: the
		// sharded core coalesces its barriers, so the same churn costs the
		// fabric's control planes far fewer operations. (Wall-clock
		// throughput is compared by BenchmarkShardContention, which runs
		// genuinely concurrent drivers; this simulation is single-threaded
		// by design.)
		base := run(true)
		fmt.Printf("unsharded baseline: %d switch barriers for the same %d updates\n",
			base.SwitchBarriers, base.Updates)
		if res.SwitchBarriers < base.SwitchBarriers {
			fmt.Printf("  sharded core: %d (%.1f%% of baseline — coalesced)\n",
				res.SwitchBarriers, 100*float64(res.SwitchBarriers)/float64(base.SwitchBarriers))
		}
	}
}
