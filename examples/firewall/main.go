// Firewall bypass: the paper's Figure 2. A "theoretically safe" update
// installs Y (host→S3) and Z (host's http→FIREWALL) on switch B and only
// then X (forward host traffic) on switch A. On a switch whose
// acknowledgments lie, X goes live while Z is still missing from B's data
// plane — and http traffic bypasses the firewall. RUM closes the hole.
//
// Run: go run ./examples/firewall
package main

import (
	"fmt"
	"time"

	"rum/internal/experiments"
)

func main() {
	fmt.Println("update plan: X after Y, X after Z  (Figure 2 of the paper)")
	fmt.Println()

	broken := experiments.Firewall(experiments.FirewallOpts{WithRUM: false})
	fmt.Printf("with broken barrier acks:\n")
	fmt.Printf("  http packets that BYPASSED the firewall: %d\n", broken.BypassedHTTP)
	fmt.Printf("  http packets through the firewall      : %d\n", broken.FirewalledHTTP)
	fmt.Printf("  (Z reached B's data plane only at t=%v)\n\n", broken.WindowClosed.Round(time.Millisecond))

	withRUM := experiments.Firewall(experiments.FirewallOpts{WithRUM: true})
	fmt.Printf("with RUM general probing:\n")
	fmt.Printf("  http packets that BYPASSED the firewall: %d\n", withRUM.BypassedHTTP)
	fmt.Printf("  http packets through the firewall      : %d\n", withRUM.FirewalledHTTP)
	fmt.Println()
	if broken.BypassedHTTP > 0 && withRUM.BypassedHTTP == 0 {
		fmt.Println("RUM eliminated the transient security hole.")
	}
}
