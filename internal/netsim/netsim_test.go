package netsim

import (
	"net/netip"
	"testing"
	"time"

	"rum/internal/packet"
	"rum/internal/sim"
)

// echoNode forwards everything it receives out of a fixed port.
type echoNode struct {
	name string
	net  *Network
	out  uint16
}

func (e *echoNode) Name() string { return e.name }
func (e *echoNode) Receive(fr *Frame, inPort uint16) {
	e.net.Transmit(e, e.out, fr)
}

func TestLinkDeliveryAndTrace(t *testing.T) {
	s := sim.New()
	n := New(s)
	h1 := NewHost(n, "h1")
	h2 := NewHost(n, "h2")
	mid := &echoNode{name: "mid", net: n, out: 2}
	n.Attach(mid)
	n.Connect(h1, h1.Port(), mid, 1, time.Millisecond)
	n.Connect(mid, 2, h2, h2.Port(), 2*time.Millisecond)

	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	h1.Send(&Frame{Pkt: pkt, FlowID: 5})
	s.Run()

	arr := h2.Arrivals()
	if len(arr) != 1 {
		t.Fatalf("arrivals = %d, want 1", len(arr))
	}
	if arr[0].At != 3*time.Millisecond {
		t.Errorf("arrival at %v, want 3ms (sum of link latencies)", arr[0].At)
	}
	if arr[0].LastHop != "mid" {
		t.Errorf("last hop = %q, want mid", arr[0].LastHop)
	}
	if arr[0].FlowID != 5 || arr[0].SentAt != 0 {
		t.Errorf("arrival metadata = %+v", arr[0])
	}
}

func TestUnwiredPortDrops(t *testing.T) {
	s := sim.New()
	n := New(s)
	h1 := NewHost(n, "h1")
	// Host port 1 is unwired.
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	h1.Send(&Frame{Pkt: pkt, FlowID: 1, Seq: 3})
	s.Run()
	drops := n.Drops()
	if len(drops) != 1 || drops[0].FlowID != 1 || drops[0].Seq != 3 {
		t.Fatalf("drops = %+v", drops)
	}
}

func TestDropHandlerInvoked(t *testing.T) {
	s := sim.New()
	n := New(s)
	h1 := NewHost(n, "h1")
	var seen int
	n.SetDropHandler(func(fr *Frame, where, reason string) { seen++ })
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	h1.Send(&Frame{Pkt: pkt})
	s.Run()
	if seen != 1 {
		t.Errorf("drop handler called %d times, want 1", seen)
	}
}

func TestPortPeerAndPorts(t *testing.T) {
	s := sim.New()
	n := New(s)
	h1 := NewHost(n, "h1")
	h2 := NewHost(n, "h2")
	mid := &echoNode{name: "mid", net: n, out: 2}
	n.Attach(mid)
	n.Connect(h1, h1.Port(), mid, 1, 0)
	n.Connect(mid, 2, h2, h2.Port(), 0)
	if got := n.PortPeer("mid", 1); got != "h1" {
		t.Errorf("PortPeer(mid,1) = %q, want h1", got)
	}
	if got := n.PortPeer("mid", 2); got != "h2" {
		t.Errorf("PortPeer(mid,2) = %q, want h2", got)
	}
	if got := n.PortPeer("mid", 9); got != "" {
		t.Errorf("PortPeer(mid,9) = %q, want empty", got)
	}
	ports := n.Ports("mid")
	if len(ports) != 2 || ports[0] != 1 || ports[1] != 2 {
		t.Errorf("Ports(mid) = %v", ports)
	}
}

func TestGeneratorRateAndSeqs(t *testing.T) {
	s := sim.New()
	n := New(s)
	h1 := NewHost(n, "h1")
	h2 := NewHost(n, "h2")
	n.Connect(h1, h1.Port(), h2, h2.Port(), 0)
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	gen := NewGenerator(h1, []Flow{
		{ID: 0, Pkt: pkt, Period: 4 * time.Millisecond},
		{ID: 1, Pkt: pkt.Clone(), Period: 4 * time.Millisecond},
	})
	gen.Start(time.Millisecond)
	s.RunUntil(100 * time.Millisecond)
	gen.Stop()
	s.RunFor(10 * time.Millisecond)

	byFlow := h2.ArrivalsByFlow()
	// Flow 0 starts at 0, period 4ms: arrivals at 0,4,...,100 -> 26 by t=100.
	if got := len(byFlow[0]); got < 25 || got > 27 {
		t.Errorf("flow 0 arrivals = %d, want ~26", got)
	}
	// Seq numbers must be consecutive from 0.
	for fid, arrs := range byFlow {
		for i, a := range arrs {
			if a.Seq != i {
				t.Fatalf("flow %d arrival %d has seq %d", fid, i, a.Seq)
			}
		}
	}
	sent := gen.Sent()
	if sent[0] == 0 || sent[1] == 0 {
		t.Errorf("Sent() = %v", sent)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	s := sim.New()
	n := New(s)
	NewHost(n, "h1")
	NewHost(n, "h1")
}
