package netsim

import "fmt"

// FatTreeLink is one inter-switch link of a fat-tree fabric, expressed in
// the same (name, port)×2 form RUM's topology map uses.
type FatTreeLink struct {
	A     string
	APort uint16
	B     string
	BPort uint16
}

// FatTree is a k-ary fat-tree switch fabric (Al-Fares et al.): (k/2)²
// core switches and k pods of k/2 aggregation plus k/2 edge switches,
// every switch with k ports. It is the scale workload's topology — a
// k=8 instance is an 80-switch datacenter fabric — generated as pure
// wiring data so the same spec can drive the simulated network, RUM's
// topology map, and a TCP deployment's flag set.
//
// Port conventions (1-based, matching the rest of the system):
//
//   - edge switch: ports 1..k/2 face hosts, port k/2+1+j reaches the
//     pod's aggregation switch j;
//   - aggregation switch j: port i+1 reaches the pod's edge switch i,
//     port k/2+1+m reaches core switch j*(k/2)+m;
//   - core switch: port p+1 reaches pod p.
type FatTree struct {
	K     int
	Core  []string // (k/2)² names, index c = j*(k/2)+m
	Agg   []string // k*(k/2) names, pod-major
	Edge  []string // k*(k/2) names, pod-major
	Links []FatTreeLink
	// HostPorts lists each edge switch's host-facing ports (1..k/2).
	HostPorts map[string][]uint16
}

// NewFatTree generates a k-ary fat-tree. k must be even and in [2, 16]
// (16 pods of 8+8 switches is already a 320-switch fabric; larger k
// overflows nothing but helps nobody in simulation).
func NewFatTree(k int) (*FatTree, error) {
	if k < 2 || k > 16 || k%2 != 0 {
		return nil, fmt.Errorf("netsim: fat-tree arity k=%d must be even and in [2, 16]", k)
	}
	half := k / 2
	ft := &FatTree{K: k, HostPorts: make(map[string][]uint16)}

	for c := 0; c < half*half; c++ {
		ft.Core = append(ft.Core, fmt.Sprintf("c%02d", c))
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			ft.Agg = append(ft.Agg, fmt.Sprintf("p%02da%d", p, i))
			ft.Edge = append(ft.Edge, fmt.Sprintf("p%02de%d", p, i))
		}
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			edge := ft.Edge[p*half+i]
			for h := 1; h <= half; h++ {
				ft.HostPorts[edge] = append(ft.HostPorts[edge], uint16(h))
			}
			// Edge i to every aggregation switch j in the pod.
			for j := 0; j < half; j++ {
				ft.Links = append(ft.Links, FatTreeLink{
					A: edge, APort: uint16(half + 1 + j),
					B: ft.Agg[p*half+j], BPort: uint16(i + 1),
				})
			}
		}
		// Aggregation j to its k/2 core switches.
		for j := 0; j < half; j++ {
			agg := ft.Agg[p*half+j]
			for m := 0; m < half; m++ {
				ft.Links = append(ft.Links, FatTreeLink{
					A: agg, APort: uint16(half + 1 + m),
					B: ft.Core[j*half+m], BPort: uint16(p + 1),
				})
			}
		}
	}
	return ft, nil
}

// Switches lists every switch name: core, then aggregation, then edge
// (pod-major within a layer). The order is deterministic and doubles as
// the datapath-id assignment for deployments that need one.
func (ft *FatTree) Switches() []string {
	out := make([]string, 0, len(ft.Core)+len(ft.Agg)+len(ft.Edge))
	out = append(out, ft.Core...)
	out = append(out, ft.Agg...)
	out = append(out, ft.Edge...)
	return out
}

// NumSwitches returns the fabric size: (k/2)² + k² (80 for k=8).
func (ft *FatTree) NumSwitches() int {
	return len(ft.Core) + len(ft.Agg) + len(ft.Edge)
}

// InterPorts returns a switch's inter-switch ports in ascending order —
// the ports churn workloads may point forwarding rules at.
func (ft *FatTree) InterPorts(sw string) []uint16 {
	var out []uint16
	for _, l := range ft.Links {
		if l.A == sw {
			out = append(out, l.APort)
		}
		if l.B == sw {
			out = append(out, l.BPort)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
