// Package netsim is the data-plane substrate of the evaluation: a
// simulated network of nodes (switches, hosts) joined by fixed-latency
// links, with per-flow traffic generators and arrival recording. It stands
// in for the paper's physical triangle testbed; the observable quantities —
// which packets arrive where, and when — are the same ones the paper
// measures. For fault experiments, SetTransmitFilter injects data-plane
// frame loss (probe packets dying in flight), and the FatTree generator
// produces the datacenter-scale fabric the churn workloads run on.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rum/internal/packet"
	"rum/internal/sim"
)

// Frame is a packet in flight plus simulation-only metadata. The metadata
// never crosses the OpenFlow control channel; it exists so experiments can
// attribute arrivals to flows and paths without heuristics.
type Frame struct {
	Pkt    *packet.Packet
	FlowID int
	Seq    int
	SentAt time.Duration
	Trace  []string // node names visited, in order
}

// Clone copies the frame (deep-copying packet and trace) for fan-out.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Pkt = f.Pkt.Clone()
	c.Trace = append([]string(nil), f.Trace...)
	return &c
}

// Node is anything attachable to the network.
type Node interface {
	// Name returns the unique node name.
	Name() string
	// Receive handles a frame arriving on the given local port.
	Receive(fr *Frame, inPort uint16)
}

type linkEnd struct {
	node Node
	port uint16
}

type link struct {
	a, b    linkEnd
	latency time.Duration
}

// Network wires nodes together and moves frames across links on the
// simulated clock.
type Network struct {
	Clock sim.Clock

	mu       sync.Mutex
	nodes    map[string]Node
	links    map[string]map[uint16]*link // node name -> port -> link
	onDrop   func(fr *Frame, where string, reason string)
	txFilter func(from string, outPort uint16, fr *Frame) bool
	drops    []Drop
}

// Drop records a frame that died in the network.
type Drop struct {
	Where  string
	Reason string
	FlowID int
	Seq    int
	At     time.Duration
}

// New creates an empty network driven by the given clock (a *sim.Sim for
// deterministic experiments, a *sim.Wall for real-time deployments).
func New(clk sim.Clock) *Network {
	return &Network{
		Clock: clk,
		nodes: make(map[string]Node),
		links: make(map[string]map[uint16]*link),
	}
}

// Attach registers a node. It panics on duplicate names — topology wiring
// is programmer-controlled configuration, not runtime input.
func (n *Network) Attach(node Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[node.Name()]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", node.Name()))
	}
	n.nodes[node.Name()] = node
	n.links[node.Name()] = make(map[uint16]*link)
}

// Connect joins a's port pa to b's port pb with the given one-way latency.
func (n *Network) Connect(a Node, pa uint16, b Node, pb uint16, latency time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := &link{a: linkEnd{a, pa}, b: linkEnd{b, pb}, latency: latency}
	if _, dup := n.links[a.Name()][pa]; dup {
		panic(fmt.Sprintf("netsim: port %d of %q already wired", pa, a.Name()))
	}
	if _, dup := n.links[b.Name()][pb]; dup {
		panic(fmt.Sprintf("netsim: port %d of %q already wired", pb, b.Name()))
	}
	n.links[a.Name()][pa] = l
	n.links[b.Name()][pb] = l
}

// Transmit sends a frame out of node's port. The frame is delivered to the
// link peer after the link latency; if the port is unwired, the frame is
// dropped. A transmit filter (SetTransmitFilter) may veto the frame
// first — data-plane frame loss for fault experiments.
func (n *Network) Transmit(node Node, outPort uint16, fr *Frame) {
	n.mu.Lock()
	l, ok := n.links[node.Name()][outPort]
	filter := n.txFilter
	n.mu.Unlock()
	if !ok {
		n.RecordDrop(fr, node.Name(), fmt.Sprintf("unwired port %d", outPort))
		return
	}
	if filter != nil && !filter(node.Name(), outPort, fr) {
		n.RecordDrop(fr, node.Name(), "fault: link loss")
		return
	}
	dst := l.a
	if l.a.node == node {
		dst = l.b
	}
	n.Clock.After(l.latency, func() {
		fr.Trace = append(fr.Trace, dst.node.Name())
		dst.node.Receive(fr, dst.port)
	})
}

// PortPeer returns the node name reachable from node's port, or "" when
// the port is unwired. RUM's topology map is built from this.
func (n *Network) PortPeer(nodeName string, port uint16) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[nodeName][port]
	if !ok {
		return ""
	}
	if l.a.node.Name() == nodeName {
		return l.b.node.Name()
	}
	return l.a.node.Name()
}

// Ports returns the wired ports of a node in ascending order.
func (n *Network) Ports(nodeName string) []uint16 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var ports []uint16
	for p := range n.links[nodeName] {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return ports
}

// SetTransmitFilter installs a veto hook consulted for every frame about
// to cross a wired link: returning false drops the frame (recorded as a
// fault drop). The fault experiments use it to model lossy data-plane
// links — probe packets die in flight and the probing strategies must
// re-inject. A nil filter restores lossless links.
func (n *Network) SetTransmitFilter(fn func(from string, outPort uint16, fr *Frame) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.txFilter = fn
}

// SetDropHandler installs a callback invoked for every dropped frame.
func (n *Network) SetDropHandler(fn func(fr *Frame, where, reason string)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onDrop = fn
}

// RecordDrop registers a frame death (used by nodes when a table miss or a
// drop rule kills the packet).
func (n *Network) RecordDrop(fr *Frame, where, reason string) {
	n.mu.Lock()
	n.drops = append(n.drops, Drop{
		Where: where, Reason: reason,
		FlowID: fr.FlowID, Seq: fr.Seq, At: n.Clock.Now(),
	})
	fn := n.onDrop
	n.mu.Unlock()
	if fn != nil {
		fn(fr, where, reason)
	}
}

// Drops returns every recorded drop.
func (n *Network) Drops() []Drop {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Drop(nil), n.drops...)
}

// Host is a measurement endpoint: it emits frames into the network and
// records every arrival.
type Host struct {
	name string
	net  *Network
	port uint16 // single local port, conventionally 1

	mu       sync.Mutex
	arrivals []Arrival
}

// Arrival is one frame received by a host.
type Arrival struct {
	FlowID int
	Seq    int
	At     time.Duration
	SentAt time.Duration
	// LastHop is the node the frame came through immediately before the
	// host — this identifies which path the packet took.
	LastHop string
	// Trace is the full node path the frame travelled (including the
	// sending host and this host).
	Trace []string
}

// Via reports whether the frame travelled through the named node.
func (a Arrival) Via(node string) bool {
	for _, n := range a.Trace {
		if n == node {
			return true
		}
	}
	return false
}

// NewHost creates a host and attaches it to the network.
func NewHost(n *Network, name string) *Host {
	h := &Host{name: name, net: n, port: 1}
	n.Attach(h)
	return h
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Port returns the host's single port number.
func (h *Host) Port() uint16 { return h.port }

// Receive implements Node: record the arrival.
func (h *Host) Receive(fr *Frame, inPort uint16) {
	lastHop := ""
	if len(fr.Trace) >= 2 {
		lastHop = fr.Trace[len(fr.Trace)-2]
	}
	h.mu.Lock()
	h.arrivals = append(h.arrivals, Arrival{
		FlowID: fr.FlowID, Seq: fr.Seq,
		At: h.net.Clock.Now(), SentAt: fr.SentAt,
		LastHop: lastHop,
		Trace:   append([]string(nil), fr.Trace...),
	})
	h.mu.Unlock()
}

// Send emits a frame from the host into the network.
func (h *Host) Send(fr *Frame) {
	fr.SentAt = h.net.Clock.Now()
	fr.Trace = append(fr.Trace, h.name)
	h.net.Transmit(h, h.port, fr)
}

// Arrivals snapshots everything received so far.
func (h *Host) Arrivals() []Arrival {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Arrival(nil), h.arrivals...)
}

// ArrivalsByFlow groups arrivals per flow id.
func (h *Host) ArrivalsByFlow() map[int][]Arrival {
	out := make(map[int][]Arrival)
	for _, a := range h.Arrivals() {
		out[a.FlowID] = append(out[a.FlowID], a)
	}
	return out
}

// Reset clears recorded arrivals.
func (h *Host) Reset() {
	h.mu.Lock()
	h.arrivals = nil
	h.mu.Unlock()
}

// Flow describes one traffic generator flow.
type Flow struct {
	ID     int
	Pkt    *packet.Packet // template; cloned per emission
	Period time.Duration  // inter-packet gap (250 pkt/s -> 4 ms)
}

// Generator emits per-flow traffic from a host at fixed rates, mirroring
// the evaluation's 250 packets/s per flow workload.
type Generator struct {
	host  *Host
	flows []Flow

	mu      sync.Mutex
	stopped bool
	seqs    map[int]int
}

// NewGenerator creates a generator sending from h.
func NewGenerator(h *Host, flows []Flow) *Generator {
	return &Generator{host: h, flows: flows, seqs: make(map[int]int)}
}

// Start begins emission: each flow sends immediately and then every
// Period, staggered by the flow's position so the aggregate is smooth
// (flow i starts after i*stagger).
func (g *Generator) Start(stagger time.Duration) {
	for i := range g.flows {
		fl := g.flows[i]
		delay := time.Duration(i) * stagger
		g.host.net.Clock.After(delay, func() { g.emit(fl) })
	}
}

func (g *Generator) emit(fl Flow) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	seq := g.seqs[fl.ID]
	g.seqs[fl.ID] = seq + 1
	g.mu.Unlock()
	g.host.Send(&Frame{Pkt: fl.Pkt.Clone(), FlowID: fl.ID, Seq: seq})
	g.host.net.Clock.After(fl.Period, func() { g.emit(fl) })
}

// Stop halts all flows after the current emissions.
func (g *Generator) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
}

// Sent returns how many packets each flow has emitted.
func (g *Generator) Sent() map[int]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[int]int, len(g.seqs))
	for k, v := range g.seqs {
		out[k] = v
	}
	return out
}
