package netsim

import "testing"

func TestFatTreeK8Counts(t *testing.T) {
	ft, err := NewFatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.NumSwitches(); got != 80 {
		t.Fatalf("k=8 fat-tree has %d switches, want 80", got)
	}
	if len(ft.Core) != 16 || len(ft.Agg) != 32 || len(ft.Edge) != 32 {
		t.Fatalf("layer sizes core=%d agg=%d edge=%d, want 16/32/32",
			len(ft.Core), len(ft.Agg), len(ft.Edge))
	}
	// Inter-switch links: k*(k/2)² agg-core + k*(k/2)² edge-agg = 256.
	if len(ft.Links) != 256 {
		t.Fatalf("k=8 fat-tree has %d links, want 256", len(ft.Links))
	}
}

func TestFatTreePortsConsistent(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// No port may be used twice on the same switch (including host ports).
	used := make(map[string]map[uint16]bool)
	claim := func(sw string, p uint16) {
		if used[sw] == nil {
			used[sw] = make(map[uint16]bool)
		}
		if used[sw][p] {
			t.Fatalf("port %d of %s wired twice", p, sw)
		}
		used[sw][p] = true
	}
	for _, l := range ft.Links {
		claim(l.A, l.APort)
		claim(l.B, l.BPort)
	}
	for sw, ports := range ft.HostPorts {
		for _, p := range ports {
			claim(sw, p)
		}
	}
	// Every switch has exactly k ports in use and every port is in 1..k.
	for _, sw := range ft.Switches() {
		if len(used[sw]) != ft.K {
			t.Fatalf("%s uses %d ports, want %d", sw, len(used[sw]), ft.K)
		}
		for p := range used[sw] {
			if p < 1 || p > uint16(ft.K) {
				t.Fatalf("%s uses out-of-range port %d", sw, p)
			}
		}
	}
	// Every switch's inter-switch port list matches the links.
	for _, sw := range ft.Core {
		if got := len(ft.InterPorts(sw)); got != ft.K {
			t.Fatalf("core %s has %d inter-switch ports, want %d", sw, got, ft.K)
		}
	}
	for _, sw := range ft.Edge {
		if got := len(ft.InterPorts(sw)); got != ft.K/2 {
			t.Fatalf("edge %s has %d inter-switch ports, want %d", sw, got, ft.K/2)
		}
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7, 18} {
		if _, err := NewFatTree(k); err == nil {
			t.Fatalf("NewFatTree(%d) accepted, want error", k)
		}
	}
}
