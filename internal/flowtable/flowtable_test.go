package flowtable

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

func ipMatch(src, dst string) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr(src))
	m.SetNWDst(netip.MustParseAddr(dst))
	return m
}

func add(t *Table, prio uint16, m of.Match, acts ...of.Action) {
	t.Apply(&of.FlowMod{Command: of.FCAdd, Priority: prio, Match: m, Actions: acts})
}

func TestAddAndLookup(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	add(tbl, 1, of.MatchAll()) // drop-all

	f := hsa.Sample(ipMatch("10.0.0.1", "10.0.0.2"))
	e := tbl.Lookup(f, 100)
	if e == nil || e.Priority != 10 {
		t.Fatalf("Lookup = %+v, want priority-10 rule", e)
	}
	if e.Packets != 1 || e.Bytes != 100 {
		t.Errorf("counters = %d pkts / %d bytes, want 1/100", e.Packets, e.Bytes)
	}
	other := hsa.Sample(ipMatch("10.0.0.9", "10.0.0.2"))
	e = tbl.Lookup(other, 50)
	if e == nil || e.Priority != 1 {
		t.Fatalf("Lookup fallback = %+v, want drop-all", e)
	}
}

func TestLookupMiss(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	if e := tbl.Lookup(hsa.Sample(ipMatch("1.1.1.1", "2.2.2.2")), 10); e != nil {
		t.Fatalf("miss returned %+v", e)
	}
	lookups, matched := tbl.Stats()
	if lookups != 1 || matched != 0 {
		t.Errorf("stats = %d/%d, want 1/0", lookups, matched)
	}
}

func TestPriorityOrder(t *testing.T) {
	tbl := New()
	wide := of.MatchAll()
	add(tbl, 1, wide, of.ActionOutput{Port: 1})
	add(tbl, 100, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2})
	e := tbl.Lookup(hsa.Sample(ipMatch("10.0.0.1", "10.0.0.2")), 1)
	if e == nil || e.Priority != 100 {
		t.Fatalf("high-priority rule not preferred: %+v", e)
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	tbl := New()
	m1 := ipMatch("10.0.0.1", "10.0.0.2")
	m2 := of.MatchAll()
	m2.Wildcards &^= of.WcDLType
	m2.DLType = packet.EtherTypeIPv4
	m2.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	add(tbl, 10, m1, of.ActionOutput{Port: 1})
	add(tbl, 10, m2, of.ActionOutput{Port: 2})
	e := tbl.Lookup(hsa.Sample(m1), 1)
	if e == nil || e.Actions[0] != (of.ActionOutput{Port: 1}) {
		t.Fatalf("tie not broken by insertion order: %+v", e)
	}
}

func TestAddReplacesSameMatchPriority(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	add(tbl, 10, m, of.ActionOutput{Port: 9})
	if tbl.Len() != 1 {
		t.Fatalf("table has %d entries, want 1", tbl.Len())
	}
	e := tbl.Lookup(hsa.Sample(m), 1)
	if e.Actions[0] != (of.ActionOutput{Port: 9}) {
		t.Errorf("replacement did not take: %+v", e.Actions)
	}
}

func TestModifyUpdatesActions(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	changed := tbl.Apply(&of.FlowMod{Command: of.FCModify, Priority: 99, Match: m,
		Actions: []of.Action{of.ActionOutput{Port: 5}}})
	if len(changed) != 1 {
		t.Fatalf("changed = %v, want 1 entry", changed)
	}
	e := tbl.Lookup(hsa.Sample(m), 1)
	if e.Priority != 10 || e.Actions[0] != (of.ActionOutput{Port: 5}) {
		t.Errorf("modify wrong: %+v", e)
	}
}

func TestModifyInsertsWhenAbsent(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	tbl.Apply(&of.FlowMod{Command: of.FCModify, Priority: 10, Match: m,
		Actions: []of.Action{of.ActionOutput{Port: 5}}})
	if tbl.Len() != 1 {
		t.Fatalf("modify on empty table did not insert")
	}
}

func TestModifyStrictChecksPriority(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	tbl.Apply(&of.FlowMod{Command: of.FCModifyStrict, Priority: 20, Match: m,
		Actions: []of.Action{of.ActionOutput{Port: 5}}})
	// Priority 20 doesn't match the installed 10 — a new entry appears.
	if tbl.Len() != 2 {
		t.Fatalf("table has %d entries, want 2", tbl.Len())
	}
}

func TestDeleteWildcard(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 1})
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.3"), of.ActionOutput{Port: 1})
	add(tbl, 10, ipMatch("10.0.0.9", "10.0.0.3"), of.ActionOutput{Port: 1})
	// Delete everything from 10.0.0.1.
	del := of.MatchAll()
	del.Wildcards &^= of.WcDLType
	del.DLType = packet.EtherTypeIPv4
	del.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	changed := tbl.Apply(&of.FlowMod{Command: of.FCDelete, Match: del, OutPort: of.PortNone})
	if len(changed) != 2 || tbl.Len() != 1 {
		t.Fatalf("delete removed %d, table now %d; want 2 removed, 1 left", len(changed), tbl.Len())
	}
	for _, c := range changed {
		if !c.Deleted {
			t.Errorf("change not flagged Deleted: %+v", c)
		}
	}
}

func TestDeleteStrict(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	add(tbl, 20, m, of.ActionOutput{Port: 2})
	tbl.Apply(&of.FlowMod{Command: of.FCDeleteStrict, Priority: 10, Match: m, OutPort: of.PortNone})
	if tbl.Len() != 1 {
		t.Fatalf("strict delete removed wrong count; table=%d", tbl.Len())
	}
	if e := tbl.Find(m, 20); e == nil {
		t.Error("strict delete removed the wrong entry")
	}
}

func TestDeleteFiltersByOutPort(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 1})
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.3"), of.ActionOutput{Port: 2})
	tbl.Apply(&of.FlowMod{Command: of.FCDelete, Match: of.MatchAll(), OutPort: 2})
	if tbl.Len() != 1 {
		t.Fatalf("out_port-filtered delete left %d entries, want 1", tbl.Len())
	}
	if e := tbl.Find(ipMatch("10.0.0.1", "10.0.0.2"), 10); e == nil {
		t.Error("delete removed entry not outputting to port 2")
	}
}

func TestRulesSnapshotIsolated(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 1})
	rules := tbl.Rules()
	rules[0].Actions[0] = of.ActionOutput{Port: 99}
	e := tbl.Lookup(hsa.Sample(ipMatch("10.0.0.1", "10.0.0.2")), 1)
	if e.Actions[0] != (of.ActionOutput{Port: 1}) {
		t.Error("Rules() aliases internal state")
	}
}

func TestFindNormalizesMatch(t *testing.T) {
	tbl := New()
	m := of.MatchAll()
	add(tbl, 5, m)
	// A denormalized all-wildcard match (garbage in ignored fields) must
	// still find the entry.
	q := of.MatchAll()
	q.InPort = 7
	q.TPDst = 80
	if tbl.Find(q, 5) == nil {
		t.Error("Find failed on denormalized but equivalent match")
	}
}

// Property: after a random sequence of adds and strict deletes, lookup
// result always equals a brute-force scan over a shadow model.
func TestLookupMatchesShadowModelProperty(t *testing.T) {
	type shadowRule struct {
		prio uint16
		m    of.Match
		out  uint16
		seq  int
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := New()
		var shadow []shadowRule
		seq := 0
		for i := 0; i < 40; i++ {
			src := netip.AddrFrom4([4]byte{10, 0, 0, byte(r.Intn(8))})
			dst := netip.AddrFrom4([4]byte{10, 0, 1, byte(r.Intn(8))})
			m := of.MatchAll()
			m.Wildcards &^= of.WcDLType
			m.DLType = packet.EtherTypeIPv4
			m.SetNWSrc(src)
			m.SetNWDst(dst)
			prio := uint16(r.Intn(4))
			if r.Intn(5) == 0 && len(shadow) > 0 {
				victim := shadow[r.Intn(len(shadow))]
				tbl.Apply(&of.FlowMod{Command: of.FCDeleteStrict, Priority: victim.prio,
					Match: victim.m, OutPort: of.PortNone})
				kept := shadow[:0]
				for _, s := range shadow {
					if !(s.prio == victim.prio && s.m.Normalize() == victim.m.Normalize()) {
						kept = append(kept, s)
					}
				}
				shadow = kept
				continue
			}
			out := uint16(1 + r.Intn(4))
			tbl.Apply(&of.FlowMod{Command: of.FCAdd, Priority: prio, Match: m,
				Actions: []of.Action{of.ActionOutput{Port: out}}})
			replaced := false
			for j := range shadow {
				if shadow[j].prio == prio && shadow[j].m.Normalize() == m.Normalize() {
					shadow[j].out = out
					replaced = true
					break
				}
			}
			if !replaced {
				shadow = append(shadow, shadowRule{prio, m, out, seq})
				seq++
			}
		}
		// Compare lookups on random packets.
		for i := 0; i < 50; i++ {
			f := packet.Fields{
				DLType: packet.EtherTypeIPv4,
				DLVLAN: packet.VLANNone,
				NWSrc:  [4]byte{10, 0, 0, byte(r.Intn(8))},
				NWDst:  [4]byte{10, 0, 1, byte(r.Intn(8))},
			}
			got := tbl.Peek(f)
			var want *shadowRule
			for j := range shadow {
				s := &shadow[j]
				if !hsa.Covers(s.m, f) {
					continue
				}
				if want == nil || s.prio > want.prio || (s.prio == want.prio && s.seq < want.seq) {
					want = s
				}
			}
			if (got == nil) != (want == nil) {
				return false
			}
			if got != nil && (got.Priority != want.prio || got.Actions[0] != (of.ActionOutput{Port: want.out})) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeekSkipsCounters(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 2})
	e := tbl.Peek(hsa.Sample(m))
	if e == nil || e.Priority != 10 {
		t.Fatalf("Peek = %+v, want the priority-10 rule", e)
	}
	if e.Packets != 0 || e.Bytes != 0 {
		t.Errorf("Peek bumped counters: %d pkts / %d bytes", e.Packets, e.Bytes)
	}
	if lookups, matched := tbl.Stats(); lookups != 0 || matched != 0 {
		t.Errorf("Peek counted as a lookup: stats %d/%d", lookups, matched)
	}
}

func TestPeekTieBreakMatchesLookup(t *testing.T) {
	tbl := New()
	m1 := ipMatch("10.0.0.1", "10.0.0.2")
	m2 := of.MatchAll()
	m2.Wildcards &^= of.WcDLType
	m2.DLType = packet.EtherTypeIPv4
	m2.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	add(tbl, 10, m1, of.ActionOutput{Port: 1})
	add(tbl, 10, m2, of.ActionOutput{Port: 2})
	f := hsa.Sample(m1)
	pe, le := tbl.Peek(f), tbl.Lookup(f, 1)
	if pe != le {
		t.Fatalf("Peek and Lookup disagree on the same-priority tie: %+v vs %+v", pe, le)
	}
	if pe.Actions[0] != (of.ActionOutput{Port: 1}) {
		t.Fatalf("tie not broken toward the earlier install: %+v", pe.Actions)
	}
}

func TestFindRequiresExactPriority(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	add(tbl, 20, m, of.ActionOutput{Port: 2})
	if e := tbl.Find(m, 15); e != nil {
		t.Fatalf("Find matched a priority nothing was installed at: %+v", e)
	}
	if e := tbl.Find(m, 20); e == nil || e.Actions[0] != (of.ActionOutput{Port: 2}) {
		t.Fatalf("Find(prio 20) = %+v, want the port-2 rule", e)
	}
}

// Non-strict DELETE matches any rule whose region is a subset of the
// given match, at every priority (the FlowMod's priority field is
// ignored); strict DELETE requires the exact match and exact priority.
func TestDeleteStrictVsNonStrictPriority(t *testing.T) {
	mk := func() *Table {
		tbl := New()
		m := ipMatch("10.0.0.1", "10.0.0.2")
		add(tbl, 10, m, of.ActionOutput{Port: 1})
		add(tbl, 20, m, of.ActionOutput{Port: 2})
		return tbl
	}
	m := ipMatch("10.0.0.1", "10.0.0.2")

	nonStrict := mk()
	nonStrict.Apply(&of.FlowMod{Command: of.FCDelete, Priority: 10, Match: m, OutPort: of.PortNone})
	if nonStrict.Len() != 0 {
		t.Fatalf("non-strict delete honored the priority field: %d entries left", nonStrict.Len())
	}

	strict := mk()
	strict.Apply(&of.FlowMod{Command: of.FCDeleteStrict, Priority: 30, Match: m, OutPort: of.PortNone})
	if strict.Len() != 2 {
		t.Fatalf("strict delete at an uninstalled priority removed entries: %d left", strict.Len())
	}
}

// A non-strict delete's region test is subset, not overlap: a narrower
// delete match must not remove a wider installed rule.
func TestDeleteSubsetNotOverlap(t *testing.T) {
	tbl := New()
	wide := of.MatchAll()
	wide.Wildcards &^= of.WcDLType
	wide.DLType = packet.EtherTypeIPv4
	wide.SetNWSrc(netip.MustParseAddr("10.0.0.1"))
	add(tbl, 10, wide, of.ActionOutput{Port: 1})
	narrow := ipMatch("10.0.0.1", "10.0.0.2")
	changed := tbl.Apply(&of.FlowMod{Command: of.FCDelete, Match: narrow, OutPort: of.PortNone})
	if len(changed) != 0 || tbl.Len() != 1 {
		t.Fatalf("narrow delete removed a wider rule: %d changed, %d left", len(changed), tbl.Len())
	}
}

func TestEntriesSnapshotIsolated(t *testing.T) {
	tbl := New()
	m := ipMatch("10.0.0.1", "10.0.0.2")
	add(tbl, 10, m, of.ActionOutput{Port: 1})
	es := tbl.Entries()
	if len(es) != 1 || es[0].Priority != 10 {
		t.Fatalf("Entries = %+v, want the one installed rule", es)
	}
	es[0].Actions[0] = of.ActionOutput{Port: 99}
	es[0].Priority = 7
	if e := tbl.Find(m, 10); e == nil || e.Actions[0] != (of.ActionOutput{Port: 1}) {
		t.Fatal("Entries() aliases internal state")
	}
}

func TestClear(t *testing.T) {
	tbl := New()
	add(tbl, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 1})
	add(tbl, 20, ipMatch("10.0.0.1", "10.0.0.3"), of.ActionOutput{Port: 2})
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Fatalf("Clear left %d entries", tbl.Len())
	}
	if e := tbl.Lookup(hsa.Sample(ipMatch("10.0.0.1", "10.0.0.2")), 1); e != nil {
		t.Fatalf("lookup after Clear returned %+v", e)
	}
}
