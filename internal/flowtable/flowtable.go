// Package flowtable implements an OpenFlow 1.0 flow table with the add /
// modify / delete semantics the spec defines, priority-based lookup, and
// per-rule counters. The switch emulator keeps two instances: the control
// plane's view and the (lagging) data-plane copy — the gap between the two
// is precisely the problem the paper studies.
package flowtable

import (
	"sort"
	"sync"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

// Entry is one installed rule.
type Entry struct {
	Priority    uint16
	Match       of.Match // always normalized
	Actions     []of.Action
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16

	// Counters.
	Packets uint64
	Bytes   uint64

	seq uint64 // insertion order; breaks priority ties (older first)
}

// Table is a single OpenFlow flow table. It is safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	entries []*Entry // sorted by (priority desc, seq asc)
	nextSeq uint64
	lookups uint64
	matched uint64
}

// New returns an empty table.
func New() *Table { return &Table{} }

// Len returns the number of installed rules.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Apply executes a FlowMod against the table following OpenFlow 1.0
// semantics:
//
//   - ADD: replaces an entry with identical match and priority, otherwise
//     inserts.
//   - MODIFY: updates the actions of all entries whose match equals the
//     FlowMod's match (priority ignored for matching, per spec §4.6);
//     inserts if none matched.
//   - MODIFY_STRICT: same but the priority must match too.
//   - DELETE: removes all entries whose match is a subset of the FlowMod's
//     match (wildcard-aware).
//   - DELETE_STRICT: removes the entry with the identical match and
//     priority.
//
// It returns the list of (match, priority) pairs whose data-plane state
// changed, which the switch emulator uses to drive sync bookkeeping.
func (t *Table) Apply(fm *of.FlowMod) []ChangedRule {
	t.mu.Lock()
	defer t.mu.Unlock()
	norm := fm.Match.Normalize()
	switch fm.Command {
	case of.FCAdd:
		for _, e := range t.entries {
			if e.Priority == fm.Priority && e.Match == norm {
				e.Actions = append([]of.Action(nil), fm.Actions...)
				e.Cookie = fm.Cookie
				e.IdleTimeout = fm.IdleTimeout
				e.HardTimeout = fm.HardTimeout
				return []ChangedRule{{Match: norm, Priority: e.Priority}}
			}
		}
		t.insert(&Entry{
			Priority:    fm.Priority,
			Match:       norm,
			Actions:     append([]of.Action(nil), fm.Actions...),
			Cookie:      fm.Cookie,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
		})
		return []ChangedRule{{Match: norm, Priority: fm.Priority}}
	case of.FCModify, of.FCModifyStrict:
		var changed []ChangedRule
		for _, e := range t.entries {
			if e.Match != norm {
				continue
			}
			if fm.Command == of.FCModifyStrict && e.Priority != fm.Priority {
				continue
			}
			e.Actions = append([]of.Action(nil), fm.Actions...)
			e.Cookie = fm.Cookie
			changed = append(changed, ChangedRule{Match: e.Match, Priority: e.Priority})
		}
		if changed == nil {
			t.insert(&Entry{
				Priority:    fm.Priority,
				Match:       norm,
				Actions:     append([]of.Action(nil), fm.Actions...),
				Cookie:      fm.Cookie,
				IdleTimeout: fm.IdleTimeout,
				HardTimeout: fm.HardTimeout,
			})
			changed = append(changed, ChangedRule{Match: norm, Priority: fm.Priority})
		}
		return changed
	case of.FCDelete, of.FCDeleteStrict:
		var changed []ChangedRule
		kept := t.entries[:0]
		for _, e := range t.entries {
			del := false
			if fm.Command == of.FCDeleteStrict {
				del = e.Priority == fm.Priority && e.Match == norm
			} else {
				del = hsa.Subset(e.Match, norm)
			}
			if del && fm.OutPort != of.PortNone {
				del = outputsTo(e.Actions, fm.OutPort)
			}
			if del {
				changed = append(changed, ChangedRule{Match: e.Match, Priority: e.Priority, Deleted: true})
			} else {
				kept = append(kept, e)
			}
		}
		// Zero the tail so deleted entries do not linger.
		for i := len(kept); i < len(t.entries); i++ {
			t.entries[i] = nil
		}
		t.entries = kept
		return changed
	}
	return nil
}

// ChangedRule describes one rule affected by a FlowMod.
type ChangedRule struct {
	Match    of.Match
	Priority uint16
	Deleted  bool
}

func outputsTo(actions []of.Action, port uint16) bool {
	for _, a := range actions {
		if out, ok := a.(of.ActionOutput); ok && out.Port == port {
			return true
		}
	}
	return false
}

func (t *Table) insert(e *Entry) {
	e.seq = t.nextSeq
	t.nextSeq++
	idx := sort.Search(len(t.entries), func(i int) bool {
		o := t.entries[i]
		if o.Priority != e.Priority {
			return o.Priority < e.Priority
		}
		return o.seq > e.seq
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[idx+1:], t.entries[idx:])
	t.entries[idx] = e
}

// Lookup returns the highest-priority entry covering the fields (ties go to
// the earlier-installed rule) and updates counters. Returns nil on a table
// miss.
func (t *Table) Lookup(f packet.Fields, size int) *Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	for _, e := range t.entries {
		if hsa.Covers(e.Match, f) {
			e.Packets++
			e.Bytes += uint64(size)
			t.matched++
			return e
		}
	}
	return nil
}

// Peek is Lookup without counter updates — used by probe synthesis to
// reason about hypothetical packets.
func (t *Table) Peek(f packet.Fields) *Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if hsa.Covers(e.Match, f) {
			return e
		}
	}
	return nil
}

// Find returns the entry with exactly this match and priority, or nil.
func (t *Table) Find(m of.Match, priority uint16) *Entry {
	norm := m.Normalize()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if e.Priority == priority && e.Match == norm {
			return e
		}
	}
	return nil
}

// Rules snapshots the table as hsa rules in lookup order.
func (t *Table) Rules() []hsa.Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rules := make([]hsa.Rule, len(t.entries))
	for i, e := range t.entries {
		rules[i] = hsa.Rule{
			Priority: e.Priority,
			Match:    e.Match,
			Actions:  append([]of.Action(nil), e.Actions...),
		}
	}
	return rules
}

// Entries snapshots the installed entries (copies) in lookup order.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, len(t.entries))
	for i, e := range t.entries {
		out[i] = *e
		out[i].Actions = append([]of.Action(nil), e.Actions...)
	}
	return out
}

// Stats returns aggregate lookup counters (for table stats replies).
func (t *Table) Stats() (lookups, matched uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups, t.matched
}

// Clear removes every rule.
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = nil
}
