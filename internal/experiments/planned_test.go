package experiments

import (
	"testing"
	"time"
)

// TestPlannedMigrationClean is the no-fault baseline: every wave of the
// fat-tree migration is HSA-verified before release, every segment
// completes, and the data plane ends in exactly the planned state.
func TestPlannedMigrationClean(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed {
		t.Fatal("plan did not complete")
	}
	if res.Wedged != 0 || res.Replans != 0 {
		t.Fatalf("clean run: wedged=%d replans=%d, want 0/0", res.Wedged, res.Replans)
	}
	// 8 flows × 3 waves (adds, ingress flip, deletes).
	if res.Segments != 8 || res.Waves != 24 {
		t.Fatalf("segments=%d waves=%d, want 8/24", res.Segments, res.Waves)
	}
	if res.VerifiedWaves != res.Waves {
		t.Fatalf("verified %d of %d waves", res.VerifiedWaves, res.Waves)
	}
	if len(res.WaveStats) != res.Waves {
		t.Fatalf("wave stats: %d, want %d", len(res.WaveStats), res.Waves)
	}
	for _, w := range res.WaveStats {
		if w.Confirmed < w.Released {
			t.Fatalf("wave %s/%d confirmed %v before release %v", w.Segment, w.Stage, w.Confirmed, w.Released)
		}
	}
	if !res.FinalStateOK {
		t.Fatal("final FIB state does not match the plan")
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs", res.DoubleInstalls)
	}
}

// TestPlannedMigrationWindow bounds concurrent segments without changing
// the outcome.
func TestPlannedMigrationWindow(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.FinalStateOK || res.Wedged != 0 {
		t.Fatalf("windowed run: %v", res)
	}
}

// TestPlannedFaultLoss runs the plan over a lossy control channel and
// data plane. Install acks carry positive forwarding evidence, so the
// plan completes with zero wedged futures and every new-path rule in
// place. Old-rule absence is not asserted: removal confirmation is
// one-sided, and a lost delete plus a lost probe frame can
// false-confirm a removal (documented in docs/PLANNER.md).
func TestPlannedFaultLoss(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4, Profile: FaultLoss, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed || res.Wedged != 0 {
		t.Fatalf("loss run: completed=%v wedged=%d", res.Completed, res.Wedged)
	}
	if !res.NewPathOK || res.DoubleInstalls != 0 {
		t.Fatalf("loss run: new-path=%v doubles=%d", res.NewPathOK, res.DoubleInstalls)
	}
}

// TestPlannedFaultDisconnect cuts control channels mid-wave — one target
// with an add in flight (the future resolves ErrChannelLost and triggers
// a re-plan) and one with none (only the harness Resync covers it). The
// plan must complete with zero wedged futures and no double installs.
func TestPlannedFaultDisconnect(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4, Profile: FaultDisconnect, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed {
		t.Fatalf("disconnect run wedged: %v\n%s", res, res.Trace)
	}
	if res.Wedged != 0 {
		t.Fatalf("%d wedged futures", res.Wedged)
	}
	if res.Replans == 0 {
		t.Fatal("disconnect run triggered no re-plan; the fault missed the plan")
	}
	if !res.FinalStateOK {
		t.Fatalf("final FIB state diverged\n%s", res.Trace)
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs\n%s", res.DoubleInstalls, res.Trace)
	}
}

// TestPlannedFaultRestart crashes switches mid-wave with a full FIB
// wipe: typed failures re-plan from the (empty) snapshot, confirmed
// rules that vanished are re-issued as repair waves, and the final state
// still matches the plan exactly.
func TestPlannedFaultRestart(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4, Profile: FaultRestart, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed {
		t.Fatalf("restart run wedged: %v\n%s", res, res.Trace)
	}
	if res.Wedged != 0 {
		t.Fatalf("%d wedged futures", res.Wedged)
	}
	if res.Replans == 0 {
		t.Fatal("restart run triggered no re-plan")
	}
	if !res.FinalStateOK {
		t.Fatalf("final FIB state diverged\n%s", res.Trace)
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs\n%s", res.DoubleInstalls, res.Trace)
	}
}

// TestPlannedReplayDeterministic re-runs the restart profile with the
// same seed: the event transcript must be byte-identical.
func TestPlannedReplayDeterministic(t *testing.T) {
	opts := PlannedMigrationOpts{K: 4, Profile: FaultRestart, Seed: 42}
	a, err := PlannedMigration(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlannedMigration(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("same seed, different traces:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.Trace, b.Trace)
	}
	if !a.Completed || a.Wedged != 0 {
		t.Fatalf("replay runs must complete cleanly: %v", a)
	}
}

// TestPlannedMigrationK8 is the acceptance-scale run: the full 80-switch
// fabric, every transient wave verified.
func TestPlannedMigrationK8(t *testing.T) {
	if testing.Short() {
		t.Skip("k=8 fabric in -short mode")
	}
	res, err := PlannedMigration(PlannedMigrationOpts{K: 8, Deadline: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed || !res.FinalStateOK || res.Wedged != 0 || res.DoubleInstalls != 0 {
		t.Fatalf("k=8 run failed: %v", res)
	}
	if res.VerifiedWaves != res.Waves {
		t.Fatalf("verified %d of %d waves", res.VerifiedWaves, res.Waves)
	}
}

// TestPlannedMigrationAggregated runs the clean migration over the
// aggregation layer: waves are planned against logical rules, but each
// wave's futures resolve only when the covering physical installs
// confirm — the schedule must complete with the identical final FIB,
// zero double installs, and zero equivalence counterexamples.
func TestPlannedMigrationAggregated(t *testing.T) {
	res, err := PlannedMigration(PlannedMigrationOpts{K: 4, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Completed || res.Wedged != 0 || res.Replans != 0 {
		t.Fatalf("aggregated run: completed=%v wedged=%d replans=%d",
			res.Completed, res.Wedged, res.Replans)
	}
	if res.VerifiedWaves != res.Waves {
		t.Fatalf("verified %d of %d waves", res.VerifiedWaves, res.Waves)
	}
	if !res.FinalStateOK {
		t.Fatal("final FIB state does not match the plan")
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs", res.DoubleInstalls)
	}
	if res.AggregationCounterexamples != 0 {
		t.Fatalf("%d aggregation counterexamples", res.AggregationCounterexamples)
	}
}
