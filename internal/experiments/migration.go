package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/metrics"
	"rum/internal/netsim"
	"rum/internal/planner"
	"rum/internal/switchsim"
)

// MigrationResult is the outcome of one end-to-end path migration run
// (the experiment behind Figures 1b, 6 and 7).
type MigrationResult struct {
	Technique  core.Technique
	Label      string // display label (defaults to the technique name)
	Flows      int
	Updates    []metrics.FlowUpdate // sorted by FlowID
	Start      time.Duration        // when the plan started executing
	Duration   time.Duration        // first send → last flow on new path
	MeanUpdate time.Duration        // mean per-flow update time
	TotalLost  int
	MaxBroken  time.Duration
	Completed  bool
	Precision  time.Duration
	// VerifiedWaves counts update waves that passed HSA transient
	// verification before release; VerifyWall is their cumulative
	// wall-clock verification cost.
	VerifiedWaves int
	VerifyWall    time.Duration
}

// MigrationOpts parameterizes the migration experiment.
type MigrationOpts struct {
	Technique core.Technique
	Label     string      // optional display label
	RUM       core.Config // technique field overridden by Technique
	S2        switchsim.Profile
	NumFlows  int
	PktPerSec int
	Window    int // max concurrently migrating flows (0 = unlimited)
	Deadline  time.Duration
}

// Defaults fills the paper's parameters: 300 flows at 250 pkt/s.
func (o MigrationOpts) Defaults() MigrationOpts {
	if o.NumFlows == 0 {
		o.NumFlows = 300
	}
	if o.PktPerSec == 0 {
		o.PktPerSec = 250
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	if o.S2.Name == "" {
		o.S2 = switchsim.ProfileHP5406zl()
	}
	return o
}

// RunMigration performs the §1/§5.1 experiment: 300 preinstalled flows
// h1→s1→s3→h2 migrate to h1→s1→s2→s3→h2 under a consistent (ordered)
// update, with acknowledgments provided by the selected technique.
func RunMigration(o MigrationOpts) *MigrationResult {
	o = o.Defaults()
	rumCfg := o.RUM
	rumCfg.Technique = o.Technique
	env := NewTriangle(EnvConfig{RUM: rumCfg, S2: o.S2, AckMode: ackModeFor(o.Technique)})
	if err := env.Warm(); err != nil {
		panic(err)
	}
	flows := Flows(o.NumFlows)
	env.PreinstallMigrationState(flows)
	gen := env.StartTraffic(flows, o.PktPerSec)
	// Let traffic reach steady state on the old path.
	env.Sim.RunFor(100 * time.Millisecond)

	start := env.Sim.Now()
	pl := env.NewPlanner(o.Window)
	exec, completed := env.RunPlanned(pl, MigrationChanges(flows, 100), o.Deadline)
	// Drain: keep traffic running until every flow has demonstrably
	// switched to the new path (plan completion only means the mods were
	// acknowledged; with no-wait acks the data plane lags far behind).
	drainLimit := env.Sim.Now() + o.Deadline
	for env.Sim.Now() < drainLimit {
		env.Sim.RunFor(100 * time.Millisecond)
		switched := make(map[int]bool)
		for _, a := range env.H2.Arrivals() {
			if a.Via("s2") {
				switched[a.FlowID] = true
			}
		}
		if len(switched) >= o.NumFlows {
			break
		}
	}
	env.Sim.RunFor(200 * time.Millisecond)
	gen.Stop()
	env.Sim.RunFor(50 * time.Millisecond)

	precision := time.Second / time.Duration(o.PktPerSec)
	updates := metrics.AnalyzeMigration(env.H2.Arrivals(),
		func(a netsim.Arrival) bool { return a.Via("s2") }, precision)
	sort.Slice(updates, func(i, j int) bool { return updates[i].FlowID < updates[j].FlowID })

	label := o.Label
	if label == "" {
		label = o.Technique.String()
	}
	res := &MigrationResult{
		Technique:  o.Technique,
		Label:      label,
		Flows:      o.NumFlows,
		Updates:    updates,
		Start:      start,
		Completed:  completed,
		Precision:  precision,
		VerifyWall: exec.VerifyWall(),
	}
	for _, ev := range exec.EventLog() {
		if ev.Kind == planner.EventStageReleased {
			res.VerifiedWaves++
		}
	}
	var last time.Duration
	var updateTimes []time.Duration
	for _, u := range updates {
		if u.Switched {
			if u.FirstNew > last {
				last = u.FirstNew
			}
			updateTimes = append(updateTimes, u.FirstNew-start)
		}
		res.TotalLost += u.Lost
		if u.Broken > res.MaxBroken {
			res.MaxBroken = u.Broken
		}
	}
	res.Duration = last - start
	res.MeanUpdate = metrics.Mean(updateTimes)
	return res
}

// ackModeFor maps techniques to the controller-side acknowledgment mode:
// every technique delivers RUM acks except the no-wait lower bound, where
// the controller does not wait at all.
func ackModeFor(t core.Technique) controller.AckMode {
	if t == core.TechNoWait {
		return controller.AckNone
	}
	return controller.AckRUM
}

// Fig1b runs the broken-time CDF comparison of Figure 1b: consistent
// updates over plain barriers drop packets for up to ~300 ms, while RUM's
// probing acknowledgments eliminate drops entirely.
type Fig1bResult struct {
	Barriers *MigrationResult
	WithRUM  *MigrationResult
}

// Fig1b runs both sides of Figure 1b.
func Fig1b() *Fig1bResult {
	return &Fig1bResult{
		Barriers: RunMigration(MigrationOpts{Technique: core.TechBarriers}),
		WithRUM:  RunMigration(MigrationOpts{Technique: core.TechSequential}),
	}
}

// Render prints the CDF the figure plots: % of flows vs broken time.
func (r *Fig1bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1b — % of flows vs broken time during consistent update\n")
	render := func(name string, res *MigrationResult) {
		broken := metrics.BrokenTimes(res.Updates)
		fmt.Fprintf(&b, "\n  %s: flows=%d lost_packets=%d max_broken=%v\n",
			name, len(res.Updates), res.TotalLost, res.MaxBroken)
		for _, x := range []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond,
			150 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond, 300 * time.Millisecond} {
			fmt.Fprintf(&b, "    broken <= %6v : %5.1f%%\n", x,
				100*metrics.FractionAtOrBelow(broken, x))
		}
	}
	render("with OF barriers", r.Barriers)
	render("with working acks (RUM sequential)", r.WithRUM)
	return b.String()
}

// FlowCurveResult bundles the per-technique flow update curves of
// Figures 6 and 7.
type FlowCurveResult struct {
	Results []*MigrationResult
}

// Fig6 runs the control-plane-only techniques of Figure 6: barriers
// (baseline), 300 ms timeout, adaptive at assumed rates 200 and 250.
func Fig6() *FlowCurveResult {
	hp := switchsim.ProfileHP5406zl()
	mk := func(t core.Technique, label string, rum core.Config) *MigrationResult {
		return RunMigration(MigrationOpts{Technique: t, Label: label, RUM: rum, S2: hp})
	}
	sync := hp.SyncPeriod
	return &FlowCurveResult{Results: []*MigrationResult{
		mk(core.TechBarriers, "barriers (baseline)", core.Config{}),
		mk(core.TechTimeout, "timeout 300ms", core.Config{Timeout: 300 * time.Millisecond}),
		mk(core.TechAdaptive, "adaptive 200", core.Config{AssumedRate: 200, ModelSyncPeriod: sync}),
		mk(core.TechAdaptive, "adaptive 250", core.Config{AssumedRate: 250, ModelSyncPeriod: sync}),
	}}
}

// Fig7 runs the probing techniques of Figure 7: sequential (probe rule
// per 10 mods), general (30 oldest per 10 ms) and the no-wait bound.
func Fig7() *FlowCurveResult {
	hp := switchsim.ProfileHP5406zl()
	mk := func(t core.Technique, rum core.Config) *MigrationResult {
		return RunMigration(MigrationOpts{Technique: t, RUM: rum, S2: hp})
	}
	return &FlowCurveResult{Results: []*MigrationResult{
		mk(core.TechSequential, core.Config{ProbeEvery: 10}),
		mk(core.TechGeneral, core.Config{ProbeInterval: 10 * time.Millisecond, ProbeBatch: 30}),
		mk(core.TechNoWait, core.Config{}),
	}}
}

// Render prints per-technique flow update curves: for every technique the
// time the last old-path packet and first new-path packet arrived, by
// flow, plus the summary statistics the paper quotes in the text.
func (r *FlowCurveResult) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — flow update times\n", title)
	for _, res := range r.Results {
		label := labelFor(res)
		var updateTimes []time.Duration
		for _, u := range res.Updates {
			if u.Switched {
				updateTimes = append(updateTimes, u.FirstNew-res.Start)
			}
		}
		fmt.Fprintf(&b, "\n  %-16s mean_update=%8v p99=%8v total=%8v lost=%d max_broken=%v\n",
			label, metrics.Mean(updateTimes).Round(time.Millisecond),
			metrics.Percentile(updateTimes, 99).Round(time.Millisecond),
			res.Duration.Round(time.Millisecond), res.TotalLost, res.MaxBroken)
		// Curve sampled every 30 flows (the paper plots all 300).
		fmt.Fprintf(&b, "    %6s %12s %12s %10s\n", "flow", "last_old", "first_new", "broken")
		for i := 0; i < len(res.Updates); i += 30 {
			u := res.Updates[i]
			fmt.Fprintf(&b, "    %6d %12v %12v %10v\n", u.FlowID,
				(u.LastOld - res.Start).Round(time.Millisecond),
				(u.FirstNew - res.Start).Round(time.Millisecond),
				u.Broken.Round(time.Millisecond))
		}
	}
	return b.String()
}

func labelFor(res *MigrationResult) string {
	return res.Label
}

// HighRateCheck reruns the migration while a sampled flow sends at
// 10 000 packets/s (the paper's precision check: no sub-4ms transient
// drops hide behind the measurement precision).
type HighRateResult struct {
	Technique core.Technique
	Lost      int
	Flows     int
}

// Fig1bHighRate runs the high-rate precision check with sequential
// probing on ten sampled flows.
func Fig1bHighRate() *HighRateResult {
	o := MigrationOpts{Technique: core.TechSequential, NumFlows: 10, PktPerSec: 10000}.Defaults()
	res := RunMigration(o)
	return &HighRateResult{Technique: o.Technique, Lost: res.TotalLost, Flows: o.NumFlows}
}

// Render prints the check result.
func (r *HighRateResult) Render() string {
	return fmt.Sprintf("High-rate precision check — %d flows at 10000 pkt/s with %s: %d packets lost\n",
		r.Flows, r.Technique, r.Lost)
}
