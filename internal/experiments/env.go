// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: the end-to-end triangle
// migration (Figures 1b, 6, 7), the firewall security hole (Figure 2),
// the per-rule activation-delay benchmark (Figure 8), the sequential
// probing rate table (Table 1), the reliable barrier layer overhead, and
// the PacketIn/PacketOut rate and interference measurements (§5.2).
package experiments

import (
	"fmt"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// Env is the paper's evaluation environment: the triangle topology of
// Figure 1a (software switches s1, s3; device-under-test s2), hosts h1 and
// h2, one RUM instance proxying every switch, and a controller client.
//
//	s1 ports: 1=h1 2=s2 3=s3
//	s2 ports: 1=s1 2=s3
//	s3 ports: 1=h2 2=s2 3=s1
type Env struct {
	Sim      *sim.Sim
	Net      *netsim.Network
	Switches map[string]*switchsim.Switch
	RUM      *core.RUM
	Client   *controller.Client
	H1, H2   *netsim.Host
	// Links is the inter-switch wiring, kept for planner adjacency maps.
	Links []core.TopoLink

	// AckEvents records every RUM ack seen at the controller, by xid.
	ackAt map[uint32]time.Duration
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	RUM     core.Config
	S2      switchsim.Profile
	AckMode controller.AckMode
	// CtrlLatency is the one-way latency of each control-channel hop
	// (controller↔RUM and RUM↔switch).
	CtrlLatency time.Duration
	// LinkLatency is the data-plane link latency.
	LinkLatency time.Duration
}

// Defaults fills zero fields.
func (c EnvConfig) Defaults() EnvConfig {
	if c.CtrlLatency == 0 {
		c.CtrlLatency = 100 * time.Microsecond
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 20 * time.Microsecond
	}
	if c.S2.Name == "" {
		c.S2 = switchsim.ProfileHP5406zl()
	}
	return c
}

// NewTriangle builds the evaluation environment.
func NewTriangle(cfg EnvConfig) *Env {
	cfg = cfg.Defaults()
	s := sim.New()
	n := netsim.New(s)
	e := &Env{
		Sim:      s,
		Net:      n,
		Switches: make(map[string]*switchsim.Switch),
		ackAt:    make(map[uint32]time.Duration),
	}
	e.H1 = netsim.NewHost(n, "h1")
	e.H2 = netsim.NewHost(n, "h2")
	profs := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": cfg.S2,
		"s3": switchsim.ProfileSoftware(),
	}
	for i, name := range []string{"s1", "s2", "s3"} {
		e.Switches[name] = switchsim.New(name, uint64(i+1), profs[name], s, n)
	}
	n.Connect(e.H1, e.H1.Port(), e.Switches["s1"], 1, cfg.LinkLatency)
	n.Connect(e.Switches["s1"], 2, e.Switches["s2"], 1, cfg.LinkLatency)
	n.Connect(e.Switches["s2"], 2, e.Switches["s3"], 2, cfg.LinkLatency)
	n.Connect(e.Switches["s1"], 3, e.Switches["s3"], 3, cfg.LinkLatency)
	n.Connect(e.Switches["s3"], 1, e.H2, e.H2.Port(), cfg.LinkLatency)

	e.Links = []core.TopoLink{
		{A: "s1", APort: 2, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 2},
		{A: "s1", APort: 3, B: "s3", BPort: 3},
	}
	topo := core.NewTopology(e.Links)
	rumCfg := cfg.RUM
	rumCfg.Clock = s
	rumCfg.RUMAware = true
	r, err := core.New(rumCfg, topo)
	if err != nil {
		panic(fmt.Sprintf("experiments: building RUM: %v", err))
	}
	e.RUM = r

	ctrlConns := make(map[string]transport.Conn)
	for name, sw := range e.Switches {
		ctrlTop, ctrlBottom := transport.Pipe(s, cfg.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, cfg.CtrlLatency)
		sw.AttachConn(swSide)
		if _, err := e.RUM.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			panic(fmt.Sprintf("experiments: attaching %s: %v", name, err))
		}
		ctrlConns[name] = ctrlTop
	}
	e.Client = controller.NewClient(s, cfg.AckMode, ctrlConns)
	return e
}

// Warm bootstraps RUM and runs the simulation long enough for every
// switch's data plane to absorb the infrastructure rules.
func (e *Env) Warm() error {
	if err := e.RUM.Bootstrap(); err != nil {
		return err
	}
	e.Sim.RunFor(700 * time.Millisecond)
	return nil
}

// Flows builds n canonical flow specs.
func Flows(n int) []controller.FlowSpec {
	out := make([]controller.FlowSpec, n)
	for i := range out {
		out[i].ID = i
		out[i].Src, out[i].Dst = controller.FlowAddr(i)
	}
	return out
}

// PreinstallMigrationState sets up the §1 starting point: per-flow rules
// at s1 (toward s3 directly) and s3 (toward h2), and low-priority
// drop-all rules everywhere. It runs the simulation until the rules are
// in every data plane.
func (e *Env) PreinstallMigrationState(flows []controller.FlowSpec) {
	for _, sw := range []string{"s1", "s2", "s3"} {
		drop := &of.FlowMod{Command: of.FCAdd, Priority: 1, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone}
		drop.SetXID(e.Client.NewXID())
		_ = e.Client.Send(sw, drop)
	}
	for _, f := range flows {
		s1 := controller.AddRule(f, 100, 3) // s1 → s3 direct (old path)
		s1.SetXID(e.Client.NewXID())
		_ = e.Client.Send("s1", s1)
		s3 := controller.AddRule(f, 100, 1) // s3 → h2
		s3.SetXID(e.Client.NewXID())
		_ = e.Client.Send("s3", s3)
	}
	// Software switches install these in microseconds; run a generous
	// settling window (also covers a hardware s2 sync for the drop rule).
	e.Sim.RunFor(time.Second)
}

// StartTraffic launches per-flow traffic from h1 at the given rate.
func (e *Env) StartTraffic(flows []controller.FlowSpec, pktPerSec int) *netsim.Generator {
	period := time.Second / time.Duration(pktPerSec)
	var gfs []netsim.Flow
	for _, f := range flows {
		pkt := packet.New(f.Src, f.Dst, packet.ProtoUDP, 4000, 9000)
		gfs = append(gfs, netsim.Flow{ID: f.ID, Pkt: pkt, Period: period})
	}
	gen := netsim.NewGenerator(e.H1, gfs)
	// Stagger so 300 flows × 4 ms spread evenly inside one period.
	stagger := period / time.Duration(len(flows)+1)
	gen.Start(stagger)
	return gen
}

// RunPlan executes a plan and runs the simulation until it completes (or
// the deadline passes), returning per-op results and whether it finished.
func (e *Env) RunPlan(plan *controller.Plan, window int, deadline time.Duration) ([]controller.OpResult, bool) {
	done := false
	exec := e.Client.Execute(plan, window, func([]controller.OpResult) { done = true })
	limit := e.Sim.Now() + deadline
	for !done && e.Sim.Now() < limit {
		e.Sim.RunFor(10 * time.Millisecond)
	}
	return exec.Results(), done
}

// ActivationTimes maps FlowMod xid → first data-plane activation time on
// the given switch.
func (e *Env) ActivationTimes(sw string) map[uint32]time.Duration {
	out := make(map[uint32]time.Duration)
	for _, a := range e.Switches[sw].Activations() {
		if _, seen := out[a.XID]; !seen {
			out[a.XID] = a.At
		}
	}
	return out
}

// String describes the environment briefly.
func (e *Env) String() string {
	return fmt.Sprintf("triangle{s2=%s, technique=%s}", e.Switches["s2"].Profile().Name, e.RUM.Config().Technique)
}
