package experiments

import (
	"fmt"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/faults"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/planner"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// PortsOf builds the planner/verifier data-plane adjacency from topology
// links; ports absent from the result are host-facing (egress).
func PortsOf(links []core.TopoLink) map[string]map[uint16]hsa.PortPeer {
	m := make(map[string]map[uint16]hsa.PortPeer)
	add := func(sw string, port uint16, peer string, peerPort uint16) {
		if m[sw] == nil {
			m[sw] = make(map[uint16]hsa.PortPeer)
		}
		m[sw][port] = hsa.PortPeer{Switch: peer, Port: peerPort}
	}
	for _, l := range links {
		add(l.A, l.APort, l.B, l.BPort)
		add(l.B, l.BPort, l.A, l.APort)
	}
	return m
}

// NewPlanner wires a consistent-update planner into the environment:
// sends go through the controller client, state is read back from the
// switches' control tables, and waves gate on RUM's ack futures.
func (e *Env) NewPlanner(window int) *planner.Planner {
	p, err := planner.New(planner.Config{
		RUM:    e.RUM,
		Clock:  e.Sim,
		Send:   func(sw string, fm *of.FlowMod) error { return e.Client.Send(sw, fm) },
		NewXID: e.Client.NewXID,
		State:  func(sw string) []hsa.Rule { return e.Switches[sw].CtrlTable().Rules() },
		Ports:  PortsOf(e.Links),
		Window: window,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: building planner: %v", err))
	}
	return p
}

// RunPlanned compiles and executes path changes on the planner, driving
// the simulation until the plan settles or the deadline passes.
func (e *Env) RunPlanned(pl *planner.Planner, changes []planner.PathChange, deadline time.Duration) (*planner.Exec, bool) {
	plan, err := pl.Plan(changes)
	if err != nil {
		panic(fmt.Sprintf("experiments: compiling plan: %v", err))
	}
	exec, err := pl.Execute(plan)
	if err != nil {
		panic(fmt.Sprintf("experiments: executing plan: %v", err))
	}
	limit := e.Sim.Now() + deadline
	for !exec.Pump() && e.Sim.Now() < limit {
		e.Sim.RunFor(10 * time.Millisecond)
	}
	return exec, exec.Done() && exec.Err() == nil
}

// MigrationChanges expresses the §1 triangle migration as planner path
// changes: every flow moves from s1→(3)→s3 to s1→(2)→s2→(2)→s3.
func MigrationChanges(flows []controller.FlowSpec, prio uint16) []planner.PathChange {
	out := make([]planner.PathChange, 0, len(flows))
	for _, f := range flows {
		out = append(out, planner.PathChange{
			Name:     fmt.Sprintf("flow-%d", f.ID),
			Match:    controller.FlowMatch(f),
			Priority: prio,
			Old:      []planner.PathHop{{Switch: "s1", OutPort: 3}, {Switch: "s3", OutPort: 1}},
			New: []planner.PathHop{{Switch: "s1", OutPort: 2},
				{Switch: "s2", OutPort: 2}, {Switch: "s3", OutPort: 1}},
		})
	}
	return out
}

// PlannedMigrationOpts parameterizes the planner's scale workload: a
// k-ary fat-tree where every flow migrates from its pod's first
// aggregation/core pair to the last one, scheduled and verified by the
// planner, optionally under the fault layer.
type PlannedMigrationOpts struct {
	// K is the fat-tree arity (default 8 → 80 switches).
	K int
	// Flows is the number of migrating flows (default 2·K), spread over
	// source pods and edges.
	Flows int
	// Profile selects the adversarial condition; the planner must
	// complete under FaultLoss, FaultDisconnect and FaultRestart
	// (default FaultNone).
	Profile FaultProfile
	// Seed feeds the deterministic injector (default 1).
	Seed int64
	// FaultSwitches is how many planner-owned switches suffer
	// switch-level faults (default 2: the first flow's new-path
	// aggregation switch and its ingress edge).
	FaultSwitches int
	// FaultAt is when the fault fires, relative to plan execution start
	// (default 1ms — mid wave 1).
	FaultAt time.Duration
	// RecoverAfter is the outage before reconnection (default 50ms).
	RecoverAfter time.Duration
	// Window caps concurrently migrating segments (0 = unlimited).
	Window int
	// SkipVerify disables HSA wave verification (benchmark baseline).
	SkipVerify bool
	// Aggregate runs the proxy with the incremental FIB aggregation
	// layer (core.Config.Aggregate): waves are planned against logical
	// rules but release only when the covering physical installs
	// confirm (see docs/AGGREGATION.md).
	Aggregate bool
	// CtrlLatency and LinkLatency mirror EnvConfig (100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated run (default 30s).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o PlannedMigrationOpts) Defaults() PlannedMigrationOpts {
	if o.K == 0 {
		o.K = 8
	}
	if o.Flows == 0 {
		o.Flows = 2 * o.K
	}
	if o.Profile == "" {
		o.Profile = FaultNone
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FaultSwitches == 0 {
		o.FaultSwitches = 2
	}
	if o.FaultAt == 0 {
		o.FaultAt = time.Millisecond
	}
	if o.RecoverAfter == 0 {
		o.RecoverAfter = 50 * time.Millisecond
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	return o
}

// PlannedMigrationResult reports one planned fat-tree migration.
type PlannedMigrationResult struct {
	K, Switches int
	Flows       int
	Profile     FaultProfile
	Seed        int64

	Segments int
	Waves    int // waves in the compiled plan
	// VerifiedWaves counts waves released after passing HSA transient
	// verification (== released waves unless SkipVerify).
	VerifiedWaves int
	Replans       int
	Wedged        int
	Completed     bool
	// NewPathOK is the install half of the FIB ground-truth check: every
	// flow's new-path rules present in the data plane with the planned
	// output. Install acks carry positive forwarding evidence, so this
	// holds under every profile, including loss.
	NewPathOK bool
	// FinalStateOK additionally requires every old-only rule deleted.
	// Removal confirmation is one-sided — a probe that stops being
	// forwarded — so a lost FlowMod plus a lost probe frame can
	// false-confirm a removal under the loss profile (see
	// docs/PLANNER.md); the profiles with intact data planes guarantee
	// this check.
	FinalStateOK bool
	// DoubleInstalls counts planner rules whose data-plane add
	// activations exceed what re-plans legitimately allow (one per FIB
	// lifetime: 1, or 2 on a restarted switch). The acceptance gate
	// requires zero — re-plans must never re-send an applied rule.
	DoubleInstalls int
	// AggregationCounterexamples sums the aggregation verifier's
	// unrepaired failures across switches when Opts.Aggregate is on
	// (must stay zero).
	AggregationCounterexamples uint64

	// WaveStats is the per-wave latency attribution (release → confirm
	// on the simulated clock, verification wall cost, replans).
	WaveStats []planner.WaveStat
	// PlanWall is the real time spent compiling, verifying and pumping
	// the plan; VerifyWall is the HSA share of it.
	PlanWall   time.Duration
	VerifyWall time.Duration
	SimElapsed time.Duration

	// Trace is the canonical event transcript: same opts and seed →
	// byte-identical trace (the deterministic-replay acceptance check).
	Trace string
}

// String summarizes the run.
func (r *PlannedMigrationResult) String() string {
	return fmt.Sprintf("planned{k=%d %s seed=%d}: %d flows, %d/%d waves verified, %d replans, %d wedged, completed=%v final=%v verify=%v/%v",
		r.K, r.Profile, r.Seed, r.Flows, r.VerifiedWaves, r.Waves, r.Replans, r.Wedged,
		r.Completed, r.FinalStateOK, r.VerifyWall.Round(time.Microsecond), r.PlanWall.Round(time.Microsecond))
}

// plannedFlow is one flow's wiring through the fat-tree.
type plannedFlow struct {
	change planner.PathChange
	// oldOnly lists switches whose rule the plan strict-deletes.
	oldOnly []planner.PathHop
}

// plannedFlows lays out n flows: flow i enters at pod (i mod k), edge
// ((i/k) mod k/2), exits at the next pod's same edge, and migrates from
// the {agg 0, core 0} spine to the {agg k/2-1, core last} spine.
func plannedFlows(ft *netsim.FatTree, n int) []plannedFlow {
	half := ft.K / 2
	path := func(p0, e0, p1, e1, j, m, hostPort int) []planner.PathHop {
		c := j*half + m
		return []planner.PathHop{
			{Switch: ft.Edge[p0*half+e0], OutPort: uint16(half + 1 + j)},
			{Switch: ft.Agg[p0*half+j], OutPort: uint16(half + 1 + m)},
			{Switch: ft.Core[c], OutPort: uint16(p1 + 1)},
			{Switch: ft.Agg[p1*half+j], OutPort: uint16(e1 + 1)},
			{Switch: ft.Edge[p1*half+e1], OutPort: uint16(hostPort)},
		}
	}
	out := make([]plannedFlow, 0, n)
	for i := 0; i < n; i++ {
		p0 := i % ft.K
		p1 := (p0 + 1) % ft.K
		e := (i / ft.K) % half
		hostPort := 1 + i%half
		f := controller.FlowSpec{ID: i}
		f.Src, f.Dst = controller.FlowAddr(i)
		old := path(p0, e, p1, e, 0, 0, hostPort)
		new := path(p0, e, p1, e, half-1, half-1, hostPort)
		pf := plannedFlow{change: planner.PathChange{
			Name:     fmt.Sprintf("flow-%d", i),
			Match:    controller.FlowMatch(f),
			Priority: 100,
			Old:      old,
			New:      new,
		}}
		// Old-only switches: the middle three hops (spines differ; the
		// edges are shared between both paths).
		pf.oldOnly = old[1:4]
		out = append(out, pf)
	}
	return out
}

// plannedTargets picks fault targets among switches the planner owns
// ops on. For disconnects the first flow's ingress edge is included —
// it has no op in flight when the fault fires, so only the harness's
// Resync call (not a future) covers it. Restarts avoid edges: an edge
// is some other flow's egress, and a FIB wipe there would destroy a
// preinstalled rule the planner does not own and will not restore —
// that is the operator's rule, outside the plan's footprint.
func plannedTargets(flows []plannedFlow, n int, includeEdges bool) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(sw string) {
		if !seen[sw] && len(out) < n {
			seen[sw] = true
			out = append(out, sw)
		}
	}
	for _, pf := range flows {
		hops := pf.change.New
		add(hops[1].Switch) // new aggregation: wave-1 add in flight
		if includeEdges {
			add(hops[0].Switch) // ingress edge: no op in flight yet
		}
		add(hops[2].Switch) // new core
		add(hops[3].Switch) // destination-pod aggregation
		if len(out) == n {
			break
		}
	}
	return out
}

// PlannedMigration runs the HSA-verified consistent path migration on
// the fat-tree: the planner compiles every flow into an
// add→flip→delete wave schedule, verifies each wave's transient states,
// releases waves on ack futures (edge: sequential probing, aggregation
// and core: general probing — all data-plane-proven), and survives the
// fault layer by re-planning from switch state snapshots.
func PlannedMigration(o PlannedMigrationOpts) (*PlannedMigrationResult, error) {
	o = o.Defaults()
	ft, err := netsim.NewFatTree(o.K)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	n := netsim.New(s)
	inj := faults.NewInjector(o.Seed)

	// Faults are armed when plan execution starts: the preinstalled
	// baseline is the experiment's given starting point, the adversarial
	// conditions apply to the consistent update itself. The Match gate
	// fires before any probability roll, so arming at a fixed simulation
	// point keeps the schedule deterministic.
	armed := false
	msgPlan := o.Profile.messagePlan()
	for i := range msgPlan.Rules {
		inner := msgPlan.Rules[i].Match
		msgPlan.Rules[i].Match = func(m of.Message) bool {
			return armed && (inner == nil || inner(m))
		}
	}

	names := ft.Switches()
	switches := make(map[string]*switchsim.Switch)
	for i, name := range names {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, o.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	if o.Profile == FaultLoss {
		n.SetTransmitFilter(func(string, uint16, *netsim.Frame) bool {
			return !armed || !lossRoll(inj)
		})
	}

	// Reliable acks everywhere: the planner's wave gating is only as
	// truthful as the strategy underneath, so the mixed deployment uses
	// the probing techniques (edge: sequential, agg+core: general).
	cfg := core.Config{Clock: s, Technique: core.TechGeneral, RUMAware: true,
		Aggregate: o.Aggregate}
	cfg.PerSwitch = make(map[string]core.Technique)
	for _, sw := range ft.Edge {
		cfg.PerSwitch[sw] = core.TechSequential
	}
	r, err := core.New(cfg, core.NewTopology(links))
	if err != nil {
		return nil, err
	}

	ctrlConns := make(map[string]transport.Conn)
	attach := func(name string) error {
		sw := switches[name]
		ctrlTop, ctrlBottom := transport.Pipe(s, o.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, o.CtrlLatency)
		sw.AttachConn(swSide)
		wrapped := faults.Wrap(rumSide, s, inj, msgPlan)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, wrapped); err != nil {
			return fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
		return nil
	}
	for _, name := range names {
		if err := attach(name); err != nil {
			return nil, err
		}
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := r.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	// Baseline: drop-all everywhere plus every flow's old-path rules.
	flows := plannedFlows(ft, o.Flows)
	sendRule := func(sw string, fm *of.FlowMod) {
		fm.SetXID(client.NewXID())
		_ = client.Send(sw, fm)
	}
	dropAll := func(sw string) {
		sendRule(sw, &of.FlowMod{Command: of.FCAdd, Priority: 1, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone})
	}
	for _, name := range names {
		dropAll(name)
	}
	for _, pf := range flows {
		for _, h := range pf.change.Old {
			sendRule(h.Switch, &of.FlowMod{Command: of.FCAdd, Priority: pf.change.Priority,
				Match: pf.change.Match, BufferID: of.BufferNone, OutPort: of.PortNone,
				Actions: []of.Action{of.ActionOutput{Port: h.OutPort}}})
		}
	}
	s.RunFor(time.Second)

	pl, err := planner.New(planner.Config{
		RUM:    r,
		Clock:  s,
		Send:   func(sw string, fm *of.FlowMod) error { return client.Send(sw, fm) },
		NewXID: client.NewXID,
		State:  func(sw string) []hsa.Rule { return switches[sw].CtrlTable().Rules() },
		Ports:  PortsOf(links),
		Window: o.Window, SkipVerify: o.SkipVerify,
	})
	if err != nil {
		return nil, err
	}

	changes := make([]planner.PathChange, len(flows))
	for i, pf := range flows {
		changes[i] = pf.change
	}
	armed = true
	wallStart := time.Now()
	plan, err := pl.Plan(changes)
	if err != nil {
		return nil, err
	}
	exec, err := pl.Execute(plan)
	if err != nil {
		return nil, err
	}
	execStart := s.Now()

	// Switch-level fault schedule, aimed at planner-owned switches.
	crashed := make(map[string]bool)
	if o.Profile == FaultDisconnect || o.Profile == FaultRestart {
		cause := core.ErrChannelLost
		if o.Profile == FaultRestart {
			cause = core.ErrSwitchRestarted
		}
		for _, name := range plannedTargets(flows, o.FaultSwitches, o.Profile == FaultDisconnect) {
			name := name
			s.After(o.FaultAt, func() {
				if fc, ok := r.SwitchConn(name).(*faults.Conn); ok {
					fc.Kill()
				}
				if o.Profile == FaultRestart {
					crashed[name] = true
					switches[name].Crash(true)
				}
				r.DetachSwitchCause(name, cause)
				_ = ctrlConns[name].Close()
			})
			s.After(o.FaultAt+o.RecoverAfter, func() {
				if err := attach(name); err != nil {
					panic(err) // deterministic harness bug, not a runtime condition
				}
				client.SetConn(name, ctrlConns[name])
				if err := r.BootstrapSwitch(name); err != nil {
					panic(err)
				}
				if o.Profile == FaultRestart {
					// The operator's baseline comes back with the switch;
					// the planner re-issues its own rules on Resync.
					dropAll(name)
				}
				exec.Resync(name)
			})
		}
	}

	deadline := execStart + o.Deadline
	for !exec.Pump() && s.Now() < deadline {
		s.RunFor(5 * time.Millisecond)
	}
	planWall := time.Since(wallStart)

	res := &PlannedMigrationResult{
		K: o.K, Switches: len(names), Flows: o.Flows,
		Profile: o.Profile, Seed: o.Seed,
		Segments:   len(plan.Segments),
		Waves:      plan.Waves(),
		Replans:    exec.Replans(),
		Wedged:     exec.Wedged(),
		Completed:  exec.Done() && exec.Err() == nil,
		WaveStats:  exec.Waves(),
		PlanWall:   planWall,
		VerifyWall: exec.VerifyWall(),
		SimElapsed: s.Now() - execStart,
	}
	var trace strings.Builder
	for _, ev := range exec.EventLog() {
		if ev.Kind == planner.EventStageReleased && !o.SkipVerify {
			res.VerifiedWaves++
		}
		fmt.Fprintf(&trace, "@%d %s %s/%d %s", ev.At.Nanoseconds(), ev.Kind, ev.Segment, ev.Stage, ev.Detail)
		if ev.Err != nil {
			fmt.Fprintf(&trace, " err=%v", ev.Err)
		}
		trace.WriteByte('\n')
	}
	fmt.Fprintf(&trace, "injected: %s\n", inj.Stats())
	res.Trace = trace.String()

	// FIB ground truth: new-path rules present with the right output,
	// old-only rules strict-deleted, and no rule installed more often
	// than its switch's FIB lifetimes permit.
	res.NewPathOK, res.FinalStateOK = true, true
	for _, pf := range flows {
		for _, h := range pf.change.New {
			e := switches[h.Switch].DataTable().Find(pf.change.Match, pf.change.Priority)
			if e == nil || len(e.Actions) != 1 {
				res.NewPathOK = false
				continue
			}
			if out, ok := e.Actions[0].(of.ActionOutput); !ok || out.Port != h.OutPort {
				res.NewPathOK = false
			}
		}
		for _, h := range pf.oldOnly {
			if switches[h.Switch].DataTable().Find(pf.change.Match, pf.change.Priority) != nil {
				res.FinalStateOK = false
			}
		}
		for _, h := range pf.change.New {
			adds := 0
			for _, a := range switches[h.Switch].Activations() {
				if !a.Deleted && a.At >= execStart && a.Match == pf.change.Match && a.Priority == pf.change.Priority {
					adds++
				}
			}
			allowed := 1
			if crashed[h.Switch] {
				allowed = 2
			}
			if adds > allowed {
				res.DoubleInstalls += adds - allowed
			}
		}
	}
	res.FinalStateOK = res.FinalStateOK && res.NewPathOK
	if o.Aggregate {
		for _, name := range names {
			if st, ok := r.AggregationStats(name); ok {
				res.AggregationCounterexamples += st.Counterexamples
			}
		}
	}
	return res, nil
}
