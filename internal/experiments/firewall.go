package experiments

import (
	"fmt"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/planner"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// FirewallResult quantifies Figure 2's transient security hole: how many
// http packets reached the destination without passing the firewall
// during the "theoretically safe" update.
type FirewallResult struct {
	Mode           string
	BypassedHTTP   int // http packets at the destination that skipped the firewall
	FirewalledHTTP int
	OtherDelivered int
	WindowClosed   time.Duration // when Z became active in B's data plane
}

// FirewallOpts parameterizes the run.
type FirewallOpts struct {
	WithRUM  bool
	Duration time.Duration
	Seed     int64
}

// Firewall reproduces Figure 2's scenario on the topology
//
//	h1 — a — b — s3 — h2
//	          \
//	           c — fw
//
// The firewall hangs off switch c (so the http rule Z is data-plane
// probe-able). Rules Y (host→S3) and Z (host http→FIREWALL, higher
// priority) are installed at b; rule X at a depends on both. Switch b
// pushes one rule per data-plane sync, so Z becomes visible a full sync
// period after Y. With plain (broken) barrier acknowledgments, X
// activates while Z is still missing from b's data plane, and http
// traffic crosses b unfirewalled. With RUM general probing, X is held
// until Y and Z are confirmed — no bypass.
func Firewall(o FirewallOpts) *FirewallResult {
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	s := sim.New()
	n := netsim.New(s)
	profs := map[string]switchsim.Profile{
		"a":  switchsim.ProfileSoftware(),
		"b":  reorderSplitProfile(o.Seed),
		"c":  switchsim.ProfileSoftware(),
		"s3": switchsim.ProfileSoftware(),
	}
	switches := make(map[string]*switchsim.Switch)
	for i, name := range []string{"a", "b", "c", "s3"} {
		switches[name] = switchsim.New(name, uint64(i+1), profs[name], s, n)
	}
	h1 := netsim.NewHost(n, "h1")
	h2 := netsim.NewHost(n, "h2")
	fw := netsim.NewHost(n, "fw") // the firewall absorbs and counts traffic
	lat := 20 * time.Microsecond
	n.Connect(h1, h1.Port(), switches["a"], 1, lat)
	n.Connect(switches["a"], 2, switches["b"], 1, lat)
	n.Connect(switches["b"], 2, switches["s3"], 2, lat)
	n.Connect(switches["b"], 3, switches["c"], 1, lat)
	n.Connect(switches["c"], 2, fw, fw.Port(), lat)
	n.Connect(switches["s3"], 1, h2, h2.Port(), lat)

	links := []core.TopoLink{
		{A: "a", APort: 2, B: "b", BPort: 1},
		{A: "b", APort: 2, B: "s3", BPort: 2},
		{A: "b", APort: 3, B: "c", BPort: 1},
	}
	topo := core.NewTopology(links)
	mode := "broken barriers"
	tech := core.TechBarriers
	if o.WithRUM {
		mode = "RUM general probing"
		tech = core.TechGeneral
	}
	rum, err := core.New(core.Config{Clock: s, Technique: tech, RUMAware: true}, topo)
	if err != nil {
		panic(err)
	}
	ctrlConns := make(map[string]transport.Conn)
	for name, sw := range switches {
		ctrlTop, ctrlBottom := transport.Pipe(s, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(s, 100*time.Microsecond)
		sw.AttachConn(swSide)
		if _, err := rum.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			panic(err)
		}
		ctrlConns[name] = ctrlTop
	}
	client := controller.NewClient(s, ackModeFor(tech), ctrlConns)
	if err := rum.Bootstrap(); err != nil {
		panic(err)
	}
	s.RunFor(700 * time.Millisecond)

	// Steady state: s3 delivers to h2, c delivers to the firewall; a and
	// b drop unknown traffic.
	host, _ := controller.FlowAddr(0)
	for _, sw := range []string{"a", "b", "c", "s3"} {
		drop := &of.FlowMod{Command: of.FCAdd, Priority: 1, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone}
		drop.SetXID(client.NewXID())
		_ = client.Send(sw, drop)
	}
	s3m := of.MatchAll()
	s3m.Wildcards &^= of.WcDLType
	s3m.DLType = packet.EtherTypeIPv4
	s3m.SetNWSrc(host)
	s3fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: s3m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 1}}}
	s3fm.SetXID(client.NewXID())
	_ = client.Send("s3", s3fm)
	cfm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: s3m,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	cfm.SetXID(client.NewXID())
	_ = client.Send("c", cfm)
	s.RunFor(time.Second)

	// Traffic: the host's http and non-http flows.
	_, dst := controller.FlowAddr(0)
	httpPkt := packet.New(host, dst, packet.ProtoTCP, 34567, 80)
	otherPkt := packet.New(host, dst, packet.ProtoUDP, 4000, 9000)
	gen := netsim.NewGenerator(h1, []netsim.Flow{
		{ID: 1, Pkt: httpPkt, Period: 4 * time.Millisecond},
		{ID: 2, Pkt: otherPkt, Period: 4 * time.Millisecond},
	})
	gen.Start(time.Millisecond)
	s.RunFor(100 * time.Millisecond)

	// The update, as a hand-built planner segment: wave 1 installs Y
	// (host→S3) and Z (host http→FIREWALL) at b, wave 2 releases X at a
	// only once both confirmed — X after Y, X after Z, the paper's plan.
	// Wave 1 changes two rules on the same switch, so HSA's transient
	// check cannot see the Y-without-Z interleaving (the Figure 2 hazard
	// lives inside one wave; see docs/PLANNER.md on hand-built segments) —
	// whether the window actually closes is decided by the ack technique,
	// which is exactly what this experiment measures.
	ym := of.MatchAll()
	ym.Wildcards &^= of.WcDLType
	ym.DLType = packet.EtherTypeIPv4
	ym.SetNWSrc(host)
	yfm := &of.FlowMod{Command: of.FCAdd, Priority: 50, Match: ym,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}} // b → s3
	zm := ym
	zm.Wildcards &^= of.WcNWProto | of.WcTPDst
	zm.NWProto = packet.ProtoTCP
	zm.TPDst = 80
	zfm := &of.FlowMod{Command: of.FCAdd, Priority: 200, Match: zm,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 3}}} // b → c → fw
	xfm := &of.FlowMod{Command: of.FCAdd, Priority: 200, Match: ym,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}} // a → b

	pl, err := planner.New(planner.Config{
		RUM:    rum,
		Clock:  s,
		Send:   func(sw string, fm *of.FlowMod) error { return client.Send(sw, fm) },
		NewXID: client.NewXID,
		State:  func(sw string) []hsa.Rule { return switches[sw].CtrlTable().Rules() },
		Ports:  PortsOf(links),
	})
	if err != nil {
		panic(err)
	}
	plan, err := pl.PlanSegments([]planner.Segment{{
		Name:   "firewall",
		Region: hsa.Region{Ingress: "a", Match: ym},
		Stages: []planner.Stage{
			{Ops: []planner.Op{{Switch: "b", FM: yfm}, {Switch: "b", FM: zfm}}},
			{Ops: []planner.Op{{Switch: "a", FM: xfm}}},
		},
	}})
	if err != nil {
		panic(err)
	}
	exec, err := pl.Execute(plan)
	if err != nil {
		panic(err)
	}
	limit := s.Now() + o.Duration
	for !exec.Pump() && s.Now() < limit {
		s.RunFor(10 * time.Millisecond)
	}
	s.RunFor(time.Second)
	gen.Stop()
	s.RunFor(50 * time.Millisecond)

	res := &FirewallResult{Mode: mode}
	for _, a := range h2.Arrivals() {
		switch a.FlowID {
		case 1:
			// http at the destination without transiting the firewall.
			if a.Via("fw") {
				res.FirewalledHTTP++
			} else {
				res.BypassedHTTP++
			}
		case 2:
			res.OtherDelivered++
		}
	}
	// In this topology the firewall is a sink, so any http arrival at h2
	// is a bypass; also count what the firewall absorbed.
	res.FirewalledHTTP += countFlow(fw.Arrivals(), 1)
	for _, act := range switches["b"].Activations() {
		// Z is the only TCP/80 rule.
		if act.Match.Wildcards&of.WcTPDst == 0 && act.Match.TPDst == 80 && !act.Deleted {
			res.WindowClosed = act.At
		}
	}
	return res
}

// reorderSplitProfile is the Figure-2 switch: early barriers and
// single-rule sync batches in arrival order, so Y and Z become visible in
// different syncs — the paper's timeline where Z-mod lands long after
// Y-mod.
func reorderSplitProfile(seed int64) switchsim.Profile {
	p := switchsim.ProfileHP5406zl()
	p.Name = "hp-split-sync"
	p.SyncBatch = 1
	_ = seed
	return p
}

func countFlow(arrivals []netsim.Arrival, flowID int) int {
	n := 0
	for _, a := range arrivals {
		if a.FlowID == flowID {
			n++
		}
	}
	return n
}

// RenderFirewall prints both modes side by side.
func RenderFirewall(broken, withRUM *FirewallResult) string {
	var b strings.Builder
	b.WriteString("Figure 2 — transient firewall bypass during a \"safe\" update\n")
	fmt.Fprintf(&b, "  %-22s %14s %16s %10s\n", "mode", "bypassed http", "firewalled http", "other")
	for _, r := range []*FirewallResult{broken, withRUM} {
		fmt.Fprintf(&b, "  %-22s %14d %16d %10d\n", r.Mode, r.BypassedHTTP, r.FirewalledHTTP, r.OtherDelivered)
	}
	return b.String()
}
