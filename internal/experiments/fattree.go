package experiments

import (
	"fmt"
	"sort"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/netsim"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// FatTreeChurnOpts parameterizes the datacenter-scale churn workload: a
// k-ary fat-tree fabric (80 switches at k=8) under a storm of concurrent
// rule updates with per-switch acknowledgment strategies mixed across the
// layers. It is the scale counterpart of the paper's triangle
// experiments: the observable is not one figure's broken time but
// whether the RUM core keeps up — updates/sec through the proxy and the
// tail of the ack latency distribution.
type FatTreeChurnOpts struct {
	// K is the fat-tree arity (even, default 8 → 80 switches).
	K int
	// UpdatesPerSwitch is the number of rule updates issued to every
	// switch (default 25 → 2000 updates at k=8).
	UpdatesPerSwitch int
	// Burst is how many updates a switch receives back-to-back per
	// stagger tick — controllers push rules in batches, and bursts are
	// what the sharded core's batching/coalescing is built for (default
	// 5).
	Burst int
	// Stagger is the gap between a switch's consecutive update bursts;
	// all switches churn simultaneously (default 500µs).
	Stagger time.Duration
	// Mixed assigns strategies per layer — edge: sequential, aggregation:
	// general, core: the default technique — exercising heterogeneous
	// per-switch deployments. When false every switch runs Technique.
	Mixed bool
	// Technique is the non-mixed (and core-layer) strategy; default
	// timeout.
	Technique core.Technique
	// TimeoutRate is the timeout technique's work-proportional bound in
	// rules/sec (core.Config.TimeoutRate). The default 1000 is the rate
	// the paper's fixed 300 ms / 300-rule worst case already assumes; it
	// is what keeps the churn's ack-latency tail proportional to the
	// actual burst size instead of flat at the full-table worst case.
	// Negative restores the fixed-delay behavior (the tail-regression
	// baseline).
	TimeoutRate float64
	// Unsharded runs the pre-sharding compatibility hot path (the
	// regression baseline).
	Unsharded bool
	// CtrlLatency and LinkLatency mirror EnvConfig (defaults 100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated time the churn may take (default 60s).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o FatTreeChurnOpts) Defaults() FatTreeChurnOpts {
	if o.K == 0 {
		o.K = 8
	}
	if o.UpdatesPerSwitch == 0 {
		o.UpdatesPerSwitch = 25
	}
	if o.Burst == 0 {
		o.Burst = 5
	}
	if o.Stagger == 0 {
		o.Stagger = 500 * time.Microsecond
	}
	if o.Technique == "" {
		o.Technique = core.TechTimeout
	}
	if o.TimeoutRate == 0 {
		o.TimeoutRate = 1000
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 60 * time.Second
	}
	return o
}

// FatTreeChurnResult reports the workload's scale metrics.
type FatTreeChurnResult struct {
	K        int
	Switches int
	Updates  int

	Completed int // updates acknowledged (any positive outcome)
	Failed    int // updates resolved as failed
	Unacked   int // updates still pending at the deadline

	// WallElapsed is the real time the churn phase took to process —
	// the cost of running the RUM hot path — and UpdatesPerSec is
	// Completed divided by it.
	WallElapsed   time.Duration
	SimElapsed    time.Duration
	UpdatesPerSec float64

	// P50/P99 are percentiles of the observed ack latencies (simulated
	// time, issue → confirmation).
	P50, P99 time.Duration

	// PerTechnique breaks the latency distribution down by strategy
	// cohort — the instrumentation that located the original 300 ms p99
	// (every update on a timeout-technique core switch paid the fixed
	// full-table hold, while the probing cohorts confirmed in ~2 ms).
	PerTechnique map[core.Technique]CohortStats

	Acks, Probes, Fallbacks uint64

	// SwitchBarriers is the total number of BarrierRequests the fabric's
	// control planes served — the sharded core's coalescing shows up here
	// as a direct reduction in switch work for the same update count.
	SwitchBarriers uint64
}

// CohortStats is one strategy cohort's slice of the ack-latency
// distribution.
type CohortStats struct {
	Updates  int
	P50, P99 time.Duration
}

// FatTreeChurn builds a k-ary fat-tree of emulated switches proxied by
// one RUM instance and drives the churn storm through it.
func FatTreeChurn(opts FatTreeChurnOpts) (*FatTreeChurnResult, error) {
	opts = opts.Defaults()
	ft, err := netsim.NewFatTree(opts.K)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	n := netsim.New(s)
	switches := make(map[string]*switchsim.Switch)
	for i, name := range ft.Switches() {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, opts.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}

	cfg := core.Config{
		Clock:     s,
		Technique: opts.Technique,
		RUMAware:  true,
		Unsharded: opts.Unsharded,
	}
	if opts.TimeoutRate > 0 {
		cfg.TimeoutRate = opts.TimeoutRate
	}
	if opts.Mixed {
		cfg.PerSwitch = make(map[string]core.Technique)
		for _, sw := range ft.Edge {
			cfg.PerSwitch[sw] = core.TechSequential
		}
		for _, sw := range ft.Agg {
			cfg.PerSwitch[sw] = core.TechGeneral
		}
	}
	r, err := core.New(cfg, core.NewTopology(links))
	if err != nil {
		return nil, err
	}
	ctrlConns := make(map[string]transport.Conn)
	for name, sw := range switches {
		ctrlTop, ctrlBottom := transport.Pipe(s, opts.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, opts.CtrlLatency)
		sw.AttachConn(swSide)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			return nil, fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := r.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	// The churn storm: every switch receives UpdatesPerSwitch forwarding
	// rules (globally unique flows, output rotating over the switch's
	// inter-switch ports so the probing strategies can observe them),
	// all switches in parallel.
	names := ft.Switches()
	techniqueOf := func(sw string) core.Technique {
		if t, ok := cfg.PerSwitch[sw]; ok {
			return t
		}
		return opts.Technique
	}
	total := len(names) * opts.UpdatesPerSwitch
	handles := make([]*core.UpdateHandle, 0, total)
	flowID := 0
	for _, name := range names {
		ports := ft.InterPorts(name)
		for u := 0; u < opts.UpdatesPerSwitch; u++ {
			sw, port := name, ports[u%len(ports)]
			f := controller.FlowSpec{ID: flowID}
			f.Src, f.Dst = controller.FlowAddr(flowID)
			flowID++
			fm := controller.AddRule(f, 100, port)
			fm.SetXID(client.NewXID())
			handles = append(handles, r.Watch(sw, fm.GetXID()))
			delay := time.Duration(u/opts.Burst) * opts.Stagger
			s.After(delay, func() { _ = client.Send(sw, fm) })
		}
	}

	churnStart := s.Now()
	wallStart := time.Now()
	deadline := churnStart + opts.Deadline
	resolved := func() int {
		done := 0
		for _, h := range handles {
			if _, ok := h.Result(); ok {
				done++
			}
		}
		return done
	}
	for resolved() < total && s.Now() < deadline {
		s.RunFor(10 * time.Millisecond)
	}
	wall := time.Since(wallStart)

	res := &FatTreeChurnResult{
		K:           opts.K,
		Switches:    len(names),
		Updates:     total,
		WallElapsed: wall,
		SimElapsed:  s.Now() - churnStart,
	}
	percentiles := func(lats []time.Duration) (p50, p99 time.Duration) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i99 := len(lats) * 99 / 100
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		return lats[len(lats)*50/100], lats[i99]
	}
	var lats []time.Duration
	cohorts := make(map[core.Technique][]time.Duration)
	for _, h := range handles {
		ar, ok := h.Result()
		switch {
		case !ok:
			res.Unacked++
		case ar.Outcome == core.OutcomeFailed:
			res.Failed++
		default:
			res.Completed++
			lats = append(lats, ar.Latency)
			tech := techniqueOf(ar.Switch)
			cohorts[tech] = append(cohorts[tech], ar.Latency)
		}
	}
	if wall > 0 {
		res.UpdatesPerSec = float64(res.Completed) / wall.Seconds()
	}
	if len(lats) > 0 {
		res.P50, res.P99 = percentiles(lats)
		res.PerTechnique = make(map[core.Technique]CohortStats, len(cohorts))
		for tech, cl := range cohorts {
			st := CohortStats{Updates: len(cl)}
			st.P50, st.P99 = percentiles(cl)
			res.PerTechnique[tech] = st
		}
	}
	res.Acks, res.Probes, res.Fallbacks = r.Stats()
	for _, sw := range switches {
		res.SwitchBarriers += sw.BarriersServed()
	}
	return res, nil
}
