package experiments

import (
	"testing"
	"time"

	"rum/internal/core"
)

// TestFatTreeChurnSmall runs the scale workload end to end on a k=4
// fat-tree (20 switches) with the per-layer strategy mix: every update
// must resolve positively within the simulated deadline.
func TestFatTreeChurnSmall(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 8,
		Mixed:            true,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 20 {
		t.Fatalf("k=4 fat-tree ran %d switches, want 20", res.Switches)
	}
	if res.Updates != 160 || res.Completed != 160 {
		t.Fatalf("completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Fatalf("implausible latency percentiles p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Probes == 0 {
		t.Fatal("mixed strategies ran but no probes were injected")
	}
}

// TestFatTreeChurnUnshardedParity runs the same small workload over the
// pre-sharding compatibility path: the sharded refactor must not change
// what completes, only how fast.
func TestFatTreeChurnUnshardedParity(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 4,
		Mixed:            true,
		Unsharded:        true,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Updates {
		t.Fatalf("unsharded path completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
}

// TestFatTreeChurnSingleTechnique covers the homogeneous configuration
// (every switch on the timeout technique).
func TestFatTreeChurnSingleTechnique(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 4,
		Technique:        core.TechTimeout,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Updates {
		t.Fatalf("completed %d/%d updates", res.Completed, res.Updates)
	}
}
