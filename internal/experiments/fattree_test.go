package experiments

import (
	"testing"
	"time"

	"rum/internal/core"
)

// TestFatTreeChurnSmall runs the scale workload end to end on a k=4
// fat-tree (20 switches) with the per-layer strategy mix: every update
// must resolve positively within the simulated deadline.
func TestFatTreeChurnSmall(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 8,
		Mixed:            true,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 20 {
		t.Fatalf("k=4 fat-tree ran %d switches, want 20", res.Switches)
	}
	if res.Updates != 160 || res.Completed != 160 {
		t.Fatalf("completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Fatalf("implausible latency percentiles p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Probes == 0 {
		t.Fatal("mixed strategies ran but no probes were injected")
	}
	// The per-cohort instrumentation must cover every completed update
	// across the three mixed techniques.
	total := 0
	for tech, st := range res.PerTechnique {
		if st.Updates == 0 || st.P50 > st.P99 {
			t.Fatalf("cohort %s implausible: %+v", tech, st)
		}
		total += st.Updates
	}
	if len(res.PerTechnique) != 3 || total != res.Completed {
		t.Fatalf("cohorts %v cover %d updates, want 3 cohorts covering %d",
			res.PerTechnique, total, res.Completed)
	}
}

// TestFatTreeTimeoutRateBoundsTail is the tail-latency fix's regression
// test: with the work-proportional timeout bound (the default) the
// timeout cohort's p99 must scale with the burst backlog, not sit at the
// fixed full-table worst case — and disabling the bound must reproduce
// the historical flat-300ms cohort, proving the instrumentation actually
// attributes the tail.
func TestFatTreeTimeoutRateBoundsTail(t *testing.T) {
	opts := FatTreeChurnOpts{K: 4, UpdatesPerSwitch: 8, Mixed: true, Deadline: 30 * time.Second}
	scaled, err := FatTreeChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.TimeoutRate = -1 // fixed-delay baseline
	fixed, err := FatTreeChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := scaled.PerTechnique[core.TechTimeout]
	if !ok {
		t.Fatal("no timeout cohort in the mixed run")
	}
	fixedSt := fixed.PerTechnique[core.TechTimeout]
	if fixedSt.P99 < 300*time.Millisecond {
		t.Fatalf("fixed-delay timeout cohort p99 = %v, expected the flat 300ms worst case", fixedSt.P99)
	}
	if st.P99*3 > fixedSt.P99 {
		t.Fatalf("work-proportional bound p99 = %v, want ≥3x under the fixed-delay %v", st.P99, fixedSt.P99)
	}
	if scaled.Completed != scaled.Updates {
		t.Fatalf("scaled run completed %d/%d", scaled.Completed, scaled.Updates)
	}
}

// TestFatTreeChurnUnshardedParity runs the same small workload over the
// pre-sharding compatibility path: the sharded refactor must not change
// what completes, only how fast.
func TestFatTreeChurnUnshardedParity(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 4,
		Mixed:            true,
		Unsharded:        true,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Updates {
		t.Fatalf("unsharded path completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
}

// TestFatTreeChurnSingleTechnique covers the homogeneous configuration
// (every switch on the timeout technique).
func TestFatTreeChurnSingleTechnique(t *testing.T) {
	res, err := FatTreeChurn(FatTreeChurnOpts{
		K:                4,
		UpdatesPerSwitch: 4,
		Technique:        core.TechTimeout,
		Deadline:         30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Updates {
		t.Fatalf("completed %d/%d updates", res.Completed, res.Updates)
	}
}
