package experiments

import (
	"testing"
	"time"

	"rum/internal/core"
	"rum/internal/switchsim"
)

// Small-scale versions of each experiment keep the suite fast; the full
// parameters run from cmd/rumbench and the root bench targets.

func TestMigrationBarriersDropsPackets(t *testing.T) {
	res := RunMigration(MigrationOpts{Technique: core.TechBarriers, NumFlows: 60})
	if !res.Completed {
		t.Fatal("migration did not complete")
	}
	if got := len(res.Updates); got != 60 {
		t.Fatalf("observed %d flows, want 60", got)
	}
	if res.TotalLost == 0 {
		t.Error("broken barriers lost no packets; the §1 problem did not reproduce")
	}
	if res.MaxBroken < 50*time.Millisecond {
		t.Errorf("max broken time %v, want >= 50ms with a buggy switch", res.MaxBroken)
	}
}

func TestMigrationSequentialLossless(t *testing.T) {
	res := RunMigration(MigrationOpts{Technique: core.TechSequential, NumFlows: 60})
	if !res.Completed {
		t.Fatal("migration did not complete")
	}
	if res.TotalLost != 0 {
		t.Errorf("sequential probing lost %d packets, want 0", res.TotalLost)
	}
	for _, u := range res.Updates {
		if !u.Switched {
			t.Fatalf("flow %d never switched to the new path", u.FlowID)
		}
	}
}

func TestMigrationGeneralLossless(t *testing.T) {
	res := RunMigration(MigrationOpts{Technique: core.TechGeneral, NumFlows: 60})
	if res.TotalLost != 0 {
		t.Errorf("general probing lost %d packets, want 0", res.TotalLost)
	}
}

func TestMigrationTimeoutLosslessButSlower(t *testing.T) {
	to := RunMigration(MigrationOpts{Technique: core.TechTimeout,
		RUM: core.Config{Timeout: 300 * time.Millisecond}, NumFlows: 60})
	if to.TotalLost != 0 {
		t.Errorf("timeout technique lost %d packets, want 0", to.TotalLost)
	}
	bar := RunMigration(MigrationOpts{Technique: core.TechBarriers, NumFlows: 60})
	if to.MeanUpdate <= bar.MeanUpdate {
		t.Errorf("timeout mean update %v not slower than barriers %v", to.MeanUpdate, bar.MeanUpdate)
	}
}

func TestMigrationAdaptive(t *testing.T) {
	// The HP model's mod rate falls below 250/s once the table passes
	// ~170 entries, so the occupancy effect needs the full 300 flows.
	hp := switchsim.ProfileHP5406zl()
	a200 := RunMigration(MigrationOpts{Technique: core.TechAdaptive,
		RUM: core.Config{AssumedRate: 200, ModelSyncPeriod: hp.SyncPeriod}, NumFlows: 300})
	if a200.TotalLost != 0 {
		t.Errorf("adaptive 200 lost %d packets, want 0 (model underestimates rate)", a200.TotalLost)
	}
	a250 := RunMigration(MigrationOpts{Technique: core.TechAdaptive,
		RUM: core.Config{AssumedRate: 250, ModelSyncPeriod: hp.SyncPeriod}, NumFlows: 300})
	if a250.TotalLost == 0 {
		t.Error("adaptive 250 lost nothing; overestimated model should under-wait at high occupancy")
	}
}

func TestMigrationNoWaitFastest(t *testing.T) {
	nw := RunMigration(MigrationOpts{Technique: core.TechNoWait, NumFlows: 60})
	seq := RunMigration(MigrationOpts{Technique: core.TechSequential, NumFlows: 60})
	if nw.Duration > seq.Duration {
		t.Errorf("no-wait total %v slower than sequential %v", nw.Duration, seq.Duration)
	}
}

func TestFig8SmallShape(t *testing.T) {
	results := Fig8(Fig8Opts{R: 60, K: 60})
	byLabel := make(map[string]*Fig8Result)
	for _, r := range results {
		byLabel[r.Label] = r
		if len(r.Deltas) == 0 {
			t.Fatalf("%s produced no deltas", r.Label)
		}
	}
	if byLabel["barriers (baseline)"].Negative == 0 {
		t.Error("barrier baseline shows no incorrect (negative) delays")
	}
	for _, name := range []string{"timeout", "sequential", "general", "adaptive 200"} {
		if n := byLabel[name].Negative; n != 0 {
			t.Errorf("%s has %d negative delays, want 0", name, n)
		}
	}
	// Probing should be tighter than the fixed timeout at the median.
	if med := func(r *Fig8Result) time.Duration {
		return r.Deltas[len(r.Deltas)/2]
	}; med(byLabel["general"]) >= med(byLabel["timeout"]) {
		t.Errorf("general median %v not below timeout median %v",
			med(byLabel["general"]), med(byLabel["timeout"]))
	}
	if RenderFig8(results) == "" {
		t.Error("empty rendering")
	}
}

func TestTable1SmallShape(t *testing.T) {
	cells := Table1(Table1Opts{R: 200, ProbeEverys: []int{1, 10}, Ks: []int{20, 100}})
	byKey := make(map[[2]int]Table1Cell)
	for _, c := range cells {
		byKey[[2]int{c.ProbeEvery, c.K}] = c
		if c.Normalized <= 0 || c.Normalized > 1.2 {
			t.Errorf("cell pe=%d K=%d normalized=%.2f out of range", c.ProbeEvery, c.K, c.Normalized)
		}
	}
	// Probing after every update must cost roughly half the rate; after 10
	// it must recover most of it.
	if f1 := byKey[[2]int{1, 100}].Normalized; f1 > 0.65 {
		t.Errorf("probe-every-1 normalized rate %.2f, want <= 0.65", f1)
	}
	if f10 := byKey[[2]int{10, 100}].Normalized; f10 < 0.75 {
		t.Errorf("probe-every-10 normalized rate %.2f, want >= 0.75", f10)
	}
	// More frequent confirmation windows beat tight ones for the same
	// probing frequency.
	if byKey[[2]int{10, 100}].Normalized < byKey[[2]int{10, 20}].Normalized-0.05 {
		t.Errorf("K=100 (%.2f) unexpectedly below K=20 (%.2f)",
			byKey[[2]int{10, 100}].Normalized, byKey[[2]int{10, 20}].Normalized)
	}
	if RenderTable1(cells, []int{20, 100}) == "" {
		t.Error("empty rendering")
	}
}

func TestFirewallBypassReproduced(t *testing.T) {
	broken := Firewall(FirewallOpts{WithRUM: false})
	if broken.BypassedHTTP == 0 {
		t.Error("broken barriers produced no firewall bypass; Figure 2 did not reproduce")
	}
	withRUM := Firewall(FirewallOpts{WithRUM: true})
	if withRUM.BypassedHTTP != 0 {
		t.Errorf("RUM still let %d http packets bypass the firewall", withRUM.BypassedHTTP)
	}
	if withRUM.FirewalledHTTP == 0 {
		t.Error("no http packets reached the firewall with RUM")
	}
	if RenderFirewall(broken, withRUM) == "" {
		t.Error("empty rendering")
	}
}

func TestRatesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("rates experiment is slow")
	}
	r := Rates()
	if r.PacketOutPerSec < 6000 || r.PacketOutPerSec > 8000 {
		t.Errorf("PacketOut rate %.0f/s, want ≈7006", r.PacketOutPerSec)
	}
	if r.PacketInPerSec < 4800 || r.PacketInPerSec > 6200 {
		t.Errorf("PacketIn rate %.0f/s, want ≈5531", r.PacketInPerSec)
	}
	if r.PacketInModRatio < 0.9 || r.PacketInModRatio > 1.01 {
		t.Errorf("PacketIn mod ratio %.3f, want ~>=0.96", r.PacketInModRatio)
	}
	if r.PacketOutModRatio < 0.8 || r.PacketOutModRatio > 1.01 {
		t.Errorf("PacketOut 5:1 mod ratio %.3f, want ~>=0.87", r.PacketOutModRatio)
	}
	if r.Render() == "" {
		t.Error("empty rendering")
	}
}

func TestBarrierLayerOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("barrier layer experiment is slow")
	}
	results := BarrierLayer(BarrierLayerOpts{NumFlows: 60})
	if len(results) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(results))
	}
	// Non-reordering: comparable to plain sequential probing (paper: "the
	// same"; we allow proxy/serialization noise).
	if results[0].Ratio > 1.6 {
		t.Errorf("non-reordering barrier layer ratio %.2f, want ≈1x", results[0].Ratio)
	}
	// Reordering + buffering: measurably slower than plain general
	// probing (paper: ≈2x).
	if results[1].Ratio < 1.1 {
		t.Errorf("reordering barrier layer ratio %.2f, want >1.1x", results[1].Ratio)
	}
	// Barrier after every command: several times slower (paper: up to 5x).
	if results[2].Ratio < 3 || results[2].Ratio > 10 {
		t.Errorf("barrier/1 ratio %.2f, want 3-10x", results[2].Ratio)
	}
	if results[2].Ratio <= results[1].Ratio {
		t.Errorf("barrier/1 ratio %.2f not above barrier/10 ratio %.2f",
			results[2].Ratio, results[1].Ratio)
	}
	if RenderBarrierLayer(results) == "" {
		t.Error("empty rendering")
	}
}

func TestHighRateCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("high-rate check is slow")
	}
	r := Fig1bHighRate()
	if r.Lost != 0 {
		t.Errorf("high-rate check lost %d packets, want 0", r.Lost)
	}
}

func TestRenderers(t *testing.T) {
	fig1b := &Fig1bResult{
		Barriers: RunMigration(MigrationOpts{Technique: core.TechBarriers, NumFlows: 30}),
		WithRUM:  RunMigration(MigrationOpts{Technique: core.TechSequential, NumFlows: 30}),
	}
	if fig1b.Render() == "" {
		t.Error("empty fig1b rendering")
	}
	fc := &FlowCurveResult{Results: []*MigrationResult{fig1b.Barriers}}
	if fc.Render("Figure 6") == "" {
		t.Error("empty flow-curve rendering")
	}
}
