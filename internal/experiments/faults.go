package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/faults"
	"rum/internal/netsim"
	"rum/internal/retry"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// reconnectPolicy is the backoff schedule the experiment harnesses feed
// controller.Client.Reconnect when re-dialing a severed control channel:
// jittered exponential from 5ms to a 20ms cap, tight enough that a
// recovered switch is re-adopted within one cap of the outage ending.
var reconnectPolicy = retry.Policy{
	Base:       5 * time.Millisecond,
	Cap:        20 * time.Millisecond,
	Multiplier: 2,
	Jitter:     0.5,
}

// errSwitchDown is what a harness dial returns while the outage lasts.
var errSwitchDown = errors.New("experiments: switch still unreachable")

// reconnectSeed derives a per-switch backoff seed from the run seed so
// every switch jitters independently yet two runs with equal opts replay
// identical reconnect schedules (FNV-1a over the switch name).
func reconnectSeed(base int64, name string) int64 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return base + int64(h)
}

// FaultProfile names one adversarial condition the reliability suite
// runs the fat-tree churn under. The paper's premise is that control
// planes lie; these profiles make them lie in specific, reproducible
// ways so each AckStrategy's reliability claim is measurable.
type FaultProfile string

const (
	// FaultNone runs the churn through the fault wrapper with no faults
	// triggered — the wrapper-overhead baseline the benchcheck gate
	// compares against plain FatTreeChurn.
	FaultNone FaultProfile = "none"
	// FaultLoss drops 5% of control-channel messages in each direction
	// and 2% of data-plane frames (probe loss). Barrier-trusting
	// strategies false-ack dropped FlowMods; probing strategies must
	// re-probe and re-emit lost infrastructure rules.
	FaultLoss FaultProfile = "loss"
	// FaultDupReorder duplicates 5% and reorders 5% of control
	// messages — stale and out-of-order replies must not corrupt
	// bookkeeping.
	FaultDupReorder FaultProfile = "dup-reorder"
	// FaultCorrupt flips a byte in 5% of control messages — mangled
	// xids masquerade as replies to messages never sent.
	FaultCorrupt FaultProfile = "corrupt"
	// FaultDisconnect cuts the control channel of FaultSwitches
	// switches mid-churn; RUM detaches them with ErrChannelLost and the
	// harness reconnects after RecoverAfter. Switch FIBs survive.
	FaultDisconnect FaultProfile = "disconnect"
	// FaultRestart crashes FaultSwitches switches mid-churn with a full
	// FIB wipe (ErrSwitchRestarted); reconnection re-bootstraps probe
	// infrastructure on the empty switch.
	FaultRestart FaultProfile = "restart"
	// FaultStall degrades FaultSwitches switches to the paper's HP
	// hardware behaviour mid-churn: 300 ms data-plane syncs with
	// control-plane stalls and early barrier replies.
	FaultStall FaultProfile = "stall"
)

// FaultProfiles lists every profile in suite order.
func FaultProfiles() []FaultProfile {
	return []FaultProfile{FaultNone, FaultLoss, FaultDupReorder, FaultCorrupt,
		FaultDisconnect, FaultRestart, FaultStall}
}

// switchFaults reports whether the profile includes switch-level events.
func (p FaultProfile) switchFaults() bool {
	return p == FaultDisconnect || p == FaultRestart || p == FaultStall
}

// messagePlan builds the profile's message-level fault plan.
func (p FaultProfile) messagePlan() *faults.Plan {
	switch p {
	case FaultLoss:
		return &faults.Plan{Rules: []faults.Rule{{Action: faults.ActDrop, Prob: 0.05}}}
	case FaultDupReorder:
		return &faults.Plan{Rules: []faults.Rule{
			{Action: faults.ActDup, Prob: 0.05},
			{Action: faults.ActReorder, Prob: 0.05},
		}}
	case FaultCorrupt:
		return &faults.Plan{Rules: []faults.Rule{{Action: faults.ActCorrupt, Prob: 0.05}}}
	default:
		// Switch-level profiles and the baseline keep the wrapper in
		// place with no message faults, so the overhead is uniform.
		return faults.Passthrough()
	}
}

// FaultChurnOpts parameterizes the reliability workload: the fat-tree
// churn of FatTreeChurn, run through the fault-injection layer.
type FaultChurnOpts struct {
	// Profile selects the adversarial condition (default FaultNone).
	Profile FaultProfile
	// Seed feeds the deterministic injector: same seed, same schedule,
	// same ack trace (default 1).
	Seed int64
	// K is the fat-tree arity (default 4 → 20 switches; the suite runs
	// every profile, so it is sized for CI rather than scale).
	K int
	// UpdatesPerSwitch is the wave-1 update count per switch, and the
	// wave-2 count per recovered switch (default 20).
	UpdatesPerSwitch int
	// Burst and Stagger shape the churn like FatTreeChurnOpts
	// (defaults 5, 500µs).
	Burst   int
	Stagger time.Duration
	// Uniform runs every switch on Technique. By default the suite
	// mixes strategies per layer (edge: sequential, agg: general,
	// core: Technique), as in FatTreeChurn — comparing techniques
	// under the same faults is the suite's point.
	Uniform bool
	// Technique is the uniform (and core-layer) strategy; default
	// timeout.
	Technique core.Technique
	// FaultSwitches is how many switches suffer switch-level faults
	// under the disconnect/restart/stall profiles, drawn round-robin
	// from the edge, aggregation, and core layers (default 3 — one per
	// cohort).
	FaultSwitches int
	// FaultAt is when the switch-level fault fires, relative to churn
	// start (default 1ms — mid wave 1).
	FaultAt time.Duration
	// RecoverAfter is the outage duration before the harness reconnects
	// a cut or crashed switch (default 50ms).
	RecoverAfter time.Duration
	// CtrlLatency and LinkLatency mirror EnvConfig (defaults
	// 100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated run; futures unresolved at the
	// deadline are wedged (default 30s — far beyond every liveness
	// net's retry interval).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o FaultChurnOpts) Defaults() FaultChurnOpts {
	if o.Profile == "" {
		o.Profile = FaultNone
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.K == 0 {
		o.K = 4
	}
	if o.UpdatesPerSwitch == 0 {
		o.UpdatesPerSwitch = 20
	}
	if o.Burst == 0 {
		o.Burst = 5
	}
	if o.Stagger == 0 {
		o.Stagger = 500 * time.Microsecond
	}
	if o.Technique == "" {
		o.Technique = core.TechTimeout
	}
	if o.FaultSwitches == 0 {
		o.FaultSwitches = 3
	}
	if o.FaultAt == 0 {
		o.FaultAt = time.Millisecond
	}
	if o.RecoverAfter == 0 {
		o.RecoverAfter = 50 * time.Millisecond
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	return o
}

// TechFaultStats is one strategy cohort's reliability scorecard.
// Updates = Acked + FailedTyped + SendFailed + Wedged.
type TechFaultStats struct {
	// Updates is the cohort's issued update count.
	Updates int
	// Acked resolved with a positive outcome (installed, removed, or
	// fallback).
	Acked int
	// FailedTyped resolved as failed with a typed cause — the honest
	// answer on a dead channel.
	FailedTyped int
	// SendFailed never left the controller: the send itself failed on
	// a dead controller-side channel.
	SendFailed int
	// Wedged never resolved before the deadline: the strategy lost an
	// update. The acceptance gate requires zero.
	Wedged int
	// FalseAcks were acknowledged installed/removed although the rule
	// never became visible in the switch's data plane — the paper's
	// headline failure, measured per strategy under faults.
	FalseAcks int
}

// FaultChurnResult reports one profile run.
type FaultChurnResult struct {
	Profile  FaultProfile
	Seed     int64
	Switches int
	// Updates counts issued updates (Acked + FailedTyped + SendFailed
	// + Wedged); SendFailed counts those whose send already failed on
	// a dead controller-side channel (the controller knows
	// immediately — they are neither acked nor wedged).
	Updates    int
	SendFailed int

	Acked       int
	FailedTyped int
	Wedged      int
	FalseAcks   int

	// ChannelLost / Restarted / Rejected break FailedTyped down by
	// cause.
	ChannelLost int
	Restarted   int
	Rejected    int

	// P50/P99 are ack-latency percentiles over positive resolutions
	// (simulated time).
	P50, P99 time.Duration

	// RecoveryMax is the worst observed recovery latency across faulted
	// switches: channel cut → first positive ack after reconnection
	// (zero when the profile has no reconnect phase).
	RecoveryMax time.Duration

	PerTechnique map[core.Technique]TechFaultStats

	// Injected is the message-fault tally.
	Injected faults.Stats

	// Trace is a canonical per-update resolution transcript. Two runs
	// with the same opts (and seed) produce byte-identical traces —
	// the deterministic-replay acceptance test.
	Trace string
}

// String summarizes the run in one line.
func (r *FaultChurnResult) String() string {
	return fmt.Sprintf("faults{%s seed=%d}: %d/%d acked, %d failed-typed, %d wedged, %d false-acks, recovery %v",
		r.Profile, r.Seed, r.Acked, r.Updates, r.FailedTyped, r.Wedged, r.FalseAcks, r.RecoveryMax)
}

// faultTargets picks the switches that suffer switch-level faults:
// round-robin across edge, aggregation, and core layers so every
// strategy cohort of the mixed deployment is hit. A layer that runs out
// is skipped (not treated as the end), so n targets are returned as
// long as the fabric has that many switches.
func faultTargets(ft *netsim.FatTree, n int) []string {
	layers := [][]string{ft.Edge, ft.Agg, ft.Core}
	var out []string
	for idx := 0; len(out) < n; idx++ {
		took := false
		for _, layer := range layers {
			if idx < len(layer) {
				out = append(out, layer[idx])
				took = true
				if len(out) == n {
					break
				}
			}
		}
		if !took {
			break // every layer exhausted: the whole fabric is faulted
		}
	}
	sort.Strings(out)
	return out
}

// FaultChurn drives the fat-tree churn through the fault layer under one
// profile and scores every strategy's reliability: completeness (no
// wedged futures), honesty (false-ack rate against data-plane ground
// truth), and recovery (reconnect latency).
func FaultChurn(opts FaultChurnOpts) (*FaultChurnResult, error) {
	opts = opts.Defaults()
	ft, err := netsim.NewFatTree(opts.K)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	n := netsim.New(s)
	inj := faults.NewInjector(opts.Seed)
	plan := opts.Profile.messagePlan()

	names := ft.Switches()
	switches := make(map[string]*switchsim.Switch)
	for i, name := range names {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, opts.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	if opts.Profile == FaultLoss {
		// Lossy data plane: 2% of frames (including probe packets) die
		// on the wire, so probing strategies must re-inject.
		n.SetTransmitFilter(func(string, uint16, *netsim.Frame) bool {
			return !lossRoll(inj)
		})
	}

	cfg := core.Config{
		Clock:       s,
		Technique:   opts.Technique,
		RUMAware:    true,
		TimeoutRate: 1000,
	}
	if !opts.Uniform {
		cfg.PerSwitch = make(map[string]core.Technique)
		for _, sw := range ft.Edge {
			cfg.PerSwitch[sw] = core.TechSequential
		}
		for _, sw := range ft.Agg {
			cfg.PerSwitch[sw] = core.TechGeneral
		}
	}
	r, err := core.New(cfg, core.NewTopology(links))
	if err != nil {
		return nil, err
	}

	// attach wires one switch through a fault-wrapped control channel;
	// it is also the reconnection path.
	ctrlConns := make(map[string]transport.Conn)
	attach := func(name string) error {
		sw := switches[name]
		ctrlTop, ctrlBottom := transport.Pipe(s, opts.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, opts.CtrlLatency)
		sw.AttachConn(swSide)
		wrapped := faults.Wrap(rumSide, s, inj, plan)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, wrapped); err != nil {
			return fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
		return nil
	}
	for _, name := range names {
		if err := attach(name); err != nil {
			return nil, err
		}
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := r.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	techniqueOf := func(sw string) core.Technique {
		if t, ok := cfg.PerSwitch[sw]; ok {
			return t
		}
		return opts.Technique
	}

	// The workload: wave 1 hits every switch; wave 2 hits recovered
	// switches after reconnection (the recovery-latency probe).
	type issued struct {
		sw     string
		xid    uint32
		handle *core.UpdateHandle
	}
	var all []issued
	sendFailed := make(map[int]bool)
	flowID := 0
	issueWave := func(targets []string, startIn time.Duration) {
		for _, name := range targets {
			ports := ft.InterPorts(name)
			for u := 0; u < opts.UpdatesPerSwitch; u++ {
				sw, port := name, ports[u%len(ports)]
				f := controller.FlowSpec{ID: flowID}
				f.Src, f.Dst = controller.FlowAddr(flowID)
				flowID++
				fm := controller.AddRule(f, 100, port)
				fm.SetXID(client.NewXID())
				idx := len(all)
				all = append(all, issued{sw: sw, xid: fm.GetXID(), handle: r.Watch(sw, fm.GetXID())})
				delay := startIn + time.Duration(u/opts.Burst)*opts.Stagger
				s.After(delay, func() {
					if err := client.Send(sw, fm); err != nil {
						// The controller-side channel is down: the
						// controller knows instantly; the future is
						// abandoned, not wedged.
						sendFailed[idx] = true
						all[idx].handle.Cancel()
					}
				})
			}
		}
	}

	churnStart := s.Now()
	issueWave(names, 0)

	// Switch-level fault schedule.
	var targets []string
	cutAt := make(map[string]time.Duration)
	if opts.Profile.switchFaults() {
		targets = faultTargets(ft, opts.FaultSwitches)
		for _, name := range targets {
			name := name
			switch opts.Profile {
			case FaultStall:
				s.After(opts.FaultAt, func() {
					switches[name].MutateProfile(func(p *switchsim.Profile) {
						hp := switchsim.ProfileHP5406zl()
						p.BarrierMode = hp.BarrierMode
						p.ModBase = hp.ModBase
						p.ModPerEntry = hp.ModPerEntry
						p.SyncPeriod = hp.SyncPeriod
						p.SyncStall = hp.SyncStall
					})
				})
			case FaultDisconnect, FaultRestart:
				cause := core.ErrChannelLost
				if opts.Profile == FaultRestart {
					cause = core.ErrSwitchRestarted
				}
				s.After(opts.FaultAt, func() {
					cutAt[name] = s.Now()
					if fc, ok := r.SwitchConn(name).(*faults.Conn); ok {
						fc.Kill()
					}
					if opts.Profile == FaultRestart {
						switches[name].Crash(true)
					}
					r.DetachSwitchCause(name, cause)
					// The controller side learns the session died.
					_ = ctrlConns[name].Close()
					// Backoff-governed re-dial: attempts start one backoff
					// delay after the cut and fail until the outage ends, so
					// a down switch is probed at widening intervals instead
					// of a fixed-delay hot reattach. Success installs the new
					// conn (SetConn inside Reconnect), re-bootstraps the
					// session, and issues wave 2 — fresh updates measuring
					// recovery end to end.
					recoverAt := s.Now() + opts.RecoverAfter
					client.Reconnect(name, retry.New(reconnectPolicy, reconnectSeed(opts.Seed, name)), 0,
						func() (transport.Conn, error) {
							if s.Now() < recoverAt {
								return nil, errSwitchDown
							}
							if err := attach(name); err != nil {
								panic(err) // deterministic harness bug, not a runtime condition
							}
							return ctrlConns[name], nil
						},
						func(transport.Conn) {
							if err := r.BootstrapSwitch(name); err != nil {
								panic(err)
							}
							issueWave([]string{name}, 2*time.Millisecond)
						})
				})
			}
		}
	}

	// Drive to completion. Reconnect profiles first run past the
	// recovery point unconditionally: wave 1 may fully resolve before
	// the outage ends, and wave 2's futures only exist once the
	// backoff-governed re-dial has succeeded — at worst one jittered
	// cap (1.5×Cap) after the outage ends.
	if opts.Profile == FaultDisconnect || opts.Profile == FaultRestart {
		s.RunFor(opts.FaultAt + opts.RecoverAfter + 2*reconnectPolicy.Cap + 5*time.Millisecond)
	}
	deadline := churnStart + opts.Deadline
	resolvedAll := func() bool {
		for i, it := range all {
			if sendFailed[i] {
				continue
			}
			if _, ok := it.handle.Result(); !ok {
				return false
			}
		}
		return true
	}
	for !resolvedAll() && s.Now() < deadline {
		s.RunFor(10 * time.Millisecond)
	}

	// Ground truth: every xid that ever became visible in a data plane.
	activated := make(map[string]map[uint32]bool, len(names))
	for _, name := range names {
		m := make(map[uint32]bool)
		for _, a := range switches[name].Activations() {
			m[a.XID] = true
		}
		activated[name] = m
	}

	res := &FaultChurnResult{
		Profile:      opts.Profile,
		Seed:         opts.Seed,
		Switches:     len(names),
		Updates:      len(all),
		PerTechnique: make(map[core.Technique]TechFaultStats),
	}
	var trace strings.Builder
	var lats []time.Duration
	for i, it := range all {
		tech := techniqueOf(it.sw)
		st := res.PerTechnique[tech]
		st.Updates++
		ar, ok := it.handle.Result()
		switch {
		case sendFailed[i]:
			res.SendFailed++
			st.SendFailed++
			fmt.Fprintf(&trace, "%d %s %d send-failed\n", i, it.sw, it.xid)
		case !ok:
			res.Wedged++
			st.Wedged++
			fmt.Fprintf(&trace, "%d %s %d WEDGED\n", i, it.sw, it.xid)
		case ar.Outcome == core.OutcomeFailed:
			res.FailedTyped++
			st.FailedTyped++
			switch {
			case errors.Is(ar.Err, core.ErrSwitchRestarted):
				res.Restarted++
			case errors.Is(ar.Err, core.ErrChannelLost):
				res.ChannelLost++
			case errors.Is(ar.Err, core.ErrSwitchRejected):
				res.Rejected++
			}
			fmt.Fprintf(&trace, "%d %s %d failed %v @%d\n", i, it.sw, it.xid, ar.Err, ar.ConfirmedAt.Nanoseconds())
		default:
			res.Acked++
			st.Acked++
			lats = append(lats, ar.Latency)
			falseAck := (ar.Outcome == core.OutcomeInstalled || ar.Outcome == core.OutcomeRemoved) &&
				!activated[it.sw][it.xid]
			if falseAck {
				res.FalseAcks++
				st.FalseAcks++
			}
			fmt.Fprintf(&trace, "%d %s %d %s false=%v @%d\n",
				i, it.sw, it.xid, ar.Outcome, falseAck, ar.ConfirmedAt.Nanoseconds())
		}
		res.PerTechnique[tech] = st
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i99 := len(lats) * 99 / 100
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		res.P50, res.P99 = lats[len(lats)*50/100], lats[i99]
	}
	for _, name := range targets {
		cut, wasCut := cutAt[name]
		if !wasCut {
			continue
		}
		var first time.Duration
		for _, it := range all {
			if it.sw != name {
				continue
			}
			if ar, ok := it.handle.Result(); ok && ar.Outcome != core.OutcomeFailed && ar.ConfirmedAt > cut {
				if first == 0 || ar.ConfirmedAt < first {
					first = ar.ConfirmedAt
				}
			}
		}
		if first > 0 && first-cut > res.RecoveryMax {
			res.RecoveryMax = first - cut
		}
	}
	res.Injected = inj.Stats()
	fmt.Fprintf(&trace, "injected: %s\n", res.Injected)
	res.Trace = trace.String()
	return res, nil
}

// lossRoll is the data-plane frame-loss coin (2%), drawn from the shared
// deterministic injector.
func lossRoll(in *faults.Injector) bool { return in.Roll(0.02) }
