package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"rum/internal/cluster"
	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/faults"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/retry"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// ClusterChurnOpts parameterizes the sharded-control-plane scenario: a
// k-ary fat-tree partitioned across N RUM proxy members (pod-aware shard
// map), mixed per-layer strategies, sustained churn, one network-wide
// fanned-out update, and one proxy killed mid-run with its switches
// handed off to the survivors. It extends the fault suite: the optional
// message-fault profile rides the same deterministic injector, and two
// runs with equal opts produce byte-identical traces.
type ClusterChurnOpts struct {
	// K is the fat-tree arity (default 16 → 320 switches).
	K int
	// Shards is the proxy member count (default 4).
	Shards int
	// Profile layers message-level faults over the proxy kill (default
	// FaultNone); Seed feeds the deterministic injector (default 1).
	Profile FaultProfile
	Seed    int64
	// UpdatesPerSwitch is the wave-1 count per switch and the wave-2
	// count per orphaned switch after adoption (default 6).
	UpdatesPerSwitch int
	// Burst and Stagger shape the churn (defaults 5, 500µs).
	Burst   int
	Stagger time.Duration
	// Technique is the core-layer strategy (default timeout); edge
	// switches run sequential and aggregation switches general probing,
	// as in the mixed fat-tree churn.
	Technique core.Technique
	// KillShard is the member killed mid-run (default 0); KillAt is when
	// (default 1ms — mid wave 1).
	KillShard int
	KillAt    time.Duration
	// FanoutLead is how long before the kill the network-wide composite
	// update is fanned out, so the crash catches part of it in flight
	// and the composite must name the losing shard (default 200µs).
	FanoutLead time.Duration
	// RecoverAfter is the outage before orphans are re-attached to their
	// adoptive members (default 50ms).
	RecoverAfter time.Duration
	// Rescue enables intent replication and crash rescue: members stream
	// pending-update intents to their shard-map successor, and adoption
	// resolves the dead member's futures truthfully against the re-read
	// FIB (confirm if installed, re-issue if missing) instead of failing
	// them. The default (off) preserves the fail-and-repair contract.
	Rescue bool
	// CtrlLatency and LinkLatency mirror EnvConfig (defaults 100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated run (default 30s).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o ClusterChurnOpts) Defaults() ClusterChurnOpts {
	if o.K == 0 {
		o.K = 16
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Profile == "" {
		o.Profile = FaultNone
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.UpdatesPerSwitch == 0 {
		o.UpdatesPerSwitch = 6
	}
	if o.Burst == 0 {
		o.Burst = 5
	}
	if o.Stagger == 0 {
		o.Stagger = 500 * time.Microsecond
	}
	if o.Technique == "" {
		o.Technique = core.TechTimeout
	}
	if o.KillAt == 0 {
		o.KillAt = time.Millisecond
	}
	if o.FanoutLead == 0 {
		o.FanoutLead = 200 * time.Microsecond
	}
	if o.RecoverAfter == 0 {
		o.RecoverAfter = 50 * time.Millisecond
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	return o
}

// ClusterChurnResult reports one sharded-churn run.
type ClusterChurnResult struct {
	K        int
	Shards   int
	Switches int
	// Updates counts every tracked update: wave 1, the fanned-out
	// composite wave, repairs re-issued after adoption, and wave 2.
	Updates    int
	SendFailed int

	Acked       int
	FailedTyped int
	Wedged      int
	FalseAcks   int

	// ProxyLost counts typed failures whose ShardError names the killed
	// shard — the crash's blast radius, every one of them repairable.
	ProxyLost int

	// Orphans is how many switches the killed member held; every one is
	// adopted by a surviving shard.
	Orphans int
	// RepairedInPlace counts failed updates whose rule was already in
	// the adopted switch's re-read FIB (recognized, not re-sent);
	// Reissued counts those actually re-sent. DoubleInstalls counts
	// flows that activated more than once in a data plane — the repair
	// path must keep it at zero.
	RepairedInPlace int
	Reissued        int
	DoubleInstalls  int

	// The rescue scorecard (all zero unless opts.Rescue): Rescued futures
	// were confirmed against the adopted switch's re-read FIB,
	// RescueReissued were re-injected under their original xid,
	// RescueNoIntent died before any replica saw them (the honest typed-
	// failure class), and RescueFailed counts journaled futures failed
	// despite a reachable switch — the truthful-resolution gate, which
	// must stay zero.
	Rescued        int
	RescueReissued int
	RescueNoIntent int
	RescueFailed   int

	// CompositeConfirmed / CompositeFailed split the fanned-out wave;
	// CompositeLosingShard is the shard its aggregated error names
	// (-1 when the whole wave confirmed).
	CompositeConfirmed   int
	CompositeFailed      int
	CompositeLosingShard int

	// HandoffMax is the worst switch-level recovery latency: proxy kill
	// → first positive ack through the adoptive member.
	HandoffMax time.Duration

	// P50/P99 are ack-latency percentiles over positive resolutions.
	P50, P99 time.Duration

	PerTechnique map[core.Technique]TechFaultStats

	Injected faults.Stats

	// Trace is the canonical per-update transcript; equal opts (and
	// seed) reproduce it byte for byte.
	Trace string
}

// String summarizes the run in one line.
func (r *ClusterChurnResult) String() string {
	return fmt.Sprintf("cluster{k=%d shards=%d}: %d/%d acked, %d proxy-lost, %d wedged, %d false-acks, %d reissued, %d double-installs, handoff %v",
		r.K, r.Shards, r.Acked, r.Updates, r.ProxyLost, r.Wedged, r.FalseAcks, r.Reissued, r.DoubleInstalls, r.HandoffMax)
}

// ClusterChurn partitions a fat-tree across a RUM cluster, drives
// mixed-strategy churn plus one composite fanned-out wave through it,
// kills one member mid-run, and scores the handoff: completeness (zero
// wedged futures), honesty (false acks against data-plane ground truth),
// repair hygiene (no double installs), and recovery latency.
func ClusterChurn(opts ClusterChurnOpts) (*ClusterChurnResult, error) {
	opts = opts.Defaults()
	ft, err := netsim.NewFatTree(opts.K)
	if err != nil {
		return nil, err
	}
	if opts.KillShard < 0 || opts.KillShard >= opts.Shards {
		return nil, fmt.Errorf("experiments: kill shard %d out of range [0,%d)", opts.KillShard, opts.Shards)
	}

	s := sim.New()
	n := netsim.New(s)
	inj := faults.NewInjector(opts.Seed)
	plan := opts.Profile.messagePlan()

	names := ft.Switches()
	switches := make(map[string]*switchsim.Switch)
	for i, name := range names {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, opts.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	if opts.Profile == FaultLoss {
		n.SetTransmitFilter(func(string, uint16, *netsim.Frame) bool {
			return !lossRoll(inj)
		})
	}

	smap, err := cluster.NewShardMap(opts.Shards)
	if err != nil {
		return nil, err
	}
	cluster.AssignFatTree(smap, ft)
	cfg := core.Config{
		Clock:       s,
		Technique:   opts.Technique,
		RUMAware:    true,
		TimeoutRate: 1000,
		PerSwitch:   make(map[string]core.Technique),
	}
	for _, sw := range ft.Edge {
		cfg.PerSwitch[sw] = core.TechSequential
	}
	for _, sw := range ft.Agg {
		cfg.PerSwitch[sw] = core.TechGeneral
	}
	ccfg := cluster.Config{Map: smap, Core: cfg, Topology: core.NewTopology(links)}
	if opts.Rescue {
		ccfg.ReadFIB = func(sw string) []hsa.Rule { return switches[sw].CtrlTable().Rules() }
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}

	// attach wires one switch through a fault-wrapped control channel to
	// its current live owner; it is also the adoption path after the kill.
	ctrlConns := make(map[string]transport.Conn)
	attach := func(name string) error {
		sw := switches[name]
		ctrlTop, ctrlBottom := transport.Pipe(s, opts.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, opts.CtrlLatency)
		sw.AttachConn(swSide)
		wrapped := faults.Wrap(rumSide, s, inj, plan)
		if _, _, err := c.AttachSwitch(name, sw.DPID(), ctrlBottom, wrapped); err != nil {
			return fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
		return nil
	}
	for _, name := range names {
		if err := attach(name); err != nil {
			return nil, err
		}
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := c.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	techniqueOf := func(sw string) core.Technique {
		if t, ok := cfg.PerSwitch[sw]; ok {
			return t
		}
		return opts.Technique
	}

	// Every tracked update: wave 1, repairs, wave 2. The fanned-out
	// composite wave is tracked separately through its CompositeHandle.
	type issued struct {
		sw     string
		flow   int
		xid    uint32
		handle *core.UpdateHandle
	}
	var all []issued
	sendFailed := make(map[int]bool)
	flowID := 0
	flowSpec := func() (controller.FlowSpec, int) {
		f := controller.FlowSpec{ID: flowID}
		f.Src, f.Dst = controller.FlowAddr(flowID)
		flowID++
		return f, f.ID
	}
	issueWave := func(targets []string, startIn time.Duration, perSwitch int) {
		for _, name := range targets {
			ports := ft.InterPorts(name)
			for u := 0; u < perSwitch; u++ {
				sw, port := name, ports[u%len(ports)]
				f, id := flowSpec()
				fm := controller.AddRule(f, 100, port)
				fm.SetXID(client.NewXID())
				idx := len(all)
				all = append(all, issued{sw: sw, flow: id, xid: fm.GetXID(), handle: c.Watch(sw, fm.GetXID())})
				delay := startIn + time.Duration(u/opts.Burst)*opts.Stagger
				s.After(delay, func() {
					if err := client.Send(sw, fm); err != nil {
						sendFailed[idx] = true
						all[idx].handle.Cancel()
					}
				})
			}
		}
	}

	churnStart := s.Now()
	issueWave(names, 0, opts.UpdatesPerSwitch)

	// The network-wide composite wave: one rule per switch, fanned out
	// across every member shortly before the kill so the crash catches
	// part of it in flight.
	fanFlows := make(map[string]int, len(names)) // switch → flow id
	var fanHandle *cluster.CompositeHandle
	s.After(opts.KillAt-opts.FanoutLead, func() {
		ups := make([]cluster.Update, 0, len(names))
		for _, name := range names {
			ports := ft.InterPorts(name)
			f, id := flowSpec()
			fanFlows[name] = id
			fm := controller.AddRule(f, 100, ports[0])
			fm.SetXID(client.NewXID())
			ups = append(ups, cluster.Update{Switch: name, FM: fm})
		}
		fanHandle = c.Fanout(ups, func(sw string, fm *of.FlowMod) error { return client.Send(sw, fm) })
	})

	res := &ClusterChurnResult{
		K: opts.K, Shards: opts.Shards, Switches: len(names),
		CompositeLosingShard: -1,
		PerTechnique:         make(map[core.Technique]TechFaultStats),
	}

	// Adoption runs once the LAST orphan's re-dial has succeeded: probing
	// strategies bootstrap against pod neighbors, and a pod-aware shard
	// map makes the orphans each other's probe neighbors — so every conn
	// must be attached before any session is rebuilt. Then the repair
	// pass runs against the adopted switches' authoritative FIBs — failed
	// rules already present are recognized, missing ones re-issued — and
	// wave 2 measures recovery end to end.
	var orphans []string
	adoptAll := func() {
		for _, name := range orphans {
			if err := c.BootstrapSwitch(name); err != nil {
				panic(err) // deterministic harness bug, not a runtime condition
			}
		}
		present := make(map[string]map[of.Match]bool, len(orphans))
		for _, name := range orphans {
			m := make(map[of.Match]bool)
			for _, r := range switches[name].CtrlTable().Rules() {
				m[r.Match] = true
			}
			present[name] = m
		}
		repair := func(sw string, flow int) {
			f := controller.FlowSpec{ID: flow}
			f.Src, f.Dst = controller.FlowAddr(flow)
			if present[sw][controller.FlowMatch(f)] {
				res.RepairedInPlace++
				return
			}
			res.Reissued++
			fm := controller.AddRule(f, 100, ft.InterPorts(sw)[0])
			fm.SetXID(client.NewXID())
			idx := len(all)
			all = append(all, issued{sw: sw, flow: flow, xid: fm.GetXID(), handle: c.Watch(sw, fm.GetXID())})
			if err := client.Send(sw, fm); err != nil {
				sendFailed[idx] = true
				all[idx].handle.Cancel()
			}
		}
		orphaned := make(map[string]bool, len(orphans))
		for _, name := range orphans {
			orphaned[name] = true
		}
		for _, it := range all {
			if !orphaned[it.sw] {
				continue
			}
			if ar, ok := it.handle.Result(); ok && ar.Outcome == core.OutcomeFailed {
				repair(it.sw, it.flow)
			}
		}
		if fanHandle != nil && !opts.Rescue {
			for _, name := range orphans {
				// The fanned-out slot for an orphan failed with the kill;
				// repair it like any other lost update. (With rescue on the
				// slot did not fail — its future was taken from the dead
				// member and settled truthfully by the sweep above.)
				repair(name, fanFlows[name])
			}
		}
		issueWave(orphans, 2*time.Millisecond, opts.UpdatesPerSwitch)
	}

	// The proxy crash: every control channel the member holds dies, the
	// cluster detaches its switches with the typed ShardError cause, and
	// each orphan starts a backoff-governed re-dial — attempts fail until
	// the outage ends, then attach routes the switch to its adoptive
	// member. Adoption (bootstrap + repair + wave 2) fires when the last
	// re-dial lands.
	var killedAt time.Duration
	s.After(opts.KillAt, func() {
		killedAt = s.Now()
		for _, name := range c.SwitchesOf(opts.KillShard) {
			if fc, ok := c.Member(opts.KillShard).SwitchConn(name).(*faults.Conn); ok {
				fc.Kill()
			}
			_ = ctrlConns[name].Close()
		}
		orphans = c.Kill(opts.KillShard)
		recoverAt := s.Now() + opts.RecoverAfter
		reattached := 0
		for _, name := range orphans {
			name := name
			client.Reconnect(name, retry.New(reconnectPolicy, reconnectSeed(opts.Seed, name)), 0,
				func() (transport.Conn, error) {
					if s.Now() < recoverAt {
						return nil, errSwitchDown
					}
					if err := attach(name); err != nil {
						panic(err) // deterministic harness bug, not a runtime condition
					}
					return ctrlConns[name], nil
				},
				func(transport.Conn) {
					if reattached++; reattached == len(orphans) {
						adoptAll()
					}
				})
		}
	})

	// Drive past the recovery point — including the worst jittered
	// backoff step after the outage ends — then to full resolution.
	s.RunFor(opts.KillAt + opts.RecoverAfter + 2*reconnectPolicy.Cap + 5*time.Millisecond)
	deadline := churnStart + opts.Deadline
	resolvedAll := func() bool {
		for i, it := range all {
			if sendFailed[i] {
				continue
			}
			if _, ok := it.handle.Result(); !ok {
				return false
			}
		}
		if fanHandle != nil {
			if _, ok := fanHandle.Result(); !ok {
				return false
			}
		}
		return true
	}
	for !resolvedAll() && s.Now() < deadline {
		s.RunFor(10 * time.Millisecond)
		time.Sleep(50 * time.Microsecond) // let the composite aggregator drain
	}

	// Ground truth: every activation in every data plane, by xid and by
	// flow identity (for the double-install audit). Occurrence counts, not
	// presence: a rescue re-issue reuses the original xid, so a rule that
	// activated twice under one xid must still show up as a double install.
	activatedXID := make(map[string]map[uint32]int, len(names))
	for _, name := range names {
		m := make(map[uint32]int)
		for _, a := range switches[name].Activations() {
			m[a.XID]++
		}
		activatedXID[name] = m
	}

	res.Updates = len(all)
	res.Orphans = len(orphans)
	var trace strings.Builder
	var lats []time.Duration
	activationsPerFlow := make(map[string]map[int]int) // switch → flow → activated xids
	countActivation := func(sw string, flow int, xid uint32) {
		cnt := activatedXID[sw][xid]
		if cnt == 0 {
			return
		}
		m := activationsPerFlow[sw]
		if m == nil {
			m = make(map[int]int)
			activationsPerFlow[sw] = m
		}
		m[flow] += cnt
	}
	scoreFailure := func(st *TechFaultStats, err error) {
		var se *cluster.ShardError
		if errors.As(err, &se) && se.Shard == opts.KillShard {
			res.ProxyLost++
		}
		res.FailedTyped++
		st.FailedTyped++
	}
	for i, it := range all {
		tech := techniqueOf(it.sw)
		st := res.PerTechnique[tech]
		st.Updates++
		ar, ok := it.handle.Result()
		switch {
		case sendFailed[i]:
			res.SendFailed++
			st.SendFailed++
			fmt.Fprintf(&trace, "%d %s %d send-failed\n", i, it.sw, it.xid)
		case !ok:
			res.Wedged++
			st.Wedged++
			fmt.Fprintf(&trace, "%d %s %d WEDGED\n", i, it.sw, it.xid)
		case ar.Outcome == core.OutcomeFailed:
			scoreFailure(&st, ar.Err)
			fmt.Fprintf(&trace, "%d %s %d failed %v @%d\n", i, it.sw, it.xid, ar.Err, ar.ConfirmedAt.Nanoseconds())
		default:
			res.Acked++
			st.Acked++
			lats = append(lats, ar.Latency)
			falseAck := (ar.Outcome == core.OutcomeInstalled || ar.Outcome == core.OutcomeRemoved) &&
				activatedXID[it.sw][it.xid] == 0
			if falseAck {
				res.FalseAcks++
				st.FalseAcks++
			}
			fmt.Fprintf(&trace, "%d %s %d %s false=%v @%d\n",
				i, it.sw, it.xid, ar.Outcome, falseAck, ar.ConfirmedAt.Nanoseconds())
		}
		countActivation(it.sw, it.flow, it.xid)
		res.PerTechnique[tech] = st
	}
	if fanHandle != nil {
		comp, ok := fanHandle.Result()
		if !ok {
			res.Wedged++
			fmt.Fprintf(&trace, "fanout WEDGED\n")
		} else {
			res.CompositeConfirmed, res.CompositeFailed = comp.Confirmed, comp.Failed
			var se *cluster.ShardError
			if errors.As(comp.Err, &se) {
				res.CompositeLosingShard = se.Shard
			}
			res.Updates += len(comp.Results)
			for _, ar := range comp.Results {
				tech := techniqueOf(ar.Switch)
				st := res.PerTechnique[tech]
				st.Updates++
				if ar.Outcome == core.OutcomeFailed {
					scoreFailure(&st, ar.Err)
				} else {
					res.Acked++
					st.Acked++
					lats = append(lats, ar.Latency)
					falseAck := (ar.Outcome == core.OutcomeInstalled || ar.Outcome == core.OutcomeRemoved) &&
						activatedXID[ar.Switch][ar.XID] == 0
					if falseAck {
						res.FalseAcks++
						st.FalseAcks++
					}
				}
				countActivation(ar.Switch, fanFlows[ar.Switch], ar.XID)
				res.PerTechnique[tech] = st
			}
			fmt.Fprintf(&trace, "fanout confirmed=%d failed=%d losing=%d\n",
				comp.Confirmed, comp.Failed, res.CompositeLosingShard)
		}
	}
	for _, m := range activationsPerFlow {
		for _, cnt := range m {
			if cnt > 1 {
				res.DoubleInstalls += cnt - 1
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i99 := len(lats) * 99 / 100
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		res.P50, res.P99 = lats[len(lats)*50/100], lats[i99]
	}
	for _, name := range orphans {
		var first time.Duration
		for _, it := range all {
			if it.sw != name {
				continue
			}
			if ar, ok := it.handle.Result(); ok && ar.Outcome != core.OutcomeFailed && ar.ConfirmedAt > killedAt {
				if first == 0 || ar.ConfirmedAt < first {
					first = ar.ConfirmedAt
				}
			}
		}
		if first > 0 && first-killedAt > res.HandoffMax {
			res.HandoffMax = first - killedAt
		}
	}
	if opts.Rescue {
		rs := c.RescueStats()
		res.Rescued, res.RescueReissued = rs.Rescued, rs.Reissued
		res.RescueNoIntent, res.RescueFailed = rs.NoIntent, rs.Failed
		fmt.Fprintf(&trace, "rescue: rescued=%d reissued=%d nointent=%d failed=%d\n",
			rs.Rescued, rs.Reissued, rs.NoIntent, rs.Failed)
	}
	res.Injected = inj.Stats()
	fmt.Fprintf(&trace, "orphans: %s\n", strings.Join(orphans, ","))
	fmt.Fprintf(&trace, "injected: %s\n", res.Injected)
	res.Trace = trace.String()
	return res, nil
}
