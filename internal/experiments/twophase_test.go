package experiments

import (
	"testing"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/netsim"
	"rum/internal/switchsim"
)

// TestTwoPhaseUpdateEndToEnd runs a Reitblatt-style versioned update
// through RUM on the triangle: internal rules for version 2 are installed
// at s2 and s3 first (matching a VLAN tag), and each flow's ingress flip
// at s1 — which stamps the tag — waits for RUM's confirmation of both.
// Consistency here is structural: an s1-flipped packet can only match
// version-2 rules, so with truthful acks no packet is ever dropped, even
// on the buggy switch.
func TestTwoPhaseUpdateEndToEnd(t *testing.T) {
	const nFlows = 40
	env := NewTriangle(EnvConfig{
		RUM:     core.Config{Technique: core.TechGeneral},
		AckMode: controller.AckRUM,
	})
	if err := env.Warm(); err != nil {
		t.Fatal(err)
	}
	flows := Flows(nFlows)
	env.PreinstallMigrationState(flows)
	gen := env.StartTraffic(flows, 250)
	env.Sim.RunFor(100 * time.Millisecond)

	plan := controller.TwoPhaseSpec{
		Flows:     flows,
		Version:   2,
		S1ToS2:    2,
		S2ToS3:    2,
		S3ToHost:  1,
		Prio:      100,
		StripAtS3: true,
	}.Build()
	_, done := env.RunPlan(plan, 0, 30*time.Second)
	if !done {
		t.Fatal("two-phase plan did not complete")
	}
	env.Sim.RunFor(time.Second)
	gen.Stop()
	env.Sim.RunFor(50 * time.Millisecond)

	// No real-traffic packet may be lost (RUM's own probe packets hit the
	// drop-all rule while the probed rule is pending — that is the
	// mechanism, not a loss), and eventually all flows travel via s2.
	var lost []netsim.Drop
	for _, d := range env.Net.Drops() {
		if d.FlowID >= 0 {
			lost = append(lost, d)
		}
	}
	if len(lost) != 0 {
		t.Errorf("two-phase update dropped %d traffic packets; first: %+v", len(lost), lost[0])
	}
	switched := make(map[int]bool)
	for _, a := range env.H2.Arrivals() {
		if a.Via("s2") {
			switched[a.FlowID] = true
		}
	}
	if len(switched) != nFlows {
		t.Errorf("only %d/%d flows reached the versioned path", len(switched), nFlows)
	}
}

// TestTwoPhaseWithVersionTagDelivery checks the tag is stripped before
// delivery (hosts see untagged packets).
func TestTwoPhaseWithVersionTagDelivery(t *testing.T) {
	env := NewTriangle(EnvConfig{
		RUM:     core.Config{Technique: core.TechNoWait},
		AckMode: controller.AckNone,
	})
	if err := env.Warm(); err != nil {
		t.Fatal(err)
	}
	flows := Flows(3)
	env.PreinstallMigrationState(flows)
	plan := controller.TwoPhaseSpec{
		Flows: flows, Version: 7, S1ToS2: 2, S2ToS3: 2, S3ToHost: 1,
		Prio: 100, StripAtS3: true,
	}.Build()
	_, done := env.RunPlan(plan, 0, 10*time.Second)
	if !done {
		t.Fatal("plan did not complete")
	}
	env.Sim.RunFor(time.Second)

	gen := env.StartTraffic(flows, 250)
	env.Sim.RunFor(100 * time.Millisecond)
	gen.Stop()
	env.Sim.RunFor(50 * time.Millisecond)

	var sawVia2 bool
	// Whole-path check is already covered; here we only need >=1 arrival.
	if len(env.H2.Arrivals()) == 0 {
		t.Fatal("no arrivals after two-phase update")
	}
	for _, a := range env.H2.Arrivals() {
		if a.Via("s2") {
			sawVia2 = true
		}
	}
	if !sawVia2 {
		t.Error("traffic did not follow the versioned path")
	}
}

// TestMigrationWindowSensitivity: limiting the unconfirmed window slows
// the update but never breaks consistency.
func TestMigrationWindowSensitivity(t *testing.T) {
	wide := RunMigration(MigrationOpts{Technique: core.TechSequential, NumFlows: 40, Window: 0})
	narrow := RunMigration(MigrationOpts{Technique: core.TechSequential, NumFlows: 40, Window: 4})
	if wide.TotalLost != 0 || narrow.TotalLost != 0 {
		t.Errorf("losses: wide=%d narrow=%d, want 0/0", wide.TotalLost, narrow.TotalLost)
	}
	if narrow.Duration < wide.Duration {
		t.Errorf("narrow window (%v) faster than unlimited (%v)", narrow.Duration, wide.Duration)
	}
}

// TestMigrationOnCorrectSwitch: with a spec-compliant switch, even the
// plain barrier baseline is safe (the paper: "one of the tested switches
// does implement barriers correctly").
func TestMigrationOnCorrectSwitch(t *testing.T) {
	res := RunMigration(MigrationOpts{
		Technique: core.TechBarriers,
		S2:        correctProfile(),
		NumFlows:  40,
	})
	if res.TotalLost != 0 {
		t.Errorf("correct-barrier switch lost %d packets under the barrier baseline", res.TotalLost)
	}
}

// TestSequentialProbeRuleCountedOnSwitch: the probing rule updates are
// visible in the switch's control table as exactly two infra rules (catch
// + probe), not a growing pile.
func TestSequentialProbeRuleFootprint(t *testing.T) {
	env := NewTriangle(EnvConfig{
		RUM:     core.Config{Technique: core.TechSequential, ProbeEvery: 5},
		AckMode: controller.AckRUM,
	})
	if err := env.Warm(); err != nil {
		t.Fatal(err)
	}
	flows := Flows(40)
	plan := &controller.Plan{}
	for _, f := range flows {
		plan.Ops = append(plan.Ops, controller.Op{Switch: "s2", FM: controller.AddRule(f, 100, 2)})
	}
	if _, done := env.RunPlan(plan, 0, 30*time.Second); !done {
		t.Fatal("plan did not complete")
	}
	env.Sim.RunFor(time.Second)
	// 40 flow rules + catch + probe rule = 42. The versioned probe rule
	// replaces itself on every epoch instead of accumulating (§3.2.1's
	// optimization).
	if got := env.Switches["s2"].CtrlTable().Len(); got != 42 {
		t.Errorf("s2 control table has %d rules, want 42 (probe rule must self-replace)", got)
	}
}

// TestDropHandlerSeesMigrationDrops wires the network drop callback and
// cross-checks it against the per-flow loss accounting.
func TestDropHandlerSeesMigrationDrops(t *testing.T) {
	env := NewTriangle(EnvConfig{
		RUM:     core.Config{Technique: core.TechBarriers},
		AckMode: controller.AckRUM,
	})
	var drops int
	env.Net.SetDropHandler(func(fr *netsim.Frame, where, reason string) {
		if fr.FlowID >= 0 { // ignore probe packets
			drops++
		}
	})
	if err := env.Warm(); err != nil {
		t.Fatal(err)
	}
	flows := Flows(30)
	env.PreinstallMigrationState(flows)
	gen := env.StartTraffic(flows, 250)
	env.Sim.RunFor(100 * time.Millisecond)
	pl := env.NewPlanner(0)
	if _, done := env.RunPlanned(pl, MigrationChanges(flows, 100), 30*time.Second); !done {
		t.Fatal("plan did not complete")
	}
	env.Sim.RunFor(time.Second)
	gen.Stop()
	env.Sim.RunFor(50 * time.Millisecond)
	if drops == 0 {
		t.Error("barrier baseline produced no data-plane drops")
	}
}

func correctProfile() switchsim.Profile { return switchsim.ProfileCorrect() }
