package experiments

import (
	"testing"

	"rum/internal/core"
)

// TestFaultChurnCleanBaseline: with the wrapper in place but no faults
// triggered, the churn behaves exactly like the healthy workload — every
// future acks positively, nothing fails, nothing lies.
func TestFaultChurnCleanBaseline(t *testing.T) {
	res, err := FaultChurn(FaultChurnOpts{Profile: FaultNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wedged != 0 || res.FailedTyped != 0 || res.SendFailed != 0 {
		t.Fatalf("clean run not clean: %s", res)
	}
	if res.Acked != res.Updates {
		t.Fatalf("clean run acked %d/%d", res.Acked, res.Updates)
	}
	if res.FalseAcks != 0 {
		t.Fatalf("clean run produced %d false acks", res.FalseAcks)
	}
}

// TestFaultSuiteResolvesEveryFuture is the acceptance gate: under every
// fault profile, every strategy resolves 100% of its futures — a
// positive ack or a typed error, never a wedge.
func TestFaultSuiteResolvesEveryFuture(t *testing.T) {
	for _, profile := range FaultProfiles() {
		profile := profile
		t.Run(string(profile), func(t *testing.T) {
			res, err := FaultChurn(FaultChurnOpts{Profile: profile, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res)
			if res.Wedged != 0 {
				for tech, st := range res.PerTechnique {
					if st.Wedged > 0 {
						t.Errorf("%s: technique %s wedged %d/%d futures", profile, tech, st.Wedged, st.Updates)
					}
				}
				t.Fatalf("%s: %d futures never resolved", profile, res.Wedged)
			}
			if res.Acked+res.FailedTyped+res.SendFailed != res.Updates {
				t.Fatalf("%s: accounting broken: %s", profile, res)
			}
			for tech, st := range res.PerTechnique {
				if st.Acked+st.FailedTyped+st.SendFailed+st.Wedged != st.Updates {
					t.Fatalf("%s: cohort %s does not sum: %+v", profile, tech, st)
				}
			}
		})
	}
}

// TestFaultLossExposesFalseAcks reproduces the paper's core claim under
// message loss: control-plane techniques acknowledge updates the switch
// never applied, while the general probing technique — whose positive
// acks require observing the rule in the data plane — never lies.
func TestFaultLossExposesFalseAcks(t *testing.T) {
	res, err := FaultChurn(FaultChurnOpts{Profile: FaultLoss, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Wedged != 0 {
		t.Fatalf("loss run wedged %d futures", res.Wedged)
	}
	if res.FalseAcks == 0 {
		t.Fatal("5% message loss produced zero false acks — the control-plane techniques should be lying")
	}
	if st := res.PerTechnique[core.TechGeneral]; st.FalseAcks != 0 {
		t.Fatalf("general probing produced %d false acks; its positive acks must be data-plane-proven", st.FalseAcks)
	}
}

// TestFaultDisconnectRecovery: cut channels resolve their in-flight
// futures with ErrChannelLost, and the reconnected switches confirm new
// updates within a bounded recovery window.
func TestFaultDisconnectRecovery(t *testing.T) {
	res, err := FaultChurn(FaultChurnOpts{Profile: FaultDisconnect, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Wedged != 0 {
		t.Fatalf("disconnect run wedged %d futures", res.Wedged)
	}
	if res.ChannelLost == 0 {
		t.Fatal("no future resolved with ErrChannelLost despite cut channels")
	}
	if res.Restarted != 0 {
		t.Fatalf("disconnect (no crash) mis-reported %d ErrSwitchRestarted failures", res.Restarted)
	}
	if res.RecoveryMax == 0 {
		t.Fatal("no post-reconnect ack observed: recovery latency unmeasured")
	}
	opts := FaultChurnOpts{}.Defaults()
	if bound := opts.RecoverAfter + opts.Deadline/10; res.RecoveryMax > bound {
		t.Fatalf("recovery took %v (> %v): reconnected switches confirm too slowly", res.RecoveryMax, bound)
	}
}

// TestFaultRestartTypedErrors: a crash with FIB wipe fails in-flight
// futures with ErrSwitchRestarted, distinguishable from a mere channel
// loss.
func TestFaultRestartTypedErrors(t *testing.T) {
	res, err := FaultChurn(FaultChurnOpts{Profile: FaultRestart, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Wedged != 0 {
		t.Fatalf("restart run wedged %d futures", res.Wedged)
	}
	if res.Restarted == 0 {
		t.Fatal("no future resolved with ErrSwitchRestarted despite switch crashes")
	}
	if res.RecoveryMax == 0 {
		t.Fatal("no post-restart ack observed")
	}
}

// TestFaultReplayDeterministic is the seed-replay acceptance test: two
// runs of the same fault schedule produce byte-identical ack traces, and
// a different seed produces a different schedule.
func TestFaultReplayDeterministic(t *testing.T) {
	run := func(seed int64) *FaultChurnResult {
		res, err := FaultChurn(FaultChurnOpts{Profile: FaultLoss, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.Trace != b.Trace {
		t.Fatalf("same seed diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a.Trace, b.Trace)
	}
	if a.Injected != b.Injected {
		t.Fatalf("same seed, different fault tallies: %s vs %s", a.Injected, b.Injected)
	}
	if other := run(43); other.Trace == a.Trace {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestFaultReconnectZeroPoolLeaks asserts the recovery path's refcount
// hygiene: after a crash-restart churn fully resolves, the live pooled
// Update count returns exactly to its pre-run value — no ring slot,
// wire-queue entry, strategy table, or probe list leaked a reference,
// and nothing was double-released.
func TestFaultReconnectZeroPoolLeaks(t *testing.T) {
	before := core.LiveUpdates()
	res, err := FaultChurn(FaultChurnOpts{Profile: FaultRestart, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wedged != 0 {
		t.Fatalf("run wedged %d futures; leak accounting needs full resolution", res.Wedged)
	}
	if after := core.LiveUpdates(); after != before {
		t.Fatalf("pooled-update refcount leak across reconnect: %d live before, %d after", before, after)
	}
}
