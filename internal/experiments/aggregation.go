package experiments

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// AggregationOpts parameterizes the incremental-aggregation workload: a
// k-ary fat-tree where every switch receives aligned blocks of /32
// destination rules sharing a per-block output port — the compressible
// shape FIB aggregation exists for — followed by a seeded churn phase of
// point deletes and re-adds that forces the aggregate table to split and
// re-merge covers while acknowledgments are in flight.
type AggregationOpts struct {
	// K is the fat-tree arity (even, default 8 → 80 switches).
	K int
	// BlocksPerSwitch is the number of aligned /32 blocks each switch
	// installs (default 4).
	BlocksPerSwitch int
	// BlockSize is the number of /32 rules per block, a power of two so
	// blocks merge to a single cover (default 8 → a /29 per block).
	BlockSize int
	// Deletes is how many random installed /32s each switch deletes in
	// the churn phase; half of them are re-added afterwards (default 4).
	Deletes int
	// Seed drives the churn phase's rule selection. Identical seeds give
	// byte-identical traces.
	Seed int64
	// Baseline disables aggregation (Config.Aggregate=false): the
	// comparison run where every logical rule is a physical rule.
	Baseline bool
	// Stagger is the gap between a switch's consecutive install bursts
	// (default 500µs; a block is one burst).
	Stagger time.Duration
	// CtrlLatency and LinkLatency mirror EnvConfig (defaults 100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated time the workload may take (default
	// 60s).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o AggregationOpts) Defaults() AggregationOpts {
	if o.K == 0 {
		o.K = 8
	}
	if o.BlocksPerSwitch == 0 {
		o.BlocksPerSwitch = 4
	}
	if o.BlockSize == 0 {
		o.BlockSize = 8
	}
	if o.Deletes == 0 {
		o.Deletes = 4
	}
	if o.Stagger == 0 {
		o.Stagger = 500 * time.Microsecond
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 60 * time.Second
	}
	return o
}

// AggregationResult reports the workload's correctness checks and
// compression metrics.
type AggregationResult struct {
	K        int
	Switches int
	Updates  int // logical updates issued (adds + deletes + re-adds)

	Completed int // logical updates acknowledged positively
	Failed    int
	Unacked   int

	// LogicalRules/PhysicalRules and Ratio sample the aggregate tables at
	// the install-phase peak, before churn shrinks them.
	LogicalRules  int
	PhysicalRules int
	Ratio         float64

	// FalseInstallAcks counts logical adds acknowledged installed with no
	// live covering physical activation in the switch's data-plane log at
	// ack time; FalseRemoveAcks counts logical deletes acknowledged
	// removed while a covering physical rule was still live. Both must be
	// zero.
	FalseInstallAcks int
	FalseRemoveAcks  int

	// HSACounterexamples sums the per-batch verifier failures across all
	// aggregate tables plus a full re-verification after the run. Must be
	// zero.
	HSACounterexamples uint64

	// P50/P99 are ack-latency percentiles over completed updates.
	P50, P99 time.Duration

	// Trace is a deterministic, seed-replayable log of every logical
	// update's resolution: identical opts (including Seed) reproduce it
	// byte for byte.
	Trace string
}

// aggLogical is one tracked logical update and the metadata its
// ground-truth check needs.
type aggLogical struct {
	sw     string
	xid    uint32
	match  of.Match
	prio   uint16
	delete bool
	h      *core.UpdateHandle
}

// aggDstMatch is the workload's rule shape: IPv4 destination /32, source
// wildcarded — the form the aggregate table compresses.
func aggDstMatch(addr [4]byte) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWDst(netip.AddrFrom4(addr))
	return m
}

// Aggregation runs the workload and audits every acknowledgment against
// the emulated switches' data-plane activation logs.
func Aggregation(opts AggregationOpts) (*AggregationResult, error) {
	opts = opts.Defaults()
	ft, err := netsim.NewFatTree(opts.K)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	n := netsim.New(s)
	switches := make(map[string]*switchsim.Switch)
	for i, name := range ft.Switches() {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, opts.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	cfg := core.Config{
		Clock:     s,
		RUMAware:  true,
		Aggregate: !opts.Baseline,
	}
	r, err := core.New(cfg, core.NewTopology(links))
	if err != nil {
		return nil, err
	}
	ctrlConns := make(map[string]transport.Conn)
	for name, sw := range switches {
		ctrlTop, ctrlBottom := transport.Pipe(s, opts.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, opts.CtrlLatency)
		sw.AttachConn(swSide)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			return nil, fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := r.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	names := ft.Switches()
	res := &AggregationResult{K: opts.K, Switches: len(names)}
	var tracked []*aggLogical

	send := func(sw string, fm *of.FlowMod, del bool) {
		fm.SetXID(client.NewXID())
		l := &aggLogical{sw: sw, xid: fm.GetXID(), match: fm.Match,
			prio: fm.Priority, delete: del, h: r.Watch(sw, fm.GetXID())}
		tracked = append(tracked, l)
		_ = client.Send(sw, fm)
	}
	waitResolved := func() {
		// Let the phase's staggered sends fire before polling: the
		// tracked set is empty until the After callbacks run.
		s.RunFor(16*opts.Stagger + 10*time.Millisecond)
		deadline := s.Now() + opts.Deadline
		pending := func() int {
			p := 0
			for _, l := range tracked {
				if _, ok := l.h.Result(); !ok {
					p++
				}
			}
			return p
		}
		for pending() > 0 && s.Now() < deadline {
			s.RunFor(5 * time.Millisecond)
		}
	}

	// Install phase: per switch, BlocksPerSwitch aligned blocks of
	// BlockSize /32s; each block shares one output port, so a block
	// compresses to a single cover. Blocks land as bursts so a burst is
	// one aggregation batch.
	addrOf := func(si, b, j int) [4]byte {
		return [4]byte{10, 2, byte(si), byte(b*opts.BlockSize + j)}
	}
	for si, name := range names {
		ports := ft.InterPorts(name)
		for b := 0; b < opts.BlocksPerSwitch; b++ {
			sw, block, port := name, b, ports[b%len(ports)]
			idx := si
			s.After(time.Duration(b)*opts.Stagger, func() {
				for j := 0; j < opts.BlockSize; j++ {
					fm := &of.FlowMod{Command: of.FCAdd,
						Match: aggDstMatch(addrOf(idx, block, j)), Priority: 100,
						BufferID: of.BufferNone, OutPort: of.PortNone,
						Actions: []of.Action{of.ActionOutput{Port: port}}}
					send(sw, fm, false)
				}
			})
		}
	}
	waitResolved()

	// Peak compression sample, before churn shrinks the tables.
	if !opts.Baseline {
		for _, name := range names {
			if st, ok := r.AggregationStats(name); ok {
				res.LogicalRules += st.LogicalRules
				res.PhysicalRules += st.PhysicalRules
				res.HSACounterexamples += st.Counterexamples
			}
		}
	} else {
		res.LogicalRules = len(tracked)
		res.PhysicalRules = len(tracked)
	}
	if res.PhysicalRules > 0 {
		res.Ratio = float64(res.LogicalRules) / float64(res.PhysicalRules)
	}

	// Churn phase: seeded point deletes (forcing cover splits), then
	// re-adds of half of them (forcing re-merges and fold-ins). Deletes
	// and re-adds run in separate phases so no batch carries an add and a
	// delete of the same rule.
	rng := rand.New(rand.NewSource(opts.Seed))
	total := opts.BlocksPerSwitch * opts.BlockSize
	deleted := make(map[string][]int)
	for si, name := range names {
		picks := rng.Perm(total)[:opts.Deletes]
		sort.Ints(picks)
		deleted[name] = picks
		sw, idx := name, si
		s.After(time.Duration(si%8)*opts.Stagger, func() {
			for _, p := range picks {
				fm := &of.FlowMod{Command: of.FCDelete,
					Match:    aggDstMatch(addrOf(idx, p/opts.BlockSize, p%opts.BlockSize)),
					BufferID: of.BufferNone, OutPort: of.PortNone}
				send(sw, fm, true)
			}
		})
	}
	waitResolved()
	for si, name := range names {
		ports := ft.InterPorts(name)
		picks := deleted[name][:opts.Deletes/2]
		sw, idx := name, si
		s.After(time.Duration(si%8)*opts.Stagger, func() {
			for _, p := range picks {
				fm := &of.FlowMod{Command: of.FCAdd,
					Match:    aggDstMatch(addrOf(idx, p/opts.BlockSize, p%opts.BlockSize)),
					Priority: 100, BufferID: of.BufferNone, OutPort: of.PortNone,
					Actions: []of.Action{of.ActionOutput{Port: ports[(p/opts.BlockSize)%len(ports)]}}}
				send(sw, fm, false)
			}
		})
	}
	waitResolved()

	// Full equivalence re-verification over the final tables.
	if !opts.Baseline {
		for _, name := range names {
			if t := r.AggregationTable(name); t != nil {
				res.HSACounterexamples += uint64(t.VerifyFull())
			}
		}
	}

	// Ground-truth audit: replay each switch's data-plane activation log
	// up to every ack's confirmation time. An installed ack requires a
	// live physical rule covering the logical match at that instant; a
	// removed ack requires none (sound here because the workload keeps
	// per-switch rule regions disjoint across blocks).
	type ruleKey struct {
		m of.Match
		p uint16
	}
	liveAt := func(sw string, at time.Duration) []ruleKey {
		live := make(map[ruleKey]bool)
		for _, a := range switches[sw].Activations() {
			if a.At > at {
				break
			}
			k := ruleKey{m: a.Match, p: a.Priority}
			if a.Deleted {
				delete(live, k)
			} else {
				live[k] = true
			}
		}
		keys := make([]ruleKey, 0, len(live))
		for k := range live {
			keys = append(keys, k)
		}
		return keys
	}
	var lats []time.Duration
	for _, l := range tracked {
		ar, ok := l.h.Result()
		switch {
		case !ok:
			res.Unacked++
			continue
		case ar.Outcome == core.OutcomeFailed:
			res.Failed++
			continue
		}
		res.Completed++
		lats = append(lats, ar.Latency)
		covered := false
		for _, k := range liveAt(l.sw, ar.ConfirmedAt) {
			if hsa.Subset(l.match, k.m) {
				covered = true
				break
			}
		}
		if l.delete && covered {
			res.FalseRemoveAcks++
		} else if !l.delete && !covered {
			res.FalseInstallAcks++
		}
	}
	res.Updates = len(tracked)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i99 := len(lats) * 99 / 100
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		res.P50, res.P99 = lats[len(lats)*50/100], lats[i99]
	}

	// The trace: one line per logical update in issue order, plus the
	// summary. Deterministic for identical opts.
	var tr strings.Builder
	for _, l := range tracked {
		cmd := "add"
		if l.delete {
			cmd = "del"
		}
		ar, ok := l.h.Result()
		if !ok {
			fmt.Fprintf(&tr, "%s %s xid=%d match=%s unacked\n", l.sw, cmd, l.xid, l.match)
			continue
		}
		fmt.Fprintf(&tr, "%s %s xid=%d match=%s outcome=%s at=%s\n",
			l.sw, cmd, l.xid, l.match, ar.Outcome, ar.ConfirmedAt)
	}
	fmt.Fprintf(&tr, "summary logical=%d physical=%d ratio=%.3f cex=%d false_install=%d false_remove=%d\n",
		res.LogicalRules, res.PhysicalRules, res.Ratio,
		res.HSACounterexamples, res.FalseInstallAcks, res.FalseRemoveAcks)
	res.Trace = tr.String()
	return res, nil
}
