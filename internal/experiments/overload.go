package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/faults"
	"rum/internal/netsim"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// congestedTraceText is the built-in congested-control-channel profile
// the overload harness defaults to: a healthy phase, a congestion
// collapse (high latency, a thirteenth of the bandwidth), and a partial
// recovery, cycling. Congestion here is queueing, not loss — deliveries
// are paced and ordered, so the sequential technique's FIFO inference
// stays sound and honesty failures can only come from the overload
// machinery itself. Lossy profiles (the bundled
// internal/faults/testdata traces) can be swapped in via Trace.
const congestedTraceText = `# congested control channel: healthy / collapse / partial recovery
20ms 200us 0 2000
30ms 2ms   0 150
10ms 500us 0 800
`

// OverloadChurnOpts parameterizes the overload-robustness workload: the
// fat-tree churn pushed through a congested control channel (a
// trace-shaped link per switch) against a small bounded outbox, run
// once per OverloadPolicy.
type OverloadChurnOpts struct {
	// Policy is the per-switch outbox overload policy under test
	// (default core.OverloadShed — the only policy whose behaviour is
	// identical under the simulated and wall clocks).
	Policy core.OverloadPolicy
	// Seed feeds the deterministic injector (default 1).
	Seed int64
	// K is the fat-tree arity (default 4 → 20 switches).
	K int
	// UpdatesPerSwitch is the per-switch update count (default 30 —
	// several times the outbox bound, so the congestion collapse phase
	// must overflow it).
	UpdatesPerSwitch int
	// Burst and Stagger shape the churn (defaults 5, 500µs).
	Burst   int
	Stagger time.Duration
	// Technique is the core-layer strategy (default timeout); edge
	// switches run sequential and aggregation switches general probing,
	// as in the fault suite — the probing cohorts are the ones the
	// zero-false-ack acceptance is asserted on.
	Technique core.Technique
	// OutboxLimit bounds each switch shard's outbox (default 8).
	OutboxLimit int
	// OverloadDeadline, DegradeLatency and DegradeHold mirror
	// core.Config (defaults 100ms, 1ms, 2ms).
	OverloadDeadline time.Duration
	DegradeLatency   time.Duration
	DegradeHold      time.Duration
	// Trace is the link profile shaping every RUM→switch channel
	// (default: the built-in congested-control-channel profile).
	Trace *faults.Trace
	// CtrlLatency and LinkLatency mirror EnvConfig (defaults 100µs/20µs).
	CtrlLatency time.Duration
	LinkLatency time.Duration
	// Deadline bounds the simulated run (default 30s).
	Deadline time.Duration
}

// Defaults fills zero fields.
func (o OverloadChurnOpts) Defaults() OverloadChurnOpts {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.K == 0 {
		o.K = 4
	}
	if o.UpdatesPerSwitch == 0 {
		o.UpdatesPerSwitch = 30
	}
	if o.Burst == 0 {
		o.Burst = 5
	}
	if o.Stagger == 0 {
		o.Stagger = 500 * time.Microsecond
	}
	if o.Technique == "" {
		o.Technique = core.TechTimeout
	}
	if o.OutboxLimit == 0 {
		o.OutboxLimit = 8
	}
	if o.OverloadDeadline == 0 {
		o.OverloadDeadline = 100 * time.Millisecond
	}
	if o.DegradeLatency == 0 {
		o.DegradeLatency = time.Millisecond
	}
	if o.DegradeHold == 0 {
		o.DegradeHold = 2 * time.Millisecond
	}
	if o.Trace == nil {
		tr, err := faults.ParseTrace("congested", congestedTraceText)
		if err != nil {
			panic(err) // compiled-in profile: a parse failure is a build bug
		}
		o.Trace = tr
	}
	if o.CtrlLatency == 0 {
		o.CtrlLatency = 100 * time.Microsecond
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 20 * time.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	return o
}

// OverloadChurnResult reports one policy's run through the congested
// channel.
type OverloadChurnResult struct {
	Policy   core.OverloadPolicy
	Seed     int64
	Switches int
	// Updates = Acked + Shed + FailedOther + SendFailed + Wedged.
	Updates    int
	SendFailed int

	Acked int
	// Shed resolved as failed with core.ErrOverloaded — the typed
	// fast-fail the Shed policy (and Block under the simulated clock)
	// hands back instead of queueing without bound. FailedOther counts
	// every other typed failure; under this harness (no channel kills)
	// the Shed policy must keep it at zero.
	Shed        int
	FailedOther int
	Wedged      int
	FalseAcks   int

	// ShedPct is Shed as a percentage of Updates — the benchcheck
	// overload gate's metric.
	ShedPct float64

	// MaxOutboxHighWater is the worst observed per-shard
	// outbox+in-flight occupancy across all switches — the
	// memory-boundedness evidence.
	MaxOutboxHighWater int
	// DegradedSwitches counts switches still flagged slow at run end
	// (only the Degrade policy marks any).
	DegradedSwitches int

	// P50/P99 are ack-latency percentiles over positive resolutions.
	P50, P99 time.Duration

	PerTechnique map[core.Technique]TechFaultStats

	Injected faults.Stats

	// Trace is the canonical per-update transcript; equal opts (and
	// seed) reproduce it byte for byte.
	Trace string
}

// String summarizes the run in one line.
func (r *OverloadChurnResult) String() string {
	return fmt.Sprintf("overload{%s seed=%d}: %d/%d acked, %d shed (%.1f%%), %d wedged, %d false-acks, outbox high-water %d, p99 %v",
		r.Policy, r.Seed, r.Acked, r.Updates, r.Shed, r.ShedPct, r.Wedged, r.FalseAcks, r.MaxOutboxHighWater, r.P99)
}

// OverloadChurn drives the fat-tree churn through trace-congested
// control channels against bounded per-switch outboxes and scores the
// overload policy: completeness (zero wedged futures), honesty (zero
// false acks for probing cohorts, sheds typed ErrOverloaded and never
// wire-acked), and boundedness (outbox high-water never exceeds the
// configured limit plus RUM's own barrier traffic).
func OverloadChurn(opts OverloadChurnOpts) (*OverloadChurnResult, error) {
	opts = opts.Defaults()
	ft, err := netsim.NewFatTree(opts.K)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	n := netsim.New(s)
	inj := faults.NewInjector(opts.Seed)
	plan := &faults.Plan{Trace: opts.Trace}

	names := ft.Switches()
	switches := make(map[string]*switchsim.Switch)
	for i, name := range names {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, opts.LinkLatency)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}

	cfg := core.Config{
		Clock:            s,
		Technique:        opts.Technique,
		RUMAware:         true,
		TimeoutRate:      1000,
		OutboxLimit:      opts.OutboxLimit,
		Overload:         opts.Policy,
		OverloadDeadline: opts.OverloadDeadline,
		DegradeLatency:   opts.DegradeLatency,
		DegradeHold:      opts.DegradeHold,
		PerSwitch:        make(map[string]core.Technique),
	}
	for _, sw := range ft.Edge {
		cfg.PerSwitch[sw] = core.TechSequential
	}
	for _, sw := range ft.Agg {
		cfg.PerSwitch[sw] = core.TechGeneral
	}
	r, err := core.New(cfg, core.NewTopology(links))
	if err != nil {
		return nil, err
	}

	ctrlConns := make(map[string]transport.Conn)
	for _, name := range names {
		sw := switches[name]
		ctrlTop, ctrlBottom := transport.Pipe(s, opts.CtrlLatency)
		rumSide, swSide := transport.Pipe(s, opts.CtrlLatency)
		sw.AttachConn(swSide)
		// The congested link is RUM→switch: exactly where the bounded
		// outbox and the trace pacer meet.
		wrapped := faults.Wrap(rumSide, s, inj, plan)
		if _, err := r.AttachSwitch(name, sw.DPID(), ctrlBottom, wrapped); err != nil {
			return nil, fmt.Errorf("experiments: attaching %s: %w", name, err)
		}
		ctrlConns[name] = ctrlTop
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := r.Bootstrap(); err != nil {
		return nil, err
	}
	s.RunFor(700 * time.Millisecond)

	techniqueOf := func(sw string) core.Technique {
		if t, ok := cfg.PerSwitch[sw]; ok {
			return t
		}
		return opts.Technique
	}

	type issued struct {
		sw     string
		xid    uint32
		handle *core.UpdateHandle
	}
	var all []issued
	sendFailed := make(map[int]bool)
	flowID := 0
	churnStart := s.Now()
	for _, name := range names {
		ports := ft.InterPorts(name)
		for u := 0; u < opts.UpdatesPerSwitch; u++ {
			sw, port := name, ports[u%len(ports)]
			f := controller.FlowSpec{ID: flowID}
			f.Src, f.Dst = controller.FlowAddr(flowID)
			flowID++
			fm := controller.AddRule(f, 100, port)
			fm.SetXID(client.NewXID())
			idx := len(all)
			all = append(all, issued{sw: sw, xid: fm.GetXID(), handle: r.Watch(sw, fm.GetXID())})
			delay := time.Duration(u/opts.Burst) * opts.Stagger
			s.After(delay, func() {
				if err := client.Send(sw, fm); err != nil {
					sendFailed[idx] = true
					all[idx].handle.Cancel()
				}
			})
		}
	}

	deadline := churnStart + opts.Deadline
	resolvedAll := func() bool {
		for i, it := range all {
			if sendFailed[i] {
				continue
			}
			if _, ok := it.handle.Result(); !ok {
				return false
			}
		}
		return true
	}
	for !resolvedAll() && s.Now() < deadline {
		s.RunFor(10 * time.Millisecond)
	}

	// Ground truth: every xid that ever became visible in a data plane.
	activated := make(map[string]map[uint32]bool, len(names))
	for _, name := range names {
		m := make(map[uint32]bool)
		for _, a := range switches[name].Activations() {
			m[a.XID] = true
		}
		activated[name] = m
	}

	res := &OverloadChurnResult{
		Policy:       opts.Policy,
		Seed:         opts.Seed,
		Switches:     len(names),
		Updates:      len(all),
		PerTechnique: make(map[core.Technique]TechFaultStats),
	}
	var trace strings.Builder
	var lats []time.Duration
	for i, it := range all {
		tech := techniqueOf(it.sw)
		st := res.PerTechnique[tech]
		st.Updates++
		ar, ok := it.handle.Result()
		switch {
		case sendFailed[i]:
			res.SendFailed++
			st.SendFailed++
			fmt.Fprintf(&trace, "%d %s %d send-failed\n", i, it.sw, it.xid)
		case !ok:
			res.Wedged++
			st.Wedged++
			fmt.Fprintf(&trace, "%d %s %d WEDGED\n", i, it.sw, it.xid)
		case ar.Outcome == core.OutcomeFailed:
			st.FailedTyped++
			if errors.Is(ar.Err, core.ErrOverloaded) {
				res.Shed++
			} else {
				res.FailedOther++
			}
			fmt.Fprintf(&trace, "%d %s %d failed %v @%d\n", i, it.sw, it.xid, ar.Err, ar.ConfirmedAt.Nanoseconds())
		default:
			res.Acked++
			st.Acked++
			lats = append(lats, ar.Latency)
			falseAck := (ar.Outcome == core.OutcomeInstalled || ar.Outcome == core.OutcomeRemoved) &&
				!activated[it.sw][it.xid]
			if falseAck {
				res.FalseAcks++
				st.FalseAcks++
			}
			fmt.Fprintf(&trace, "%d %s %d %s false=%v @%d\n",
				i, it.sw, it.xid, ar.Outcome, falseAck, ar.ConfirmedAt.Nanoseconds())
		}
		res.PerTechnique[tech] = st
	}
	if res.Updates > 0 {
		res.ShedPct = 100 * float64(res.Shed) / float64(res.Updates)
	}
	for _, name := range names {
		if hw := r.OutboxHighWater(name); hw > res.MaxOutboxHighWater {
			res.MaxOutboxHighWater = hw
		}
		if r.Degraded(name) {
			res.DegradedSwitches++
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i99 := len(lats) * 99 / 100
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		res.P50, res.P99 = lats[len(lats)*50/100], lats[i99]
	}
	res.Injected = inj.Stats()
	fmt.Fprintf(&trace, "sheds: %d high-water: %d\n", r.OverloadSheds(), res.MaxOutboxHighWater)
	fmt.Fprintf(&trace, "injected: %s\n", res.Injected)
	res.Trace = trace.String()
	return res, nil
}
