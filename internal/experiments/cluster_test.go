package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"rum/internal/cluster"
	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/planner"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// TestClusterChurnProxyKillHandoff is the acceptance run: the full
// k=16 / 320-switch fat-tree partitioned across 4 proxies, mixed
// strategies, a proxy killed mid-run. Completeness (zero wedged),
// honesty (zero false acks for the probing cohorts), repair hygiene
// (zero double installs), and the composite wave naming the losing
// shard are all hard requirements.
func TestClusterChurnProxyKillHandoff(t *testing.T) {
	res, err := ClusterChurn(ClusterChurnOpts{UpdatesPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.K != 16 || res.Switches != 320 || res.Shards != 4 {
		t.Fatalf("workload shrank: k=%d switches=%d shards=%d", res.K, res.Switches, res.Shards)
	}
	if res.Wedged != 0 {
		t.Fatalf("%d futures wedged", res.Wedged)
	}
	if res.Orphans == 0 {
		t.Fatal("the killed shard held no switches — the handoff never happened")
	}
	if res.ProxyLost == 0 {
		t.Fatal("no failure carried a ShardError naming the killed shard")
	}
	if res.Acked+res.FailedTyped+res.SendFailed != res.Updates {
		t.Fatalf("accounting leak: %d+%d+%d != %d updates",
			res.Acked, res.FailedTyped, res.SendFailed, res.Updates)
	}
	for _, tech := range []core.Technique{core.TechGeneral, core.TechSequential} {
		if st := res.PerTechnique[tech]; st.FalseAcks != 0 {
			t.Fatalf("%s cohort produced %d false acks", tech, st.FalseAcks)
		}
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs — the FIB re-read repair path re-sent live rules", res.DoubleInstalls)
	}
	if res.CompositeFailed == 0 || res.CompositeLosingShard != 0 {
		t.Fatalf("composite wave: %d failed, losing shard %d; want failures naming shard 0",
			res.CompositeFailed, res.CompositeLosingShard)
	}
	if res.HandoffMax == 0 {
		t.Fatal("no orphan confirmed an update after adoption")
	}
}

// TestClusterChurnSeedReplayProxyKill extends the fault suite's replay
// guarantee to proxy crashes: two runs with the same seed and profile
// reproduce the kill, the handoff, and every resolution byte for byte,
// and stay wedge-free under message loss layered over the crash.
func TestClusterChurnSeedReplayProxyKill(t *testing.T) {
	opts := ClusterChurnOpts{K: 4, Shards: 2, Profile: FaultLoss, Seed: 7, KillShard: 1}
	a, err := ClusterChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("same seed produced different traces:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.Trace, b.Trace)
	}
	if a.Wedged != 0 {
		t.Fatalf("%d futures wedged under loss + proxy kill", a.Wedged)
	}
	if a.Orphans == 0 {
		t.Fatal("kill shard held no switches")
	}
	other, err := ClusterChurn(ClusterChurnOpts{K: 4, Shards: 2, Profile: FaultLoss, Seed: 8, KillShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	if other.Trace == a.Trace {
		t.Fatal("different seeds produced identical traces — the injector is not wired through")
	}
}

// TestClusterChurnRescue is the tentpole acceptance run for crash
// rescue: with intent replication on, a member killed mid-fanout loses
// no journaled in-flight future while its switches stay reachable — each
// is either confirmed against the re-read FIB or re-issued and confirmed
// through the adoptive member, with zero false acks and zero double
// installs against the activation-log ground truth. Two runs with equal
// opts must reproduce the kill and every rescue byte for byte.
func TestClusterChurnRescue(t *testing.T) {
	opts := ClusterChurnOpts{K: 8, Shards: 4, Rescue: true, UpdatesPerSwitch: 4}
	res, err := ClusterChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Orphans == 0 {
		t.Fatal("the killed shard held no switches — the handoff never happened")
	}
	if res.Wedged != 0 {
		t.Fatalf("%d futures wedged", res.Wedged)
	}
	if res.Rescued+res.RescueReissued == 0 {
		t.Fatal("the kill caught no in-flight futures — the rescue path never ran")
	}
	if res.RescueFailed != 0 {
		t.Fatalf("%d journaled futures failed despite reachable switches — the truthful-resolution gate is broken", res.RescueFailed)
	}
	if res.FalseAcks != 0 {
		t.Fatalf("%d false acks — a rescue confirmed a rule the data plane never activated", res.FalseAcks)
	}
	if res.DoubleInstalls != 0 {
		t.Fatalf("%d double installs — a rescue re-issued a rule that was already live", res.DoubleInstalls)
	}
	if res.Acked+res.FailedTyped+res.SendFailed != res.Updates {
		t.Fatalf("accounting leak: %d+%d+%d != %d updates",
			res.Acked, res.FailedTyped, res.SendFailed, res.Updates)
	}
	if res.HandoffMax == 0 {
		t.Fatal("no orphan confirmed an update after adoption")
	}

	again, err := ClusterChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != again.Trace {
		t.Fatalf("same opts produced different rescue traces:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			res.Trace, again.Trace)
	}
}

// TestClusterChurnChaosSoak is the nightly chaos sweep: many seeds, each
// deriving a randomized kill/recovery schedule (kill time, killed shard,
// outage length, fault profile) from its seed, all with rescue on and
// the truthful-resolution gate enforced. It is skipped unless RUM_SOAK
// is set — the nightly workflow runs it under -race and uploads the
// per-seed scorecard written to RUM_SOAK_OUT.
func TestClusterChurnChaosSoak(t *testing.T) {
	if os.Getenv("RUM_SOAK") == "" {
		t.Skip("chaos soak runs in the nightly workflow; set RUM_SOAK=1 to run locally")
	}
	seeds := 20
	if v := os.Getenv("RUM_SOAK_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad RUM_SOAK_SEEDS %q", v)
		}
		seeds = n
	}
	var scorecard strings.Builder
	profiles := []FaultProfile{FaultNone, FaultLoss}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		opts := ClusterChurnOpts{
			K:                4,
			Shards:           2,
			Seed:             seed,
			Rescue:           true,
			UpdatesPerSwitch: 2 + rng.Intn(4),
			KillShard:        rng.Intn(2),
			KillAt:           500*time.Microsecond + time.Duration(rng.Intn(2000))*time.Microsecond,
			RecoverAfter:     10*time.Millisecond + time.Duration(rng.Intn(80))*time.Millisecond,
			Profile:          profiles[rng.Intn(len(profiles))],
		}
		res, err := ClusterChurn(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fmt.Fprintf(&scorecard,
			"seed=%d profile=%s kill=%d@%v recover=%v orphans=%d acked=%d/%d rescued=%d reissued=%d nointent=%d rescue_failed=%d false_acks=%d double_installs=%d wedged=%d handoff=%v\n",
			seed, opts.Profile, opts.KillShard, opts.KillAt, opts.RecoverAfter,
			res.Orphans, res.Acked, res.Updates, res.Rescued, res.RescueReissued,
			res.RescueNoIntent, res.RescueFailed, res.FalseAcks, res.DoubleInstalls,
			res.Wedged, res.HandoffMax)
		if res.Wedged != 0 {
			t.Errorf("seed %d: %d futures wedged", seed, res.Wedged)
		}
		if res.RescueFailed != 0 {
			t.Errorf("seed %d: %d journaled futures failed despite reachable switches", seed, res.RescueFailed)
		}
		if res.DoubleInstalls != 0 {
			t.Errorf("seed %d: %d double installs", seed, res.DoubleInstalls)
		}
	}
	t.Logf("chaos soak scorecard:\n%s", scorecard.String())
	if out := os.Getenv("RUM_SOAK_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(scorecard.String()), 0o644); err != nil {
			t.Fatalf("writing scorecard: %v", err)
		}
	}
}

// TestClusterPlannerCrossShardWaves wires the consistent-update planner
// to a 2-member cluster through Config.Watch: a path migration whose
// hops live on different members must release its waves on aggregated
// cross-proxy confirmations and leave the fabric in the new state.
func TestClusterPlannerCrossShardWaves(t *testing.T) {
	ft, err := netsim.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	n := netsim.New(s)
	switches := make(map[string]*switchsim.Switch)
	for i, name := range ft.Switches() {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := make([]core.TopoLink, len(ft.Links))
	for i, l := range ft.Links {
		n.Connect(switches[l.A], l.APort, switches[l.B], l.BPort, 20*time.Microsecond)
		links[i] = core.TopoLink{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort}
	}
	smap, err := cluster.NewShardMap(2)
	if err != nil {
		t.Fatal(err)
	}
	cluster.AssignFatTree(smap, ft)
	c, err := cluster.New(cluster.Config{
		Map:      smap,
		Core:     core.Config{Clock: s, Technique: core.TechTimeout, RUMAware: true, TimeoutRate: 1000},
		Topology: core.NewTopology(links),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrlConns := make(map[string]transport.Conn)
	for _, name := range ft.Switches() {
		ctrlTop, ctrlBottom := transport.Pipe(s, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(s, 100*time.Microsecond)
		switches[name].AttachConn(swSide)
		if _, _, err := c.AttachSwitch(name, switches[name].DPID(), ctrlBottom, rumSide); err != nil {
			t.Fatalf("attaching %s: %v", name, err)
		}
		ctrlConns[name] = ctrlTop
	}
	client := controller.NewClient(s, controller.AckRUM, ctrlConns)
	if err := c.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(700 * time.Millisecond)

	// Old path pod0 → c00 → pod1 (ingress edge p00e0); new path via the
	// second aggregation plane, c02. Pod 0 lives on shard 0 and pod 1 on
	// shard 1, so every wave's ops span both members.
	f := controller.FlowSpec{ID: 9000}
	f.Src, f.Dst = controller.FlowAddr(9000)
	match := controller.FlowMatch(f)
	oldPath := []planner.PathHop{
		{Switch: "p00e0", OutPort: 3}, {Switch: "p00a0", OutPort: 3},
		{Switch: "c00", OutPort: 2}, {Switch: "p01a0", OutPort: 1},
		{Switch: "p01e0", OutPort: 1},
	}
	newPath := []planner.PathHop{
		{Switch: "p00e0", OutPort: 4}, {Switch: "p00a1", OutPort: 3},
		{Switch: "c02", OutPort: 2}, {Switch: "p01a1", OutPort: 1},
		{Switch: "p01e0", OutPort: 1},
	}
	spansShards := false
	for _, h := range newPath {
		if o, ok := c.Located(h.Switch); ok && o == 1 {
			spansShards = true
		}
	}
	if !spansShards {
		t.Fatal("test topology error: new path does not cross shards")
	}

	// Seed the old path, gated on cluster futures.
	for _, h := range oldPath {
		fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: match,
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: h.OutPort}}}
		fm.SetXID(client.NewXID())
		hd := c.Watch(h.Switch, fm.GetXID())
		if err := client.Send(h.Switch, fm); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, ok := hd.Result(); ok {
				break
			}
			s.RunFor(10 * time.Millisecond)
		}
		if ar, ok := hd.Result(); !ok || ar.Outcome == core.OutcomeFailed {
			t.Fatalf("seeding old path on %s: %+v ok=%v", h.Switch, ar, ok)
		}
	}

	pl, err := planner.New(planner.Config{
		Watch:  c.Watch,
		Clock:  s,
		Send:   func(sw string, fm *of.FlowMod) error { return client.Send(sw, fm) },
		NewXID: client.NewXID,
		State:  func(sw string) []hsa.Rule { return switches[sw].CtrlTable().Rules() },
		Ports:  PortsOf(links),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.Plan([]planner.PathChange{{
		Name: "cross-shard", Match: match, Priority: 100, Old: oldPath, New: newPath,
	}})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := pl.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	deadline := s.Now() + 30*time.Second
	for !exec.Pump() && s.Now() < deadline {
		s.RunFor(10 * time.Millisecond)
	}
	if !exec.Done() || exec.Err() != nil {
		t.Fatalf("cross-shard plan did not complete: done=%v err=%v wedged=%d",
			exec.Done(), exec.Err(), exec.Wedged())
	}
	if exec.Wedged() != 0 {
		t.Fatalf("%d ops wedged", exec.Wedged())
	}
	// The fabric must be in the new state: every new-path hop forwards
	// out its new port, and old-only switches dropped the rule.
	for _, h := range newPath {
		e := switches[h.Switch].DataTable().Find(match, 100)
		if e == nil {
			t.Fatalf("%s: rule missing after migration", h.Switch)
		}
		if out, ok := e.Actions[0].(of.ActionOutput); !ok || out.Port != h.OutPort {
			t.Fatalf("%s forwards %+v; want port %d", h.Switch, e.Actions[0], h.OutPort)
		}
	}
	for _, sw := range []string{"p00a0", "c00", "p01a0"} {
		if switches[sw].DataTable().Find(match, 100) != nil {
			t.Fatalf("%s still holds the old-path rule", sw)
		}
	}
}
