package experiments

import (
	"fmt"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/of"
	"rum/internal/switchsim"
)

// Table1Cell is one measurement of Table 1: the usable rule modification
// rate of sequential probing (probes excluded) normalized to the
// barrier-baseline rate at the same window K.
type Table1Cell struct {
	ProbeEvery int
	K          int
	Rate       float64 // usable mods/sec
	Baseline   float64 // barrier-baseline mods/sec
	Normalized float64 // Rate / Baseline
}

// Table1Opts parameterizes the experiment (paper: R=4000).
type Table1Opts struct {
	R           int
	ProbeEverys []int
	Ks          []int
}

// Defaults fills the paper's sweep.
func (o Table1Opts) Defaults() Table1Opts {
	if o.R == 0 {
		o.R = 4000
	}
	if o.ProbeEverys == nil {
		o.ProbeEverys = []int{1, 2, 5, 10, 20}
	}
	if o.Ks == nil {
		o.Ks = []int{20, 50, 100}
	}
	return o
}

// Table1 sweeps probing frequency × window and reports normalized usable
// rates.
func Table1(o Table1Opts) []Table1Cell {
	o = o.Defaults()
	baselines := make(map[int]float64, len(o.Ks))
	for _, k := range o.Ks {
		baselines[k] = modRate(core.TechBarriers, core.Config{}, o.R, k)
	}
	var out []Table1Cell
	for _, pe := range o.ProbeEverys {
		for _, k := range o.Ks {
			rate := modRate(core.TechSequential, core.Config{ProbeEvery: pe}, o.R, k)
			out = append(out, Table1Cell{
				ProbeEvery: pe, K: k,
				Rate: rate, Baseline: baselines[k],
				Normalized: rate / baselines[k],
			})
		}
	}
	return out
}

// modRate measures the usable modification rate: R rules installed on s2
// with at most K unconfirmed, real mods only (RUM's probe-rule updates do
// not count).
func modRate(tech core.Technique, rum core.Config, r, k int) float64 {
	rum.Technique = tech
	env := NewTriangle(EnvConfig{RUM: rum, AckMode: ackModeFor(tech)})
	if err := env.Warm(); err != nil {
		panic(err)
	}
	drop := &of.FlowMod{Command: of.FCAdd, Priority: 1, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone}
	drop.SetXID(env.Client.NewXID())
	_ = env.Client.Send("s2", drop)
	env.Sim.RunFor(time.Second)

	flows := Flows(r)
	plan := &controller.Plan{}
	for _, f := range flows {
		plan.Ops = append(plan.Ops, controller.Op{Switch: "s2", FM: controller.AddRule(f, 100, 2)})
	}
	start := env.Sim.Now()
	_, done := env.RunPlan(plan, k, time.Hour)
	if !done {
		panic("table1: plan did not complete")
	}
	elapsed := env.Sim.Now() - start
	return float64(r) / elapsed.Seconds()
}

// RenderTable1 prints the table in the paper's layout.
func RenderTable1(cells []Table1Cell, ks []int) string {
	if ks == nil {
		ks = []int{20, 50, 100}
	}
	var b strings.Builder
	b.WriteString("Table 1 — usable rule update rate with sequential probing (normalized to barriers)\n")
	fmt.Fprintf(&b, "  %-18s", "Probing frequency")
	for _, k := range ks {
		fmt.Fprintf(&b, "  K = %-5d", k)
	}
	b.WriteString("\n")
	byPE := make(map[int]map[int]Table1Cell)
	var pes []int
	for _, c := range cells {
		if byPE[c.ProbeEvery] == nil {
			byPE[c.ProbeEvery] = make(map[int]Table1Cell)
			pes = append(pes, c.ProbeEvery)
		}
		byPE[c.ProbeEvery][c.K] = c
	}
	for _, pe := range pes {
		fmt.Fprintf(&b, "  after %-2d updates ", pe)
		for _, k := range ks {
			c := byPE[pe][k]
			fmt.Fprintf(&b, "  %6.0f%%  ", 100*c.Normalized)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BarrierLayerResult compares full-barrier-layer update times (§5.1,
// "Barrier Layer Performance").
type BarrierLayerResult struct {
	Scenario  string
	UpdateLen time.Duration
	Reference time.Duration // the probing-only run it is compared against
	Ratio     float64
}

// BarrierLayerOpts parameterizes the barrier-layer overhead runs.
type BarrierLayerOpts struct {
	NumFlows     int
	BarrierEvery int // controller barrier frequency (paper: 10, then 1)
}

// BarrierLayer reruns the migration driving consistency from *reliable
// barriers* instead of fine-grained acks:
//
//  1. non-reordering switch, barrier layer over sequential probing —
//     expected ≈ the plain sequential-probing run;
//  2. reordering switch, barrier layer with command buffering over
//     general probing — expected ≈ 2× the plain general-probing run;
//  3. as (2) with a barrier after every command — up to ≈ 5×.
func BarrierLayer(o BarrierLayerOpts) []BarrierLayerResult {
	if o.NumFlows == 0 {
		o.NumFlows = 300
	}
	if o.BarrierEvery == 0 {
		o.BarrierEvery = 10
	}
	var out []BarrierLayerResult

	reorder := switchsim.ProfileReordering(11)
	seqRef := RunMigration(MigrationOpts{Technique: core.TechSequential,
		RUM: core.Config{ProbeEvery: 10}, NumFlows: o.NumFlows})
	genRef := RunMigration(MigrationOpts{Technique: core.TechGeneral,
		S2: reorder, NumFlows: o.NumFlows})

	d1 := barrierMigration(core.TechSequential, core.Config{ProbeEvery: 10, BarrierLayer: true},
		switchsim.ProfileHP5406zl(), o.NumFlows, o.BarrierEvery)
	out = append(out, BarrierLayerResult{
		Scenario:  fmt.Sprintf("non-reordering switch, barrier/%d", o.BarrierEvery),
		UpdateLen: d1, Reference: seqRef.Duration,
		Ratio: float64(d1) / float64(seqRef.Duration),
	})

	d2 := barrierMigration(core.TechGeneral,
		core.Config{BarrierLayer: true, BufferForReorder: true},
		reorder, o.NumFlows, o.BarrierEvery)
	out = append(out, BarrierLayerResult{
		Scenario:  fmt.Sprintf("reordering switch + buffering, barrier/%d", o.BarrierEvery),
		UpdateLen: d2, Reference: genRef.Duration,
		Ratio: float64(d2) / float64(genRef.Duration),
	})

	d3 := barrierMigration(core.TechGeneral,
		core.Config{BarrierLayer: true, BufferForReorder: true},
		reorder, o.NumFlows, 1)
	out = append(out, BarrierLayerResult{
		Scenario:  "reordering switch + buffering, barrier/1",
		UpdateLen: d3, Reference: genRef.Duration,
		Ratio: float64(d3) / float64(genRef.Duration),
	})
	return out
}

// barrierMigration migrates flows using reliable barriers for ordering:
// batches of S2 adds, each followed by a barrier; a batch's S1 flips are
// issued when its barrier reply arrives. The controller pipelines — it
// sends all batches up front; serialization, if any, is imposed by RUM's
// command buffering, which is precisely the overhead being measured.
func barrierMigration(tech core.Technique, rum core.Config, s2 switchsim.Profile, nFlows, barrierEvery int) time.Duration {
	rum.Technique = tech
	env := NewTriangle(EnvConfig{RUM: rum, S2: s2, AckMode: controller.AckRUM})
	if err := env.Warm(); err != nil {
		panic(err)
	}
	flows := Flows(nFlows)
	env.PreinstallMigrationState(flows)

	start := env.Sim.Now()
	flipped := 0
	for from := 0; from < len(flows); from += barrierEvery {
		to := from + barrierEvery
		if to > len(flows) {
			to = len(flows)
		}
		for _, f := range flows[from:to] {
			fm := controller.AddRule(f, 100, 2) // s2 → s3
			fm.SetXID(env.Client.NewXID())
			_ = env.Client.Send("s2", fm)
		}
		batch := flows[from:to]
		// The reliable barrier reply proves every batch rule is in the
		// data plane; then it is safe to flip the batch's ingress rules.
		_ = env.Client.SendBarrier("s2", func() {
			for _, f := range batch {
				fm := controller.AddRule(f, 100, 2) // s1 → s2
				fm.SetXID(env.Client.NewXID())
				_ = env.Client.Send("s1", fm)
			}
			flipped += len(batch)
		})
	}
	limit := env.Sim.Now() + 10*time.Minute
	for flipped < len(flows) && env.Sim.Now() < limit {
		env.Sim.RunFor(10 * time.Millisecond)
	}
	if flipped < len(flows) {
		panic("barrier migration did not complete")
	}
	return env.Sim.Now() - start
}

// RenderBarrierLayer prints the overhead summary.
func RenderBarrierLayer(results []BarrierLayerResult) string {
	var b strings.Builder
	b.WriteString("Barrier layer performance (§5.1)\n")
	fmt.Fprintf(&b, "  %-48s %12s %12s %7s\n", "scenario", "update", "reference", "ratio")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-48s %12v %12v %6.2fx\n", r.Scenario,
			r.UpdateLen.Round(time.Millisecond), r.Reference.Round(time.Millisecond), r.Ratio)
	}
	return b.String()
}
