package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/metrics"
	"rum/internal/of"
	"rum/internal/switchsim"
)

// Fig8Result holds per-rule (ack − activation) deltas for one technique —
// negative values are incorrect behaviour (acknowledged before the data
// plane), positive values are update-time overhead.
type Fig8Result struct {
	Technique core.Technique
	Label     string
	Deltas    []time.Duration // sorted ascending ("flow rank" axis)
	Negative  int             // count of incorrect (early) acks
}

// Fig8Opts parameterizes the low-level delay benchmark.
type Fig8Opts struct {
	R int // number of modifications (paper: 300)
	K int // max unconfirmed at once (paper: 300 — all at once)
}

// Fig8 measures the delay between data-plane and control-plane activation
// for all six techniques, R=300, K=300 on the HP-profile switch.
func Fig8(o Fig8Opts) []*Fig8Result {
	if o.R == 0 {
		o.R = 300
	}
	if o.K == 0 {
		o.K = 300
	}
	hp := switchsim.ProfileHP5406zl()
	sync := hp.SyncPeriod
	cases := []struct {
		label string
		tech  core.Technique
		rum   core.Config
	}{
		{"barriers (baseline)", core.TechBarriers, core.Config{}},
		{"timeout", core.TechTimeout, core.Config{Timeout: 300 * time.Millisecond}},
		{"adaptive 200", core.TechAdaptive, core.Config{AssumedRate: 200, ModelSyncPeriod: sync}},
		{"adaptive 250", core.TechAdaptive, core.Config{AssumedRate: 250, ModelSyncPeriod: sync}},
		{"sequential", core.TechSequential, core.Config{ProbeEvery: 10}},
		{"general", core.TechGeneral, core.Config{}},
	}
	var out []*Fig8Result
	for _, c := range cases {
		out = append(out, runDelayBench(c.label, c.tech, c.rum, o.R, o.K))
	}
	return out
}

// runDelayBench issues R adds on s2 with window K and compares ack times
// against the switch's activation log.
func runDelayBench(label string, tech core.Technique, rum core.Config, r, k int) *Fig8Result {
	rum.Technique = tech
	env := NewTriangle(EnvConfig{RUM: rum, AckMode: ackModeFor(tech)})
	if err := env.Warm(); err != nil {
		panic(err)
	}
	// Initial state: a single low-priority drop-all rule (§5.2).
	drop := &of.FlowMod{Command: of.FCAdd, Priority: 1, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone}
	drop.SetXID(env.Client.NewXID())
	_ = env.Client.Send("s2", drop)
	env.Sim.RunFor(time.Second)

	flows := Flows(r)
	plan := &controller.Plan{}
	for _, f := range flows {
		plan.Ops = append(plan.Ops, controller.Op{Switch: "s2", FM: controller.AddRule(f, 100, 2)})
	}
	results, done := env.RunPlan(plan, k, 5*time.Minute)
	if !done {
		panic(fmt.Sprintf("fig8 %s: plan did not complete", label))
	}
	env.Sim.RunFor(time.Second)

	acts := env.ActivationTimes("s2")
	res := &Fig8Result{Technique: tech, Label: label}
	for _, opRes := range results {
		actAt, ok := acts[opRes.XID]
		if !ok {
			continue
		}
		d := opRes.ConfirmedAt - actAt
		res.Deltas = append(res.Deltas, d)
		if d < 0 {
			res.Negative++
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i] < res.Deltas[j] })
	return res
}

// RenderFig8 prints the figure's summary: per technique the delta
// distribution (min/median/p90/max) and the count of incorrect acks.
func RenderFig8(results []*Fig8Result) string {
	var b strings.Builder
	b.WriteString("Figure 8 — delay between data plane and control plane activation (R=300, K=300)\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s\n",
		"technique", "min", "median", "p90", "max", "incorrect")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-20s %10v %10v %10v %10v %9.1f%%\n",
			r.Label,
			metrics.Min(r.Deltas).Round(time.Millisecond),
			metrics.Percentile(r.Deltas, 50).Round(time.Millisecond),
			metrics.Percentile(r.Deltas, 90).Round(time.Millisecond),
			metrics.Max(r.Deltas).Round(time.Millisecond),
			100*float64(r.Negative)/float64(len(r.Deltas)))
	}
	return b.String()
}
