package experiments

import (
	"testing"
	"time"
)

// TestAggregationSmall is the acceptance harness at k=4 (20 switches):
// every logical update must resolve positively, the aggregate tables
// must compress the aligned-block workload by at least 1.5x, and the
// data-plane audit must find zero false acks and zero HSA
// counterexamples.
func TestAggregationSmall(t *testing.T) {
	res, err := Aggregation(AggregationOpts{K: 4, Seed: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 20 {
		t.Fatalf("k=4 fat-tree ran %d switches, want 20", res.Switches)
	}
	if res.Completed != res.Updates || res.Failed != 0 || res.Unacked != 0 {
		t.Fatalf("completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
	if res.Ratio < 1.5 {
		t.Fatalf("peak compression ratio %.2f (%d logical / %d physical), want >= 1.5",
			res.Ratio, res.LogicalRules, res.PhysicalRules)
	}
	if res.HSACounterexamples != 0 {
		t.Fatalf("HSA verification found %d counterexamples", res.HSACounterexamples)
	}
	if res.FalseInstallAcks != 0 || res.FalseRemoveAcks != 0 {
		t.Fatalf("activation audit: %d false install acks, %d false remove acks",
			res.FalseInstallAcks, res.FalseRemoveAcks)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Fatalf("implausible latency percentiles p50=%v p99=%v", res.P50, res.P99)
	}
}

// TestAggregationTraceReplayable: identical opts (including Seed)
// reproduce the resolution trace byte for byte.
func TestAggregationTraceReplayable(t *testing.T) {
	opts := AggregationOpts{K: 4, Seed: 7, Deadline: 30 * time.Second}
	a, err := Aggregation(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Aggregation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace == "" || a.Trace != b.Trace {
		t.Fatalf("trace not seed-replayable: run1 %d bytes, run2 %d bytes",
			len(a.Trace), len(b.Trace))
	}
	// A different seed churns different rules.
	opts.Seed = 8
	c, err := Aggregation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace == a.Trace {
		t.Fatal("trace ignores the seed")
	}
}

// TestAggregationBaselineParity runs the same workload with aggregation
// off: everything still completes, the audit still passes, and the
// physical table is exactly the logical table (ratio 1).
func TestAggregationBaselineParity(t *testing.T) {
	res, err := Aggregation(AggregationOpts{K: 4, Seed: 1, Baseline: true, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Updates {
		t.Fatalf("baseline completed %d/%d updates (failed=%d unacked=%d)",
			res.Completed, res.Updates, res.Failed, res.Unacked)
	}
	if res.Ratio != 1 {
		t.Fatalf("baseline ratio %.2f, want exactly 1", res.Ratio)
	}
	if res.FalseInstallAcks != 0 || res.FalseRemoveAcks != 0 {
		t.Fatalf("baseline audit: %d false install acks, %d false remove acks",
			res.FalseInstallAcks, res.FalseRemoveAcks)
	}
}
