package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"rum/internal/controller"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// RatesResult reproduces §5.2's switch message-rate measurements.
type RatesResult struct {
	PacketOutPerSec float64 // paper: 7006/s
	PacketInPerSec  float64 // paper: 5531/s
	// ModRateWithPacketIns / ModRateQuiet — paper: >= 96 %.
	PacketInModRatio float64
	// ModRateWithPacketOuts(5:1) / ModRateQuiet — paper: >= 87 % (<= 13 %
	// reduction).
	PacketOutModRatio float64
}

// rateRig is a minimal h1—sw—h2 bench around one hardware switch.
type rateRig struct {
	sim  *sim.Sim
	net  *netsim.Network
	sw   *switchsim.Switch
	h1   *netsim.Host
	h2   *netsim.Host
	ctrl transport.Conn

	pktIns   int
	barriers map[uint32]time.Duration
}

func newRateRig(prof switchsim.Profile) *rateRig {
	s := sim.New()
	n := netsim.New(s)
	r := &rateRig{sim: s, net: n, barriers: make(map[uint32]time.Duration)}
	r.sw = switchsim.New("sw", 1, prof, s, n)
	r.h1 = netsim.NewHost(n, "h1")
	r.h2 = netsim.NewHost(n, "h2")
	n.Connect(r.h1, r.h1.Port(), r.sw, 1, 10*time.Microsecond)
	n.Connect(r.sw, 2, r.h2, r.h2.Port(), 10*time.Microsecond)
	ctrlEnd, swEnd := transport.Pipe(s, 100*time.Microsecond)
	r.sw.AttachConn(swEnd)
	r.ctrl = ctrlEnd
	ctrlEnd.SetHandler(func(m of.Message) {
		switch m.MsgType() {
		case of.TypePacketIn:
			r.pktIns++
		case of.TypeBarrierReply:
			r.barriers[m.GetXID()] = s.Now()
		}
	})
	return r
}

// Rates runs all four §5.2 measurements on the HP profile.
func Rates() *RatesResult {
	res := &RatesResult{}
	res.PacketOutPerSec = measurePacketOutRate(20000)
	res.PacketInPerSec = measurePacketInRate(2 * time.Second)
	quiet := measureModRate(false, 0)
	withIns := measureModRate(true, 0)
	withOuts := measureModRate(false, 5)
	res.PacketInModRatio = withIns / quiet
	res.PacketOutModRatio = withOuts / quiet
	return res
}

// measurePacketOutRate issues n PacketOuts and measures the delivery rate
// at the destination (paper: 20000 messages).
func measurePacketOutRate(n int) float64 {
	r := newRateRig(switchsim.ProfileHP5406zl())
	pkt := packet.New(controllerAddr(0), controllerAddr(1), packet.ProtoUDP, 1, 2)
	data := pkt.Marshal()
	for i := 0; i < n; i++ {
		po := &of.PacketOut{BufferID: of.BufferNone, InPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: 2}}, Data: data}
		po.SetXID(uint32(i + 1))
		_ = r.ctrl.Send(po)
	}
	r.sim.Run()
	arr := r.h2.Arrivals()
	if len(arr) == 0 {
		return 0
	}
	return float64(len(arr)) / arr[len(arr)-1].At.Seconds()
}

// measurePacketInRate installs a send-to-controller rule and floods the
// switch beyond its PacketIn capacity.
func measurePacketInRate(window time.Duration) float64 {
	r := newRateRig(switchsim.ProfileHP5406zl())
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 10, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: of.PortController}}}
	fm.SetXID(1)
	_ = r.ctrl.Send(fm)
	r.sim.RunFor(time.Second) // wait out the data-plane sync

	pkt := packet.New(controllerAddr(0), controllerAddr(1), packet.ProtoUDP, 1, 2)
	gen := netsim.NewGenerator(r.h1, []netsim.Flow{
		{ID: 0, Pkt: pkt, Period: 50 * time.Microsecond}, // 20000/s offered
	})
	gen.Start(0)
	start := r.sim.Now()
	startCount := r.pktIns
	r.sim.RunFor(window)
	gen.Stop()
	elapsed := r.sim.Now() - start
	return float64(r.pktIns-startCount) / elapsed.Seconds()
}

// measureModRate measures the FlowMod completion rate, optionally with
// concurrent PacketIn traffic or a PacketOut:mod ratio.
func measureModRate(packetIns bool, packetOutRatio int) float64 {
	prof := switchsim.ProfileHP5406zl()
	prof.SyncPeriod = time.Hour // isolate control-plane processing
	r := newRateRig(prof)
	if packetIns {
		fm := &of.FlowMod{Command: of.FCAdd, Priority: 10, Match: of.MatchAll(),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: of.PortController}}}
		fm.SetXID(1)
		_ = r.ctrl.Send(fm)
		r.sim.RunFor(100 * time.Millisecond)
		pkt := packet.New(controllerAddr(0), controllerAddr(1), packet.ProtoUDP, 1, 2)
		gen := netsim.NewGenerator(r.h1, []netsim.Flow{
			{ID: 0, Pkt: pkt, Period: 4 * time.Millisecond},
		})
		gen.Start(0)
		defer gen.Stop()
	}
	const mods = 500
	start := r.sim.Now()
	pkt := packet.New(controllerAddr(0), controllerAddr(1), packet.ProtoUDP, 1, 2)
	data := pkt.Marshal()
	for i := 0; i < mods; i++ {
		f := controller.FlowSpec{ID: i}
		f.Src, f.Dst = controller.FlowAddr(i)
		fm := controller.AddRule(f, 100, 2)
		fm.SetXID(uint32(100 + i))
		_ = r.ctrl.Send(fm)
		for j := 0; j < packetOutRatio; j++ {
			po := &of.PacketOut{BufferID: of.BufferNone, InPort: of.PortNone,
				Actions: []of.Action{of.ActionOutput{Port: 2}}, Data: data}
			po.SetXID(uint32(1000000 + i*10 + j))
			_ = r.ctrl.Send(po)
		}
	}
	br := &of.BarrierRequest{}
	br.SetXID(99999)
	_ = r.ctrl.Send(br)
	for r.sim.Now() < start+10*time.Minute {
		r.sim.RunFor(5 * time.Millisecond)
		if _, ok := r.barriers[99999]; ok {
			break
		}
	}
	at, ok := r.barriers[99999]
	if !ok {
		panic("mod rate barrier never answered")
	}
	return mods / (at - start).Seconds()
}

// controllerAddr returns a test address outside the flow ranges.
func controllerAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 200, 0, byte(i + 1)})
}

// Render prints the rates summary against the paper's numbers.
func (r *RatesResult) Render() string {
	var b strings.Builder
	b.WriteString("§5.2 — switch message rates\n")
	fmt.Fprintf(&b, "  PacketOut rate:                 %7.0f /s   (paper: 7006/s)\n", r.PacketOutPerSec)
	fmt.Fprintf(&b, "  PacketIn rate:                  %7.0f /s   (paper: 5531/s)\n", r.PacketInPerSec)
	fmt.Fprintf(&b, "  mod rate with PacketIns:        %7.1f %%    (paper: >= 96%%)\n", 100*r.PacketInModRatio)
	fmt.Fprintf(&b, "  mod rate with 5:1 PacketOuts:   %7.1f %%    (paper: >= 87%%)\n", 100*r.PacketOutModRatio)
	return b.String()
}
