package experiments

import (
	"testing"

	"rum/internal/core"
)

// TestOverloadChurnPolicies drives the congested-control-channel
// workload under every overload policy and checks the robustness
// contract: no future wedges, no cohort false-acks, every shed is typed
// ErrOverloaded (FailedOther stays zero — there are no channel kills in
// this scenario), and the accounting closes.
func TestOverloadChurnPolicies(t *testing.T) {
	for _, policy := range []core.OverloadPolicy{core.OverloadBlock, core.OverloadShed, core.OverloadDegrade} {
		res, err := OverloadChurn(OverloadChurnOpts{Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		t.Logf("%s", res)
		if res.Wedged != 0 {
			t.Errorf("%s: %d wedged futures; the overload layer must fail fast, not lose updates", policy, res.Wedged)
		}
		if res.FalseAcks != 0 {
			t.Errorf("%s: %d false acks over a lossless congested link", policy, res.FalseAcks)
		}
		if res.FailedOther != 0 {
			t.Errorf("%s: %d failures typed something other than ErrOverloaded", policy, res.FailedOther)
		}
		if res.Shed == 0 {
			t.Errorf("%s: congestion collapse never tripped the outbox bound — the scenario is not exercising it", policy)
		}
		if got := res.Acked + res.Shed + res.FailedOther + res.SendFailed + res.Wedged; got != res.Updates {
			t.Errorf("%s: accounting %d != %d updates", policy, got, res.Updates)
		}
		for tech, st := range res.PerTechnique {
			if st.FalseAcks != 0 {
				t.Errorf("%s: technique %s false-acked %d updates", policy, tech, st.FalseAcks)
			}
		}
		if res.MaxOutboxHighWater <= 0 {
			t.Errorf("%s: outbox high-water not recorded", policy)
		}
	}
}

// TestOverloadChurnDeterministicReplay pins the replay contract: equal
// opts reproduce the per-update transcript byte for byte, trace pacing
// and shed decisions included.
func TestOverloadChurnDeterministicReplay(t *testing.T) {
	run := func() string {
		res, err := OverloadChurn(OverloadChurnOpts{Policy: core.OverloadShed, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same opts produced different overload transcripts")
	}
}
