package planner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rum/internal/core"
	"rum/internal/flowtable"
	"rum/internal/hsa"
	"rum/internal/of"
)

// Exec is one plan execution in progress. It is pump-driven: nothing
// blocks on futures, so the same executor works under the simulated
// clock (call Pump between Sim.RunFor slices) and under a wall clock
// (Run drives the pump loop).
type Exec struct {
	p    *Planner
	plan *Plan

	mu   sync.Mutex
	segs []*segExec
	// model is the confirmed network state: per-switch flow tables the
	// verifier's "old" side reads. rules caches model snapshots.
	model map[string]*flowtable.Table
	rules map[string][]hsa.Rule
	// scratch mirrors rules except for the switches a wave under
	// verification touches — the verifier's "new" side, maintained
	// incrementally so verifyStage never copies the whole fabric map.
	scratch map[string][]hsa.Rule
	// planMatches is every FlowMod match in the plan; witness caches are
	// primed with it so per-wave verification never rescans the model
	// (the model only ever evolves by folding these FlowMods).
	planMatches []of.Match
	// matchVocab is the deduplicated union of the model's rule matches
	// and planMatches — the complete match vocabulary any verified state
	// can contain. Rebuilt lazily; invalidated by re-plans.
	matchVocab []of.Match

	events     []Event
	eventCh    chan Event
	waves      []WaveStat
	verifyWall time.Duration
	replans    int
	err        error
	finished   bool
	started    time.Duration
}

type segExec struct {
	seg   *Segment
	index int
	stage int // next unconfirmed stage; == len(Stages) when done
	// released is true once the current stage's ops are verified & sent.
	released   bool
	releasedAt time.Duration
	verifyCost time.Duration
	numReplans int
	ops        []*opExec
	// wc memoizes the region's witness samples per table version across
	// this segment's waves (most tables are unchanged wave to wave).
	wc *hsa.WitnessCache
}

type opExec struct {
	op     Op
	xid    uint32
	handle *core.UpdateHandle
	sent   bool
	done   bool
}

// Execute starts a plan: it snapshots the network model, verifies and
// releases every segment's first wave, and returns. Drive completion
// with Pump (simulated clocks) or Run (wall clocks).
func (p *Planner) Execute(plan *Plan) (*Exec, error) {
	x := &Exec{
		p:       p,
		plan:    plan,
		model:   make(map[string]*flowtable.Table),
		rules:   make(map[string][]hsa.Rule),
		scratch: make(map[string][]hsa.Rule),
		eventCh: make(chan Event, p.cfg.EventBuffer),
		started: p.cfg.Clock.Now(),
	}
	// Seed the model with every fabric switch (the verifier traces
	// through switches no op touches) plus every op target.
	for sw := range p.cfg.Ports {
		x.syncModel(sw)
	}
	for _, seg := range plan.Segments {
		for _, st := range seg.Stages {
			for _, op := range st.Ops {
				if _, ok := x.model[op.Switch]; !ok {
					x.syncModel(op.Switch)
				}
				x.planMatches = append(x.planMatches, op.FM.Match)
			}
		}
	}
	x.segs = make([]*segExec, len(plan.Segments))
	for i := range plan.Segments {
		x.segs[i] = &segExec{seg: &plan.Segments[i], index: i}
	}
	x.mu.Lock()
	x.pumpLocked()
	x.mu.Unlock()
	return x, nil
}

// syncModel (re)builds one switch's model table from the authoritative
// State snapshot. Caller holds no lock or the lock; flowtable has its
// own locking.
func (x *Exec) syncModel(sw string) {
	t := flowtable.New()
	for _, r := range x.p.cfg.State(sw) {
		t.Apply(&of.FlowMod{Command: of.FCAdd, Priority: r.Priority, Match: r.Match,
			BufferID: of.BufferNone, OutPort: of.PortNone, Actions: r.Actions})
	}
	x.model[sw] = t
	x.rules[sw] = t.Rules()
	x.scratch[sw] = x.rules[sw]
}

// Pump advances the execution: polls futures, confirms waves, verifies
// and releases successor waves, and re-plans after typed failures. It
// returns true when the plan has settled (check Err for the outcome).
func (x *Exec) Pump() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.pumpLocked()
	return x.finished
}

func (x *Exec) pumpLocked() {
	if x.finished {
		return
	}
	for {
		progress := false
		for _, se := range x.segs {
			if x.advance(se) {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	done := x.err != nil
	if x.err == nil {
		done = true
		for _, se := range x.segs {
			if !x.segDone(se) {
				done = false
				break
			}
		}
	}
	if done {
		x.finished = true
		x.emit(Event{Kind: EventPlanDone, Err: x.err})
	}
}

func (x *Exec) segDone(se *segExec) bool {
	return se.stage >= len(se.seg.Stages) && !se.released && len(se.ops) == 0
}

// activeSegs counts segments that have begun but not finished — the
// quantity Config.Window bounds.
func (x *Exec) activeSegs() int {
	n := 0
	for _, se := range x.segs {
		if x.segDone(se) {
			continue
		}
		if se.stage > 0 || se.released || len(se.ops) > 0 {
			n++
		}
	}
	return n
}

// advance moves one segment as far as it can; it reports whether any
// state changed (so the pump loop re-runs until a fixed point).
func (x *Exec) advance(se *segExec) bool {
	if x.err != nil || x.segDone(se) {
		return false
	}
	// A repair wave (re-issued rules for a restarted switch, created
	// between regular waves) must confirm before anything else releases.
	if !se.released && len(se.ops) > 0 {
		return x.poll(se)
	}
	// Release the next wave once dependencies (and the segment window)
	// allow.
	if !se.released {
		if se.stage == 0 && x.p.cfg.Window > 0 && x.activeSegs() >= x.p.cfg.Window {
			return false
		}
		for _, dep := range x.plan.after[se.index] {
			if !x.segDone(x.segs[dep]) {
				return false
			}
		}
		stage := &se.seg.Stages[se.stage]
		if !x.p.cfg.SkipVerify {
			begin := time.Now()
			err := x.verifyStage(se, stage)
			cost := time.Since(begin)
			se.verifyCost = cost
			x.verifyWall += cost
			if err != nil {
				x.err = fmt.Errorf("planner: wave %d of segment %q rejected: %w", se.stage, se.seg.Name, err)
				x.emit(Event{Kind: EventVerifyFailed, Segment: se.seg.Name, Stage: se.stage, Err: err})
				return true
			}
		}
		se.ops = make([]*opExec, len(stage.Ops))
		for i := range stage.Ops {
			se.ops[i] = &opExec{op: stage.Ops[i]}
			x.issue(se.ops[i])
		}
		se.released = true
		se.releasedAt = x.p.cfg.Clock.Now()
		se.numReplans = 0
		x.emit(Event{Kind: EventStageReleased, Segment: se.seg.Name, Stage: se.stage,
			Detail: fmt.Sprintf("%d ops", len(stage.Ops))})
		return true
	}
	// Poll the in-flight wave.
	return x.poll(se)
}

// poll drives the segment's in-flight ops. When every op has confirmed
// it folds the wave into the model; a stage-released wave additionally
// records attribution and advances the stage cursor (a repair wave only
// restores the model's invariants).
func (x *Exec) poll(se *segExec) bool {
	progress := false
	allDone := true
	for _, oe := range se.ops {
		if oe.done {
			continue
		}
		if !oe.sent {
			// A previous send failed on a dead channel; retry until the
			// switch reattaches.
			x.issue(oe)
			if !oe.sent {
				allDone = false
				continue
			}
			progress = true
		}
		res, ok := oe.handle.Result()
		if !ok {
			allDone = false
			continue
		}
		if res.Outcome != core.OutcomeFailed {
			oe.done = true
			progress = true
			continue
		}
		switch {
		case errors.Is(res.Err, core.ErrChannelLost), errors.Is(res.Err, core.ErrSwitchRestarted):
			x.replanSwitch(se, oe.op.Switch, res.Err)
			progress = true
			allDone = false
		default:
			x.err = fmt.Errorf("planner: %s rejected op in wave %d of segment %q: %w",
				oe.op.Switch, se.stage, se.seg.Name, res.Err)
			return true
		}
	}
	if !allDone {
		return progress
	}
	// Wave confirmed: fold it into the model and record attribution.
	now := x.p.cfg.Clock.Now()
	for _, oe := range se.ops {
		x.model[oe.op.Switch].Apply(oe.op.FM)
		x.rules[oe.op.Switch] = x.model[oe.op.Switch].Rules()
		x.scratch[oe.op.Switch] = x.rules[oe.op.Switch]
	}
	if se.released {
		x.waves = append(x.waves, WaveStat{
			Segment: se.seg.Name, Stage: se.stage, Ops: len(se.ops),
			Released: se.releasedAt, Confirmed: now,
			VerifyWall: se.verifyCost, Replans: se.numReplans,
		})
		x.emit(Event{Kind: EventStageConfirmed, Segment: se.seg.Name, Stage: se.stage})
		se.stage++
		se.released = false
		if se.stage >= len(se.seg.Stages) {
			x.emit(Event{Kind: EventSegmentDone, Segment: se.seg.Name})
		}
	}
	se.ops = nil
	return true
}

// issue allocates an xid, registers the ack future (before sending, per
// the Watch contract), and sends. On send failure the op stays unsent
// with its watch cancelled; a later pump retries with a fresh xid.
func (x *Exec) issue(oe *opExec) {
	xid := x.p.cfg.NewXID()
	fm := oe.op.FM
	fm.SetXID(xid)
	oe.xid = xid
	oe.handle = x.p.cfg.Watch(oe.op.Switch, xid)
	if err := x.p.cfg.Send(oe.op.Switch, fm); err != nil {
		oe.handle.Cancel()
		oe.handle = nil
		oe.sent = false
		return
	}
	oe.sent = true
}

// replanSwitch handles a typed channel-loss/restart failure: it re-reads
// the switch's authoritative FIB and reconciles every op this execution
// has in flight or already confirmed on that switch. Ops whose rules
// survived are recognized — never re-sent, so nothing double-installs —
// and ops whose rules are missing (a restart wipes the FIB) are
// re-issued.
func (x *Exec) replanSwitch(se *segExec, sw string, cause error) {
	x.replans++
	if se != nil {
		se.numReplans++
	}
	x.syncModel(sw)
	// The authoritative re-read can surface rules the primed witness sets
	// never saw; drop every segment's cache (and the match vocabulary) so
	// the next verify re-primes against the reconciled model.
	x.matchVocab = nil
	for _, other := range x.segs {
		other.wc = nil
	}
	table := x.model[sw]
	repaired := 0
	// Current wave of every segment: reconcile in-flight ops on sw.
	for _, other := range x.segs {
		for _, oe := range other.ops {
			if oe.op.Switch != sw {
				continue
			}
			if oe.done {
				// Confirmed, but a (second) restart may have wiped the
				// rule since; re-open the op if its effect is gone.
				if applied(table, oe.op.FM) {
					continue
				}
				oe.done = false
				oe.handle = nil
				oe.sent = false
			}
			if oe.handle != nil {
				if res, ok := oe.handle.Result(); !ok || res.Outcome == core.OutcomeFailed {
					oe.handle.Cancel()
					oe.handle = nil
					oe.sent = false
				} else {
					continue // resolved positively in the meantime
				}
			}
			if applied(table, oe.op.FM) {
				// The FlowMod landed but its ack was lost with the
				// channel. Do not re-send.
				oe.done = true
				continue
			}
			x.issue(oe)
			repaired++
		}
		// Earlier, already-confirmed waves of this segment: a restart may
		// have wiped their rules. Re-issue the missing ones as a repair
		// wave — appended to the segment's op list, which must confirm
		// before the segment releases anything further.
		limit := other.stage
		for si := 0; si < limit; si++ {
			for _, op := range other.seg.Stages[si].Ops {
				if op.Switch != sw || applied(table, op.FM) {
					continue
				}
				if inFlight(other.ops, op.FM) {
					continue // already being repaired by an earlier replan
				}
				oe := &opExec{op: op}
				x.issue(oe)
				other.ops = append(other.ops, oe)
				repaired++
			}
		}
	}
	ev := Event{Kind: EventReplan,
		Detail: fmt.Sprintf("switch %s: %d ops re-issued", sw, repaired), Err: cause}
	if se != nil {
		ev.Segment, ev.Stage = se.seg.Name, se.stage
	}
	x.emit(ev)
}

// Resync reconciles the execution with a switch's authoritative state
// after an external recovery event (reconnect, restart + re-bootstrap).
// It covers the case the ack futures cannot signal: a switch that lost
// its FIB while the planner had no op in flight on it. Already-confirmed
// rules that vanished are re-issued as a repair wave; rules that
// survived are left alone.
func (x *Exec) Resync(sw string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.finished {
		return
	}
	x.replanSwitch(nil, sw, nil)
	x.pumpLocked()
}

// inFlight reports whether the op (identified by its FlowMod pointer —
// stage ops share pointers with the compiled plan) is already tracked.
func inFlight(ops []*opExec, fm *of.FlowMod) bool {
	for _, oe := range ops {
		if oe.op.FM == fm {
			return true
		}
	}
	return false
}

// applied reports whether the FlowMod's effect is present in the table:
// for adds, the exact rule (match, priority, actions); for strict
// deletes, the absence of the rule.
func applied(t *flowtable.Table, fm *of.FlowMod) bool {
	return RuleApplied(t, fm)
}

// RuleApplied reports whether fm's effect is present in a re-read FIB
// model: for adds, the exact rule (match, priority, actions); for
// deletes, the absence of the rule. It is the resync predicate this
// executor uses after a fault, exported so the cluster's crash-rescue
// path can diff a dead member's journaled intents against the switch's
// actual flow table with identical semantics.
func RuleApplied(t *flowtable.Table, fm *of.FlowMod) bool {
	e := t.Find(fm.Match, fm.Priority)
	switch fm.Command {
	case of.FCDelete, of.FCDeleteStrict:
		return e == nil
	default:
		return e != nil && of.ActionsEqual(e.Actions, fm.Actions)
	}
}

// witnessMatches returns the complete match vocabulary: the distinct
// rule matches present in the current model plus every plan FlowMod
// match. Fabrics hold few distinct matches, so priming per-region
// witness caches from this list is far cheaper than scanning the
// model's rules once per segment.
func (x *Exec) witnessMatches() []of.Match {
	if x.matchVocab != nil {
		return x.matchVocab
	}
	seen := make(map[of.Match]struct{})
	add := func(m of.Match) {
		if _, ok := seen[m]; !ok {
			seen[m] = struct{}{}
			x.matchVocab = append(x.matchVocab, m)
		}
	}
	for _, rules := range x.rules {
		for i := range rules {
			add(rules[i].Match)
		}
	}
	for _, m := range x.planMatches {
		add(m)
	}
	return x.matchVocab
}

// verifyStage checks the wave's transient states: old = the confirmed
// model, new = the model with the wave applied.
func (x *Exec) verifyStage(se *segExec, stage *Stage) error {
	// Stage each touched switch on a private copy of its rule slice —
	// cheaper than rebuilding a flowtable per wave, and it preserves the
	// share-by-reference invariant the witness cache keys on.
	staged := make(map[string][]hsa.Rule)
	for _, op := range stage.Ops {
		tbl, ok := staged[op.Switch]
		if !ok {
			tbl = append([]hsa.Rule(nil), x.rules[op.Switch]...)
		}
		tbl, ok = applyRules(tbl, op.FM)
		if !ok {
			// A FlowMod command outside the planner's add/strict-delete
			// vocabulary (hand-built segment): fall back to full
			// flowtable semantics for this switch.
			t := flowtable.New()
			for _, r := range x.rules[op.Switch] {
				t.Apply(&of.FlowMod{Command: of.FCAdd, Priority: r.Priority, Match: r.Match,
					BufferID: of.BufferNone, OutPort: of.PortNone, Actions: r.Actions})
			}
			for _, redo := range stage.Ops {
				if redo.Switch == op.Switch {
					t.Apply(redo.FM)
				}
			}
			tbl = t.Rules()
		}
		staged[op.Switch] = tbl
	}
	if se.wc == nil {
		se.wc = hsa.NewWitnessCache(se.seg.Region)
		// Every later model state this execution sees is the current
		// snapshot plus folds of the plan's own FlowMods, so the witness
		// set can be fixed now and per-wave model scans skipped.
		se.wc.PrimeMatches(x.witnessMatches())
	}
	// Swap the staged slices into the scratch mirror for the duration of
	// the check, then restore the rules↔scratch sharing.
	for sw, tbl := range staged {
		x.scratch[sw] = tbl
	}
	// The new side differs from the old only by this wave's FlowMods, so
	// hand the cache their matches instead of letting it scan the staged
	// tables (fresh slices — a guaranteed cache miss every wave).
	changed := make([]of.Match, 0, len(stage.Ops))
	for _, op := range stage.Ops {
		changed = append(changed, op.FM.Match)
	}
	oldState := &hsa.NetState{Tables: x.rules, Ports: x.p.cfg.Ports}
	newState := &hsa.NetState{Tables: x.scratch, Ports: x.p.cfg.Ports}
	err := se.wc.VerifyTransientDelta(oldState, newState, changed)
	for sw := range staged {
		x.scratch[sw] = x.rules[sw]
	}
	return err
}

// applyRules applies a planner FlowMod to a staged rule slice with
// flowtable add-replaces / strict-delete semantics. ok is false for
// commands it does not model (caller falls back to a real flowtable).
func applyRules(rules []hsa.Rule, fm *of.FlowMod) ([]hsa.Rule, bool) {
	norm := fm.Match.Normalize()
	switch fm.Command {
	case of.FCAdd:
		for i := range rules {
			if rules[i].Priority == fm.Priority && rules[i].Match == norm {
				rules[i].Actions = append([]of.Action(nil), fm.Actions...)
				return rules, true
			}
		}
		return append(rules, hsa.Rule{Priority: fm.Priority, Match: norm,
			Actions: append([]of.Action(nil), fm.Actions...)}), true
	case of.FCDeleteStrict:
		out := rules[:0]
		for _, r := range rules {
			if !(r.Priority == fm.Priority && r.Match == norm) {
				out = append(out, r)
			}
		}
		return out, true
	default:
		return rules, false
	}
}

func (x *Exec) emit(ev Event) {
	ev.At = x.p.cfg.Clock.Now()
	x.events = append(x.events, ev)
	select {
	case x.eventCh <- ev:
	default: // never block the pump on a slow consumer
	}
}

// Events streams execution events. The channel is buffered; events that
// would block are dropped from the stream (EventLog keeps everything).
func (x *Exec) Events() <-chan Event { return x.eventCh }

// EventLog snapshots every event emitted so far.
func (x *Exec) EventLog() []Event {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]Event(nil), x.events...)
}

// Done reports whether the plan has settled.
func (x *Exec) Done() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.finished
}

// Err returns the failure that aborted the plan, or nil.
func (x *Exec) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// Waves returns per-wave latency attribution for confirmed waves.
func (x *Exec) Waves() []WaveStat {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]WaveStat(nil), x.waves...)
}

// VerifyWall is the cumulative wall-clock time spent in HSA
// verification.
func (x *Exec) VerifyWall() time.Duration {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.verifyWall
}

// Replans counts re-plan rounds triggered by typed failures.
func (x *Exec) Replans() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.replans
}

// Wedged counts in-flight ops with no resolution — zero once the plan
// settles cleanly; nonzero at a deadline means futures were lost.
func (x *Exec) Wedged() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for _, se := range x.segs {
		for _, oe := range se.ops {
			if oe.done || !oe.sent {
				continue
			}
			if _, ok := oe.handle.Result(); !ok {
				n++
			}
		}
	}
	return n
}

// Run drives the pump under a wall clock until the plan settles or ctx
// expires. poll bounds the idle interval between pumps (default 1ms).
func (x *Exec) Run(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = time.Millisecond
	}
	for {
		if x.Pump() {
			return x.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
