package planner

import (
	"net/netip"
	"strings"
	"testing"

	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

func flowMatch(srcLo, dstLo byte) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, 0, srcLo}))
	m.SetNWDst(netip.AddrFrom4([4]byte{10, 1, 0, dstLo}))
	return m
}

func TestBuildSegmentWaveShape(t *testing.T) {
	// Triangle migration: s1→s3 direct becomes s1→s2→s3.
	seg, err := BuildSegment(PathChange{
		Name: "migrate", Match: flowMatch(1, 1), Priority: 100,
		Old: []PathHop{{"s1", 3}, {"s3", 1}},
		New: []PathHop{{"s1", 2}, {"s2", 2}, {"s3", 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (add at s2, flip at s1): %+v", len(seg.Stages), seg.Stages)
	}
	add := seg.Stages[0]
	if len(add.Ops) != 1 || add.Ops[0].Switch != "s2" || add.Ops[0].FM.Command != of.FCAdd {
		t.Fatalf("stage 0 should add at s2, got %+v", add.Ops)
	}
	flip := seg.Stages[1]
	if len(flip.Ops) != 1 || flip.Ops[0].Switch != "s1" {
		t.Fatalf("stage 1 should flip s1, got %+v", flip.Ops)
	}
	if got := flip.Ops[0].FM.Actions[0].(of.ActionOutput).Port; got != 2 {
		t.Fatalf("s1 flip should output to port 2, got %d", got)
	}
	if seg.Region.Ingress != "s1" {
		t.Fatalf("region ingress = %q, want s1", seg.Region.Ingress)
	}
}

func TestBuildSegmentFlipOrderAndDeletes(t *testing.T) {
	// Old a→b→c→dst, new a→d→c→dst: add at d, flip c then a
	// (downstream first), delete at b last.
	seg, err := BuildSegment(PathChange{
		Name: "reroute", Match: flowMatch(2, 2), Priority: 100,
		Old: []PathHop{{"a", 2}, {"b", 2}, {"c", 1}},
		New: []PathHop{{"a", 3}, {"d", 2}, {"c", 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// c's output port is unchanged, so there is no flip for it: stages are
	// [add d] [flip a] [delete b].
	if len(seg.Stages) != 3 {
		t.Fatalf("stages = %d, want 3: %+v", len(seg.Stages), seg.Stages)
	}
	if sw := seg.Stages[0].Ops[0].Switch; sw != "d" {
		t.Fatalf("stage 0 at %q, want d", sw)
	}
	if sw := seg.Stages[1].Ops[0].Switch; sw != "a" {
		t.Fatalf("stage 1 at %q, want a", sw)
	}
	last := seg.Stages[2].Ops[0]
	if last.Switch != "b" || last.FM.Command != of.FCDeleteStrict {
		t.Fatalf("last stage should strict-delete at b, got %+v", last)
	}
}

func TestBuildSegmentMultipleFlipsDownstreamFirst(t *testing.T) {
	// Every hop changes its output: flips must run in reverse path order.
	seg, err := BuildSegment(PathChange{
		Name: "allflip", Match: flowMatch(3, 3), Priority: 100,
		Old: []PathHop{{"a", 2}, {"b", 2}, {"c", 1}},
		New: []PathHop{{"a", 4}, {"b", 5}, {"c", 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, st := range seg.Stages {
		if len(st.Ops) != 1 {
			t.Fatalf("flip stages must be singleton, got %+v", st.Ops)
		}
		order = append(order, st.Ops[0].Switch)
	}
	if got := strings.Join(order, ","); got != "c,b,a" {
		t.Fatalf("flip order = %s, want c,b,a", got)
	}
}

func TestBuildSegmentErrors(t *testing.T) {
	cases := []struct {
		name string
		pc   PathChange
	}{
		{"empty new path", PathChange{Name: "x", Old: []PathHop{{"a", 1}}}},
		{"ingress moves", PathChange{Name: "x",
			Old: []PathHop{{"a", 1}}, New: []PathHop{{"b", 1}}}},
		{"duplicate switch", PathChange{Name: "x",
			New: []PathHop{{"a", 1}, {"b", 1}, {"a", 2}}}},
		{"no-op", PathChange{Name: "x",
			Old: []PathHop{{"a", 1}}, New: []PathHop{{"a", 1}}}},
	}
	for _, tc := range cases {
		if _, err := BuildSegment(tc.pc); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPlanSegmentsSerializesOverlaps(t *testing.T) {
	mk := func(name string, m of.Match) Segment {
		return Segment{Name: name, Region: hsa.Region{Ingress: "a", Match: m},
			Stages: []Stage{{Ops: []Op{{Switch: "a", FM: &of.FlowMod{Command: of.FCAdd, Match: m}}}}}}
	}
	host := of.MatchAll()
	host.Wildcards &^= of.WcDLType
	host.DLType = packet.EtherTypeIPv4
	host.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, 0, 9}))

	p := &Planner{}
	plan, err := p.PlanSegments([]Segment{
		mk("f1", flowMatch(1, 1)),
		mk("f2", flowMatch(2, 2)),
		mk("host", host), // overlaps any 10.0.0.9-sourced flow
		mk("f9", flowMatch(9, 9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.after[0]) != 0 || len(plan.after[1]) != 0 {
		t.Fatalf("disjoint flows must have no deps: %v", plan.after)
	}
	if len(plan.after[2]) != 0 {
		t.Fatalf("host segment overlaps no earlier segment: %v", plan.after[2])
	}
	// f9 matches src 10.0.0.9 which the host region covers.
	if len(plan.after[3]) != 1 || plan.after[3][0] != 2 {
		t.Fatalf("f9 must serialize after host: %v", plan.after[3])
	}
	if plan.Waves() != 4 || plan.Ops() != 4 {
		t.Fatalf("waves=%d ops=%d, want 4/4", plan.Waves(), plan.Ops())
	}
}
