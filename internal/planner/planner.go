// Package planner turns RUM's reliable acknowledgments into an engine
// for consistent network updates. A policy change is decomposed into
// segments — independent header-space regions, in the spirit of
// ez-Segway's segment scheduling — and each segment into an ordered list
// of waves (stages): add-before-remove per flow segment, downstream
// flips before upstream ones, deletions last. A wave is released only
// when every prerequisite wave's AwaitAck futures have confirmed, so on
// switches configured with a reliable technique the ordering holds in
// the data plane, not just on the control channel.
//
// Before releasing a wave the planner verifies, with internal/hsa, that
// every transient mix of pre- and post-wave forwarding state is
// loop-free and blackhole-free for the segment's region. And it survives
// the fault layer mid-transition: a future resolving with
// ErrChannelLost or ErrSwitchRestarted triggers a re-plan from the
// switch's actual FIB snapshot — already-applied rules are recognized
// and not double-installed, lost rules are re-issued — instead of
// wedging the update.
package planner

import (
	"fmt"
	"time"

	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/sim"
)

// Op is one FlowMod of a wave.
type Op struct {
	Switch string
	FM     *of.FlowMod
}

// Stage is one wave: ops released together, confirmed together.
type Stage struct {
	Ops []Op
}

// Segment is an independently schedulable unit of a plan: the waves that
// move one header-space region, released in order.
type Segment struct {
	Name   string
	Region hsa.Region
	Stages []Stage
}

// PathHop is one switch on a forwarding path with its output port toward
// the next hop (or the egress port on the last hop).
type PathHop struct {
	Switch  string
	OutPort uint16
}

// PathChange describes migrating one region from an old switch path to a
// new one. Both paths start at the same ingress switch.
type PathChange struct {
	Name     string
	Match    of.Match
	Priority uint16
	Old, New []PathHop
}

// BuildSegment compiles a path change into its wave schedule:
//
//	wave 1: add rules at switches only on the new path (inert until the
//	        upstream flip, so they can install concurrently);
//	waves:  flip switches whose output changes, downstream first — the
//	        ingress flip is always the last flip;
//	last:   strict-delete rules at switches only on the old path.
func BuildSegment(pc PathChange) (Segment, error) {
	if len(pc.New) == 0 {
		return Segment{}, fmt.Errorf("planner: path change %q has no new path", pc.Name)
	}
	ingress := pc.New[0].Switch
	if len(pc.Old) > 0 && pc.Old[0].Switch != ingress {
		return Segment{}, fmt.Errorf("planner: path change %q moves ingress %s→%s; split it into two changes",
			pc.Name, pc.Old[0].Switch, ingress)
	}
	oldOut := make(map[string]uint16, len(pc.Old))
	for _, h := range pc.Old {
		oldOut[h.Switch] = h.OutPort
	}
	newOut := make(map[string]uint16, len(pc.New))
	for _, h := range pc.New {
		if _, dup := newOut[h.Switch]; dup {
			return Segment{}, fmt.Errorf("planner: path change %q visits %s twice", pc.Name, h.Switch)
		}
		newOut[h.Switch] = h.OutPort
	}

	seg := Segment{
		Name:   pc.Name,
		Region: hsa.Region{Ingress: ingress, Match: pc.Match},
	}
	var adds Stage
	for _, h := range pc.New {
		if _, onOld := oldOut[h.Switch]; !onOld {
			adds.Ops = append(adds.Ops, Op{Switch: h.Switch, FM: addRule(pc, h.OutPort)})
		}
	}
	if len(adds.Ops) > 0 {
		seg.Stages = append(seg.Stages, adds)
	}
	// Flips, downstream first: an upstream flip only commits traffic to
	// hops that are already in their final state.
	for i := len(pc.New) - 1; i >= 0; i-- {
		h := pc.New[i]
		if old, onOld := oldOut[h.Switch]; onOld && old != h.OutPort {
			seg.Stages = append(seg.Stages, Stage{Ops: []Op{
				{Switch: h.Switch, FM: addRule(pc, h.OutPort)},
			}})
		}
	}
	var dels Stage
	for _, h := range pc.Old {
		if _, onNew := newOut[h.Switch]; !onNew {
			fm := &of.FlowMod{Command: of.FCDeleteStrict, Priority: pc.Priority,
				Match: pc.Match, BufferID: of.BufferNone, OutPort: of.PortNone}
			dels.Ops = append(dels.Ops, Op{Switch: h.Switch, FM: fm})
		}
	}
	if len(dels.Ops) > 0 {
		seg.Stages = append(seg.Stages, dels)
	}
	if len(seg.Stages) == 0 {
		return Segment{}, fmt.Errorf("planner: path change %q is a no-op", pc.Name)
	}
	return seg, nil
}

func addRule(pc PathChange, outPort uint16) *of.FlowMod {
	return &of.FlowMod{Command: of.FCAdd, Priority: pc.Priority, Match: pc.Match,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: outPort}}}
}

// Plan is a compiled update: segments plus the serialization edges
// between segments whose regions overlap (disjoint segments proceed
// concurrently; overlapping ones run in submission order).
type Plan struct {
	Segments []Segment
	// after[j] lists segment indices that must complete before segment j
	// may release its first wave.
	after [][]int
}

// Waves returns the total wave count across segments.
func (p *Plan) Waves() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Stages)
	}
	return n
}

// Ops returns the total op count across segments.
func (p *Plan) Ops() int {
	n := 0
	for _, s := range p.Segments {
		for _, st := range s.Stages {
			n += len(st.Ops)
		}
	}
	return n
}

// Config wires a Planner into a deployment. Send and NewXID are
// typically controller.Client.Send and controller.Client.NewXID; State
// reads back a switch's FIB snapshot (authoritative rules) for planning
// and re-planning; Ports is the data-plane adjacency HSA traces follow.
type Config struct {
	// RUM provides the ack futures that gate wave release.
	RUM *core.RUM
	// Watch overrides where ack futures are registered; it defaults to
	// RUM.Watch. A sharded multi-proxy deployment sets it to
	// cluster.Cluster.Watch so each op's future lands on the member
	// owning its switch — waves spanning shards then release on
	// aggregated cross-proxy confirmations, and a proxy crash surfaces
	// as typed ShardError failures the re-plan path already handles.
	// When Watch is set, RUM may be nil.
	Watch func(sw string, xid uint32) *core.UpdateHandle
	// Clock timestamps events and wave latency attribution.
	Clock sim.Clock
	// Send transmits one FlowMod to a switch. The planner retries sends
	// that fail (a dead control channel) on subsequent pumps.
	Send func(sw string, fm *of.FlowMod) error
	// NewXID allocates transaction ids outside RUM's reserved range.
	NewXID func() uint32
	// State snapshots the rules currently installed on a switch. It
	// seeds the planner's network model and is re-read after channel
	// loss or switch restart to re-plan from actual state.
	State func(sw string) []hsa.Rule
	// Ports maps each switch's output ports to their link peers; ports
	// absent from the map are egress (host) ports.
	Ports map[string]map[uint16]hsa.PortPeer
	// Window caps concurrently in-progress segments (0 = unlimited): a
	// segment releases its first wave only while fewer than Window
	// segments are mid-update — back-pressure for switch control planes.
	Window int
	// SkipVerify disables HSA transient verification (benchmarking the
	// execution path in isolation).
	SkipVerify bool
	// EventBuffer sizes the Events channel (default 256).
	EventBuffer int
}

// Planner compiles and executes consistent-update plans.
type Planner struct {
	cfg Config
}

// New validates the wiring and returns a Planner.
func New(cfg Config) (*Planner, error) {
	switch {
	case cfg.RUM == nil && cfg.Watch == nil:
		return nil, fmt.Errorf("planner: Config.RUM or Config.Watch is required")
	case cfg.Clock == nil:
		return nil, fmt.Errorf("planner: Config.Clock is required")
	case cfg.Send == nil:
		return nil, fmt.Errorf("planner: Config.Send is required")
	case cfg.NewXID == nil:
		return nil, fmt.Errorf("planner: Config.NewXID is required")
	case cfg.State == nil:
		return nil, fmt.Errorf("planner: Config.State is required")
	}
	if cfg.EventBuffer == 0 {
		cfg.EventBuffer = 256
	}
	if cfg.Watch == nil {
		cfg.Watch = cfg.RUM.Watch
	}
	return &Planner{cfg: cfg}, nil
}

// Plan compiles path changes into a dependency-ordered plan.
func (p *Planner) Plan(changes []PathChange) (*Plan, error) {
	segs := make([]Segment, 0, len(changes))
	for _, pc := range changes {
		seg, err := BuildSegment(pc)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
	}
	return p.PlanSegments(segs)
}

// PlanSegments assembles pre-built segments (e.g. guarded installs whose
// stages are written out explicitly) into a plan, serializing segments
// with overlapping regions.
func (p *Planner) PlanSegments(segs []Segment) (*Plan, error) {
	plan := &Plan{Segments: segs, after: make([][]int, len(segs))}
	for j := 1; j < len(segs); j++ {
		for i := 0; i < j; i++ {
			if hsa.Overlaps(segs[i].Region.Match, segs[j].Region.Match) {
				plan.after[j] = append(plan.after[j], i)
			}
		}
	}
	return plan, nil
}

// EventKind tags planner events.
type EventKind string

const (
	// EventStageReleased fires when a wave's ops are verified and sent.
	EventStageReleased EventKind = "stage-released"
	// EventStageConfirmed fires when every op of a wave has a positive
	// acknowledgment.
	EventStageConfirmed EventKind = "stage-confirmed"
	// EventVerifyFailed fires when HSA rejects a wave's transient state;
	// the plan aborts.
	EventVerifyFailed EventKind = "verify-failed"
	// EventReplan fires when a typed failure triggers a re-plan from the
	// switch's actual FIB.
	EventReplan EventKind = "replan"
	// EventSegmentDone fires when a segment's last wave confirms.
	EventSegmentDone EventKind = "segment-done"
	// EventPlanDone fires once, when the whole plan settles (successfully
	// or not).
	EventPlanDone EventKind = "plan-done"
)

// Event is one step of a plan execution's observable progress.
type Event struct {
	At      time.Duration
	Kind    EventKind
	Segment string
	Stage   int
	Detail  string
	Err     error
}

// WaveStat attributes latency to one released wave.
type WaveStat struct {
	Segment string
	Stage   int
	Ops     int
	// Released and Confirmed bracket the wave on the planner's clock.
	Released  time.Duration
	Confirmed time.Duration
	// VerifyWall is the wall-clock cost of this wave's HSA verification.
	VerifyWall time.Duration
	// Replans counts re-plans that interrupted this wave.
	Replans int
}
