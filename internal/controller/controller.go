// Package controller is the controller-side library the evaluation drives:
// it executes network updates as dependency DAGs of FlowMods ("X after Y,
// X after Z" plans, Figure 2 of the paper), limits in-flight modifications
// to a window K, and consumes either RUM's fine-grained acknowledgments or
// its own per-mod barriers — or nothing at all (the no-wait lower bound).
package controller

import (
	"fmt"
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/retry"
	"rum/internal/sim"
	"rum/internal/transport"
)

// AckMode selects how the controller learns a modification completed.
type AckMode int

const (
	// AckRUM consumes RUM positive-acknowledgment errors.
	AckRUM AckMode = iota
	// AckBarrier sends a BarrierRequest after every FlowMod and treats
	// the reply as the acknowledgment (what a consistent-update system
	// does on a plain OpenFlow switch).
	AckBarrier
	// AckNone acknowledges instantly on send: no waiting, no guarantees.
	AckNone
)

// Op is one rule modification in a plan.
type Op struct {
	Switch    string
	FM        *of.FlowMod
	DependsOn []int // indices of ops that must confirm first
}

// Plan is a dependency DAG of modifications.
type Plan struct {
	Ops []Op
}

// OpResult records one op's lifecycle.
type OpResult struct {
	SentAt      time.Duration
	ConfirmedAt time.Duration
	XID         uint32
}

// Client is a minimal OpenFlow controller bound to a set of switch
// control channels (directly to switches, or through RUM).
type Client struct {
	clk   sim.Clock
	mode  AckMode
	conns map[string]transport.Conn

	mu      sync.Mutex
	nextXID uint32
	// waiting maps xid → completion callback (for both RUM acks and
	// barrier replies).
	waiting map[uint32]func()
	// barrierFor maps a barrier xid to the FlowMod xid it confirms.
	barrierFor map[uint32]uint32
	onPacketIn func(sw string, pin *of.PacketIn)
}

// NewClient creates a controller over the given per-switch conns. The
// map is copied: after construction, SetConn is the only way to change
// the client's conn set (callers retaining their map cannot bypass the
// client's locking).
func NewClient(clk sim.Clock, mode AckMode, conns map[string]transport.Conn) *Client {
	own := make(map[string]transport.Conn, len(conns))
	for name, conn := range conns {
		own[name] = conn
	}
	c := &Client{
		clk:        clk,
		mode:       mode,
		conns:      own,
		nextXID:    1,
		waiting:    make(map[uint32]func()),
		barrierFor: make(map[uint32]uint32),
	}
	for name, conn := range own {
		name := name
		conn.SetHandler(func(m of.Message) { c.onMessage(name, m) })
	}
	return c
}

// SetConn replaces (or adds) the conn serving one switch — the
// reconnection path: after a fault-killed control channel is re-dialed,
// the client resumes issuing updates to the switch over the new conn.
// Completion callbacks registered on the old conn stay registered; it is
// the caller's job to have resolved (or abandoned) them, e.g. through
// RUM's detach path failing the futures.
func (c *Client) SetConn(sw string, conn transport.Conn) {
	c.mu.Lock()
	c.conns[sw] = conn
	c.mu.Unlock()
	conn.SetHandler(func(m of.Message) { c.onMessage(sw, m) })
}

// Reconnect re-establishes the conn serving sw through the shared
// jittered-exponential-backoff retrier (internal/retry): dial runs after
// each backoff delay until it returns a conn or maxAttempts (<= 0:
// unlimited) is exhausted. On success the conn is installed via SetConn,
// the backoff resets, and onReady (if non-nil) runs — the hook where
// callers re-bootstrap the switch and re-issue in-doubt updates.
//
// Reconnect returns immediately after scheduling the first attempt: a
// lost channel is never re-dialed synchronously, so a flapping switch
// cannot hot-loop the dial path. Determinism: with a seeded Backoff
// under the simulated clock, the reconnect schedule replays exactly.
func (c *Client) Reconnect(sw string, b *retry.Backoff, maxAttempts int, dial func() (transport.Conn, error), onReady func(transport.Conn)) {
	var got transport.Conn
	retry.Loop(c.clk, b, maxAttempts, func() bool {
		conn, err := dial()
		if err != nil || conn == nil {
			return false
		}
		got = conn
		return true
	}, func(ok bool) {
		if !ok {
			return
		}
		c.SetConn(sw, got)
		if onReady != nil {
			onReady(got)
		}
	})
}

// conn looks up the conn serving a switch.
func (c *Client) conn(sw string) (transport.Conn, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, ok := c.conns[sw]
	return conn, ok
}

// SetPacketInHandler installs a callback for data-plane packets forwarded
// to the controller.
func (c *Client) SetPacketInHandler(fn func(sw string, pin *of.PacketIn)) {
	c.mu.Lock()
	c.onPacketIn = fn
	c.mu.Unlock()
}

// NewXID allocates a controller transaction id (always below RUM's
// reserved range).
func (c *Client) NewXID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextXID++
	if c.nextXID >= 0xf0000000 {
		c.nextXID = 1
	}
	return c.nextXID
}

func (c *Client) onMessage(sw string, m of.Message) {
	switch mm := m.(type) {
	case *of.Error:
		if xid, _, ok := mm.IsRUMAck(); ok {
			c.complete(xid)
		}
	case *of.BarrierReply:
		c.mu.Lock()
		modXID, isAckBarrier := c.barrierFor[mm.GetXID()]
		if isAckBarrier {
			delete(c.barrierFor, mm.GetXID())
		}
		c.mu.Unlock()
		if isAckBarrier {
			c.complete(modXID)
		} else {
			c.complete(mm.GetXID())
		}
	case *of.PacketIn:
		c.mu.Lock()
		fn := c.onPacketIn
		c.mu.Unlock()
		if fn != nil {
			fn(sw, mm)
		}
	case *of.EchoRequest:
		reply := &of.EchoReply{Data: mm.Data}
		reply.SetXID(mm.GetXID())
		if conn, ok := c.conn(sw); ok {
			_ = conn.Send(reply)
		}
	}
}

func (c *Client) complete(xid uint32) {
	c.mu.Lock()
	fn, ok := c.waiting[xid]
	if ok {
		delete(c.waiting, xid)
	}
	c.mu.Unlock()
	if ok {
		fn()
	}
}

// SendMod sends one FlowMod and invokes done when it is acknowledged
// according to the client's AckMode.
func (c *Client) SendMod(sw string, fm *of.FlowMod, done func()) error {
	conn, ok := c.conn(sw)
	if !ok {
		return fmt.Errorf("controller: unknown switch %q", sw)
	}
	if fm.GetXID() == 0 {
		fm.SetXID(c.NewXID())
	}
	switch c.mode {
	case AckRUM:
		if done != nil {
			c.mu.Lock()
			c.waiting[fm.GetXID()] = done
			c.mu.Unlock()
		}
		return conn.Send(fm)
	case AckBarrier:
		var barrierXID uint32
		if done != nil {
			barrierXID = c.NewXID()
			c.mu.Lock()
			c.waiting[fm.GetXID()] = done
			c.barrierFor[barrierXID] = fm.GetXID()
			c.mu.Unlock()
		}
		if err := conn.Send(fm); err != nil {
			return err
		}
		if done != nil {
			br := &of.BarrierRequest{}
			br.SetXID(barrierXID)
			return conn.Send(br)
		}
		return nil
	case AckNone:
		err := conn.Send(fm)
		if done != nil {
			done()
		}
		return err
	}
	return fmt.Errorf("controller: unknown ack mode %d", c.mode)
}

// SendBarrier sends a BarrierRequest and invokes done on the reply.
func (c *Client) SendBarrier(sw string, done func()) error {
	conn, ok := c.conn(sw)
	if !ok {
		return fmt.Errorf("controller: unknown switch %q", sw)
	}
	br := &of.BarrierRequest{}
	br.SetXID(c.NewXID())
	if done != nil {
		c.mu.Lock()
		c.waiting[br.GetXID()] = done
		c.mu.Unlock()
	}
	return conn.Send(br)
}

// Send transmits a raw message with no completion tracking.
func (c *Client) Send(sw string, m of.Message) error {
	conn, ok := c.conn(sw)
	if !ok {
		return fmt.Errorf("controller: unknown switch %q", sw)
	}
	if m.GetXID() == 0 {
		m.SetXID(c.NewXID())
	}
	return conn.Send(m)
}

// Execute runs a plan: ops are issued when all their dependencies have
// confirmed, with at most window unconfirmed ops in flight (window <= 0
// means unlimited). onDone, if non-nil, fires once after every op
// confirms. Execute returns immediately; progress is driven by the clock
// and incoming acknowledgments.
func (c *Client) Execute(plan *Plan, window int, onDone func(results []OpResult)) *Execution {
	e := &Execution{
		client:  c,
		plan:    plan,
		window:  window,
		onDone:  onDone,
		results: make([]OpResult, len(plan.Ops)),
		state:   make([]opState, len(plan.Ops)),
		waits:   make([]int, len(plan.Ops)),
	}
	for i, op := range plan.Ops {
		e.waits[i] = len(op.DependsOn)
	}
	e.pump()
	return e
}

type opState int

const (
	opPending opState = iota
	opInFlight
	opDone
)

// Execution tracks a running plan.
type Execution struct {
	client *Client
	plan   *Plan
	window int
	onDone func([]OpResult)

	mu       sync.Mutex
	state    []opState
	waits    []int // unmet dependency count
	results  []OpResult
	inFlight int
	done     int
	finished bool
}

// pump issues every ready op that fits the window.
func (e *Execution) pump() {
	for {
		e.mu.Lock()
		idx := -1
		for i := range e.plan.Ops {
			if e.state[i] == opPending && e.waits[i] == 0 {
				if e.window > 0 && e.inFlight >= e.window {
					break
				}
				idx = i
				break
			}
		}
		if idx == -1 {
			e.mu.Unlock()
			return
		}
		e.state[idx] = opInFlight
		e.inFlight++
		op := e.plan.Ops[idx]
		e.results[idx].SentAt = e.client.clk.Now()
		e.mu.Unlock()

		i := idx
		_ = e.client.SendMod(op.Switch, op.FM, func() { e.confirmed(i) })
		e.mu.Lock()
		e.results[i].XID = op.FM.GetXID()
		e.mu.Unlock()
	}
}

func (e *Execution) confirmed(i int) {
	e.mu.Lock()
	if e.state[i] == opDone {
		e.mu.Unlock()
		return
	}
	e.state[i] = opDone
	e.inFlight--
	e.done++
	e.results[i].ConfirmedAt = e.client.clk.Now()
	for j, op := range e.plan.Ops {
		for _, dep := range op.DependsOn {
			if dep == i && e.state[j] == opPending {
				e.waits[j]--
			}
		}
	}
	finished := e.done == len(e.plan.Ops) && !e.finished
	if finished {
		e.finished = true
	}
	onDone := e.onDone
	results := append([]OpResult(nil), e.results...)
	e.mu.Unlock()

	if finished {
		if onDone != nil {
			onDone(results)
		}
		return
	}
	e.pump()
}

// Done reports whether every op confirmed.
func (e *Execution) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.finished
}

// Results snapshots per-op results so far.
func (e *Execution) Results() []OpResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]OpResult(nil), e.results...)
}
