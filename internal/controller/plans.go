package controller

import (
	"net/netip"

	"rum/internal/of"
	"rum/internal/packet"
)

// FlowSpec describes one end-to-end flow for plan builders.
type FlowSpec struct {
	ID  int
	Src netip.Addr
	Dst netip.Addr
}

// FlowAddr returns the canonical (src, dst) pair for test flow i, matching
// the traffic the experiment generators emit.
func FlowAddr(i int) (src, dst netip.Addr) {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
}

// FlowMatch is the exact IPv4 match for a flow.
func FlowMatch(f FlowSpec) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(f.Src)
	m.SetNWDst(f.Dst)
	return m
}

// AddRule builds an add-FlowMod for a flow toward an output port.
func AddRule(f FlowSpec, prio uint16, outPort uint16) *of.FlowMod {
	return &of.FlowMod{
		Command:  of.FCAdd,
		Priority: prio,
		Match:    FlowMatch(f),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: outPort}},
	}
}

// TwoPhaseSpec builds a Reitblatt-style two-phase versioned update for the
// same migration: new-version rules are installed at every internal switch
// first (tagged with a VLAN version), then ingress flips to stamping the
// new version — one ingress flip per flow, dependent on all internal
// installs for that flow.
type TwoPhaseSpec struct {
	Flows     []FlowSpec
	Version   uint16 // VLAN id encoding the configuration version
	S1ToS2    uint16
	S2ToS3    uint16
	S3ToHost  uint16
	Prio      uint16
	StripAtS3 bool // strip the version tag before delivery
}

// Build assembles the two-phase plan.
func (s TwoPhaseSpec) Build() *Plan {
	plan := &Plan{}
	for _, f := range s.Flows {
		// Internal rules match (flow, version-tag).
		tagMatch := FlowMatch(f)
		tagMatch.Wildcards &^= of.WcDLVLAN
		tagMatch.DLVLAN = s.Version

		s2fm := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: tagMatch,
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: s.S2ToS3}}}
		i2 := len(plan.Ops)
		plan.Ops = append(plan.Ops, Op{Switch: "s2", FM: s2fm})

		s3acts := []of.Action{}
		if s.StripAtS3 {
			s3acts = append(s3acts, of.ActionStripVLAN{})
		}
		s3acts = append(s3acts, of.ActionOutput{Port: s.S3ToHost})
		s3fm := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: tagMatch,
			BufferID: of.BufferNone, OutPort: of.PortNone, Actions: s3acts}
		i3 := len(plan.Ops)
		plan.Ops = append(plan.Ops, Op{Switch: "s3", FM: s3fm})

		// Ingress: stamp the version and send toward S2 — only after both
		// internal rules confirmed.
		ingress := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: FlowMatch(f),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{
				of.ActionSetVLANVID{VID: s.Version},
				of.ActionOutput{Port: s.S1ToS2},
			}}
		plan.Ops = append(plan.Ops, Op{Switch: "s1", FM: ingress, DependsOn: []int{i2, i3}})
	}
	return plan
}
