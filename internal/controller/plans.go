package controller

import (
	"net/netip"

	"rum/internal/of"
	"rum/internal/packet"
)

// FlowSpec describes one end-to-end flow for plan builders.
type FlowSpec struct {
	ID  int
	Src netip.Addr
	Dst netip.Addr
}

// FlowAddr returns the canonical (src, dst) pair for test flow i, matching
// the traffic the experiment generators emit.
func FlowAddr(i int) (src, dst netip.Addr) {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
}

// FlowMatch is the exact IPv4 match for a flow.
func FlowMatch(f FlowSpec) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(f.Src)
	m.SetNWDst(f.Dst)
	return m
}

// AddRule builds an add-FlowMod for a flow toward an output port.
func AddRule(f FlowSpec, prio uint16, outPort uint16) *of.FlowMod {
	return &of.FlowMod{
		Command:  of.FCAdd,
		Priority: prio,
		Match:    FlowMatch(f),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: outPort}},
	}
}

// MigrationPlan builds the paper's §1 path-migration update: every flow
// moves from S1→S3 direct to S1→S2→S3. Per flow, the plan is the ordered
// consistent update
//
//	op1: add the flow's rule at S2 (forward toward S3)
//	op2: modify the flow's ingress rule at S1 to point at S2, AFTER op1
//
// so a packet follows either the old rules only or the new rules only —
// provided op2 is issued only once op1 is truly in S2's data plane. That
// proviso is exactly what broken barriers violate.
type MigrationSpec struct {
	Flows []FlowSpec
	// Port numbers in the triangle topology.
	S1ToS2 uint16 // S1's port toward S2
	S1ToS3 uint16 // S1's port toward S3 (old path; informational)
	S2ToS3 uint16 // S2's port toward S3
	Prio   uint16
}

// Build assembles the migration plan.
func (s MigrationSpec) Build() *Plan {
	plan := &Plan{}
	for _, f := range s.Flows {
		op1 := Op{Switch: "s2", FM: AddRule(f, s.Prio, s.S2ToS3)}
		i1 := len(plan.Ops)
		plan.Ops = append(plan.Ops, op1)
		// Same match and priority at S1 already exists (pointing at S3);
		// an ADD with identical match+priority replaces it, redirecting
		// the flow to S2.
		op2 := Op{Switch: "s1", FM: AddRule(f, s.Prio, s.S1ToS2), DependsOn: []int{i1}}
		plan.Ops = append(plan.Ops, op2)
	}
	return plan
}

// TwoPhaseSpec builds a Reitblatt-style two-phase versioned update for the
// same migration: new-version rules are installed at every internal switch
// first (tagged with a VLAN version), then ingress flips to stamping the
// new version — one ingress flip per flow, dependent on all internal
// installs for that flow.
type TwoPhaseSpec struct {
	Flows     []FlowSpec
	Version   uint16 // VLAN id encoding the configuration version
	S1ToS2    uint16
	S2ToS3    uint16
	S3ToHost  uint16
	Prio      uint16
	StripAtS3 bool // strip the version tag before delivery
}

// Build assembles the two-phase plan.
func (s TwoPhaseSpec) Build() *Plan {
	plan := &Plan{}
	for _, f := range s.Flows {
		// Internal rules match (flow, version-tag).
		tagMatch := FlowMatch(f)
		tagMatch.Wildcards &^= of.WcDLVLAN
		tagMatch.DLVLAN = s.Version

		s2fm := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: tagMatch,
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: s.S2ToS3}}}
		i2 := len(plan.Ops)
		plan.Ops = append(plan.Ops, Op{Switch: "s2", FM: s2fm})

		s3acts := []of.Action{}
		if s.StripAtS3 {
			s3acts = append(s3acts, of.ActionStripVLAN{})
		}
		s3acts = append(s3acts, of.ActionOutput{Port: s.S3ToHost})
		s3fm := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: tagMatch,
			BufferID: of.BufferNone, OutPort: of.PortNone, Actions: s3acts}
		i3 := len(plan.Ops)
		plan.Ops = append(plan.Ops, Op{Switch: "s3", FM: s3fm})

		// Ingress: stamp the version and send toward S2 — only after both
		// internal rules confirmed.
		ingress := &of.FlowMod{Command: of.FCAdd, Priority: s.Prio + 1, Match: FlowMatch(f),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{
				of.ActionSetVLANVID{VID: s.Version},
				of.ActionOutput{Port: s.S1ToS2},
			}}
		plan.Ops = append(plan.Ops, Op{Switch: "s1", FM: ingress, DependsOn: []int{i2, i3}})
	}
	return plan
}

// FirewallSpec reproduces Figure 2's security scenario: traffic from a
// host reaches S3 directly (rule Y at switch B), except http traffic,
// which must detour through a firewall (rule Z at switch B, higher
// priority). Rule X at switch A starts sending the host's traffic toward
// B only after BOTH Y and Z are in B's data plane — otherwise http
// traffic transits B before Z exists and bypasses the firewall.
type FirewallSpec struct {
	Host     netip.Addr
	HTTPPort uint16
	AToB     uint16 // switch A's port toward B
	BToS3    uint16 // B's port toward the destination
	BToFW    uint16 // B's port toward the firewall
	PrioLow  uint16
	PrioHigh uint16
}

// Build assembles the plan: X after Y, X after Z (the paper's update
// plan).
func (s FirewallSpec) Build() *Plan {
	plan := &Plan{}
	// Y: host's traffic → S3.
	ym := of.MatchAll()
	ym.Wildcards &^= of.WcDLType
	ym.DLType = packet.EtherTypeIPv4
	ym.SetNWSrc(s.Host)
	yfm := &of.FlowMod{Command: of.FCAdd, Priority: s.PrioLow, Match: ym,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: s.BToS3}}}
	iy := len(plan.Ops)
	plan.Ops = append(plan.Ops, Op{Switch: "b", FM: yfm})

	// Z: host's http traffic → FIREWALL (higher priority).
	zm := ym
	zm.Wildcards &^= of.WcNWProto | of.WcTPDst
	zm.NWProto = packet.ProtoTCP
	zm.TPDst = s.HTTPPort
	zfm := &of.FlowMod{Command: of.FCAdd, Priority: s.PrioHigh, Match: zm,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: s.BToFW}}}
	iz := len(plan.Ops)
	plan.Ops = append(plan.Ops, Op{Switch: "b", FM: zfm})

	// X: start forwarding the host's traffic toward B.
	xm := ym
	xfm := &of.FlowMod{Command: of.FCAdd, Priority: s.PrioHigh, Match: xm,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: s.AToB}}}
	plan.Ops = append(plan.Ops, Op{Switch: "a", FM: xfm, DependsOn: []int{iy, iz}})
	return plan
}
