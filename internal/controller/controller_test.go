package controller

import (
	"fmt"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/retry"
	"rum/internal/sim"
	"rum/internal/transport"
)

// fakeSwitch answers barriers after a configurable delay and emits RUM
// acks for every FlowMod after another delay.
type fakeSwitch struct {
	clk        sim.Clock
	conn       transport.Conn
	ackDelay   time.Duration
	barrDelay  time.Duration
	emitAcks   bool
	seenMods   []uint32
	seenOthers []of.Message
}

func newFakeSwitch(clk sim.Clock, conn transport.Conn, emitAcks bool) *fakeSwitch {
	fs := &fakeSwitch{clk: clk, conn: conn, emitAcks: emitAcks,
		ackDelay: 5 * time.Millisecond, barrDelay: 2 * time.Millisecond}
	conn.SetHandler(fs.onMsg)
	return fs
}

func (fs *fakeSwitch) onMsg(m of.Message) {
	switch mm := m.(type) {
	case *of.FlowMod:
		fs.seenMods = append(fs.seenMods, mm.GetXID())
		if fs.emitAcks {
			xid := mm.GetXID()
			fs.clk.After(fs.ackDelay, func() {
				_ = fs.conn.Send(of.NewRUMAck(xid, of.RUMAckInstalled))
			})
		}
	case *of.BarrierRequest:
		xid := mm.GetXID()
		fs.clk.After(fs.barrDelay, func() {
			reply := &of.BarrierReply{}
			reply.SetXID(xid)
			_ = fs.conn.Send(reply)
		})
	default:
		fs.seenOthers = append(fs.seenOthers, m)
	}
}

func setup(emitAcks bool, mode AckMode) (*sim.Sim, *Client, map[string]*fakeSwitch) {
	s := sim.New()
	conns := make(map[string]transport.Conn)
	switches := make(map[string]*fakeSwitch)
	for _, name := range []string{"s1", "s2"} {
		ctrlEnd, swEnd := transport.Pipe(s, 100*time.Microsecond)
		switches[name] = newFakeSwitch(s, swEnd, emitAcks)
		conns[name] = ctrlEnd
	}
	return s, NewClient(s, mode, conns), switches
}

func mkOp(sw string, dep ...int) Op {
	f := FlowSpec{ID: 0}
	f.Src, f.Dst = FlowAddr(0)
	return Op{Switch: sw, FM: AddRule(f, 10, 2), DependsOn: dep}
}

func TestExecuteRespectsDependencies(t *testing.T) {
	s, c, switches := setup(true, AckRUM)
	plan := &Plan{Ops: []Op{
		mkOp("s2"),
		mkOp("s1", 0), // must follow op 0
	}}
	var results []OpResult
	c.Execute(plan, 0, func(r []OpResult) { results = r })
	s.Run()
	if results == nil {
		t.Fatal("plan did not complete")
	}
	if len(switches["s2"].seenMods) != 1 || len(switches["s1"].seenMods) != 1 {
		t.Fatalf("mods: s2=%d s1=%d", len(switches["s2"].seenMods), len(switches["s1"].seenMods))
	}
	if results[1].SentAt < results[0].ConfirmedAt {
		t.Errorf("dependent op sent at %v before dependency confirmed at %v",
			results[1].SentAt, results[0].ConfirmedAt)
	}
}

func TestExecuteWindowLimitsInFlight(t *testing.T) {
	s, c, switches := setup(true, AckRUM)
	var ops []Op
	for i := 0; i < 10; i++ {
		f := FlowSpec{ID: i}
		f.Src, f.Dst = FlowAddr(i)
		ops = append(ops, Op{Switch: "s1", FM: AddRule(f, 10, 2)})
	}
	plan := &Plan{Ops: ops}
	done := false
	c.Execute(plan, 2, func([]OpResult) { done = true })

	// After the initial pump, exactly 2 mods may be in flight.
	s.RunFor(time.Millisecond)
	if got := len(switches["s1"].seenMods); got != 2 {
		t.Errorf("in-flight after initial pump = %d, want 2", got)
	}
	s.Run()
	if !done {
		t.Fatal("plan did not complete")
	}
	if got := len(switches["s1"].seenMods); got != 10 {
		t.Errorf("total mods = %d, want 10", got)
	}
}

func TestAckBarrierMode(t *testing.T) {
	s, c, switches := setup(false, AckBarrier)
	plan := &Plan{Ops: []Op{mkOp("s1")}}
	var results []OpResult
	c.Execute(plan, 0, func(r []OpResult) { results = r })
	s.Run()
	if results == nil {
		t.Fatal("barrier-acked plan did not complete")
	}
	if results[0].ConfirmedAt <= results[0].SentAt {
		t.Errorf("confirmation time %v not after send time %v", results[0].ConfirmedAt, results[0].SentAt)
	}
	if len(switches["s1"].seenMods) != 1 {
		t.Errorf("switch saw %d mods", len(switches["s1"].seenMods))
	}
}

func TestAckNoneConfirmsImmediately(t *testing.T) {
	s, c, _ := setup(false, AckNone)
	plan := &Plan{Ops: []Op{mkOp("s1"), mkOp("s2", 0)}}
	var results []OpResult
	c.Execute(plan, 0, func(r []OpResult) { results = r })
	s.Run()
	if results == nil {
		t.Fatal("no-wait plan did not complete")
	}
	for i, r := range results {
		if r.ConfirmedAt != r.SentAt {
			t.Errorf("op %d: no-wait confirm at %v != send at %v", i, r.ConfirmedAt, r.SentAt)
		}
	}
}

func TestSendModUnknownSwitch(t *testing.T) {
	_, c, _ := setup(true, AckRUM)
	if err := c.SendMod("nope", mkOp("nope").FM, nil); err == nil {
		t.Fatal("SendMod to unknown switch succeeded")
	}
}

func TestTwoPhasePlanShape(t *testing.T) {
	flows := []FlowSpec{{ID: 0}}
	flows[0].Src, flows[0].Dst = FlowAddr(0)
	plan := TwoPhaseSpec{Flows: flows, Version: 2, S1ToS2: 2, S2ToS3: 2, S3ToHost: 1,
		Prio: 100, StripAtS3: true}.Build()
	if len(plan.Ops) != 3 {
		t.Fatalf("plan has %d ops, want 3", len(plan.Ops))
	}
	ingress := plan.Ops[2]
	if ingress.Switch != "s1" || len(ingress.DependsOn) != 2 {
		t.Errorf("ingress = %+v", ingress)
	}
	// Internal rules must match the version tag.
	if plan.Ops[0].FM.Match.Wildcards&of.WcDLVLAN != 0 || plan.Ops[0].FM.Match.DLVLAN != 2 {
		t.Errorf("internal rule does not match version tag: %v", plan.Ops[0].FM.Match)
	}
}

func TestExecuteDiamondDependency(t *testing.T) {
	s, c, _ := setup(true, AckRUM)
	// 0 -> {1,2} -> 3
	plan := &Plan{Ops: []Op{
		mkOp("s1"),
		mkOp("s2", 0),
		mkOp("s1", 0),
		mkOp("s2", 1, 2),
	}}
	var results []OpResult
	c.Execute(plan, 0, func(r []OpResult) { results = r })
	s.Run()
	if results == nil {
		t.Fatal("diamond plan did not complete")
	}
	if results[3].SentAt < results[1].ConfirmedAt || results[3].SentAt < results[2].ConfirmedAt {
		t.Error("final op sent before both middle ops confirmed")
	}
}

// TestReconnectBackoff: a lost channel re-dials through the shared
// jittered-backoff retrier — failed dials are spaced by growing delays,
// success installs the conn via SetConn and fires onReady, and the
// client resumes confirming updates over the new channel.
func TestReconnectBackoff(t *testing.T) {
	s, c, _ := setup(true, AckRUM)
	// Sever s1: replace its conn with a fresh pipe pair that will play
	// the "new" channel once dialed.
	var dials int
	var readyAt time.Duration
	newCtrl, newSw := transport.Pipe(s, 100*time.Microsecond)
	newFakeSwitch(s, newSw, true)
	b := retry.New(retry.Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}, 1)
	c.Reconnect("s1", b, 0, func() (transport.Conn, error) {
		dials++
		if dials < 3 {
			return nil, fmt.Errorf("switch still down")
		}
		return newCtrl, nil
	}, func(transport.Conn) { readyAt = s.Now() })
	s.Run()
	if dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}
	// Delays 10ms + 20ms + 40ms → ready at 70ms.
	if readyAt != 70*time.Millisecond {
		t.Fatalf("onReady at %v, want 70ms (10+20+40 backoff)", readyAt)
	}
	if b.Attempt() != 0 {
		t.Fatalf("backoff not reset after successful reconnect: Attempt() = %d", b.Attempt())
	}
	// The new conn serves the switch: an update confirms over it.
	confirmed := false
	if err := c.SendMod("s1", mkOp("s1").FM, func() { confirmed = true }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !confirmed {
		t.Fatal("update did not confirm over the reconnected channel")
	}
}

// TestReconnectGivesUp: maxAttempts bounds the dial loop; the old conn
// stays in place and onReady never fires.
func TestReconnectGivesUp(t *testing.T) {
	s, c, _ := setup(true, AckRUM)
	dials, ready := 0, false
	b := retry.New(retry.Policy{Base: time.Millisecond, Cap: time.Millisecond, Multiplier: 2, Jitter: 0}, 1)
	c.Reconnect("s1", b, 3, func() (transport.Conn, error) {
		dials++
		return nil, fmt.Errorf("unreachable")
	}, func(transport.Conn) { ready = true })
	s.Run()
	if dials != 3 {
		t.Fatalf("dials = %d, want 3 (maxAttempts)", dials)
	}
	if ready {
		t.Fatal("onReady fired for an exhausted reconnect")
	}
}
