package faults

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// TraceInterval is one window of a trace-driven link profile: for Dur,
// the link adds Latency to every delivery, loses each message with
// probability Loss, and transmits at most Bandwidth messages per second
// (0 = unlimited). Transmission time is modeled per message — at 200
// msg/s each message occupies the link for 5ms — so a burst wider than
// the interval's bandwidth queues behind the link and arrives paced, the
// congestion behavior the overload experiments score policies against.
type TraceInterval struct {
	Dur       time.Duration
	Latency   time.Duration
	Loss      float64
	Bandwidth int
}

// Trace is a cyclic schedule of link conditions, replayed from the
// moment the wrapper is created: after the last interval elapses the
// trace wraps to the first. Loss rolls come from the deployment's
// Injector, so a traced link replays deterministically like every other
// fault.
type Trace struct {
	Name      string
	Intervals []TraceInterval

	total time.Duration
}

// Total returns one full cycle's duration.
func (t *Trace) Total() time.Duration { return t.total }

// at returns the interval covering the given offset from the trace
// origin (cyclic).
func (t *Trace) at(off time.Duration) TraceInterval {
	if t.total > 0 {
		off %= t.total
	}
	for _, iv := range t.Intervals {
		if off < iv.Dur {
			return iv
		}
		off -= iv.Dur
	}
	return t.Intervals[len(t.Intervals)-1]
}

// TraceBacklog bounds how many transmissions may queue behind a traced
// link's bandwidth pacer (per direction) before SendBatchPartial refuses
// further messages. The refusal is what propagates congestion upward:
// the shard requeues the unsent suffix against its own bounded outbox,
// where the overload policy decides to block, shed, or degrade.
const TraceBacklog = 32

// ParseTrace parses the text trace format: one interval per line as
//
//	DURATION LATENCY LOSS BANDWIDTH
//
// (e.g. "10ms 2ms 0.05 400"), where DURATION and LATENCY use Go duration
// syntax, LOSS is a probability in [0,1], and BANDWIDTH is messages per
// second (0 = unlimited). Blank lines and #-comments are skipped.
func ParseTrace(name, text string) (*Trace, error) {
	tr := &Trace{Name: name}
	for lineNo, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("faults: trace %s:%d: want DUR LATENCY LOSS BW, got %d fields", name, lineNo+1, len(fields))
		}
		dur, err := time.ParseDuration(fields[0])
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("faults: trace %s:%d: bad duration %q", name, lineNo+1, fields[0])
		}
		lat, err := time.ParseDuration(fields[1])
		if err != nil || lat < 0 {
			return nil, fmt.Errorf("faults: trace %s:%d: bad latency %q", name, lineNo+1, fields[1])
		}
		loss, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || !(loss >= 0 && loss <= 1) {
			return nil, fmt.Errorf("faults: trace %s:%d: loss %q must be in [0,1]", name, lineNo+1, fields[2])
		}
		bw, err := strconv.Atoi(fields[3])
		if err != nil || bw < 0 {
			return nil, fmt.Errorf("faults: trace %s:%d: bad bandwidth %q (messages/sec, 0=unlimited)", name, lineNo+1, fields[3])
		}
		tr.Intervals = append(tr.Intervals, TraceInterval{Dur: dur, Latency: lat, Loss: loss, Bandwidth: bw})
		tr.total += dur
	}
	if len(tr.Intervals) == 0 {
		return nil, fmt.Errorf("faults: trace %s: no intervals", name)
	}
	return tr, nil
}

// LoadTrace reads and parses a trace file (see ParseTrace for the
// format). The bundled profiles under internal/faults/testdata —
// bursty_wan, congestion_collapse, flapping — are in this format.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: trace %s: %v", path, err)
	}
	return ParseTrace(strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)), string(data))
}
