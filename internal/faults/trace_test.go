package faults

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace("t", "10ms 2ms 0.05 400\n# comment\n\n5ms 0s 0 0 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 2 {
		t.Fatalf("got %d intervals, want 2", len(tr.Intervals))
	}
	if tr.Total() != 15*time.Millisecond {
		t.Fatalf("Total() = %v, want 15ms", tr.Total())
	}
	iv := tr.Intervals[0]
	if iv.Dur != 10*time.Millisecond || iv.Latency != 2*time.Millisecond || iv.Loss != 0.05 || iv.Bandwidth != 400 {
		t.Fatalf("interval 0 parsed as %+v", iv)
	}
	// The cyclic lookup wraps past Total.
	if got := tr.at(26 * time.Millisecond); got != tr.Intervals[1] {
		t.Fatalf("at(26ms) = %+v, want interval 1 (cyclic)", got)
	}
	for _, bad := range []string{
		"",
		"10ms 2ms 0.05",       // missing field
		"10ms 2ms 1.5 0",      // loss out of range
		"10ms 2ms nan 0",      // NaN loss
		"0s 2ms 0 0",          // zero duration
		"10ms -1ms 0 0",       // negative latency
		"10ms 2ms 0 -5",       // negative bandwidth
		"10ms 2ms 0 unlimite", // non-integer bandwidth
	} {
		if _, err := ParseTrace("bad", bad); err == nil {
			t.Fatalf("ParseTrace accepted %q", bad)
		}
	}
}

func TestLoadBundledProfiles(t *testing.T) {
	for _, name := range []string{"bursty_wan", "congestion_collapse", "flapping"} {
		tr, err := LoadTrace(filepath.Join("testdata", name+".trace"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != name {
			t.Fatalf("trace name %q, want %q", tr.Name, name)
		}
		if len(tr.Intervals) < 2 || tr.Total() <= 0 {
			t.Fatalf("%s: degenerate profile %+v", name, tr)
		}
	}
}

func TestParsePlanTraceAndDelayRange(t *testing.T) {
	p, err := ParsePlan("delay=1ms-3ms:1,trace=" + filepath.Join("testdata", "bursty_wan.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace == nil || p.Trace.Name != "bursty_wan" {
		t.Fatalf("plan trace not loaded: %+v", p.Trace)
	}
	if !p.Enabled() {
		t.Fatal("plan with a trace must be enabled")
	}
	if len(p.Rules) != 1 || p.Rules[0].Delay != time.Millisecond || p.Rules[0].DelayMax != 3*time.Millisecond {
		t.Fatalf("delay range rule parsed as %+v", p.Rules)
	}
	// A trace-only plan is enabled too (Wrap must interpose).
	p2, err := ParsePlan("trace=" + filepath.Join("testdata", "flapping.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Enabled() || len(p2.Rules) != 0 {
		t.Fatalf("trace-only plan: enabled=%v rules=%d", p2.Enabled(), len(p2.Rules))
	}
	for _, bad := range []string{
		"delay=3ms-1ms:1",  // hi < lo
		"delay=-1ms-3ms:1", // negative lo (parses as range with empty lo)
		"trace=/nonexistent/path.trace",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan accepted %q", bad)
		}
	}
}

// TestDelayRangeDeterministicPerSeed: a delay=lo-hi rule draws from the
// injector's seeded stream, so the same seed replays identical delivery
// times and delays stay inside [lo, hi].
func TestDelayRangeDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) string {
		s := sim.New()
		a, b := transport.Pipe(s, 0)
		var log string
		b.SetHandler(func(m of.Message) { log += fmt.Sprintf("%d@%v;", m.GetXID(), s.Now()) })
		c := Wrap(a, s, NewInjector(seed), &Plan{Rules: []Rule{
			{Action: ActDelay, Prob: 1, Delay: time.Millisecond, DelayMax: 9 * time.Millisecond},
		}})
		for i := 1; i <= 16; i++ {
			if err := c.Send(testFlowMod(uint32(i))); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		if s.Now() < time.Millisecond || s.Now() > 9*time.Millisecond {
			t.Fatalf("last delivery at %v, outside the delay range", s.Now())
		}
		return log
	}
	if run(11) != run(11) {
		t.Fatal("same seed produced different delay schedules")
	}
	if run(11) == run(12) {
		t.Fatal("different seeds produced identical delay schedules")
	}
}

// TestTracePacesBandwidth: at 100 msg/s every message occupies the link
// for 10ms, so a burst of 4 arrives at 10/20/30/40ms plus the interval
// latency — paced, in order, none lost.
func TestTracePacesBandwidth(t *testing.T) {
	s := sim.New()
	a, b := transport.Pipe(s, 0)
	var at []time.Duration
	b.SetHandler(func(m of.Message) { at = append(at, s.Now()) })
	tr, err := ParseTrace("pace", "1s 5ms 0 100")
	if err != nil {
		t.Fatal(err)
	}
	c := Wrap(a, s, NewInjector(1), &Plan{Trace: tr})
	for i := 1; i <= 4; i++ {
		if err := c.Send(testFlowMod(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	want := []time.Duration{15 * time.Millisecond, 25 * time.Millisecond, 35 * time.Millisecond, 45 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v (tx 10ms + latency 5ms)", i, at[i], want[i])
		}
	}
}

// TestTraceBlackoutDropsEverything: a loss-1.0 interval is a blackout —
// nothing crosses, and the drops are counted.
func TestTraceBlackoutDropsEverything(t *testing.T) {
	s := sim.New()
	a, b := transport.Pipe(s, 0)
	delivered := 0
	b.SetHandler(func(of.Message) { delivered++ })
	tr, err := ParseTrace("dark", "1s 0s 1 0")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	c := Wrap(a, s, inj, &Plan{Trace: tr})
	for i := 1; i <= 8; i++ {
		if err := c.Send(testFlowMod(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("%d messages crossed a blackout interval", delivered)
	}
	if inj.Stats().Dropped != 8 {
		t.Fatalf("Dropped = %d, want 8", inj.Stats().Dropped)
	}
}

// TestTraceBacklogRefusesBatch: once TraceBacklog transmissions queue
// behind the pacer, SendBatchPartial must refuse the rest of the batch
// instead of growing the timer queue without bound.
func TestTraceBacklogRefusesBatch(t *testing.T) {
	s := sim.New()
	a, _ := transport.Pipe(s, 0)
	tr, err := ParseTrace("slow", "10s 0s 0 100") // 10ms per message
	if err != nil {
		t.Fatal(err)
	}
	c := Wrap(a, s, NewInjector(1), &Plan{Trace: tr}).(*Conn)
	ms := make([]of.Message, 2*TraceBacklog)
	for i := range ms {
		ms[i] = testFlowMod(uint32(i + 1))
	}
	n, err := c.SendBatchPartial(ms)
	if err != nil {
		t.Fatal(err)
	}
	if n != TraceBacklog {
		t.Fatalf("accepted %d messages, want exactly the backlog bound %d", n, TraceBacklog)
	}
	// The refused suffix can be retried once the link drains.
	s.RunFor(time.Duration(TraceBacklog) * 10 * time.Millisecond)
	n2, err := c.SendBatchPartial(ms[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n2 == 0 {
		t.Fatal("drained link still refuses")
	}
}

// TestTraceShapesSwitchToControllerToo: DirFromSwitch traffic (barrier
// replies, PacketIns) crosses the same traced link.
func TestTraceShapesSwitchToControllerToo(t *testing.T) {
	s := sim.New()
	a, b := transport.Pipe(s, 0)
	tr, err := ParseTrace("lat", "1s 7ms 0 0")
	if err != nil {
		t.Fatal(err)
	}
	c := Wrap(a, s, NewInjector(1), &Plan{Trace: tr})
	var at time.Duration
	c.SetHandler(func(of.Message) { at = s.Now() })
	if err := b.Send(testFlowMod(42)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("switch→RUM delivery at %v, want 7ms (trace latency)", at)
	}
}
