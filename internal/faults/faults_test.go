package faults

import (
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

func testFlowMod(xid uint32) *of.FlowMod {
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone}
	fm.SetXID(xid)
	return fm
}

// bed wires wrapper → pipe → recorder under a sim clock and returns the
// wrapped conn, the received-xid log, and the engine.
func bed(t *testing.T, plan *Plan, seed int64) (transport.Conn, *[]uint32, *sim.Sim) {
	t.Helper()
	s := sim.New()
	a, b := transport.Pipe(s, time.Millisecond)
	var got []uint32
	b.SetHandler(func(m of.Message) { got = append(got, m.GetXID()) })
	return Wrap(a, s, NewInjector(seed), plan), &got, s
}

func TestWrapDisabledPlanIsTransparent(t *testing.T) {
	s := sim.New()
	a, _ := transport.Pipe(s, 0)
	if w := Wrap(a, s, NewInjector(1), &Plan{}); w != a {
		t.Fatal("empty plan should return the inner conn unchanged")
	}
	if w := Wrap(a, s, NewInjector(1), nil); w != a {
		t.Fatal("nil plan should return the inner conn unchanged")
	}
	if w := Wrap(a, s, NewInjector(1), Passthrough()); w == a {
		t.Fatal("Passthrough plan should keep the wrapper layer in place")
	}
}

func TestDropAllDeliversNothing(t *testing.T) {
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActDrop, Prob: 1}}}, 1)
	for i := 1; i <= 10; i++ {
		if err := c.Send(testFlowMod(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("dropped messages arrived: %v", *got)
	}
}

func TestDupDeliversIndependentClone(t *testing.T) {
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActDup, Prob: 1}}}, 1)
	if err := c.Send(testFlowMod(7)); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if len(*got) != 2 || (*got)[0] != 7 || (*got)[1] != 7 {
		t.Fatalf("want xids [7 7], got %v", *got)
	}
}

func TestReorderSwapsWithSuccessor(t *testing.T) {
	// Only the first message triggers (match on xid 1): 1 is held, 2
	// passes, 1 follows.
	match := MatchXID(func(x uint32) bool { return x == 1 })
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActReorder, Prob: 1, Match: match}}}, 1)
	_ = c.Send(testFlowMod(1))
	_ = c.Send(testFlowMod(2))
	s.RunFor(time.Second)
	if len(*got) != 2 || (*got)[0] != 2 || (*got)[1] != 1 {
		t.Fatalf("want reordered [2 1], got %v", *got)
	}
}

func TestReorderTailFlushesByTimer(t *testing.T) {
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActReorder, Prob: 1}}}, 1)
	_ = c.Send(testFlowMod(9))
	s.RunFor(time.Millisecond) // before the hold elapses: still parked
	if len(*got) != 0 {
		t.Fatalf("held message leaked early: %v", *got)
	}
	s.RunFor(ReorderHold + 10*time.Millisecond)
	if len(*got) != 1 || (*got)[0] != 9 {
		t.Fatalf("want timer-flushed [9], got %v", *got)
	}
}

// TestDelayInSendBatchStillDelivers pins the batched deferred-delivery
// path: a delayed (or timer-flushed reordered) message from a SendBatch
// must reach the wire after its hold, not die with the batch's already
// flushed collector.
func TestDelayInSendBatchStillDelivers(t *testing.T) {
	const extra = 50 * time.Millisecond
	match := MatchXID(func(x uint32) bool { return x == 2 })
	plan := &Plan{Rules: []Rule{{Action: ActDelay, Prob: 1, Delay: extra, Match: match}}}
	c, got, s := bed(t, plan, 1)
	bs := c.(transport.BatchSender)
	if err := bs.SendBatch([]of.Message{testFlowMod(1), testFlowMod(2), testFlowMod(3)}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(extra / 2)
	if len(*got) != 2 || (*got)[0] != 1 || (*got)[1] != 3 {
		t.Fatalf("undelayed batch part: want [1 3], got %v", *got)
	}
	s.RunFor(extra)
	if len(*got) != 3 || (*got)[2] != 2 {
		t.Fatalf("delayed batch message lost: got %v", *got)
	}
}

func TestReorderTailInSendBatchFlushesByTimer(t *testing.T) {
	plan := &Plan{Rules: []Rule{{Action: ActReorder, Prob: 1,
		Match: MatchXID(func(x uint32) bool { return x == 2 })}}}
	c, got, s := bed(t, plan, 1)
	bs := c.(transport.BatchSender)
	if err := bs.SendBatch([]of.Message{testFlowMod(1), testFlowMod(2)}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(ReorderHold + 10*time.Millisecond)
	if len(*got) != 2 || (*got)[0] != 1 || (*got)[1] != 2 {
		t.Fatalf("reorder-held batch tail lost: got %v", *got)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	const extra = 50 * time.Millisecond
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActDelay, Prob: 1, Delay: extra}}}, 1)
	_ = c.Send(testFlowMod(3))
	s.RunFor(extra / 2)
	if len(*got) != 0 {
		t.Fatal("delayed message arrived early")
	}
	s.RunFor(extra)
	if len(*got) != 1 {
		t.Fatalf("delayed message never arrived: %v", *got)
	}
}

func TestCorruptMutatesButStaysDecodable(t *testing.T) {
	c, got, s := bed(t, &Plan{Rules: []Rule{{Action: ActCorrupt, Prob: 1}}}, 42)
	const n = 50
	for i := 1; i <= n; i++ {
		_ = c.Send(testFlowMod(uint32(i)))
	}
	s.RunFor(time.Second)
	if len(*got) == 0 {
		t.Fatal("every corrupted frame failed to decode; expected most to survive")
	}
	if len(*got) > n {
		t.Fatalf("corruption multiplied messages: %d > %d", len(*got), n)
	}
	mutated := 0
	for i, xid := range *got {
		if xid != uint32(i+1) {
			mutated++
		}
	}
	t.Logf("corrupt: %d delivered, %d with visibly mangled xids", len(*got), mutated)
}

func TestCutKillsMidBatchAndFiresOnKill(t *testing.T) {
	// Cut triggers only on xid 3: the batch dies at its third message.
	match := MatchXID(func(x uint32) bool { return x == 3 })
	plan := &Plan{Rules: []Rule{{Action: ActCut, Prob: 1, Match: match}}}
	s := sim.New()
	a, b := transport.Pipe(s, time.Millisecond)
	var got []uint32
	b.SetHandler(func(m of.Message) { got = append(got, m.GetXID()) })
	w := Wrap(a, s, NewInjector(1), plan).(*Conn)
	killed := false
	w.OnKill(func() { killed = true })
	batch := []of.Message{testFlowMod(1), testFlowMod(2), testFlowMod(3), testFlowMod(4), testFlowMod(5)}
	if err := w.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("want the pre-cut prefix [1 2], got %v", got)
	}
	if !killed {
		t.Fatal("OnKill hook never fired")
	}
	if !w.Killed() {
		t.Fatal("Killed() false after cut")
	}
	if err := w.Send(testFlowMod(6)); err != transport.ErrClosed {
		t.Fatalf("post-cut Send: want ErrClosed, got %v", err)
	}
}

// TestInjectorDeterminism replays one loss schedule twice from the same
// seed and asserts the surviving message sets are identical, and that a
// different seed produces a different schedule.
func TestInjectorDeterminism(t *testing.T) {
	run := func(seed int64) []uint32 {
		plan := &Plan{Rules: []Rule{{Action: ActDrop, Prob: 0.3}}}
		c, got, s := bed(t, plan, seed)
		for i := 1; i <= 200; i++ {
			_ = c.Send(testFlowMod(uint32(i)))
		}
		s.RunFor(time.Second)
		return *got
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	other := run(8)
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop=0.01,dup=0.005,reorder=0.02,corrupt=0.001,delay=2ms:0.05,cut=0.0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 6 {
		t.Fatalf("want 6 rules, got %d", len(p.Rules))
	}
	if p.Rules[4].Action != ActDelay || p.Rules[4].Delay != 2*time.Millisecond {
		t.Fatalf("delay rule mis-parsed: %+v", p.Rules[4])
	}
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: want disabled plan, got %+v err %v", p, err)
	}
	if p, err := ParsePlan("none"); err != nil || p.Enabled() {
		t.Fatalf("none spec: want disabled plan, got %+v err %v", p, err)
	}
	if _, err := ParsePlan("explode=0.5"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if _, err := ParsePlan("drop=1.5"); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if _, err := ParsePlan("drop=NaN"); err == nil {
		t.Fatal("NaN probability accepted")
	}
	if _, err := ParsePlan("delay=abc:0.1"); err == nil {
		t.Fatal("bad delay duration accepted")
	}
	// flowmods narrows earlier rules.
	p, err = ParsePlan("drop=0.1,flowmods")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Match == nil {
		t.Fatal("flowmods did not install a match")
	}
	if !p.Rules[0].Match(testFlowMod(1)) {
		t.Fatal("flowmods match rejects a FlowMod")
	}
	if p.Rules[0].Match(&of.BarrierRequest{}) {
		t.Fatal("flowmods match accepts a barrier")
	}
}
