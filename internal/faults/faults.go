// Package faults is RUM's deterministic fault-injection subsystem: the
// adversarial conditions the paper's premise rests on ("switch
// acknowledgments are unreliable"), made reproducible. It supplies
//
//   - a message-level fault layer (Wrap) that interposes on a
//     transport.Conn and drops, duplicates, reorders, delays, corrupts,
//     or cuts individual OpenFlow messages, selected by direction,
//     message type, and xid predicate;
//   - a seedable Injector whose decisions are a pure function of the
//     seed and the message sequence, so a fault schedule replays
//     identically under the simulated clock (the seed-replay tests in
//     internal/experiments assert byte-identical ack traces);
//   - named fault profiles and a flag-friendly ParsePlan syntax shared
//     by cmd/rumproxy (-faults), examples/chaos, and the reliability
//     experiment suite in internal/experiments. Delay rules accept fixed
//     durations (delay=2ms:P) or seed-deterministic uniform ranges
//     (delay=2ms-8ms:P);
//   - trace-driven link profiles (Trace, trace=FILE) replaying cyclic
//     per-interval latency/loss/bandwidth schedules — bursty WAN,
//     congestion collapse, flapping links (see testdata/*.trace) — with
//     per-message transmission pacing and a bounded backlog that pushes
//     congestion back into the shard's overload policy via
//     transport.PartialBatchSender.
//
// Switch-level faults — crash with FIB wipe, restart, slow-dataplane
// stalls — live on switchsim.Switch (Crash, MutateProfile) and the
// data-plane frame-loss hook on netsim.Network (SetTransmitFilter); the
// orchestration that ties them to RUM's detach/reattach recovery path is
// internal/experiments/faults.go.
//
// Ownership: the wrapper may retain, clone, and re-deliver messages, so
// it deliberately does not implement transport.FrameEncoder — a wrapped
// session runs under the pipe (shared ownership) rules of the buffer
// contract in docs/ARCHITECTURE.md, never the recycle-after-Send rules.
// Duplicated and corrupted messages are materialized as fresh structs
// via an encode/decode round trip, so a downstream consumer releasing
// its copy to the codec pool can never double-release the original.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"rum/internal/of"
)

// Direction selects which flow of a wrapped connection a rule applies
// to. The wrapper sits on RUM's switch-side conn, so DirToSwitch covers
// controller/RUM → switch traffic (FlowMods, barriers, probes) and
// DirFromSwitch covers switch → RUM traffic (barrier replies, PacketIns,
// errors).
type Direction uint8

const (
	// DirBoth applies the rule to both directions.
	DirBoth Direction = iota
	// DirToSwitch applies the rule to messages sent toward the switch.
	DirToSwitch
	// DirFromSwitch applies the rule to messages received from the
	// switch.
	DirFromSwitch
)

// Action is the fault applied to a matched message.
type Action uint8

const (
	// ActDrop discards the message.
	ActDrop Action = iota
	// ActDup delivers the message and then a clone of it.
	ActDup
	// ActReorder holds the message back and releases it after the next
	// message in the same direction passes (or after ReorderHold, for a
	// tail message with no successor).
	ActReorder
	// ActDelay delivers the message after an extra Rule.Delay.
	ActDelay
	// ActCorrupt flips a byte of the encoded frame and delivers the
	// re-decoded result; frames that no longer decode are dropped.
	ActCorrupt
	// ActCut kills the connection: the message and everything after it
	// (in both directions) is discarded, Send returns
	// transport.ErrClosed, and the OnKill hook fires — the fault-layer
	// model of a control channel dying mid-batch.
	ActCut
)

func (a Action) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActDup:
		return "dup"
	case ActReorder:
		return "reorder"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	case ActCut:
		return "cut"
	default:
		return "unknown"
	}
}

// ReorderHold bounds how long an ActReorder-held message waits for a
// successor before being flushed anyway.
const ReorderHold = 5 * time.Millisecond

// Rule is one fault: an action applied with probability Prob to every
// message that matches Dir and Match.
type Rule struct {
	// Dir restricts the rule to one flow direction (DirBoth: no
	// restriction).
	Dir Direction
	// Action is the fault to apply.
	Action Action
	// Prob is the per-message trigger probability in [0, 1]. Rolls are
	// consumed per matched rule, in plan order, until one triggers
	// (probabilities of exactly 0 or 1 decide without consuming a
	// roll). Determinism needs only that the consumption sequence be a
	// pure function of the seed and the message stream — which it is
	// for a fixed plan; editing a plan's rules therefore reshuffles the
	// schedule downstream of the first change.
	Prob float64
	// Delay is ActDelay's added latency. When DelayMax > Delay the added
	// latency is drawn uniformly from [Delay, DelayMax] instead, one
	// deterministic roll per triggered delay.
	Delay time.Duration
	// DelayMax, when above Delay, turns the delay into a uniform range.
	DelayMax time.Duration
	// Match restricts the rule to specific messages; nil matches every
	// message. Compose with MatchType and MatchXID.
	Match func(of.Message) bool
}

// MatchType builds a Rule.Match accepting the listed message types.
func MatchType(types ...of.MsgType) func(of.Message) bool {
	return func(m of.Message) bool {
		t := m.MsgType()
		for _, want := range types {
			if t == want {
				return true
			}
		}
		return false
	}
}

// MatchXID builds a Rule.Match from a transaction-id predicate (e.g.
// of.IsRUMXID to fault only RUM's own probe/barrier traffic).
func MatchXID(pred func(uint32) bool) func(of.Message) bool {
	return func(m of.Message) bool { return pred(m.GetXID()) }
}

// Plan is an ordered rule list plus an optional trace-driven link
// profile. For each message the rules are tried in order; the first rule
// that matches and wins its probability roll supplies the fault, and
// later rules are not consulted (nor their rolls consumed). Survivors
// then cross the traced link, if any: per-interval latency, loss, and
// bandwidth pacing (see Trace).
type Plan struct {
	Rules []Rule
	Trace *Trace
}

// Enabled reports whether the plan carries any rules or a link trace.
// Wrap returns the inner conn untouched for a disabled plan.
func (p *Plan) Enabled() bool { return p != nil && (len(p.Rules) > 0 || p.Trace != nil) }

// Passthrough returns a plan with a single never-triggering rule: every
// message traverses the full fault-evaluation path but none is faulted.
// It is the overhead-measurement configuration the
// FatTreeChurnFaultWrapped benchmark (and its benchcheck ≤5% p99 gate)
// runs under.
func Passthrough() *Plan {
	return &Plan{Rules: []Rule{{Action: ActDrop, Prob: 0}}}
}

// Stats counts the faults an Injector has applied.
type Stats struct {
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Delayed    uint64
	Corrupted  uint64
	Cuts       uint64
}

// String formats the counters compactly (zero counters elided).
func (s Stats) String() string {
	parts := make([]string, 0, 6)
	add := func(name string, v uint64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("dropped", s.Dropped)
	add("duplicated", s.Duplicated)
	add("reordered", s.Reordered)
	add("delayed", s.Delayed)
	add("corrupted", s.Corrupted)
	add("cuts", s.Cuts)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Injector is the seeded randomness source shared by every fault wrapper
// of one deployment. Its decisions depend only on the seed and the order
// in which rolls are consumed, so a single-threaded simulation replays a
// fault schedule exactly; under a wall clock the mutex keeps it safe but
// goroutine interleaving makes schedules statistical rather than
// reproducible.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewInjector creates an injector from a seed.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the injector's seed (experiment reporting).
func (in *Injector) Seed() int64 { return in.seed }

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Roll consumes one probability roll from the deterministic stream —
// for harnesses that draw additional fault coins (e.g. data-plane frame
// loss) from the same seed.
func (in *Injector) Roll(p float64) bool { return in.roll(p) }

// roll consumes one probability roll.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	hit := p >= 1 || in.rng.Float64() < p
	in.mu.Unlock()
	return hit
}

// durationBetween consumes one roll, uniform in [lo, hi] (delay ranges).
func (in *Injector) durationBetween(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	in.mu.Lock()
	d := lo + time.Duration(in.rng.Int63n(int64(hi-lo)+1))
	in.mu.Unlock()
	return d
}

// intn consumes one bounded integer roll (corruption offsets).
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v
}

func (in *Injector) note(a Action) {
	in.mu.Lock()
	switch a {
	case ActDrop:
		in.stats.Dropped++
	case ActDup:
		in.stats.Duplicated++
	case ActReorder:
		in.stats.Reordered++
	case ActDelay:
		in.stats.Delayed++
	case ActCorrupt:
		in.stats.Corrupted++
	case ActCut:
		in.stats.Cuts++
	}
	in.mu.Unlock()
}

// ParsePlan builds a Plan from the compact key=value syntax used by
// cmd/rumproxy's -faults flag. Keys are comma separated:
//
//	drop=P            drop each message with probability P
//	dup=P             duplicate with probability P
//	reorder=P         hold-and-swap with probability P
//	corrupt=P         flip one encoded byte with probability P
//	delay=DUR:P       add DUR extra latency with probability P
//	delay=DUR1-DUR2:P add uniform [DUR1,DUR2] latency with probability P
//	cut=P             kill the channel with probability P (per message)
//	trace=FILE        replay the link profile in FILE (see ParseTrace)
//	flowmods          restrict the preceding rules to FlowMods only
//
// Example: "drop=0.01,dup=0.005,delay=2ms-8ms:0.02,trace=wan.trace".
// Every rule applies to both directions; programmatic users build Plans
// directly for finer-grained control.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return &Plan{}, nil
	}
	p := &Plan{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if field == "flowmods" {
			match := MatchType(of.TypeFlowMod)
			for i := range p.Rules {
				p.Rules[i].Match = match
			}
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		if key == "trace" {
			tr, err := LoadTrace(val)
			if err != nil {
				return nil, err
			}
			p.Trace = tr
			continue
		}
		rule := Rule{Dir: DirBoth}
		switch key {
		case "drop":
			rule.Action = ActDrop
		case "dup":
			rule.Action = ActDup
		case "reorder":
			rule.Action = ActReorder
		case "corrupt":
			rule.Action = ActCorrupt
		case "cut":
			rule.Action = ActCut
		case "delay":
			rule.Action = ActDelay
			durStr, probStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: delay wants DUR:PROB, got %q", val)
			}
			if loStr, hiStr, isRange := strings.Cut(durStr, "-"); isRange {
				lo, errLo := time.ParseDuration(loStr)
				hi, errHi := time.ParseDuration(hiStr)
				if errLo != nil || errHi != nil || lo < 0 || hi < lo {
					return nil, fmt.Errorf("faults: delay range %q wants DUR1-DUR2 with 0 <= DUR1 <= DUR2", durStr)
				}
				rule.Delay, rule.DelayMax = lo, hi
			} else {
				d, err := time.ParseDuration(durStr)
				if err != nil {
					return nil, fmt.Errorf("faults: delay duration %q: %v", durStr, err)
				}
				rule.Delay = d
			}
			val = probStr
		default:
			return nil, fmt.Errorf("faults: unknown fault %q", key)
		}
		prob, err := strconv.ParseFloat(val, 64)
		// The negated range check also rejects NaN, which would slip
		// through `prob < 0 || prob > 1` and arm a rule that never fires.
		if err != nil || !(prob >= 0 && prob <= 1) {
			return nil, fmt.Errorf("faults: probability %q for %s must be in [0,1]", val, key)
		}
		rule.Prob = prob
		p.Rules = append(p.Rules, rule)
	}
	return p, nil
}

// cloneMessage materializes an independent copy of m through an
// encode/decode round trip; corrupt optionally flips one byte of the
// encoded frame first (offset chosen by the injector, header length
// field excluded so the frame still parses as one message). It returns
// nil when the (possibly corrupted) frame no longer decodes.
func cloneMessage(in *Injector, m of.Message, corrupt bool) of.Message {
	buf, err := of.Marshal(m)
	if err != nil {
		return nil
	}
	if corrupt && len(buf) > 4 {
		// Flip within the body or the type/xid region, never the
		// version byte (offset 0) or the 16-bit length (offsets 2-3): a
		// mangled length would model a framing desync, which over TCP
		// kills the whole connection rather than one message — that
		// fault is ActCut's job. Candidates are {1} ∪ [4, len-1],
		// chosen uniformly.
		off := in.intn(len(buf) - 3)
		if off == 0 {
			off = 1
		} else {
			off += 3
		}
		buf[off] ^= 0xff
	}
	out, err := of.Unmarshal(buf)
	if err != nil {
		return nil
	}
	return out
}
