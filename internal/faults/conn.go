package faults

import (
	"sync"
	"sync/atomic"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Conn interposes a fault plan on a transport.Conn. It implements
// transport.Conn, transport.BatchSender, and (for trace-driven link
// profiles) transport.PartialBatchSender; it deliberately does NOT
// implement transport.FrameEncoder, because faulted messages may be
// retained past Send (delay, reorder, pacing) — a wrapped session runs
// under shared-ownership (pipe) rules regardless of the inner conn.
type Conn struct {
	inner transport.Conn
	clock sim.Clock
	inj   *Injector
	plan  *Plan

	killed atomic.Bool
	onKill atomic.Pointer[func()]

	mu      sync.Mutex
	handler transport.Handler
	// held are the per-direction ActReorder hold slots: a held message
	// is released after the next same-direction message passes, or by
	// the ReorderHold flush timer.
	held [2]of.Message

	// Trace-driven link state (plan.Trace != nil). trOrigin anchors the
	// cyclic schedule at Wrap time; tr holds the per-direction pacer.
	trOrigin time.Duration
	trMu     sync.Mutex
	tr       [2]traceState
}

// traceState is one direction's link pacer: nextFree is when the link
// can begin its next transmission, lastOut the latest scheduled delivery
// (deliveries never overtake each other, even across interval edges).
type traceState struct {
	nextFree time.Duration
	lastOut  time.Duration
}

// Wrap interposes the plan on inner, sharing the injector (and therefore
// one deterministic roll sequence) with every other wrapper of the
// deployment. A disabled plan returns inner unchanged — zero overhead
// when fault injection is off; use Passthrough to keep the wrapper layer
// in place with no faults (the overhead benchmark).
func Wrap(inner transport.Conn, clk sim.Clock, inj *Injector, plan *Plan) transport.Conn {
	if !plan.Enabled() {
		return inner
	}
	c := &Conn{inner: inner, clock: clk, inj: inj, plan: plan}
	if plan.Trace != nil {
		c.trOrigin = clk.Now()
	}
	return c
}

// OnKill registers a callback fired (once, via the clock so no wrapper
// lock is held) when the connection is cut by an ActCut rule or Kill.
// The recovery harness uses it to drive DetachSwitchCause + reattach.
func (c *Conn) OnKill(fn func()) { c.onKill.Store(&fn) }

// Kill severs the connection as a fault: both directions go silent,
// Send/SendBatch return transport.ErrClosed, the inner conn closes, and
// the OnKill hook fires. Idempotent.
func (c *Conn) Kill() {
	if c.killed.Swap(true) {
		return
	}
	c.mu.Lock()
	c.held[0], c.held[1] = nil, nil
	c.mu.Unlock()
	_ = c.inner.Close()
	if fn := c.onKill.Load(); fn != nil {
		c.clock.After(0, *fn)
	}
}

// Killed reports whether the connection has been cut.
func (c *Conn) Killed() bool { return c.killed.Load() }

// decide returns the action for one message: the first rule matching the
// direction and predicate rolls its probability; a hit decides, a miss
// falls through to the next rule. The bool reports whether any fault
// applies.
func (c *Conn) decide(dir Direction, m of.Message) (Rule, bool) {
	for _, r := range c.plan.Rules {
		if r.Dir != DirBoth && r.Dir != dir {
			continue
		}
		if r.Match != nil && !r.Match(m) {
			continue
		}
		if c.inj.roll(r.Prob) {
			return r, true
		}
	}
	return Rule{}, false
}

// apply runs one message through the plan, invoking deliver zero, one,
// or two times. It reports false when this message triggered an ActCut
// (or the conn was already dead); the caller owns invoking Kill — after
// flushing whatever already made it to the wire, so a mid-batch cut
// severs behind the delivered prefix, not before it.
func (c *Conn) apply(dir Direction, m of.Message, deliver func(of.Message)) bool {
	if c.killed.Load() {
		return false
	}
	rule, faulted := c.decide(dir, m)
	if !faulted {
		c.deliverOrdered(dir, m, deliver)
		return true
	}
	c.inj.note(rule.Action)
	switch rule.Action {
	case ActDrop:
		// Discarded silently — over a pipe the struct simply never
		// arrives; ownership stays shared so nothing is released here.
	case ActDup:
		c.deliverOrdered(dir, m, deliver)
		if clone := cloneMessage(c.inj, m, false); clone != nil {
			c.deliverOrdered(dir, clone, deliver)
		}
	case ActReorder:
		c.holdForReorder(dir, m, deliver)
	case ActDelay:
		// Deferred deliveries must not use the caller's deliver: a
		// SendBatch collector is dead once its batch flushes, and a
		// message appended to it after the flush would be silently
		// lost instead of delayed. Late deliveries always go straight
		// to the inner conn / handler.
		d := rule.Delay
		if rule.DelayMax > rule.Delay {
			d = c.inj.durationBetween(rule.Delay, rule.DelayMax)
		}
		late := c.lateDeliver(dir)
		c.clock.After(d, func() {
			if !c.killed.Load() {
				late(m)
			}
		})
	case ActCorrupt:
		if clone := cloneMessage(c.inj, m, true); clone != nil {
			c.deliverOrdered(dir, clone, deliver)
		}
	case ActCut:
		return false
	}
	return true
}

// deliverOrdered delivers m, first releasing any reorder-held
// predecessor's successor slot: the held message goes out immediately
// after m, which is the swap ActReorder models.
func (c *Conn) deliverOrdered(dir Direction, m of.Message, deliver func(of.Message)) {
	deliver(m)
	c.mu.Lock()
	held := c.held[dir&1]
	c.held[dir&1] = nil
	c.mu.Unlock()
	if held != nil {
		deliver(held)
	}
}

// holdForReorder parks m in the direction's hold slot (flushing any
// previous occupant first so at most one message is ever held) and arms
// the flush timer for the no-successor case.
func (c *Conn) holdForReorder(dir Direction, m of.Message, deliver func(of.Message)) {
	c.mu.Lock()
	prev := c.held[dir&1]
	c.held[dir&1] = m
	c.mu.Unlock()
	if prev != nil {
		deliver(prev)
	}
	// The flush timer outlives the caller's deliver (a SendBatch may
	// have flushed long before it fires): deliver late, directly.
	late := c.lateDeliver(dir)
	c.clock.After(ReorderHold, func() {
		c.mu.Lock()
		flush := c.held[dir&1]
		if flush != m {
			// A successor already released it (or a newer hold took the
			// slot); this timer has nothing to do.
			c.mu.Unlock()
			return
		}
		c.held[dir&1] = nil
		c.mu.Unlock()
		if !c.killed.Load() {
			late(flush)
		}
	})
}

// lateDeliver returns the direction's deferred delivery path, used by
// timers that may fire after the triggering Send/SendBatch returned.
func (c *Conn) lateDeliver(dir Direction) func(of.Message) {
	if dir == DirFromSwitch {
		return c.deliverUp
	}
	return func(m of.Message) { _ = c.inner.Send(m) }
}

// traceFull reports whether the direction's link pacer has TraceBacklog
// transmissions queued — the point where SendBatchPartial refuses the
// rest of a batch so congestion backs up into the shard's overload
// policy instead of an unbounded timer queue. Pure function of time and
// pacer state: no roll is consumed, so a refused-and-retried message
// perturbs nothing in the deterministic schedule it eventually joins.
func (c *Conn) traceFull(dir Direction) bool {
	now := c.clock.Now()
	c.trMu.Lock()
	defer c.trMu.Unlock()
	iv := c.plan.Trace.at(now - c.trOrigin)
	if iv.Bandwidth <= 0 {
		return false
	}
	tx := time.Second / time.Duration(iv.Bandwidth)
	return c.tr[dir&1].nextFree-now >= TraceBacklog*tx
}

// traceDeliver carries one message across the traced link: it occupies
// the pacer for the current interval's per-message transmission time,
// rolls the interval's loss probability, and schedules delivery after
// transmission plus latency, never overtaking an earlier delivery.
func (c *Conn) traceDeliver(dir Direction, m of.Message) {
	now := c.clock.Now()
	c.trMu.Lock()
	iv := c.plan.Trace.at(now - c.trOrigin)
	st := &c.tr[dir&1]
	var tx time.Duration
	if iv.Bandwidth > 0 {
		tx = time.Second / time.Duration(iv.Bandwidth)
	}
	start := st.nextFree
	if start < now {
		start = now
	}
	st.nextFree = start + tx
	at := start + tx + iv.Latency
	if at < st.lastOut {
		at = st.lastOut
	}
	st.lastOut = at
	c.trMu.Unlock()
	// The loss roll burns link time either way (the frame died on the
	// wire, not in the queue), so the pacer update above stands.
	if c.inj.roll(iv.Loss) {
		c.inj.note(ActDrop)
		return
	}
	late := c.lateDeliver(dir)
	c.clock.After(at-now, func() {
		if !c.killed.Load() {
			late(m)
		}
	})
}

// deliverVia returns the direction's immediate delivery path for fault
// survivors: across the traced link when the plan carries one, otherwise
// the given direct path.
func (c *Conn) deliverVia(dir Direction, direct func(of.Message)) func(of.Message) {
	if c.plan.Trace == nil {
		return direct
	}
	return func(m of.Message) { c.traceDeliver(dir, m) }
}

// Send implements transport.Conn. Send never refuses: a single message
// always joins the traced link's queue (the bounded-backlog refusal is
// SendBatchPartial's job, where the caller can requeue).
func (c *Conn) Send(m of.Message) error {
	if c.killed.Load() {
		return transport.ErrClosed
	}
	deliver := c.deliverVia(DirToSwitch, func(out of.Message) { _ = c.inner.Send(out) })
	if !c.apply(DirToSwitch, m, deliver) {
		c.Kill()
	}
	return nil
}

// SendBatch implements transport.BatchSender: survivors of the fault
// plan ride one inner SendBatch so batch/latency semantics match the
// unwrapped conn; a mid-batch ActCut discards the rest of the batch —
// the "control channel dies mid-batch" scenario the recovery tests
// exercise.
func (c *Conn) SendBatch(ms []of.Message) error {
	if c.killed.Load() {
		return transport.ErrClosed
	}
	if c.plan.Trace != nil {
		// A traced link transmits per message; batch semantics dissolve
		// into the pacer. SendBatch must accept everything, so the
		// backlog bound is not enforced here.
		for _, m := range ms {
			if c.killed.Load() {
				return nil
			}
			if !c.apply(DirToSwitch, m, c.deliverVia(DirToSwitch, nil)) {
				c.Kill()
				return nil
			}
		}
		return nil
	}
	out := make([]of.Message, 0, len(ms))
	cut := false
	for _, m := range ms {
		if !c.apply(DirToSwitch, m, func(o of.Message) { out = append(out, o) }) {
			cut = true
			break
		}
	}
	err := c.flushBatch(out)
	if cut {
		// The prefix is on the wire; everything after the cut point is
		// lost with the channel.
		c.Kill()
	}
	return err
}

// SendBatchPartial implements transport.PartialBatchSender: on a traced
// link it stops accepting messages once the link's backlog bound fills,
// returning how many it took so the shard requeues the rest against its
// bounded outbox — the hop that turns link congestion into overload
// policy decisions. Without a trace it accepts the whole batch.
func (c *Conn) SendBatchPartial(ms []of.Message) (int, error) {
	if c.killed.Load() {
		// Nothing will be delivered and retrying cannot help; report the
		// batch consumed (its futures fail via the detach path).
		return len(ms), transport.ErrClosed
	}
	if c.plan.Trace == nil {
		return len(ms), c.SendBatch(ms)
	}
	for i, m := range ms {
		if c.killed.Load() {
			return len(ms), nil
		}
		if c.traceFull(DirToSwitch) {
			return i, nil
		}
		if !c.apply(DirToSwitch, m, c.deliverVia(DirToSwitch, nil)) {
			// Mid-batch cut: the suffix is lost with the channel.
			c.Kill()
			return len(ms), nil
		}
	}
	return len(ms), nil
}

func (c *Conn) flushBatch(out []of.Message) error {
	if len(out) == 0 {
		return nil
	}
	if bs, ok := c.inner.(transport.BatchSender); ok {
		return bs.SendBatch(out)
	}
	for _, m := range out {
		if err := c.inner.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// SetHandler implements transport.Conn: received messages run through
// the plan's DirFromSwitch rules before reaching h.
func (c *Conn) SetHandler(h transport.Handler) {
	c.mu.Lock()
	c.handler = h
	c.mu.Unlock()
	c.inner.SetHandler(func(m of.Message) {
		if !c.apply(DirFromSwitch, m, c.deliverVia(DirFromSwitch, c.deliverUp)) && !c.killed.Load() {
			c.Kill()
		}
	})
}

func (c *Conn) deliverUp(m of.Message) {
	if c.killed.Load() {
		return
	}
	c.mu.Lock()
	h := c.handler
	c.mu.Unlock()
	if h != nil {
		h(m)
	}
}

// Close implements transport.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.held[0], c.held[1] = nil, nil
	c.mu.Unlock()
	return c.inner.Close()
}
