package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// holdStrategy retains every update it is handed (per the pooled-Update
// contract) and confirms only when the test drives it — the harness for
// exercising the seq ring's out-of-order, wraparound, and stale-pointer
// behavior directly.
type holdStrategy struct {
	mu  sync.Mutex
	sws []*holdSwitch
}

func (s *holdStrategy) Name() string { return "test-hold" }

func (s *holdStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	t := &holdSwitch{sc: sc}
	s.mu.Lock()
	s.sws = append(s.sws, t)
	s.mu.Unlock()
	return t
}

// latest returns the most recently attached per-switch instance.
func (s *holdStrategy) latest() *holdSwitch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sws[len(s.sws)-1]
}

type holdSwitch struct {
	BaseSwitchStrategy
	sc StrategyContext

	mu   sync.Mutex
	held []*Update
}

func (t *holdSwitch) OnFlowMod(u *Update) {
	u.Retain() // stored past possible external resolution (detach, errors)
	t.mu.Lock()
	t.held = append(t.held, u)
	t.mu.Unlock()
}

func (t *holdSwitch) heldCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held)
}

// confirmHeld confirms the i-th update handed to the strategy (issue
// order) without dropping the strategy's reference.
func (t *holdSwitch) confirmHeld(i int) {
	t.mu.Lock()
	u := t.held[i]
	t.mu.Unlock()
	t.sc.Confirm(u, OutcomeInstalled)
}

// releaseAll drops every retained reference.
func (t *holdSwitch) releaseAll() {
	t.mu.Lock()
	held := t.held
	t.held = nil
	t.mu.Unlock()
	for _, u := range held {
		u.Release()
	}
}

// holdBed is a single-switch harness with the hold strategy installed.
func holdBed(t *testing.T) (*sim.Sim, *RUM, transport.Conn, *holdStrategy) {
	t.Helper()
	s := sim.New()
	hs := &holdStrategy{}
	r, err := New(Config{Clock: s, Strategy: hs, RUMAware: true}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := attachEchoSwitch(t, s, r, "s1")
	return s, r, ctrl, hs
}

// attachEchoSwitch attaches a barrier-echoing switch named sw and returns
// the controller-side conn.
func attachEchoSwitch(t *testing.T, s *sim.Sim, r *RUM, sw string) transport.Conn {
	t.Helper()
	ctrlTop, ctrlBottom := transport.Pipe(s, 0)
	rumSide, swSide := transport.Pipe(s, 0)
	swSide.SetHandler(func(m of.Message) {
		if br, ok := m.(*of.BarrierRequest); ok {
			rep := of.AcquireBarrierReply()
			rep.SetXID(br.GetXID())
			_ = swSide.Send(rep)
		}
	})
	ctrlTop.SetHandler(func(of.Message) {})
	if _, err := r.AttachSwitch(sw, 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	return ctrlTop
}

// TestRingOutOfOrderConfirms drives single-update confirmations out of
// issue order: holes behind the head must not resolve the prefix, the
// head must jump over reaped holes once the gap fills, and every future
// must still resolve exactly once.
func TestRingOutOfOrderConfirms(t *testing.T) {
	s, r, ctrl, hs := holdBed(t)
	var handles []*UpdateHandle
	for i := uint32(1); i <= 3; i++ {
		handles = append(handles, r.Watch("s1", i))
		if err := ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	sw := hs.latest()
	if sw.heldCount() != 3 {
		t.Fatalf("strategy holds %d updates, want 3", sw.heldCount())
	}
	sess, _ := r.sessionByName("s1")
	ct := func() uint64 { return sess.ack.confirmedThrough() }

	sw.confirmHeld(2) // seq 3: a hole far ahead of the head
	s.Run()
	if got := ct(); got != 0 {
		t.Fatalf("confirmedThrough = %d after out-of-order confirm, want 0", got)
	}
	if _, ok := handles[2].Result(); !ok {
		t.Fatal("out-of-order confirmed update did not resolve its future")
	}
	if _, ok := handles[0].Result(); ok {
		t.Fatal("unconfirmed update's future resolved")
	}

	sw.confirmHeld(0) // seq 1: head advances to 2 (seq 2 still pending)
	s.Run()
	if got := ct(); got != 1 {
		t.Fatalf("confirmedThrough = %d, want 1", got)
	}

	sw.confirmHeld(1) // seq 2: head must jump the already-reaped hole to 4
	s.Run()
	if got := ct(); got != 3 {
		t.Fatalf("confirmedThrough = %d, want 3", got)
	}
	if n := sess.ack.pendingCount(); n != 0 {
		t.Fatalf("pendingCount = %d, want 0", n)
	}
	for i, h := range handles {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: resolved=%v outcome=%v", i+1, ok, res.Outcome)
		}
	}
	// Double confirmation of a resolved update must be a no-op.
	sw.confirmHeld(2)
	s.Run()
	sw.releaseAll()
}

// TestRingGrowthAndWraparound pushes the pending window past the ring's
// initial capacity (forcing a grow-and-rehash with a non-zero head) and
// then cycles several capacities' worth of seqs through the ring so slot
// indices wrap many times.
func TestRingGrowthAndWraparound(t *testing.T) {
	s := sim.New()
	r, err := New(Config{Clock: s, Technique: TechBarriers, RUMAware: true}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := attachEchoSwitch(t, s, r, "s1")
	sess, _ := r.sessionByName("s1")

	// Wraparound: 16 waves of 100 confirm-as-you-go updates cycle seq
	// 1..1600 through a ring that never needs to grow.
	xid := uint32(0)
	for wave := 0; wave < 16; wave++ {
		var handles []*UpdateHandle
		for i := 0; i < 100; i++ {
			xid++
			handles = append(handles, r.Watch("s1", xid))
			if err := ctrl.Send(testFlowMod(xid)); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		for _, h := range handles {
			if res, ok := h.Result(); !ok || res.Outcome != OutcomeInstalled {
				t.Fatalf("wave %d xid %d: resolved=%v outcome=%v", wave, h.XID(), ok, res.Outcome)
			}
		}
	}
	if got := sess.ack.confirmedThrough(); got != 1600 {
		t.Fatalf("confirmedThrough = %d after wraparound waves, want 1600", got)
	}

	// Growth: a single burst far past ackRingMinCap while nothing
	// confirms (the switch echo is disabled by queueing all sends before
	// running the sim — the burst is tracked in one go).
	const burst = 3 * ackRingMinCap
	var handles []*UpdateHandle
	for i := 0; i < burst; i++ {
		xid++
		handles = append(handles, r.Watch("s1", xid))
		if err := ctrl.Send(testFlowMod(xid)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for _, h := range handles {
		if res, ok := h.Result(); !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("post-growth xid %d: resolved=%v outcome=%v", h.XID(), ok, res.Outcome)
		}
	}
	if n := sess.ack.pendingCount(); n != 0 {
		t.Fatalf("pendingCount = %d after growth burst, want 0", n)
	}
}

// TestStaleConfirmAfterDetachIsNoOp is the pooled-update ABA guard: a
// strategy's retained reference keeps a detach-failed update alive, so a
// late Confirm through the old session must no-op instead of resolving —
// or corrupting — an unrelated update tracked by the successor session
// at the same ring position.
func TestStaleConfirmAfterDetachIsNoOp(t *testing.T) {
	s, r, ctrl, hs := holdBed(t)
	var oldHandles []*UpdateHandle
	for i := uint32(1); i <= 4; i++ {
		oldHandles = append(oldHandles, r.Watch("s1", i))
		if err := ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	oldSwitch := hs.latest()
	if !r.DetachSwitch("s1") {
		t.Fatal("DetachSwitch reported not attached")
	}
	for i, h := range oldHandles {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeFailed {
			t.Fatalf("old update %d after detach: resolved=%v outcome=%v, want failed", i+1, ok, res.Outcome)
		}
	}

	// Reattach; the new session re-issues seqs 1..4 with fresh updates.
	ctrl = attachEchoSwitch(t, s, r, "s1")
	var newHandles []*UpdateHandle
	for i := uint32(101); i <= 104; i++ {
		newHandles = append(newHandles, r.Watch("s1", i))
		if err := ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	// The stale strategy instance fires its retained (already-failed)
	// updates at the old session — every one must be a no-op: the new
	// session's updates sit at the same seqs/ring positions and must not
	// resolve through the stale pointers.
	for i := 0; i < 4; i++ {
		oldSwitch.confirmHeld(i)
	}
	s.Run()
	oldSwitch.releaseAll()
	for i, h := range newHandles {
		if _, ok := h.Result(); ok {
			t.Fatalf("new update %d resolved through a stale pooled pointer", i+1)
		}
	}

	// Confirming through the live session still works.
	newSwitch := hs.latest()
	for i := 0; i < 4; i++ {
		newSwitch.confirmHeld(i)
	}
	s.Run()
	for i, h := range newHandles {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("new update %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
	for i, h := range oldHandles {
		if res, _ := h.Result(); res.Outcome != OutcomeFailed {
			t.Fatalf("old update %d flipped to %v after stale confirm", i+1, res.Outcome)
		}
	}
	hs.latest().releaseAll()
	r.DetachSwitch("s1")
}

// TestRingChurnDetachRace hammers the pooled path under -race on a wall
// clock: per-switch churn with the general strategy's fallback machinery
// (retained updates, deadline closures) racing detach/reattach cycles.
// Every future must resolve — installed, fallback, or failed — and
// nothing may deadlock or double-resolve.
func TestRingChurnDetachRace(t *testing.T) {
	const (
		nSwitches = 4
		cycles    = 4
		nUpdates  = 40
	)
	clk := sim.NewWall()
	perSwitch := map[string]Technique{
		"sw0": TechGeneral, // unbootstrapped → control-plane fallback
		"sw1": TechBarriers,
		"sw2": TechGeneral,
		"sw3": TechTimeout,
	}
	r, err := New(Config{
		Clock:     clk,
		Technique: TechBarriers,
		PerSwitch: perSwitch,
		RUMAware:  true,
		Timeout:   2 * time.Millisecond,
	}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	attach := func(name string) transport.Conn {
		ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
		rumSide, swSide := transport.Pipe(clk, 0)
		swSide.SetHandler(func(m of.Message) {
			if br, ok := m.(*of.BarrierRequest); ok {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
			}
		})
		ctrlTop.SetHandler(func(of.Message) {})
		if _, err := r.AttachSwitch(name, 1, ctrlBottom, rumSide); err != nil {
			t.Fatal(err)
		}
		return ctrlTop
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nSwitches; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			name := fmt.Sprintf("sw%d", idx)
			for c := 0; c < cycles; c++ {
				conn := attach(name)
				var handles []*UpdateHandle
				for u := 0; u < nUpdates; u++ {
					xid := uint32(idx*100000 + c*1000 + u + 1)
					handles = append(handles, r.Watch(name, xid))
					if err := conn.Send(testFlowMod(xid)); err != nil {
						t.Errorf("%s: send: %v", name, err)
						return
					}
					if u == nUpdates/2 {
						// Mid-churn detach: in-flight updates fail, the
						// rest race the teardown.
						r.DetachSwitch(name)
						conn = attach(name)
					}
				}
				for _, h := range handles {
					if _, err := h.AwaitAck(ctx); err != nil {
						t.Errorf("%s xid %d wedged: %v", name, h.XID(), err)
						return
					}
				}
				r.DetachSwitch(name)
			}
		}(i)
	}
	wg.Wait()
}

// BenchmarkConfirmWithPending proves confirmation cost is flat in the
// number of pending updates: a single out-of-order confirmation against
// 1k and 64k pending updates must cost the same. (The pre-ring ack layer
// re-pruned its pending slice per confirmation — O(pending) each, O(n²)
// under churn.)
func BenchmarkConfirmWithPending(b *testing.B) {
	for _, pending := range []int{1 << 10, 1 << 16} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			s := sim.New()
			hs := &holdStrategy{}
			r, err := New(Config{Clock: s, Strategy: hs}, NewTopology(nil))
			if err != nil {
				b.Fatal(err)
			}
			ctrlTop, ctrlBottom := transport.Pipe(s, 0)
			rumSide, _ := transport.Pipe(s, 0)
			ctrlTop.SetHandler(func(of.Message) {})
			if _, err := r.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
				b.Fatal(err)
			}
			sw := hs.latest()
			const chunk = 1 << 14
			sent := uint32(0)
			fill := func(n int) {
				for i := 0; i < n; i++ {
					sent++
					_ = ctrlTop.Send(testFlowMod(sent))
				}
				s.Run()
			}
			fill(pending + chunk)
			next := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next+pending >= sw.heldCount() {
					b.StopTimer()
					fill(chunk)
					s.Run()
					b.StartTimer()
				}
				// Oldest-first single confirmations: each is one done-bit
				// plus a head advance, regardless of the backlog depth.
				sw.confirmHeld(next)
				next++
			}
			b.StopTimer()
			sw.releaseAll()
		})
	}
}
