package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// TestOverloadShedPolicy: with a bounded outbox and the Shed policy, a
// burst larger than the bound must fail the overflow's futures fast with
// ErrOverloaded — and only ErrOverloaded — while the admitted prefix
// confirms normally and the outbox never grows past the bound.
func TestOverloadShedPolicy(t *testing.T) {
	const limit, n = 4, 10
	liveBefore := LiveUpdates()
	bed := newShardBed(t, Config{
		Technique:   TechBarriers,
		RUMAware:    true,
		OutboxLimit: limit,
		Overload:    OverloadShed,
	}, 0)
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	installed, shed := 0, 0
	for i, h := range handles {
		res, ok := h.Result()
		if !ok {
			t.Fatalf("update %d wedged: future unresolved", i+1)
		}
		switch res.Outcome {
		case OutcomeInstalled:
			installed++
		case OutcomeFailed:
			if !errors.Is(res.Err, ErrOverloaded) {
				t.Fatalf("update %d failed with %v, want ErrOverloaded", i+1, res.Err)
			}
			shed++
		default:
			t.Fatalf("update %d outcome %v", i+1, res.Outcome)
		}
	}
	if shed == 0 || installed == 0 {
		t.Fatalf("installed=%d shed=%d: burst of %d over limit %d should split", installed, shed, n, limit)
	}
	if installed+shed != n {
		t.Fatalf("installed=%d + shed=%d != %d", installed, shed, n)
	}
	if got := bed.rum.OverloadSheds(); got != uint64(shed) {
		t.Fatalf("OverloadSheds() = %d, want %d", got, shed)
	}
	// Bounded memory: tracked FlowMods never exceed the limit; the one
	// coalesced RUM barrier may ride on top.
	if hw := bed.rum.OutboxHighWater("s1"); hw > limit+1 {
		t.Fatalf("outbox high water %d exceeds limit %d (+1 barrier slack)", hw, limit)
	}
	// No shed FlowMod reached the wire.
	mods := 0
	for _, m := range bed.toSwitch {
		if _, ok := m.(*of.FlowMod); ok {
			mods++
		}
	}
	if mods != installed {
		t.Fatalf("switch received %d FlowMods, want %d (the admitted set)", mods, installed)
	}
	if live := LiveUpdates() - liveBefore; live != 0 {
		t.Fatalf("%d updates leaked (shed path must release every reference)", live)
	}
}

// TestOverloadBlockUnderSimSheds: the discrete-event clock is
// single-threaded, so a Block admitter cannot wait for a flush that would
// run on the same thread. The documented degradation is an immediate
// deadline expiry: overflow updates fail typed, nothing wedges, and the
// simulation drains.
func TestOverloadBlockUnderSimSheds(t *testing.T) {
	const limit, n = 2, 6
	bed := newShardBed(t, Config{
		Technique:   TechBarriers,
		RUMAware:    true,
		OutboxLimit: limit,
		Overload:    OverloadBlock,
	}, 0)
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	for i, h := range handles {
		res, ok := h.Result()
		if !ok {
			t.Fatalf("update %d wedged under Block+sim", i+1)
		}
		if res.Outcome == OutcomeFailed && !errors.Is(res.Err, ErrOverloaded) {
			t.Fatalf("update %d failed with %v, want ErrOverloaded", i+1, res.Err)
		}
	}
	if bed.rum.OverloadSheds() == 0 {
		t.Fatal("no sheds recorded for a burst 3x the bound")
	}
}

// TestOverloadBlockWallClock: on a real clock the Block policy parks the
// dispatch path until the outbox drains, so a burst far larger than the
// bound completes with zero sheds and the outbox stays bounded.
func TestOverloadBlockWallClock(t *testing.T) {
	const limit, n = 4, 32
	clk := sim.NewWall()
	cfg := Config{
		Technique:        TechBarriers,
		RUMAware:         true,
		OutboxLimit:      limit,
		Overload:         OverloadBlock,
		OverloadDeadline: 5 * time.Second, // generous: loaded CI must not false-shed
		Clock:            clk,
	}
	r, err := New(cfg, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
	rumSide, swSide := transport.Pipe(clk, 0)
	swSide.SetHandler(func(m of.Message) {
		if br, ok := m.(*of.BarrierRequest); ok {
			rep := of.AcquireBarrierReply()
			rep.SetXID(br.GetXID())
			_ = swSide.Send(rep)
		}
	})
	ctrlTop.SetHandler(func(of.Message) {})
	if _, err := r.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, r.Watch("s1", i))
		if err := ctrlTop.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, h := range handles {
		res, err := h.AwaitAck(ctx)
		if err != nil {
			t.Fatalf("update %d: timed out waiting under Block: %v", i+1, err)
		}
		if res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: outcome %v (err %v), want installed", i+1, res.Outcome, res.Err)
		}
	}
	if got := r.OverloadSheds(); got != 0 {
		t.Fatalf("Block on a draining switch shed %d updates, want 0", got)
	}
	if hw := r.OutboxHighWater("s1"); hw > limit+1 {
		t.Fatalf("outbox high water %d exceeds limit %d (+1 barrier slack)", hw, limit)
	}
	r.DetachSwitch("s1")
}

// throttledConn wraps a pipe end and accepts exactly one message per
// SendBatchPartial call, refusing the rest — a stand-in for a paced,
// congested link that forces the shard through its requeue-and-retry
// path.
type throttledConn struct {
	transport.Conn
}

func (c *throttledConn) SendBatchPartial(ms []of.Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if err := c.Conn.Send(ms[0]); err != nil {
		return 0, err
	}
	return 1, nil
}

// TestOverloadDegradeSlowSwitch: the Degrade policy must notice a switch
// whose link drains slowly (drain-latency EWMA over the threshold), flip
// the shard into degraded mode, and still deliver everything — degraded
// means wider batching windows, not loss.
func TestOverloadDegradeSlowSwitch(t *testing.T) {
	s := sim.New()
	cfg := Config{
		Technique:      TechBarriers,
		RUMAware:       true,
		OutboxLimit:    64, // roomy: this test is about slowness, not shedding
		Overload:       OverloadDegrade,
		DegradeLatency: 100 * time.Microsecond,
		DegradeHold:    time.Millisecond,
		Clock:          s,
	}
	r, err := New(cfg, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctrlTop, ctrlBottom := transport.Pipe(s, 0)
	rumSide, swSide := transport.Pipe(s, 0)
	barriers := 0
	swSide.SetHandler(func(m of.Message) {
		if br, ok := m.(*of.BarrierRequest); ok {
			barriers++
			rep := of.AcquireBarrierReply()
			rep.SetXID(br.GetXID())
			_ = swSide.Send(rep)
		}
	})
	ctrlTop.SetHandler(func(of.Message) {})
	if _, err := r.AttachSwitch("s1", 1, ctrlBottom, &throttledConn{Conn: rumSide}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, r.Watch("s1", i))
		if err := ctrlTop.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, h := range handles {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: resolved=%v outcome=%v err=%v, want installed", i+1, ok, res.Outcome, res.Err)
		}
	}
	if !r.Degraded("s1") {
		t.Fatal("slow switch (1 msg per 1ms hold) not marked degraded")
	}
	if got := r.OverloadSheds(); got != 0 {
		t.Fatalf("Degrade with a roomy bound shed %d updates, want 0", got)
	}
	// A follow-up burst on the degraded switch goes through the widened
	// window and still confirms.
	var again []*UpdateHandle
	for i := uint32(100); i < 100+n; i++ {
		again = append(again, r.Watch("s1", i))
		if err := ctrlTop.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, h := range again {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("degraded-mode update %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
}

// TestOverloadDisabledCostsNothing: with OutboxLimit zero (the default)
// the admission gate is off — no reservations, no sheds, behavior
// identical to the unbounded baseline.
func TestOverloadDisabledCostsNothing(t *testing.T) {
	bed := newShardBed(t, Config{Technique: TechBarriers, RUMAware: true}, 0)
	const n = 16
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	for i, h := range handles {
		if res, ok := h.Result(); !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
	if bed.rum.OverloadSheds() != 0 {
		t.Fatal("sheds recorded with the bound disabled")
	}
}
