package core

import (
	"sort"
	"sync"
	"time"

	"rum/internal/flowtable"
	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
)

// probeMode describes what signal confirms a tracked modification.
type probeMode int

const (
	// expectArrival: the probe starts arriving from the receiver once the
	// rule is installed (forwarding rules; rule modifications).
	expectArrival probeMode = iota
	// expectSilence: the probe stops arriving once the change takes
	// effect (rule deletions; installs of drop rules over a forwarding
	// fallback — the ACL case of §3.2.2).
	expectSilence
)

// genProbe is one outstanding general-probing measurement.
type genProbe struct {
	u        *Update
	mode     probeMode
	probePkt packet.Fields // packet injected via the injector A
	expected packet.Fields // fields as they arrive at the receiver C
	recvName string        // receiver session (C or, for silence mode, D)
	rounds   int           // probe rounds since issue
	quiet    int           // consecutive rounds without arrival (silence mode)
	arrived  bool          // an arrival was seen this round
	sent     bool          // at least one probe injected
}

// generalStrategy implements §3.2.2 as an AckStrategy: each modification
// gets its own probe packet, crafted to hit exactly the probed rule and
// to be distinguishable from the rules beneath it. It works even when the
// switch reorders modifications, because no inference is made from other
// rules' fates. Probes surface at neighbor switches, so the deployment
// routes arrivals across every switch it serves.
type generalStrategy struct {
	mu       sync.Mutex
	bySwitch []*generalSwitch // deterministic attach order
}

func newGeneralStrategy() *generalStrategy { return &generalStrategy{} }

func (g *generalStrategy) Name() string { return string(TechGeneral) }

func (g *generalStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	t := &generalSwitch{parent: g, sc: sc, shadow: flowtable.New()}
	g.mu.Lock()
	g.bySwitch = append(g.bySwitch, t)
	g.mu.Unlock()
	return t
}

// remove drops a detached per-switch instance from probe routing.
func (g *generalStrategy) remove(t *generalSwitch) {
	g.mu.Lock()
	kept := g.bySwitch[:0]
	for _, q := range g.bySwitch {
		if q != t {
			kept = append(kept, q)
		}
	}
	g.bySwitch = kept
	g.mu.Unlock()
}

// RouteProbe implements ProbeRouter: a probe arrival at receiver recv is
// matched against every served switch's outstanding probes. Packets
// carrying the receiver's probe-catch ToS are RUM's to consume whether or
// not they match.
func (g *generalStrategy) RouteProbe(recv string, pin *of.PacketIn, f packet.Fields) bool {
	// Sequential probes live in their own header space (the reserved
	// probe-sink destination); never claim them, even when their version
	// ToS collides with a catch value (possible in mixed deployments:
	// versions cycle 0x04..0xf8, which overlaps the catch range).
	if f.NWDstAddr() == ProbeSinkIP {
		return false
	}
	g.mu.Lock()
	insts := append([]*generalSwitch(nil), g.bySwitch...)
	g.mu.Unlock()
	if len(insts) == 0 {
		return false
	}
	if f.NWTOS != insts[0].sc.CatchTos(recv) {
		return false
	}
	for _, t := range insts {
		if t.noteArrival(recv, f) {
			break
		}
	}
	return true
}

// generalSwitch is the per-switch half of the general strategy.
type generalSwitch struct {
	BaseSwitchStrategy
	parent *generalStrategy
	sc     StrategyContext

	mu               sync.Mutex
	shadow           *flowtable.Table // control-plane intent: all mods forwarded so far
	probes           []*genProbe      // issue order
	pumping          bool
	bootOK           bool
	detached         bool
	fallbackBarriers map[uint32]*Update
}

// Detach implements SwitchDetacher: drop outstanding probes (stopping the
// pump at its next tick) and leave probe routing.
func (t *generalSwitch) Detach() {
	t.mu.Lock()
	t.detached = true
	probes := t.probes
	fallbacks := t.fallbackBarriers
	t.probes = nil
	t.fallbackBarriers = nil
	t.mu.Unlock()
	for _, gp := range probes {
		gp.u.Release()
	}
	for _, u := range fallbacks {
		u.Release()
	}
	t.parent.remove(t)
}

// Bootstrap installs the probe-catch rule (ToS == S_self → controller)
// on this switch, and — because this switch's probes surface at its
// neighbors, which in a heterogeneous deployment may run strategies that
// install no catch rules of their own — the neighbors' catch rules on
// every attached neighbor (idempotent adds).
func (t *generalSwitch) Bootstrap() error {
	if _, _, ok := t.sc.Injector(); !ok {
		return errNoNeighbor(t.sc.Switch())
	}
	t.sc.SendToSwitch(t.catchRuleMod(t.sc.Switch()))
	neighbors := t.sc.Topology().Neighbors(t.sc.Switch())
	names := make([]string, 0, len(neighbors))
	for _, nb := range neighbors {
		names = append(names, nb)
	}
	sort.Strings(names)
	for _, nb := range names {
		if !t.sc.Attached(nb) {
			continue
		}
		t.sc.Inject(nb, t.catchRuleMod(nb))
	}
	t.mu.Lock()
	t.bootOK = true
	t.mu.Unlock()
	return nil
}

// catchRuleMod builds sw's probe-catch rule: ToS == S_sw → controller.
func (t *generalSwitch) catchRuleMod(sw string) *of.FlowMod {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType | of.WcNWTOS
	m.DLType = packet.EtherTypeIPv4
	m.NWTOS = t.sc.CatchTos(sw)
	catch := &of.FlowMod{
		Command:  of.FCAdd,
		Priority: PrioCatch,
		Match:    m,
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: of.PortController, MaxLen: 0xffff}},
	}
	catch.SetXID(t.sc.NewXID())
	return catch
}

func (t *generalSwitch) OnFlowMod(u *Update) {
	t.mu.Lock()
	boot := t.bootOK && !t.detached
	// Snapshot the table before this mod, then advance the shadow intent.
	before := t.shadow.Rules()
	t.shadow.Apply(u.FlowMod())
	t.mu.Unlock()
	if !boot {
		t.fallback(u)
		return
	}
	probe, err := t.buildProbe(u, before)
	if err != nil {
		t.fallback(u)
		return
	}
	u.Retain() // the outstanding probe's reference on the pooled update
	t.mu.Lock()
	t.probes = append(t.probes, probe)
	t.mu.Unlock()
	t.injectProbe(probe)
	t.ensurePump()
}

// OnUpdateResolved implements ResolutionObserver: drop the probe and any
// fallback barrier of an update that was resolved outside the strategy
// (switch error, detach); its signal can never arrive, and a clogged
// probe list would starve newer updates of their ProbeBatch slots.
func (t *generalSwitch) OnUpdateResolved(u *Update, outcome Outcome) {
	dropped := 0
	t.mu.Lock()
	kept := t.probes[:0]
	for _, gp := range t.probes {
		if gp.u != u {
			kept = append(kept, gp)
		} else {
			dropped++
		}
	}
	t.probes = kept
	for xid, fu := range t.fallbackBarriers {
		if fu == u {
			delete(t.fallbackBarriers, xid)
			dropped++
		}
	}
	t.mu.Unlock()
	for ; dropped > 0; dropped-- {
		u.Release()
	}
}

// BootstrapNeighbor implements NeighborBootstrapper: a reconnecting
// neighbor (possibly back with an empty flow table) gets its probe-catch
// rule reinstalled, since this switch's probes may surface there.
func (t *generalSwitch) BootstrapNeighbor(sw string) {
	t.mu.Lock()
	active := t.bootOK && !t.detached
	t.mu.Unlock()
	if !active {
		return
	}
	for _, nb := range t.sc.Topology().Neighbors(t.sc.Switch()) {
		if nb == sw {
			t.sc.Inject(sw, t.catchRuleMod(sw))
			return
		}
	}
}

// buildProbe crafts the probe for one modification, given the rule table
// before the modification was applied.
func (t *generalSwitch) buildProbe(u *Update, before []hsa.Rule) (*genProbe, error) {
	fm := u.FlowMod()
	rule := hsa.Rule{Priority: fm.Priority, Match: fm.Match.Normalize(), Actions: fm.Actions}
	switch fm.Command {
	case of.FCAdd, of.FCModify, of.FCModifyStrict:
		// Exclude earlier versions of the same rule from the fallback
		// computation: while the mod is not yet applied, the packet hits
		// the OLD rule, so the old actions are the "fallback" to
		// distinguish from.
		table := rulesExcept(before, rule.Match, rule.Priority)
		if len(fm.Actions) == 0 {
			return t.buildDropProbe(u, rule, table)
		}
		return t.buildForwardProbe(u, rule, table)
	case of.FCDelete, of.FCDeleteStrict:
		// Probe the rule being removed: its probe keeps arriving while
		// the rule is present and stops when it is gone.
		victim := findRule(before, fm.Match.Normalize(), fm.Priority, fm.Command == of.FCDeleteStrict)
		if victim == nil {
			return nil, hsa.ErrNoProbe // nothing to observe
		}
		table := rulesExcept(before, victim.Match, victim.Priority)
		gp, err := t.buildForwardProbe(u, *victim, table)
		if err != nil {
			return nil, err
		}
		gp.mode = expectSilence
		return gp, nil
	default:
		return nil, hsa.ErrNoProbe
	}
}

// buildForwardProbe handles rules that forward to a next-hop switch C.
func (t *generalSwitch) buildForwardProbe(u *Update, rule hsa.Rule, table []hsa.Rule) (*genProbe, error) {
	outPort, ok := firstOutput(rule.Actions)
	if !ok {
		return nil, hsa.ErrNoProbe
	}
	recv := t.sc.Topology().Neighbors(t.sc.Switch())[outPort]
	if recv == "" {
		return nil, hsa.ErrNoProbe // next hop is a host or unknown
	}
	if !t.sc.Attached(recv) {
		return nil, hsa.ErrNoProbe
	}
	// The probed rule must leave ToS to the probe (H must be wildcarded on
	// normal rules; rules rewriting ToS would destroy S_C).
	if rule.Match.Wildcards&of.WcNWTOS == 0 || rewritesTos(rule.Actions) {
		return nil, hsa.ErrNoProbe
	}
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = t.sc.CatchTos(recv)
	fields, err := hsa.FindProbe(rule, table, pin)
	if err != nil {
		return nil, err
	}
	expected := applyRewrites(fields, rule.Actions)
	expected.InPort = 0
	return &genProbe{
		u:        u,
		mode:     expectArrival,
		probePkt: fields,
		expected: expected,
		recvName: recv,
	}, nil
}

// buildDropProbe handles installs of drop rules: confirmable only when a
// lower-priority rule currently forwards the probe to a catchable switch D
// (the probe then *stops* arriving once the drop rule lands).
func (t *generalSwitch) buildDropProbe(u *Update, rule hsa.Rule, table []hsa.Rule) (*genProbe, error) {
	// First find a probe ignoring the receiver pin: the distinguishing
	// signal comes from the fallback rule's forwarding.
	fields, err := hsa.FindProbe(rule, table, of.MatchAll())
	if err != nil {
		return nil, err
	}
	fb := lookupRules(table, fields)
	if fb == nil {
		return nil, hsa.ErrNoProbe // fallback is an implicit drop: no signal either way
	}
	fbPort, ok := firstOutput(fb.Actions)
	if !ok {
		return nil, hsa.ErrNoProbe
	}
	recv := t.sc.Topology().Neighbors(t.sc.Switch())[fbPort]
	if recv == "" {
		return nil, hsa.ErrNoProbe
	}
	if !t.sc.Attached(recv) {
		return nil, hsa.ErrNoProbe
	}
	if rule.Match.Wildcards&of.WcNWTOS == 0 || rewritesTos(fb.Actions) {
		return nil, hsa.ErrNoProbe
	}
	// Re-pin the probe to D's catch value so the fallback path is
	// observable.
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = t.sc.CatchTos(recv)
	fields, err = hsa.FindProbe(rule, table, pin)
	if err != nil {
		return nil, err
	}
	expected := applyRewrites(fields, fb.Actions)
	expected.InPort = 0
	return &genProbe{
		u:        u,
		mode:     expectSilence,
		probePkt: fields,
		expected: expected,
		recvName: recv,
	}, nil
}

// fallback acknowledges via the control-plane timeout technique when no
// probe exists (§3.2.2: "RUM falls back to one of the control plane-based
// techniques").
func (t *generalSwitch) fallback(u *Update) {
	t.sc.NoteFallback(u)
	u.Retain() // the fallback-barrier table's reference
	t.sendFallbackBarrier(u)
}

// sendFallbackBarrier emits one fallback barrier holding the table's
// reference on u, and arms the lost-barrier retry: if the reply is still
// missing a full Config.BarrierRetry later (a dropped request or reply
// on a faulty channel), the entry is re-issued with a fresh barrier
// instead of wedging the future. The reference migrates across retries
// and is finally released by OnBarrierReply's deadline timer,
// OnUpdateResolved, or Detach.
func (t *generalSwitch) sendFallbackBarrier(u *Update) {
	xid := t.sc.NewXID()
	t.mu.Lock()
	if t.detached {
		t.mu.Unlock()
		u.Release()
		return
	}
	if t.fallbackBarriers == nil {
		t.fallbackBarriers = make(map[uint32]*Update)
	}
	t.fallbackBarriers[xid] = u
	t.mu.Unlock()
	br := of.AcquireBarrierRequest()
	br.SetXID(xid)
	t.sc.SendToSwitch(br)
	retry := t.sc.Config().BarrierRetry
	if retry < 0 {
		return
	}
	t.sc.Clock().After(retry, func() {
		t.mu.Lock()
		fu, still := t.fallbackBarriers[xid]
		if still && fu == u {
			delete(t.fallbackBarriers, xid)
		} else {
			still = false
		}
		t.mu.Unlock()
		if still {
			t.sendFallbackBarrier(u)
		}
	})
}

func (t *generalSwitch) OnBarrierReply(rep *of.BarrierReply) bool {
	t.mu.Lock()
	u, mine := t.fallbackBarriers[rep.GetXID()]
	if mine {
		delete(t.fallbackBarriers, rep.GetXID())
	}
	t.mu.Unlock()
	if !mine {
		return false
	}
	// The table's reference moves into the timer closure: even if the
	// update resolves elsewhere (error, detach) before the deadline, the
	// late Confirm hits this same — still live — struct and no-ops.
	t.sc.Clock().After(t.sc.Config().Timeout, func() {
		t.sc.Confirm(u, OutcomeFallback)
		u.Release()
	})
	return true
}

// noteArrival processes one probe arrival; returns true when it matched an
// outstanding probe of this switch.
func (t *generalSwitch) noteArrival(recv string, f packet.Fields) bool {
	f.InPort = 0 // receivers see their own in_port; expectations carry none
	t.mu.Lock()
	var match *genProbe
	for _, gp := range t.probes {
		if gp.recvName == recv && gp.expected == f {
			match = gp
			break
		}
	}
	var confirmNow *Update
	if match != nil {
		switch match.mode {
		case expectArrival:
			confirmNow = match.u
			t.removeProbeLocked(match)
		case expectSilence:
			match.arrived = true
		}
	}
	t.mu.Unlock()
	if confirmNow != nil {
		t.sc.Confirm(confirmNow, OutcomeInstalled)
		confirmNow.Release() // the removed probe's reference
	}
	return match != nil
}

func (t *generalSwitch) removeProbeLocked(gp *genProbe) {
	kept := t.probes[:0]
	for _, q := range t.probes {
		if q != gp {
			kept = append(kept, q)
		}
	}
	t.probes = kept
}

// ensurePump starts the periodic probing tick.
func (t *generalSwitch) ensurePump() {
	t.mu.Lock()
	if t.pumping {
		t.mu.Unlock()
		return
	}
	t.pumping = true
	t.mu.Unlock()
	t.sc.ScheduleTick(t.sc.Config().ProbeInterval)
}

// OnTick probes up to ProbeBatch oldest outstanding modifications (§5.1:
// "probing up to 30 oldest flow modifications at once, every 10 ms") and
// evaluates silence-mode probes.
func (t *generalSwitch) OnTick(now time.Duration) {
	cfg := t.sc.Config()
	t.mu.Lock()
	if len(t.probes) == 0 {
		t.pumping = false
		t.mu.Unlock()
		return
	}
	n := cfg.ProbeBatch
	if n > len(t.probes) {
		n = len(t.probes)
	}
	// A probe whose signal has not resolved after this many rounds —
	// twice the control-plane safety bound — will never resolve: its
	// FlowMod was lost toward the switch, or the probe path itself is
	// broken (a lossy data plane eating the signal, a detached
	// receiver). Expire it into the control-plane fallback rather than
	// probing forever; on a healthy deployment even the slowest
	// hardware profile confirms well inside one Timeout. The floor
	// keeps a short Timeout (or a coarse ProbeInterval) from expiring
	// probes before they had a full round trip plus a silence verdict
	// — expiring on round one would silently replace the data-plane
	// guarantee with the fallback everywhere.
	maxRounds := int(2*cfg.Timeout/cfg.ProbeInterval) + 1
	if floor := cfg.QuietRounds + 2; maxRounds < floor {
		maxRounds = floor
	}
	round := make([]*genProbe, n)
	copy(round, t.probes[:n])
	var silent, expired []*genProbe
	for _, gp := range round {
		gp.rounds++
		if gp.rounds >= maxRounds {
			expired = append(expired, gp)
			continue
		}
		if gp.mode == expectSilence && gp.sent {
			if gp.arrived {
				gp.quiet = 0
			} else {
				gp.quiet++
			}
			gp.arrived = false
			if gp.quiet >= cfg.QuietRounds {
				silent = append(silent, gp)
			}
		}
	}
	for _, gp := range silent {
		t.removeProbeLocked(gp)
	}
	for _, gp := range expired {
		t.removeProbeLocked(gp)
	}
	t.mu.Unlock()

	for _, gp := range silent {
		t.sc.Confirm(gp.u, OutcomeInstalled)
		gp.u.Release() // the removed probe's reference
	}
	for _, gp := range expired {
		t.fallback(gp.u)
		gp.u.Release() // the removed probe's reference
	}
	for _, gp := range round {
		if probeIn(silent, gp) || probeIn(expired, gp) {
			continue // resolved this tick; don't waste a packet on it
		}
		t.injectProbe(gp)
	}
	t.sc.ScheduleTick(cfg.ProbeInterval)
}

// probeIn reports whether gp is in the (small) resolved-this-tick list.
func probeIn(list []*genProbe, gp *genProbe) bool {
	for _, q := range list {
		if q == gp {
			return true
		}
	}
	return false
}

// injectProbe sends the probe packet via the injector neighbor A.
func (t *generalSwitch) injectProbe(gp *genProbe) {
	inj, port, ok := t.sc.Injector()
	if !ok {
		return
	}
	pkt := &packet.Packet{Fields: gp.probePkt}
	pkt.Fields.InPort = 0
	if pkt.Fields.DLType == 0 {
		pkt.Fields.DLType = packet.EtherTypeIPv4
	}
	po := &of.PacketOut{
		BufferID: of.BufferNone,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: port}},
		Data:     pkt.Marshal(),
	}
	po.SetXID(t.sc.NewXID())
	if !t.sc.Inject(inj, po) {
		return
	}
	t.mu.Lock()
	gp.sent = true
	t.mu.Unlock()
	t.sc.NoteProbe(1)
}

// --- helpers ---

// firstOutput returns the first output action's port.
func firstOutput(actions []of.Action) (uint16, bool) {
	for _, a := range actions {
		if out, ok := a.(of.ActionOutput); ok {
			return out.Port, true
		}
	}
	return 0, false
}

// rewritesTos reports whether an action list modifies the ToS field.
func rewritesTos(actions []of.Action) bool {
	for _, a := range actions {
		if _, ok := a.(of.ActionSetNWTOS); ok {
			return true
		}
	}
	return false
}

// rulesExcept filters out entries with the given match and priority.
func rulesExcept(rules []hsa.Rule, m of.Match, prio uint16) []hsa.Rule {
	m = m.Normalize()
	out := make([]hsa.Rule, 0, len(rules))
	for _, r := range rules {
		if r.Priority == prio && r.Match.Normalize() == m {
			continue
		}
		out = append(out, r)
	}
	return out
}

// findRule locates a rule by match (and priority when strict).
func findRule(rules []hsa.Rule, m of.Match, prio uint16, strict bool) *hsa.Rule {
	m = m.Normalize()
	for i := range rules {
		r := &rules[i]
		if strict {
			if r.Priority == prio && r.Match.Normalize() == m {
				return r
			}
		} else if hsa.Subset(r.Match, m) {
			return r
		}
	}
	return nil
}

// lookupRules returns the highest-priority rule covering f.
func lookupRules(rules []hsa.Rule, f packet.Fields) *hsa.Rule {
	var best *hsa.Rule
	for i := range rules {
		r := &rules[i]
		if !hsa.Covers(r.Match, f) {
			continue
		}
		if best == nil || r.Priority > best.Priority {
			best = r
		}
	}
	return best
}

// applyRewrites computes the fields a packet carries after an action
// list's header rewrites (outputs ignored), mirroring the switch pipeline.
func applyRewrites(f packet.Fields, actions []of.Action) packet.Fields {
	for _, a := range actions {
		switch act := a.(type) {
		case of.ActionSetNWTOS:
			f.NWTOS = act.TOS
		case of.ActionSetVLANVID:
			f.DLVLAN = act.VID & 0x0fff
		case of.ActionSetVLANPCP:
			f.DLPCP = act.PCP & 7
		case of.ActionStripVLAN:
			f.DLVLAN = packet.VLANNone
			f.DLPCP = 0
		case of.ActionSetDLAddr:
			if act.Dst {
				f.DLDst = act.Addr
			} else {
				f.DLSrc = act.Addr
			}
		case of.ActionSetNWAddr:
			if act.Dst {
				f.NWDst = act.Addr
			} else {
				f.NWSrc = act.Addr
			}
		case of.ActionSetTPPort:
			if act.Dst {
				f.TPDst = act.Port
			} else {
				f.TPSrc = act.Port
			}
		}
	}
	return f
}
