package core

import (
	"sync"

	"rum/internal/flowtable"
	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/proxy"
)

// probeMode describes what signal confirms a tracked modification.
type probeMode int

const (
	// expectArrival: the probe starts arriving from the receiver once the
	// rule is installed (forwarding rules; rule modifications).
	expectArrival probeMode = iota
	// expectSilence: the probe stops arriving once the change takes
	// effect (rule deletions; installs of drop rules over a forwarding
	// fallback — the ACL case of §3.2.2).
	expectSilence
)

// genProbe is one outstanding general-probing measurement.
type genProbe struct {
	p        *pending
	mode     probeMode
	probePkt packet.Fields // packet injected via the injector A
	expected packet.Fields // fields as they arrive at the receiver C
	recvName string        // receiver session (C or, for silence mode, D)
	rounds   int           // probe rounds since issue
	quiet    int           // consecutive rounds without arrival (silence mode)
	arrived  bool          // an arrival was seen this round
	sent     bool          // at least one probe injected
}

// generalTech implements §3.2.2: each modification gets its own probe
// packet, crafted to hit exactly the probed rule and to be distinguishable
// from the rules beneath it. It works even when the switch reorders
// modifications, because no inference is made from other rules' fates.
type generalTech struct {
	sess *session

	mu               sync.Mutex
	ackl             *ackLayer
	shadow           *flowtable.Table // control-plane intent: all mods forwarded so far
	probes           []*genProbe      // issue order
	pumping          bool
	bootOK           bool
	fallbackBarriers map[uint32]*pending
}

func newGeneralTech(s *session) *generalTech {
	return &generalTech{sess: s, shadow: flowtable.New()}
}

// bootstrap installs the probe-catch rule: ToS == S_self → controller.
func (t *generalTech) bootstrap() error {
	if _, _, ok := t.sess.injector(); !ok {
		return errNoNeighbor(t.sess.name)
	}
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType | of.WcNWTOS
	m.DLType = packet.EtherTypeIPv4
	m.NWTOS = t.sess.rum.CatchTos(t.sess.name)
	catch := &of.FlowMod{
		Command:  of.FCAdd,
		Priority: PrioCatch,
		Match:    m,
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: of.PortController, MaxLen: 0xffff}},
	}
	catch.SetXID(t.sess.rum.newXID())
	t.sess.proxy.SendToSwitch(catch)
	t.mu.Lock()
	t.bootOK = true
	t.mu.Unlock()
	return nil
}

func (t *generalTech) onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending) {
	t.mu.Lock()
	t.ackl = a
	boot := t.bootOK
	// Snapshot the table before this mod, then advance the shadow intent.
	before := t.shadow.Rules()
	t.shadow.Apply(p.fm)
	t.mu.Unlock()
	if !boot {
		t.fallback(ctx, p)
		return
	}
	probe, err := t.buildProbe(p, before)
	if err != nil {
		t.fallback(ctx, p)
		return
	}
	t.mu.Lock()
	t.probes = append(t.probes, probe)
	t.mu.Unlock()
	t.injectProbe(probe)
	t.ensurePump()
}

// buildProbe crafts the probe for one modification, given the rule table
// before the modification was applied.
func (t *generalTech) buildProbe(p *pending, before []hsa.Rule) (*genProbe, error) {
	fm := p.fm
	rule := hsa.Rule{Priority: fm.Priority, Match: fm.Match.Normalize(), Actions: fm.Actions}
	switch fm.Command {
	case of.FCAdd, of.FCModify, of.FCModifyStrict:
		// Exclude earlier versions of the same rule from the fallback
		// computation: while the mod is not yet applied, the packet hits
		// the OLD rule, so the old actions are the "fallback" to
		// distinguish from.
		table := rulesExcept(before, rule.Match, rule.Priority)
		if len(fm.Actions) == 0 {
			return t.buildDropProbe(p, rule, table)
		}
		return t.buildForwardProbe(p, rule, table)
	case of.FCDelete, of.FCDeleteStrict:
		// Probe the rule being removed: its probe keeps arriving while
		// the rule is present and stops when it is gone.
		victim := findRule(before, fm.Match.Normalize(), fm.Priority, fm.Command == of.FCDeleteStrict)
		if victim == nil {
			return nil, hsa.ErrNoProbe // nothing to observe
		}
		table := rulesExcept(before, victim.Match, victim.Priority)
		gp, err := t.buildForwardProbe(p, *victim, table)
		if err != nil {
			return nil, err
		}
		gp.mode = expectSilence
		return gp, nil
	default:
		return nil, hsa.ErrNoProbe
	}
}

// buildForwardProbe handles rules that forward to a next-hop switch C.
func (t *generalTech) buildForwardProbe(p *pending, rule hsa.Rule, table []hsa.Rule) (*genProbe, error) {
	r := t.sess.rum
	outPort, ok := firstOutput(rule.Actions)
	if !ok {
		return nil, hsa.ErrNoProbe
	}
	recv := r.topo.Neighbors(t.sess.name)[outPort]
	if recv == "" {
		return nil, hsa.ErrNoProbe // next hop is a host or unknown
	}
	if _, attached := r.sessionByName(recv); !attached {
		return nil, hsa.ErrNoProbe
	}
	// The probed rule must leave ToS to the probe (H must be wildcarded on
	// normal rules; rules rewriting ToS would destroy S_C).
	if rule.Match.Wildcards&of.WcNWTOS == 0 || rewritesTos(rule.Actions) {
		return nil, hsa.ErrNoProbe
	}
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = r.CatchTos(recv)
	fields, err := hsa.FindProbe(rule, table, pin)
	if err != nil {
		return nil, err
	}
	expected := applyRewrites(fields, rule.Actions)
	expected.InPort = 0
	return &genProbe{
		p:        p,
		mode:     expectArrival,
		probePkt: fields,
		expected: expected,
		recvName: recv,
	}, nil
}

// buildDropProbe handles installs of drop rules: confirmable only when a
// lower-priority rule currently forwards the probe to a catchable switch D
// (the probe then *stops* arriving once the drop rule lands).
func (t *generalTech) buildDropProbe(p *pending, rule hsa.Rule, table []hsa.Rule) (*genProbe, error) {
	r := t.sess.rum
	// First find a probe ignoring the receiver pin: the distinguishing
	// signal comes from the fallback rule's forwarding.
	fields, err := hsa.FindProbe(rule, table, of.MatchAll())
	if err != nil {
		return nil, err
	}
	fb := lookupRules(table, fields)
	if fb == nil {
		return nil, hsa.ErrNoProbe // fallback is an implicit drop: no signal either way
	}
	fbPort, ok := firstOutput(fb.Actions)
	if !ok {
		return nil, hsa.ErrNoProbe
	}
	recv := r.topo.Neighbors(t.sess.name)[fbPort]
	if recv == "" {
		return nil, hsa.ErrNoProbe
	}
	if _, attached := r.sessionByName(recv); !attached {
		return nil, hsa.ErrNoProbe
	}
	if rule.Match.Wildcards&of.WcNWTOS == 0 || rewritesTos(fb.Actions) {
		return nil, hsa.ErrNoProbe
	}
	// Re-pin the probe to D's catch value so the fallback path is
	// observable.
	pin := of.MatchAll()
	pin.Wildcards &^= of.WcNWTOS
	pin.NWTOS = r.CatchTos(recv)
	fields, err = hsa.FindProbe(rule, table, pin)
	if err != nil {
		return nil, err
	}
	expected := applyRewrites(fields, fb.Actions)
	expected.InPort = 0
	return &genProbe{
		p:        p,
		mode:     expectSilence,
		probePkt: fields,
		expected: expected,
		recvName: recv,
	}, nil
}

// fallback acknowledges via the control-plane timeout technique when no
// probe exists (§3.2.2: "RUM falls back to one of the control plane-based
// techniques").
func (t *generalTech) fallback(ctx *proxy.Context, p *pending) {
	r := t.sess.rum
	r.mu.Lock()
	r.fallbacks++
	r.mu.Unlock()
	br := &of.BarrierRequest{}
	xid := r.newXID()
	br.SetXID(xid)
	t.mu.Lock()
	if t.fallbackBarriers == nil {
		t.fallbackBarriers = make(map[uint32]*pending)
	}
	t.fallbackBarriers[xid] = p
	t.mu.Unlock()
	ctx.ToSwitch(br)
}

func (t *generalTech) onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool {
	switch mm := m.(type) {
	case *of.BarrierReply:
		t.mu.Lock()
		p, mine := t.fallbackBarriers[mm.GetXID()]
		if mine {
			delete(t.fallbackBarriers, mm.GetXID())
		}
		t.mu.Unlock()
		if !mine {
			return false
		}
		ctx.Clock().After(t.sess.rum.cfg.Timeout, func() {
			a.confirm(p, of.RUMAckFallback)
		})
		return true
	case *of.PacketIn:
		pkt, err := packet.Unmarshal(mm.Data)
		if err != nil {
			return false
		}
		f := pkt.Fields
		// Only ToS values in RUM's probe space are RUM's to consume.
		if f.NWTOS != t.sess.rum.CatchTos(t.sess.name) {
			return false
		}
		t.sess.rum.routeGenProbe(t.sess.name, f)
		return true
	}
	return false
}

// routeGenProbe matches a probe arrival at receiver recv against every
// session's outstanding probes.
func (r *RUM) routeGenProbe(recv string, f packet.Fields) {
	r.mu.Lock()
	sessions := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	for _, s := range sessions {
		gt, ok := s.tech.(*generalTech)
		if !ok {
			continue
		}
		if gt.noteArrival(recv, f) {
			return
		}
	}
}

// noteArrival processes one probe arrival; returns true when it matched an
// outstanding probe of this session.
func (t *generalTech) noteArrival(recv string, f packet.Fields) bool {
	f.InPort = 0 // receivers see their own in_port; expectations carry none
	t.mu.Lock()
	var match *genProbe
	for _, gp := range t.probes {
		if gp.recvName == recv && gp.expected == f {
			match = gp
			break
		}
	}
	var confirmNow *pending
	if match != nil {
		switch match.mode {
		case expectArrival:
			confirmNow = match.p
			t.removeProbeLocked(match)
		case expectSilence:
			match.arrived = true
		}
	}
	a := t.ackl
	t.mu.Unlock()
	if confirmNow != nil && a != nil {
		a.confirm(confirmNow, of.RUMAckInstalled)
	}
	return match != nil
}

func (t *generalTech) removeProbeLocked(gp *genProbe) {
	kept := t.probes[:0]
	for _, q := range t.probes {
		if q != gp {
			kept = append(kept, q)
		}
	}
	t.probes = kept
}

// ensurePump starts the periodic probing tick.
func (t *generalTech) ensurePump() {
	t.mu.Lock()
	if t.pumping {
		t.mu.Unlock()
		return
	}
	t.pumping = true
	t.mu.Unlock()
	t.sess.clock().After(t.sess.rum.cfg.ProbeInterval, t.pumpTick)
}

// pumpTick probes up to ProbeBatch oldest outstanding modifications
// (§5.1: "probing up to 30 oldest flow modifications at once, every
// 10 ms") and evaluates silence-mode probes.
func (t *generalTech) pumpTick() {
	cfg := t.sess.rum.cfg
	t.mu.Lock()
	if len(t.probes) == 0 {
		t.pumping = false
		t.mu.Unlock()
		return
	}
	n := cfg.ProbeBatch
	if n > len(t.probes) {
		n = len(t.probes)
	}
	round := make([]*genProbe, n)
	copy(round, t.probes[:n])
	var silent []*genProbe
	for _, gp := range round {
		gp.rounds++
		if gp.mode == expectSilence && gp.sent {
			if gp.arrived {
				gp.quiet = 0
			} else {
				gp.quiet++
			}
			gp.arrived = false
			if gp.quiet >= cfg.QuietRounds {
				silent = append(silent, gp)
			}
		}
	}
	for _, gp := range silent {
		t.removeProbeLocked(gp)
	}
	a := t.ackl
	t.mu.Unlock()

	for _, gp := range silent {
		if a != nil {
			a.confirm(gp.p, of.RUMAckInstalled)
		}
	}
	for _, gp := range round {
		t.injectProbe(gp)
	}
	t.sess.clock().After(cfg.ProbeInterval, t.pumpTick)
}

// injectProbe sends the probe packet via the injector neighbor A.
func (t *generalTech) injectProbe(gp *genProbe) {
	inj, port, ok := t.sess.injector()
	if !ok {
		return
	}
	pkt := &packet.Packet{Fields: gp.probePkt}
	pkt.Fields.InPort = 0
	if pkt.Fields.DLType == 0 {
		pkt.Fields.DLType = packet.EtherTypeIPv4
	}
	po := &of.PacketOut{
		BufferID: of.BufferNone,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: port}},
		Data:     pkt.Marshal(),
	}
	po.SetXID(t.sess.rum.newXID())
	inj.proxy.SendToSwitch(po)
	t.mu.Lock()
	gp.sent = true
	t.mu.Unlock()
	t.sess.rum.mu.Lock()
	t.sess.rum.probesSent++
	t.sess.rum.mu.Unlock()
}

// --- helpers ---

// firstOutput returns the first output action's port.
func firstOutput(actions []of.Action) (uint16, bool) {
	for _, a := range actions {
		if out, ok := a.(of.ActionOutput); ok {
			return out.Port, true
		}
	}
	return 0, false
}

// rewritesTos reports whether an action list modifies the ToS field.
func rewritesTos(actions []of.Action) bool {
	for _, a := range actions {
		if _, ok := a.(of.ActionSetNWTOS); ok {
			return true
		}
	}
	return false
}

// rulesExcept filters out entries with the given match and priority.
func rulesExcept(rules []hsa.Rule, m of.Match, prio uint16) []hsa.Rule {
	m = m.Normalize()
	out := make([]hsa.Rule, 0, len(rules))
	for _, r := range rules {
		if r.Priority == prio && r.Match.Normalize() == m {
			continue
		}
		out = append(out, r)
	}
	return out
}

// findRule locates a rule by match (and priority when strict).
func findRule(rules []hsa.Rule, m of.Match, prio uint16, strict bool) *hsa.Rule {
	m = m.Normalize()
	for i := range rules {
		r := &rules[i]
		if strict {
			if r.Priority == prio && r.Match.Normalize() == m {
				return r
			}
		} else if hsa.Subset(r.Match, m) {
			return r
		}
	}
	return nil
}

// lookupRules returns the highest-priority rule covering f.
func lookupRules(rules []hsa.Rule, f packet.Fields) *hsa.Rule {
	var best *hsa.Rule
	for i := range rules {
		r := &rules[i]
		if !hsa.Covers(r.Match, f) {
			continue
		}
		if best == nil || r.Priority > best.Priority {
			best = r
		}
	}
	return best
}

// applyRewrites computes the fields a packet carries after an action
// list's header rewrites (outputs ignored), mirroring the switch pipeline.
func applyRewrites(f packet.Fields, actions []of.Action) packet.Fields {
	for _, a := range actions {
		switch act := a.(type) {
		case of.ActionSetNWTOS:
			f.NWTOS = act.TOS
		case of.ActionSetVLANVID:
			f.DLVLAN = act.VID & 0x0fff
		case of.ActionSetVLANPCP:
			f.DLPCP = act.PCP & 7
		case of.ActionStripVLAN:
			f.DLVLAN = packet.VLANNone
			f.DLPCP = 0
		case of.ActionSetDLAddr:
			if act.Dst {
				f.DLDst = act.Addr
			} else {
				f.DLSrc = act.Addr
			}
		case of.ActionSetNWAddr:
			if act.Dst {
				f.NWDst = act.Addr
			} else {
				f.NWSrc = act.Addr
			}
		case of.ActionSetTPPort:
			if act.Dst {
				f.TPDst = act.Port
			} else {
				f.TPSrc = act.Port
			}
		}
	}
	return f
}
