package core

import (
	"errors"

	"rum/internal/journal"
	"rum/internal/of"
)

// JournalSink receives sealed pending-intent replication frames for one
// switch (see internal/journal). A cluster front installs one to stream
// each member's pending updates to a successor member's replica; the
// frame's backing is reused after the call returns, so sinks must copy
// what they keep (journal.Replica.ApplyFrame does).
type JournalSink interface {
	JournalFrame(sw string, frame []byte)
}

// SetJournalSink installs the intent-replication sink. It must be set
// before switches attach: sessions latch the sink's presence once, so
// the per-update hot path pays a single bool test when replication is
// off (the AckPath 0-alloc budget assumes exactly that).
func (r *RUM) SetJournalSink(sink JournalSink) { r.journal = sink }

// journalIntent appends u's intent record to the session's frame under
// construction. Called with a.mu held (the same critical section that
// assigns u.seq), so records are appended in seq order and an intent
// always precedes any resolve record for the same update. jmu nests
// inside a.mu and nothing else — a leaf lock.
func (a *ackLayer) journalIntent(u *Update) {
	a.jmu.Lock()
	if a.jbuf == nil {
		a.jbuf = journal.BeginFrame(nil)
	}
	var digest uint64
	digest, a.jscratch = journal.DigestRule(a.jscratch, u.fm.Priority, u.fm.Match, u.fm.Actions)
	var err error
	a.jbody, err = of.MarshalAppend(a.jbody[:0], u.fm)
	if err != nil {
		// Without wire bytes the successor cannot re-issue, but it can
		// still confirm or fail truthfully: journal the intent body-less.
		a.jbody = a.jbody[:0]
	}
	rec := journal.Record{
		Op:       journal.OpIntent,
		Switch:   u.sw,
		XID:      u.xid,
		Seq:      u.seq,
		Digest:   digest,
		Strategy: a.sess.techName,
		IssuedAt: u.issuedAt,
		Deadline: u.issuedAt + a.sess.rum.cfg.Timeout,
		Body:     a.jbody,
	}
	a.jbuf = journal.AppendIntent(a.jbuf, &rec)
	a.jmu.Unlock()
}

// journalResolve appends u's resolve record, retiring its replicated
// intent. Detach-driven failures are deliberately NOT journaled: a
// member killed mid-flight fails its pending updates with
// ErrChannelLost/ErrSwitchRestarted on the way down, and journaling
// those resolutions would erase exactly the intents the successor needs
// to rescue. Shed updates (ErrOverloaded) never journaled an intent, so
// a resolve would only plant a stray tombstone.
func (a *ackLayer) journalResolve(u *Update) {
	if u.failErr != nil &&
		(errors.Is(u.failErr, ErrChannelLost) ||
			errors.Is(u.failErr, ErrSwitchRestarted) ||
			errors.Is(u.failErr, ErrOverloaded)) {
		return
	}
	a.jmu.Lock()
	if a.jbuf == nil {
		a.jbuf = journal.BeginFrame(nil)
	}
	a.jbuf = journal.AppendResolve(a.jbuf, u.sw, u.xid, u.seq)
	a.jmu.Unlock()
}

// journalDeliver seals the frame under construction and hands it to the
// sink, then resets the buffer for reuse. Delivery happens on the shard
// flush path (write-ahead: the replica learns an intent no later than
// the wire does) and after confirmation batches (so resolves retire
// replicated intents promptly). Holding jmu across the sink call keeps
// frames ordered per session; the sink copies, so the buffer is
// immediately reusable.
func (a *ackLayer) journalDeliver() {
	a.jmu.Lock()
	if journal.Empty(a.jbuf) {
		a.jmu.Unlock()
		return
	}
	frame := journal.SealFrame(a.jbuf)
	a.sess.rum.journal.JournalFrame(a.sess.name, frame)
	a.jbuf = journal.BeginFrame(a.jbuf)
	a.jmu.Unlock()
}

// TakeWatchers removes and returns the named switch's registered
// ack-future chains, keyed by xid; each map value heads an intrusive
// nextWatch chain. A cluster front calls it at the instant a member is
// declared dead, BEFORE the detach: the member's pending updates then
// fail into an empty watcher table — every refcount, strategy, and pool
// obligation still runs — while the futures themselves survive in the
// caller's hands for rescue. Taken handles are unreachable from the
// shard, so a racing Cancel is a safe no-op.
func (r *RUM) TakeWatchers(sw string) map[uint32]*UpdateHandle {
	sh := r.shardFor(sw)
	sh.lock()
	w := sh.watchers
	sh.watchers = nil
	sh.unlock()
	return w
}

// Rebind registers a handle taken by TakeWatchers on this RUM instance
// (typically a rescued future re-homed onto the switch's adoptive
// member). The chain link is severed first: the caller owns iterating
// the taken chains, and a rebound handle starts a fresh registration.
func (r *RUM) Rebind(h *UpdateHandle) {
	h.nextWatch = nil
	h.r = r
	r.shardFor(h.sw).watch(h)
}

// InjectFlowMod feeds fm into the named switch's session at the top of
// its layer chain, exactly as if the controller had sent it — tracked,
// admitted, journaled, and confirmed by the switch's strategy. The
// rescue path uses it to re-issue a journaled update (same xid) on the
// adoptive member, so the rescued future resolves through the real
// acknowledgment machinery rather than an optimistic guess.
func (r *RUM) InjectFlowMod(sw string, fm *of.FlowMod) error {
	s, ok := r.sessionByName(sw)
	if !ok {
		return errors.New("core: inject " + sw + ": not attached")
	}
	s.proxy.InjectFromController(fm)
	return nil
}
