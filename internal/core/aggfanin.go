package core

import (
	"sync"

	"rum/internal/aggregate"
	"rum/internal/of"
)

// This file is the logical→physical ack fan-in of Config.Aggregate.
//
// With aggregation on, a controller FlowMod never reaches the switch
// itself: it is staged as a *logical* update, the next flush applies the
// staged batch to the session's aggregate.Table, and the resulting
// physical delta — merged covering prefixes, splits, removals — is what
// RUM tracks, journals, and sends. Each physical op carries the set of
// logical updates anchored on it (retained references in a pooled
// covered-set); when the op's data-plane confirmation arrives it fans in:
// every covered logical update whose remaining-anchor count reaches zero
// resolves with its own issue timestamp and its own command-refined
// outcome, and a physical failure fails every covered future immediately
// with the physical op's typed cause. Only physical ops occupy the seq
// ring, so barrier intervals and work-proportional timeout bounds
// (Config.TimeoutRate) automatically count physical installs.
//
// Staging coalesces with clock.After(0): under a simulated clock the
// callback runs behind every already-queued same-instant event, so one
// dispatch burst lands in one aggregation batch; under a wall clock the
// flush fires almost immediately and batches degrade toward
// per-message — smaller merges, identical semantics. Any non-FlowMod
// controller message (and any barrier absorb) flushes the stage first so
// wire order and barrier interval boundaries never observe a staged,
// unissued FlowMod.

// coveredPool recycles the covered-set backings so the aggregated hot
// path does not allocate a slice per physical op at steady state.
var coveredPool = sync.Pool{New: func() any {
	s := make([]*Update, 0, 16)
	return &s
}}

// attachCovered anchors logical update lu on physical op pu. Called with
// the ack layer's mutex held while pu is unresolved, so the resolution
// path (which reads covered outside the mutex only after winning
// takeConfirmed) never races the append.
func attachCovered(pu, lu *Update) {
	if pu.covered == nil {
		pu.covered = *(coveredPool.Get().(*[]*Update))
	}
	lu.Retain()
	pu.covered = append(pu.covered, lu)
}

// releaseCovered drops the covered set's references and returns its
// backing to the pool.
func releaseCovered(pu *Update) {
	covered := pu.covered
	pu.covered = nil
	for i, lu := range covered {
		lu.Release()
		covered[i] = nil
	}
	covered = covered[:0]
	coveredPool.Put(&covered)
}

// stageAggregate parks a tracked logical FlowMod for the next
// aggregation flush; the stage holds the update's tracking reference.
func (a *ackLayer) stageAggregate(u *Update) {
	a.mu.Lock()
	if a.aggClosed {
		a.mu.Unlock()
		a.confirmCause(u, OutcomeFailed, ErrChannelLost)
		u.Release()
		return
	}
	a.aggStage = append(a.aggStage, u)
	first := len(a.aggStage) == 1
	a.mu.Unlock()
	if first {
		a.sess.clock().After(0, a.flushAggStage)
	}
}

// dropAggStage fails every staged-but-unflushed logical update with the
// detach cause and refuses further staging: the physical ops that would
// have carried them will never be issued.
func (a *ackLayer) dropAggStage(cause error) {
	a.mu.Lock()
	staged := a.aggStage
	a.aggStage = nil
	a.aggClosed = true
	a.mu.Unlock()
	for _, u := range staged {
		a.confirmCause(u, OutcomeFailed, cause)
		u.Release()
	}
}

// flushAggStage drains the staged logical batch through the aggregate
// table and issues the physical delta. The whole flush — drain, table
// mutation, seq assignment, outbox enqueue — runs in one ack-layer
// critical section so concurrent flushes cannot reorder batches against
// the logical apply order; strategy callbacks and settled confirmations
// run after the unlock, like FromController's tail.
func (a *ackLayer) flushAggStage() {
	a.mu.Lock()
	staged := a.aggStage
	a.aggStage = nil
	if len(staged) == 0 || a.aggClosed {
		a.mu.Unlock()
		for _, u := range staged {
			a.confirmCause(u, OutcomeFailed, ErrChannelLost)
			u.Release()
		}
		return
	}
	mods := make([]*of.FlowMod, len(staged))
	for i, u := range staged {
		mods[i] = u.fm
	}
	delta := a.sess.agg.ApplyBatch(mods)
	now := a.sess.clock().Now()
	phys := make([]*Update, len(delta.Ops))
	for i := range delta.Ops {
		op := &delta.Ops[i]
		pu := acquireUpdate()
		pu.sw = a.sess.name
		pu.xid = a.sess.rum.newXID()
		op.FM.SetXID(pu.xid)
		pu.fm = op.FM
		pu.issuedAt = now
		a.nextSeq++
		pu.seq = a.nextSeq
		a.issued.Store(a.nextSeq)
		a.ringPutLocked(pu)
		if a.journalOn {
			a.journalIntent(pu)
		}
		if op.Install {
			// Index the pending install so a later batch's Covered
			// anchor can fold into it while it is still in flight.
			pu.aggRef, pu.aggTrack = op.Ref, true
			if a.aggPending == nil {
				a.aggPending = make(map[aggregate.PhysRef]*Update)
			}
			a.aggPending[op.Ref] = pu
		}
		phys[i] = pu
	}
	// Anchor each logical update on the physical ops it waits for. A
	// Covered ref whose install is no longer pending is already confirmed
	// in the data plane, so it contributes no wait; an anchor with zero
	// waits is truthfully confirmable as soon as the batch is issued.
	var settled []*Update
	for i, u := range staged {
		anc := delta.Anchors[i]
		wait := 0
		for _, idx := range anc.Ops {
			attachCovered(phys[idx], u)
			wait++
		}
		for _, ref := range anc.Covered {
			if pu, ok := a.aggPending[ref]; ok {
				attachCovered(pu, u)
				wait++
			}
		}
		if wait == 0 {
			settled = append(settled, u)
			continue
		}
		u.aggWait.Store(int32(wait))
		u.Release() // the stage's reference; the anchors hold their own
	}
	// Physical FlowMods enter the outbox inside the critical section for
	// the same reason FromController's enqueue does: FIFO agreement with
	// any concurrent dispatch path.
	for i := range delta.Ops {
		a.sess.sendToSwitch(delta.Ops[i].FM)
	}
	a.mu.Unlock()
	for _, pu := range phys {
		a.sess.strat.OnFlowMod(pu)
		pu.Release() // the tracking frame's reference
	}
	for _, u := range settled {
		a.confirmCause(u, OutcomeInstalled, nil)
		u.Release() // the stage's reference
	}
}

// aggResolvedLocked retires a resolved physical install from the
// pending-install index. Called in the same critical section that sets
// u.done, so flushAggStage's Covered lookups only ever see live ops.
func (a *ackLayer) aggResolvedLocked(u *Update) {
	if !u.aggTrack {
		return
	}
	u.aggTrack = false
	if cur := a.aggPending[u.aggRef]; cur == u {
		delete(a.aggPending, u.aggRef)
	}
}

// fanInCovered resolves the logical updates covered by a resolved
// physical op. A failed op fails every covered future immediately with
// its typed cause; a confirmed op decrements each future's
// remaining-anchor count and confirms the ones that reach zero. The
// confirmed outcome is re-derived per logical update (refineOutcome maps
// a logical deletion to OutcomeRemoved regardless of whether its last
// anchor was an install or a remove); a fallback-confirmed physical op
// propagates its weaker guarantee. Runs outside the ack-layer mutex on
// the single winning resolution path, so the covered set is drained
// exactly once.
func (a *ackLayer) fanInCovered(u *Update, outcome Outcome) {
	covered := u.covered
	u.covered = nil
	for i, lu := range covered {
		if outcome == OutcomeFailed {
			cause := u.failErr
			if cause == nil {
				cause = ErrSwitchRejected
			}
			a.confirmCause(lu, OutcomeFailed, cause)
		} else if lu.aggWait.Add(-1) == 0 {
			fan := OutcomeInstalled
			if outcome == OutcomeFallback {
				fan = OutcomeFallback
			}
			a.confirmCause(lu, fan, nil)
		}
		lu.Release()
		covered[i] = nil
	}
	covered = covered[:0]
	coveredPool.Put(&covered)
}
