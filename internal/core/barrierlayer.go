package core

import (
	"sync"

	"rum/internal/of"
	"rum/internal/proxy"
)

// barrierLayer restores reliable barrier semantics on top of the
// acknowledgment layer (§2, "Providing reliable barriers"): it absorbs
// every controller BarrierRequest and answers only once each modification
// issued before it is confirmed in the data plane. While a barrier is
// outstanding it also holds switch→controller traffic behind the pending
// reply (so the controller never observes post-barrier messages before the
// barrier), and — in buffer mode, for switches that reorder across
// barriers — withholds every subsequent controller command until the
// barrier resolves.
type barrierLayer struct {
	sess   *session
	buffer bool

	mu         sync.Mutex
	registered bool
	ctx        *proxy.Context
	unconf     map[uint32]bool // xids of forwarded, unconfirmed FlowMods
	waiters    []*barWaiter
	downQ      []of.Message // held controller→switch messages (buffer mode)
	upQ        []of.Message // held switch→controller messages
}

// barWaiter is one absorbed barrier.
type barWaiter struct {
	xid     uint32
	covers  map[uint32]bool // unconfirmed xids it waits for
	buffers bool            // whether downQ holds messages released by it
}

// FromController implements proxy.Layer.
func (b *barrierLayer) FromController(ctx *proxy.Context, m of.Message) {
	b.mu.Lock()
	b.ctx = ctx
	if !b.registered {
		b.registered = true
		b.sess.ack.onConfirm(b.onConfirm)
	}
	// In buffer mode every command behind an unresolved barrier waits.
	if b.buffer && len(b.waiters) > 0 {
		b.downQ = append(b.downQ, m)
		b.mu.Unlock()
		return
	}
	switch mm := m.(type) {
	case *of.BarrierRequest:
		b.absorbBarrierLocked(ctx, mm)
		b.mu.Unlock()
	case *of.FlowMod:
		if b.unconf == nil {
			b.unconf = make(map[uint32]bool)
		}
		b.unconf[mm.GetXID()] = true
		b.mu.Unlock()
		ctx.ToSwitch(m)
	default:
		b.mu.Unlock()
		ctx.ToSwitch(m)
	}
}

// absorbBarrierLocked registers (or immediately answers) a barrier.
func (b *barrierLayer) absorbBarrierLocked(ctx *proxy.Context, m *of.BarrierRequest) {
	if len(b.unconf) == 0 {
		reply := &of.BarrierReply{}
		reply.SetXID(m.GetXID())
		// Reply directly: nothing may be pending ahead of it.
		b.sess.sendToController(reply)
		return
	}
	covers := make(map[uint32]bool, len(b.unconf))
	for x := range b.unconf {
		covers[x] = true
	}
	b.waiters = append(b.waiters, &barWaiter{xid: m.GetXID(), covers: covers})
}

// FromSwitch implements proxy.Layer: messages are held while a barrier
// reply is pending so the controller's view stays ordered.
func (b *barrierLayer) FromSwitch(ctx *proxy.Context, m of.Message) {
	b.mu.Lock()
	b.ctx = ctx
	if len(b.waiters) > 0 {
		// Fine-grained RUM acks bypass the hold: they are the mechanism a
		// RUM-aware controller uses to make progress toward resolving the
		// barrier.
		if e, ok := m.(*of.Error); ok {
			if _, _, isAck := e.IsRUMAck(); isAck {
				b.mu.Unlock()
				ctx.ToController(m)
				return
			}
		}
		b.upQ = append(b.upQ, m)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	ctx.ToController(m)
}

// onConfirm receives confirmations from the ack layer (every outcome,
// including failed: a rejected modification must not wedge barriers).
func (b *barrierLayer) onConfirm(u *Update, outcome Outcome) {
	b.mu.Lock()
	delete(b.unconf, u.xid)
	for _, w := range b.waiters {
		delete(w.covers, u.xid)
	}
	b.releaseLocked()
	b.mu.Unlock()
}

// releaseLocked answers resolved barriers in order and releases held
// traffic. The head barrier gates everything: replies are emitted
// strictly in barrier order.
func (b *barrierLayer) releaseLocked() {
	ctx := b.ctx
	for len(b.waiters) > 0 && len(b.waiters[0].covers) == 0 {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		reply := &of.BarrierReply{}
		reply.SetXID(w.xid)
		b.sess.sendToController(reply)
		// Flush held switch→controller messages.
		upQ := b.upQ
		b.upQ = nil
		for _, m := range upQ {
			b.sess.sendToController(m)
		}
		// In buffer mode, release held commands up to (and absorbing) the
		// next barrier.
		if b.buffer {
			b.releaseDownLocked(ctx)
		}
	}
}

// releaseDownLocked forwards buffered commands until the next barrier (or
// the end of the buffer). It must be re-entrancy-safe: forwarding a
// FlowMod can synchronously confirm (no-wait technique) and re-enter
// onConfirm; the lock is held by the caller.
func (b *barrierLayer) releaseDownLocked(ctx *proxy.Context) {
	for len(b.downQ) > 0 && len(b.waiters) == 0 {
		m := b.downQ[0]
		b.downQ = b.downQ[1:]
		switch mm := m.(type) {
		case *of.BarrierRequest:
			b.absorbBarrierLocked(ctx, mm)
		case *of.FlowMod:
			if b.unconf == nil {
				b.unconf = make(map[uint32]bool)
			}
			b.unconf[mm.GetXID()] = true
			b.forwardUnlocked(ctx, m)
		default:
			b.forwardUnlocked(ctx, m)
		}
	}
}

// forwardUnlocked sends a message toward the switch without holding the
// layer lock (the downstream ack layer may call back into onConfirm).
func (b *barrierLayer) forwardUnlocked(ctx *proxy.Context, m of.Message) {
	b.mu.Unlock()
	ctx.ToSwitch(m)
	b.mu.Lock()
}
