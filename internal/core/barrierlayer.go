package core

import (
	"sync"
	"sync/atomic"

	"rum/internal/of"
	"rum/internal/proxy"
)

// barrierLayer restores reliable barrier semantics on top of the
// acknowledgment layer (§2, "Providing reliable barriers"): it absorbs
// every controller BarrierRequest and answers only once each modification
// issued before it is confirmed in the data plane. While a barrier is
// outstanding it also holds switch→controller traffic behind the pending
// reply (so the controller never observes post-barrier messages before the
// barrier), and — in buffer mode, for switches that reorder across
// barriers — withholds every subsequent controller command until the
// barrier resolves.
//
// Bookkeeping rides the ack layer's seq ring: because the ack layer
// assigns a monotonic seq to every forwarded FlowMod and publishes its
// contiguous confirmed prefix, a barrier is just the interval boundary
// "all seqs <= upTo" — captured as one integer when the barrier is
// absorbed and compared against the watermark on every confirmation. The
// per-xid unconfirmed/covered map churn of the map-based implementation
// is gone.
type barrierLayer struct {
	sess   *session
	buffer bool

	// ctx is the layer's proxy context, captured once from the first
	// message (contexts are per-layer singletons).
	ctx atomic.Pointer[proxy.Context]

	mu         sync.Mutex
	registered bool
	waiters    []barWaiter  // absorbed barriers, FIFO
	downQ      []of.Message // held controller→switch messages (buffer mode)
	upQ        []of.Message // held switch→controller messages
}

// barWaiter is one absorbed barrier: it resolves once the ack layer's
// confirmed prefix reaches upTo (every modification forwarded before the
// barrier carries a seq <= upTo).
type barWaiter struct {
	xid  uint32
	upTo uint64
}

func (b *barrierLayer) captureCtx(ctx *proxy.Context) {
	if b.ctx.Load() == nil {
		b.ctx.Store(ctx)
	}
}

// FromController implements proxy.Layer.
func (b *barrierLayer) FromController(ctx *proxy.Context, m of.Message) {
	b.captureCtx(ctx)
	// A barrier's interval boundary is the ack layer's issued watermark,
	// which staged (aggregated, unflushed) FlowMods have not reached yet:
	// flush before absorbing so the barrier covers them. Must happen
	// outside b.mu — a flush can confirm settled logical updates, whose
	// listeners re-enter this layer.
	if _, isBar := m.(*of.BarrierRequest); isBar && b.sess.agg != nil {
		b.sess.ack.flushAggStage()
	}
	b.mu.Lock()
	if !b.registered {
		b.registered = true
		b.sess.ack.onConfirm(b.onConfirm)
	}
	// In buffer mode every command behind an unresolved barrier waits.
	if b.buffer && len(b.waiters) > 0 {
		b.downQ = append(b.downQ, m)
		b.mu.Unlock()
		return
	}
	if mm, ok := m.(*of.BarrierRequest); ok {
		b.absorbBarrierLocked(mm)
		b.mu.Unlock()
		return
	}
	// FlowMods need no bookkeeping here: the ack layer downstream assigns
	// their seqs synchronously during ToSwitch, which is what the next
	// absorbed barrier's interval boundary reads.
	b.mu.Unlock()
	ctx.ToSwitch(m)
}

// absorbBarrierLocked registers (or immediately answers) a barrier.
func (b *barrierLayer) absorbBarrierLocked(m *of.BarrierRequest) {
	upTo := b.sess.ack.issuedThrough()
	// Direct reply only when no older barrier is still queued AND no
	// confirmation is mid-emission: the watermark advances before the
	// covered acks are serialized and before the listeners run, so
	// either an earlier waiter may be releasable-but-unreleased here, or
	// a direct reply would overtake acks the controller must see first.
	// Queueing is always safe: the emitting marker drops only once the
	// acks are out but while the listener calls are still pending, so a
	// waiter queued against either condition has a listener call coming
	// that drains every eligible waiter in order.
	if len(b.waiters) == 0 && b.sess.ack.quiescentAt(upTo) {
		reply := &of.BarrierReply{}
		reply.SetXID(m.GetXID())
		// Reply directly: nothing may be pending ahead of it.
		b.sess.sendToController(reply)
		return
	}
	b.waiters = append(b.waiters, barWaiter{xid: m.GetXID(), upTo: upTo})
}

// FromSwitch implements proxy.Layer: messages are held while a barrier
// reply is pending so the controller's view stays ordered.
func (b *barrierLayer) FromSwitch(ctx *proxy.Context, m of.Message) {
	b.captureCtx(ctx)
	b.mu.Lock()
	if len(b.waiters) > 0 {
		// Fine-grained RUM acks bypass the hold: they are the mechanism a
		// RUM-aware controller uses to make progress toward resolving the
		// barrier.
		if e, ok := m.(*of.Error); ok {
			if _, _, isAck := e.IsRUMAck(); isAck {
				b.mu.Unlock()
				ctx.ToController(m)
				return
			}
		}
		b.upQ = append(b.upQ, m)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	ctx.ToController(m)
}

// onConfirm receives confirmations from the ack layer (every outcome,
// including failed: a rejected modification must not wedge barriers).
func (b *barrierLayer) onConfirm(u *Update, outcome Outcome) {
	b.mu.Lock()
	b.releaseLocked()
	b.mu.Unlock()
}

// releaseLocked answers resolved barriers in order and releases held
// traffic. The head barrier gates everything: replies are emitted
// strictly in barrier order, each requiring the full confirmed prefix to
// reach its interval boundary.
func (b *barrierLayer) releaseLocked() {
	for len(b.waiters) > 0 && b.sess.ack.confirmedThrough() >= b.waiters[0].upTo {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		reply := &of.BarrierReply{}
		reply.SetXID(w.xid)
		b.sess.sendToController(reply)
		// Flush held switch→controller messages.
		upQ := b.upQ
		b.upQ = nil
		for _, m := range upQ {
			b.sess.sendToController(m)
		}
		// In buffer mode, release held commands up to (and absorbing) the
		// next barrier.
		if b.buffer {
			b.releaseDownLocked(b.ctx.Load())
		}
	}
}

// releaseDownLocked forwards buffered commands until the next barrier (or
// the end of the buffer). It must be re-entrancy-safe: forwarding a
// FlowMod can synchronously confirm (no-wait technique) and re-enter
// onConfirm; the lock is held by the caller.
func (b *barrierLayer) releaseDownLocked(ctx *proxy.Context) {
	for len(b.downQ) > 0 && len(b.waiters) == 0 {
		m := b.downQ[0]
		b.downQ = b.downQ[1:]
		if mm, ok := m.(*of.BarrierRequest); ok {
			// As in FromController: staged FlowMods released just above
			// must reach the issued watermark before the barrier samples
			// it. forwardUnlocked's re-entrancy contract covers the
			// unlock window.
			if b.sess.agg != nil {
				b.mu.Unlock()
				b.sess.ack.flushAggStage()
				b.mu.Lock()
			}
			b.absorbBarrierLocked(mm)
			continue
		}
		b.forwardUnlocked(ctx, m)
	}
}

// forwardUnlocked sends a message toward the switch without holding the
// layer lock (the downstream ack layer may call back into onConfirm).
func (b *barrierLayer) forwardUnlocked(ctx *proxy.Context, m of.Message) {
	b.mu.Unlock()
	ctx.ToSwitch(m)
	b.mu.Lock()
}
