package core

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/transport"
)

// captureStrategy parks every tracked update until the test resolves it
// through the StrategyContext, so fan-in tests control exactly when and
// in what order physical ops confirm or fail.
type captureStrategy struct {
	BaseSwitchStrategy
	mu  sync.Mutex
	sc  StrategyContext
	ups []*Update
}

func (cs *captureStrategy) Name() string { return "capture" }

func (cs *captureStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	cs.sc = sc
	return cs
}

func (cs *captureStrategy) OnFlowMod(u *Update) {
	u.Retain()
	cs.mu.Lock()
	cs.ups = append(cs.ups, u)
	cs.mu.Unlock()
}

// OnUpdateResolved drops the strategy's reference however the update
// resolved (test-driven confirm, switch error, detach), keeping the
// LiveUpdates accounting exact.
func (cs *captureStrategy) OnUpdateResolved(u *Update, _ Outcome) {
	cs.mu.Lock()
	for i, v := range cs.ups {
		if v == u {
			cs.ups = append(cs.ups[:i], cs.ups[i+1:]...)
			cs.mu.Unlock()
			u.Release()
			return
		}
	}
	cs.mu.Unlock()
}

// pending snapshots the captured, still-unresolved physical updates in
// issue order, holding one reference each (caller releases).
func (cs *captureStrategy) pending() []*Update {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]*Update, len(cs.ups))
	for i, u := range cs.ups {
		u.Retain()
		out[i] = u
	}
	return out
}

// aggRig is a single-switch aggregation testbed: controller pipe → RUM
// (Aggregate on, capture strategy) → switch pipe whose far end only
// records what reaches the wire.
type aggRig struct {
	sim   *sim.Sim
	rum   *RUM
	ctrl  transport.Conn
	swEnd transport.Conn
	strat *captureStrategy
	acks  []ackEvent
	seen  []of.Message // non-ack controller-bound messages
	wire  []of.Message // switch-bound messages that reached the far end
}

func newAggRig(t *testing.T, mutate func(*Config)) *aggRig {
	t.Helper()
	s := sim.New()
	rg := &aggRig{sim: s, strat: &captureStrategy{}}
	cfg := Config{Clock: s, RUMAware: true, Aggregate: true, Strategy: rg.strat}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	rg.rum = r
	ctrlTop, ctrlBottom := transport.Pipe(s, 100*time.Microsecond)
	rumSide, swSide := transport.Pipe(s, 100*time.Microsecond)
	rg.ctrl, rg.swEnd = ctrlTop, swSide
	swSide.SetHandler(func(m of.Message) { rg.wire = append(rg.wire, m) })
	ctrlTop.SetHandler(func(m of.Message) {
		if e, ok := m.(*of.Error); ok {
			if xid, code, isAck := e.IsRUMAck(); isAck {
				rg.acks = append(rg.acks, ackEvent{sw: "s1", xid: xid, code: code, at: s.Now()})
				return
			}
		}
		rg.seen = append(rg.seen, m)
	})
	if _, err := r.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	return rg
}

// aggDst builds the canonical aggregation-shaped match: IPv4 DLType plus
// an NWDst prefix.
func aggDst(d byte, bits int) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWDst(netip.AddrFrom4([4]byte{10, 0, 0, d}))
	m.SetNWDstWildBits(32 - bits)
	return m
}

// sendAdd watches xid, then sends a logical add for 10.0.0.d/32.
func (rg *aggRig) sendAdd(xid uint32, d byte, prio, port uint16) *UpdateHandle {
	h := rg.rum.Watch("s1", xid)
	fm := &of.FlowMod{Command: of.FCAdd, Match: aggDst(d, 32), Priority: prio,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: port}}}
	fm.SetXID(xid)
	_ = rg.ctrl.Send(fm)
	return h
}

func (rg *aggRig) sendDelete(xid uint32, m of.Match, cmd uint16, prio uint16) *UpdateHandle {
	h := rg.rum.Watch("s1", xid)
	fm := &of.FlowMod{Command: cmd, Match: m, Priority: prio,
		BufferID: of.BufferNone, OutPort: of.PortNone}
	fm.SetXID(xid)
	_ = rg.ctrl.Send(fm)
	return h
}

func resolved(h *UpdateHandle) (AckResult, bool) { return h.Result() }

// A burst of mergeable adds lands in one aggregation batch, issues a
// single merged physical install, and its confirmation fans out to every
// logical future — with wire acks for the logical xids only.
func TestAggMergedBurstSingleInstall(t *testing.T) {
	rg := newAggRig(t, nil)
	var hs []*UpdateHandle
	for i := 0; i < 8; i++ {
		hs = append(hs, rg.sendAdd(uint32(1000+i), byte(i), 100, 3))
	}
	rg.sim.RunFor(5 * time.Millisecond)

	phys := rg.strat.pending()
	if len(phys) != 1 {
		t.Fatalf("want 1 merged physical install for the burst, got %d", len(phys))
	}
	if !IsRUMXID(phys[0].XID()) {
		t.Fatalf("physical op must carry a RUM-internal xid, got %d", phys[0].XID())
	}
	if len(rg.wire) != 1 {
		t.Fatalf("want exactly 1 FlowMod on the wire, got %d", len(rg.wire))
	}
	for _, h := range hs {
		if _, ok := resolved(h); ok {
			t.Fatal("logical future resolved before the physical install confirmed")
		}
	}

	rg.strat.sc.Confirm(phys[0], OutcomeInstalled)
	phys[0].Release()
	rg.sim.RunFor(5 * time.Millisecond)

	for i, h := range hs {
		res, ok := resolved(h)
		if !ok {
			t.Fatalf("logical future %d never resolved", i)
		}
		if res.Outcome != OutcomeInstalled || res.Err != nil {
			t.Fatalf("future %d: outcome %v err %v", i, res.Outcome, res.Err)
		}
	}
	if len(rg.acks) != 8 {
		t.Fatalf("want 8 wire acks (one per logical xid), got %d", len(rg.acks))
	}
	for _, a := range rg.acks {
		if IsRUMXID(a.xid) {
			t.Fatalf("RUM-internal xid %d leaked to the controller as an ack", a.xid)
		}
	}
	if st, ok := rg.rum.AggregationStats("s1"); !ok || st.LogicalRules != 8 || st.PhysicalRules != 1 {
		t.Fatalf("AggregationStats = %+v ok=%v, want 8 logical / 1 physical", st, ok)
	}
}

// Physical acks arriving out of issue order resolve exactly their own
// covered futures; earlier-issued logical updates stay pending until
// their own physical op confirms.
func TestAggOutOfOrderPhysicalAcks(t *testing.T) {
	rg := newAggRig(t, nil)
	var batchA, batchB []*UpdateHandle
	for i := 0; i < 4; i++ {
		batchA = append(batchA, rg.sendAdd(uint32(2000+i), byte(i), 100, 3))
	}
	rg.sim.RunFor(2 * time.Millisecond)
	for i := 0; i < 4; i++ {
		batchB = append(batchB, rg.sendAdd(uint32(2100+i), byte(16+i), 100, 5))
	}
	rg.sim.RunFor(2 * time.Millisecond)

	phys := rg.strat.pending()
	if len(phys) != 2 {
		t.Fatalf("want 2 physical installs (one per batch), got %d", len(phys))
	}
	// Confirm the second batch's install first.
	rg.strat.sc.Confirm(phys[1], OutcomeInstalled)
	rg.sim.RunFor(time.Millisecond)
	for i, h := range batchB {
		if _, ok := resolved(h); !ok {
			t.Fatalf("batch B future %d not resolved by its own physical ack", i)
		}
	}
	for i, h := range batchA {
		if _, ok := resolved(h); ok {
			t.Fatalf("batch A future %d resolved by batch B's physical ack", i)
		}
	}
	rg.strat.sc.Confirm(phys[0], OutcomeInstalled)
	rg.sim.RunFor(time.Millisecond)
	for i, h := range batchA {
		if _, ok := resolved(h); !ok {
			t.Fatalf("batch A future %d never resolved", i)
		}
	}
	phys[0].Release()
	phys[1].Release()
}

// A logical update whose rule folds into a still-in-flight physical
// install anchors on that install; both futures resolve on its single
// confirmation, each with its own issue timestamp.
func TestAggCoveredFoldsIntoPendingInstall(t *testing.T) {
	rg := newAggRig(t, nil)
	var first []*UpdateHandle
	for i := 0; i < 4; i++ {
		first = append(first, rg.sendAdd(uint32(3000+i), byte(i), 100, 3))
	}
	rg.sim.RunFor(10 * time.Millisecond)
	late := rg.sendAdd(3100, 2, 100, 3) // identical re-add, folds into the pending /30
	rg.sim.RunFor(2 * time.Millisecond)

	phys := rg.strat.pending()
	if len(phys) != 1 {
		t.Fatalf("identical re-add issued a new physical op: %d installs", len(phys))
	}
	if _, ok := resolved(late); ok {
		t.Fatal("covered future resolved while its physical install was in flight")
	}
	rg.strat.sc.Confirm(phys[0], OutcomeInstalled)
	phys[0].Release()
	rg.sim.RunFor(time.Millisecond)

	resFirst, ok := resolved(first[0])
	if !ok {
		t.Fatal("first-batch future never resolved")
	}
	resLate, ok := resolved(late)
	if !ok {
		t.Fatal("covered future never resolved")
	}
	if resLate.IssuedAt <= resFirst.IssuedAt {
		t.Fatalf("per-future issue timestamps not preserved: late %v <= first %v",
			resLate.IssuedAt, resFirst.IssuedAt)
	}
}

// A logical wildcard delete spanning several physical removes resolves
// only when ALL of them confirm, and resolves as OutcomeRemoved.
func TestAggDeleteWaitsForAllRemoves(t *testing.T) {
	rg := newAggRig(t, nil)
	h1 := rg.sendAdd(4000, 1, 100, 1)
	h2 := rg.sendAdd(4001, 2, 200, 2)
	rg.sim.RunFor(2 * time.Millisecond)
	phys := rg.strat.pending()
	if len(phys) != 2 {
		t.Fatalf("setup: want 2 physical installs, got %d", len(phys))
	}
	for _, pu := range phys {
		rg.strat.sc.Confirm(pu, OutcomeInstalled)
		pu.Release()
	}
	rg.sim.RunFor(time.Millisecond)
	if _, ok := resolved(h1); !ok {
		t.Fatal("setup add never resolved")
	}
	if _, ok := resolved(h2); !ok {
		t.Fatal("setup add never resolved")
	}

	hDel := rg.sendDelete(4100, aggDst(0, 24), of.FCDelete, 0)
	rg.sim.RunFor(2 * time.Millisecond)
	removes := rg.strat.pending()
	if len(removes) != 2 {
		t.Fatalf("want 2 physical removes for the wildcard delete, got %d", len(removes))
	}
	rg.strat.sc.Confirm(removes[0], OutcomeInstalled)
	rg.sim.RunFor(time.Millisecond)
	if _, ok := resolved(hDel); ok {
		t.Fatal("delete future resolved before every covering remove confirmed")
	}
	rg.strat.sc.Confirm(removes[1], OutcomeInstalled)
	rg.sim.RunFor(time.Millisecond)
	res, ok := resolved(hDel)
	if !ok {
		t.Fatal("delete future never resolved")
	}
	if res.Outcome != OutcomeRemoved || res.Code != of.RUMAckRemoved {
		t.Fatalf("delete resolved as %v code %#x, want removed", res.Outcome, res.Code)
	}
	removes[0].Release()
	removes[1].Release()
}

// Partial physical failure: the failed op's covered futures all fail
// with the physical rule's typed cause; futures covered by surviving ops
// still confirm. Table-driven over the failure mechanisms.
func TestAggPartialPhysicalFailure(t *testing.T) {
	cases := []struct {
		name string
		// fail injects the failure for the victim physical update.
		fail     func(rg *aggRig, victim *Update)
		want     error
		survives bool // the other physical op still confirms
	}{
		{
			name: "strategy-failed",
			fail: func(rg *aggRig, victim *Update) {
				rg.strat.sc.Confirm(victim, OutcomeFailed)
			},
			want:     ErrSwitchRejected,
			survives: true,
		},
		{
			name: "switch-error",
			fail: func(rg *aggRig, victim *Update) {
				e := &of.Error{ErrType: of.ErrTypeFlowModFailed, Code: 1}
				e.SetXID(victim.XID())
				_ = rg.swEnd.Send(e)
				rg.sim.RunFor(time.Millisecond)
			},
			want:     ErrSwitchRejected,
			survives: true,
		},
		{
			name: "detach-restarted",
			fail: func(rg *aggRig, victim *Update) {
				rg.rum.DetachSwitchCause("s1", ErrSwitchRestarted)
			},
			want:     ErrSwitchRestarted,
			survives: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rg := newAggRig(t, nil)
			// Two disjoint merge groups → two physical installs in one batch.
			var gA, gB []*UpdateHandle
			for i := 0; i < 2; i++ {
				gA = append(gA, rg.sendAdd(uint32(5000+i), byte(i), 100, 3))
				gB = append(gB, rg.sendAdd(uint32(5100+i), byte(16+i), 100, 5))
			}
			rg.sim.RunFor(2 * time.Millisecond)
			phys := rg.strat.pending()
			if len(phys) != 2 {
				t.Fatalf("want 2 physical installs, got %d", len(phys))
			}
			tc.fail(rg, phys[0])
			rg.sim.RunFor(time.Millisecond)
			for i, h := range gA {
				res, ok := resolved(h)
				if !ok {
					t.Fatalf("covered future %d not failed by the physical failure", i)
				}
				if res.Outcome != OutcomeFailed || !errors.Is(res.Err, tc.want) {
					t.Fatalf("future %d: outcome %v err %v, want failed/%v",
						i, res.Outcome, res.Err, tc.want)
				}
			}
			if tc.survives {
				rg.strat.sc.Confirm(phys[1], OutcomeInstalled)
				rg.sim.RunFor(time.Millisecond)
				for i, h := range gB {
					res, ok := resolved(h)
					if !ok || res.Outcome != OutcomeInstalled {
						t.Fatalf("surviving future %d: ok=%v res=%+v", i, ok, res)
					}
				}
			} else {
				for i, h := range gB {
					res, ok := resolved(h)
					if !ok || !errors.Is(res.Err, tc.want) {
						t.Fatalf("detached future %d: ok=%v err=%v", i, ok, res.Err)
					}
				}
			}
			phys[0].Release()
			phys[1].Release()
		})
	}
}

// DetachSwitchCause mid-aggregation — pending physical installs with
// populated covered-sets AND logical updates still staged for a flush
// that will never run — leaks no pooled updates or covered-sets:
// LiveUpdates returns to its pre-workload value.
func TestAggDetachMidAggregationNoLeak(t *testing.T) {
	base := LiveUpdates()
	rg := newAggRig(t, nil)
	var hs []*UpdateHandle
	for i := 0; i < 6; i++ {
		hs = append(hs, rg.sendAdd(uint32(6000+i), byte(i), 100, 3))
	}
	rg.sim.RunFor(2 * time.Millisecond) // flushed: physical install pending, covered-set populated

	// Stage one more logical update without letting the flush run: it
	// must be failed by the detach, not stranded.
	sess, ok := rg.rum.sessionByName("s1")
	if !ok {
		t.Fatal("session missing")
	}
	lateFM := &of.FlowMod{Command: of.FCAdd, Match: aggDst(7, 32), Priority: 100,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 3}}}
	lateFM.SetXID(6100)
	hLate := rg.rum.Watch("s1", 6100)
	lu := acquireUpdate()
	lu.sw, lu.xid, lu.fm, lu.issuedAt = "s1", 6100, lateFM, rg.sim.Now()
	sess.ack.stageAggregate(lu)

	rg.rum.DetachSwitchCause("s1", ErrSwitchRestarted)
	rg.sim.RunFor(5 * time.Millisecond) // let the orphaned flush timer fire

	for i, h := range append(hs, hLate) {
		res, ok := resolved(h)
		if !ok {
			t.Fatalf("future %d not resolved by detach", i)
		}
		if !errors.Is(res.Err, ErrSwitchRestarted) {
			t.Fatalf("future %d: cause %v, want ErrSwitchRestarted", i, res.Err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for LiveUpdates() != base {
		if time.Now().After(deadline) {
			t.Fatalf("covered-set/update leak: LiveUpdates %d != base %d", LiveUpdates(), base)
		}
		rg.sim.RunFor(time.Millisecond)
	}
}

// With the barrier layer on, a barrier following a staged aggregation
// burst is answered only after the burst's physical install confirms:
// the flush-before-absorb hook makes the barrier interval cover staged
// logical work.
func TestAggBarrierCoversStagedBurst(t *testing.T) {
	rg := newAggRig(t, func(c *Config) { c.BarrierLayer = true })
	for i := 0; i < 4; i++ {
		rg.sendAdd(uint32(7000+i), byte(i), 100, 3)
	}
	bar := &of.BarrierRequest{}
	bar.SetXID(7777)
	_ = rg.ctrl.Send(bar)
	rg.sim.RunFor(5 * time.Millisecond)

	for _, m := range rg.seen {
		if rep, ok := m.(*of.BarrierReply); ok && rep.GetXID() == 7777 {
			t.Fatal("barrier answered before the covering physical install confirmed")
		}
	}
	phys := rg.strat.pending()
	if len(phys) != 1 {
		t.Fatalf("want 1 physical install, got %d", len(phys))
	}
	rg.strat.sc.Confirm(phys[0], OutcomeInstalled)
	phys[0].Release()
	rg.sim.RunFor(5 * time.Millisecond)
	found := false
	for _, m := range rg.seen {
		if rep, ok := m.(*of.BarrierReply); ok && rep.GetXID() == 7777 {
			found = true
		}
	}
	if !found {
		t.Fatal("barrier reply never arrived after the physical confirm")
	}
}
