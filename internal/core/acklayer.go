package core

import (
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/proxy"
)

// pending is one controller FlowMod awaiting data-plane confirmation.
type pending struct {
	xid      uint32
	seq      uint64 // per-session issue order
	fm       *of.FlowMod
	issuedAt time.Duration
	done     bool
}

// confirmListener observes confirmations (the barrier layer registers one).
type confirmListener func(p *pending, code uint16)

// ackLayer is the acknowledgment layer (§2): it tracks every FlowMod the
// controller sends, hands it to the configured technique, and emits a
// fine-grained ack to RUM-aware controllers once the technique proves the
// rule is in the data plane.
type ackLayer struct {
	sess *session

	mu        sync.Mutex
	ctx       *proxy.Context
	nextSeq   uint64
	pendings  []*pending // issue order; confirmed entries are pruned
	listeners []confirmListener
}

// FromController implements proxy.Layer.
func (a *ackLayer) FromController(ctx *proxy.Context, m of.Message) {
	a.mu.Lock()
	a.ctx = ctx
	a.mu.Unlock()
	switch mm := m.(type) {
	case *of.FlowMod:
		a.mu.Lock()
		a.nextSeq++
		p := &pending{
			xid:      mm.GetXID(),
			seq:      a.nextSeq,
			fm:       mm,
			issuedAt: ctx.Clock().Now(),
		}
		a.pendings = append(a.pendings, p)
		a.mu.Unlock()
		ctx.ToSwitch(m)
		a.sess.tech.onFlowMod(a, ctx, p)
	default:
		ctx.ToSwitch(m)
	}
}

// FromSwitch implements proxy.Layer: RUM-internal replies and probe
// PacketIns are consumed by the technique; everything else passes through.
func (a *ackLayer) FromSwitch(ctx *proxy.Context, m of.Message) {
	a.mu.Lock()
	a.ctx = ctx
	a.mu.Unlock()
	if a.sess.tech.onFromSwitch(a, ctx, m) {
		return
	}
	// Suppress replies to RUM-generated messages that the technique did
	// not claim (errors for probe rules, stray barrier replies).
	if IsRUMXID(m.GetXID()) && m.MsgType() != of.TypePacketIn {
		return
	}
	ctx.ToController(m)
}

// onConfirm registers a confirmation listener.
func (a *ackLayer) onConfirm(fn confirmListener) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.listeners = append(a.listeners, fn)
}

// confirm marks p as data-plane-confirmed and emits acknowledgments.
func (a *ackLayer) confirm(p *pending, code uint16) {
	a.mu.Lock()
	if p.done {
		a.mu.Unlock()
		return
	}
	p.done = true
	kept := a.pendings[:0]
	for _, q := range a.pendings {
		if !q.done {
			kept = append(kept, q)
		}
	}
	a.pendings = kept
	ctx := a.ctx
	listeners := append([]confirmListener(nil), a.listeners...)
	a.mu.Unlock()

	if a.sess.rum.cfg.RUMAware && ctx != nil {
		ack := of.NewRUMAck(p.xid, code)
		ack.SetXID(a.sess.rum.newXID())
		ctx.ToController(ack)
		a.sess.rum.mu.Lock()
		a.sess.rum.acksSent++
		a.sess.rum.mu.Unlock()
	}
	for _, fn := range listeners {
		fn(p, code)
	}
}

// confirmUpTo confirms every pending mod with seq <= seq (order-preserving
// techniques: barriers, timeout, sequential).
func (a *ackLayer) confirmUpTo(seq uint64, code uint16) {
	a.mu.Lock()
	var ready []*pending
	for _, p := range a.pendings {
		if p.seq <= seq && !p.done {
			ready = append(ready, p)
		}
	}
	a.mu.Unlock()
	for _, p := range ready {
		a.confirm(p, code)
	}
}

// unconfirmed snapshots the not-yet-confirmed mods in issue order.
func (a *ackLayer) unconfirmed() []*pending {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*pending(nil), a.pendings...)
}

// currentSeq returns the seq of the most recently tracked FlowMod.
func (a *ackLayer) currentSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextSeq
}

// technique is the strategy deciding when a tracked FlowMod is confirmed.
type technique interface {
	// onFlowMod is invoked after the FlowMod was forwarded toward the
	// switch.
	onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending)
	// onFromSwitch may consume a switch→controller message (returns true
	// to stop propagation).
	onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool
}

// noWaitTech confirms instantly: no guarantees, fastest possible updates —
// the evaluation's lower bound.
type noWaitTech struct{}

func (noWaitTech) onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending) {
	a.confirm(p, of.RUMAckInstalled)
}

func (noWaitTech) onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool {
	return false
}

// barrierTech implements TechBarriers (delay == 0) and TechTimeout
// (delay > 0): a RUM barrier follows every FlowMod; the reply — plus the
// configured safety delay — confirms everything issued before it (§3.1).
type barrierTech struct {
	sess  *session
	delay time.Duration

	mu       sync.Mutex
	barriers map[uint32]uint64 // barrier xid → covered seq
}

func newBarrierTech(s *session, delay time.Duration) *barrierTech {
	return &barrierTech{sess: s, delay: delay, barriers: make(map[uint32]uint64)}
}

func (t *barrierTech) onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending) {
	br := &of.BarrierRequest{}
	xid := t.sess.rum.newXID()
	br.SetXID(xid)
	t.mu.Lock()
	t.barriers[xid] = p.seq
	t.mu.Unlock()
	ctx.ToSwitch(br)
}

func (t *barrierTech) onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool {
	rep, ok := m.(*of.BarrierReply)
	if !ok {
		return false
	}
	t.mu.Lock()
	seq, mine := t.barriers[rep.GetXID()]
	if mine {
		delete(t.barriers, rep.GetXID())
	}
	t.mu.Unlock()
	if !mine {
		return false
	}
	if t.delay == 0 {
		a.confirmUpTo(seq, of.RUMAckInstalled)
	} else {
		ctx.Clock().After(t.delay, func() {
			a.confirmUpTo(seq, of.RUMAckInstalled)
		})
	}
	return true
}

// adaptiveTech implements TechAdaptive: a virtual-time model of the
// switch's installation pipeline. Each forwarded FlowMod advances the
// modeled completion time by 1/AssumedRate; with a modeled sync period the
// estimated activation rounds up to the next sync boundary. The technique
// is exactly as safe as its model — overestimate the rate and
// acknowledgments arrive before the data plane does (the paper's
// "adaptive 250" failure mode).
type adaptiveTech struct {
	sess *session

	mu sync.Mutex
	vt time.Duration // modeled control-plane completion time
}

func newAdaptiveTech(s *session) *adaptiveTech { return &adaptiveTech{sess: s} }

func (t *adaptiveTech) onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending) {
	cfg := t.sess.rum.cfg
	now := ctx.Clock().Now()
	perMod := time.Duration(float64(time.Second) / cfg.AssumedRate)
	t.mu.Lock()
	if t.vt < now {
		t.vt = now
	}
	t.vt += perMod
	est := t.vt
	t.mu.Unlock()
	if s := cfg.ModelSyncPeriod; s > 0 {
		est = ((est+s-1)/s)*s + cfg.ModelSyncSlack
	}
	delay := est - now
	ctx.Clock().After(delay, func() { a.confirm(p, of.RUMAckInstalled) })
}

func (t *adaptiveTech) onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool {
	return false
}
