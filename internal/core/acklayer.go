package core

import (
	"sync"

	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/proxy"
)

// confirmListener observes confirmations (the barrier layer registers one).
type confirmListener func(u *Update, outcome Outcome)

// ackLayer is the acknowledgment layer (§2): it tracks every FlowMod the
// controller sends, hands it to the switch's configured AckStrategy, and —
// once the strategy proves the rule is in the data plane — emits a
// fine-grained ack to RUM-aware controllers, resolves ack futures, and
// publishes an AckEvent.
type ackLayer struct {
	sess *session

	mu        sync.Mutex
	ctx       *proxy.Context
	nextSeq   uint64
	pendings  []*Update // issue order; confirmed entries are pruned
	listeners []confirmListener
}

// FromController implements proxy.Layer. The ack layer is the
// switch-nearest layer, so instead of writing to the connection directly
// it hands every switch-bound message to the session's shard, whose
// outbox batches the injection (and coalesces RUM barriers) off the
// dispatch path.
func (a *ackLayer) FromController(ctx *proxy.Context, m of.Message) {
	a.mu.Lock()
	a.ctx = ctx
	a.mu.Unlock()
	switch mm := m.(type) {
	case *of.FlowMod:
		a.mu.Lock()
		a.nextSeq++
		u := &Update{
			sw:       a.sess.name,
			xid:      mm.GetXID(),
			seq:      a.nextSeq,
			fm:       mm,
			issuedAt: ctx.Clock().Now(),
		}
		a.pendings = append(a.pendings, u)
		a.mu.Unlock()
		a.sess.sendToSwitch(m)
		a.sess.strat.OnFlowMod(u)
	default:
		a.sess.sendToSwitch(m)
	}
}

// FromSwitch implements proxy.Layer: barrier replies and probe PacketIns
// are offered to the strategy (and, for probes, to every cross-switch
// probe-routing deployment); switch errors fail their pending update; and
// replies to RUM-internal messages are suppressed. Everything else passes
// through.
func (a *ackLayer) FromSwitch(ctx *proxy.Context, m of.Message) {
	a.mu.Lock()
	a.ctx = ctx
	a.mu.Unlock()
	switch mm := m.(type) {
	case *of.BarrierReply:
		// A reply to a barrier that swallowed earlier RUM barriers in the
		// shard's outbox stands in for all of them (a later barrier's
		// reply is the stronger signal); synthesize the swallowed replies
		// so strategies observe every barrier they emitted, oldest first.
		// Synthesized replies live exactly for the strategy callback, so
		// they cycle through the codec pool.
		for _, dx := range a.sess.shard.takeCoalesced(mm.GetXID()) {
			synth := of.AcquireBarrierReply()
			synth.SetXID(dx)
			a.sess.strat.OnBarrierReply(synth)
			of.Release(synth)
		}
		if a.sess.strat.OnBarrierReply(mm) {
			// Strategies only ever claim replies to their own barriers:
			// the reply is consumed here, was never forwarded, and no one
			// upstream retains it (switches reply-and-forget, strategies
			// keep xids, not pointers) — recycle it.
			of.Release(mm)
			return
		}
	case *of.PacketIn:
		if pkt, err := packet.Unmarshal(mm.Data); err == nil {
			if a.sess.strat.OnProbe(mm, pkt.Fields) {
				return
			}
			if a.sess.rum.routeProbe(a.sess.name, mm, pkt.Fields) {
				return
			}
		}
	case *of.Error:
		// A genuine switch error for a tracked FlowMod resolves it as
		// failed; the error itself still reaches the controller below.
		if _, _, isAck := mm.IsRUMAck(); !isAck && errorBlamesFlowMod(mm) {
			a.failByXID(mm.GetXID())
		}
	}
	// Suppress replies to RUM-generated messages that the strategy did
	// not claim (errors for probe rules, stray barrier replies). This is
	// their final consumption point, so poolable ones are recycled;
	// PacketIns are exempt from both the suppression and the release —
	// probe handling may retain them.
	if IsRUMXID(m.GetXID()) && m.MsgType() != of.TypePacketIn {
		of.Release(m)
		return
	}
	ctx.ToController(m)
}

// onConfirm registers a confirmation listener.
func (a *ackLayer) onConfirm(fn confirmListener) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.listeners = append(a.listeners, fn)
}

// takeConfirmed atomically marks u resolved and prunes it; it reports
// false when u was already resolved, and returns the resources needed to
// emit the resolution.
func (a *ackLayer) takeConfirmed(u *Update) (ctx *proxy.Context, listeners []confirmListener, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if u.done {
		return nil, nil, false
	}
	u.done = true
	kept := a.pendings[:0]
	for _, q := range a.pendings {
		if !q.done {
			kept = append(kept, q)
		}
	}
	a.pendings = kept
	return a.ctx, append([]confirmListener(nil), a.listeners...), true
}

// confirm resolves u with the given outcome: it emits the wire-level ack
// to RUM-aware controllers (fallback included, failed excluded), resolves
// ack futures, publishes an AckEvent, and notifies listeners.
func (a *ackLayer) confirm(u *Update, outcome Outcome) {
	ctx, listeners, ok := a.takeConfirmed(u)
	if !ok {
		return
	}
	a.emitResolution(ctx, listeners, u, outcome)
}

// emitResolution performs the lock-free tail of a confirmation for an
// update already marked done and pruned.
func (a *ackLayer) emitResolution(ctx *proxy.Context, listeners []confirmListener, u *Update, outcome Outcome) {
	// Deletions confirmed by order-preserving strategies arrive as
	// OutcomeInstalled; refine them so callers see "removed".
	if outcome == OutcomeInstalled &&
		(u.fm.Command == of.FCDelete || u.fm.Command == of.FCDeleteStrict) {
		outcome = OutcomeRemoved
	}
	r := a.sess.rum
	code, hasWire := outcome.wireCode()
	if hasWire && r.cfg.RUMAware && ctx != nil {
		ack := of.NewRUMAck(u.xid, code)
		ack.SetXID(r.newXID())
		ctx.ToController(ack)
		r.noteAck()
	}
	now := a.sess.clock().Now()
	res := AckResult{
		Switch:      u.sw,
		XID:         u.xid,
		Outcome:     outcome,
		Code:        code,
		IssuedAt:    u.issuedAt,
		ConfirmedAt: now,
		Latency:     now - u.issuedAt,
	}
	r.resolveWatch(res)
	r.publish(AckEvent{
		Switch:   u.sw,
		XID:      u.xid,
		Outcome:  outcome,
		Code:     code,
		IssuedAt: u.issuedAt,
		At:       now,
		Latency:  res.Latency,
	})
	for _, fn := range listeners {
		fn(u, outcome)
	}
	// Let the strategy drop per-update state for resolutions it did not
	// initiate (switch errors, detach) — a failed update's probe must not
	// clog the probe pump forever.
	if ro, ok := a.sess.strat.(ResolutionObserver); ok {
		ro.OnUpdateResolved(u, outcome)
	}
}

// confirmUpTo confirms every pending mod with seq <= seq (order-preserving
// strategies: barriers, timeout, sequential). The whole prefix is marked
// and pruned in one pass under the lock — with coalesced barriers a
// single reply routinely resolves a large batch, and per-update
// re-pruning would make that quadratic.
func (a *ackLayer) confirmUpTo(seq uint64, outcome Outcome) {
	a.mu.Lock()
	var ready []*Update
	kept := a.pendings[:0]
	for _, u := range a.pendings {
		if u.done {
			continue
		}
		if u.seq <= seq {
			u.done = true
			ready = append(ready, u)
		} else {
			kept = append(kept, u)
		}
	}
	a.pendings = kept
	ctx := a.ctx
	var listeners []confirmListener
	if len(ready) > 0 {
		listeners = append([]confirmListener(nil), a.listeners...)
	}
	a.mu.Unlock()
	for _, u := range ready {
		a.emitResolution(ctx, listeners, u, outcome)
	}
}

// errorBlamesFlowMod reports whether a switch error can be attributed to
// a FlowMod: flow-mod-failed errors always are; otherwise the error's
// echoed offending-message header decides. A payload too short to carry
// the header is NOT attributed — an xid collision with another message
// type must never mark a healthy update failed (a missed failure merely
// leaves the update to its strategy; a false failure discards the
// eventual genuine confirmation).
func errorBlamesFlowMod(e *of.Error) bool {
	if e.ErrType == of.ErrTypeFlowModFailed {
		return true
	}
	return len(e.Data) >= 2 && of.MsgType(e.Data[1]) == of.TypeFlowMod
}

// pendingSnapshot copies the unresolved updates in issue order.
func (a *ackLayer) pendingSnapshot() []*Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Update(nil), a.pendings...)
}

// failByXID resolves the pending update with the given controller xid as
// failed, if one exists.
func (a *ackLayer) failByXID(xid uint32) {
	a.mu.Lock()
	var victim *Update
	for _, u := range a.pendings {
		if u.xid == xid && !u.done {
			victim = u
			break
		}
	}
	a.mu.Unlock()
	if victim != nil {
		a.confirm(victim, OutcomeFailed)
	}
}
