package core

import (
	"sync"
	"sync/atomic"

	"rum/internal/aggregate"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/proxy"
)

// confirmListener observes confirmations (the barrier layer registers one).
type confirmListener func(u *Update, outcome Outcome)

// ackRingMinCap is the initial seq-ring capacity; it grows by doubling to
// the workload's high-water mark and stays there for the session.
const ackRingMinCap = 256

// confirmScratch recycles the ready-lists confirmUpTo drains batches
// into, so a coalesced barrier reply resolving hundreds of updates
// allocates nothing at steady state.
var confirmScratch = sync.Pool{New: func() any {
	s := make([]*Update, 0, 64)
	return &s
}}

// ackLayer is the acknowledgment layer (§2): it tracks every FlowMod the
// controller sends, hands it to the switch's configured AckStrategy, and —
// once the strategy proves the rule is in the data plane — emits a
// fine-grained ack to RUM-aware controllers, resolves ack futures, and
// publishes an AckEvent.
//
// Bookkeeping is O(1) per update: seq is monotonic per session, so the
// pending set is a seq-indexed ring buffer (seq s lives at ring[s&mask])
// bounded by [head, nextSeq]. Confirming a prefix is a head-pointer
// advance; an out-of-order confirmation just marks its slot done and the
// hole is reaped when the head passes it — no rescanning, ever. The head
// doubles as the published confirmed-prefix watermark the barrier layer
// and work-proportional timeout bounds read lock-free.
type ackLayer struct {
	sess *session

	// ctx is the layer's proxy context, captured from the first message
	// to cross the layer (contexts are per-layer singletons, so there is
	// nothing to re-store per message).
	ctx atomic.Pointer[proxy.Context]

	// head is the lowest unresolved seq (confirmedThrough() == head-1);
	// issued mirrors nextSeq. Both are written under mu and read
	// lock-free by the barrier layer and strategies.
	head   atomic.Uint64
	issued atomic.Uint64
	// emitting counts confirmation batches whose watermark advance is
	// published but whose acks/listeners have not finished emitting; the
	// barrier layer must not reply directly past them (see quiescentAt).
	emitting atomic.Int32

	mu        sync.Mutex
	nextSeq   uint64
	ring      []*Update // power-of-two window [head, nextSeq], one ref per slot
	wireQ     []*Update // FIFO awaiting wire-encode release (recycleFM sessions)
	wireHead  int
	listeners []confirmListener // copy-on-write; snapshots are immutable

	// Aggregation fan-in (Config.Aggregate; see aggfanin.go): staged
	// logical updates awaiting the next flush, the pending-install index
	// Covered anchors fold into, and the detach latch that fails late
	// stagers instead of issuing physical ops on a dead session.
	aggStage   []*Update
	aggPending map[aggregate.PhysRef]*Update
	aggClosed  bool

	// Intent replication (see journal.go). journalOn is latched at attach
	// from the RUM-level sink, so sessions without replication pay one
	// bool test per update. jmu is a leaf lock guarding the frame under
	// construction and its scratch buffers; it nests inside a.mu only.
	journalOn bool
	jmu       sync.Mutex
	jbuf      []byte
	jbody     []byte
	jscratch  []byte
}

func newAckLayer(s *session) *ackLayer {
	a := &ackLayer{sess: s}
	a.head.Store(1)
	return a
}

// captureCtx latches the layer's proxy context once; both directions
// share the same per-layer Context value.
func (a *ackLayer) captureCtx(ctx *proxy.Context) {
	if a.ctx.Load() == nil {
		a.ctx.Store(ctx)
	}
}

// confirmedThrough returns the contiguous confirmed seq prefix: every
// update with seq <= the returned value has resolved.
func (a *ackLayer) confirmedThrough() uint64 { return a.head.Load() - 1 }

// issuedThrough returns the newest seq handed out so far.
func (a *ackLayer) issuedThrough() uint64 { return a.issued.Load() }

// quiescentAt reports whether every update with seq <= upTo has resolved
// AND its acks have been serialized. The watermark advances under the
// mutex before acks are emitted outside it, so watermark-coverage alone
// would let a concurrently absorbed barrier reply overtake the covered
// updates' acks on the controller channel. The emitting counter is
// incremented in the same critical section as the watermark store and
// dropped once the batch's acks are out (with its listener calls still
// pending), so a zero read here means no ack-reordering window is open.
func (a *ackLayer) quiescentAt(upTo uint64) bool {
	return a.confirmedThrough() >= upTo && a.emitting.Load() == 0
}

// FromController implements proxy.Layer. The ack layer is the
// switch-nearest layer, so instead of writing to the connection directly
// it hands every switch-bound message to the session's shard, whose
// outbox batches the injection (and coalesces RUM barriers) off the
// dispatch path.
func (a *ackLayer) FromController(ctx *proxy.Context, m of.Message) {
	a.captureCtx(ctx)
	mm, ok := m.(*of.FlowMod)
	if !ok {
		// Any non-FlowMod must not overtake staged logical FlowMods on
		// the wire (or observe a stale issued watermark): flush first.
		if a.sess.agg != nil {
			a.flushAggStage()
		}
		a.sess.sendToSwitch(m)
		return
	}
	u := acquireUpdate()
	u.sw = a.sess.name
	u.xid = mm.GetXID()
	u.fm = mm
	u.issuedAt = ctx.Clock().Now()
	// On sessions whose conns both encode frames, the decoded FlowMod is
	// exclusively RUM's: the wire watermark below returns it to the codec
	// pool once it has been serialized toward the switch and the update
	// has fully resolved.
	wire := a.sess.recycleFM && !IsRUMXID(u.xid)
	u.ownFM = wire
	// Aggregated sessions stage the logical FlowMod instead of forwarding
	// it: the flush issues the compressed physical delta and the logical
	// future resolves by fan-in from the physical acks (aggfanin.go). The
	// FlowMod never touches the wire queue — on recycling sessions the
	// decoded struct returns to the codec pool when the logical update's
	// last reference drops (the aggregate table copies what it keeps).
	// Overload admission is skipped: outbox pressure is produced by the
	// (fewer, merged) physical installs, not the logical stream.
	if a.sess.agg != nil && !IsRUMXID(u.xid) {
		a.stageAggregate(u)
		return
	}
	// Overload admission runs before tracking and outside a.mu: the Block
	// policy may park until the outbox drains, and a.mu must never be held
	// across a wait (noteFlushed takes it from the flush path). A refusal
	// sheds the update — tracked, resolved as failed with ErrOverloaded,
	// never enqueued.
	if a.sess.rum.overloadOn && !IsRUMXID(u.xid) && !a.sess.shard.admitUpdate() {
		a.shed(u)
		return
	}
	a.mu.Lock()
	a.nextSeq++
	u.seq = a.nextSeq
	a.issued.Store(a.nextSeq)
	a.ringPutLocked(u)
	if a.journalOn {
		a.journalIntent(u)
	}
	if wire {
		u.Retain() // wire reference, dropped by noteFlushed after encoding
		a.wireQ = append(a.wireQ, u)
	}
	// The outbox enqueue stays inside the critical section: noteFlushed
	// pairs wire-queue entries with encoded FlowMods purely by FIFO
	// position, so the two queues must observe the same order even when
	// dispatch paths race (buffer-mode barrier release runs concurrently
	// with the controller reader). Lock order is ackLayer.mu → shard.mu,
	// never reversed (noteFlushed runs after the flush drops the shard
	// lock), and enqueue never blocks (admission already happened above).
	if a.sess.rum.overloadOn && !IsRUMXID(u.xid) {
		a.sess.sendTrackedToSwitch(m)
	} else {
		a.sess.sendToSwitch(m)
	}
	a.mu.Unlock()
	a.sess.strat.OnFlowMod(u)
	u.Release() // the tracking frame's reference
}

// shed resolves a tracked-but-never-sent update as failed with
// ErrOverloaded through the normal emission machinery — the future, the
// AckEvent stream, and strategy listeners all observe it — without the
// FlowMod ever touching the outbox. The switch's FIB is untouched, so
// the caller may back off and re-issue.
func (a *ackLayer) shed(u *Update) {
	a.mu.Lock()
	a.nextSeq++
	u.seq = a.nextSeq
	a.issued.Store(a.nextSeq)
	a.ringPutLocked(u)
	a.mu.Unlock()
	a.sess.rum.sheds.Add(1)
	a.confirmCause(u, OutcomeFailed, ErrOverloaded)
	u.Release() // the tracking frame's reference
}

// ringPutLocked places u at its seq slot, growing (and rehashing) the
// ring when the pending window outgrows it. The slot holds one reference.
func (a *ackLayer) ringPutLocked(u *Update) {
	h := a.head.Load()
	if n := uint64(len(a.ring)); n == 0 || u.seq-h+1 > n {
		need := u.seq - h + 1
		grown := uint64(ackRingMinCap)
		for grown < need {
			grown <<= 1
		}
		nr := make([]*Update, grown)
		for s := h; s < u.seq; s++ {
			nr[s&(grown-1)] = a.ring[s&uint64(len(a.ring)-1)]
		}
		a.ring = nr
	}
	a.ring[u.seq&uint64(len(a.ring)-1)] = u
	u.Retain()
}

// reapLocked advances the head past resolved updates, clearing their
// slots and dropping the slots' references. Out-of-order confirmations
// leave done holes behind the head; this is where they are collected.
func (a *ackLayer) reapLocked() {
	h := a.head.Load()
	mask := uint64(len(a.ring) - 1)
	for h <= a.nextSeq {
		u := a.ring[h&mask]
		if !u.done {
			break
		}
		a.ring[h&mask] = nil
		h++
		u.Release()
	}
	a.head.Store(h)
}

// noteFlushed reports that the shard encoded n tracked FlowMods onto the
// wire (FIFO, so they are exactly the next n wire-queue entries); their
// wire references drop, letting fully-resolved updates recycle their
// decoded FlowMods back to the codec pool.
func (a *ackLayer) noteFlushed(n int) {
	a.mu.Lock()
	for ; n > 0 && a.wireHead < len(a.wireQ); n-- {
		u := a.wireQ[a.wireHead]
		a.wireQ[a.wireHead] = nil
		a.wireHead++
		u.Release()
	}
	if a.wireHead == len(a.wireQ) {
		a.wireQ = a.wireQ[:0]
		a.wireHead = 0
	}
	a.mu.Unlock()
}

// releaseWire drops the wire references of updates still queued for
// encoding when the session detaches: the shard dropped its outbox, so
// noteFlushed will never pop them. Their decoded FlowMods are handed to
// the garbage collector instead of the codec pool (ownFM is cleared
// first) — a flush already in flight may still be serializing the
// structs, so recycling them here would hand the encoder a reused
// buffer. Detach is cold; the pool just misses.
func (a *ackLayer) releaseWire() {
	a.mu.Lock()
	for ; a.wireHead < len(a.wireQ); a.wireHead++ {
		u := a.wireQ[a.wireHead]
		a.wireQ[a.wireHead] = nil
		u.ownFM = false
		u.Release()
	}
	a.wireQ = a.wireQ[:0]
	a.wireHead = 0
	a.mu.Unlock()
}

// FromSwitch implements proxy.Layer: barrier replies and probe PacketIns
// are offered to the strategy (and, for probes, to every cross-switch
// probe-routing deployment); switch errors fail their pending update; and
// replies to RUM-internal messages are suppressed. Everything else passes
// through.
func (a *ackLayer) FromSwitch(ctx *proxy.Context, m of.Message) {
	a.captureCtx(ctx)
	switch mm := m.(type) {
	case *of.BarrierReply:
		// A reply to a barrier that swallowed earlier RUM barriers in the
		// shard's outbox stands in for all of them (a later barrier's
		// reply is the stronger signal); synthesize the swallowed replies
		// so strategies observe every barrier they emitted, oldest first.
		// Synthesized replies live exactly for the strategy callback, so
		// they cycle through the codec pool.
		if dropped := a.sess.shard.takeCoalesced(mm.GetXID()); dropped != nil {
			for _, dx := range dropped {
				synth := of.AcquireBarrierReply()
				synth.SetXID(dx)
				a.sess.strat.OnBarrierReply(synth)
				of.Release(synth)
			}
			a.sess.shard.releaseCoalesced(dropped)
		}
		if a.sess.strat.OnBarrierReply(mm) {
			// Strategies only ever claim replies to their own barriers:
			// the reply is consumed here, was never forwarded, and no one
			// upstream retains it (switches reply-and-forget, strategies
			// keep xids, not pointers) — recycle it.
			of.Release(mm)
			return
		}
	case *of.PacketIn:
		if pkt, err := packet.Unmarshal(mm.Data); err == nil {
			if a.sess.strat.OnProbe(mm, pkt.Fields) {
				return
			}
			if a.sess.rum.routeProbe(a.sess.name, mm, pkt.Fields) {
				return
			}
		}
	case *of.Error:
		// A genuine switch error for a tracked FlowMod resolves it as
		// failed; the error itself still reaches the controller below.
		if _, _, isAck := mm.IsRUMAck(); !isAck && errorBlamesFlowMod(mm) {
			a.failByXID(mm.GetXID())
		}
	}
	// Suppress replies to RUM-generated messages that the strategy did
	// not claim (errors for probe rules, stray barrier replies). This is
	// their final consumption point, so poolable ones are recycled;
	// PacketIns are exempt from both the suppression and the release —
	// probe handling may retain them.
	if IsRUMXID(m.GetXID()) && m.MsgType() != of.TypePacketIn {
		of.Release(m)
		return
	}
	ctx.ToController(m)
}

// onConfirm registers a confirmation listener. The listener slice is
// copy-on-write: emitters publish resolutions against an immutable
// snapshot without copying per confirmation.
func (a *ackLayer) onConfirm(fn confirmListener) {
	a.mu.Lock()
	ls := make([]confirmListener, len(a.listeners)+1)
	copy(ls, a.listeners)
	ls[len(ls)-1] = fn
	a.listeners = ls
	a.mu.Unlock()
}

// takeConfirmed atomically marks u resolved; it reports false when u was
// already resolved, and returns the resources needed to emit the
// resolution. A non-nil cause records the typed failure reason
// (ErrChannelLost, ErrSwitchRestarted, ErrSwitchRejected) under the same
// critical section that settles the done flag, so racing resolvers never
// observe a half-written cause. On success the caller inherits one
// reference to u (the emission reference) and must Release it after
// emitting.
func (a *ackLayer) takeConfirmed(u *Update, cause error) (ctx *proxy.Context, listeners []confirmListener, ok bool) {
	a.mu.Lock()
	if u.done {
		a.mu.Unlock()
		return nil, nil, false
	}
	u.done = true
	u.failErr = cause
	a.aggResolvedLocked(u)
	u.Retain()        // emission reference
	a.emitting.Add(1) // paired with the Add(-1) in confirm
	if u.seq == a.head.Load() {
		a.reapLocked()
	}
	listeners = a.listeners
	a.mu.Unlock()
	return a.ctx.Load(), listeners, true
}

// confirm resolves u with the given outcome: it emits the wire-level ack
// to RUM-aware controllers (fallback included, failed excluded), resolves
// ack futures, publishes an AckEvent, and notifies listeners.
func (a *ackLayer) confirm(u *Update, outcome Outcome) {
	a.confirmCause(u, outcome, nil)
}

// confirmCause is confirm with a typed failure cause attached to the
// resolution (detach, switch errors); AckResult.Err carries it.
func (a *ackLayer) confirmCause(u *Update, outcome Outcome, cause error) {
	ctx, listeners, ok := a.takeConfirmed(u, cause)
	if !ok {
		return
	}
	refined := a.emitResolution(ctx, u, outcome)
	// Drop the emission marker after the ack is serialized but BEFORE
	// the listeners run: a barrier queued while the marker was up is
	// then guaranteed a still-pending listener call to drain it.
	a.emitting.Add(-1)
	for _, fn := range listeners {
		fn(u, refined)
	}
	if a.journalOn {
		a.journalDeliver()
	}
	u.Release()
}

// refineOutcome maps a prefix-confirmed deletion to "removed":
// order-preserving strategies confirm deletions as OutcomeInstalled.
func refineOutcome(u *Update, outcome Outcome) Outcome {
	if outcome == OutcomeInstalled &&
		(u.fm.Command == of.FCDelete || u.fm.Command == of.FCDeleteStrict) {
		return OutcomeRemoved
	}
	return outcome
}

// emitResolution performs the lock-free tail of a confirmation for an
// update already marked done, returning the refined outcome; the caller
// holds a reference to u and owns notifying the confirmation listeners.
func (a *ackLayer) emitResolution(ctx *proxy.Context, u *Update, outcome Outcome) Outcome {
	outcome = refineOutcome(u, outcome)
	if a.journalOn {
		a.journalResolve(u)
	}
	r := a.sess.rum
	code, hasWire := outcome.wireCode()
	// Physical aggregation ops carry RUM-internal xids the controller
	// never issued; their resolutions fan in to the covered logical
	// updates below instead of acking on the wire.
	if hasWire && r.cfg.RUMAware && ctx != nil && !IsRUMXID(u.xid) {
		ack := of.AcquireError()
		of.FillRUMAck(ack, u.xid, code)
		ack.SetXID(r.newXID())
		ctx.ToController(ack)
		if a.sess.recycleAcks {
			// The controller conn serialized the ack during Send (the
			// barrier layer passes RUM acks straight through), so RUM is
			// its sole owner again.
			of.Release(ack)
		}
		r.noteAck()
	}
	now := a.sess.clock().Now()
	res := AckResult{
		Switch:      u.sw,
		XID:         u.xid,
		Outcome:     outcome,
		Code:        code,
		IssuedAt:    u.issuedAt,
		ConfirmedAt: now,
		Latency:     now - u.issuedAt,
		Err:         u.failErr,
	}
	r.resolveWatch(res)
	// Only box the event when someone is listening: the interface
	// conversion heap-allocates, and this is the per-update hot path.
	if subs := r.subsSnapshot(); subs != nil {
		fanout(subs, AckEvent{
			Switch:   u.sw,
			XID:      u.xid,
			Outcome:  outcome,
			Code:     code,
			IssuedAt: u.issuedAt,
			At:       now,
			Latency:  res.Latency,
			Err:      u.failErr,
		})
	}
	// Let the strategy drop per-update state for resolutions it did not
	// initiate (switch errors, detach) — a failed update's probe must not
	// clog the probe pump forever.
	if ro, ok := a.sess.strat.(ResolutionObserver); ok {
		ro.OnUpdateResolved(u, outcome)
	}
	// A physical op's resolution fans in to the logical futures it
	// covers (Config.Aggregate): confirm the fully-anchored ones, fail
	// all of them on a typed physical failure.
	if u.covered != nil {
		a.fanInCovered(u, outcome)
	}
	return outcome
}

// confirmUpTo confirms every pending mod with seq <= seq (order-preserving
// strategies: barriers, timeout, adaptive, sequential). The whole prefix
// is a single head-pointer advance under the lock — with coalesced
// barriers one reply routinely resolves a large batch, and the cost is
// O(batch), independent of how many further updates are pending.
func (a *ackLayer) confirmUpTo(seq uint64, outcome Outcome) {
	sp := confirmScratch.Get().(*[]*Update)
	ready := (*sp)[:0]
	a.mu.Lock()
	if len(a.ring) > 0 {
		if seq > a.nextSeq {
			seq = a.nextSeq
		}
		mask := uint64(len(a.ring) - 1)
		h := a.head.Load()
		for ; h <= seq; h++ {
			u := a.ring[h&mask]
			a.ring[h&mask] = nil
			if u.done {
				// Confirmed out of order earlier; its resolution was
				// already emitted — the slot reference just dies here.
				u.Release()
				continue
			}
			u.done = true
			a.aggResolvedLocked(u)
			ready = append(ready, u) // slot reference rides along
		}
		if len(ready) > 0 {
			a.emitting.Add(1) // one batch; dropped after the listener loop
		}
		a.head.Store(h)
		a.reapLocked() // collect trailing out-of-order holes
	}
	listeners := a.listeners
	a.mu.Unlock()
	ctx := a.ctx.Load()
	// Emit every ack in the batch before notifying listeners: the
	// confirmed-prefix watermark already covers the whole batch, so a
	// listener poked mid-batch (the barrier layer) would release a
	// barrier reply ahead of the remaining — already confirmed, not yet
	// emitted — acks, reordering the controller's view.
	for _, u := range ready {
		a.emitResolution(ctx, u, outcome)
	}
	if len(ready) > 0 {
		// As in confirm: acks are out, listeners still pending — any
		// barrier that queued against this batch's marker drains below.
		a.emitting.Add(-1)
	}
	if len(listeners) > 0 {
		for _, u := range ready {
			refined := refineOutcome(u, outcome)
			for _, fn := range listeners {
				fn(u, refined)
			}
		}
	}
	if a.journalOn && len(ready) > 0 {
		a.journalDeliver()
	}
	for i, u := range ready {
		u.Release()
		ready[i] = nil
	}
	*sp = ready[:0]
	confirmScratch.Put(sp)
}

// errorBlamesFlowMod reports whether a switch error can be attributed to
// a FlowMod: flow-mod-failed errors always are; otherwise the error's
// echoed offending-message header decides. A payload too short to carry
// the header is NOT attributed — an xid collision with another message
// type must never mark a healthy update failed (a missed failure merely
// leaves the update to its strategy; a false failure discards the
// eventual genuine confirmation).
func errorBlamesFlowMod(e *of.Error) bool {
	if e.ErrType == of.ErrTypeFlowModFailed {
		return true
	}
	return len(e.Data) >= 2 && of.MsgType(e.Data[1]) == of.TypeFlowMod
}

// takePendingRetained snapshots the unresolved updates in issue order,
// holding one reference each; the caller must Release them (detach).
func (a *ackLayer) takePendingRetained() []*Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*Update
	if len(a.ring) == 0 {
		return nil
	}
	mask := uint64(len(a.ring) - 1)
	for s := a.head.Load(); s <= a.nextSeq; s++ {
		if u := a.ring[s&mask]; u != nil && !u.done {
			u.Retain()
			out = append(out, u)
		}
	}
	return out
}

// pendingCount reports how many updates are unresolved (tests).
func (a *ackLayer) pendingCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.ring) == 0 {
		return 0
	}
	n := 0
	mask := uint64(len(a.ring) - 1)
	for s := a.head.Load(); s <= a.nextSeq; s++ {
		if u := a.ring[s&mask]; u != nil && !u.done {
			n++
		}
	}
	return n
}

// failByXID resolves the pending update with the given controller xid as
// failed, if one exists. Errors are rare, so the linear walk over the
// pending window stays off the hot path.
func (a *ackLayer) failByXID(xid uint32) {
	a.mu.Lock()
	var victim *Update
	if len(a.ring) > 0 {
		mask := uint64(len(a.ring) - 1)
		for s := a.head.Load(); s <= a.nextSeq; s++ {
			if u := a.ring[s&mask]; u != nil && u.xid == xid && !u.done {
				victim = u
				victim.Retain()
				break
			}
		}
	}
	a.mu.Unlock()
	if victim != nil {
		a.confirmCause(victim, OutcomeFailed, ErrSwitchRejected)
		victim.Release()
	}
}
