package core

import (
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// TestGeneralConfirmsModification: changing a rule's output port is
// detected by probing toward the NEW next hop (the paper: "probes reach
// the controller from a different neighbor of B").
func TestGeneralConfirmsModification(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	// Install via port 2 (toward s3)...
	xids := tb.sendMods("s2", 1, 2)
	tb.sim.RunFor(2 * time.Second)
	// ...then modify to output via port 1 (toward s1).
	mod := &of.FlowMod{Command: of.FCModifyStrict, Priority: 100, Match: flowMatch(0),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 1}}}
	mod.SetXID(6000)
	_ = tb.ctrl["s2"].Send(mod)
	tb.sim.RunFor(3 * time.Second)

	acks := tb.ackTimes("s2")
	ackAt, ok := acks[6000]
	if !ok {
		t.Fatal("modification never acked")
	}
	var modAt time.Duration
	for _, a := range tb.switches["s2"].Activations() {
		if a.XID == 6000 {
			modAt = a.At
		}
	}
	if modAt == 0 {
		t.Fatal("modification never reached the data plane")
	}
	if ackAt < modAt {
		t.Errorf("modification acked at %v before activation at %v", ackAt, modAt)
	}
	_ = xids
}

// TestControllerXIDsNeverCollideWithRUM: replies to RUM-internal messages
// (probe rules, barriers) must never surface at the controller.
func TestRUMInternalRepliesSuppressed(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, ProbeEvery: 2}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	tb.sendMods("s2", 10, 2)
	tb.sim.RunFor(3 * time.Second)
	for _, m := range tb.passed {
		if IsRUMXID(m.GetXID()) {
			t.Fatalf("RUM-internal %v (xid %#x) leaked to the controller", m.MsgType(), m.GetXID())
		}
	}
}

// TestBarrierLayerOrdersReplies: two barriers resolve strictly in order
// even when the second one's rules confirm first (possible with general
// probing on a reordering switch).
func TestBarrierLayerOrdersReplies(t *testing.T) {
	prof := switchsim.ProfileReordering(5)
	tb := newTestbed(t, Config{
		Technique:    TechGeneral,
		BarrierLayer: true,
	}, prof)
	tb.bootstrapAndWarm(t)

	fm1 := flowModFor(t, 0, 8100)
	_ = tb.ctrl["s2"].Send(fm1)
	br1 := &of.BarrierRequest{}
	br1.SetXID(8001)
	_ = tb.ctrl["s2"].Send(br1)
	fm2 := flowModFor(t, 1, 8200)
	_ = tb.ctrl["s2"].Send(fm2)
	br2 := &of.BarrierRequest{}
	br2.SetXID(8002)
	_ = tb.ctrl["s2"].Send(br2)
	tb.sim.RunFor(5 * time.Second)

	var order []uint32
	for _, m := range tb.passed {
		if m.MsgType() == of.TypeBarrierReply {
			order = append(order, m.GetXID())
		}
	}
	if len(order) != 2 {
		t.Fatalf("got %d barrier replies, want 2 (%v)", len(order), order)
	}
	if order[0] != 8001 || order[1] != 8002 {
		t.Errorf("barrier replies out of order: %v", order)
	}
}

func flowModFor(t *testing.T, flow int, xid uint32) *of.FlowMod {
	t.Helper()
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(flow),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}}
	fm.SetXID(xid)
	return fm
}

// TestAckLayerPassesUnrelatedErrors: genuine switch errors (not RUM acks)
// reach the controller untouched.
func TestAckLayerPassesUnrelatedErrors(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	// A Vendor message with a controller xid provokes a bad-request error
	// from the emulated switch.
	v := &of.Vendor{VendorID: 0x1234}
	v.SetXID(1717)
	_ = tb.ctrl["s2"].Send(v)
	tb.sim.RunFor(time.Second)
	var found bool
	for _, m := range tb.passed {
		if e, ok := m.(*of.Error); ok && e.GetXID() == 1717 && e.ErrType == of.ErrTypeBadRequest {
			found = true
		}
	}
	if !found {
		t.Error("switch error did not reach the controller")
	}
}

// TestConfigDefaults verifies the paper's evaluation parameters are the
// defaults.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Timeout != 300*time.Millisecond {
		t.Errorf("default Timeout = %v", c.Timeout)
	}
	if c.ProbeEvery != 10 || c.ProbeBatch != 30 || c.ProbeInterval != 10*time.Millisecond {
		t.Errorf("probing defaults = every %d, batch %d, interval %v",
			c.ProbeEvery, c.ProbeBatch, c.ProbeInterval)
	}
	if c.AssumedRate != 200 {
		t.Errorf("default AssumedRate = %v", c.AssumedRate)
	}
	c2 := Config{ModelSyncPeriod: 300 * time.Millisecond}.Defaults()
	if c2.ModelSyncSlack == 0 {
		t.Error("ModelSyncSlack not defaulted when a sync model is set")
	}
}

// TestTopologyHelpers exercises the topology accessors.
func TestTopologyHelpers(t *testing.T) {
	topo := triangleTopology()
	if got := topo.Switches(); len(got) != 3 || got[0] != "s1" || got[2] != "s3" {
		t.Errorf("Switches() = %v", got)
	}
	nb := topo.Neighbors("s2")
	if nb[1] != "s1" || nb[2] != "s3" {
		t.Errorf("Neighbors(s2) = %v", nb)
	}
	if p, ok := topo.PortToward("s1", "s3"); !ok || p != 3 {
		t.Errorf("PortToward(s1,s3) = %d,%v", p, ok)
	}
	if _, ok := topo.PortToward("s1", "nope"); ok {
		t.Error("PortToward to unknown switch succeeded")
	}
}

// TestBootstrapFailsWithoutNeighbors: probing needs an attached neighbor
// to inject and receive probes; bootstrapping a lone switch must fail
// loudly instead of silently degrading.
func TestBootstrapFailsWithoutNeighbors(t *testing.T) {
	s := sim.New()
	topo := NewTopology([]TopoLink{{A: "x", APort: 1, B: "y", BPort: 1}})
	r, err := New(Config{Clock: s, Technique: TechSequential}, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Attach only "x": its receiver "y" has no session.
	a1, _ := transport.Pipe(s, 0)
	b1, _ := transport.Pipe(s, 0)
	if _, err := r.AttachSwitch("x", 1, a1, b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Bootstrap(); err == nil {
		t.Fatal("Bootstrap succeeded for a switch with no attached neighbor")
	}
}

// TestDetachSwitchAllowsReattach: a duplicate attach is rejected until
// the stale session is detached (switch reconnection in TCP deployments).
func TestDetachSwitchAllowsReattach(t *testing.T) {
	s := sim.New()
	topo := NewTopology([]TopoLink{{A: "x", APort: 1, B: "y", BPort: 1}})
	r, err := New(Config{Clock: s, Technique: TechBarriers}, topo)
	if err != nil {
		t.Fatal(err)
	}
	attach := func() error {
		a, _ := transport.Pipe(s, 0)
		b, _ := transport.Pipe(s, 0)
		_, err := r.AttachSwitch("x", 1, a, b)
		return err
	}
	if err := attach(); err != nil {
		t.Fatal(err)
	}
	if err := attach(); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
	if !r.DetachSwitch("x") {
		t.Fatal("DetachSwitch reported x not attached")
	}
	if r.DetachSwitch("x") {
		t.Fatal("second DetachSwitch reported success")
	}
	if err := attach(); err != nil {
		t.Fatalf("re-attach after detach failed: %v", err)
	}
}

// TestDetachFailsPendingFutures: detaching a switch resolves its
// in-flight updates as failed so ack futures do not hang forever.
func TestDetachFailsPendingFutures(t *testing.T) {
	s := sim.New()
	topo := NewTopology([]TopoLink{{A: "x", APort: 1, B: "y", BPort: 1}})
	r, err := New(Config{Clock: s, Technique: TechSequential}, topo)
	if err != nil {
		t.Fatal(err)
	}
	ctrlTop, ctrlBottom := transport.Pipe(s, 0)
	rumSide, _ := transport.Pipe(s, 0)
	if _, err := r.AttachSwitch("x", 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	// Never bootstrapped: the sequential strategy cannot confirm anything,
	// so the update stays pending.
	h := r.Watch("x", 42)
	_ = ctrlTop.Send(flowModFor(t, 0, 42))
	s.Run()
	if _, ok := h.Result(); ok {
		t.Fatal("update confirmed without probe infrastructure")
	}
	if !r.DetachSwitch("x") {
		t.Fatal("DetachSwitch failed")
	}
	res, ok := h.Result()
	if !ok {
		t.Fatal("future still unresolved after detach")
	}
	if res.Outcome != OutcomeFailed {
		t.Errorf("outcome = %s, want failed", res.Outcome)
	}

	// A cancelled watch never resolves.
	h2 := r.Watch("x", 43)
	h2.Cancel()
	if _, err := r.AttachSwitch("x", 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	_ = ctrlTop.Send(flowModFor(t, 1, 43))
	s.Run()
	r.DetachSwitch("x")
	if _, ok := h2.Result(); ok {
		t.Error("cancelled watch resolved")
	}
}

// TestTimeoutZeroEqualsBarriers: TechTimeout with delay 0 behaves like
// the barrier baseline (shared implementation sanity).
func TestTimeoutZeroEqualsBarriers(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechBarriers}, switchsim.ProfileCorrect())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 10, 2)
	tb.sim.RunFor(3 * time.Second)
	// On a CORRECT switch, even plain barrier acks are never early.
	checkNeverEarly(t, tb, "s2", xids)
}
