package core

import (
	"context"
	"sync"
	"time"
)

// AckResult is the typed resolution of one rule modification: what a
// RUM-aware caller gets instead of hand-parsing ErrTypeRUMAck errors.
type AckResult struct {
	// Switch and XID identify the modification.
	Switch string
	XID    uint32
	// Outcome is the typed result (installed / removed / fallback /
	// failed).
	Outcome Outcome
	// Code is the wire-level ack code (zero for OutcomeFailed).
	Code uint16
	// IssuedAt and ConfirmedAt bracket the update on the RUM clock.
	IssuedAt    time.Duration
	ConfirmedAt time.Duration
	// Latency is the activation latency RUM observed for the rule.
	Latency time.Duration
	// Err carries the typed failure cause when Outcome is OutcomeFailed:
	// ErrChannelLost, ErrSwitchRestarted, or ErrSwitchRejected (nil for
	// positive outcomes). Match with errors.Is.
	Err error
}

// UpdateHandle is an awaitable future for one FlowMod's acknowledgment.
// Obtain it from RUM.Watch before sending the FlowMod.
type UpdateHandle struct {
	r    *RUM
	sw   string
	xid  uint32
	done chan struct{}

	// nextWatch chains handles watching the same xid on one shard
	// (guarded by the shard lock; see shard.watch).
	nextWatch *UpdateHandle

	// cancelFn, when set on a handle with no shard registration (r ==
	// nil), lets the owning routing front release its own bookkeeping on
	// Cancel (e.g. a cluster's handoff-grace parking slot).
	cancelFn func(*UpdateHandle)

	mu        sync.Mutex
	res       AckResult
	resolved  bool
	cancelled bool
}

// Switch returns the watched switch name.
func (h *UpdateHandle) Switch() string { return h.sw }

// XID returns the watched transaction id.
func (h *UpdateHandle) XID() uint32 { return h.xid }

// Done returns a channel closed when the acknowledgment arrives. Use it
// in select loops or with simulated clocks, where blocking in AwaitAck
// would stall the goroutine that must drive the simulation.
func (h *UpdateHandle) Done() <-chan struct{} { return h.done }

// Result returns the acknowledgment if it has arrived.
func (h *UpdateHandle) Result() (AckResult, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.resolved
}

// AwaitAck blocks until the acknowledgment arrives or ctx is done. Under
// a wall clock (TCP deployments) it is safe to block any goroutine; under
// a simulated clock, drive the simulation first and AwaitAck returns the
// already-resolved result immediately.
func (h *UpdateHandle) AwaitAck(ctx context.Context) (AckResult, error) {
	select {
	case <-h.done:
		res, _ := h.Result()
		return res, nil
	default:
	}
	select {
	case <-h.done:
		res, _ := h.Result()
		return res, nil
	case <-ctx.Done():
		return AckResult{}, ctx.Err()
	}
}

// Cancel abandons the watch, releasing the registration for a
// modification that will never be sent (or whose result no longer
// matters). An unresolved handle never resolves after Cancel returns — a
// confirmation racing the cancellation is discarded; a handle that had
// already resolved stays resolved.
func (h *UpdateHandle) Cancel() {
	if h.r != nil {
		h.r.unwatch(h)
	} else if h.cancelFn != nil {
		h.cancelFn(h)
	}
	h.mu.Lock()
	if !h.resolved {
		h.cancelled = true
	}
	h.mu.Unlock()
}

func (h *UpdateHandle) resolve(res AckResult) {
	h.mu.Lock()
	if h.resolved || h.cancelled {
		h.mu.Unlock()
		return
	}
	h.res = res
	h.resolved = true
	h.mu.Unlock()
	close(h.done)
}

// FailedHandle returns an already-resolved handle carrying a failed
// AckResult with the given cause, stamped at now on the caller's clock.
// Routing fronts (e.g. a cluster of RUM instances) use it to answer a
// Watch for a switch no live proxy currently serves: registering a real
// watcher there could only wedge, while an immediate typed failure tells
// the caller to repair and re-issue — the same contract
// DetachSwitchCause applies to watchers it fails.
func FailedHandle(now time.Duration, sw string, xid uint32, cause error) *UpdateHandle {
	h := &UpdateHandle{sw: sw, xid: xid, done: make(chan struct{})}
	h.res = AckResult{Switch: sw, XID: xid, Outcome: OutcomeFailed,
		IssuedAt: now, ConfirmedAt: now, Err: cause}
	h.resolved = true
	close(h.done)
	return h
}

// NextTaken pops the next handle of an intrusive chain returned by
// RUM.TakeWatchers, severing the link. Only the owner of a taken chain
// may call it: handles still registered on a shard chain belong to the
// shard lock.
func (h *UpdateHandle) NextTaken() *UpdateHandle {
	next := h.nextWatch
	h.nextWatch = nil
	return next
}

// Deliver resolves a handle from outside the ack layer. Routing fronts
// that own handles directly — a cluster rescuing a dead member's
// futures against replicated intents — use it to settle the future with
// a truthful result; like any resolution, the first one wins and a
// cancelled handle stays unresolved.
func (h *UpdateHandle) Deliver(res AckResult) { h.resolve(res) }

// NewRemoteHandle creates an unresolved handle owned by a routing front
// rather than registered on a shard: the front resolves it with Deliver
// (or re-homes it with RUM.Rebind once a member serves the switch).
// onCancel, when non-nil, is invoked if the caller Cancels the handle
// while it is still front-owned, so parking-slot bookkeeping can be
// released.
func NewRemoteHandle(sw string, xid uint32, onCancel func(*UpdateHandle)) *UpdateHandle {
	return &UpdateHandle{sw: sw, xid: xid, done: make(chan struct{}), cancelFn: onCancel}
}

// Watch returns an ack future for the FlowMod with the given transaction
// id on the named switch. Call it before sending the FlowMod: an update
// that resolved before Watch was registered is not replayed. Multiple
// handles may watch the same modification. Registrations live on the
// switch's shard, so watch traffic on one switch never contends with
// another's; watching a switch that is not attached yet is allowed (the
// shard outlives attach/detach cycles).
func (r *RUM) Watch(sw string, xid uint32) *UpdateHandle {
	h := &UpdateHandle{r: r, sw: sw, xid: xid, done: make(chan struct{})}
	r.shardFor(sw).watch(h)
	return h
}

// unwatch removes one handle's registration.
func (r *RUM) unwatch(h *UpdateHandle) {
	r.shardFor(h.sw).unwatch(h)
}

// resolveWatch delivers a result to every handle watching it.
func (r *RUM) resolveWatch(res AckResult) {
	r.shardFor(res.Switch).resolveWatch(res)
}
