package core

import "errors"

// The typed failure causes carried by AckResult.Err (and AckEvent.Err)
// when an update resolves as OutcomeFailed. They let callers of
// UpdateHandle.AwaitAck distinguish "the switch said no" from "the
// switch went away", and — for the recovery paths — whether the switch's
// FIB survived:
//
//   - ErrChannelLost: the control channel to the switch died (TCP reset,
//     fault-injected cut, proxy eviction). The switch itself may still
//     hold every previously installed rule; once it reconnects, only the
//     updates that were in flight are in doubt and must be re-issued.
//   - ErrSwitchRestarted: the switch crashed and came back with an empty
//     flow table. Every rule — confirmed or not — is gone; the controller
//     must replay the full intended state, not just the failed updates.
//   - ErrSwitchRejected: the switch answered the modification with an
//     OpenFlow error; the rule never reached the data plane.
//   - ErrOverloaded: the controller outran the switch — the per-switch
//     outbox was at its configured bound (Config.OutboxLimit) and the
//     overload policy shed the update (or a Block deadline expired)
//     before it ever reached the wire. The switch is healthy and its
//     FIB intact: back off and re-issue. See docs/OVERLOAD.md.
//
// Match with errors.Is: DetachSwitchCause wraps nothing, so the
// sentinels compare directly.
var (
	// ErrChannelLost reports that the switch's control channel was lost
	// while the update was in flight.
	ErrChannelLost = errors.New("rum: control channel lost")
	// ErrSwitchRestarted reports that the switch restarted and wiped its
	// FIB while the update was in flight.
	ErrSwitchRestarted = errors.New("rum: switch restarted, FIB state lost")
	// ErrSwitchRejected reports that the switch rejected the modification
	// with an OpenFlow error.
	ErrSwitchRejected = errors.New("rum: switch rejected the modification")
	// ErrOverloaded reports that the update was shed before reaching the
	// wire because the switch's outbox was at its configured bound. The
	// rule was never sent; the switch's state is untouched.
	ErrOverloaded = errors.New("rum: switch outbox overloaded, update shed")
)
