package core

import (
	"sync"
	"time"

	"rum/internal/of"
)

// The paper's five techniques (§3) plus the no-wait lower bound register
// themselves here; Config.Technique and Config.PerSwitch select them by
// these names.
func init() {
	RegisterStrategy(string(TechBarriers), func(Config) AckStrategy {
		return &barrierStrategy{name: string(TechBarriers)}
	})
	RegisterStrategy(string(TechTimeout), func(cfg Config) AckStrategy {
		return &barrierStrategy{name: string(TechTimeout), delay: cfg.Timeout, rate: cfg.TimeoutRate}
	})
	RegisterStrategy(string(TechAdaptive), func(Config) AckStrategy {
		return adaptiveStrategy{}
	})
	RegisterStrategy(string(TechSequential), func(Config) AckStrategy {
		return newSequentialStrategy()
	})
	RegisterStrategy(string(TechGeneral), func(Config) AckStrategy {
		return newGeneralStrategy()
	})
	RegisterStrategy(string(TechNoWait), func(Config) AckStrategy {
		return noWaitStrategy{}
	})
}

// noWaitStrategy confirms instantly: no guarantees, fastest possible
// updates — the evaluation's lower bound.
type noWaitStrategy struct{}

func (noWaitStrategy) Name() string { return string(TechNoWait) }

func (noWaitStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &noWaitSwitch{sc: sc}
}

type noWaitSwitch struct {
	BaseSwitchStrategy
	sc StrategyContext
}

func (t *noWaitSwitch) OnFlowMod(u *Update) { t.sc.Confirm(u, OutcomeInstalled) }

// minTimeoutHold floors the work-proportional timeout hold: below a
// millisecond a safety margin is indistinguishable from clock/timer
// granularity (wall clocks schedule at millisecond ticks) and adds no
// real conservatism.
const minTimeoutHold = time.Millisecond

// barrierStrategy implements TechBarriers (delay == 0) and TechTimeout
// (delay > 0): a RUM barrier follows the controller's FlowMods; the reply
// — plus the configured safety delay — confirms everything issued before
// it (§3.1). Barrier emission is burst-coalesced: OnFlowMod marks the
// switch dirty and schedules one emission off the dispatch path, so a
// burst of modifications shares a single barrier covering the newest
// sequence number (semantically identical — a later barrier's reply
// confirms a superset — but K-fold cheaper on the wire and in the
// switch's control queue). Unsharded mode keeps the historical
// one-barrier-per-FlowMod behavior.
//
// With rate > 0 (Config.TimeoutRate) the safety delay after a reply is
// work-proportional: outstanding/rate, clamped to delay. The fixed delay
// models the worst case for a full table; charging it to every reply is
// what put a flat 300 ms floor under the fat-tree workload's ack-latency
// tail, when a typical coalesced burst leaves only a handful of rules
// outstanding.
type barrierStrategy struct {
	name  string
	delay time.Duration
	rate  float64
}

func (s *barrierStrategy) Name() string { return s.name }

func (s *barrierStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	t := &barrierSwitch{sc: sc, delay: s.delay, rate: s.rate,
		retry: sc.Config().BarrierRetry, barriers: make(map[uint32]uint64)}
	t.emit = t.emitBarrier
	t.watch = t.watchdog
	return t
}

type barrierSwitch struct {
	BaseSwitchStrategy
	sc    StrategyContext
	delay time.Duration
	rate  float64
	retry time.Duration // Config.BarrierRetry (negative: net disabled)

	emit  func() // pre-bound emitBarrier: no closure allocation per burst
	watch func() // pre-bound watchdog: one allocation per switch, ever

	mu       sync.Mutex
	barriers map[uint32]uint64 // barrier xid → covered seq
	dirty    bool              // an emission is scheduled for maxSeq
	maxSeq   uint64
	watching bool   // the barrier-retry watchdog timer is armed
	watchCT  uint64 // watermark at the last watchdog observation
	detached bool
}

func (t *barrierSwitch) OnFlowMod(u *Update) {
	if t.sc.Config().Unsharded {
		br := of.AcquireBarrierRequest()
		xid := t.sc.NewXID()
		br.SetXID(xid)
		t.mu.Lock()
		if u.Seq() > t.maxSeq {
			t.maxSeq = u.Seq()
		}
		t.barriers[xid] = u.Seq()
		t.mu.Unlock()
		t.sc.SendToSwitch(br)
		t.ensureWatch()
		return
	}
	t.mu.Lock()
	if u.Seq() > t.maxSeq {
		t.maxSeq = u.Seq()
	}
	if t.dirty {
		t.mu.Unlock()
		return
	}
	t.dirty = true
	t.mu.Unlock()
	t.sc.Clock().After(0, t.emit)
}

// emitBarrier sends the one barrier covering every FlowMod observed since
// the last emission.
func (t *barrierSwitch) emitBarrier() {
	br := of.AcquireBarrierRequest()
	xid := t.sc.NewXID()
	br.SetXID(xid)
	t.mu.Lock()
	t.dirty = false
	t.barriers[xid] = t.maxSeq
	t.mu.Unlock()
	t.sc.SendToSwitch(br)
	t.ensureWatch()
}

// Detach implements SwitchDetacher: disarm the watchdog's re-arm loop and
// drop barrier bookkeeping (the replies can no longer arrive; the detach
// path resolves the covered futures).
func (t *barrierSwitch) Detach() {
	t.mu.Lock()
	t.detached = true
	clear(t.barriers)
	t.mu.Unlock()
}

// ensureWatch arms the barrier-retry watchdog while confirmations are
// outstanding. The callback is pre-bound, so steady-state arming costs a
// timer insertion and no allocation — the zero-alloc ack path gate
// covers this code.
func (t *barrierSwitch) ensureWatch() {
	if t.retry < 0 {
		return
	}
	t.mu.Lock()
	if t.watching || t.detached {
		t.mu.Unlock()
		return
	}
	t.watching = true
	t.watchCT = t.sc.ConfirmedThrough()
	t.mu.Unlock()
	t.sc.Clock().After(t.retry, t.watch)
}

// watchdog is the liveness net for lost barriers. It is progress-based:
// a retry fires only when covered work is outstanding AND the confirmed
// watermark has not moved for a full retry interval — on a healthy
// channel under sustained load the watermark always advances between
// ticks, so the net stays silent; a stalled watermark means the barrier
// (or its reply) was lost, and a fresh barrier is emitted. A later
// barrier's reply confirms a superset, so a spurious retry is harmless
// while a missing one wedges every covered future. Confirmed
// bookkeeping is swept on the way through.
func (t *barrierSwitch) watchdog() {
	ct := t.sc.ConfirmedThrough()
	t.mu.Lock()
	if t.detached {
		t.watching = false
		t.mu.Unlock()
		return
	}
	for xid, seq := range t.barriers {
		if seq <= ct {
			delete(t.barriers, xid)
		}
	}
	if t.maxSeq <= ct {
		t.watching = false
		t.mu.Unlock()
		return
	}
	stalled := ct == t.watchCT
	t.watchCT = ct
	if !stalled {
		t.mu.Unlock()
		t.sc.Clock().After(t.retry, t.watch)
		return
	}
	xid := t.sc.NewXID()
	t.barriers[xid] = t.maxSeq
	t.mu.Unlock()
	br := of.AcquireBarrierRequest()
	br.SetXID(xid)
	t.sc.SendToSwitch(br)
	t.sc.Clock().After(t.retry, t.watch)
}

func (t *barrierSwitch) OnBarrierReply(rep *of.BarrierReply) bool {
	t.mu.Lock()
	seq, mine := t.barriers[rep.GetXID()]
	if mine {
		delete(t.barriers, rep.GetXID())
	}
	t.mu.Unlock()
	if !mine {
		return false
	}
	hold := t.delay
	if hold > 0 && t.rate > 0 {
		// Work-proportional bound: the reply proves the switch's control
		// plane reached the barrier, so what can still be missing from
		// the data plane is at most the unconfirmed backlog. Charging
		// backlog/rate keeps the per-rule conservatism of the fixed
		// worst case without taxing small bursts the full-table delay.
		hold = 0
		if ct := t.sc.ConfirmedThrough(); seq > ct {
			hold = time.Duration(float64(seq-ct) / t.rate * float64(time.Second))
		}
		if hold < minTimeoutHold {
			hold = minTimeoutHold
		}
		if hold > t.delay {
			hold = t.delay
		}
	}
	if hold == 0 {
		t.sc.ConfirmUpTo(seq, OutcomeInstalled)
	} else {
		t.sc.Clock().After(hold, func() {
			t.sc.ConfirmUpTo(seq, OutcomeInstalled)
		})
	}
	return true
}

// adaptiveStrategy implements TechAdaptive: a virtual-time model of the
// switch's installation pipeline. Each forwarded FlowMod advances the
// modeled completion time by 1/AssumedRate; with a modeled sync period the
// estimated activation rounds up to the next sync boundary. The technique
// is exactly as safe as its model — overestimate the rate and
// acknowledgments arrive before the data plane does (the paper's
// "adaptive 250" failure mode).
type adaptiveStrategy struct{}

func (adaptiveStrategy) Name() string { return string(TechAdaptive) }

func (adaptiveStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &adaptiveSwitch{sc: sc}
}

type adaptiveSwitch struct {
	BaseSwitchStrategy
	sc StrategyContext

	mu sync.Mutex
	vt time.Duration // modeled control-plane completion time
}

func (t *adaptiveSwitch) OnFlowMod(u *Update) {
	cfg := t.sc.Config()
	now := t.sc.Clock().Now()
	perMod := time.Duration(float64(time.Second) / cfg.AssumedRate)
	t.mu.Lock()
	if t.vt < now {
		t.vt = now
	}
	t.vt += perMod
	est := t.vt
	t.mu.Unlock()
	if s := cfg.ModelSyncPeriod; s > 0 {
		est = ((est+s-1)/s)*s + cfg.ModelSyncSlack
	}
	// Modeled completion times are monotonic in issue order, so the
	// deadline confirms the whole prefix by seq — the timer captures no
	// Update pointer and needs no reference on the pooled struct.
	seq := u.Seq()
	t.sc.Clock().After(est-now, func() { t.sc.ConfirmUpTo(seq, OutcomeInstalled) })
}
