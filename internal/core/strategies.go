package core

import (
	"sync"
	"time"

	"rum/internal/of"
)

// The paper's five techniques (§3) plus the no-wait lower bound register
// themselves here; Config.Technique and Config.PerSwitch select them by
// these names.
func init() {
	RegisterStrategy(string(TechBarriers), func(Config) AckStrategy {
		return &barrierStrategy{name: string(TechBarriers)}
	})
	RegisterStrategy(string(TechTimeout), func(cfg Config) AckStrategy {
		return &barrierStrategy{name: string(TechTimeout), delay: cfg.Timeout, rate: cfg.TimeoutRate}
	})
	RegisterStrategy(string(TechAdaptive), func(Config) AckStrategy {
		return adaptiveStrategy{}
	})
	RegisterStrategy(string(TechSequential), func(Config) AckStrategy {
		return newSequentialStrategy()
	})
	RegisterStrategy(string(TechGeneral), func(Config) AckStrategy {
		return newGeneralStrategy()
	})
	RegisterStrategy(string(TechNoWait), func(Config) AckStrategy {
		return noWaitStrategy{}
	})
}

// noWaitStrategy confirms instantly: no guarantees, fastest possible
// updates — the evaluation's lower bound.
type noWaitStrategy struct{}

func (noWaitStrategy) Name() string { return string(TechNoWait) }

func (noWaitStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &noWaitSwitch{sc: sc}
}

type noWaitSwitch struct {
	BaseSwitchStrategy
	sc StrategyContext
}

func (t *noWaitSwitch) OnFlowMod(u *Update) { t.sc.Confirm(u, OutcomeInstalled) }

// minTimeoutHold floors the work-proportional timeout hold: below a
// millisecond a safety margin is indistinguishable from clock/timer
// granularity (wall clocks schedule at millisecond ticks) and adds no
// real conservatism.
const minTimeoutHold = time.Millisecond

// barrierStrategy implements TechBarriers (delay == 0) and TechTimeout
// (delay > 0): a RUM barrier follows the controller's FlowMods; the reply
// — plus the configured safety delay — confirms everything issued before
// it (§3.1). Barrier emission is burst-coalesced: OnFlowMod marks the
// switch dirty and schedules one emission off the dispatch path, so a
// burst of modifications shares a single barrier covering the newest
// sequence number (semantically identical — a later barrier's reply
// confirms a superset — but K-fold cheaper on the wire and in the
// switch's control queue). Unsharded mode keeps the historical
// one-barrier-per-FlowMod behavior.
//
// With rate > 0 (Config.TimeoutRate) the safety delay after a reply is
// work-proportional: outstanding/rate, clamped to delay. The fixed delay
// models the worst case for a full table; charging it to every reply is
// what put a flat 300 ms floor under the fat-tree workload's ack-latency
// tail, when a typical coalesced burst leaves only a handful of rules
// outstanding.
type barrierStrategy struct {
	name  string
	delay time.Duration
	rate  float64
}

func (s *barrierStrategy) Name() string { return s.name }

func (s *barrierStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	t := &barrierSwitch{sc: sc, delay: s.delay, rate: s.rate, barriers: make(map[uint32]uint64)}
	t.emit = t.emitBarrier
	return t
}

type barrierSwitch struct {
	BaseSwitchStrategy
	sc    StrategyContext
	delay time.Duration
	rate  float64

	emit func() // pre-bound emitBarrier: no closure allocation per burst

	mu       sync.Mutex
	barriers map[uint32]uint64 // barrier xid → covered seq
	dirty    bool              // an emission is scheduled for maxSeq
	maxSeq   uint64
}

func (t *barrierSwitch) OnFlowMod(u *Update) {
	if t.sc.Config().Unsharded {
		br := of.AcquireBarrierRequest()
		xid := t.sc.NewXID()
		br.SetXID(xid)
		t.mu.Lock()
		t.barriers[xid] = u.Seq()
		t.mu.Unlock()
		t.sc.SendToSwitch(br)
		return
	}
	t.mu.Lock()
	if u.Seq() > t.maxSeq {
		t.maxSeq = u.Seq()
	}
	if t.dirty {
		t.mu.Unlock()
		return
	}
	t.dirty = true
	t.mu.Unlock()
	t.sc.Clock().After(0, t.emit)
}

// emitBarrier sends the one barrier covering every FlowMod observed since
// the last emission.
func (t *barrierSwitch) emitBarrier() {
	br := of.AcquireBarrierRequest()
	xid := t.sc.NewXID()
	br.SetXID(xid)
	t.mu.Lock()
	t.dirty = false
	t.barriers[xid] = t.maxSeq
	t.mu.Unlock()
	t.sc.SendToSwitch(br)
}

func (t *barrierSwitch) OnBarrierReply(rep *of.BarrierReply) bool {
	t.mu.Lock()
	seq, mine := t.barriers[rep.GetXID()]
	if mine {
		delete(t.barriers, rep.GetXID())
	}
	t.mu.Unlock()
	if !mine {
		return false
	}
	hold := t.delay
	if hold > 0 && t.rate > 0 {
		// Work-proportional bound: the reply proves the switch's control
		// plane reached the barrier, so what can still be missing from
		// the data plane is at most the unconfirmed backlog. Charging
		// backlog/rate keeps the per-rule conservatism of the fixed
		// worst case without taxing small bursts the full-table delay.
		hold = 0
		if ct := t.sc.ConfirmedThrough(); seq > ct {
			hold = time.Duration(float64(seq-ct) / t.rate * float64(time.Second))
		}
		if hold < minTimeoutHold {
			hold = minTimeoutHold
		}
		if hold > t.delay {
			hold = t.delay
		}
	}
	if hold == 0 {
		t.sc.ConfirmUpTo(seq, OutcomeInstalled)
	} else {
		t.sc.Clock().After(hold, func() {
			t.sc.ConfirmUpTo(seq, OutcomeInstalled)
		})
	}
	return true
}

// adaptiveStrategy implements TechAdaptive: a virtual-time model of the
// switch's installation pipeline. Each forwarded FlowMod advances the
// modeled completion time by 1/AssumedRate; with a modeled sync period the
// estimated activation rounds up to the next sync boundary. The technique
// is exactly as safe as its model — overestimate the rate and
// acknowledgments arrive before the data plane does (the paper's
// "adaptive 250" failure mode).
type adaptiveStrategy struct{}

func (adaptiveStrategy) Name() string { return string(TechAdaptive) }

func (adaptiveStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &adaptiveSwitch{sc: sc}
}

type adaptiveSwitch struct {
	BaseSwitchStrategy
	sc StrategyContext

	mu sync.Mutex
	vt time.Duration // modeled control-plane completion time
}

func (t *adaptiveSwitch) OnFlowMod(u *Update) {
	cfg := t.sc.Config()
	now := t.sc.Clock().Now()
	perMod := time.Duration(float64(time.Second) / cfg.AssumedRate)
	t.mu.Lock()
	if t.vt < now {
		t.vt = now
	}
	t.vt += perMod
	est := t.vt
	t.mu.Unlock()
	if s := cfg.ModelSyncPeriod; s > 0 {
		est = ((est+s-1)/s)*s + cfg.ModelSyncSlack
	}
	// Modeled completion times are monotonic in issue order, so the
	// deadline confirms the whole prefix by seq — the timer captures no
	// Update pointer and needs no reference on the pooled struct.
	seq := u.Seq()
	t.sc.Clock().After(est-now, func() { t.sc.ConfirmUpTo(seq, OutcomeInstalled) })
}
