// Package core implements RUM (Rule Update Monitoring): a transparent
// layer between an SDN controller and its OpenFlow switches that
// acknowledges a rule modification only once the rule is visible in the
// data plane — never sooner. The paper's five acknowledgment techniques
// (§3) are pluggable AckStrategy implementations selected through a
// registry; fine-grained per-rule acks are delivered as reserved-code
// OpenFlow errors (§4) and as typed, awaitable AckResults; a reliable
// barrier layer (§2) restores barrier semantics on switches that answer
// early or reorder.
//
// The hot path is sharded per switch, with O(1) seq-ring acknowledgment
// bookkeeping and pooled, reference-counted updates; failure and
// recovery are first-class — a lost control channel or a switch restart
// detaches the session and resolves every in-flight future with a typed
// cause (ErrChannelLost, ErrSwitchRestarted), and each strategy carries
// a liveness net so lossy channels cannot wedge confirmations. The
// canonical long-form references are docs/ARCHITECTURE.md (stack,
// FlowMod lifecycle, concurrency model, ownership contracts) and
// docs/STRATEGIES.md (per-technique guarantees and fault behavior).
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rum/internal/aggregate"
	"rum/internal/hsa"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/proxy"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Technique names a registered acknowledgment strategy. The zero value
// selects the barrier baseline. User strategies registered with
// RegisterStrategy are selectable by their registration name.
type Technique string

// The acknowledgment techniques of §3 of the paper, pre-registered in
// the strategy registry.
const (
	// TechBarriers trusts the switch's barrier replies (the broken
	// baseline of §3.1).
	TechBarriers Technique = "barriers"
	// TechTimeout waits a fixed worst-case delay after each barrier reply.
	TechTimeout Technique = "timeout"
	// TechAdaptive estimates activation from a switch performance model
	// (issue rate + sync period).
	TechAdaptive Technique = "adaptive"
	// TechSequential confirms batches with a versioned probe rule
	// (§3.2.1); valid for switches that do not reorder across barriers.
	TechSequential Technique = "sequential"
	// TechGeneral probes every modification individually (§3.2.2); valid
	// even for reordering switches.
	TechGeneral Technique = "general"
	// TechNoWait acknowledges immediately on forwarding — the
	// no-guarantees lower bound the evaluation compares against.
	TechNoWait Technique = "no-wait"
)

func (t Technique) String() string {
	if t == "" {
		return string(TechBarriers)
	}
	return string(t)
}

// Config parameterizes a RUM instance.
type Config struct {
	Clock sim.Clock

	// Technique names the registered strategy used for switches without a
	// more specific selection. Empty selects TechBarriers.
	Technique Technique

	// Strategy, when non-nil, supplies the default strategy directly —
	// user-defined strategies need not be registered. It overrides
	// Technique, and must not be shared across RUM instances.
	Strategy AckStrategy

	// PerSwitch overrides the strategy for individual switches by
	// registered name, so heterogeneous deployments can mix techniques
	// (the adaptive technique is explicitly switch-model-specific).
	// Switches using the same name share one AckStrategy deployment.
	PerSwitch map[string]Technique

	// RUMAware controllers receive per-rule positive acknowledgments as
	// OpenFlow errors with type of.ErrTypeRUMAck.
	RUMAware bool

	// Timeout is the fixed delay of TechTimeout and the control-plane
	// fallback of TechGeneral (default 300 ms — the paper's bound for a
	// 300-rule table).
	Timeout time.Duration

	// TimeoutRate, when > 0, makes TechTimeout's post-barrier safety
	// delay proportional to the outstanding work instead of always
	// charging the full worst case: a barrier reply covering n
	// still-unconfirmed modifications waits n/TimeoutRate seconds
	// (clamped to Timeout, floored at the timer-wheel tick). The paper's
	// fixed 300 ms bound is the worst case for a full 300-rule table —
	// an implied floor of 1000 installs/sec; TimeoutRate applies that
	// same per-rule conservatism to the actual queue depth, so a 25-rule
	// burst is held 25 ms, not 300. It is what keeps the fat-tree churn
	// workload's ack-latency tail flat. Zero keeps the paper's fixed
	// delay.
	TimeoutRate float64

	// BarrierRetry is the liveness net of the barrier-reply techniques
	// (TechBarriers, TechTimeout): when covered work is outstanding and
	// the confirmed watermark has not advanced for a full interval, the
	// strategy re-emits a fresh barrier covering the same work instead
	// of waiting forever — on a lossy control channel a dropped
	// BarrierRequest or BarrierReply would otherwise wedge every
	// covered future. The progress check keeps the net silent on a
	// healthy channel, even under sustained load (default 500 ms, far
	// above any normal inter-confirmation gap). Negative disables it,
	// restoring the trust-one-barrier behavior.
	BarrierRetry time.Duration

	// AssumedRate is TechAdaptive's modeled switch installation rate in
	// rules/second (the paper evaluates 200 and 250).
	AssumedRate float64
	// ModelSyncPeriod is TechAdaptive's modeled data-plane sync period;
	// estimated activations round up to its multiples. Zero models a
	// switch without batched syncs.
	ModelSyncPeriod time.Duration
	// ModelSyncSlack pads the modeled activation beyond the sync boundary
	// (hardware stalls briefly while pushing rules). Defaults to 30 ms
	// when ModelSyncPeriod is set.
	ModelSyncSlack time.Duration

	// ProbeEvery is TechSequential's batch size: one probe-rule update per
	// N real modifications (the evaluation uses 10).
	ProbeEvery int
	// ProbeFlush bounds how long a partial batch may wait before being
	// probed anyway.
	ProbeFlush time.Duration
	// ProbeResend is the probe packet (re)injection period for
	// TechSequential.
	ProbeResend time.Duration

	// ProbeInterval is TechGeneral's probing tick (the evaluation probes
	// every 10 ms).
	ProbeInterval time.Duration
	// ProbeBatch bounds how many of the oldest unconfirmed modifications
	// are probed per tick (the evaluation uses 30).
	ProbeBatch int
	// QuietRounds is how many silent probe rounds confirm an
	// absence-signalled change (rule deletions, drop-rule installs).
	QuietRounds int

	// BarrierLayer enables the reliable barrier layer: controller barriers
	// are absorbed and answered only when every prior modification is
	// confirmed.
	BarrierLayer bool
	// BufferForReorder additionally buffers all commands that follow an
	// unconfirmed barrier before releasing them to the switch — required
	// for switches that reorder across barriers (§2).
	BufferForReorder bool

	// OutboxLimit bounds each per-switch shard outbox: the number of
	// switch-bound messages queued awaiting flush. Zero keeps the
	// historical unbounded behavior. When set, tracked controller
	// FlowMods that arrive at a full outbox get the Overload policy's
	// treatment; RUM-internal messages (barriers, probes) always enqueue —
	// barrier coalescing already bounds them. The bound is ignored in
	// Unsharded mode (the legacy baseline has no outbox).
	OutboxLimit int
	// Overload selects what happens to a tracked FlowMod arriving at a
	// full outbox: OverloadBlock (default — the dispatch goroutine waits
	// up to OverloadDeadline for the outbox to drain, propagating
	// backpressure into the controller's channel), OverloadShed (the
	// update's future fails immediately with ErrOverloaded), or
	// OverloadDegrade (flush-latency EWMA slow-switch detection widens
	// the batch coalescing window; at the hard limit it blocks like
	// OverloadBlock). Under a simulated clock Block cannot wait — the
	// event loop is single-threaded — so it degrades to immediate
	// deadline expiry (a typed ErrOverloaded, never a wedge). See
	// docs/OVERLOAD.md for the full contract.
	Overload OverloadPolicy
	// OverloadDeadline bounds how long OverloadBlock (and Degrade at the
	// limit) waits for outbox space before failing the update with
	// ErrOverloaded (default 100ms).
	OverloadDeadline time.Duration
	// DegradeLatency is OverloadDegrade's slow-switch threshold: when the
	// EWMA of outbox drain latency exceeds it, the shard widens its
	// coalescing window to DegradeHold (default 5ms).
	DegradeLatency time.Duration
	// DegradeHold is the widened flush delay applied to a degraded
	// switch, and the retry interval after a transport applied
	// backpressure mid-batch (default 2ms).
	DegradeHold time.Duration

	// Aggregate enables incremental FIB aggregation (internal/aggregate):
	// controller FlowMods mutate a per-switch logical table whose
	// compressed physical image is what actually reaches the switch.
	// Each tracked physical install carries the set of logical futures it
	// covers; its confirmation fans in to resolve them all (per-future
	// issue timestamps preserved), and a physical failure fails every
	// covered future with the physical op's typed cause. Because only
	// physical ops occupy the ack layer's seq ring, work-proportional
	// bounds (TimeoutRate) and barrier intervals count physical installs —
	// a compressed burst holds barriers and timeout cohorts for fewer
	// rules than the controller issued. Logical staging coalesces one
	// dispatch burst per clock instant under a simulated clock; under a
	// wall clock batches degrade toward per-message without affecting
	// correctness. See docs/AGGREGATION.md.
	Aggregate bool

	// Unsharded reverts the update/ack hot path to its pre-sharding
	// execution mode: every switch's bookkeeping serializes behind one
	// RUM-wide mutex and switch-bound messages are sent one at a time
	// with the lock held — no per-switch shards, no batched injection, no
	// barrier coalescing. It exists as the baseline the shard-contention
	// regression benchmarks compare against; production deployments
	// should leave it false.
	Unsharded bool
}

// Defaults fills unset fields with the paper's evaluation parameters.
func (c Config) Defaults() Config {
	if c.Technique == "" {
		c.Technique = TechBarriers
	}
	if c.Timeout == 0 {
		c.Timeout = 300 * time.Millisecond
	}
	if c.BarrierRetry == 0 {
		c.BarrierRetry = 500 * time.Millisecond
	}
	if c.AssumedRate == 0 {
		c.AssumedRate = 200
	}
	if c.ModelSyncPeriod > 0 && c.ModelSyncSlack == 0 {
		c.ModelSyncSlack = 30 * time.Millisecond
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 10
	}
	if c.ProbeFlush == 0 {
		c.ProbeFlush = 50 * time.Millisecond
	}
	if c.ProbeResend == 0 {
		c.ProbeResend = 5 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 10 * time.Millisecond
	}
	if c.ProbeBatch == 0 {
		c.ProbeBatch = 30
	}
	if c.QuietRounds == 0 {
		c.QuietRounds = 3
	}
	if c.OverloadDeadline == 0 {
		c.OverloadDeadline = 100 * time.Millisecond
	}
	if c.DegradeLatency == 0 {
		c.DegradeLatency = 5 * time.Millisecond
	}
	if c.DegradeHold == 0 {
		c.DegradeHold = 2 * time.Millisecond
	}
	return c
}

// OverloadPolicy is the shared overload policy type (the transport's
// writer bound uses the same one); re-exported so core callers need not
// import transport for the constants.
type OverloadPolicy = transport.OverloadPolicy

// The overload policies, re-exported from transport.
const (
	OverloadBlock   = transport.OverloadBlock
	OverloadShed    = transport.OverloadShed
	OverloadDegrade = transport.OverloadDegrade
)

// TopoLink is one inter-switch link RUM knows about.
type TopoLink struct {
	A     string
	APort uint16
	B     string
	BPort uint16
}

// Topology is RUM's map of the switch-to-switch fabric: which port of
// which switch reaches which neighbor. Host-facing ports are simply
// absent. The probing techniques use it to pick injection (A) and
// receiving (C) switches around each probed switch (B).
type Topology struct {
	links []TopoLink
}

// NewTopology builds a topology from a link list.
func NewTopology(links []TopoLink) *Topology {
	return &Topology{links: append([]TopoLink(nil), links...)}
}

// Neighbors returns the neighbor switches of sw as (localPort → neighbor).
func (t *Topology) Neighbors(sw string) map[uint16]string {
	out := make(map[uint16]string)
	for _, l := range t.links {
		if l.A == sw {
			out[l.APort] = l.B
		}
		if l.B == sw {
			out[l.BPort] = l.A
		}
	}
	return out
}

// PortToward returns sw's port that reaches neighbor nb (ok=false when not
// adjacent).
func (t *Topology) PortToward(sw, nb string) (uint16, bool) {
	for _, l := range t.links {
		if l.A == sw && l.B == nb {
			return l.APort, true
		}
		if l.B == sw && l.A == nb {
			return l.BPort, true
		}
	}
	return 0, false
}

// Switches lists all switch names in deterministic order.
func (t *Topology) Switches() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range t.links {
		for _, n := range []string{l.A, l.B} {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Probe header-space constants. The paper's prototype reserves ToS values
// for probing (§4: "we rely on the ToS field... only 64 ToS values, we
// need to periodically recycle them"). OpenFlow 1.0 matches nw_tos exactly
// (no masks), so the two probe header fields H1/H2 map to:
//
//   - H1 — a reserved probe-sink destination address (ProbeSinkIP): the
//     sequential technique's preprobe/postprobe discriminator is the ToS
//     value, and the sink address keeps probe traffic out of every normal
//     rule.
//   - H2 — the ToS byte, carrying either the sequential probe-rule
//     version or the general technique's per-switch probe-catch value S_i.
var (
	// ProbeSinkIP is the reserved destination of sequential probe packets.
	ProbeSinkIP = netip.MustParseAddr("10.255.255.254")
	// ProbeSrcIP is the source address stamped on RUM probe packets.
	ProbeSrcIP = netip.MustParseAddr("10.255.255.253")
)

const (
	// TosPreprobe marks a sequential probe packet that has not yet passed
	// the probed switch's probe rule.
	TosPreprobe uint8 = 0xfc
	// Sequential probe-rule versions cycle over DSCP-style values
	// 0x04..0xf8 (62 values, excluding 0 and TosPreprobe).
	tosVersionBase  uint8 = 0x04
	tosVersionCount       = 61

	// General probe-catch values S_i = tosCatchBase + 4*color.
	tosCatchBase uint8 = 0x08

	// PrioCatch/PrioProbe are the priorities of RUM's infrastructure
	// rules; user rules must stay below PrioCatch.
	PrioCatch uint16 = 65000
	PrioProbe uint16 = 65100
)

// rumXIDBase marks transaction ids RUM generates for its own messages;
// replies carrying them are consumed by RUM and never reach the
// controller. Controllers must allocate xids below this base. The range
// itself is defined next to the wire protocol (of.RUMXIDBase) so
// switch-side code can recognize RUM traffic without importing core.
const rumXIDBase = of.RUMXIDBase

// IsRUMXID reports whether an xid belongs to RUM's reserved range.
func IsRUMXID(x uint32) bool { return of.IsRUMXID(x) }

// RUM is one deployment of the monitoring layer across a set of switches.
//
// Concurrency: the hot path is sharded per switch. Each switch's pending
// updates, ack futures, and outbound message queue live on its shard (see
// shard), guarded by that shard's mutex alone; cross-switch state is
// lock-free (atomic xid allocation and counters) or read-mostly (the
// subscriber list behind an RWMutex). The RUM-level mutex mu guards only
// the cold paths — attach, detach, bootstrap — so no global lock is ever
// held across strategy code or message sends. Config.Unsharded collapses
// all shard locks onto legacyMu, restoring the pre-sharding behavior for
// baseline benchmarks.
type RUM struct {
	cfg  Config
	topo *Topology

	defaultStrat AckStrategy
	strats       map[Technique]AckStrategy // named deployments incl. overrides
	deployments  []AckStrategy             // distinct deployments, probe-routing order
	colors       map[string]int            // general probing: switch → color index (read-only after New)

	mu       sync.Mutex // cold path: attach/detach/bootstrap serialization
	legacyMu sync.Mutex // Unsharded mode: the pre-shard RUM-wide lock
	shards   sync.Map   // switch name → *shard; entries persist across reattach

	nextXID atomic.Uint32

	subsMu sync.RWMutex
	subs   []*Subscription

	// Overload gates, resolved once in New so the hot path pays a single
	// bool load when the bound is off. degradeOn implies overloadOn.
	overloadOn bool
	degradeOn  bool

	// journal is the intent-replication sink (SetJournalSink); sessions
	// latch its presence at attach.
	journal JournalSink

	// stats
	acksSent   atomic.Uint64
	probesSent atomic.Uint64
	fallbacks  atomic.Uint64
	sheds      atomic.Uint64
}

// New creates a RUM instance, resolving the configured default and
// per-switch strategies against the registry. Switches are attached with
// AttachSwitch; probe infrastructure is installed with Bootstrap.
func New(cfg Config, topo *Topology) (*RUM, error) {
	cfg = cfg.Defaults()
	r := &RUM{
		cfg:    cfg,
		topo:   topo,
		strats: make(map[Technique]AckStrategy),
	}
	r.nextXID.Store(rumXIDBase)
	r.overloadOn = cfg.OutboxLimit > 0 && !cfg.Unsharded
	r.degradeOn = r.overloadOn && cfg.Overload == OverloadDegrade
	if cfg.Strategy != nil {
		r.defaultStrat = cfg.Strategy
		r.cfg.Technique = Technique(cfg.Strategy.Name())
		// A PerSwitch entry naming this strategy must resolve to the same
		// deployment, not a fresh registry instance with disjoint state.
		r.strats[r.cfg.Technique] = cfg.Strategy
	} else {
		s, err := newRegisteredStrategy(cfg.Technique, r.cfg)
		if err != nil {
			return nil, err
		}
		r.defaultStrat = s
		r.strats[cfg.Technique] = s
	}
	r.deployments = append(r.deployments, r.defaultStrat)
	overrides := make([]string, 0, len(cfg.PerSwitch))
	for sw := range cfg.PerSwitch {
		overrides = append(overrides, sw)
	}
	sort.Strings(overrides)
	for _, sw := range overrides {
		name := cfg.PerSwitch[sw]
		if name == "" {
			return nil, fmt.Errorf("core: PerSwitch[%q] names no strategy", sw)
		}
		if _, done := r.strats[name]; done {
			continue
		}
		s, err := newRegisteredStrategy(name, r.cfg)
		if err != nil {
			return nil, fmt.Errorf("core: PerSwitch[%q]: %w", sw, err)
		}
		r.strats[name] = s
		r.deployments = append(r.deployments, s)
	}

	adj := make(map[uint64][]uint64)
	names := topo.Switches()
	idx := make(map[string]uint64, len(names))
	for i, n := range names {
		idx[n] = uint64(i)
		adj[uint64(i)] = nil
	}
	for _, l := range topo.links {
		adj[idx[l.A]] = append(adj[idx[l.A]], idx[l.B])
	}
	colors := hsa.ColorGraph(adj)
	r.colors = make(map[string]int, len(names))
	for n, i := range idx {
		r.colors[n] = colors[i]
	}
	return r, nil
}

// Config returns the effective (defaulted) configuration.
func (r *RUM) Config() Config { return r.cfg }

// CatchTos returns the general-probing probe-catch ToS value S for a
// switch (derived from its graph color, §3.2.2's value-reduction trick).
func (r *RUM) CatchTos(sw string) uint8 {
	return tosCatchBase + 4*uint8(r.colors[sw])
}

// newXID allocates a RUM-internal transaction id, lock-free on the
// sharded path (xids are the one piece of cross-switch hot-path state
// left, so they must not funnel through a mutex).
func (r *RUM) newXID() uint32 {
	if r.cfg.Unsharded {
		r.legacyMu.Lock()
		defer r.legacyMu.Unlock()
		x := r.nextXID.Load() + 1
		if x < rumXIDBase {
			x = rumXIDBase + 1
		}
		r.nextXID.Store(x)
		return x
	}
	for {
		x := r.nextXID.Add(1)
		if x > rumXIDBase {
			return x
		}
		// Wrapped around uint32 space: park the counter back at the base
		// and retry (losers of the CAS retry on the fresh value).
		r.nextXID.CompareAndSwap(x, rumXIDBase)
	}
}

// shardFor returns (creating on first use) the named switch's shard.
func (r *RUM) shardFor(name string) *shard {
	if v, ok := r.shards.Load(name); ok {
		return v.(*shard)
	}
	v, _ := r.shards.LoadOrStore(name, &shard{r: r, name: name})
	return v.(*shard)
}

// strategyFor resolves the deployment serving one switch.
func (r *RUM) strategyFor(name string) AckStrategy {
	if t, ok := r.cfg.PerSwitch[name]; ok {
		if s, ok := r.strats[t]; ok {
			return s
		}
	}
	return r.defaultStrat
}

// AttachSwitch splices RUM between a switch-side conn and a
// controller-side conn, instantiating the switch's configured ack
// strategy. The layer chain is
// controller → [barrier layer] → ack layer → switch.
// Attaching two switches under one name is an error.
func (r *RUM) AttachSwitch(name string, dpid uint64, ctrlConn, swConn transport.Conn) (*proxy.Session, error) {
	// Attach and detach serialize on the cold-path mutex for their whole
	// duration, so a session observed through a shard is always fully
	// built. Hot-path traffic (already-attached switches) never takes mu.
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shardFor(name)
	if sh.session() != nil {
		return nil, fmt.Errorf("core: switch %q already attached", name)
	}

	s := &session{rum: r, name: name, shard: sh, swConn: swConn, ctConn: ctrlConn}
	if r.cfg.Aggregate {
		// A fresh logical/physical pair per attach: a reattaching switch
		// is assumed to need its FIB replayed (the restart recovery
		// model), so stale aggregation state must not survive the session.
		s.agg = aggregate.New()
	}
	// Pool-recycling release points depend on who owns message structs:
	// frame-encoding conns copy to wire bytes during Send, so RUM regains
	// exclusive ownership of acks it emits upward and — when the decode
	// side is also RUM's own (both conns encode) — of the tracked
	// FlowMods it decoded. Pipes pass pointers and keep shared ownership.
	s.recycleAcks = transport.EncodesFrames(ctrlConn)
	s.reuseBatch = transport.EncodesFrames(swConn)
	s.recycleFM = s.recycleAcks && s.reuseBatch && !r.cfg.Unsharded
	al := newAckLayer(s)
	al.journalOn = r.journal != nil
	s.ack = al
	s.techName = r.strategyFor(name).Name()
	var layers []proxy.Layer
	if r.cfg.BarrierLayer {
		s.bar = &barrierLayer{sess: s, buffer: r.cfg.BufferForReorder}
		layers = append(layers, s.bar)
	}
	layers = append(layers, al)
	// The strategy and the shard binding must exist before NewSession
	// starts message flow: backlogged TCP traffic is flushed through the
	// layer chain inside NewSession and reaches s.strat (and the shard's
	// outbox) immediately.
	s.strat = r.strategyFor(name).ForSwitch(strategyCtx{s: s})
	sh.bind(s)
	ps := proxy.NewSession(name, dpid, r.cfg.Clock, ctrlConn, swConn, layers...)
	s.proxy = ps
	return ps, nil
}

// session is RUM's per-switch state bundle.
type session struct {
	rum    *RUM
	name   string
	shard  *shard
	proxy  *proxy.Session
	swConn transport.Conn // direct switch channel; valid before proxy is
	ctConn transport.Conn // direct controller channel; valid before proxy is
	ack    *ackLayer
	bar    *barrierLayer
	strat  SwitchStrategy
	// agg is the session's logical/physical aggregation pair
	// (Config.Aggregate); nil when aggregation is off.
	agg *aggregate.Table
	// techName is the serving strategy's registered name, cached for the
	// intent journal's records.
	techName string

	// recycleAcks: the controller conn encodes frames, so emitted RUM
	// acks return to the codec pool after Send. reuseBatch: the switch
	// conn encodes frames during SendBatch and retains neither the batch
	// slice nor the message structs, so the shard may recycle drained
	// outbox backings (pipes retain the slice until delivery). recycleFM:
	// both conns encode frames, so tracked FlowMods (decoded by RUM,
	// serialized by RUM) recycle once flushed to the wire and resolved.
	recycleAcks bool
	reuseBatch  bool
	recycleFM   bool
}

// sendToSwitch queues a message for the switch's control channel through
// the session's shard: sends batch per flush and RUM barriers coalesce.
// It is safe during attach, before message flow starts (the shard is
// bound before NewSession flushes backlogged traffic through the layers).
func (s *session) sendToSwitch(m of.Message) { s.shard.enqueue(m) }

// sendTrackedToSwitch is sendToSwitch for a controller FlowMod that
// passed overload admission; it consumes the outbox reservation.
func (s *session) sendTrackedToSwitch(m of.Message) { s.shard.enqueueReserved(m) }

// sendToSwitchNow writes directly to the switch connection, below the
// shard's outbox; only shard flushes (which own the ordering) call it.
func (s *session) sendToSwitchNow(m of.Message) { _ = s.swConn.Send(m) }

// sendBatchToSwitchNow writes a whole flushed batch to the switch
// connection, in one transport operation when the conn supports it, and
// returns how many messages the transport accepted. Conns implementing
// PartialBatchSender may refuse a suffix under backpressure (trace-paced
// fault links, bounded TCP writers); the shard requeues the remainder.
// Plain conns always accept everything.
//
// This is the shard pump's pool release point: on conns that serialize
// frames during the send (TCP), RUM regains exclusive ownership of its
// own barrier requests the moment the call returns — nothing else ever
// references them (strategies track barriers by xid only) — so they go
// back to the codec pool. On pipes the structs travel by pointer and the
// receiving switch releases them instead. Only the accepted prefix is
// released: a refused message is still owned by the outbox.
func (s *session) sendBatchToSwitchNow(ms []of.Message) int {
	// Write-ahead intent replication: the successor's replica learns this
	// batch's intents no later than the wire does, so a crash between the
	// send and the confirmations always leaves the rescue path a record.
	if s.ack.journalOn {
		s.ack.journalDeliver()
	}
	sent := len(ms)
	if ps, ok := s.swConn.(transport.PartialBatchSender); ok {
		n, _ := ps.SendBatchPartial(ms)
		sent = n
	} else if bs, ok := s.swConn.(transport.BatchSender); ok {
		_ = bs.SendBatch(ms)
	} else {
		for _, m := range ms {
			_ = s.swConn.Send(m)
		}
	}
	if !transport.EncodesFrames(s.swConn) {
		return sent
	}
	flowMods := 0
	for _, m := range ms[:sent] {
		switch mm := m.(type) {
		case *of.BarrierRequest:
			if IsRUMXID(mm.GetXID()) {
				of.Release(mm)
			}
		case *of.FlowMod:
			if !IsRUMXID(mm.GetXID()) {
				flowMods++
			}
		}
	}
	// Tracked FlowMods are encoded in seq order (the outbox is FIFO);
	// advance the ack layer's wire watermark so resolved updates can
	// recycle their decoded structs.
	if s.recycleFM && flowMods > 0 {
		s.ack.noteFlushed(flowMods)
	}
	return sent
}

// sendToController injects a message directly on the controller channel,
// above the whole layer chain; like sendToSwitch it is safe before the
// proxy session exists.
func (s *session) sendToController(m of.Message) { _ = s.ctConn.Send(m) }

func (s *session) clock() sim.Clock { return s.rum.cfg.Clock }

// injector picks the neighbor switch A used to inject probes toward s
// (deterministically: the smallest-named attached neighbor), returning A's
// name and A's port toward s.
func (s *session) injector() (string, uint16, bool) {
	r := s.rum
	neighbors := r.topo.Neighbors(s.name)
	type cand struct {
		name string
		port uint16
	}
	var cands []cand
	for _, nb := range neighbors {
		if port, ok := r.topo.PortToward(nb, s.name); ok {
			cands = append(cands, cand{nb, port})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].name < cands[j].name })
	for _, c := range cands {
		if _, ok := r.sessionByName(c.name); ok {
			return c.name, c.port, true
		}
	}
	return "", 0, false
}

// receiver picks the neighbor switch C whose probe-catch rule collects
// sequential probes forwarded by s (the largest-named attached neighbor,
// so that injector != receiver whenever s has two neighbors), returning
// C's name and s's port toward C.
func (s *session) receiver() (string, uint16, bool) {
	r := s.rum
	neighbors := r.topo.Neighbors(s.name)
	type cand struct {
		name string
		port uint16
	}
	var cands []cand
	for port, nb := range neighbors {
		cands = append(cands, cand{nb, port})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].name > cands[j].name })
	for _, c := range cands {
		if _, ok := r.sessionByName(c.name); ok {
			return c.name, c.port, true
		}
	}
	return "", 0, false
}

// DetachSwitch removes an attached switch: it closes both sides of the
// proxied control channel, drops the shard's unflushed outbox, tears the
// switch's strategy state out of its deployment (releasing e.g.
// sequential probe-rule versions), resolves every still-pending update
// as failed — including updates whose FlowMods were still queued in an
// in-flight injection batch — and then fails every remaining registered
// ack future for the switch (a watched FlowMod may have died on the
// closing control channel before RUM ever tracked it). Futures resolve
// and dependent barriers unwedge instead of waiting on a send that will
// never happen. The name is then free for a fresh AttachSwitch (switch
// reconnection). It reports whether the switch was attached.
//
// Failed futures carry ErrChannelLost; when the detach is driven by a
// known switch crash, use DetachSwitchCause with ErrSwitchRestarted so
// controllers can tell "re-issue the in-flight updates" apart from
// "replay the whole FIB".
func (r *RUM) DetachSwitch(name string) bool {
	return r.DetachSwitchCause(name, ErrChannelLost)
}

// DetachSwitchCause is DetachSwitch with an explicit typed cause
// delivered on every failed future and AckEvent (AckResult.Err). The
// recovery paths use ErrChannelLost for a lost control channel and
// ErrSwitchRestarted for a crash that wiped the switch's FIB; a nil
// cause is recorded as ErrChannelLost.
func (r *RUM) DetachSwitchCause(name string, cause error) bool {
	if cause == nil {
		cause = ErrChannelLost
	}
	r.mu.Lock()
	v, ok := r.shards.Load(name)
	var s *session
	var sh *shard
	if ok {
		sh = v.(*shard)
		s = sh.session()
		if s != nil {
			sh.close()
		}
	}
	r.mu.Unlock()
	if s == nil {
		return false
	}
	// Attach holds mu until the session is fully built, so proxy and
	// strat are always valid here.
	_ = s.proxy.Close()
	// The shard's outbox is gone: wire references for never-encoded
	// FlowMods must drop here or the pooled updates leak.
	s.ack.releaseWire()
	// Ship any intents still buffered for replication before the pending
	// updates fail below: their detach-driven failures are not journaled
	// (journalResolve), so the replica keeps exactly the set a successor
	// can still rescue.
	if s.ack.journalOn {
		s.ack.journalDeliver()
	}
	if d, ok := s.strat.(SwitchDetacher); ok {
		d.Detach()
	}
	// Logical FlowMods staged for an aggregation flush that will never
	// run must fail now, with the same cause as the in-flight physical
	// ops below (whose fan-in fails the logical futures they cover).
	if s.agg != nil {
		s.ack.dropAggStage(cause)
	}
	for _, u := range s.ack.takePendingRetained() {
		s.ack.confirmCause(u, OutcomeFailed, cause)
		u.Release()
	}
	sh.failAllWatchers(r.cfg.Clock.Now(), cause)
	return true
}

// SwitchConn returns the switch-side conn of an attached session (nil
// while detached). Fault harnesses use it to reach the fault wrapper
// interposed at AttachSwitch (e.g. to cut the channel mid-run); it is
// not a send path — all traffic must flow through the session's layers.
func (r *RUM) SwitchConn(name string) transport.Conn {
	s, ok := r.sessionByName(name)
	if !ok {
		return nil
	}
	return s.swConn
}

// sessionByName returns the session proxying the named switch. It is the
// hot-path lookup (probe injection, attachment checks) and touches only
// the lock-free shard map plus the target shard's own lock.
func (r *RUM) sessionByName(name string) (*session, bool) {
	v, ok := r.shards.Load(name)
	if !ok {
		return nil, false
	}
	s := v.(*shard).session()
	return s, s != nil
}

// attachedSessions snapshots the attached sessions sorted by name (cold
// paths: bootstrap).
func (r *RUM) attachedSessions() []*session {
	var out []*session
	r.shards.Range(func(_, v any) bool {
		if s := v.(*shard).session(); s != nil {
			out = append(out, s)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// routeProbe offers an unclaimed probe PacketIn to every strategy
// deployment that collects probes across switches.
func (r *RUM) routeProbe(recv string, pin *of.PacketIn, f packet.Fields) bool {
	for _, d := range r.deployments {
		if pr, ok := d.(ProbeRouter); ok && pr.RouteProbe(recv, pin, f) {
			return true
		}
	}
	return false
}

// Bootstrap installs RUM's probe infrastructure rules on every attached
// switch whose strategy preinstalls rules (the probe-catch rule and, for
// the sequential technique, the initial versioned probe rule). It must be
// called after all switches are attached; rules become effective once
// each switch's data plane syncs.
func (r *RUM) Bootstrap() error {
	for _, s := range r.attachedSessions() {
		if b, ok := s.strat.(SwitchBootstrapper); ok {
			if err := b.Bootstrap(); err != nil {
				return fmt.Errorf("core: bootstrap %s: %w", s.name, err)
			}
		}
	}
	return nil
}

// BootstrapSwitch installs probe infrastructure on a single attached
// switch — the reconnection path: re-bootstrapping everyone would reset
// live probe rules (e.g. the sequential technique's versioned rule) on
// switches with confirmations in flight. Other switches' strategies get
// the chance to reinstall rules they own on the (possibly
// empty-tabled) returning switch via NeighborBootstrapper.
func (r *RUM) BootstrapSwitch(name string) error {
	s, ok := r.sessionByName(name)
	if !ok {
		return fmt.Errorf("core: bootstrap %s: not attached", name)
	}
	if b, ok := s.strat.(SwitchBootstrapper); ok {
		if err := b.Bootstrap(); err != nil {
			return fmt.Errorf("core: bootstrap %s: %w", name, err)
		}
	}
	for _, o := range r.attachedSessions() {
		if o.name == name {
			continue
		}
		if nb, ok := o.strat.(NeighborBootstrapper); ok {
			nb.BootstrapNeighbor(name)
		}
	}
	return nil
}

// AggregationStats reports the named switch's aggregation counters:
// logical vs physical rule counts (the compression ratio), per-batch
// verifier witnesses, bypassed keys, and the unrepaired-counterexample
// count that must stay zero. ok is false when the switch is not
// attached or Config.Aggregate is off.
func (r *RUM) AggregationStats(name string) (s aggregate.Stats, ok bool) {
	sess, found := r.sessionByName(name)
	if !found || sess.agg == nil {
		return aggregate.Stats{}, false
	}
	return sess.agg.Stats(), true
}

// AggregationTable exposes the named switch's aggregate table so
// verification harnesses can run from-scratch equivalence proofs
// (aggregate.Table.VerifyFull) or snapshot the rule sets; nil when the
// switch is not attached or aggregation is off.
func (r *RUM) AggregationTable(name string) *aggregate.Table {
	sess, found := r.sessionByName(name)
	if !found {
		return nil
	}
	return sess.agg
}

// Stats reports RUM-level counters: fine-grained acks emitted, probe
// packets injected, and control-plane fallbacks taken. The event stream
// (Subscribe) carries the same information in structured form.
func (r *RUM) Stats() (acks, probes, fallbacks uint64) {
	return r.acksSent.Load(), r.probesSent.Load(), r.fallbacks.Load()
}

// OverloadSheds reports how many tracked updates have been shed with
// ErrOverloaded since start (Config.OutboxLimit admission refusals).
func (r *RUM) OverloadSheds() uint64 { return r.sheds.Load() }

// OutboxHighWater reports the deepest the named switch's outbox has ever
// been (queued messages plus the batch in flight) — the observability
// hook for the bounded-memory guarantee of Config.OutboxLimit. Zero for
// unknown switches.
func (r *RUM) OutboxHighWater(name string) int {
	v, ok := r.shards.Load(name)
	if !ok {
		return 0
	}
	sh := v.(*shard)
	sh.lock()
	defer sh.unlock()
	return sh.obHighWater
}

// Degraded reports whether the named switch is currently marked slow by
// the Degrade policy's drain-latency EWMA.
func (r *RUM) Degraded(name string) bool {
	v, ok := r.shards.Load(name)
	if !ok {
		return false
	}
	sh := v.(*shard)
	sh.lock()
	defer sh.unlock()
	return sh.degraded
}
