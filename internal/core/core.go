// Package core implements RUM (Rule Update Monitoring): a transparent
// layer between an SDN controller and its OpenFlow switches that
// acknowledges a rule modification only once the rule is visible in the
// data plane — never sooner. It provides the paper's five acknowledgment
// techniques (§3), fine-grained per-rule acks delivered as reserved-code
// OpenFlow errors (§4), and a reliable barrier layer (§2) that restores
// barrier semantics on switches that answer early or reorder.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"rum/internal/hsa"
	"rum/internal/proxy"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Technique selects how RUM decides a rule is active in the data plane.
type Technique int

const (
	// TechBarriers trusts the switch's barrier replies (the broken
	// baseline of §3.1).
	TechBarriers Technique = iota
	// TechTimeout waits a fixed worst-case delay after each barrier reply.
	TechTimeout
	// TechAdaptive estimates activation from a switch performance model
	// (issue rate + sync period).
	TechAdaptive
	// TechSequential confirms batches with a versioned probe rule
	// (§3.2.1); valid for switches that do not reorder across barriers.
	TechSequential
	// TechGeneral probes every modification individually (§3.2.2); valid
	// even for reordering switches.
	TechGeneral
	// TechNoWait acknowledges immediately on forwarding — the
	// no-guarantees lower bound the evaluation compares against.
	TechNoWait
)

func (t Technique) String() string {
	switch t {
	case TechBarriers:
		return "barriers"
	case TechTimeout:
		return "timeout"
	case TechAdaptive:
		return "adaptive"
	case TechSequential:
		return "sequential"
	case TechGeneral:
		return "general"
	case TechNoWait:
		return "no-wait"
	default:
		return "unknown"
	}
}

// Config parameterizes a RUM instance.
type Config struct {
	Clock     sim.Clock
	Technique Technique

	// RUMAware controllers receive per-rule positive acknowledgments as
	// OpenFlow errors with type of.ErrTypeRUMAck.
	RUMAware bool

	// Timeout is the fixed delay of TechTimeout and the control-plane
	// fallback of TechGeneral (default 300 ms — the paper's bound for a
	// 300-rule table).
	Timeout time.Duration

	// AssumedRate is TechAdaptive's modeled switch installation rate in
	// rules/second (the paper evaluates 200 and 250).
	AssumedRate float64
	// ModelSyncPeriod is TechAdaptive's modeled data-plane sync period;
	// estimated activations round up to its multiples. Zero models a
	// switch without batched syncs.
	ModelSyncPeriod time.Duration
	// ModelSyncSlack pads the modeled activation beyond the sync boundary
	// (hardware stalls briefly while pushing rules). Defaults to 30 ms
	// when ModelSyncPeriod is set.
	ModelSyncSlack time.Duration

	// ProbeEvery is TechSequential's batch size: one probe-rule update per
	// N real modifications (the evaluation uses 10).
	ProbeEvery int
	// ProbeFlush bounds how long a partial batch may wait before being
	// probed anyway.
	ProbeFlush time.Duration
	// ProbeResend is the probe packet (re)injection period for
	// TechSequential.
	ProbeResend time.Duration

	// ProbeInterval is TechGeneral's probing tick (the evaluation probes
	// every 10 ms).
	ProbeInterval time.Duration
	// ProbeBatch bounds how many of the oldest unconfirmed modifications
	// are probed per tick (the evaluation uses 30).
	ProbeBatch int
	// QuietRounds is how many silent probe rounds confirm an
	// absence-signalled change (rule deletions, drop-rule installs).
	QuietRounds int

	// BarrierLayer enables the reliable barrier layer: controller barriers
	// are absorbed and answered only when every prior modification is
	// confirmed.
	BarrierLayer bool
	// BufferForReorder additionally buffers all commands that follow an
	// unconfirmed barrier before releasing them to the switch — required
	// for switches that reorder across barriers (§2).
	BufferForReorder bool
}

// Defaults fills unset fields with the paper's evaluation parameters.
func (c Config) Defaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 300 * time.Millisecond
	}
	if c.AssumedRate == 0 {
		c.AssumedRate = 200
	}
	if c.ModelSyncPeriod > 0 && c.ModelSyncSlack == 0 {
		c.ModelSyncSlack = 30 * time.Millisecond
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 10
	}
	if c.ProbeFlush == 0 {
		c.ProbeFlush = 50 * time.Millisecond
	}
	if c.ProbeResend == 0 {
		c.ProbeResend = 5 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 10 * time.Millisecond
	}
	if c.ProbeBatch == 0 {
		c.ProbeBatch = 30
	}
	if c.QuietRounds == 0 {
		c.QuietRounds = 3
	}
	return c
}

// TopoLink is one inter-switch link RUM knows about.
type TopoLink struct {
	A     string
	APort uint16
	B     string
	BPort uint16
}

// Topology is RUM's map of the switch-to-switch fabric: which port of
// which switch reaches which neighbor. Host-facing ports are simply
// absent. The probing techniques use it to pick injection (A) and
// receiving (C) switches around each probed switch (B).
type Topology struct {
	links []TopoLink
}

// NewTopology builds a topology from a link list.
func NewTopology(links []TopoLink) *Topology {
	return &Topology{links: append([]TopoLink(nil), links...)}
}

// Neighbors returns the neighbor switches of sw as (localPort → neighbor).
func (t *Topology) Neighbors(sw string) map[uint16]string {
	out := make(map[uint16]string)
	for _, l := range t.links {
		if l.A == sw {
			out[l.APort] = l.B
		}
		if l.B == sw {
			out[l.BPort] = l.A
		}
	}
	return out
}

// PortToward returns sw's port that reaches neighbor nb (ok=false when not
// adjacent).
func (t *Topology) PortToward(sw, nb string) (uint16, bool) {
	for _, l := range t.links {
		if l.A == sw && l.B == nb {
			return l.APort, true
		}
		if l.B == sw && l.A == nb {
			return l.BPort, true
		}
	}
	return 0, false
}

// Switches lists all switch names in deterministic order.
func (t *Topology) Switches() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range t.links {
		for _, n := range []string{l.A, l.B} {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Probe header-space constants. The paper's prototype reserves ToS values
// for probing (§4: "we rely on the ToS field... only 64 ToS values, we
// need to periodically recycle them"). OpenFlow 1.0 matches nw_tos exactly
// (no masks), so the two probe header fields H1/H2 map to:
//
//   - H1 — a reserved probe-sink destination address (ProbeSinkIP): the
//     sequential technique's preprobe/postprobe discriminator is the ToS
//     value, and the sink address keeps probe traffic out of every normal
//     rule.
//   - H2 — the ToS byte, carrying either the sequential probe-rule
//     version or the general technique's per-switch probe-catch value S_i.
var (
	// ProbeSinkIP is the reserved destination of sequential probe packets.
	ProbeSinkIP = netip.MustParseAddr("10.255.255.254")
	// ProbeSrcIP is the source address stamped on RUM probe packets.
	ProbeSrcIP = netip.MustParseAddr("10.255.255.253")
)

const (
	// TosPreprobe marks a sequential probe packet that has not yet passed
	// the probed switch's probe rule.
	TosPreprobe uint8 = 0xfc
	// Sequential probe-rule versions cycle over DSCP-style values
	// 0x04..0xf8 (62 values, excluding 0 and TosPreprobe).
	tosVersionBase  uint8 = 0x04
	tosVersionCount       = 61

	// General probe-catch values S_i = tosCatchBase + 4*color.
	tosCatchBase uint8 = 0x08

	// PrioCatch/PrioProbe are the priorities of RUM's infrastructure
	// rules; user rules must stay below PrioCatch.
	PrioCatch uint16 = 65000
	PrioProbe uint16 = 65100
)

// rumXIDBase marks transaction ids RUM generates for its own messages;
// replies carrying them are consumed by RUM and never reach the
// controller. Controllers must allocate xids below this base.
const rumXIDBase uint32 = 0xf0000000

// IsRUMXID reports whether an xid belongs to RUM's reserved range.
func IsRUMXID(x uint32) bool { return x >= rumXIDBase }

// RUM is one deployment of the monitoring layer across a set of switches.
type RUM struct {
	cfg  Config
	topo *Topology

	mu       sync.Mutex
	sessions map[string]*session
	colors   map[string]int // general probing: switch → color index
	nextXID  uint32
	seqState *seqState // shared sequential-probing version space

	// stats
	acksSent   uint64
	probesSent uint64
	fallbacks  uint64
}

// New creates a RUM instance. Switches are attached with AttachSwitch;
// probe infrastructure is installed with Bootstrap.
func New(cfg Config, topo *Topology) *RUM {
	cfg = cfg.Defaults()
	r := &RUM{
		cfg:      cfg,
		topo:     topo,
		sessions: make(map[string]*session),
		nextXID:  rumXIDBase,
		seqState: newSeqState(),
	}
	adj := make(map[uint64][]uint64)
	names := topo.Switches()
	idx := make(map[string]uint64, len(names))
	for i, n := range names {
		idx[n] = uint64(i)
		adj[uint64(i)] = nil
	}
	for _, l := range topo.links {
		adj[idx[l.A]] = append(adj[idx[l.A]], idx[l.B])
	}
	colors := hsa.ColorGraph(adj)
	r.colors = make(map[string]int, len(names))
	for n, i := range idx {
		r.colors[n] = colors[i]
	}
	return r
}

// Config returns the effective (defaulted) configuration.
func (r *RUM) Config() Config { return r.cfg }

// CatchTos returns the general-probing probe-catch ToS value S for a
// switch (derived from its graph color, §3.2.2's value-reduction trick).
func (r *RUM) CatchTos(sw string) uint8 {
	return tosCatchBase + 4*uint8(r.colors[sw])
}

// newXID allocates a RUM-internal transaction id.
func (r *RUM) newXID() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextXID++
	if r.nextXID < rumXIDBase {
		r.nextXID = rumXIDBase + 1
	}
	return r.nextXID
}

// AttachSwitch splices RUM between a switch-side conn and a
// controller-side conn. The layer chain is
// controller → [barrier layer] → ack layer → switch.
func (r *RUM) AttachSwitch(name string, dpid uint64, ctrlConn, swConn transport.Conn) *proxy.Session {
	s := &session{rum: r, name: name}
	al := &ackLayer{sess: s}
	s.ack = al
	switch r.cfg.Technique {
	case TechBarriers:
		s.tech = newBarrierTech(s, 0)
	case TechTimeout:
		s.tech = newBarrierTech(s, r.cfg.Timeout)
	case TechAdaptive:
		s.tech = newAdaptiveTech(s)
	case TechSequential:
		s.tech = newSequentialTech(s)
	case TechGeneral:
		s.tech = newGeneralTech(s)
	case TechNoWait:
		s.tech = noWaitTech{}
	default:
		panic(fmt.Sprintf("core: unknown technique %d", r.cfg.Technique))
	}
	var layers []proxy.Layer
	if r.cfg.BarrierLayer {
		s.bar = &barrierLayer{sess: s, buffer: r.cfg.BufferForReorder}
		layers = append(layers, s.bar)
	}
	layers = append(layers, al)
	ps := proxy.NewSession(name, dpid, r.cfg.Clock, ctrlConn, swConn, layers...)
	s.proxy = ps

	r.mu.Lock()
	r.sessions[name] = s
	r.mu.Unlock()
	return ps
}

// session is RUM's per-switch state bundle.
type session struct {
	rum   *RUM
	name  string
	proxy *proxy.Session
	ack   *ackLayer
	bar   *barrierLayer
	tech  technique
}

func (s *session) clock() sim.Clock { return s.rum.cfg.Clock }

// injector picks the neighbor switch A used to inject probes toward s
// (deterministically: the smallest-named attached neighbor), returning A's
// session and A's port toward s.
func (s *session) injector() (*session, uint16, bool) {
	r := s.rum
	neighbors := r.topo.Neighbors(s.name)
	type cand struct {
		name string
		port uint16
	}
	var cands []cand
	for _, nb := range neighbors {
		if port, ok := r.topo.PortToward(nb, s.name); ok {
			cands = append(cands, cand{nb, port})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].name < cands[j].name })
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cands {
		if as, ok := r.sessions[c.name]; ok {
			return as, c.port, true
		}
	}
	return nil, 0, false
}

// receiver picks the neighbor switch C whose probe-catch rule collects
// sequential probes forwarded by s (the largest-named attached neighbor,
// so that injector != receiver whenever s has two neighbors), returning
// C's name and s's port toward C.
func (s *session) receiver() (string, uint16, bool) {
	r := s.rum
	neighbors := r.topo.Neighbors(s.name)
	type cand struct {
		name string
		port uint16
	}
	var cands []cand
	for port, nb := range neighbors {
		cands = append(cands, cand{nb, port})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].name > cands[j].name })
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cands {
		if _, ok := r.sessions[c.name]; ok {
			return c.name, c.port, true
		}
	}
	return "", 0, false
}

// sessionByName returns the session proxying the named switch.
func (r *RUM) sessionByName(name string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[name]
	return s, ok
}

// Bootstrap installs RUM's probe infrastructure rules on every attached
// switch: the probe-catch rule (and, for the sequential technique, the
// initial versioned probe rule). It must be called after all switches are
// attached; rules become effective once each switch's data plane syncs.
func (r *RUM) Bootstrap() error {
	r.mu.Lock()
	sessions := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].name < sessions[j].name })
	for _, s := range sessions {
		if b, ok := s.tech.(bootstrapper); ok {
			if err := b.bootstrap(); err != nil {
				return fmt.Errorf("core: bootstrap %s: %w", s.name, err)
			}
		}
	}
	return nil
}

// bootstrapper is implemented by techniques that preinstall rules.
type bootstrapper interface {
	bootstrap() error
}

// Stats reports RUM-level counters: fine-grained acks emitted, probe
// packets injected, and control-plane fallbacks taken.
func (r *RUM) Stats() (acks, probes, fallbacks uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acksSent, r.probesSent, r.fallbacks
}
