package core

import (
	"sync"

	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/proxy"
	"rum/internal/sim"
)

// seqState is the RUM-wide sequential-probing version space. Probe-rule
// versions live in the ToS byte (§4: 64 values, recycled), so the number
// of outstanding epochs across all switches is bounded; flushes beyond the
// window are deferred until confirmations free versions.
type seqState struct {
	mu          sync.Mutex
	nextVer     int                 // monotonically increasing epoch counter
	outstanding map[uint8]*seqEpoch // tos value → unconfirmed epoch
}

func newSeqState() *seqState {
	return &seqState{outstanding: make(map[uint8]*seqEpoch)}
}

// seqEpoch is one probe-rule version covering a batch of modifications on
// one switch.
type seqEpoch struct {
	tech *sequentialTech
	id   int
	tos  uint8
	mods []*pending
}

// allocate reserves a version; ok=false when the ToS space is exhausted
// (too many unconfirmed epochs). The switch's currently *stamped* version
// — the newest one already observed for t — must not be reused yet:
// otherwise a probe stamped by the old rule would instantly (and wrongly)
// confirm the new epoch. This is the correctness constraint behind the
// paper's "periodically recycle" remark (§4).
func (s *seqState) allocate(t *sequentialTech, mods []*pending, exclude uint8) (*seqEpoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.outstanding) >= tosVersionCount-2 {
		return nil, false
	}
	for {
		id := s.nextVer
		s.nextVer++
		tos := tosVersionBase + uint8(id%tosVersionCount)
		if tos == TosPreprobe || tos == exclude {
			continue
		}
		if _, taken := s.outstanding[tos]; taken {
			continue
		}
		e := &seqEpoch{tech: t, id: id, tos: tos, mods: mods}
		s.outstanding[tos] = e
		return e, true
	}
}

// observe resolves a probe arrival carrying the given ToS version: it
// returns the matching epoch (removed from the outstanding set), or nil.
func (s *seqState) observe(tos uint8) *seqEpoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.outstanding[tos]
	if !ok {
		return nil
	}
	delete(s.outstanding, tos)
	return e
}

// release drops every epoch of t with id <= maxID (confirmed transitively
// by a later version's arrival on a non-reordering switch).
func (s *seqState) release(t *sequentialTech, maxID int) []*seqEpoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*seqEpoch
	for tos, e := range s.outstanding {
		if e.tech == t && e.id <= maxID {
			out = append(out, e)
			delete(s.outstanding, tos)
		}
	}
	return out
}

// sequentialTech implements §3.2.1: every batch of ProbeEvery real
// modifications is followed by a barrier and an update of the switch's
// single probe rule, bumping the ToS version it stamps onto probe packets.
// Observing a probe with version v proves the probe-rule update — and, on
// a switch that does not reorder across barriers, every earlier
// modification — is in the data plane.
type sequentialTech struct {
	sess *session

	mu        sync.Mutex
	ackl      *ackLayer
	batch     []*pending
	deferred  [][]*pending // batches awaiting a free version
	pumping   bool
	flushTm   sim.Timer
	recvName  string
	recvPort  uint16
	lastEpoch *seqEpoch // newest unconfirmed epoch (probe target)
	activeVer uint8     // newest version observed in the data plane
	bootOK    bool
}

func newSequentialTech(s *session) *sequentialTech {
	return &sequentialTech{sess: s}
}

// bootstrap installs the probe-catch rule and the initial probe rule.
// Catch rule: packets for the probe sink that are no longer preprobes go
// to the controller. Probe rule (higher priority): preprobe packets get
// stamped with the current version and forwarded to the receiver C.
func (t *sequentialTech) bootstrap() error {
	recv, port, ok := t.sess.receiver()
	if !ok {
		return errNoNeighbor(t.sess.name)
	}
	t.mu.Lock()
	t.recvName = recv
	t.recvPort = port
	t.bootOK = true
	t.mu.Unlock()

	catch := &of.FlowMod{
		Command:  of.FCAdd,
		Priority: PrioCatch,
		Match:    probeSinkMatch(),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: of.PortController, MaxLen: 0xffff}},
	}
	catch.SetXID(t.sess.rum.newXID())
	t.sess.proxy.SendToSwitch(catch)

	// The bootstrap probe rule stamps tosBootstrap, a value allocate()
	// never hands out, so a pre-existing rule can never confirm an epoch.
	probe := t.probeRuleMod(tosBootstrap)
	t.sess.proxy.SendToSwitch(probe)
	return nil
}

// tosBootstrap is the initial probe-rule version (outside the allocated
// version range tosVersionBase..tosVersionBase+tosVersionCount-1).
const tosBootstrap uint8 = 0x00

// probeSinkMatch matches every packet addressed to the probe sink.
func probeSinkMatch() of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWDst(ProbeSinkIP)
	return m
}

// probeRuleMatch matches preprobe packets only.
func probeRuleMatch() of.Match {
	m := probeSinkMatch()
	m.Wildcards &^= of.WcNWTOS
	m.NWTOS = TosPreprobe
	return m
}

// probeRuleMod builds the versioned probe rule: rewrite ToS to ver and
// forward to the receiver.
func (t *sequentialTech) probeRuleMod(ver uint8) *of.FlowMod {
	fm := &of.FlowMod{
		Command:  of.FCAdd, // add-with-same-match-and-priority == replace
		Priority: PrioProbe,
		Match:    probeRuleMatch(),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions: []of.Action{
			of.ActionSetNWTOS{TOS: ver},
			of.ActionOutput{Port: t.recvPort},
		},
	}
	fm.SetXID(t.sess.rum.newXID())
	return fm
}

func (t *sequentialTech) onFlowMod(a *ackLayer, ctx *proxy.Context, p *pending) {
	t.mu.Lock()
	t.ackl = a
	t.batch = append(t.batch, p)
	full := len(t.batch) >= t.sess.rum.cfg.ProbeEvery
	if !full && t.flushTm == nil {
		t.flushTm = ctx.Clock().After(t.sess.rum.cfg.ProbeFlush, func() {
			t.mu.Lock()
			t.flushTm = nil
			t.mu.Unlock()
			t.flush(ctx)
		})
	}
	t.mu.Unlock()
	if full {
		t.flush(ctx)
	}
}

// flush closes the current batch: barrier + probe-rule version bump.
func (t *sequentialTech) flush(ctx *proxy.Context) {
	t.mu.Lock()
	if len(t.batch) == 0 || !t.bootOK {
		t.mu.Unlock()
		return
	}
	mods := t.batch
	t.batch = nil
	if t.flushTm != nil {
		t.flushTm.Stop()
		t.flushTm = nil
	}
	epoch, ok := t.sess.rum.seqState.allocate(t, mods, t.activeVer)
	if !ok {
		// Version space exhausted: re-queue and retry on confirmation.
		t.deferred = append(t.deferred, mods)
		t.mu.Unlock()
		return
	}
	t.lastEpoch = epoch
	t.mu.Unlock()

	br := &of.BarrierRequest{}
	br.SetXID(t.sess.rum.newXID())
	ctx.ToSwitch(br)
	ctx.ToSwitch(t.probeRuleMod(epoch.tos))
	t.injectProbe()
	t.ensurePump()
}

// injectProbe sends one preprobe packet via the injector neighbor A.
func (t *sequentialTech) injectProbe() {
	inj, port, ok := t.sess.injector()
	if !ok {
		return
	}
	pkt := packet.New(ProbeSrcIP, ProbeSinkIP, packet.ProtoUDP, 0, 0)
	pkt.Fields.NWTOS = TosPreprobe
	po := &of.PacketOut{
		BufferID: of.BufferNone,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: port}},
		Data:     pkt.Marshal(),
	}
	po.SetXID(t.sess.rum.newXID())
	inj.proxy.SendToSwitch(po)
	t.sess.rum.mu.Lock()
	t.sess.rum.probesSent++
	t.sess.rum.mu.Unlock()
}

// ensurePump keeps a periodic probe injector running while epochs are
// outstanding.
func (t *sequentialTech) ensurePump() {
	t.mu.Lock()
	if t.pumping {
		t.mu.Unlock()
		return
	}
	t.pumping = true
	t.mu.Unlock()
	t.sess.clock().After(t.sess.rum.cfg.ProbeResend, t.pumpTick)
}

func (t *sequentialTech) pumpTick() {
	t.mu.Lock()
	outstanding := t.lastEpoch != nil
	if !outstanding {
		t.pumping = false
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.injectProbe()
	t.sess.clock().After(t.sess.rum.cfg.ProbeResend, t.pumpTick)
}

// onFromSwitch consumes probe PacketIns arriving at THIS session — for
// sequential probing the receiver C is a different switch, so arrivals are
// routed here via routeSeqProbe below; this hook handles only the case
// where this session is itself a receiver.
func (t *sequentialTech) onFromSwitch(a *ackLayer, ctx *proxy.Context, m of.Message) bool {
	pin, ok := m.(*of.PacketIn)
	if !ok {
		return false
	}
	pkt, err := packet.Unmarshal(pin.Data)
	if err != nil {
		return false
	}
	f := pkt.Fields
	if f.NWDstAddr() != ProbeSinkIP {
		return false
	}
	// A probe observed anywhere is consumed; preprobes (not yet stamped)
	// carry no information.
	if f.NWTOS != TosPreprobe {
		t.sess.rum.routeSeqProbe(f.NWTOS)
	}
	return true
}

// routeSeqProbe resolves a stamped sequential probe: the ToS version
// identifies the epoch (and thus the probed switch), confirming that epoch
// and every earlier one on the same switch.
func (r *RUM) routeSeqProbe(tos uint8) {
	epoch := r.seqState.observe(tos)
	if epoch == nil {
		return
	}
	t := epoch.tech
	released := r.seqState.release(t, epoch.id)
	released = append(released, epoch)
	var maxSeq uint64
	for _, e := range released {
		for _, p := range e.mods {
			if p.seq > maxSeq {
				maxSeq = p.seq
			}
		}
	}
	t.mu.Lock()
	t.activeVer = epoch.tos
	if t.lastEpoch != nil && t.lastEpoch.id <= epoch.id {
		t.lastEpoch = nil
	}
	a := t.ackl
	deferred := t.deferred
	t.deferred = nil
	t.mu.Unlock()
	if a != nil {
		a.confirmUpTo(maxSeq, of.RUMAckInstalled)
	}
	// Retry deferred batches now that versions are free.
	for _, mods := range deferred {
		t.mu.Lock()
		t.batch = append(mods, t.batch...)
		t.mu.Unlock()
	}
	if len(deferred) > 0 {
		t.mu.Lock()
		ctx := proxyCtxOf(a)
		t.mu.Unlock()
		if ctx != nil {
			t.flush(ctx)
		}
	}
}

// proxyCtxOf extracts the last seen context from an ack layer.
func proxyCtxOf(a *ackLayer) *proxy.Context {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ctx
}

// errNoNeighbor reports a switch with no attached neighbor to probe
// through.
type errNoNeighbor string

func (e errNoNeighbor) Error() string {
	return "core: switch " + string(e) + " has no attached neighbor switch for probing"
}
