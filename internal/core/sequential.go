package core

import (
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
)

// seqState is the deployment-wide sequential-probing version space.
// Probe-rule versions live in the ToS byte (§4: 64 values, recycled), so
// the number of outstanding epochs across all switches is bounded;
// flushes beyond the window are deferred until confirmations free
// versions.
type seqState struct {
	mu          sync.Mutex
	nextVer     int                 // monotonically increasing epoch counter
	outstanding map[uint8]*seqEpoch // tos value → unconfirmed epoch
	waiters     []*sequentialSwitch // switches with deferred batches, FIFO
}

func newSeqState() *seqState {
	return &seqState{outstanding: make(map[uint8]*seqEpoch)}
}

// seqEpoch is one probe-rule version covering a batch of modifications on
// one switch.
type seqEpoch struct {
	owner *sequentialSwitch
	id    int
	tos   uint8
	mods  []*Update
}

// allocate reserves a version; ok=false when the ToS space is exhausted
// (too many unconfirmed epochs). The switch's currently *stamped* version
// — the newest one already observed for t — must not be reused yet:
// otherwise a probe stamped by the old rule would instantly (and wrongly)
// confirm the new epoch. This is the correctness constraint behind the
// paper's "periodically recycle" remark (§4).
//
// On failure t is queued as a waiter inside the same critical section —
// registering it after the fact would race confirmations on other
// switches that drain the whole outstanding set in between, leaving t
// queued with no future confirmation to ever wake it.
func (s *seqState) allocate(t *sequentialSwitch, mods []*Update, exclude uint8) (*seqEpoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.outstanding) >= tosVersionCount-2 {
		s.addWaiterLocked(t)
		return nil, false
	}
	for {
		id := s.nextVer
		s.nextVer++
		tos := tosVersionBase + uint8(id%tosVersionCount)
		if tos == TosPreprobe || tos == exclude {
			continue
		}
		if _, taken := s.outstanding[tos]; taken {
			continue
		}
		e := &seqEpoch{owner: t, id: id, tos: tos, mods: mods}
		s.outstanding[tos] = e
		return e, true
	}
}

// observe resolves a probe arrival carrying the given ToS version: it
// returns the matching epoch (removed from the outstanding set), or nil.
func (s *seqState) observe(tos uint8) *seqEpoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.outstanding[tos]
	if !ok {
		return nil
	}
	delete(s.outstanding, tos)
	return e
}

// addWaiterLocked queues a switch whose flush found the version space
// exhausted; caller holds s.mu. Any confirmation that frees a version
// drains the queue — crucially, not just confirmations of the waiter's
// own epochs: at scale (many switches sharing the 61-value space) a
// switch may have its very first flush deferred and would otherwise
// never be retried, wedging its updates forever.
func (s *seqState) addWaiterLocked(t *sequentialSwitch) {
	for _, w := range s.waiters {
		if w == t {
			return
		}
	}
	s.waiters = append(s.waiters, t)
}

// nextWaiter pops the oldest waiting switch, but only while the version
// space has room for its retry to succeed.
func (s *seqState) nextWaiter() *sequentialSwitch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.waiters) == 0 || len(s.outstanding) >= tosVersionCount-2 {
		return nil
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	return w
}

// releaseOwner drops every epoch owned by t and removes it from the
// waiter queue (detach: the versions would otherwise stay pinned forever,
// shrinking the shared window). The dropped epochs are returned so the
// caller can release their retained updates.
func (s *seqState) releaseOwner(t *sequentialSwitch) []*seqEpoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*seqEpoch
	for tos, e := range s.outstanding {
		if e.owner == t {
			out = append(out, e)
			delete(s.outstanding, tos)
		}
	}
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w != t {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
	return out
}

// release drops every epoch of t with id <= maxID (confirmed transitively
// by a later version's arrival on a non-reordering switch).
func (s *seqState) release(t *sequentialSwitch, maxID int) []*seqEpoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*seqEpoch
	for tos, e := range s.outstanding {
		if e.owner == t && e.id <= maxID {
			out = append(out, e)
			delete(s.outstanding, tos)
		}
	}
	return out
}

// sequentialStrategy implements §3.2.1 as an AckStrategy: every batch of
// ProbeEvery real modifications is followed by a barrier and an update of
// the switch's single probe rule, bumping the ToS version it stamps onto
// probe packets. Observing a probe with version v proves the probe-rule
// update — and, on a switch that does not reorder across barriers, every
// earlier modification — is in the data plane. The version space is
// shared across every switch the deployment serves.
type sequentialStrategy struct {
	seq *seqState
}

func newSequentialStrategy() *sequentialStrategy {
	return &sequentialStrategy{seq: newSeqState()}
}

func (s *sequentialStrategy) Name() string { return string(TechSequential) }

func (s *sequentialStrategy) ForSwitch(sc StrategyContext) SwitchStrategy {
	return &sequentialSwitch{parent: s, sc: sc}
}

// RouteProbe implements ProbeRouter: sequential probes surface at the
// receiver C, not the probed switch B, so arrivals anywhere in the
// deployment are resolved against the shared version space. Every packet
// addressed to the probe sink is RUM's to consume; preprobes (not yet
// stamped) carry no information.
func (s *sequentialStrategy) RouteProbe(recv string, pin *of.PacketIn, f packet.Fields) bool {
	if f.NWDstAddr() != ProbeSinkIP {
		return false
	}
	if f.NWTOS != TosPreprobe {
		s.route(f.NWTOS)
	}
	return true
}

// route resolves a stamped sequential probe: the ToS version identifies
// the epoch (and thus the probed switch), confirming that epoch and every
// earlier one on the same switch.
func (s *sequentialStrategy) route(tos uint8) {
	epoch := s.seq.observe(tos)
	if epoch == nil {
		return
	}
	t := epoch.owner
	released := s.seq.release(t, epoch.id)
	released = append(released, epoch)
	var maxSeq uint64
	for _, e := range released {
		for _, u := range e.mods {
			if u.Seq() > maxSeq {
				maxSeq = u.Seq()
			}
		}
	}
	t.mu.Lock()
	t.activeVer = epoch.tos
	if t.lastEpoch != nil && t.lastEpoch.id <= epoch.id {
		t.lastEpoch = nil
	}
	t.mu.Unlock()
	t.sc.ConfirmUpTo(maxSeq, OutcomeInstalled)
	// The confirmed epochs are gone from the outstanding set; drop their
	// references on the pooled updates.
	for _, e := range released {
		for _, u := range e.mods {
			u.Release()
		}
	}
	// Versions were freed: drain waiting switches (possibly including the
	// confirmed one) so their deferred batches retry.
	for {
		w := s.seq.nextWaiter()
		if w == nil {
			return
		}
		w.retryDeferred()
	}
}

// sequentialSwitch is the per-switch half of the sequential strategy.
type sequentialSwitch struct {
	BaseSwitchStrategy
	parent *sequentialStrategy
	sc     StrategyContext

	mu        sync.Mutex
	batch     []*Update
	deferred  [][]*Update // batches awaiting a free version
	pumping   bool
	flushTm   sim.Timer
	recvName  string
	recvPort  uint16
	lastEpoch *seqEpoch // newest unconfirmed epoch (probe target)
	activeVer uint8     // newest version observed in the data plane
	bootOK    bool
	detached  bool

	// Re-probe liveness net: stuckEpoch/stuckTicks count probe-pump
	// ticks during which lastEpoch has not advanced. An epoch can only
	// stall forever when its probe-rule FlowMod (or the receiver's catch
	// rule) was lost on a faulty channel — probe *packets* are already
	// re-injected every tick — so after seqReprobeTicks the rules are
	// re-emitted (adds with identical match are idempotent replaces).
	stuckEpoch *seqEpoch
	stuckTicks int
}

// seqReprobeTicks is how many silent probe-pump rounds (ProbeResend
// apart; 40 × 5 ms = 200 ms at the defaults) an epoch may stall before
// its probe rule and the receiver's catch rule are re-emitted.
const seqReprobeTicks = 40

// Detach implements SwitchDetacher: stop batching and pumping, release
// the switch's outstanding probe-rule versions back to the shared space
// (and the retained updates inside the dropped batches and epochs).
func (t *sequentialSwitch) Detach() {
	t.mu.Lock()
	t.detached = true
	batch, deferred := t.batch, t.deferred
	t.batch, t.deferred, t.lastEpoch = nil, nil, nil
	if t.flushTm != nil {
		t.flushTm.Stop()
		t.flushTm = nil
	}
	t.mu.Unlock()
	for _, u := range batch {
		u.Release()
	}
	for _, mods := range deferred {
		for _, u := range mods {
			u.Release()
		}
	}
	for _, e := range t.parent.seq.releaseOwner(t) {
		for _, u := range e.mods {
			u.Release()
		}
	}
}

// Bootstrap installs the probe-catch rule and the initial probe rule.
// Catch rule: packets for the probe sink that are no longer preprobes go
// to the controller. Probe rule (higher priority): preprobe packets get
// stamped with the current version and forwarded to the receiver C.
func (t *sequentialSwitch) Bootstrap() error {
	recv, port, ok := t.sc.Receiver()
	if !ok {
		return errNoNeighbor(t.sc.Switch())
	}
	t.mu.Lock()
	t.recvName = recv
	t.recvPort = port
	t.bootOK = true
	t.mu.Unlock()

	catch := t.catchRuleMod()
	t.sc.SendToSwitch(catch)

	// In a heterogeneous deployment the receiver C may run a different
	// strategy and never install a catch rule of its own; the prober's
	// infrastructure follows it there (an add with identical match and
	// priority is an idempotent replace).
	t.sc.Inject(recv, t.catchRuleMod())

	// The bootstrap probe rule stamps tosBootstrap, a value allocate()
	// never hands out, so a pre-existing rule can never confirm an epoch.
	probe := t.probeRuleMod(tosBootstrap)
	t.sc.SendToSwitch(probe)
	return nil
}

// catchRuleMod builds the probe-catch rule: packets for the probe sink
// that are no longer preprobes go to the controller.
func (t *sequentialSwitch) catchRuleMod() *of.FlowMod {
	catch := &of.FlowMod{
		Command:  of.FCAdd,
		Priority: PrioCatch,
		Match:    probeSinkMatch(),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: of.PortController, MaxLen: 0xffff}},
	}
	catch.SetXID(t.sc.NewXID())
	return catch
}

// tosBootstrap is the initial probe-rule version (outside the allocated
// version range tosVersionBase..tosVersionBase+tosVersionCount-1).
const tosBootstrap uint8 = 0x00

// probeSinkMatch matches every packet addressed to the probe sink.
func probeSinkMatch() of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWDst(ProbeSinkIP)
	return m
}

// probeRuleMatch matches preprobe packets only.
func probeRuleMatch() of.Match {
	m := probeSinkMatch()
	m.Wildcards &^= of.WcNWTOS
	m.NWTOS = TosPreprobe
	return m
}

// probeRuleMod builds the versioned probe rule: rewrite ToS to ver and
// forward to the receiver.
func (t *sequentialSwitch) probeRuleMod(ver uint8) *of.FlowMod {
	fm := &of.FlowMod{
		Command:  of.FCAdd, // add-with-same-match-and-priority == replace
		Priority: PrioProbe,
		Match:    probeRuleMatch(),
		BufferID: of.BufferNone,
		OutPort:  of.PortNone,
		Actions: []of.Action{
			of.ActionSetNWTOS{TOS: ver},
			of.ActionOutput{Port: t.recvPort},
		},
	}
	fm.SetXID(t.sc.NewXID())
	return fm
}

func (t *sequentialSwitch) OnFlowMod(u *Update) {
	u.Retain() // the batch's reference; rides into the epoch on flush
	t.mu.Lock()
	t.batch = append(t.batch, u)
	full := len(t.batch) >= t.sc.Config().ProbeEvery
	if !full && t.flushTm == nil {
		t.flushTm = t.sc.Clock().After(t.sc.Config().ProbeFlush, func() {
			t.mu.Lock()
			t.flushTm = nil
			t.mu.Unlock()
			t.flush()
		})
	}
	t.mu.Unlock()
	if full {
		t.flush()
	}
}

// OnUpdateResolved implements ResolutionObserver: an update resolved
// outside the strategy (switch error, detach) leaves the unflushed batch
// queues so it is not retained indefinitely. Updates already inside an
// epoch stay there; the epoch's eventual confirmation skips them.
func (t *sequentialSwitch) OnUpdateResolved(u *Update, outcome Outcome) {
	dropped := 0
	t.mu.Lock()
	kept := t.batch[:0]
	for _, q := range t.batch {
		if q != u {
			kept = append(kept, q)
		} else {
			dropped++
		}
	}
	t.batch = kept
	for i, mods := range t.deferred {
		keptd := mods[:0]
		for _, q := range mods {
			if q != u {
				keptd = append(keptd, q)
			} else {
				dropped++
			}
		}
		t.deferred[i] = keptd
	}
	t.mu.Unlock()
	for ; dropped > 0; dropped-- {
		u.Release()
	}
}

// BootstrapNeighbor implements NeighborBootstrapper: when this switch's
// probe receiver reconnects (possibly with an empty flow table), its
// catch rule is reinstalled so confirmations keep flowing.
func (t *sequentialSwitch) BootstrapNeighbor(sw string) {
	t.mu.Lock()
	mine := t.bootOK && !t.detached && t.recvName == sw
	t.mu.Unlock()
	if mine {
		t.sc.Inject(sw, t.catchRuleMod())
	}
}

// retryDeferred folds the deferred batches back into the live batch (in
// original order, ahead of newer mods) and flushes again.
func (t *sequentialSwitch) retryDeferred() {
	t.mu.Lock()
	deferred := t.deferred
	t.deferred = nil
	for i := len(deferred) - 1; i >= 0; i-- {
		t.batch = append(deferred[i], t.batch...)
	}
	t.mu.Unlock()
	if len(deferred) > 0 {
		t.flush()
	}
}

// flush closes the current batch: barrier + probe-rule version bump.
func (t *sequentialSwitch) flush() {
	t.mu.Lock()
	if len(t.batch) == 0 || !t.bootOK || t.detached {
		t.mu.Unlock()
		return
	}
	mods := t.batch
	t.batch = nil
	if t.flushTm != nil {
		t.flushTm.Stop()
		t.flushTm = nil
	}
	// allocate queues t as a version-space waiter on failure, atomically
	// with the exhaustion check; the deferred append below happens before
	// t.mu is released, so a concurrent drain cannot observe the waiter
	// with nothing to retry.
	epoch, ok := t.parent.seq.allocate(t, mods, t.activeVer)
	if !ok {
		t.deferred = append(t.deferred, mods)
		t.mu.Unlock()
		return
	}
	t.lastEpoch = epoch
	t.mu.Unlock()

	br := of.AcquireBarrierRequest()
	br.SetXID(t.sc.NewXID())
	t.sc.SendToSwitch(br)
	t.sc.SendToSwitch(t.probeRuleMod(epoch.tos))
	t.injectProbe()
	t.ensurePump()
}

// injectProbe sends one preprobe packet via the injector neighbor A.
func (t *sequentialSwitch) injectProbe() {
	inj, port, ok := t.sc.Injector()
	if !ok {
		return
	}
	pkt := packet.New(ProbeSrcIP, ProbeSinkIP, packet.ProtoUDP, 0, 0)
	pkt.Fields.NWTOS = TosPreprobe
	po := &of.PacketOut{
		BufferID: of.BufferNone,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.ActionOutput{Port: port}},
		Data:     pkt.Marshal(),
	}
	po.SetXID(t.sc.NewXID())
	if t.sc.Inject(inj, po) {
		t.sc.NoteProbe(1)
	}
}

// ensurePump keeps the periodic probe injector ticking while epochs are
// outstanding.
func (t *sequentialSwitch) ensurePump() {
	t.mu.Lock()
	if t.pumping {
		t.mu.Unlock()
		return
	}
	t.pumping = true
	t.mu.Unlock()
	t.sc.ScheduleTick(t.sc.Config().ProbeResend)
}

// OnTick re-injects the probe while an epoch is outstanding; an epoch
// stalled for seqReprobeTicks rounds gets its probe rule (and the
// receiver's catch rule) re-emitted — the lost-FlowMod recovery path.
func (t *sequentialSwitch) OnTick(now time.Duration) {
	t.mu.Lock()
	last := t.lastEpoch
	if last == nil || t.detached {
		t.pumping = false
		t.stuckEpoch, t.stuckTicks = nil, 0
		t.mu.Unlock()
		return
	}
	var reemit *of.FlowMod
	var recatch string
	if last == t.stuckEpoch {
		t.stuckTicks++
		if t.stuckTicks >= seqReprobeTicks {
			t.stuckTicks = 0
			reemit = t.probeRuleMod(last.tos)
			recatch = t.recvName
		}
	} else {
		t.stuckEpoch, t.stuckTicks = last, 0
	}
	t.mu.Unlock()
	if reemit != nil {
		t.sc.SendToSwitch(reemit)
		t.sc.Inject(recatch, t.catchRuleMod())
	}
	t.injectProbe()
	t.sc.ScheduleTick(t.sc.Config().ProbeResend)
}

// errNoNeighbor reports a switch with no attached neighbor to probe
// through.
type errNoNeighbor string

func (e errNoNeighbor) Error() string {
	return "core: switch " + string(e) + " has no attached neighbor switch for probing"
}
