package core

import (
	"sync/atomic"
	"time"
)

// Event is one typed observability event published by a RUM instance:
// an AckEvent, ProbeEvent, or FallbackEvent. Subscribe with
// RUM.Subscribe. Events are the structured form of the aggregate
// counters reported by RUM.Stats.
type Event interface {
	isEvent()
}

// AckEvent is published every time an update resolves (any Outcome,
// including OutcomeFailed, which produces no wire-level ack).
type AckEvent struct {
	// Switch is the switch the modification targeted.
	Switch string
	// XID is the controller transaction id of the FlowMod.
	XID uint32
	// Outcome is the typed confirmation result.
	Outcome Outcome
	// Code is the wire-level RUM ack code (zero for OutcomeFailed).
	Code uint16
	// IssuedAt and At bracket the update's lifetime on the RUM clock.
	IssuedAt time.Duration
	At       time.Duration
	// Latency is the activation latency RUM observed (At - IssuedAt).
	Latency time.Duration
	// Err carries the typed failure cause for OutcomeFailed resolutions
	// (ErrChannelLost, ErrSwitchRestarted, ErrSwitchRejected), nil
	// otherwise.
	Err error
}

func (AckEvent) isEvent() {}

// ProbeEvent is published when probe packets are injected for a switch.
type ProbeEvent struct {
	// Switch is the probed switch.
	Switch string
	// Count is how many probe packets this injection covered.
	Count int
	At    time.Duration
}

func (ProbeEvent) isEvent() {}

// FallbackEvent is published when a strategy abandons data-plane probing
// for one update and takes a control-plane fallback.
type FallbackEvent struct {
	Switch string
	XID    uint32
	At     time.Duration
}

func (FallbackEvent) isEvent() {}

// Subscription is one subscriber's view of a RUM instance's event
// stream. Receive from C; call Close when done. Delivery is best-effort:
// events that would block are dropped and counted.
type Subscription struct {
	// C carries the events.
	C <-chan Event

	r       *RUM
	ch      chan Event
	dropped atomic.Uint64
	closed  atomic.Bool
}

// Subscribe registers a new event subscriber with the given channel
// buffer (minimum 1). Events published while the buffer is full are
// dropped, never blocking the update pipeline.
func (r *RUM) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{r: r, ch: make(chan Event, buf)}
	s.C = s.ch
	r.subsMu.Lock()
	r.subs = append(r.subs, s)
	r.subsMu.Unlock()
	return s
}

// Close unregisters the subscription. It does not close C (late sends
// race-free); after Close no further events are delivered.
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	r := s.r
	r.subsMu.Lock()
	kept := make([]*Subscription, 0, len(r.subs))
	for _, q := range r.subs {
		if q != s {
			kept = append(kept, q)
		}
	}
	r.subs = kept
	r.subsMu.Unlock()
}

// Dropped reports how many events were discarded because the buffer was
// full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

func (s *Subscription) deliver(ev Event) {
	if s.closed.Load() {
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
	}
}

// subsSnapshot copies the subscriber list. On the sharded path it takes
// only a read lock, so concurrent publishers from different shards never
// serialize; in Unsharded mode it funnels through the RUM-wide legacy
// mutex like the rest of the pre-shard hot path.
func (r *RUM) subsSnapshot() []*Subscription {
	if r.cfg.Unsharded {
		// Contention emulation only; subsMu below still owns the data.
		r.legacyMu.Lock()
		defer r.legacyMu.Unlock()
	}
	r.subsMu.RLock()
	defer r.subsMu.RUnlock()
	if len(r.subs) == 0 {
		return nil
	}
	return append([]*Subscription(nil), r.subs...)
}

func fanout(subs []*Subscription, ev Event) {
	for _, s := range subs {
		s.deliver(ev)
	}
}

// publish fans an event out to every subscriber.
func (r *RUM) publish(ev Event) {
	fanout(r.subsSnapshot(), ev)
}

// noteProbes counts injected probes and publishes a ProbeEvent (probe
// injection is the hot path: the count is a lock-free atomic).
func (r *RUM) noteProbes(sw string, n int) {
	r.probesSent.Add(uint64(n))
	if subs := r.subsSnapshot(); subs != nil {
		fanout(subs, ProbeEvent{Switch: sw, Count: n, At: r.cfg.Clock.Now()})
	}
}

// noteFallback counts a control-plane fallback and publishes a
// FallbackEvent.
func (r *RUM) noteFallback(u *Update) {
	r.fallbacks.Add(1)
	if subs := r.subsSnapshot(); subs != nil {
		fanout(subs, FallbackEvent{Switch: u.sw, XID: u.xid, At: r.cfg.Clock.Now()})
	}
}

// noteAck counts one wire-level fine-grained acknowledgment.
func (r *RUM) noteAck() {
	if r.cfg.Unsharded {
		r.legacyMu.Lock()
		defer r.legacyMu.Unlock()
	}
	r.acksSent.Add(1)
}
