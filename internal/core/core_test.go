package core

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// ackEvent is one acknowledgment observed at the test controller.
type ackEvent struct {
	sw   string
	xid  uint32
	code uint16
	at   time.Duration
}

// testbed is the paper's triangle: h1 - s1 - s3 - h2 with s2 bridging
// s1 and s2-s3, all proxied by one RUM instance.
//
//	s1 ports: 1=h1 2=s2 3=s3
//	s2 ports: 1=s1 2=s3
//	s3 ports: 1=h2 2=s2 3=s1
type testbed struct {
	sim      *sim.Sim
	net      *netsim.Network
	rum      *RUM
	switches map[string]*switchsim.Switch
	ctrl     map[string]transport.Conn
	h1, h2   *netsim.Host
	acks     []ackEvent
	passed   []of.Message // non-ack messages that reached the controller
}

func triangleTopology() *Topology {
	return NewTopology([]TopoLink{
		{A: "s1", APort: 2, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 2},
		{A: "s1", APort: 3, B: "s3", BPort: 3},
	})
}

func newTestbed(t *testing.T, cfg Config, s2prof switchsim.Profile) *testbed {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	tb := &testbed{
		sim:      s,
		net:      n,
		switches: make(map[string]*switchsim.Switch),
		ctrl:     make(map[string]transport.Conn),
	}
	tb.h1 = netsim.NewHost(n, "h1")
	tb.h2 = netsim.NewHost(n, "h2")
	profs := map[string]switchsim.Profile{
		"s1": switchsim.ProfileSoftware(),
		"s2": s2prof,
		"s3": switchsim.ProfileSoftware(),
	}
	for i, name := range []string{"s1", "s2", "s3"} {
		tb.switches[name] = switchsim.New(name, uint64(i+1), profs[name], s, n)
	}
	n.Connect(tb.h1, tb.h1.Port(), tb.switches["s1"], 1, 20*time.Microsecond)
	n.Connect(tb.switches["s1"], 2, tb.switches["s2"], 1, 20*time.Microsecond)
	n.Connect(tb.switches["s2"], 2, tb.switches["s3"], 2, 20*time.Microsecond)
	n.Connect(tb.switches["s1"], 3, tb.switches["s3"], 3, 20*time.Microsecond)
	n.Connect(tb.switches["s3"], 1, tb.h2, tb.h2.Port(), 20*time.Microsecond)

	cfg.Clock = s
	cfg.RUMAware = true
	r, err := New(cfg, triangleTopology())
	if err != nil {
		t.Fatal(err)
	}
	tb.rum = r
	for name, sw := range tb.switches {
		name := name
		// controller <-> RUM pipe and RUM <-> switch pipe.
		ctrlTop, ctrlBottom := transport.Pipe(s, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(s, 100*time.Microsecond)
		sw.AttachConn(swSide)
		if _, err := tb.rum.AttachSwitch(name, sw.DPID(), ctrlBottom, rumSide); err != nil {
			t.Fatal(err)
		}
		tb.ctrl[name] = ctrlTop
		ctrlTop.SetHandler(func(m of.Message) {
			if e, ok := m.(*of.Error); ok {
				if xid, code, isAck := e.IsRUMAck(); isAck {
					tb.acks = append(tb.acks, ackEvent{sw: name, xid: xid, code: code, at: s.Now()})
					return
				}
			}
			tb.passed = append(tb.passed, m)
		})
	}
	return tb
}

// bootstrapAndWarm installs probe rules and waits for every switch's data
// plane to absorb them.
func (tb *testbed) bootstrapAndWarm(t *testing.T) {
	t.Helper()
	if err := tb.rum.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	tb.sim.RunFor(700 * time.Millisecond)
}

// flowMatch builds the exact-match rule for test flow i.
func flowMatch(i int) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
	m.SetNWDst(netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}))
	return m
}

func (tb *testbed) sendMods(sw string, n int, outPort uint16) []uint32 {
	xids := make([]uint32, n)
	for i := 0; i < n; i++ {
		fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(i),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: outPort}}}
		fm.SetXID(uint32(1000 + i))
		xids[i] = fm.GetXID()
		_ = tb.ctrl[sw].Send(fm)
	}
	return xids
}

// activationTimes maps FlowMod xid → data-plane activation time.
func (tb *testbed) activationTimes(sw string) map[uint32]time.Duration {
	out := make(map[uint32]time.Duration)
	for _, a := range tb.switches[sw].Activations() {
		if _, seen := out[a.XID]; !seen {
			out[a.XID] = a.At
		}
	}
	return out
}

// ackTimes maps acked xid → ack arrival time at the controller.
func (tb *testbed) ackTimes(sw string) map[uint32]time.Duration {
	out := make(map[uint32]time.Duration)
	for _, a := range tb.acks {
		if a.sw == sw {
			if _, seen := out[a.xid]; !seen {
				out[a.xid] = a.at
			}
		}
	}
	return out
}

// checkNeverEarly asserts every ack follows its rule's activation, and
// that all xids got acked.
func checkNeverEarly(t *testing.T, tb *testbed, sw string, xids []uint32) {
	t.Helper()
	acts := tb.activationTimes(sw)
	acks := tb.ackTimes(sw)
	early := 0
	for _, x := range xids {
		ackAt, ok := acks[x]
		if !ok {
			t.Fatalf("xid %d never acked", x)
		}
		actAt, ok := acts[x]
		if !ok {
			t.Fatalf("xid %d never activated in data plane", x)
		}
		if ackAt < actAt {
			early++
			if early <= 3 {
				t.Errorf("xid %d acked at %v before activation at %v", x, ackAt, actAt)
			}
		}
	}
	if early > 3 {
		t.Errorf("... and %d more early acks", early-3)
	}
}

func TestBarriersBaselineAcksTooEarly(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechBarriers}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(3 * time.Second)

	acts := tb.activationTimes("s2")
	acks := tb.ackTimes("s2")
	early := 0
	for _, x := range xids {
		if acks[x] < acts[x] {
			early++
		}
	}
	if early == 0 {
		t.Fatal("broken-barrier switch produced no early acks; the baseline should be unsafe")
	}
}

func TestTimeoutTechNeverEarly(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechTimeout, Timeout: 350 * time.Millisecond}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(4 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestAdaptive200NeverEarlyOnHP(t *testing.T) {
	tb := newTestbed(t, Config{
		Technique:       TechAdaptive,
		AssumedRate:     200,
		ModelSyncPeriod: 300 * time.Millisecond,
	}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(4 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestSequentialNeverEarly(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, ProbeEvery: 10}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(4 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
	_, probes, _ := tb.rum.Stats()
	if probes == 0 {
		t.Error("sequential technique sent no probes")
	}
}

func TestSequentialPartialBatchFlushes(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, ProbeEvery: 10}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 3, 2) // less than a batch
	tb.sim.RunFor(4 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestGeneralNeverEarly(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(4 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestGeneralNeverEarlyOnReorderingSwitch(t *testing.T) {
	prof := switchsim.ProfileReordering(7)
	prof.SyncBatch = 20
	tb := newTestbed(t, Config{Technique: TechGeneral}, prof)
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 50, 2)
	tb.sim.RunFor(6 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestGeneralConfirmsDeletions(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	xids := tb.sendMods("s2", 5, 2)
	tb.sim.RunFor(2 * time.Second)

	del := &of.FlowMod{Command: of.FCDeleteStrict, Priority: 100, Match: flowMatch(0),
		BufferID: of.BufferNone, OutPort: of.PortNone}
	del.SetXID(5000)
	_ = tb.ctrl["s2"].Send(del)
	tb.sim.RunFor(3 * time.Second)

	acks := tb.ackTimes("s2")
	ackAt, ok := acks[5000]
	if !ok {
		t.Fatal("deletion never acked")
	}
	// Find the deletion's activation (Deleted=true entry).
	var delAt time.Duration
	for _, a := range tb.switches["s2"].Activations() {
		if a.XID == 5000 && a.Deleted {
			delAt = a.At
		}
	}
	if delAt == 0 {
		t.Fatal("deletion never applied to data plane")
	}
	if ackAt < delAt {
		t.Errorf("deletion acked at %v before data-plane removal at %v", ackAt, delAt)
	}
	_ = xids
}

func TestGeneralFallsBackForHostFacingRules(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	// s2 port 5 is unwired/host-facing: no catch rule there, probe
	// impossible → control-plane fallback.
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(1),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 5}}}
	fm.SetXID(2000)
	_ = tb.ctrl["s2"].Send(fm)
	tb.sim.RunFor(3 * time.Second)

	var got *ackEvent
	for i := range tb.acks {
		if tb.acks[i].xid == 2000 {
			got = &tb.acks[i]
		}
	}
	if got == nil {
		t.Fatal("host-facing rule never acked")
	}
	if got.code != of.RUMAckFallback {
		t.Errorf("ack code = %d, want RUMAckFallback", got.code)
	}
	_, _, fallbacks := tb.rum.Stats()
	if fallbacks == 0 {
		t.Error("fallback counter not incremented")
	}
}

func TestNoWaitAcksImmediately(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechNoWait}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	start := tb.sim.Now()
	xids := tb.sendMods("s2", 10, 2)
	tb.sim.RunFor(50 * time.Millisecond)
	acks := tb.ackTimes("s2")
	for _, x := range xids {
		at, ok := acks[x]
		if !ok {
			t.Fatalf("xid %d not acked", x)
		}
		if at-start > 5*time.Millisecond {
			t.Errorf("no-wait ack for %d took %v", x, at-start)
		}
	}
}

func TestNormalPacketInsPassThrough(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	// Install a send-to-controller rule for ordinary traffic on s1.
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(9),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: of.PortController}}}
	fm.SetXID(3000)
	_ = tb.ctrl["s1"].Send(fm)
	tb.sim.RunFor(100 * time.Millisecond)

	pkt := packet.New(netip.AddrFrom4([4]byte{10, 0, 0, 9}), netip.AddrFrom4([4]byte{10, 1, 0, 9}), packet.ProtoUDP, 1, 2)
	tb.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 9})
	tb.sim.RunFor(100 * time.Millisecond)

	found := false
	for _, m := range tb.passed {
		if m.MsgType() == of.TypePacketIn {
			found = true
		}
	}
	if !found {
		t.Error("ordinary PacketIn did not reach the controller")
	}
}

func TestProbePacketInsDoNotReachController(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, ProbeEvery: 5}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	tb.sendMods("s2", 20, 2)
	tb.sim.RunFor(3 * time.Second)
	for _, m := range tb.passed {
		if pin, ok := m.(*of.PacketIn); ok {
			p, err := packet.Unmarshal(pin.Data)
			if err == nil && p.Fields.NWDstAddr() == ProbeSinkIP {
				t.Fatal("probe PacketIn leaked to the controller")
			}
		}
	}
}

func TestBarrierLayerReliableBarrier(t *testing.T) {
	tb := newTestbed(t, Config{
		Technique:    TechSequential,
		ProbeEvery:   5,
		BarrierLayer: true,
	}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)

	xids := tb.sendMods("s2", 5, 2)
	br := &of.BarrierRequest{}
	br.SetXID(7000)
	_ = tb.ctrl["s2"].Send(br)
	tb.sim.RunFor(4 * time.Second)

	var replyAt time.Duration
	for _, m := range tb.passed {
		if m.MsgType() == of.TypeBarrierReply && m.GetXID() == 7000 {
			replyAt = 1 // found marker; real time checked below
		}
	}
	if replyAt == 0 {
		t.Fatal("reliable barrier never answered")
	}
	// The barrier reply must come after every mod's activation; compare
	// against the last activation time using ack history (acks are
	// RUM-aware and never early, and the reply is gated on them).
	acts := tb.activationTimes("s2")
	acks := tb.ackTimes("s2")
	for _, x := range xids {
		if acks[x] < acts[x] {
			t.Fatalf("internal inconsistency: ack %d early", x)
		}
	}
}

func TestBarrierLayerImmediateReplyWhenIdle(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, BarrierLayer: true}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	br := &of.BarrierRequest{}
	br.SetXID(7100)
	_ = tb.ctrl["s2"].Send(br)
	tb.sim.RunFor(50 * time.Millisecond)
	found := false
	for _, m := range tb.passed {
		if m.MsgType() == of.TypeBarrierReply && m.GetXID() == 7100 {
			found = true
		}
	}
	if !found {
		t.Fatal("idle barrier not answered promptly")
	}
}

func TestBarrierLayerBuffersForReorderingSwitch(t *testing.T) {
	prof := switchsim.ProfileReordering(3)
	prof.SyncBatch = 10
	tb := newTestbed(t, Config{
		Technique:        TechGeneral,
		BarrierLayer:     true,
		BufferForReorder: true,
	}, prof)
	tb.bootstrapAndWarm(t)

	// mods A; barrier; mods B. With buffering, no B mod may activate
	// before every A mod.
	for i := 0; i < 10; i++ {
		fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(i),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: 2}}}
		fm.SetXID(uint32(4000 + i))
		_ = tb.ctrl["s2"].Send(fm)
	}
	br := &of.BarrierRequest{}
	br.SetXID(4500)
	_ = tb.ctrl["s2"].Send(br)
	for i := 10; i < 20; i++ {
		fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: flowMatch(i),
			BufferID: of.BufferNone, OutPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: 2}}}
		fm.SetXID(uint32(4000 + i))
		_ = tb.ctrl["s2"].Send(fm)
	}
	tb.sim.RunFor(10 * time.Second)

	acts := tb.activationTimes("s2")
	var lastA, firstB time.Duration
	for i := 0; i < 10; i++ {
		if at := acts[uint32(4000+i)]; at > lastA {
			lastA = at
		}
	}
	firstB = time.Hour
	for i := 10; i < 20; i++ {
		at, ok := acts[uint32(4000+i)]
		if !ok {
			t.Fatalf("post-barrier mod %d never activated", 4000+i)
		}
		if at < firstB {
			firstB = at
		}
	}
	if firstB < lastA {
		t.Errorf("post-barrier mod activated at %v before pre-barrier mods finished at %v", firstB, lastA)
	}
	// And the barrier reply must have been delivered.
	found := false
	for _, m := range tb.passed {
		if m.MsgType() == of.TypeBarrierReply && m.GetXID() == 4500 {
			found = true
		}
	}
	if !found {
		t.Fatal("buffered barrier never answered")
	}
}

func TestSequentialManyBatchesRecyclesVersions(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechSequential, ProbeEvery: 2}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	// 200 mods at batch size 2 = 100 epochs > 61 versions: the version
	// space must recycle without losing acknowledgments.
	xids := tb.sendMods("s2", 200, 2)
	tb.sim.RunFor(15 * time.Second)
	checkNeverEarly(t, tb, "s2", xids)
}

func TestCatchTosColoring(t *testing.T) {
	r, err := New(Config{Clock: sim.New(), Technique: TechGeneral}, triangleTopology())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2, s3 := r.CatchTos("s1"), r.CatchTos("s2"), r.CatchTos("s3")
	if s1 == s2 || s2 == s3 || s1 == s3 {
		t.Errorf("triangle coloring not proper: %d %d %d", s1, s2, s3)
	}
	for _, v := range []uint8{s1, s2, s3} {
		if v == TosPreprobe || v == 0 {
			t.Errorf("catch value %#x collides with reserved values", v)
		}
	}
}

func TestIsRUMXID(t *testing.T) {
	if IsRUMXID(1000) {
		t.Error("controller xid classified as RUM xid")
	}
	if !IsRUMXID(rumXIDBase + 5) {
		t.Error("RUM xid not recognized")
	}
}

func TestTechniqueString(t *testing.T) {
	for tech, want := range map[Technique]string{
		TechBarriers: "barriers", TechTimeout: "timeout", TechAdaptive: "adaptive",
		TechSequential: "sequential", TechGeneral: "general", TechNoWait: "no-wait",
		Technique(""): "barriers", // zero value defaults to the baseline
	} {
		if got := tech.String(); got != want {
			t.Errorf("Technique(%q).String() = %q, want %q", string(tech), got, want)
		}
	}
	// Every paper technique must be registered.
	names := StrategyNames()
	reg := make(map[string]bool, len(names))
	for _, n := range names {
		reg[n] = true
	}
	for _, tech := range []Technique{TechBarriers, TechTimeout, TechAdaptive,
		TechSequential, TechGeneral, TechNoWait} {
		if !reg[string(tech)] {
			t.Errorf("technique %q not in strategy registry %v", tech, names)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	tb := newTestbed(t, Config{Technique: TechGeneral}, switchsim.ProfileHP5406zl())
	tb.bootstrapAndWarm(t)
	tb.sendMods("s2", 10, 2)
	tb.sim.RunFor(3 * time.Second)
	acks, probes, _ := tb.rum.Stats()
	if acks == 0 || probes == 0 {
		t.Errorf("stats: acks=%d probes=%d, want both > 0", acks, probes)
	}
}

func ExampleTechnique_String() {
	fmt.Println(TechGeneral)
	// Output: general
}
