package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rum/internal/aggregate"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
)

// Outcome is the typed result of one acknowledged rule modification.
type Outcome uint8

const (
	// OutcomeInstalled: the rule was confirmed present in the data plane.
	OutcomeInstalled Outcome = iota
	// OutcomeRemoved: the rule was confirmed absent from the data plane
	// (deletions).
	OutcomeRemoved
	// OutcomeFallback: no data-plane probe existed; the confirmation came
	// from a control-plane fallback and carries its weaker guarantee.
	OutcomeFallback
	// OutcomeFailed: the switch rejected the modification with an OpenFlow
	// error; the rule never reached the data plane.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeInstalled:
		return "installed"
	case OutcomeRemoved:
		return "removed"
	case OutcomeFallback:
		return "fallback"
	case OutcomeFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// wireCode maps an outcome to the RUM-ack error code carried on the wire;
// ok is false for outcomes that never produce a positive acknowledgment.
func (o Outcome) wireCode() (code uint16, ok bool) {
	switch o {
	case OutcomeInstalled:
		return of.RUMAckInstalled, true
	case OutcomeRemoved:
		return of.RUMAckRemoved, true
	case OutcomeFallback:
		return of.RUMAckFallback, true
	default:
		return 0, false
	}
}

// Update is one tracked controller FlowMod awaiting data-plane
// confirmation. Strategies receive it in OnFlowMod and hand it back via
// StrategyContext.Confirm (or ConfirmUpTo, using its Seq).
//
// Updates are reference-counted and recycled through a pool: the ack
// layer holds a reference while the update is pending, so reading or
// confirming it during OnFlowMod — or any time before it resolves — is
// always safe. A strategy that stores an Update past the point where the
// update may resolve *outside* the strategy (a switch error, a detach,
// a confirmation from another code path) must Retain it when storing and
// Release it when done; otherwise a recycled struct could be confirmed
// or read as a different, live update. The built-in probing strategies
// retain the updates they track; ConfirmUpTo-style strategies that
// remember only Seq values need no references at all.
type Update struct {
	sw       string
	xid      uint32
	seq      uint64 // per-switch issue order
	fm       *of.FlowMod
	issuedAt time.Duration
	done     bool  // guarded by the owning ackLayer's mutex
	failErr  error // typed failure cause; written under the same mutex
	ownFM    bool  // fm came off the wire and returns to the codec pool
	refs     atomic.Int32

	// Aggregation fan-in state (Config.Aggregate; see aggfanin.go).
	// covered is a physical op's pooled set of retained logical updates
	// its resolution confirms or fails; it is written under the ack
	// layer's mutex while the op is pending and drained exactly once by
	// the single resolution path. aggWait counts the physical anchors a
	// logical update still waits on. aggRef/aggTrack name the physical
	// rule this op installed, for the pending-install index.
	covered  []*Update
	aggWait  atomic.Int32
	aggRef   aggregate.PhysRef
	aggTrack bool
}

var updatePool = sync.Pool{New: func() any { return new(Update) }}

// liveUpdates counts Update structs holding at least one reference — the
// pool-leak detector the reconnect/fault tests assert on: after every
// future has resolved and every switch has detached, it must return to
// its pre-workload value, or a reference was leaked (the struct would
// never recycle) or double-released (the struct would recycle while
// still reachable).
var liveUpdates atomic.Int64

// LiveUpdates reports how many tracked updates currently hold
// references. It is a debugging/verification counter: sample it before
// and after a workload whose futures have all resolved — a non-zero
// delta is a refcount leak.
func LiveUpdates() int64 { return liveUpdates.Load() }

// acquireUpdate returns a recycled Update holding one reference.
func acquireUpdate() *Update {
	u := updatePool.Get().(*Update)
	u.refs.Store(1)
	liveUpdates.Add(1)
	return u
}

// Retain adds a reference, keeping the update (and its FlowMod) alive
// and un-recycled until a matching Release. See the Update type
// documentation for when strategies must call it.
func (u *Update) Retain() { u.refs.Add(1) }

// Release drops a reference taken by Retain (or handed over by the ack
// layer). When the last reference drops the struct is recycled; callers
// must not touch u afterwards.
func (u *Update) Release() {
	n := u.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: Update released more often than retained")
	}
	if u.covered != nil {
		// Safety net: a resolved physical op drains its covered set in
		// fanInCovered before the emission reference drops, so this only
		// fires if an op is released without ever resolving — the
		// references still must drop or the pooled updates leak.
		releaseCovered(u)
	}
	if u.ownFM && u.fm != nil {
		of.Release(u.fm)
	}
	*u = Update{}
	liveUpdates.Add(-1)
	updatePool.Put(u)
}

// Switch returns the name of the switch the modification targets.
func (u *Update) Switch() string { return u.sw }

// XID returns the controller's transaction id for the FlowMod.
func (u *Update) XID() uint32 { return u.xid }

// Seq returns the per-switch issue order (1, 2, ...); order-preserving
// strategies confirm prefixes of it with ConfirmUpTo.
func (u *Update) Seq() uint64 { return u.seq }

// FlowMod returns the tracked modification. Strategies must treat it as
// read-only.
func (u *Update) FlowMod() *of.FlowMod { return u.fm }

// IssuedAt returns the clock time the modification was forwarded toward
// the switch.
func (u *Update) IssuedAt() time.Duration { return u.issuedAt }

// StrategyContext is a per-switch strategy's handle on its RUM deployment:
// the switch it serves, the clock, probe routing around the switch, and
// the confirmation sinks. All methods are safe for concurrent use.
type StrategyContext interface {
	// Switch returns the name of the switch this strategy instance serves.
	Switch() string
	// Clock returns the deployment clock (simulated or wall).
	Clock() sim.Clock
	// Config returns the effective (defaulted) RUM configuration.
	Config() Config
	// Topology returns RUM's inter-switch link map.
	Topology() *Topology
	// NewXID allocates a RUM-internal transaction id; replies carrying it
	// never reach the controller.
	NewXID() uint32
	// SendToSwitch sends a message down this switch's control channel.
	SendToSwitch(m of.Message)
	// Inject sends a message down another attached switch's control
	// channel (probe PacketOuts via a neighbor). It reports whether the
	// switch was attached.
	Inject(sw string, m of.Message) bool
	// Confirm marks one update as resolved with the given outcome,
	// emitting the fine-grained ack, resolving ack futures, and publishing
	// an AckEvent.
	Confirm(u *Update, outcome Outcome)
	// ConfirmUpTo confirms every unresolved update with Seq <= seq
	// (order-preserving strategies).
	ConfirmUpTo(seq uint64, outcome Outcome)
	// ConfirmedThrough returns this switch's contiguous confirmed
	// prefix: every update with Seq <= the returned value has resolved.
	// The gap to the newest Seq is the switch's outstanding work — what
	// work-proportional safety bounds (Config.TimeoutRate) scale by.
	ConfirmedThrough() uint64
	// ScheduleTick arranges a single OnTick callback on the strategy after
	// d has elapsed. Periodic strategies re-arm from inside OnTick.
	ScheduleTick(d time.Duration)
	// Injector picks the neighbor switch used to inject probe packets
	// toward this switch, returning its name and its port facing this
	// switch.
	Injector() (sw string, port uint16, ok bool)
	// Receiver picks the neighbor switch whose probe-catch rule collects
	// probes forwarded by this switch, returning its name and this
	// switch's port toward it.
	Receiver() (sw string, port uint16, ok bool)
	// Attached reports whether the named switch is attached to RUM.
	Attached(sw string) bool
	// CatchTos returns the general-probing probe-catch ToS value of a
	// switch (derived from its topology color).
	CatchTos(sw string) uint8
	// NoteProbe counts n injected probe packets and publishes a
	// ProbeEvent for this switch.
	NoteProbe(n int)
	// NoteFallback counts one control-plane fallback and publishes a
	// FallbackEvent for the update.
	NoteFallback(u *Update)
}

// SwitchStrategy is the per-switch half of an AckStrategy: the hook set
// through which RUM drives an acknowledgment technique. Embed
// BaseSwitchStrategy for no-op defaults of everything but OnFlowMod.
type SwitchStrategy interface {
	// OnFlowMod is invoked after a controller FlowMod has been forwarded
	// toward the switch. The strategy must eventually Confirm it (or leave
	// it unresolved forever, like the broken baseline would on a dead
	// switch).
	OnFlowMod(u *Update)
	// OnBarrierReply is invoked for every BarrierReply arriving from the
	// switch; returning true consumes the reply (it never reaches the
	// controller).
	OnBarrierReply(rep *of.BarrierReply) bool
	// OnProbe is invoked for every PacketIn from the switch that parses as
	// a data-plane packet; returning true consumes it as a probe result.
	// Probes not claimed here are offered to every deployment implementing
	// ProbeRouter (cross-switch probe collection).
	OnProbe(pin *of.PacketIn, f packet.Fields) bool
	// OnTick is invoked once per ScheduleTick request with the current
	// clock time.
	OnTick(now time.Duration)
}

// AckStrategy builds per-switch acknowledgment strategies. One AckStrategy
// value serves one RUM instance: state shared across switches (e.g. the
// sequential technique's probe-rule version space) lives on it, per-switch
// state on the SwitchStrategy values it creates. Register implementations
// with RegisterStrategy to select them by name via Config.Technique and
// Config.PerSwitch.
type AckStrategy interface {
	// Name identifies the strategy (diagnostics, Config reporting).
	Name() string
	// ForSwitch creates the strategy instance for one attached switch.
	ForSwitch(sc StrategyContext) SwitchStrategy
}

// SwitchBootstrapper is implemented by SwitchStrategy instances that
// preinstall infrastructure rules; RUM.Bootstrap invokes it once per
// attached switch.
type SwitchBootstrapper interface {
	Bootstrap() error
}

// ResolutionObserver is implemented by SwitchStrategy instances that
// keep per-update state (outstanding probes, batches). The ack layer
// invokes it for every resolution — including ones the strategy did not
// initiate, such as a switch error failing the update or DetachSwitch —
// so the strategy can drop state that would otherwise wait forever for a
// signal that cannot come.
type ResolutionObserver interface {
	OnUpdateResolved(u *Update, outcome Outcome)
}

// NeighborBootstrapper is implemented by SwitchStrategy instances that
// install infrastructure rules on switches other than their own (probe
// catch rules on receivers). RUM.BootstrapSwitch invokes it on every
// other attached switch's strategy so a reconnecting switch — possibly
// back with an empty flow table — gets its neighbors' rules reinstalled
// even when its own strategy installs nothing.
type NeighborBootstrapper interface {
	BootstrapNeighbor(sw string)
}

// SwitchDetacher is implemented by SwitchStrategy instances that hold
// state in a shared deployment; RUM.DetachSwitch invokes it so the
// departing switch's probes, epochs, and timers are torn down instead of
// lingering (and, for the sequential technique, pinning shared probe-rule
// versions forever).
type SwitchDetacher interface {
	Detach()
}

// ProbeRouter is implemented by AckStrategy deployments whose probe
// packets surface at switches other than the probed one. When a PacketIn
// is not consumed by the arrival switch's own strategy, every deployment's
// RouteProbe is offered the packet; returning true consumes it. This is
// what lets heterogeneous per-switch mixes work: a probe collected by a
// switch running the timeout strategy still reaches the probing
// deployment.
type ProbeRouter interface {
	RouteProbe(recv string, pin *of.PacketIn, f packet.Fields) bool
}

// BaseSwitchStrategy provides no-op defaults for every SwitchStrategy hook
// except OnFlowMod; embed it in strategies that only need a subset.
type BaseSwitchStrategy struct{}

// OnBarrierReply implements SwitchStrategy with a pass-through.
func (BaseSwitchStrategy) OnBarrierReply(*of.BarrierReply) bool { return false }

// OnProbe implements SwitchStrategy with a pass-through.
func (BaseSwitchStrategy) OnProbe(*of.PacketIn, packet.Fields) bool { return false }

// OnTick implements SwitchStrategy as a no-op.
func (BaseSwitchStrategy) OnTick(time.Duration) {}

// StrategyFactory builds an AckStrategy deployment from an effective
// (defaulted) configuration.
type StrategyFactory func(cfg Config) AckStrategy

var (
	strategyMu  sync.RWMutex
	strategyReg = make(map[string]StrategyFactory)
)

// RegisterStrategy makes a strategy selectable by name via
// Config.Technique and Config.PerSwitch. It panics on an empty name or a
// duplicate registration (like database/sql.Register).
func RegisterStrategy(name string, f StrategyFactory) {
	if name == "" || f == nil {
		panic("core: RegisterStrategy with empty name or nil factory")
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyReg[name]; dup {
		panic(fmt.Sprintf("core: RegisterStrategy called twice for %q", name))
	}
	strategyReg[name] = f
}

// StrategyNames lists the registered strategy names in sorted order.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	out := make([]string, 0, len(strategyReg))
	for n := range strategyReg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// newRegisteredStrategy instantiates a registered strategy by name.
func newRegisteredStrategy(name Technique, cfg Config) (AckStrategy, error) {
	strategyMu.RLock()
	f, ok := strategyReg[string(name)]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown ack strategy %q (registered: %v)", name, StrategyNames())
	}
	return f(cfg), nil
}

// strategyCtx implements StrategyContext over a session.
type strategyCtx struct {
	s *session
}

func (c strategyCtx) Switch() string      { return c.s.name }
func (c strategyCtx) Clock() sim.Clock    { return c.s.rum.cfg.Clock }
func (c strategyCtx) Config() Config      { return c.s.rum.cfg }
func (c strategyCtx) Topology() *Topology { return c.s.rum.topo }
func (c strategyCtx) NewXID() uint32      { return c.s.rum.newXID() }

func (c strategyCtx) SendToSwitch(m of.Message) { c.s.sendToSwitch(m) }

func (c strategyCtx) Inject(sw string, m of.Message) bool {
	t, ok := c.s.rum.sessionByName(sw)
	if !ok {
		return false
	}
	t.sendToSwitch(m)
	return true
}

func (c strategyCtx) Confirm(u *Update, outcome Outcome) { c.s.ack.confirm(u, outcome) }

func (c strategyCtx) ConfirmUpTo(seq uint64, outcome Outcome) {
	c.s.ack.confirmUpTo(seq, outcome)
}

func (c strategyCtx) ConfirmedThrough() uint64 { return c.s.ack.confirmedThrough() }

func (c strategyCtx) ScheduleTick(d time.Duration) {
	clk := c.Clock()
	s := c.s
	clk.After(d, func() { s.strat.OnTick(clk.Now()) })
}

func (c strategyCtx) Injector() (string, uint16, bool) { return c.s.injector() }
func (c strategyCtx) Receiver() (string, uint16, bool) { return c.s.receiver() }

func (c strategyCtx) Attached(sw string) bool {
	_, ok := c.s.rum.sessionByName(sw)
	return ok
}

func (c strategyCtx) CatchTos(sw string) uint8 { return c.s.rum.CatchTos(sw) }

func (c strategyCtx) NoteProbe(n int) { c.s.rum.noteProbes(c.s.name, n) }

func (c strategyCtx) NoteFallback(u *Update) { c.s.rum.noteFallback(u) }

var _ StrategyContext = strategyCtx{}
