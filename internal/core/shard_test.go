package core

import (
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// shardBed is a minimal single-switch harness below the netsim layer: a
// RUM instance proxying one switch whose control channel ends in a
// scripted echo handler, so tests can observe exactly which messages the
// shard put on the wire.
type shardBed struct {
	sim      *sim.Sim
	rum      *RUM
	ctrl     transport.Conn // controller side
	swPeer   transport.Conn // the "switch": receives what RUM sends
	toSwitch []of.Message   // everything the switch received
	barriers int            // BarrierRequests among them
	echo     bool           // reply to barriers automatically
}

func newShardBed(t *testing.T, cfg Config, latency time.Duration) *shardBed {
	t.Helper()
	s := sim.New()
	cfg.Clock = s
	r, err := New(cfg, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	bed := &shardBed{sim: s, rum: r, echo: true}
	ctrlTop, ctrlBottom := transport.Pipe(s, latency)
	rumSide, swSide := transport.Pipe(s, latency)
	bed.ctrl = ctrlTop
	bed.swPeer = swSide
	swSide.SetHandler(func(m of.Message) {
		bed.toSwitch = append(bed.toSwitch, m)
		if br, ok := m.(*of.BarrierRequest); ok {
			bed.barriers++
			if bed.echo {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
			}
		}
	})
	ctrlTop.SetHandler(func(of.Message) {})
	if _, err := r.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
		t.Fatal(err)
	}
	return bed
}

func testFlowMod(xid uint32) *of.FlowMod {
	fm := &of.FlowMod{Command: of.FCAdd, Priority: 100, Match: of.MatchAll(),
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 1}}}
	fm.SetXID(xid)
	return fm
}

// TestShardCoalescesBarriers: a burst of FlowMods under the barriers
// technique used to put one BarrierRequest per FlowMod on the wire; the
// shard's outbox collapses them into the newest barrier and synthesizes
// the swallowed replies, so every update still confirms.
func TestShardCoalescesBarriers(t *testing.T) {
	bed := newShardBed(t, Config{Technique: TechBarriers, RUMAware: true}, 0)
	const n = 8
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	for i, h := range handles {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
	mods := 0
	for _, m := range bed.toSwitch {
		if _, ok := m.(*of.FlowMod); ok {
			mods++
		}
	}
	if mods != n {
		t.Fatalf("switch received %d FlowMods, want %d", mods, n)
	}
	if bed.barriers != 1 {
		t.Fatalf("switch received %d BarrierRequests for a %d-mod burst, want 1 (coalesced)", bed.barriers, n)
	}
}

// TestUnshardedSendsEveryBarrier: the pre-sharding compatibility mode
// must keep the old wire behavior — one barrier per FlowMod, no
// batching — while still confirming everything.
func TestUnshardedSendsEveryBarrier(t *testing.T) {
	bed := newShardBed(t, Config{Technique: TechBarriers, RUMAware: true, Unsharded: true}, 0)
	const n = 5
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	for i, h := range handles {
		if res, ok := h.Result(); !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("update %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
	if bed.barriers != n {
		t.Fatalf("unsharded mode sent %d barriers, want %d (one per mod)", bed.barriers, n)
	}
}

// TestDetachFailsInFlightBatch is the regression test for detach racing
// a batched injection: FlowMods sitting in the shard's outbox (tracked,
// not yet flushed to the switch) must resolve their futures as failed
// when the switch detaches — and the orphaned flush must no-op instead
// of deadlocking or sending on a closed session.
func TestDetachFailsInFlightBatch(t *testing.T) {
	bed := newShardBed(t, Config{Technique: TechBarriers, RUMAware: true}, time.Millisecond)
	const n = 4
	var handles []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		handles = append(handles, bed.rum.Watch("s1", i))
		if err := bed.ctrl.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Step the simulator just far enough to deliver the FlowMods into the
	// ack layer (filling the shard's outbox) without running the flush
	// callback that would put the batch on the wire.
	sess, ok := bed.rum.sessionByName("s1")
	if !ok {
		t.Fatal("s1 not attached")
	}
	for sess.ack.pendingCount() < n {
		if !bed.sim.Step() {
			t.Fatal("simulation drained before the batch was tracked")
		}
	}
	sess.shard.mu.Lock()
	queued := len(sess.shard.outbox)
	sess.shard.mu.Unlock()
	if queued == 0 {
		t.Fatal("outbox empty: batch was already flushed, test is not exercising the race")
	}
	if !bed.rum.DetachSwitch("s1") {
		t.Fatal("DetachSwitch(s1) reported not attached")
	}
	// Futures must already be resolved as failed — not wedged waiting for
	// a flush that can never complete.
	for i, h := range handles {
		res, ok := h.Result()
		if !ok {
			t.Fatalf("update %d future unresolved after detach", i+1)
		}
		if res.Outcome != OutcomeFailed {
			t.Fatalf("update %d outcome %v after detach, want failed", i+1, res.Outcome)
		}
	}
	// The orphaned flush callback and any stragglers must drain cleanly.
	bed.sim.Run()
	for _, m := range bed.toSwitch {
		if _, ok := m.(*of.FlowMod); ok {
			t.Fatal("a batched FlowMod reached the switch after detach")
		}
	}
	// The shard is reusable: a reattach under the same name works and
	// confirms new updates.
	ctrlTop, ctrlBottom := transport.Pipe(bed.sim, 0)
	rumSide, swSide := transport.Pipe(bed.sim, 0)
	swSide.SetHandler(func(m of.Message) {
		if br, ok := m.(*of.BarrierRequest); ok {
			rep := of.AcquireBarrierReply()
			rep.SetXID(br.GetXID())
			_ = swSide.Send(rep)
		}
	})
	ctrlTop.SetHandler(func(of.Message) {})
	if _, err := bed.rum.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
		t.Fatalf("reattach after detach: %v", err)
	}
	h := bed.rum.Watch("s1", 99)
	if err := ctrlTop.Send(testFlowMod(99)); err != nil {
		t.Fatal(err)
	}
	bed.sim.Run()
	if res, ok := h.Result(); !ok || res.Outcome != OutcomeInstalled {
		t.Fatalf("post-reattach update: resolved=%v outcome=%v, want installed", ok, res.Outcome)
	}
	// The failed updates went back to the pool; re-using their exact xids
	// on the fresh session must resolve cleanly through recycled structs
	// (and must not disturb the already-failed futures).
	var reused []*UpdateHandle
	for i := uint32(1); i <= n; i++ {
		reused = append(reused, bed.rum.Watch("s1", i))
		if err := ctrlTop.Send(testFlowMod(i)); err != nil {
			t.Fatal(err)
		}
	}
	bed.sim.Run()
	for i, h := range reused {
		res, ok := h.Result()
		if !ok || res.Outcome != OutcomeInstalled {
			t.Fatalf("recycled xid %d: resolved=%v outcome=%v, want installed", i+1, ok, res.Outcome)
		}
	}
	for i, h := range handles {
		if res, _ := h.Result(); res.Outcome != OutcomeFailed {
			t.Fatalf("detached update %d outcome flipped to %v after xid reuse", i+1, res.Outcome)
		}
	}
}
