package core

import (
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

// shard is one switch's slice of the update/ack hot path. Every attached
// switch gets its own shard — its own mutex, its own switch-bound message
// queue (the outbox), and its own ack-future watcher table — so the
// dispatch path of one switch never contends with another's and no
// RUM-wide lock is held across strategy code. Shards are created on
// demand (Watch may register futures before the switch attaches) and
// survive detach/reattach cycles; only the session binding comes and
// goes.
//
// Outbox semantics: messages bound for the switch are appended under the
// shard lock and flushed in batches off the dispatch path. Under a
// simulated clock the flush is a scheduled event (clock.After(0) — the
// discrete-event engine is single-threaded by design, so a goroutine
// would race it); under any other clock the shard runs its own pump
// goroutine, woken through a channel handoff, so enqueuing never blocks
// on the wire. Batching is what makes coalescing possible: while a burst
// sits in the outbox, RUM-internal BarrierRequests collapse into the
// newest one, because on a FIFO switch a reply to a later barrier is a
// strictly stronger signal than a reply to an earlier one. The shard
// remembers the xids it swallowed and synthesizes their replies when the
// surviving barrier's reply arrives, so strategies observe every barrier
// they sent.
//
// Nothing here allocates at steady state: drained outbox backings are
// recycled through a spare slot, ack-future registrations chain
// intrusively through the handles themselves, and the coalesced-xid
// slices cycle through a small per-shard free list.
//
// In Config.Unsharded mode (the pre-sharding baseline kept for regression
// benchmarks) all of this is bypassed: every shard serializes behind the
// RUM-wide legacy mutex and messages are sent unbatched, with the lock
// held across the send.
type shard struct {
	r    *RUM
	name string

	mu        sync.Mutex
	sess      *session // nil while the switch is detached
	gen       uint64   // bumped by close(); stale drainers bail on mismatch
	outbox    []of.Message
	obSpare   []of.Message             // recycled backing of the last drained batch
	flushing  bool                     // a flush is scheduled or the pump is mid-drain
	wake      chan struct{}            // pump handoff (nil in scheduled-flush mode)
	stop      chan struct{}            // closes with the session to end the pump
	coalesced map[uint32][]uint32      // surviving RUM barrier xid → swallowed xids
	xidFree   [][]uint32               // recycled swallowed-xid slices
	watchers  map[uint32]*UpdateHandle // heads of intrusive per-xid chains

	// Overload state, live only when Config.OutboxLimit > 0. reserved
	// counts admitted tracked FlowMods not yet appended to the outbox;
	// inFlight counts the batch currently on the wire (still occupying
	// the bound until the transport returns); waiters are Block-policy
	// admitters parked until a flush frees space. drainStart/drainEWMA
	// feed the Degrade policy's slow-switch detector; degraded widens the
	// coalescing window for flushes. obHighWater records the deepest the
	// queue (outbox + in-flight batch) has ever been — the bounded-memory
	// observability hook.
	reserved    int
	inFlight    int
	waiters     []chan struct{}
	noBlock     bool // simulated clock: Block cannot wait, sheds instead
	degraded    bool
	drainStart  time.Duration
	drainEWMA   time.Duration
	obHighWater int
}

// lock takes the shard's hot-path lock — the per-shard mutex, or the
// RUM-wide legacy mutex in Unsharded mode.
func (sh *shard) lock() {
	if sh.r.cfg.Unsharded {
		sh.r.legacyMu.Lock()
	} else {
		sh.mu.Lock()
	}
}

func (sh *shard) unlock() {
	if sh.r.cfg.Unsharded {
		sh.r.legacyMu.Unlock()
	} else {
		sh.mu.Unlock()
	}
}

// session returns the attached session, or nil while detached.
func (sh *shard) session() *session {
	sh.lock()
	defer sh.unlock()
	return sh.sess
}

// bind attaches a session to the shard, reopening the outbox. Away from
// the single-threaded simulated clock it also starts the shard's pump
// goroutine (one per attached switch), which owns draining the outbox.
func (sh *shard) bind(s *session) {
	sh.lock()
	sh.sess = s
	_, isSim := sh.r.cfg.Clock.(*sim.Sim)
	// Under the discrete-event clock every callback shares one thread, so
	// a Block admitter cannot wait for a flush that would have to run on
	// the same thread: Block degrades to an immediate deadline expiry.
	sh.noBlock = isSim
	if !isSim && !sh.r.cfg.Unsharded {
		sh.wake = make(chan struct{}, 1)
		sh.stop = make(chan struct{})
		go sh.pump(sh.wake, sh.stop, sh.gen)
	}
	sh.unlock()
}

// close detaches the shard from its session. The unflushed outbox is
// dropped — its FlowMods are still tracked by the ack layer, whose
// pending updates the detach path resolves as failed, so an in-flight
// batch fails its futures instead of wedging — and pending coalesced
// barrier bookkeeping is discarded (the replies can no longer arrive).
// A flush that fires after close observes the nil session and does
// nothing; enqueues race-free no-op until the next bind.
func (sh *shard) close() {
	sh.lock()
	sh.sess = nil
	sh.outbox = nil
	sh.obSpare = nil
	sh.coalesced = nil
	sh.xidFree = nil
	// Reset the drain state: the pump may exit on stop with a wake token
	// unserviced, and a flushing flag left true would make every enqueue
	// after a reattach skip waking the new pump — wedging the shard
	// forever. The generation bump makes any drainer still in flight from
	// this session bail instead of touching the next session's state.
	sh.flushing = false
	sh.gen++
	// Overload state dies with the session: parked Block admitters wake
	// and observe the nil session, reservations and in-flight counts are
	// void (their messages were dropped above), and the slow-switch EWMA
	// starts fresh on the next attach.
	sh.reserved, sh.inFlight = 0, 0
	sh.degraded, sh.drainEWMA = false, 0
	sh.wakeWaitersLocked()
	if sh.stop != nil {
		close(sh.stop)
		sh.wake, sh.stop = nil, nil
	}
	sh.unlock()
}

// wakeWaitersLocked releases every parked Block-policy admitter; they
// re-check the bound (or the session) under the lock.
func (sh *shard) wakeWaitersLocked() {
	if len(sh.waiters) == 0 {
		return
	}
	for _, ch := range sh.waiters {
		close(ch)
	}
	sh.waiters = nil
}

// admitUpdate reserves outbox space for one tracked controller FlowMod
// under the configured overload policy, reporting false when the update
// must be shed with ErrOverloaded instead of sent. RUM-internal traffic
// (barriers, probes, acks) never passes through here — it is bounded by
// coalescing and must not be shed, or strategies would wedge.
//
// It is called by the ack layer BEFORE the update is tracked and outside
// ackLayer.mu: the Block policy may park here, and the lock order
// ackLayer.mu → shard.mu forbids blocking once tracking has begun.
func (sh *shard) admitUpdate() bool {
	limit := sh.r.cfg.OutboxLimit
	if limit <= 0 || sh.r.cfg.Unsharded {
		return true
	}
	policy := sh.r.cfg.Overload
	var deadline time.Time
	sh.mu.Lock()
	for {
		if sh.sess == nil {
			// Detached: the enqueue will drop the message and the detach
			// path owns failing the future — admission is not the gate.
			sh.reserved++
			sh.mu.Unlock()
			return true
		}
		if len(sh.outbox)+sh.inFlight+sh.reserved < limit {
			sh.reserved++
			sh.mu.Unlock()
			return true
		}
		if policy == OverloadShed || sh.noBlock {
			sh.mu.Unlock()
			return false
		}
		// Block (and Degrade at the bound): park until a flush completes
		// or the deadline expires. The deadline is measured across all
		// waits for this one admission.
		if deadline.IsZero() {
			deadline = time.Now().Add(sh.r.cfg.OverloadDeadline)
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			sh.mu.Unlock()
			return false
		}
		ch := make(chan struct{})
		sh.waiters = append(sh.waiters, ch)
		sh.mu.Unlock()
		t := time.NewTimer(remaining)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
		sh.mu.Lock()
	}
}

// enqueue queues a switch-bound message on the shard's outbox and
// schedules a flush if none is pending. RUM-internal barriers coalesce
// into the queue's newest barrier. Messages enqueued while the switch is
// detached are dropped (their updates fail via the detach path).
func (sh *shard) enqueue(m of.Message) { sh.enqueueOpts(m, false) }

// enqueueReserved is enqueue for a message that passed admitUpdate: it
// consumes the admission reservation as it lands on the outbox.
func (sh *shard) enqueueReserved(m of.Message) { sh.enqueueOpts(m, true) }

func (sh *shard) enqueueOpts(m of.Message, reserved bool) {
	if sh.r.cfg.Unsharded {
		// Pre-shard baseline: one RUM-wide mutex held across the send,
		// no batching, no coalescing.
		sh.r.legacyMu.Lock()
		s := sh.sess
		if s != nil {
			s.sendToSwitchNow(m)
		}
		sh.r.legacyMu.Unlock()
		return
	}
	sh.mu.Lock()
	if reserved && sh.reserved > 0 {
		sh.reserved--
	}
	if sh.sess == nil {
		sh.mu.Unlock()
		return
	}
	if br, ok := m.(*of.BarrierRequest); ok && IsRUMXID(br.GetXID()) {
		sh.coalesceBarriersLocked(br.GetXID())
	}
	sh.outbox = append(sh.outbox, m)
	if n := len(sh.outbox) + sh.inFlight; n > sh.obHighWater {
		sh.obHighWater = n
	}
	if sh.flushing {
		sh.mu.Unlock()
		return
	}
	sh.flushing = true
	if sh.r.degradeOn {
		sh.drainStart = sh.r.cfg.Clock.Now()
	}
	degraded := sh.degraded
	wake := sh.wake
	gen := sh.gen
	sh.mu.Unlock()
	if degraded {
		// Slow switch: instead of flushing immediately, let the batch sit
		// for DegradeHold so more messages — and more coalescible RUM
		// barriers — accumulate per wire write. The wheel (and the sim)
		// run callbacks on their own goroutine/turn, so a slow send here
		// never stalls enqueuers.
		sh.r.cfg.Clock.After(sh.r.cfg.DegradeHold, func() { sh.flush(gen) })
		return
	}
	if wake != nil {
		wake <- struct{}{} // buffered; only sent on the false→true edge
		return
	}
	sh.r.cfg.Clock.After(0, func() { sh.flush(gen) })
}

// pump is the shard's drain goroutine (non-simulated clocks): it wakes on
// the channel handoff from enqueue and flushes until the session closes.
func (sh *shard) pump(wake <-chan struct{}, stop <-chan struct{}, gen uint64) {
	for {
		select {
		case <-wake:
			sh.flush(gen)
		case <-stop:
			return
		}
	}
}

// getXidSliceLocked returns a recycled swallowed-xid slice.
func (sh *shard) getXidSliceLocked() []uint32 {
	if n := len(sh.xidFree); n > 0 {
		s := sh.xidFree[n-1]
		sh.xidFree[n-1] = nil
		sh.xidFree = sh.xidFree[:n-1]
		return s[:0]
	}
	return make([]uint32, 0, 8)
}

func (sh *shard) putXidSliceLocked(s []uint32) {
	if s != nil && len(sh.xidFree) < 4 {
		sh.xidFree = append(sh.xidFree, s[:0])
	}
}

// releaseCoalesced recycles a slice returned by takeCoalesced once the
// ack layer has synthesized its replies.
func (sh *shard) releaseCoalesced(xids []uint32) {
	sh.lock()
	sh.putXidSliceLocked(xids)
	sh.unlock()
}

// coalesceBarriersLocked removes every queued RUM-internal BarrierRequest
// and records their xids (plus any xids those had already swallowed)
// against the barrier about to be enqueued. Controller barriers are never
// touched: their replies belong to the controller.
func (sh *shard) coalesceBarriersLocked(keptXID uint32) {
	kept := sh.outbox[:0]
	var dropped []uint32
	for _, q := range sh.outbox {
		if br, ok := q.(*of.BarrierRequest); ok && IsRUMXID(br.GetXID()) {
			if dropped == nil {
				dropped = sh.getXidSliceLocked()
			}
			if prior := sh.coalesced[br.GetXID()]; prior != nil {
				dropped = append(dropped, prior...)
				delete(sh.coalesced, br.GetXID())
				sh.putXidSliceLocked(prior)
			}
			dropped = append(dropped, br.GetXID())
			// The swallowed barrier never reaches the wire and the outbox
			// was its only reference (strategies remember xids, not
			// structs): recycle it.
			of.Release(br)
			continue
		}
		kept = append(kept, q)
	}
	sh.outbox = kept
	if len(dropped) == 0 {
		sh.putXidSliceLocked(dropped)
		return
	}
	if sh.coalesced == nil {
		sh.coalesced = make(map[uint32][]uint32)
	}
	sh.coalesced[keptXID] = dropped
}

// flush drains the outbox onto the switch connection. Batches are sent
// outside the shard lock — the flushing flag guarantees a single drainer
// per generation, so enqueues proceed concurrently and FIFO order holds —
// and the loop re-checks for messages enqueued while a batch was on the
// wire. Drained batch backings are handed back as the next outbox so the
// steady state runs on two recycled slices. A drainer whose generation is
// stale (the session detached, and possibly reattached, underneath it)
// backs out without touching the current generation's state.
func (sh *shard) flush(gen uint64) {
	var spent []of.Message
	for {
		sh.mu.Lock()
		if sh.gen != gen {
			sh.mu.Unlock()
			return
		}
		// The previous iteration's batch (if any) has fully left through
		// the transport: its slots no longer count against the bound.
		if sh.inFlight != 0 {
			sh.inFlight = 0
			sh.wakeWaitersLocked()
		}
		if spent != nil && sh.obSpare == nil {
			sh.obSpare = spent
			spent = nil
		}
		if len(sh.outbox) == 0 || sh.sess == nil {
			sh.flushing = false
			if sh.r.degradeOn && sh.sess != nil {
				sh.noteDrainedLocked()
			}
			sh.mu.Unlock()
			return
		}
		batch := sh.outbox
		if sh.obSpare != nil {
			sh.outbox = sh.obSpare[:0]
			sh.obSpare = nil
		} else {
			sh.outbox = nil
		}
		sh.inFlight = len(batch)
		s := sh.sess
		sh.mu.Unlock()
		sent := s.sendBatchToSwitchNow(batch)
		if sent < len(batch) {
			// The transport applied backpressure mid-batch: put the unsent
			// suffix back at the head of the outbox and retry after a hold,
			// giving the paced link time to drain. The flushing flag stays
			// up — this drainer (now the scheduled retry) owns the outbox.
			sh.requeue(batch, sent, gen, s)
			return
		}
		if s.reuseBatch {
			// The conn serialized the batch during SendBatch and retains
			// nothing; the backing array becomes the next outbox. Pipes
			// instead own the slice until delivery — hand it over.
			for i := range batch {
				batch[i] = nil
			}
			spent = batch[:0]
		}
	}
}

// noteDrainedLocked feeds the just-completed drain's latency (first
// enqueue of the burst → outbox empty) into the slow-switch EWMA and
// flips the degraded flag across the configured threshold. Only the
// Degrade policy consumes the flag; the EWMA itself is cheap enough to
// keep whenever degradeOn.
func (sh *shard) noteDrainedLocked() {
	lat := sh.r.cfg.Clock.Now() - sh.drainStart
	sh.drainEWMA += (lat - sh.drainEWMA) / 8
	sh.degraded = sh.drainEWMA > sh.r.cfg.DegradeLatency
}

// requeue prepends a partially-sent batch's unsent suffix back onto the
// outbox and schedules a delayed retry flush. Reached only via
// PartialBatchSender transports (trace-paced fault links, bounded TCP).
func (sh *shard) requeue(batch []of.Message, sent int, gen uint64, s *session) {
	rest := batch[sent:]
	sh.mu.Lock()
	if sh.gen != gen {
		sh.mu.Unlock()
		return
	}
	merged := make([]of.Message, 0, len(rest)+len(sh.outbox))
	merged = append(merged, rest...)
	merged = append(merged, sh.outbox...)
	sh.outbox = merged
	sh.inFlight = 0
	if s.reuseBatch && sh.obSpare == nil {
		for i := range batch {
			batch[i] = nil
		}
		sh.obSpare = batch[:0]
	}
	sh.mu.Unlock()
	sh.r.cfg.Clock.After(sh.r.cfg.DegradeHold, func() { sh.flush(gen) })
}

// takeCoalesced removes and returns the barrier xids swallowed into the
// barrier with the given xid (nil for barriers that swallowed none). The
// caller returns the slice via releaseCoalesced when done.
func (sh *shard) takeCoalesced(xid uint32) []uint32 {
	sh.lock()
	defer sh.unlock()
	if len(sh.coalesced) == 0 {
		return nil
	}
	d := sh.coalesced[xid]
	delete(sh.coalesced, xid)
	return d
}

// watch registers an ack future on the shard. Handles watching the same
// xid chain intrusively through the handles themselves, so registration
// churn allocates nothing beyond the handle.
func (sh *shard) watch(h *UpdateHandle) {
	sh.lock()
	if sh.watchers == nil {
		sh.watchers = make(map[uint32]*UpdateHandle)
	}
	h.nextWatch = sh.watchers[h.xid]
	sh.watchers[h.xid] = h
	sh.unlock()
}

// unwatch removes one handle's registration. A handle no longer reachable
// from the table (a resolver took its chain) is left alone — resolve on a
// cancelled handle is a no-op.
func (sh *shard) unwatch(h *UpdateHandle) {
	sh.lock()
	if cur, ok := sh.watchers[h.xid]; ok {
		switch {
		case cur == h:
			if h.nextWatch == nil {
				delete(sh.watchers, h.xid)
			} else {
				sh.watchers[h.xid] = h.nextWatch
			}
			h.nextWatch = nil
		default:
			for p := cur; p != nil; p = p.nextWatch {
				if p.nextWatch == h {
					p.nextWatch = h.nextWatch
					h.nextWatch = nil
					break
				}
			}
		}
	}
	sh.unlock()
}

// resolveWatch delivers a result to every handle watching its xid.
func (sh *shard) resolveWatch(res AckResult) {
	sh.lock()
	h := sh.watchers[res.XID]
	if h != nil {
		delete(sh.watchers, res.XID)
	}
	sh.unlock()
	for h != nil {
		next := h.nextWatch
		h.nextWatch = nil
		h.resolve(res)
		h = next
	}
}

// failAllWatchers resolves every registered ack future as failed with
// the given typed cause (detach: a watched FlowMod may have been lost in
// flight on the closing control channel without ever being tracked, and
// its future must not wait for a switch that is gone).
func (sh *shard) failAllWatchers(now time.Duration, cause error) {
	sh.lock()
	watchers := sh.watchers
	sh.watchers = nil
	sh.unlock()
	for xid, h := range watchers {
		res := AckResult{
			Switch:      sh.name,
			XID:         xid,
			Outcome:     OutcomeFailed,
			IssuedAt:    now,
			ConfirmedAt: now,
			Err:         cause,
		}
		for h != nil {
			next := h.nextWatch
			h.nextWatch = nil
			h.resolve(res)
			h = next
		}
	}
}
