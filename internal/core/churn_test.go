package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rum/internal/faults"
	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// TestMixedStrategyChurn32Switches drives one RUM deployment with 32
// switches running a PerSwitch mix of all five resolving techniques
// under genuinely concurrent churn on a wall clock — one driver
// goroutine per switch, every message crossing timer goroutines. With
// the race detector on, this is the sharded hot path's concurrency
// certification: per-shard state, xid allocation, watch futures, event
// fanout, and the coalesced-barrier bookkeeping all run in parallel.
//
// The general-probing switches are deliberately left unbootstrapped (no
// topology), which forces their control-plane fallback path — so the
// test also mixes outcome flavors, not just techniques.
func TestMixedStrategyChurn32Switches(t *testing.T) {
	const (
		nSwitches = 32
		nUpdates  = 20
	)
	techs := []Technique{TechBarriers, TechTimeout, TechAdaptive, TechGeneral, TechNoWait}

	clk := sim.NewWall()
	perSwitch := make(map[string]Technique)
	swTech := make(map[string]Technique)
	names := make([]string, nSwitches)
	for i := range names {
		names[i] = fmt.Sprintf("sw%02d", i)
		perSwitch[names[i]] = techs[i%len(techs)]
		swTech[names[i]] = techs[i%len(techs)]
	}
	r, err := New(Config{
		Clock:       clk,
		Technique:   TechBarriers,
		PerSwitch:   perSwitch,
		RUMAware:    true,
		Timeout:     2 * time.Millisecond, // timeout technique + general fallback delay
		AssumedRate: 50000,                // adaptive: 20µs modeled per mod
	}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}

	sub := r.Subscribe(nSwitches * nUpdates)
	defer sub.Close()

	ctrls := make(map[string]transport.Conn, nSwitches)
	for _, name := range names {
		ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
		rumSide, swSide := transport.Pipe(clk, 0)
		// Echo switch: answer every barrier instantly.
		swSide.SetHandler(func(m of.Message) {
			if br, ok := m.(*of.BarrierRequest); ok {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
			}
		})
		ctrlTop.SetHandler(func(of.Message) {})
		if _, err := r.AttachSwitch(name, 1, ctrlBottom, rumSide); err != nil {
			t.Fatal(err)
		}
		ctrls[name] = ctrlTop
	}

	type outcome struct {
		sw  string
		res AckResult
	}
	results := make(chan outcome, nSwitches*nUpdates)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(swIdx int, sw string) {
			defer wg.Done()
			conn := ctrls[sw]
			var handles []*UpdateHandle
			for u := 0; u < nUpdates; u++ {
				xid := uint32(swIdx*1000 + u + 1)
				handles = append(handles, r.Watch(sw, xid))
				if err := conn.Send(testFlowMod(xid)); err != nil {
					t.Errorf("%s: send: %v", sw, err)
					return
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for _, h := range handles {
				res, err := h.AwaitAck(ctx)
				if err != nil {
					t.Errorf("%s xid %d: ack never arrived: %v", sw, h.XID(), err)
					return
				}
				results <- outcome{sw: sw, res: res}
			}
		}(i, name)
	}
	wg.Wait()
	close(results)

	counts := make(map[Outcome]int)
	for o := range results {
		counts[o.res.Outcome]++
		want := OutcomeInstalled
		if swTech[o.sw] == TechGeneral {
			// Unbootstrapped general probing falls back to the control
			// plane: weaker guarantee, distinct outcome.
			want = OutcomeFallback
		}
		if o.res.Outcome != want {
			t.Fatalf("%s (technique %s) xid %d resolved %v, want %v",
				o.sw, swTech[o.sw], o.res.XID, o.res.Outcome, want)
		}
		if o.res.Latency < 0 {
			t.Fatalf("%s xid %d negative latency %v", o.sw, o.res.XID, o.res.Latency)
		}
	}
	total := counts[OutcomeInstalled] + counts[OutcomeFallback]
	if total != nSwitches*nUpdates {
		t.Fatalf("resolved %d updates, want %d", total, nSwitches*nUpdates)
	}
	if counts[OutcomeFallback] == 0 {
		t.Fatal("no fallback outcomes: the general-probing switches did not exercise their path")
	}

	acks, _, fallbacks := r.Stats()
	if acks != uint64(nSwitches*nUpdates) {
		t.Fatalf("Stats reports %d acks, want %d", acks, nSwitches*nUpdates)
	}
	if fallbacks == 0 {
		t.Fatal("Stats reports zero fallbacks despite general-probing switches")
	}
}

// TestWallClockDetachReattach cycles a wall-clock (pump-goroutine) switch
// through detach-during-churn and reattach: the new session's shard must
// flush normally — a drain flag stranded by the old pump would wedge
// every post-reattach update forever.
func TestWallClockDetachReattach(t *testing.T) {
	clk := sim.NewWall()
	r, err := New(Config{Clock: clk, Technique: TechBarriers}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	attach := func() transport.Conn {
		ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
		rumSide, swSide := transport.Pipe(clk, 0)
		swSide.SetHandler(func(m of.Message) {
			if br, ok := m.(*of.BarrierRequest); ok {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
			}
		})
		ctrlTop.SetHandler(func(of.Message) {})
		if _, err := r.AttachSwitch("s1", 1, ctrlBottom, rumSide); err != nil {
			t.Fatal(err)
		}
		return ctrlTop
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for cycle := 0; cycle < 5; cycle++ {
		conn := attach()
		var handles []*UpdateHandle
		for u := 0; u < 50; u++ {
			xid := uint32(cycle*1000 + u + 1)
			handles = append(handles, r.Watch("s1", xid))
			if err := conn.Send(testFlowMod(xid)); err != nil {
				t.Fatal(err)
			}
		}
		// Detach mid-churn: whatever is unresolved must fail, not hang.
		if !r.DetachSwitch("s1") {
			t.Fatalf("cycle %d: DetachSwitch reported not attached", cycle)
		}
		for _, h := range handles {
			if _, err := h.AwaitAck(ctx); err != nil {
				t.Fatalf("cycle %d xid %d: future wedged across detach: %v", cycle, h.XID(), err)
			}
		}
	}
	// A final clean cycle: everything must confirm as installed.
	conn := attach()
	var handles []*UpdateHandle
	for u := 0; u < 50; u++ {
		xid := uint32(9000 + u)
		handles = append(handles, r.Watch("s1", xid))
		if err := conn.Send(testFlowMod(xid)); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range handles {
		res, err := h.AwaitAck(ctx)
		if err != nil {
			t.Fatalf("post-reattach xid %d wedged: %v", h.XID(), err)
		}
		if res.Outcome != OutcomeInstalled {
			t.Fatalf("post-reattach xid %d outcome %v, want installed", h.XID(), res.Outcome)
		}
	}
	r.DetachSwitch("s1")
}

// TestFaultInjectedDetachChurn extends the detach-race churn with the
// fault layer: the switch conn randomly drops messages and cuts itself
// mid-batch (ActCut during a shard flush), the cut detaches the session
// from a timer goroutine while the driver is still sending, and the
// cycle ends with an explicit detach racing whatever is in flight. Under
// -race this certifies the recovery path's concurrency; the refcount
// check certifies that a conn fault-killed mid-encode leaks no wireQ
// references and no pooled updates.
func TestFaultInjectedDetachChurn(t *testing.T) {
	clk := sim.NewWall()
	r, err := New(Config{
		Clock:        clk,
		Technique:    TechTimeout,
		Timeout:      2 * time.Millisecond,
		BarrierRetry: 5 * time.Millisecond, // fast liveness net: dropped replies re-emit quickly
	}, NewTopology(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Earlier wall-clock tests in this package may still be draining
	// emission tails on timer goroutines; let the package-global
	// refcount settle before baselining it, or a late release would
	// read as a spurious "leak" below.
	before := LiveUpdates()
	for settle := time.Now().Add(5 * time.Second); ; {
		time.Sleep(20 * time.Millisecond)
		cur := LiveUpdates()
		if cur == before || time.Now().After(settle) {
			before = cur
			break
		}
		before = cur
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const cycles = 8
	const nUpdates = 100
	for cycle := 0; cycle < cycles; cycle++ {
		inj := faults.NewInjector(int64(cycle + 1))
		plan := &faults.Plan{Rules: []faults.Rule{
			{Action: faults.ActCut, Prob: 0.002, Dir: faults.DirToSwitch},
			{Action: faults.ActDrop, Prob: 0.05},
		}}
		ctrlTop, ctrlBottom := transport.Pipe(clk, 0)
		rumSide, swSide := transport.Pipe(clk, 0)
		swSide.SetHandler(func(m of.Message) {
			if br, ok := m.(*of.BarrierRequest); ok {
				rep := of.AcquireBarrierReply()
				rep.SetXID(br.GetXID())
				_ = swSide.Send(rep)
			}
		})
		ctrlTop.SetHandler(func(of.Message) {})
		wrapped := faults.Wrap(rumSide, clk, inj, plan).(*faults.Conn)
		wrapped.OnKill(func() { r.DetachSwitchCause("s1", ErrChannelLost) })
		if _, err := r.AttachSwitch("s1", 1, ctrlBottom, wrapped); err != nil {
			t.Fatal(err)
		}

		// Watch everything before sending anything: a mid-churn cut
		// detaches from a timer goroutine, and futures registered after
		// its failAllWatchers sweep would never resolve.
		handles := make([]*UpdateHandle, nUpdates)
		for u := range handles {
			handles[u] = r.Watch("s1", uint32(cycle*1000+u+1))
		}
		for u := range handles {
			_ = ctrlTop.Send(testFlowMod(uint32(cycle*1000 + u + 1)))
		}
		// Detach races in-flight flushes (and possibly the fault cut's
		// own detach — a second detach is a no-op).
		r.DetachSwitchCause("s1", ErrChannelLost)

		for _, h := range handles {
			res, err := h.AwaitAck(ctx)
			if err != nil {
				t.Fatalf("cycle %d xid %d wedged across fault-killed detach: %v", cycle, h.XID(), err)
			}
			if res.Outcome == OutcomeFailed && !errors.Is(res.Err, ErrChannelLost) {
				t.Fatalf("cycle %d xid %d failed without typed cause: %v", cycle, h.XID(), res.Err)
			}
		}
	}

	// Emission tails (listener calls, releases) may still be running on
	// timer goroutines right after the last future resolves; poll the
	// refcount back to its pre-churn value.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if LiveUpdates() == before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled-update refcount leak: %d live before churn, %d after", before, LiveUpdates())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
