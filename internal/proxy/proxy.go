// Package proxy is the transparent interception framework RUM is built on:
// a per-switch Session splices the switch-side and controller-side control
// channels through a chain of Layers. A layer can pass messages through,
// hold them, drop them, or inject new ones in either direction — the
// "more active role" (buffer, rate-limit, remove or add messages) the paper
// contrasts with FlowVisor-style slicers (§2). Layers compose like the
// paper's chain of POX proxies (§4): the barrier layer is just another
// element stacked on the acknowledgment layer.
package proxy

import (
	"sync"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// Layer processes messages crossing the proxy. Index 0 is closest to the
// controller; the last layer is closest to the switch. Implementations
// must be safe for concurrent calls when used over TCP transports.
type Layer interface {
	// FromController handles a controller→switch message. Call
	// ctx.ToSwitch to continue toward the switch.
	FromController(ctx *Context, m of.Message)
	// FromSwitch handles a switch→controller message. Call
	// ctx.ToController to continue toward the controller.
	FromSwitch(ctx *Context, m of.Message)
}

// Pass is a Layer that forwards everything unchanged; embed it to override
// one direction only.
type Pass struct{}

// FromController implements Layer by forwarding toward the switch.
func (Pass) FromController(ctx *Context, m of.Message) { ctx.ToSwitch(m) }

// FromSwitch implements Layer by forwarding toward the controller.
func (Pass) FromSwitch(ctx *Context, m of.Message) { ctx.ToController(m) }

// Session is one switch's proxied control channel.
type Session struct {
	name   string
	dpid   uint64
	clk    sim.Clock
	swConn transport.Conn
	ctConn transport.Conn
	layers []Layer
	ctxs   []*Context

	mu     sync.Mutex
	closed bool
}

// NewSession wires a session: ctrlConn faces the controller, swConn faces
// the switch, and layers[0] is the controller-nearest layer. Message flow
// starts immediately.
func NewSession(name string, dpid uint64, clk sim.Clock, ctrlConn, swConn transport.Conn, layers ...Layer) *Session {
	s := &Session{
		name:   name,
		dpid:   dpid,
		clk:    clk,
		swConn: swConn,
		ctConn: ctrlConn,
		layers: layers,
	}
	s.ctxs = make([]*Context, len(layers))
	for i := range layers {
		s.ctxs[i] = &Context{s: s, idx: i}
	}
	ctrlConn.SetHandler(func(m of.Message) { s.fromController(0, m) })
	swConn.SetHandler(func(m of.Message) { s.fromSwitch(len(layers)-1, m) })
	return s
}

// Name returns the switch name this session proxies.
func (s *Session) Name() string { return s.name }

// DPID returns the switch's datapath id.
func (s *Session) DPID() uint64 { return s.dpid }

// Clock returns the session clock.
func (s *Session) Clock() sim.Clock { return s.clk }

// fromController delivers m to layer idx (toward the switch).
func (s *Session) fromController(idx int, m of.Message) {
	if idx >= len(s.layers) {
		_ = s.swConn.Send(m)
		return
	}
	s.layers[idx].FromController(s.ctxs[idx], m)
}

// fromSwitch delivers m to layer idx (toward the controller).
func (s *Session) fromSwitch(idx int, m of.Message) {
	if idx < 0 {
		_ = s.ctConn.Send(m)
		return
	}
	s.layers[idx].FromSwitch(s.ctxs[idx], m)
}

// InjectFromController feeds a message into the top of the layer chain,
// exactly as if the controller-side conn had delivered it: every layer
// (barrier buffering, acknowledgment tracking) observes it. Recovery
// paths use it to re-issue in-flight modifications adopted from a dead
// proxy without bypassing the acknowledgment machinery.
func (s *Session) InjectFromController(m of.Message) { s.fromController(0, m) }

// SendToSwitch injects a message below the whole chain, directly to the
// switch (used for out-of-band traffic such as probe PacketOuts on
// neighbor switches).
func (s *Session) SendToSwitch(m of.Message) { _ = s.swConn.Send(m) }

// SendToController injects a message above the whole chain, directly to
// the controller.
func (s *Session) SendToController(m of.Message) { _ = s.ctConn.Send(m) }

// Close shuts both underlying conns.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	_ = s.ctConn.Close()
	return s.swConn.Close()
}

// Context is a layer's handle on its session, bound to the layer's
// position in the chain.
type Context struct {
	s   *Session
	idx int
}

// ToSwitch continues a message toward the switch from this layer.
func (c *Context) ToSwitch(m of.Message) { c.s.fromController(c.idx+1, m) }

// ToController continues a message toward the controller from this layer.
func (c *Context) ToController(m of.Message) { c.s.fromSwitch(c.idx-1, m) }

// Session returns the owning session.
func (c *Context) Session() *Session { return c.s }

// Clock returns the session clock.
func (c *Context) Clock() sim.Clock { return c.s.clk }
