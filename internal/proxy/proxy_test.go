package proxy

import (
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// tagLayer stamps an increasing xid offset so chain order is observable.
type tagLayer struct {
	name   string
	seenFC []of.MsgType
	seenFS []of.MsgType
	dropFC bool
	inject of.Message
}

func (l *tagLayer) FromController(ctx *Context, m of.Message) {
	l.seenFC = append(l.seenFC, m.MsgType())
	if l.dropFC {
		return
	}
	if l.inject != nil {
		ctx.ToSwitch(l.inject)
	}
	ctx.ToSwitch(m)
}

func (l *tagLayer) FromSwitch(ctx *Context, m of.Message) {
	l.seenFS = append(l.seenFS, m.MsgType())
	ctx.ToController(m)
}

type rig struct {
	sim      *sim.Sim
	ctrl     transport.Conn // controller's end
	sw       transport.Conn // switch's end
	toSwitch []of.Message
	toCtrl   []of.Message
}

func newRig(t *testing.T, layers ...Layer) (*rig, *Session) {
	t.Helper()
	s := sim.New()
	ctrlTop, ctrlBottom := transport.Pipe(s, time.Millisecond)
	swTop, swBottom := transport.Pipe(s, time.Millisecond)
	r := &rig{sim: s, ctrl: ctrlTop, sw: swBottom}
	sess := NewSession("sw1", 7, s, ctrlBottom, swTop, layers...)
	r.ctrl.SetHandler(func(m of.Message) { r.toCtrl = append(r.toCtrl, m) })
	r.sw.SetHandler(func(m of.Message) { r.toSwitch = append(r.toSwitch, m) })
	return r, sess
}

func TestPassThroughBothDirections(t *testing.T) {
	r, sess := newRig(t, Pass{})
	if sess.Name() != "sw1" || sess.DPID() != 7 {
		t.Errorf("session identity = %s/%d", sess.Name(), sess.DPID())
	}
	_ = r.ctrl.Send(&of.Hello{})
	_ = r.sw.Send(&of.EchoRequest{})
	r.sim.Run()
	if len(r.toSwitch) != 1 || r.toSwitch[0].MsgType() != of.TypeHello {
		t.Errorf("switch received %v", r.toSwitch)
	}
	if len(r.toCtrl) != 1 || r.toCtrl[0].MsgType() != of.TypeEchoRequest {
		t.Errorf("controller received %v", r.toCtrl)
	}
}

func TestEmptyChainForwards(t *testing.T) {
	r, _ := newRig(t)
	_ = r.ctrl.Send(&of.BarrierRequest{})
	r.sim.Run()
	if len(r.toSwitch) != 1 {
		t.Fatalf("empty chain did not forward: %v", r.toSwitch)
	}
}

func TestChainOrder(t *testing.T) {
	l1 := &tagLayer{name: "l1"}
	l2 := &tagLayer{name: "l2"}
	r, _ := newRig(t, l1, l2)
	_ = r.ctrl.Send(&of.Hello{})
	_ = r.sw.Send(&of.EchoReply{})
	r.sim.Run()
	// Controller→switch visits l1 then l2; switch→controller visits l2
	// then l1.
	if len(l1.seenFC) != 1 || len(l2.seenFC) != 1 {
		t.Fatal("layers did not see controller message")
	}
	if len(l1.seenFS) != 1 || len(l2.seenFS) != 1 {
		t.Fatal("layers did not see switch message")
	}
}

func TestLayerCanDrop(t *testing.T) {
	l := &tagLayer{dropFC: true}
	r, _ := newRig(t, l)
	_ = r.ctrl.Send(&of.Hello{})
	r.sim.Run()
	if len(r.toSwitch) != 0 {
		t.Errorf("dropped message reached switch: %v", r.toSwitch)
	}
}

func TestLayerCanInject(t *testing.T) {
	l := &tagLayer{inject: &of.BarrierRequest{}}
	r, _ := newRig(t, l)
	_ = r.ctrl.Send(&of.Hello{})
	r.sim.Run()
	if len(r.toSwitch) != 2 {
		t.Fatalf("switch received %d messages, want 2 (injected + original)", len(r.toSwitch))
	}
	if r.toSwitch[0].MsgType() != of.TypeBarrierRequest || r.toSwitch[1].MsgType() != of.TypeHello {
		t.Errorf("order = %v, %v", r.toSwitch[0].MsgType(), r.toSwitch[1].MsgType())
	}
}

func TestDirectSendsBypassChain(t *testing.T) {
	l := &tagLayer{}
	r, sess := newRig(t, l)
	sess.SendToSwitch(&of.BarrierRequest{})
	sess.SendToController(&of.BarrierReply{})
	r.sim.Run()
	if len(l.seenFC) != 0 || len(l.seenFS) != 0 {
		t.Error("direct sends passed through the chain")
	}
	if len(r.toSwitch) != 1 || len(r.toCtrl) != 1 {
		t.Errorf("direct sends not delivered: %d/%d", len(r.toSwitch), len(r.toCtrl))
	}
}

func TestClose(t *testing.T) {
	_, sess := newRig(t, Pass{})
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
