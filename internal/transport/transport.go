// Package transport carries OpenFlow messages between controllers, RUM
// proxies and switches. Two implementations share one interface: Pipe
// builds an in-memory connection pair whose delivery is driven by a
// simulated clock (deterministic experiments), and TCP wraps a net.Conn
// with OpenFlow framing (real deployments). RUM layers are written against
// Conn and run unchanged over either.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

// Handler consumes received messages. Handlers must not block: in
// simulation they run on the simulator goroutine; over TCP they run on the
// connection's reader goroutine.
type Handler func(m of.Message)

// Conn is an asynchronous, message-oriented OpenFlow channel endpoint.
type Conn interface {
	// Send queues m for delivery to the peer. It never blocks.
	Send(m of.Message) error
	// SetHandler installs the receive callback. Messages arriving before a
	// handler is installed are buffered and delivered on installation, in
	// order.
	SetHandler(h Handler)
	// Close tears the connection down; the peer's handler receives no
	// further messages.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: connection closed")

// pipeEnd is one end of an in-memory connection pair.
type pipeEnd struct {
	clock   sim.Clock
	latency time.Duration

	mu      sync.Mutex
	peer    *pipeEnd
	handler Handler
	backlog []of.Message
	closed  bool
}

// Pipe creates a connected pair of in-memory conns with the given one-way
// delivery latency, clocked by clk. Message structs are passed by pointer
// without re-encoding; senders must not mutate a message after Send.
func Pipe(clk sim.Clock, latency time.Duration) (a, b Conn) {
	ea := &pipeEnd{clock: clk, latency: latency}
	eb := &pipeEnd{clock: clk, latency: latency}
	ea.peer = eb
	eb.peer = ea
	return ea, eb
}

func (e *pipeEnd) Send(m of.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	peer := e.peer
	e.mu.Unlock()
	e.clock.After(e.latency, func() { peer.deliver(m) })
	return nil
}

func (e *pipeEnd) deliver(m of.Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	h := e.handler
	if h == nil {
		e.backlog = append(e.backlog, m)
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	h(m)
}

func (e *pipeEnd) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	backlog := e.backlog
	e.backlog = nil
	e.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (e *pipeEnd) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

// tcpConn adapts a stream connection (normally TCP) to Conn with OpenFlow
// framing. Sends are serialized through a writer goroutine so Send never
// blocks on the network.
type tcpConn struct {
	nc     net.Conn
	sendCh chan of.Message

	mu      sync.Mutex
	handler Handler
	backlog []of.Message
	closed  bool
	readErr error

	done chan struct{}
}

// NewTCP wraps an established stream connection. The caller owns protocol
// behaviour (hello exchange etc.); NewTCP only frames messages.
func NewTCP(nc net.Conn) Conn {
	c := &tcpConn{
		nc:     nc,
		sendCh: make(chan of.Message, 1024),
		done:   make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	return c
}

// Dial connects to an OpenFlow endpoint over TCP.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}

func (c *tcpConn) readLoop() {
	for {
		m, err := of.ReadMessage(c.nc)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		c.mu.Lock()
		h := c.handler
		if h == nil {
			c.backlog = append(c.backlog, m)
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		h(m)
	}
}

func (c *tcpConn) writeLoop() {
	for {
		select {
		case m := <-c.sendCh:
			if err := of.WriteMessage(c.nc, m); err != nil {
				c.Close()
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *tcpConn) Send(m of.Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	select {
	case c.sendCh <- m:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *tcpConn) SetHandler(h Handler) {
	c.mu.Lock()
	c.handler = h
	backlog := c.backlog
	c.backlog = nil
	c.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.nc.Close()
}
