// Package transport carries OpenFlow messages between controllers, RUM
// proxies and switches. Two implementations share one interface: Pipe
// builds an in-memory connection pair whose delivery is driven by a
// simulated clock (deterministic experiments), and TCP wraps a net.Conn
// with OpenFlow framing (real deployments). RUM layers are written against
// Conn and run unchanged over either.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

// Handler consumes received messages. Handlers must not block: in
// simulation they run on the simulator goroutine; over TCP they run on the
// connection's reader goroutine.
type Handler func(m of.Message)

// Conn is an asynchronous, message-oriented OpenFlow channel endpoint.
type Conn interface {
	// Send queues m for delivery to the peer. It never blocks.
	Send(m of.Message) error
	// SetHandler installs the receive callback. Messages arriving before a
	// handler is installed are buffered and delivered on installation, in
	// order.
	SetHandler(h Handler)
	// Close tears the connection down; the peer's handler receives no
	// further messages.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: connection closed")

// BatchSender is implemented by conns that can hand a whole batch to the
// wire in one operation — one scheduled delivery for an in-memory pipe,
// one writer hand-off for TCP — preserving message order. RUM's per-switch
// shards use it to amortize transport overhead across a flush.
type BatchSender interface {
	// SendBatch queues ms for in-order delivery to the peer. Like Send it
	// never blocks. The slice is retained until delivery: the caller must
	// hand over ownership and not reuse it.
	SendBatch(ms []of.Message) error
}

// pipeEnd is one end of an in-memory connection pair.
//
// Delivery is strictly FIFO per direction: every send is stamped with a
// sequence number under the sender's lock, and the receiving end releases
// arrivals in stamp order. Under the single-threaded simulated clock this
// changes nothing; under a wall clock — where each scheduled delivery
// runs on its own timer goroutine and same-deadline timers fire in
// unspecified order — it is what upholds the in-order contract RUM's
// barrier semantics are built on.
type pipeEnd struct {
	clock   sim.Clock
	latency time.Duration

	mu      sync.Mutex
	peer    *pipeEnd
	handler Handler
	backlog []of.Message
	closed  bool

	txSeq      uint64                  // next sequence stamp for sends from this end
	rxNext     uint64                  // next stamp due for delivery at this end
	rxPend     map[uint64][]of.Message // out-of-order arrivals awaiting predecessors
	delivering bool                    // a goroutine is draining rxPend in order
}

// Pipe creates a connected pair of in-memory conns with the given one-way
// delivery latency, clocked by clk. Message structs are passed by pointer
// without re-encoding; senders must not mutate a message after Send.
func Pipe(clk sim.Clock, latency time.Duration) (a, b Conn) {
	ea := &pipeEnd{clock: clk, latency: latency}
	eb := &pipeEnd{clock: clk, latency: latency}
	ea.peer = eb
	eb.peer = ea
	return ea, eb
}

func (e *pipeEnd) Send(m of.Message) error {
	return e.send([]of.Message{m})
}

// SendBatch implements BatchSender: the whole batch rides one scheduled
// delivery (messages keep their order and share the link latency).
func (e *pipeEnd) SendBatch(ms []of.Message) error {
	if len(ms) == 0 {
		return nil
	}
	return e.send(ms)
}

func (e *pipeEnd) send(ms []of.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	peer := e.peer
	seq := e.txSeq
	e.txSeq++
	e.mu.Unlock()
	e.clock.After(e.latency, func() { peer.arrive(seq, ms) })
	return nil
}

// arrive accepts one send's messages at the receiving end and releases
// pending arrivals in stamp order. The first goroutine in becomes the
// drainer; later (possibly earlier-stamped) arrivals just park their
// payload and leave, so handlers run in order on exactly one goroutine at
// a time.
func (e *pipeEnd) arrive(seq uint64, ms []of.Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.rxPend == nil {
		e.rxPend = make(map[uint64][]of.Message)
	}
	e.rxPend[seq] = ms
	if e.delivering {
		e.mu.Unlock()
		return
	}
	e.delivering = true
	for !e.closed {
		due, ok := e.rxPend[e.rxNext]
		if !ok {
			break
		}
		delete(e.rxPend, e.rxNext)
		e.rxNext++
		h := e.handler
		if h == nil {
			e.backlog = append(e.backlog, due...)
			continue
		}
		e.mu.Unlock()
		for _, m := range due {
			h(m)
		}
		e.mu.Lock()
	}
	e.delivering = false
	e.mu.Unlock()
}

func (e *pipeEnd) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	backlog := e.backlog
	e.backlog = nil
	e.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (e *pipeEnd) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

// tcpConn adapts a stream connection (normally TCP) to Conn with OpenFlow
// framing. Sends are serialized through a writer goroutine so Send never
// blocks on the network.
type tcpConn struct {
	nc     net.Conn
	sendCh chan of.Message

	mu      sync.Mutex
	handler Handler
	backlog []of.Message
	closed  bool
	readErr error

	done chan struct{}
}

// NewTCP wraps an established stream connection. The caller owns protocol
// behaviour (hello exchange etc.); NewTCP only frames messages.
func NewTCP(nc net.Conn) Conn {
	c := &tcpConn{
		nc:     nc,
		sendCh: make(chan of.Message, 1024),
		done:   make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	return c
}

// Dial connects to an OpenFlow endpoint over TCP.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}

func (c *tcpConn) readLoop() {
	for {
		m, err := of.ReadMessage(c.nc)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		c.mu.Lock()
		h := c.handler
		if h == nil {
			c.backlog = append(c.backlog, m)
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		h(m)
	}
}

func (c *tcpConn) writeLoop() {
	for {
		select {
		case m := <-c.sendCh:
			if err := of.WriteMessage(c.nc, m); err != nil {
				c.Close()
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *tcpConn) Send(m of.Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	select {
	case c.sendCh <- m:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// SendBatch implements BatchSender over the writer channel; the batch
// stays in order because Send is the only producer path and the caller
// owns batch ordering.
func (c *tcpConn) SendBatch(ms []of.Message) error {
	for _, m := range ms {
		if err := c.Send(m); err != nil {
			return err
		}
	}
	return nil
}

func (c *tcpConn) SetHandler(h Handler) {
	c.mu.Lock()
	c.handler = h
	backlog := c.backlog
	c.backlog = nil
	c.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.nc.Close()
}
