// Package transport carries OpenFlow messages between controllers, RUM
// proxies and switches. Two implementations share one interface: Pipe
// builds an in-memory connection pair whose delivery is driven by a
// simulated clock (deterministic experiments), and TCP wraps a net.Conn
// with OpenFlow framing and a coalescing, zero-allocation writer (real
// deployments). RUM layers are written against Conn and run unchanged
// over either; internal/faults wraps any Conn with deterministic fault
// injection. Who owns a message after Send — and when it may be
// recycled — is governed by the FrameEncoder marker; the full
// buffer-ownership contract is documented in docs/ARCHITECTURE.md.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

// Handler consumes received messages. Handlers must not block: in
// simulation they run on the simulator goroutine; over TCP they run on the
// connection's reader goroutine.
type Handler func(m of.Message)

// Conn is an asynchronous, message-oriented OpenFlow channel endpoint.
type Conn interface {
	// Send queues m for delivery to the peer. It never blocks.
	Send(m of.Message) error
	// SetHandler installs the receive callback. Messages arriving before a
	// handler is installed are buffered and delivered on installation, in
	// order.
	SetHandler(h Handler)
	// Close tears the connection down; the peer's handler receives no
	// further messages.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: connection closed")

// ErrOverloaded is returned by bounded conns whose pending-send buffer is
// full and whose overload policy is OverloadShed (or whose OverloadBlock
// deadline expired): the message was NOT queued and the caller must treat
// it as failed, not silently dropped. Match with errors.Is.
var ErrOverloaded = errors.New("transport: send queue overloaded")

// OverloadPolicy selects what a bounded queue does with a message that
// arrives while the queue is at its configured limit. It is shared by
// the transport writer bound (TCPOptions) and RUM's per-switch shard
// outbox bound (core.Config); docs/OVERLOAD.md is the long-form
// contract.
type OverloadPolicy uint8

const (
	// OverloadBlock makes the sender wait, up to a deadline, for the
	// queue to drain; deadline expiry fails with ErrOverloaded. This is
	// the default: backpressure propagates to the producer instead of
	// growing memory. Under a single-threaded simulated clock blocking
	// would deadlock the event loop, so Block degrades to immediate
	// deadline expiry there.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed fails the send fast with ErrOverloaded — never a
	// silent drop: the caller (RUM's ack layer) resolves the affected
	// future with a typed cause.
	OverloadShed
	// OverloadDegrade treats sustained queue pressure as a slow consumer:
	// RUM's shard widens its batch coalescing window (fewer, larger
	// flushes) and, at the hard limit, behaves like OverloadBlock. At the
	// transport layer it is equivalent to OverloadBlock.
	OverloadDegrade
)

func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadShed:
		return "shed"
	case OverloadDegrade:
		return "degrade"
	default:
		return "unknown"
	}
}

// ParseOverloadPolicy maps the flag spellings (block, shed, degrade) to a
// policy.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "", "block":
		return OverloadBlock, nil
	case "shed":
		return OverloadShed, nil
	case "degrade":
		return OverloadDegrade, nil
	default:
		return 0, fmt.Errorf("transport: unknown overload policy %q (want block, shed, or degrade)", s)
	}
}

// BatchSender is implemented by conns that can hand a whole batch to the
// wire in one operation — one scheduled delivery for an in-memory pipe,
// one coalesced flush for TCP — preserving message order. RUM's per-switch
// shards use it to amortize transport overhead across a flush.
type BatchSender interface {
	// SendBatch queues ms for in-order delivery to the peer. Like Send it
	// never blocks. The conn may retain the slice until delivery: the
	// caller must hand over ownership and not reuse it.
	SendBatch(ms []of.Message) error
}

// PartialBatchSender is implemented by conns that can apply backpressure
// mid-batch: SendBatchPartial queues an in-order prefix of ms and reports
// how many messages it accepted. n < len(ms) with a nil error means the
// conn's pending bound filled; the caller keeps ownership of ms[n:] and
// retries them later (RUM's shard flush re-queues the suffix at the front
// of its outbox). Unlike SendBatch, the conn never retains the slice.
type PartialBatchSender interface {
	SendBatchPartial(ms []of.Message) (int, error)
}

// FrameEncoder is implemented by conns that serialize each message into
// wire bytes while Send/SendBatch runs: once the call returns, the conn
// holds no reference to the message struct and the caller regains
// exclusive ownership (it may recycle the message via of.Release). Pipes
// deliver message structs by pointer and therefore do not implement it.
type FrameEncoder interface {
	// EncodesFrames reports whether sends copy messages into wire form
	// before returning.
	EncodesFrames() bool
}

// EncodesFrames reports whether c copies messages into wire bytes during
// Send, i.e. whether the sender keeps exclusive ownership of sent message
// structs.
func EncodesFrames(c Conn) bool {
	fe, ok := c.(FrameEncoder)
	return ok && fe.EncodesFrames()
}

// pipeEnd is one end of an in-memory connection pair.
//
// Delivery is strictly FIFO per direction: every send is stamped with a
// sequence number under the sender's lock, and the receiving end releases
// arrivals in stamp order. Under the single-threaded simulated clock this
// changes nothing; under a wall clock — where each scheduled delivery
// runs on its own timer goroutine and same-deadline timers fire in
// unspecified order — it is what upholds the in-order contract RUM's
// barrier semantics are built on.
type pipeEnd struct {
	clock   sim.Clock
	latency time.Duration

	mu      sync.Mutex
	peer    *pipeEnd
	handler Handler
	backlog []of.Message
	closed  bool

	txSeq      uint64                  // next sequence stamp for sends from this end
	rxNext     uint64                  // next stamp due for delivery at this end
	rxPend     map[uint64][]of.Message // out-of-order arrivals awaiting predecessors
	delivering bool                    // a goroutine is draining rxPend in order
}

// Pipe creates a connected pair of in-memory conns with the given one-way
// delivery latency, clocked by clk. Message structs are passed by pointer
// without re-encoding; senders must not mutate a message after Send.
func Pipe(clk sim.Clock, latency time.Duration) (a, b Conn) {
	ea := &pipeEnd{clock: clk, latency: latency}
	eb := &pipeEnd{clock: clk, latency: latency}
	ea.peer = eb
	eb.peer = ea
	return ea, eb
}

func (e *pipeEnd) Send(m of.Message) error {
	return e.send([]of.Message{m})
}

// SendBatch implements BatchSender: the whole batch rides one scheduled
// delivery (messages keep their order and share the link latency).
func (e *pipeEnd) SendBatch(ms []of.Message) error {
	if len(ms) == 0 {
		return nil
	}
	return e.send(ms)
}

func (e *pipeEnd) send(ms []of.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	peer := e.peer
	seq := e.txSeq
	e.txSeq++
	e.mu.Unlock()
	e.clock.After(e.latency, func() { peer.arrive(seq, ms) })
	return nil
}

// arrive accepts one send's messages at the receiving end and releases
// pending arrivals in stamp order. The first goroutine in becomes the
// drainer; later (possibly earlier-stamped) arrivals just park their
// payload and leave, so handlers run in order on exactly one goroutine at
// a time.
func (e *pipeEnd) arrive(seq uint64, ms []of.Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.rxPend == nil {
		e.rxPend = make(map[uint64][]of.Message)
	}
	e.rxPend[seq] = ms
	if e.delivering {
		e.mu.Unlock()
		return
	}
	e.delivering = true
	for !e.closed {
		due, ok := e.rxPend[e.rxNext]
		if !ok {
			break
		}
		delete(e.rxPend, e.rxNext)
		e.rxNext++
		h := e.handler
		if h == nil {
			e.backlog = append(e.backlog, due...)
			continue
		}
		e.mu.Unlock()
		for _, m := range due {
			h(m)
		}
		e.mu.Lock()
	}
	e.delivering = false
	// Go maps never shrink their bucket arrays: a burst of out-of-order
	// deliveries would pin the high-water mark of reorder buffers for the
	// life of the pipe. Drop the map whenever it drains so long-lived
	// wall-clock pipes return that memory.
	if len(e.rxPend) == 0 {
		e.rxPend = nil
	}
	e.mu.Unlock()
}

func (e *pipeEnd) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	backlog := e.backlog
	e.backlog = nil
	e.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (e *pipeEnd) Close() error {
	e.mu.Lock()
	e.closed = true
	e.rxPend = nil
	e.mu.Unlock()
	return nil
}

// tcpConn adapts a stream connection (normally TCP) to Conn with OpenFlow
// framing and a coalescing writer: Send serializes the frame into a
// pending write buffer and a dedicated writer goroutine flushes everything
// accumulated since the last flush in a single Write (a writev via
// net.Buffers when a burst spilled across buffers). A burst of N messages
// therefore costs one syscall, not N, and the encode path allocates
// nothing at steady state: write buffers cycle through a free list and
// frames are appended in place with of.MarshalAppend.
//
// The framing reader is pooled symmetrically: one buffered reader and one
// reusable frame buffer per connection, decoding hot message types into
// pooled structs.
type tcpConn struct {
	nc         net.Conn
	unbuffered bool
	opts       TCPOptions

	// Coalescing writer state (default mode).
	wmu     sync.Mutex
	wbuf    []byte      // frames accumulating toward the next flush
	wspill  net.Buffers // filled buffers awaiting the writer (burst overflow)
	wfree   [][]byte    // recycled flush buffers
	scratch net.Buffers // writer-owned flush snapshot (headers survive the write)
	wvecs   net.Buffers // writer-owned writev scratch (consumed by WriteTo)
	wake    chan struct{}
	// Bounded-writer state (opts.MaxPending > 0): pending counts queued
	// bytes not yet handed to the kernel; drain broadcasts when a flush
	// completes so OverloadBlock senders re-check; dead mirrors Close so
	// blocked senders exit.
	pending int
	drain   *sync.Cond // lazily bound to wmu when MaxPending > 0
	dead    bool

	// Unbuffered mode (the pre-coalescing baseline): one queued message
	// and one Write syscall per frame.
	sendCh chan of.Message

	mu      sync.Mutex
	handler Handler
	backlog []of.Message
	closed  bool
	readErr error

	done chan struct{}
}

// flushBufSize is the target capacity of one coalescing buffer; a buffer
// that reaches it is spilled to the writer queue and a fresh one started.
const flushBufSize = 64 << 10

// TCPOptions bounds the coalescing writer. The zero value keeps the
// historical unbounded behavior.
type TCPOptions struct {
	// MaxPending bounds the bytes queued in the coalescing writer but not
	// yet handed to the kernel (the coalescing buffer plus its spill
	// list). Zero means unbounded. One flush already snapshot by the
	// writer goroutine is additionally in flight, so peak memory is
	// bounded by roughly twice this value.
	MaxPending int
	// Policy selects OverloadBlock (default: Send waits up to
	// BlockDeadline for the writer to drain) or OverloadShed (Send fails
	// immediately with ErrOverloaded). OverloadDegrade behaves like
	// OverloadBlock here; the coalescing-window side of Degrade lives in
	// RUM's shard.
	Policy OverloadPolicy
	// BlockDeadline bounds the OverloadBlock wait (default 100ms);
	// expiry fails the send with ErrOverloaded.
	BlockDeadline time.Duration
}

// NewTCP wraps an established stream connection with the coalescing
// writer. The caller owns protocol behaviour (hello exchange etc.); NewTCP
// only frames messages.
func NewTCP(nc net.Conn) Conn {
	return NewTCPOpts(nc, TCPOptions{})
}

// NewTCPOpts is NewTCP with an explicit writer bound.
func NewTCPOpts(nc net.Conn, opts TCPOptions) Conn {
	if opts.MaxPending > 0 && opts.BlockDeadline == 0 {
		opts.BlockDeadline = 100 * time.Millisecond
	}
	c := &tcpConn{
		nc:   nc,
		opts: opts,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if opts.MaxPending > 0 {
		c.drain = sync.NewCond(&c.wmu)
	}
	go c.readLoop()
	go c.writeLoop()
	return c
}

// NewTCPUnbuffered wraps a stream connection with the historical
// one-Write-per-message path. It exists as the baseline the wire
// throughput benchmarks compare the coalescing writer against; production
// deployments should use NewTCP.
func NewTCPUnbuffered(nc net.Conn) Conn {
	c := &tcpConn{
		nc:         nc,
		unbuffered: true,
		sendCh:     make(chan of.Message, 1024),
		done:       make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoopUnbuffered()
	return c
}

// Dial connects to an OpenFlow endpoint over TCP.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCP(nc), nil
}

// EncodesFrames implements FrameEncoder: both TCP modes serialize the
// message during Send and retain no reference to the struct.
func (c *tcpConn) EncodesFrames() bool { return !c.unbuffered }

func (c *tcpConn) readLoop() {
	var read func() (of.Message, error)
	if c.unbuffered {
		read = func() (of.Message, error) { return of.ReadMessage(c.nc) }
	} else {
		mr := of.NewMessageReader(c.nc)
		read = mr.ReadMessage
	}
	for {
		m, err := read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			c.Close()
			return
		}
		c.mu.Lock()
		h := c.handler
		if h == nil {
			c.backlog = append(c.backlog, m)
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		h(m)
	}
}

// appendFrameLocked encodes m onto the current coalescing buffer, spilling
// a full buffer to the writer queue. Callers hold wmu.
func (c *tcpConn) appendFrameLocked(m of.Message) error {
	if c.wbuf == nil {
		if n := len(c.wfree); n > 0 {
			c.wbuf = c.wfree[n-1][:0]
			c.wfree[n-1] = nil
			c.wfree = c.wfree[:n-1]
		} else {
			c.wbuf = make([]byte, 0, flushBufSize)
		}
	}
	before := len(c.wbuf)
	buf, err := of.MarshalAppend(c.wbuf, m)
	if err != nil {
		return err
	}
	c.wbuf = buf
	c.pending += len(buf) - before
	if len(c.wbuf) >= flushBufSize {
		c.wspill = append(c.wspill, c.wbuf)
		c.wbuf = nil
	}
	return nil
}

// admitLocked enforces the writer bound for one send: it returns nil when
// the caller may append, ErrOverloaded when the bound is full and the
// policy (or its deadline) says fail, ErrClosed when the conn died while
// waiting. Callers hold wmu.
func (c *tcpConn) admitLocked() error {
	if c.opts.MaxPending <= 0 || c.pending < c.opts.MaxPending {
		return nil
	}
	if c.opts.Policy == OverloadShed {
		return ErrOverloaded
	}
	// OverloadBlock / OverloadDegrade: wait for the writer to drain, up
	// to the deadline. The timer broadcasts so the Wait wakes even when
	// no flush completes in time.
	deadline := time.Now().Add(c.opts.BlockDeadline)
	for !c.dead && c.pending >= c.opts.MaxPending {
		if !time.Now().Before(deadline) {
			return ErrOverloaded
		}
		t := time.AfterFunc(time.Until(deadline), c.drain.Broadcast)
		c.drain.Wait()
		t.Stop()
	}
	if c.dead {
		return ErrClosed
	}
	return nil
}

// nudge wakes the writer; the 1-slot channel makes repeated nudges free.
func (c *tcpConn) nudge() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *tcpConn) Send(m of.Message) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if c.unbuffered {
		select {
		case c.sendCh <- m:
			return nil
		case <-c.done:
			return ErrClosed
		}
	}
	c.wmu.Lock()
	err := c.admitLocked()
	if err == nil {
		err = c.appendFrameLocked(m)
	}
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	c.nudge()
	return nil
}

// SendBatch implements BatchSender: the whole batch is encoded under one
// lock acquisition and handed to the writer with one wake-up, so it rides
// at most two Writes (one per spilled buffer boundary) regardless of size.
func (c *tcpConn) SendBatch(ms []of.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if c.unbuffered {
		for _, m := range ms {
			if err := c.Send(m); err != nil {
				return err
			}
		}
		return nil
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.wmu.Lock()
	// One admission check covers the whole batch: the bound admits a send
	// whenever pending is below the limit, so a batch may overshoot by its
	// own size — batches come from RUM's shard, whose own outbox bound
	// already caps them.
	if err := c.admitLocked(); err != nil {
		c.wmu.Unlock()
		return err
	}
	for _, m := range ms {
		if err := c.appendFrameLocked(m); err != nil {
			c.wmu.Unlock()
			return err
		}
	}
	c.wmu.Unlock()
	c.nudge()
	return nil
}

// SendBatchPartial implements PartialBatchSender: messages are encoded in
// order until the writer bound fills, and the accepted count is returned
// without blocking — the backpressure signal RUM's shard flush turns into
// outbox re-queueing. Without a bound it accepts the whole batch.
func (c *tcpConn) SendBatchPartial(ms []of.Message) (int, error) {
	if c.unbuffered {
		for i, m := range ms {
			if err := c.Send(m); err != nil {
				return i, err
			}
		}
		return len(ms), nil
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	n := 0
	c.wmu.Lock()
	for _, m := range ms {
		if c.opts.MaxPending > 0 && c.pending >= c.opts.MaxPending {
			break
		}
		if err := c.appendFrameLocked(m); err != nil {
			c.wmu.Unlock()
			if n > 0 {
				c.nudge()
			}
			return n, err
		}
		n++
	}
	c.wmu.Unlock()
	if n > 0 {
		c.nudge()
	}
	return n, nil
}

func (c *tcpConn) writeLoop() {
	for {
		select {
		case <-c.wake:
			if !c.flushPending() {
				return
			}
		case <-c.done:
			return
		}
	}
}

// flushPending drains everything queued by Send/SendBatch. It returns
// false once the connection is dead. All buffers flushed together go to
// the kernel in one operation: a single Write in the common case, a writev
// via net.Buffers when a burst spilled across coalescing buffers.
func (c *tcpConn) flushPending() bool {
	for {
		c.wmu.Lock()
		bufs := append(c.scratch[:0], c.wspill...)
		c.wspill = c.wspill[:0]
		if len(c.wbuf) > 0 {
			bufs = append(bufs, c.wbuf)
			c.wbuf = nil
		}
		c.wmu.Unlock()
		if len(bufs) == 0 {
			c.scratch = bufs
			return true
		}
		var err error
		if len(bufs) == 1 {
			_, err = c.nc.Write(bufs[0])
		} else {
			// net.Buffers.WriteTo consumes what it writes: it nils the
			// elements of the slice it is given as they drain. Hand it a
			// separate snapshot (writer-owned, reused) so the headers in
			// bufs survive for recycling.
			c.wvecs = append(c.wvecs[:0], bufs...)
			_, err = c.wvecs.WriteTo(c.nc)
		}
		c.wmu.Lock()
		for i, b := range bufs {
			// The bytes count as pending until the kernel takes them, so
			// a bounded writer's limit covers write-in-flight memory too.
			c.pending -= len(b)
			if cap(b) >= flushBufSize && len(c.wfree) < 4 {
				c.wfree = append(c.wfree, b[:0])
			}
			bufs[i] = nil
		}
		c.scratch = bufs[:0]
		if c.drain != nil {
			c.drain.Broadcast()
		}
		c.wmu.Unlock()
		if err != nil {
			c.Close()
			return false
		}
	}
}

func (c *tcpConn) writeLoopUnbuffered() {
	for {
		select {
		case m := <-c.sendCh:
			if err := of.WriteMessage(c.nc, m); err != nil {
				c.Close()
				return
			}
		case <-c.done:
			return
		}
	}
}

func (c *tcpConn) SetHandler(h Handler) {
	c.mu.Lock()
	c.handler = h
	backlog := c.backlog
	c.backlog = nil
	c.mu.Unlock()
	for _, m := range backlog {
		h(m)
	}
}

func (c *tcpConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.drain != nil {
		// Wake OverloadBlock senders so they fail with ErrClosed instead
		// of waiting out their deadline on a dead conn.
		c.wmu.Lock()
		c.dead = true
		c.drain.Broadcast()
		c.wmu.Unlock()
	}
	close(c.done)
	return c.nc.Close()
}
