package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

func TestPipeDeliveryAndLatency(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 2*time.Millisecond)
	var gotAt time.Duration
	b.SetHandler(func(m of.Message) {
		if m.MsgType() != of.TypeBarrierRequest {
			t.Errorf("got %v, want barrier request", m.MsgType())
		}
		gotAt = s.Now()
	})
	if err := a.Send(&of.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotAt != 2*time.Millisecond {
		t.Errorf("delivered at %v, want 2ms", gotAt)
	}
}

func TestPipeOrderPreserved(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, time.Millisecond)
	var xids []uint32
	b.SetHandler(func(m of.Message) { xids = append(xids, m.GetXID()) })
	for i := uint32(1); i <= 20; i++ {
		fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd}
		fm.SetXID(i)
		if err := a.Send(fm); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(xids) != 20 {
		t.Fatalf("delivered %d messages, want 20", len(xids))
	}
	for i, x := range xids {
		if x != uint32(i+1) {
			t.Fatalf("reordered delivery: %v", xids)
		}
	}
}

func TestPipeBacklogBeforeHandler(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 0)
	_ = a.Send(&of.Hello{})
	_ = a.Send(&of.BarrierRequest{})
	s.Run() // delivered with no handler: buffered
	var got []of.MsgType
	b.SetHandler(func(m of.Message) { got = append(got, m.MsgType()) })
	if len(got) != 2 || got[0] != of.TypeHello || got[1] != of.TypeBarrierRequest {
		t.Fatalf("backlog delivery = %v", got)
	}
}

func TestPipeClose(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&of.Hello{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	// Messages in flight toward a closed endpoint are dropped silently.
	_ = b.Send(&of.Hello{})
	_ = b
	s.Run()
}

func TestTCPConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		msgs []of.Message
		mu   sync.Mutex
	}
	var res result
	done := make(chan struct{})

	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		server := NewTCP(nc)
		count := 0
		server.SetHandler(func(m of.Message) {
			res.mu.Lock()
			res.msgs = append(res.msgs, m)
			count++
			if count == 3 {
				close(done)
			}
			res.mu.Unlock()
			// Echo barriers back as replies.
			if m.MsgType() == of.TypeBarrierRequest {
				br := &of.BarrierReply{}
				br.SetXID(m.GetXID())
				_ = server.Send(br)
			}
		})
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply := make(chan of.Message, 1)
	client.SetHandler(func(m of.Message) { reply <- m })

	_ = client.Send(&of.Hello{})
	fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd, Priority: 7,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 1}}}
	fm.SetXID(42)
	_ = client.Send(fm)
	br := &of.BarrierRequest{}
	br.SetXID(43)
	_ = client.Send(br)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not receive 3 messages")
	}
	select {
	case m := <-reply:
		if m.MsgType() != of.TypeBarrierReply || m.GetXID() != 43 {
			t.Errorf("reply = %v xid=%d, want barrier reply 43", m.MsgType(), m.GetXID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no barrier reply")
	}

	res.mu.Lock()
	defer res.mu.Unlock()
	if len(res.msgs) != 3 {
		t.Fatalf("server saw %d messages, want 3", len(res.msgs))
	}
	gotFM, ok := res.msgs[1].(*of.FlowMod)
	if !ok || gotFM.Priority != 7 || gotFM.GetXID() != 42 {
		t.Errorf("flow mod did not survive framing: %#v", res.msgs[1])
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err == nil {
			_ = NewTCP(nc)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Send(&of.Hello{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close = %v, want nil", err)
	}
}

// tcpPair builds a connected loopback TCP conn pair in the given mode.
func tcpPair(t *testing.T, unbuffered bool) (client, server Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		nc  net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- res{nc, err}
	}()
	cnc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	mk := NewTCP
	if unbuffered {
		mk = NewTCPUnbuffered
	}
	client, server = mk(cnc), mk(r.nc)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestTCPCoalescedOrder drives a burst of mixed frames through the
// coalescing writer and checks nothing is lost, reordered, or corrupted.
func TestTCPCoalescedOrder(t *testing.T) {
	for _, unbuffered := range []bool{false, true} {
		name := "coalesced"
		if unbuffered {
			name = "unbuffered"
		}
		t.Run(name, func(t *testing.T) {
			client, server := tcpPair(t, unbuffered)
			const n = 5000
			total := n + n/97 // FlowMods plus interleaved barriers
			done := make(chan []of.Message, 1)
			var got []of.Message
			server.SetHandler(func(m of.Message) {
				got = append(got, m)
				if len(got) == total {
					done <- got
				}
			})
			var batch []of.Message
			for i := uint32(1); i <= n; i++ {
				fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd,
					Actions: []of.Action{of.ActionOutput{Port: uint16(i)}}}
				fm.SetXID(i)
				batch = append(batch, fm)
				if len(batch) == 16 {
					if err := client.(BatchSender).SendBatch(batch); err != nil {
						t.Fatal(err)
					}
					batch = nil
				}
				if i%97 == 0 {
					br := &of.BarrierRequest{}
					br.SetXID(i)
					if err := client.Send(br); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := client.(BatchSender).SendBatch(batch); err != nil {
				t.Fatal(err)
			}
			select {
			case msgs := <-done:
				// FlowMod xids 1..n must appear in order with their payloads
				// intact; barriers ride interleaved.
				wantMod := uint32(1)
				for _, m := range msgs {
					fm, ok := m.(*of.FlowMod)
					if !ok {
						continue
					}
					if fm.GetXID() != wantMod {
						t.Fatalf("flow_mod xid %d out of order (want %d)", fm.GetXID(), wantMod)
					}
					want := of.ActionOutput{Port: uint16(wantMod)}
					if len(fm.Actions) != 1 || fm.Actions[0] != want {
						t.Fatalf("flow_mod %d payload corrupted: %v", wantMod, fm.Actions)
					}
					wantMod++
				}
				if wantMod != n+1 {
					t.Fatalf("received %d flow_mods, want %d", wantMod-1, n)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out waiting for %d messages", total)
			}
		})
	}
}

// TestTCPCoalescedOrderStrict sends sequenced FlowMods only and asserts
// exact in-order delivery across flush boundaries.
func TestTCPCoalescedOrderStrict(t *testing.T) {
	client, server := tcpPair(t, false)
	const n = 20000 // enough to cross several 64k flush buffers
	done := make(chan struct{})
	next := uint32(1)
	server.SetHandler(func(m of.Message) {
		if m.GetXID() != next {
			t.Errorf("got xid %d, want %d", m.GetXID(), next)
		}
		next++
		if next == n+1 {
			close(done)
		}
	})
	for i := uint32(1); i <= n; i++ {
		fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd}
		fm.SetXID(i)
		if err := client.Send(fm); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out at xid %d", next)
	}
}

// TestTCPEncodesFrames checks the ownership marker: TCP conns serialize
// during Send, pipes hand over pointers.
func TestTCPEncodesFrames(t *testing.T) {
	client, _ := tcpPair(t, false)
	if !EncodesFrames(client) {
		t.Error("coalescing TCP conn must report EncodesFrames")
	}
	ub, _ := tcpPair(t, true)
	if EncodesFrames(ub) {
		t.Error("unbuffered TCP conn predates frame-ownership hand-back; must not report EncodesFrames")
	}
	s := sim.New()
	a, _ := Pipe(s, 0)
	if EncodesFrames(a) {
		t.Error("pipes pass structs by pointer; must not report EncodesFrames")
	}
}

// TestPipeRxPendShrinks checks that the out-of-order reorder map is
// dropped once it drains, so long-lived pipes do not retain their
// high-water mark of buffered sends.
func TestPipeRxPendShrinks(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, time.Millisecond)
	var got int
	b.SetHandler(func(of.Message) { got++ })
	for i := 0; i < 100; i++ {
		if err := a.Send(&of.BarrierRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if got != 100 {
		t.Fatalf("delivered %d, want 100", got)
	}
	be := b.(*pipeEnd)
	be.mu.Lock()
	defer be.mu.Unlock()
	if be.rxPend != nil {
		t.Errorf("rxPend retained after drain (len %d)", len(be.rxPend))
	}
}

// TestTCPWritevRecyclesBuffers forces a burst that spills across several
// coalescing buffers (the net.Buffers writev path) and checks the flush
// buffers come back to the free list — WriteTo consumes the slice it is
// handed, so recycling must work from a snapshot (regression test).
func TestTCPWritevRecyclesBuffers(t *testing.T) {
	client, server := tcpPair(t, false)
	const frames = 40
	payload := make([]byte, 8<<10)
	var batch []of.Message
	for i := 0; i < frames; i++ {
		er := &of.EchoRequest{Data: payload}
		er.SetXID(uint32(i + 1))
		batch = append(batch, er)
	}
	done := make(chan struct{})
	n := 0
	server.SetHandler(func(m of.Message) {
		if n++; n == frames {
			close(done)
		}
	})
	// One SendBatch holds the writer lock for the whole burst: ~320KB
	// spills across several 64KB buffers and the writer flushes them in
	// one multi-buffer writev.
	if err := client.(BatchSender).SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("received %d/%d frames", n, frames)
	}
	tc := client.(*tcpConn)
	tc.wmu.Lock()
	free := len(tc.wfree)
	tc.wmu.Unlock()
	if free == 0 {
		t.Error("no flush buffers recycled after a writev burst; free list defeated")
	}
}
