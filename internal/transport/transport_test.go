package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"rum/internal/of"
	"rum/internal/sim"
)

func TestPipeDeliveryAndLatency(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 2*time.Millisecond)
	var gotAt time.Duration
	b.SetHandler(func(m of.Message) {
		if m.MsgType() != of.TypeBarrierRequest {
			t.Errorf("got %v, want barrier request", m.MsgType())
		}
		gotAt = s.Now()
	})
	if err := a.Send(&of.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotAt != 2*time.Millisecond {
		t.Errorf("delivered at %v, want 2ms", gotAt)
	}
}

func TestPipeOrderPreserved(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, time.Millisecond)
	var xids []uint32
	b.SetHandler(func(m of.Message) { xids = append(xids, m.GetXID()) })
	for i := uint32(1); i <= 20; i++ {
		fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd}
		fm.SetXID(i)
		if err := a.Send(fm); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(xids) != 20 {
		t.Fatalf("delivered %d messages, want 20", len(xids))
	}
	for i, x := range xids {
		if x != uint32(i+1) {
			t.Fatalf("reordered delivery: %v", xids)
		}
	}
}

func TestPipeBacklogBeforeHandler(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 0)
	_ = a.Send(&of.Hello{})
	_ = a.Send(&of.BarrierRequest{})
	s.Run() // delivered with no handler: buffered
	var got []of.MsgType
	b.SetHandler(func(m of.Message) { got = append(got, m.MsgType()) })
	if len(got) != 2 || got[0] != of.TypeHello || got[1] != of.TypeBarrierRequest {
		t.Fatalf("backlog delivery = %v", got)
	}
}

func TestPipeClose(t *testing.T) {
	s := sim.New()
	a, b := Pipe(s, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&of.Hello{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	// Messages in flight toward a closed endpoint are dropped silently.
	_ = b.Send(&of.Hello{})
	_ = b
	s.Run()
}

func TestTCPConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		msgs []of.Message
		mu   sync.Mutex
	}
	var res result
	done := make(chan struct{})

	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		server := NewTCP(nc)
		count := 0
		server.SetHandler(func(m of.Message) {
			res.mu.Lock()
			res.msgs = append(res.msgs, m)
			count++
			if count == 3 {
				close(done)
			}
			res.mu.Unlock()
			// Echo barriers back as replies.
			if m.MsgType() == of.TypeBarrierRequest {
				br := &of.BarrierReply{}
				br.SetXID(m.GetXID())
				_ = server.Send(br)
			}
		})
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply := make(chan of.Message, 1)
	client.SetHandler(func(m of.Message) { reply <- m })

	_ = client.Send(&of.Hello{})
	fm := &of.FlowMod{Match: of.MatchAll(), Command: of.FCAdd, Priority: 7,
		BufferID: of.BufferNone, OutPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 1}}}
	fm.SetXID(42)
	_ = client.Send(fm)
	br := &of.BarrierRequest{}
	br.SetXID(43)
	_ = client.Send(br)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not receive 3 messages")
	}
	select {
	case m := <-reply:
		if m.MsgType() != of.TypeBarrierReply || m.GetXID() != 43 {
			t.Errorf("reply = %v xid=%d, want barrier reply 43", m.MsgType(), m.GetXID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no barrier reply")
	}

	res.mu.Lock()
	defer res.mu.Unlock()
	if len(res.msgs) != 3 {
		t.Fatalf("server saw %d messages, want 3", len(res.msgs))
	}
	gotFM, ok := res.msgs[1].(*of.FlowMod)
	if !ok || gotFM.Priority != 7 || gotFM.GetXID() != 42 {
		t.Errorf("flow mod did not survive framing: %#v", res.msgs[1])
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err == nil {
			_ = NewTCP(nc)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Send(&of.Hello{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close = %v, want nil", err)
	}
}
