package transport

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"rum/internal/of"
)

// helloFrameLen is the wire size of one Hello frame — the unit the
// bounded-writer tests measure MaxPending in.
func helloFrameLen(t *testing.T) int {
	t.Helper()
	b, err := of.Marshal(&of.Hello{})
	if err != nil {
		t.Fatal(err)
	}
	return len(b)
}

// boundedPair builds a coalescing TCP conn over an unread synchronous
// pipe: pending bytes stay pending (they count until the peer consumes
// them), so the bound fills deterministically after maxFrames sends.
func boundedPair(t *testing.T, maxFrames int, policy OverloadPolicy, deadline time.Duration) (Conn, net.Conn, int) {
	t.Helper()
	frame := helloFrameLen(t)
	cli, srv := net.Pipe()
	c := NewTCPOpts(cli, TCPOptions{
		MaxPending:    maxFrames * frame,
		Policy:        policy,
		BlockDeadline: deadline,
	})
	t.Cleanup(func() { c.Close(); srv.Close() })
	return c, srv, frame
}

func TestTCPBoundShed(t *testing.T) {
	c, srv, frame := boundedPair(t, 4, OverloadShed, 0)

	// The peer reads nothing, so every accepted frame stays pending; the
	// bound admits sends while pending < limit, so exactly 4 fit.
	for i := 0; i < 4; i++ {
		if err := c.Send(&of.Hello{}); err != nil {
			t.Fatalf("send %d within the bound failed: %v", i, err)
		}
	}
	err := c.Send(&of.Hello{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("send at the bound = %v, want ErrOverloaded", err)
	}

	// Draining the peer frees the bound; a shed conn must recover, not
	// stay poisoned.
	if _, err := io.ReadFull(srv, make([]byte, 4*frame)); err != nil {
		t.Fatalf("draining peer: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Send(&of.Hello{}); err == nil {
			break
		} else if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("post-drain send: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("conn never recovered after the peer drained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPBoundBlockDeadline(t *testing.T) {
	c, _, _ := boundedPair(t, 4, OverloadBlock, 50*time.Millisecond)

	for i := 0; i < 4; i++ {
		if err := c.Send(&of.Hello{}); err != nil {
			t.Fatalf("send %d within the bound failed: %v", i, err)
		}
	}
	start := time.Now()
	err := c.Send(&of.Hello{})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("blocked send = %v, want ErrOverloaded after the deadline", err)
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("blocked send failed after %v, want ~50ms of backpressure first", elapsed)
	}
}

func TestTCPBoundBlockDrains(t *testing.T) {
	c, srv, frame := boundedPair(t, 4, OverloadBlock, 5*time.Second)

	for i := 0; i < 4; i++ {
		if err := c.Send(&of.Hello{}); err != nil {
			t.Fatalf("send %d within the bound failed: %v", i, err)
		}
	}
	// The peer starts consuming while the fifth send is parked: the
	// blocked sender must complete instead of shedding.
	go func() {
		time.Sleep(10 * time.Millisecond)
		_, _ = io.ReadFull(srv, make([]byte, 5*frame))
	}()
	if err := c.Send(&of.Hello{}); err != nil {
		t.Fatalf("blocked send with a draining peer = %v, want success", err)
	}
}

func TestTCPBoundBlockCloseUnparks(t *testing.T) {
	c, _, _ := boundedPair(t, 4, OverloadBlock, 10*time.Second)

	for i := 0; i < 4; i++ {
		if err := c.Send(&of.Hello{}); err != nil {
			t.Fatalf("send %d within the bound failed: %v", i, err)
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Send(&of.Hello{}) }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the blocked sender parked until its deadline")
	}
}

func TestTCPSendBatchPartial(t *testing.T) {
	c, srv, frame := boundedPair(t, 4, OverloadShed, 0)
	ps, ok := c.(PartialBatchSender)
	if !ok {
		t.Fatal("coalescing TCP conn does not implement PartialBatchSender")
	}

	batch := make([]of.Message, 10)
	for i := range batch {
		batch[i] = &of.Hello{}
	}
	n, err := ps.SendBatchPartial(batch)
	if err != nil {
		t.Fatalf("SendBatchPartial: %v", err)
	}
	if n != 4 {
		t.Fatalf("accepted %d of 10, want exactly the bound's 4", n)
	}

	// The refusal is non-destructive: after the peer drains, the unsent
	// suffix goes through.
	if _, err := io.ReadFull(srv, make([]byte, 4*frame)); err != nil {
		t.Fatalf("draining peer: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	sent := n
	for sent < len(batch) {
		m, err := ps.SendBatchPartial(batch[sent:])
		if err != nil {
			t.Fatalf("resending suffix: %v", err)
		}
		sent += m
		if m == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("suffix stalled at %d of %d after drain", sent, len(batch))
			}
			time.Sleep(time.Millisecond)
		} else {
			// Keep the synchronous pipe draining so later frames fit.
			go func(b int) { _, _ = io.ReadFull(srv, make([]byte, b*frame)) }(m)
		}
	}
}

func TestTCPUnboundedUnaffected(t *testing.T) {
	// The zero-value options keep the historical unbounded behavior:
	// thousands of frames queue against an unread peer without a refusal.
	cli, srv := net.Pipe()
	c := NewTCPOpts(cli, TCPOptions{})
	defer func() { c.Close(); srv.Close() }()
	for i := 0; i < 5000; i++ {
		if err := c.Send(&of.Hello{}); err != nil {
			t.Fatalf("unbounded send %d failed: %v", i, err)
		}
	}
}
