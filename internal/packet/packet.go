// Package packet models the data-plane packets that flow through the
// simulated network and through PacketIn/PacketOut messages: Ethernet
// (optionally 802.1Q tagged) frames carrying IPv4 with a TCP or UDP
// transport. Packets marshal to real wire bytes so the same payloads work
// over an actual OpenFlow TCP control channel.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EtherTypes and IP protocol numbers used by the system.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeARP  uint16 = 0x0806

	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// VLANNone marks the absence of an 802.1Q tag in Fields.
const VLANNone uint16 = 0xffff

// Fields is the concrete 12-tuple an OpenFlow 1.0 switch matches on,
// plus InPort which is set by the receiving switch, not the packet.
type Fields struct {
	InPort  uint16
	DLSrc   [6]byte
	DLDst   [6]byte
	DLVLAN  uint16 // VLANNone when untagged
	DLPCP   uint8
	DLType  uint16
	NWTOS   uint8
	NWProto uint8
	NWSrc   [4]byte
	NWDst   [4]byte
	TPSrc   uint16
	TPDst   uint16
}

// NWSrcAddr returns the IPv4 source as netip.Addr.
func (f *Fields) NWSrcAddr() netip.Addr { return netip.AddrFrom4(f.NWSrc) }

// NWDstAddr returns the IPv4 destination as netip.Addr.
func (f *Fields) NWDstAddr() netip.Addr { return netip.AddrFrom4(f.NWDst) }

func (f Fields) String() string {
	return fmt.Sprintf("pkt{in=%d %s->%s tos=%d proto=%d tp=%d->%d}",
		f.InPort, f.NWSrcAddr(), f.NWDstAddr(), f.NWTOS, f.NWProto, f.TPSrc, f.TPDst)
}

// Packet is a parsed data-plane packet. The zero value is not useful; build
// one with the fields set and (optionally) a Payload.
type Packet struct {
	Fields  Fields
	Payload []byte
}

// New builds an IPv4 packet with the given addresses and transport ports.
func New(src, dst netip.Addr, proto uint8, tpSrc, tpDst uint16) *Packet {
	p := &Packet{}
	p.Fields.DLType = EtherTypeIPv4
	p.Fields.DLVLAN = VLANNone
	p.Fields.NWProto = proto
	p.Fields.NWSrc = src.As4()
	p.Fields.NWDst = dst.As4()
	p.Fields.TPSrc = tpSrc
	p.Fields.TPDst = tpDst
	return p
}

// Clone deep-copies the packet. Switches clone before rewriting header
// fields so other copies in flight are unaffected.
func (p *Packet) Clone() *Packet {
	c := *p
	c.Payload = append([]byte(nil), p.Payload...)
	return &c
}

const (
	ethHeaderLen  = 14
	vlanTagLen    = 4
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// Marshal encodes the packet as an Ethernet frame. Non-IPv4 DLTypes encode
// the payload directly after the Ethernet (and VLAN, if present) header.
func (p *Packet) Marshal() []byte {
	f := &p.Fields
	size := ethHeaderLen
	tagged := f.DLVLAN != VLANNone
	if tagged {
		size += vlanTagLen
	}
	isIP := f.DLType == EtherTypeIPv4
	transport := 0
	if isIP {
		size += ipv4HeaderLen
		switch f.NWProto {
		case ProtoTCP:
			transport = tcpHeaderLen
		case ProtoUDP:
			transport = udpHeaderLen
		}
		size += transport
	}
	buf := make([]byte, size+len(p.Payload))
	copy(buf[0:6], f.DLDst[:])
	copy(buf[6:12], f.DLSrc[:])
	off := 12
	if tagged {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeVLAN)
		tci := (uint16(f.DLPCP) << 13) | (f.DLVLAN & 0x0fff)
		binary.BigEndian.PutUint16(buf[off+2:], tci)
		off += 4
	}
	binary.BigEndian.PutUint16(buf[off:], f.DLType)
	off += 2
	if !isIP {
		copy(buf[off:], p.Payload)
		return buf[:off+len(p.Payload)]
	}
	ip := buf[off:]
	totalLen := ipv4HeaderLen + transport + len(p.Payload)
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = f.NWTOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = 64 // TTL
	ip[9] = f.NWProto
	copy(ip[12:16], f.NWSrc[:])
	copy(ip[16:20], f.NWDst[:])
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:ipv4HeaderLen]))
	off += ipv4HeaderLen
	switch f.NWProto {
	case ProtoTCP:
		tcp := buf[off:]
		binary.BigEndian.PutUint16(tcp[0:2], f.TPSrc)
		binary.BigEndian.PutUint16(tcp[2:4], f.TPDst)
		tcp[12] = 5 << 4 // data offset
		off += tcpHeaderLen
	case ProtoUDP:
		udp := buf[off:]
		binary.BigEndian.PutUint16(udp[0:2], f.TPSrc)
		binary.BigEndian.PutUint16(udp[2:4], f.TPDst)
		binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+len(p.Payload)))
		off += udpHeaderLen
	}
	copy(buf[off:], p.Payload)
	return buf
}

// Unmarshal parses an Ethernet frame. InPort is left zero; the caller sets
// it from the receiving port.
func Unmarshal(data []byte) (*Packet, error) {
	if len(data) < ethHeaderLen {
		return nil, fmt.Errorf("packet: frame too short (%d bytes)", len(data))
	}
	p := &Packet{}
	f := &p.Fields
	copy(f.DLDst[:], data[0:6])
	copy(f.DLSrc[:], data[6:12])
	f.DLVLAN = VLANNone
	off := 12
	etherType := binary.BigEndian.Uint16(data[off:])
	off += 2
	if etherType == EtherTypeVLAN {
		if len(data) < off+4 {
			return nil, fmt.Errorf("packet: truncated 802.1Q tag")
		}
		tci := binary.BigEndian.Uint16(data[off:])
		f.DLVLAN = tci & 0x0fff
		f.DLPCP = uint8(tci >> 13)
		etherType = binary.BigEndian.Uint16(data[off+2:])
		off += 4
	}
	f.DLType = etherType
	if etherType != EtherTypeIPv4 {
		p.Payload = append([]byte(nil), data[off:]...)
		return p, nil
	}
	if len(data) < off+ipv4HeaderLen {
		return nil, fmt.Errorf("packet: truncated IPv4 header")
	}
	ip := data[off:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < ipv4HeaderLen || len(ip) < ihl {
		return nil, fmt.Errorf("packet: bad IPv4 header (version/IHL byte %#x)", ip[0])
	}
	f.NWTOS = ip[1]
	f.NWProto = ip[9]
	copy(f.NWSrc[:], ip[12:16])
	copy(f.NWDst[:], ip[16:20])
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < ihl || totalLen > len(ip) {
		return nil, fmt.Errorf("packet: IPv4 total length %d out of range", totalLen)
	}
	body := ip[ihl:totalLen]
	switch f.NWProto {
	case ProtoTCP:
		if len(body) < tcpHeaderLen {
			return nil, fmt.Errorf("packet: truncated TCP header")
		}
		f.TPSrc = binary.BigEndian.Uint16(body[0:2])
		f.TPDst = binary.BigEndian.Uint16(body[2:4])
		dataOff := int(body[12]>>4) * 4
		if dataOff < tcpHeaderLen || dataOff > len(body) {
			return nil, fmt.Errorf("packet: bad TCP data offset %d", dataOff)
		}
		p.Payload = append([]byte(nil), body[dataOff:]...)
	case ProtoUDP:
		if len(body) < udpHeaderLen {
			return nil, fmt.Errorf("packet: truncated UDP header")
		}
		f.TPSrc = binary.BigEndian.Uint16(body[0:2])
		f.TPDst = binary.BigEndian.Uint16(body[2:4])
		p.Payload = append([]byte(nil), body[udpHeaderLen:]...)
	default:
		p.Payload = append([]byte(nil), body...)
	}
	return p, nil
}

// ipChecksum computes the standard IPv4 header checksum.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
