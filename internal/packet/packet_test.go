package packet

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripTCP(t *testing.T) {
	p := New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), ProtoTCP, 1234, 80)
	p.Fields.DLSrc = [6]byte{2, 0, 0, 0, 0, 1}
	p.Fields.DLDst = [6]byte{2, 0, 0, 0, 0, 2}
	p.Fields.NWTOS = 0x20
	p.Payload = []byte("hello")
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", p, got)
	}
}

func TestRoundTripUDPWithVLAN(t *testing.T) {
	p := New(netip.MustParseAddr("192.168.1.1"), netip.MustParseAddr("192.168.1.2"), ProtoUDP, 5000, 53)
	p.Fields.DLVLAN = 100
	p.Fields.DLPCP = 5
	p.Payload = []byte{1, 2, 3, 4}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", p, got)
	}
	if got.Fields.DLVLAN != 100 || got.Fields.DLPCP != 5 {
		t.Errorf("VLAN fields lost: %+v", got.Fields)
	}
}

func TestRoundTripNonIP(t *testing.T) {
	p := &Packet{}
	p.Fields.DLType = EtherTypeARP
	p.Fields.DLVLAN = VLANNone
	p.Fields.DLSrc = [6]byte{1, 1, 1, 1, 1, 1}
	p.Payload = []byte{0, 1, 0x08, 0x00}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", p, got)
	}
}

func TestRoundTripOtherIPProto(t *testing.T) {
	p := New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.9"), ProtoICMP, 0, 0)
	p.Payload = []byte{8, 0, 0, 0}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields.NWProto != ProtoICMP || !reflect.DeepEqual(got.Payload, p.Payload) {
		t.Fatalf("ICMP round trip mismatch: %+v", got)
	}
}

func TestIPChecksumValid(t *testing.T) {
	p := New(netip.MustParseAddr("1.2.3.4"), netip.MustParseAddr("5.6.7.8"), ProtoUDP, 1, 2)
	buf := p.Marshal()
	ip := buf[ethHeaderLen:]
	// Recomputing the checksum over the header including the checksum field
	// must yield zero.
	var sum uint32
	for i := 0; i+1 < ipv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if ^uint16(sum) != 0 {
		t.Errorf("IPv4 checksum does not verify: %#x", ^uint16(sum))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"runt frame", make([]byte, 10)},
		{"truncated vlan", append(make([]byte, 12), 0x81, 0x00, 0x00)},
		{"truncated ip", append(make([]byte, 12), 0x08, 0x00, 0x45)},
		{"bad ip version", func() []byte {
			b := make([]byte, 34)
			binary.BigEndian.PutUint16(b[12:], EtherTypeIPv4)
			b[14] = 0x65 // version 6
			return b
		}()},
		{"bad total length", func() []byte {
			b := make([]byte, 34)
			binary.BigEndian.PutUint16(b[12:], EtherTypeIPv4)
			b[14] = 0x45
			binary.BigEndian.PutUint16(b[16:], 5000)
			return b
		}()},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); err == nil {
			t.Errorf("%s: Unmarshal succeeded, want error", tc.name)
		}
	}
}

func randomPacket(r *rand.Rand) *Packet {
	p := &Packet{}
	f := &p.Fields
	r.Read(f.DLSrc[:])
	r.Read(f.DLDst[:])
	if r.Intn(2) == 0 {
		f.DLVLAN = uint16(r.Intn(4095))
		f.DLPCP = uint8(r.Intn(8))
	} else {
		f.DLVLAN = VLANNone
	}
	f.DLType = EtherTypeIPv4
	f.NWTOS = uint8(r.Intn(256))
	switch r.Intn(2) {
	case 0:
		f.NWProto = ProtoTCP
	case 1:
		f.NWProto = ProtoUDP
	}
	r.Read(f.NWSrc[:])
	r.Read(f.NWDst[:])
	f.TPSrc = uint16(r.Uint32())
	f.TPDst = uint16(r.Uint32())
	if n := r.Intn(64); n > 0 {
		p.Payload = make([]byte, n)
		r.Read(p.Payload)
	}
	return p
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPacket(r)
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), ProtoTCP, 1, 2)
	p.Payload = []byte{1, 2, 3}
	c := p.Clone()
	c.Fields.NWTOS = 99
	c.Payload[0] = 42
	if p.Fields.NWTOS == 99 || p.Payload[0] == 42 {
		t.Errorf("Clone aliases original: %+v payload=%v", p.Fields, p.Payload)
	}
}

func TestFieldsString(t *testing.T) {
	p := New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), ProtoTCP, 1, 80)
	s := p.Fields.String()
	if s == "" {
		t.Error("empty Fields.String()")
	}
}
