// Package of implements the subset of the OpenFlow 1.0 wire protocol that
// the RUM system and its evaluation need: message framing, the 12-tuple
// match, actions, and every message type exchanged between a controller and
// a switch during rule updates (FlowMod, Barrier, PacketIn/PacketOut, Error,
// Echo, Features, Stats, FlowRemoved, PortStatus, configuration).
//
// Messages are plain structs that marshal to and from the binary format
// defined by the OpenFlow Switch Specification v1.0.0. A Message travels
// either over a real TCP control channel (see internal/transport) or, in
// simulation, directly as a decoded struct.
package of

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Version is the only protocol version this package speaks.
const Version uint8 = 0x01

// HeaderLen is the length of the fixed OpenFlow header.
const HeaderLen = 8

// MaxMessageLen bounds a single OpenFlow message; the spec's length field is
// 16 bits, so no valid message can exceed it.
const MaxMessageLen = 1<<16 - 1

// MsgType identifies an OpenFlow 1.0 message type.
type MsgType uint8

// OpenFlow 1.0 message types.
const (
	TypeHello                 MsgType = 0
	TypeError                 MsgType = 1
	TypeEchoRequest           MsgType = 2
	TypeEchoReply             MsgType = 3
	TypeVendor                MsgType = 4
	TypeFeaturesRequest       MsgType = 5
	TypeFeaturesReply         MsgType = 6
	TypeGetConfigRequest      MsgType = 7
	TypeGetConfigReply        MsgType = 8
	TypeSetConfig             MsgType = 9
	TypePacketIn              MsgType = 10
	TypeFlowRemoved           MsgType = 11
	TypePortStatus            MsgType = 12
	TypePacketOut             MsgType = 13
	TypeFlowMod               MsgType = 14
	TypePortMod               MsgType = 15
	TypeStatsRequest          MsgType = 16
	TypeStatsReply            MsgType = 17
	TypeBarrierRequest        MsgType = 18
	TypeBarrierReply          MsgType = 19
	TypeQueueGetConfigRequest MsgType = 20
	TypeQueueGetConfigReply   MsgType = 21
)

// msgTypeNames is a dense array indexed by MsgType: String sits on every
// log and trace line, so the lookup must be a bounds check and a load, not
// a map hash.
var msgTypeNames = [...]string{
	TypeHello:                 "HELLO",
	TypeError:                 "ERROR",
	TypeEchoRequest:           "ECHO_REQUEST",
	TypeEchoReply:             "ECHO_REPLY",
	TypeVendor:                "VENDOR",
	TypeFeaturesRequest:       "FEATURES_REQUEST",
	TypeFeaturesReply:         "FEATURES_REPLY",
	TypeGetConfigRequest:      "GET_CONFIG_REQUEST",
	TypeGetConfigReply:        "GET_CONFIG_REPLY",
	TypeSetConfig:             "SET_CONFIG",
	TypePacketIn:              "PACKET_IN",
	TypeFlowRemoved:           "FLOW_REMOVED",
	TypePortStatus:            "PORT_STATUS",
	TypePacketOut:             "PACKET_OUT",
	TypeFlowMod:               "FLOW_MOD",
	TypePortMod:               "PORT_MOD",
	TypeStatsRequest:          "STATS_REQUEST",
	TypeStatsReply:            "STATS_REPLY",
	TypeBarrierRequest:        "BARRIER_REQUEST",
	TypeBarrierReply:          "BARRIER_REPLY",
	TypeQueueGetConfigRequest: "QUEUE_GET_CONFIG_REQUEST",
	TypeQueueGetConfigReply:   "QUEUE_GET_CONFIG_REPLY",
}

func (t MsgType) String() string {
	// Fast paths for the message types that dominate traces: the compiler
	// turns these into direct string constants with no table access.
	switch t {
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeError:
		return "ERROR"
	}
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("OFPT(%d)", uint8(t))
}

// Special port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// FlowMod commands (ofp_flow_mod_command).
const (
	FCAdd          uint16 = 0
	FCModify       uint16 = 1
	FCModifyStrict uint16 = 2
	FCDelete       uint16 = 3
	FCDeleteStrict uint16 = 4
)

// FlowMod flags (ofp_flow_mod_flags).
const (
	FFSendFlowRem  uint16 = 1 << 0
	FFCheckOverlap uint16 = 1 << 1
	FFEmerg        uint16 = 1 << 2
)

// PacketIn reasons (ofp_packet_in_reason).
const (
	ReasonNoMatch uint8 = 0
	ReasonAction  uint8 = 1
)

// FlowRemoved reasons (ofp_flow_removed_reason).
const (
	RemIdleTimeout uint8 = 0
	RemHardTimeout uint8 = 1
	RemDelete      uint8 = 2
)

// Error types (ofp_error_type).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
	ErrTypePortModFailed uint16 = 4
	ErrTypeQueueOpFailed uint16 = 5

	// ErrTypeRUMAck is the reserved, otherwise-unused error type RUM uses to
	// deliver positive per-rule acknowledgments to RUM-aware controllers.
	// The paper's prototype "reuses an error message with a newly defined
	// (unused) error code for positive acknowledgments" (§4).
	ErrTypeRUMAck uint16 = 0xb5b5
)

// Error codes under ErrTypeRUMAck.
const (
	RUMAckInstalled uint16 = 0 // the referenced FlowMod is active in the data plane
	RUMAckRemoved   uint16 = 1 // the referenced rule was confirmed removed
	RUMAckFallback  uint16 = 2 // confirmation produced by a control-plane fallback, not a probe
)

// BufferNone is the buffer_id meaning "not buffered".
const BufferNone uint32 = 0xffffffff

// RUMXIDBase marks the transaction-id range RUM reserves for its own
// messages (§4 of the paper): replies carrying such xids are consumed by
// the RUM layer and never reach the controller. Controllers must allocate
// xids below this base.
const RUMXIDBase uint32 = 0xf0000000

// IsRUMXID reports whether an xid belongs to RUM's reserved range.
func IsRUMXID(x uint32) bool { return x >= RUMXIDBase }

// Header is the fixed 8-byte OpenFlow header present on every message.
type Header struct {
	Type MsgType
	XID  uint32
}

// Message is implemented by every OpenFlow message struct in this package.
// AppendBody appends the encoding of everything after the 8-byte header;
// the framing layer prepends version/type/length/xid (see MarshalAppend).
type Message interface {
	MsgType() MsgType
	GetXID() uint32
	SetXID(uint32)
	// AppendBody appends the wire encoding of the message body to buf and
	// returns the extended slice. Implementations write in place into
	// caller-owned storage: a caller holding a buffer with enough capacity
	// pays zero allocations.
	AppendBody(buf []byte) ([]byte, error)
	UnmarshalBody(data []byte) error
}

// grow extends buf by n zero bytes and returns the grown slice together
// with the new n-byte region. Reused capacity is explicitly zeroed so that
// encodings with pad bytes stay byte-identical to a fresh allocation.
func grow(buf []byte, n int) ([]byte, []byte) {
	l := len(buf)
	if cap(buf) < l+n {
		nb := make([]byte, l+n, 2*(l+n)+64)
		copy(nb, buf)
		return nb, nb[l:]
	}
	buf = buf[:l+n]
	b := buf[l:]
	for i := range b {
		b[i] = 0
	}
	return buf, b
}

// MarshalAppend appends m's full wire encoding (header + body) to buf and
// returns the extended slice. It is the zero-allocation encode primitive:
// with sufficient capacity in buf, no memory is allocated.
func MarshalAppend(buf []byte, m Message) ([]byte, error) {
	start := len(buf)
	buf, _ = grow(buf, HeaderLen)
	buf, err := m.AppendBody(buf)
	if err != nil {
		return buf[:start], err
	}
	total := len(buf) - start
	if total > MaxMessageLen {
		return buf[:start], fmt.Errorf("of: %s message length %d exceeds 16-bit length field", m.MsgType(), total)
	}
	hdr := buf[start:]
	hdr[0] = Version
	hdr[1] = byte(m.MsgType())
	binary.BigEndian.PutUint16(hdr[2:4], uint16(total))
	binary.BigEndian.PutUint32(hdr[4:8], m.GetXID())
	return buf, nil
}

// Marshal encodes a full message (header + body) into a fresh buffer.
func Marshal(m Message) ([]byte, error) {
	return MarshalAppend(nil, m)
}

// Unmarshal decodes one complete wire message. data must contain exactly one
// message (header length field == len(data)). Variable-length fields are
// copied out of data, so the caller may reuse the buffer afterwards.
func Unmarshal(data []byte) (Message, error) {
	return unmarshal(data, false)
}

func unmarshal(data []byte, pooled bool) (Message, error) {
	if len(data) < HeaderLen {
		return nil, fmt.Errorf("of: message shorter than header (%d bytes)", len(data))
	}
	if data[0] != Version {
		return nil, fmt.Errorf("of: unsupported version 0x%02x", data[0])
	}
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if length != len(data) {
		return nil, fmt.Errorf("of: length field %d != buffer %d", length, len(data))
	}
	t := MsgType(data[1])
	var m Message
	if pooled {
		m = AcquireMessage(t)
	} else {
		m = NewMessage(t)
	}
	if m == nil {
		return nil, fmt.Errorf("of: unknown message type %d", t)
	}
	m.SetXID(binary.BigEndian.Uint32(data[4:8]))
	if err := m.UnmarshalBody(data[HeaderLen:]); err != nil {
		if pooled {
			Release(m)
		}
		return nil, fmt.Errorf("of: decoding %s body: %w", t, err)
	}
	return m, nil
}

// NewMessage returns a zero message struct for the given type, or nil if the
// type is unknown.
func NewMessage(t MsgType) Message {
	switch t {
	case TypeHello:
		return &Hello{}
	case TypeError:
		return &Error{}
	case TypeEchoRequest:
		return &EchoRequest{}
	case TypeEchoReply:
		return &EchoReply{}
	case TypeVendor:
		return &Vendor{}
	case TypeFeaturesRequest:
		return &FeaturesRequest{}
	case TypeFeaturesReply:
		return &FeaturesReply{}
	case TypeGetConfigRequest:
		return &GetConfigRequest{}
	case TypeGetConfigReply:
		return &GetConfigReply{}
	case TypeSetConfig:
		return &SetConfig{}
	case TypePacketIn:
		return &PacketIn{}
	case TypeFlowRemoved:
		return &FlowRemoved{}
	case TypePortStatus:
		return &PortStatus{}
	case TypePacketOut:
		return &PacketOut{}
	case TypeFlowMod:
		return &FlowMod{}
	case TypeStatsRequest:
		return &StatsRequest{}
	case TypeStatsReply:
		return &StatsReply{}
	case TypeBarrierRequest:
		return &BarrierRequest{}
	case TypeBarrierReply:
		return &BarrierReply{}
	default:
		return nil
	}
}

// ReadMessage reads exactly one OpenFlow message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < HeaderLen {
		return nil, fmt.Errorf("of: header declares length %d < %d", length, HeaderLen)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}

// WriteMessage marshals m and writes it to w in one Write, encoding
// through a pooled scratch buffer.
func WriteMessage(w io.Writer, m Message) error {
	bp := encodeBufPool.Get().(*[]byte)
	buf, err := MarshalAppend((*bp)[:0], m)
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf[:0]
	encodeBufPool.Put(bp)
	return err
}

// encodeBufPool recycles scratch encode buffers for WriteMessage.
var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// xid embeds the mutable transaction id shared by all messages.
type xid struct {
	XID uint32
}

func (x *xid) GetXID() uint32  { return x.XID }
func (x *xid) SetXID(v uint32) { x.XID = v }
