package of

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// MessageReader reads a stream of OpenFlow messages with a buffered,
// reusable frame buffer: one read buffer lives for the life of the reader
// instead of one allocation per frame, and the hot message types are
// decoded into pooled structs (see AcquireMessage/Release). Decoded
// messages copy all variable-length fields out of the frame buffer, so
// each ReadMessage invalidates nothing returned earlier.
//
// MessageReader is not safe for concurrent use; a connection's framing
// loop owns it exclusively.
type MessageReader struct {
	r   *bufio.Reader
	buf []byte
}

// readerBufSize is the bufio buffer: large enough to absorb a coalesced
// flush from the peer in one syscall.
const readerBufSize = 64 << 10

// NewMessageReader wraps r with OpenFlow framing.
func NewMessageReader(r io.Reader) *MessageReader {
	return &MessageReader{
		r:   bufio.NewReaderSize(r, readerBufSize),
		buf: make([]byte, 2048),
	}
}

// ReadMessage reads and decodes exactly one message. Hot message types are
// served from the package pools: a consumer that owns a returned message
// outright may hand it back with Release.
func (mr *MessageReader) ReadMessage() (Message, error) {
	if _, err := io.ReadFull(mr.r, mr.buf[:HeaderLen]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(mr.buf[2:4]))
	if length < HeaderLen {
		return nil, fmt.Errorf("of: header declares length %d < %d", length, HeaderLen)
	}
	if length > len(mr.buf) {
		nb := make([]byte, length+length/2)
		copy(nb, mr.buf[:HeaderLen])
		mr.buf = nb
	}
	if _, err := io.ReadFull(mr.r, mr.buf[HeaderLen:length]); err != nil {
		return nil, err
	}
	return unmarshal(mr.buf[:length], true)
}
