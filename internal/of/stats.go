package of

import (
	"encoding/binary"
	"fmt"
)

// Stats types (ofp_stats_types).
const (
	StatsDesc      uint16 = 0
	StatsFlow      uint16 = 1
	StatsAggregate uint16 = 2
	StatsTable     uint16 = 3
	StatsPort      uint16 = 4
)

// StatsRequest queries switch statistics. The paper notes (§3.1) that
// statistics replies are control-plane views with coarse temporal
// granularity and therefore cannot substitute for data-plane acks; the
// message is implemented so the proxy is fully transparent to controllers
// that use it.
type StatsRequest struct {
	xid
	StatsType uint16
	Flags     uint16
	Body      []byte
}

func (*StatsRequest) MsgType() MsgType { return TypeStatsRequest }

func (m *StatsRequest) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 4)
	binary.BigEndian.PutUint16(b[0:2], m.StatsType)
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	return append(buf, m.Body...), nil
}

func (m *StatsRequest) UnmarshalBody(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("stats_request body too short (%d)", len(data))
	}
	m.StatsType = binary.BigEndian.Uint16(data[0:2])
	m.Flags = binary.BigEndian.Uint16(data[2:4])
	m.Body = append(m.Body[:0], data[4:]...)
	return nil
}

// StatsReply answers a StatsRequest.
type StatsReply struct {
	xid
	StatsType uint16
	Flags     uint16
	Body      []byte
}

func (*StatsReply) MsgType() MsgType { return TypeStatsReply }

func (m *StatsReply) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 4)
	binary.BigEndian.PutUint16(b[0:2], m.StatsType)
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	return append(buf, m.Body...), nil
}

func (m *StatsReply) UnmarshalBody(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("stats_reply body too short (%d)", len(data))
	}
	m.StatsType = binary.BigEndian.Uint16(data[0:2])
	m.Flags = binary.BigEndian.Uint16(data[2:4])
	m.Body = append(m.Body[:0], data[4:]...)
	return nil
}

// FlowStatsRequestBody is the body of a StatsFlow request.
type FlowStatsRequestBody struct {
	Match   Match
	TableID uint8
	OutPort uint16
}

// Marshal encodes the flow stats request body.
func (b *FlowStatsRequestBody) Marshal() []byte {
	return b.Append(nil)
}

// Append appends the flow stats request body to buf in place.
func (b *FlowStatsRequestBody) Append(buf []byte) []byte {
	buf, s := grow(buf, MatchLen+4)
	b.Match.MarshalTo(s)
	s[MatchLen] = b.TableID
	binary.BigEndian.PutUint16(s[MatchLen+2:MatchLen+4], b.OutPort)
	return buf
}

// UnmarshalFlowStatsRequestBody decodes the flow stats request body.
func UnmarshalFlowStatsRequestBody(data []byte) (FlowStatsRequestBody, error) {
	var b FlowStatsRequestBody
	if len(data) < MatchLen+4 {
		return b, fmt.Errorf("flow_stats_request body too short (%d)", len(data))
	}
	var err error
	b.Match, err = UnmarshalMatch(data)
	if err != nil {
		return b, err
	}
	b.TableID = data[MatchLen]
	b.OutPort = binary.BigEndian.Uint16(data[MatchLen+2 : MatchLen+4])
	return b, nil
}

// FlowStatsEntry is one entry of a StatsFlow reply body.
type FlowStatsEntry struct {
	TableID      uint8
	Match        Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []Action
}

// Marshal encodes the entry (length-prefixed as the spec requires).
func (e *FlowStatsEntry) Marshal() []byte {
	return e.Append(nil)
}

// Append appends the entry's wire encoding to buf in place.
func (e *FlowStatsEntry) Append(buf []byte) []byte {
	start := len(buf)
	buf, b := grow(buf, 4+MatchLen+44)
	b[2] = e.TableID
	e.Match.MarshalTo(b[4:])
	f := b[4+MatchLen:]
	binary.BigEndian.PutUint32(f[0:4], e.DurationSec)
	binary.BigEndian.PutUint32(f[4:8], e.DurationNsec)
	binary.BigEndian.PutUint16(f[8:10], e.Priority)
	binary.BigEndian.PutUint16(f[10:12], e.IdleTimeout)
	binary.BigEndian.PutUint16(f[12:14], e.HardTimeout)
	binary.BigEndian.PutUint64(f[20:28], e.Cookie)
	binary.BigEndian.PutUint64(f[28:36], e.PacketCount)
	binary.BigEndian.PutUint64(f[36:44], e.ByteCount)
	buf = AppendActions(buf, e.Actions)
	binary.BigEndian.PutUint16(buf[start:start+2], uint16(len(buf)-start))
	return buf
}

// UnmarshalFlowStatsEntries decodes a StatsFlow reply body.
func UnmarshalFlowStatsEntries(data []byte) ([]FlowStatsEntry, error) {
	var entries []FlowStatsEntry
	for len(data) > 0 {
		if len(data) < 4+MatchLen+44 {
			return nil, fmt.Errorf("flow_stats entry too short (%d)", len(data))
		}
		length := int(binary.BigEndian.Uint16(data[0:2]))
		if length < 4+MatchLen+44 || length > len(data) {
			return nil, fmt.Errorf("flow_stats entry bad length %d", length)
		}
		var e FlowStatsEntry
		e.TableID = data[2]
		var err error
		e.Match, err = UnmarshalMatch(data[4:])
		if err != nil {
			return nil, err
		}
		b := data[4+MatchLen : length]
		e.DurationSec = binary.BigEndian.Uint32(b[0:4])
		e.DurationNsec = binary.BigEndian.Uint32(b[4:8])
		e.Priority = binary.BigEndian.Uint16(b[8:10])
		e.IdleTimeout = binary.BigEndian.Uint16(b[10:12])
		e.HardTimeout = binary.BigEndian.Uint16(b[12:14])
		e.Cookie = binary.BigEndian.Uint64(b[20:28])
		e.PacketCount = binary.BigEndian.Uint64(b[28:36])
		e.ByteCount = binary.BigEndian.Uint64(b[36:44])
		e.Actions, err = UnmarshalActions(b[44:])
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
		data = data[length:]
	}
	return entries, nil
}

// TableStatsEntry is one entry of a StatsTable reply body (subset).
type TableStatsEntry struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

const tableStatsLen = 64

// Marshal encodes the table stats entry.
func (e *TableStatsEntry) Marshal() []byte {
	return e.Append(nil)
}

// Append appends the entry's wire encoding to buf in place.
func (e *TableStatsEntry) Append(buf []byte) []byte {
	buf, b := grow(buf, tableStatsLen)
	b[0] = e.TableID
	copy(b[4:36], e.Name)
	if len(e.Name) >= 32 {
		b[35] = 0
	}
	binary.BigEndian.PutUint32(b[36:40], e.Wildcards)
	binary.BigEndian.PutUint32(b[40:44], e.MaxEntries)
	binary.BigEndian.PutUint32(b[44:48], e.ActiveCount)
	binary.BigEndian.PutUint64(b[48:56], e.LookupCount)
	binary.BigEndian.PutUint64(b[56:64], e.MatchedCount)
	return buf
}

// UnmarshalTableStatsEntries decodes a StatsTable reply body.
func UnmarshalTableStatsEntries(data []byte) ([]TableStatsEntry, error) {
	if len(data)%tableStatsLen != 0 {
		return nil, fmt.Errorf("table_stats body length %d not a multiple of %d", len(data), tableStatsLen)
	}
	var entries []TableStatsEntry
	for len(data) > 0 {
		var e TableStatsEntry
		e.TableID = data[0]
		name := data[4:36]
		for i, c := range name {
			if c == 0 {
				name = name[:i]
				break
			}
		}
		e.Name = string(name)
		e.Wildcards = binary.BigEndian.Uint32(data[36:40])
		e.MaxEntries = binary.BigEndian.Uint32(data[40:44])
		e.ActiveCount = binary.BigEndian.Uint32(data[44:48])
		e.LookupCount = binary.BigEndian.Uint64(data[48:56])
		e.MatchedCount = binary.BigEndian.Uint64(data[56:64])
		entries = append(entries, e)
		data = data[tableStatsLen:]
	}
	return entries, nil
}
