package of

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds returns one valid wire frame per interesting message shape.
func fuzzSeeds(t interface{ Fatal(...any) }) [][]byte {
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&Error{ErrType: ErrTypeRUMAck, Code: RUMAckInstalled, Data: []byte{0, 0, 0, 7}},
		&FeaturesReply{DatapathID: 42, NTables: 1, Ports: []PhyPort{{PortNo: 1, Name: "eth1"}}},
		&PacketIn{BufferID: BufferNone, InPort: 3, Reason: ReasonAction, Data: []byte{1, 2, 3}},
		&PacketOut{BufferID: BufferNone, InPort: PortNone,
			Actions: []Action{ActionSetNWTOS{TOS: 4}, ActionOutput{Port: 2}}, Data: []byte{9, 9}},
		&FlowMod{Command: FCAdd, Priority: 100, Match: MatchAll(), BufferID: BufferNone,
			OutPort: PortNone, Actions: []Action{ActionOutput{Port: 1, MaxLen: 128}}},
		&FlowRemoved{Match: MatchAll(), Priority: 5, Reason: RemIdleTimeout, PacketCount: 9},
		&PortStatus{Reason: 1, Desc: PhyPort{PortNo: 7, Name: "eth7"}},
		&BarrierRequest{},
		&StatsReply{StatsType: StatsTable, Body: []byte{0, 0, 0, 0}},
	}
	var seeds [][]byte
	for i, m := range msgs {
		m.SetXID(uint32(i + 1))
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, buf)
	}
	return seeds
}

// FuzzDecode feeds arbitrary bytes to the decoder and checks the
// decode→encode→decode fixed point: whatever Unmarshal accepts must
// re-encode (through the append-based marshallers) to a stable frame that
// decodes to an identical message.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc1, err := Marshal(m1)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Unmarshal(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\nframe: %x", err, enc1)
		}
		enc2, err := Marshal(m2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not a fixed point:\nenc1 %x\nenc2 %x", enc1, enc2)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("decode(encode(m)) != m:\nm1 %#v\nm2 %#v", m1, m2)
		}
	})
}

// FuzzMarshalRoundTrip builds FlowMods from fuzzed fields and
// differentially checks the append-based encoder against the decoder: the
// in-place MarshalAppend into a dirty, partially-filled buffer must
// produce byte-identical output to a fresh Marshal, and decoding must
// recover every field.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(0), uint16(0), uint16(100), uint16(0), uint16(0),
		uint32(0xffffffff), uint16(0xffff), uint16(0), []byte{}, []byte{})
	f.Add(uint32(7), uint64(3), uint16(3), uint16(1), uint16(10), uint16(20),
		uint32(5), uint16(2), uint16(1),
		MarshalActions([]Action{ActionSetNWTOS{TOS: 8}, ActionOutput{Port: 3}}),
		[]byte{0xde, 0xad})
	f.Fuzz(func(t *testing.T, xid uint32, cookie uint64, cmd, prio, idle, hard uint16,
		bufID uint32, outPort, flags uint16, actionBytes, matchBytes []byte) {
		fm := &FlowMod{
			Cookie: cookie, Command: cmd, IdleTimeout: idle, HardTimeout: hard,
			Priority: prio, BufferID: bufID, OutPort: outPort, Flags: flags,
			Match: MatchAll(),
		}
		fm.SetXID(xid)
		if len(matchBytes) >= MatchLen {
			m, err := UnmarshalMatch(matchBytes)
			if err != nil {
				t.Fatalf("UnmarshalMatch on %d bytes: %v", len(matchBytes), err)
			}
			fm.Match = m
		}
		if acts, err := UnmarshalActions(actionBytes); err == nil {
			fm.Actions = acts
		}

		fresh, err := Marshal(fm)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		// Append into a dirty buffer with a nonempty prefix: reused
		// capacity must be re-zeroed by the encoder (pad bytes), and the
		// prefix must survive untouched.
		dirty := bytes.Repeat([]byte{0xAA}, 512)
		prefix := append(dirty[:0], "prefix"...)
		appended, err := MarshalAppend(prefix, fm)
		if err != nil {
			t.Fatalf("MarshalAppend: %v", err)
		}
		if !bytes.HasPrefix(appended, []byte("prefix")) {
			t.Fatal("MarshalAppend clobbered the existing buffer prefix")
		}
		if !bytes.Equal(appended[len("prefix"):], fresh) {
			t.Fatalf("append-encode differs from fresh encode:\nappend %x\nfresh  %x",
				appended[len("prefix"):], fresh)
		}

		back, err := Unmarshal(fresh)
		if err != nil {
			t.Fatalf("Unmarshal of own encoding: %v", err)
		}
		got, ok := back.(*FlowMod)
		if !ok {
			t.Fatalf("decoded %T, want *FlowMod", back)
		}
		// nil and empty action lists encode identically; normalize.
		if len(fm.Actions) == 0 {
			fm.Actions = nil
		}
		if len(got.Actions) == 0 {
			got.Actions = nil
		}
		if !reflect.DeepEqual(fm, got) {
			t.Fatalf("round trip lost fields:\nsent %#v\ngot  %#v", fm, got)
		}
	})
}

// TestGrowZeroesReusedCapacity pins the grow contract the append
// marshallers rely on: reused capacity carrying stale bytes must come
// back zeroed, or pad bytes would leak previous frames' data.
func TestGrowZeroesReusedCapacity(t *testing.T) {
	buf := bytes.Repeat([]byte{0xFF}, 64)[:0]
	buf, region := grow(buf, 16)
	for i, b := range region {
		if b != 0 {
			t.Fatalf("region[%d] = %#x, want 0", i, b)
		}
	}
	if len(buf) != 16 {
		t.Fatalf("len(buf) = %d, want 16", len(buf))
	}
}
