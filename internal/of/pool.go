package of

import "sync"

// Message pooling for the wire hot path. FlowMods, barriers, PacketIns and
// Errors dominate the controller channel during rule updates; recycling
// their structs (and the action/data scratch hanging off them) keeps the
// steady-state decode path from hammering the allocator.
//
// Ownership contract: Release hands the message back to the codec — the
// caller must hold the only live reference. Messages travel by pointer
// through in-memory pipes, so only the final consumer of a message may
// release it, and only when it provably never escaped (RUM releases its
// own barrier replies, for example, because they are consumed inside the
// ack layer and never forwarded). Releasing is always optional: a message
// that is retained somewhere is simply left to the garbage collector.

var (
	flowModPool    = sync.Pool{New: func() any { return new(FlowMod) }}
	barrierReqPool = sync.Pool{New: func() any { return new(BarrierRequest) }}
	barrierRepPool = sync.Pool{New: func() any { return new(BarrierReply) }}
	packetInPool   = sync.Pool{New: func() any { return new(PacketIn) }}
	errorPool      = sync.Pool{New: func() any { return new(Error) }}
)

// AcquireFlowMod returns a zeroed FlowMod, recycled when possible. The
// Actions slice capacity of a previously released FlowMod is retained for
// decode reuse.
func AcquireFlowMod() *FlowMod { return flowModPool.Get().(*FlowMod) }

// AcquireBarrierRequest returns a zeroed BarrierRequest, recycled when
// possible.
func AcquireBarrierRequest() *BarrierRequest { return barrierReqPool.Get().(*BarrierRequest) }

// AcquireBarrierReply returns a zeroed BarrierReply, recycled when
// possible.
func AcquireBarrierReply() *BarrierReply { return barrierRepPool.Get().(*BarrierReply) }

// AcquirePacketIn returns a zeroed PacketIn, recycled when possible.
func AcquirePacketIn() *PacketIn { return packetInPool.Get().(*PacketIn) }

// AcquireError returns a zeroed Error, recycled when possible.
func AcquireError() *Error { return errorPool.Get().(*Error) }

// AcquireMessage returns a zero message struct for the given type, served
// from the type's pool for the hot message types and freshly allocated
// otherwise. It returns nil for unknown types, like NewMessage.
func AcquireMessage(t MsgType) Message {
	switch t {
	case TypeFlowMod:
		return AcquireFlowMod()
	case TypeBarrierRequest:
		return AcquireBarrierRequest()
	case TypeBarrierReply:
		return AcquireBarrierReply()
	case TypePacketIn:
		return AcquirePacketIn()
	case TypeError:
		return AcquireError()
	default:
		return NewMessage(t)
	}
}

// Release resets m and returns it to its type's pool. It is a no-op for
// message types that are not pooled. The caller must own the only live
// reference to m; see the ownership contract above.
func Release(m Message) {
	switch mm := m.(type) {
	case *FlowMod:
		acts := mm.Actions[:0]
		*mm = FlowMod{}
		mm.Actions = acts
		flowModPool.Put(mm)
	case *BarrierRequest:
		mm.XID = 0
		barrierReqPool.Put(mm)
	case *BarrierReply:
		mm.XID = 0
		barrierRepPool.Put(mm)
	case *PacketIn:
		data := mm.Data[:0]
		*mm = PacketIn{}
		mm.Data = data
		packetInPool.Put(mm)
	case *Error:
		data := mm.Data[:0]
		*mm = Error{}
		mm.Data = data
		errorPool.Put(mm)
	}
}
