package of

import (
	"encoding/binary"
	"fmt"
)

// ActionType identifies an OpenFlow 1.0 action (ofp_action_type).
type ActionType uint16

const (
	ActOutput     ActionType = 0
	ActSetVLANVID ActionType = 1
	ActSetVLANPCP ActionType = 2
	ActStripVLAN  ActionType = 3
	ActSetDLSrc   ActionType = 4
	ActSetDLDst   ActionType = 5
	ActSetNWSrc   ActionType = 6
	ActSetNWDst   ActionType = 7
	ActSetNWTOS   ActionType = 8
	ActSetTPSrc   ActionType = 9
	ActSetTPDst   ActionType = 10
	ActEnqueue    ActionType = 11
	ActVendor     ActionType = 0xffff
)

// Action is a single entry of a FlowMod/PacketOut action list.
type Action interface {
	ActionType() ActionType
	// marshal appends the encoded action (with its type/len preamble) in
	// place into buf: no intermediate buffers are allocated.
	marshal(buf []byte) []byte
}

// putActionHeader writes the common ofp_action_header preamble.
func putActionHeader(b []byte, t ActionType, l uint16) {
	binary.BigEndian.PutUint16(b[0:2], uint16(t))
	binary.BigEndian.PutUint16(b[2:4], l)
}

// ActionOutput forwards the packet to a port. MaxLen limits the bytes sent
// to the controller when Port == PortController.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

func (a ActionOutput) ActionType() ActionType { return ActOutput }

func (a ActionOutput) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, ActOutput, 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
	return buf
}

func (a ActionOutput) String() string { return fmt.Sprintf("output:%d", a.Port) }

// ActionSetVLANVID rewrites the VLAN id (adding an 802.1Q header if absent).
type ActionSetVLANVID struct{ VID uint16 }

func (a ActionSetVLANVID) ActionType() ActionType { return ActSetVLANVID }

func (a ActionSetVLANVID) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, ActSetVLANVID, 8)
	binary.BigEndian.PutUint16(b[4:6], a.VID)
	return buf
}

func (a ActionSetVLANVID) String() string { return fmt.Sprintf("set_vlan_vid:%d", a.VID) }

// ActionSetVLANPCP rewrites the VLAN priority bits.
type ActionSetVLANPCP struct{ PCP uint8 }

func (a ActionSetVLANPCP) ActionType() ActionType { return ActSetVLANPCP }

func (a ActionSetVLANPCP) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, ActSetVLANPCP, 8)
	b[4] = a.PCP
	return buf
}

func (a ActionSetVLANPCP) String() string { return fmt.Sprintf("set_vlan_pcp:%d", a.PCP) }

// ActionStripVLAN removes the 802.1Q header.
type ActionStripVLAN struct{}

func (ActionStripVLAN) ActionType() ActionType { return ActStripVLAN }

func (ActionStripVLAN) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, ActStripVLAN, 8)
	return buf
}

func (ActionStripVLAN) String() string { return "strip_vlan" }

// ActionSetDLAddr rewrites the Ethernet source or destination address.
type ActionSetDLAddr struct {
	Dst  bool // true = set dl_dst, false = set dl_src
	Addr EthAddr
}

func (a ActionSetDLAddr) ActionType() ActionType {
	if a.Dst {
		return ActSetDLDst
	}
	return ActSetDLSrc
}

func (a ActionSetDLAddr) marshal(buf []byte) []byte {
	buf, b := grow(buf, 16)
	putActionHeader(b, a.ActionType(), 16)
	copy(b[4:10], a.Addr[:])
	return buf
}

func (a ActionSetDLAddr) String() string {
	if a.Dst {
		return "set_dl_dst:" + a.Addr.String()
	}
	return "set_dl_src:" + a.Addr.String()
}

// ActionSetNWAddr rewrites the IPv4 source or destination address.
type ActionSetNWAddr struct {
	Dst  bool
	Addr [4]byte
}

func (a ActionSetNWAddr) ActionType() ActionType {
	if a.Dst {
		return ActSetNWDst
	}
	return ActSetNWSrc
}

func (a ActionSetNWAddr) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, a.ActionType(), 8)
	copy(b[4:8], a.Addr[:])
	return buf
}

func (a ActionSetNWAddr) String() string {
	dir := "src"
	if a.Dst {
		dir = "dst"
	}
	return fmt.Sprintf("set_nw_%s:%d.%d.%d.%d", dir, a.Addr[0], a.Addr[1], a.Addr[2], a.Addr[3])
}

// ActionSetNWTOS rewrites the IP ToS/DSCP field. RUM's probing rules use
// this action to stamp probe version numbers into probe packets.
type ActionSetNWTOS struct{ TOS uint8 }

func (a ActionSetNWTOS) ActionType() ActionType { return ActSetNWTOS }

func (a ActionSetNWTOS) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, ActSetNWTOS, 8)
	b[4] = a.TOS
	return buf
}

func (a ActionSetNWTOS) String() string { return fmt.Sprintf("set_nw_tos:%d", a.TOS) }

// ActionSetTPPort rewrites the TCP/UDP source or destination port.
type ActionSetTPPort struct {
	Dst  bool
	Port uint16
}

func (a ActionSetTPPort) ActionType() ActionType {
	if a.Dst {
		return ActSetTPDst
	}
	return ActSetTPSrc
}

func (a ActionSetTPPort) marshal(buf []byte) []byte {
	buf, b := grow(buf, 8)
	putActionHeader(b, a.ActionType(), 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	return buf
}

func (a ActionSetTPPort) String() string {
	dir := "src"
	if a.Dst {
		dir = "dst"
	}
	return fmt.Sprintf("set_tp_%s:%d", dir, a.Port)
}

// AppendActions appends an action list's wire format to buf.
func AppendActions(buf []byte, actions []Action) []byte {
	for _, a := range actions {
		buf = a.marshal(buf)
	}
	return buf
}

// MarshalActions encodes an action list into a fresh buffer.
func MarshalActions(actions []Action) []byte {
	return AppendActions(nil, actions)
}

// UnmarshalActions decodes a wire action list.
func UnmarshalActions(buf []byte) ([]Action, error) {
	return UnmarshalActionsAppend(nil, buf)
}

// UnmarshalActionsAppend decodes a wire action list, appending the actions
// to dst. Decoders that own a reusable message struct pass the struct's
// existing slice truncated to zero so its capacity is reused.
func UnmarshalActionsAppend(dst []Action, buf []byte) ([]Action, error) {
	actions := dst
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("of: truncated action header (%d bytes)", len(buf))
		}
		t := ActionType(binary.BigEndian.Uint16(buf[0:2]))
		l := int(binary.BigEndian.Uint16(buf[2:4]))
		if l < 8 || l%8 != 0 || l > len(buf) {
			return nil, fmt.Errorf("of: bad action length %d (type %d, %d bytes left)", l, t, len(buf))
		}
		body := buf[4:l]
		var a Action
		switch t {
		case ActOutput:
			a = ActionOutput{
				Port:   binary.BigEndian.Uint16(body[0:2]),
				MaxLen: binary.BigEndian.Uint16(body[2:4]),
			}
		case ActSetVLANVID:
			a = ActionSetVLANVID{VID: binary.BigEndian.Uint16(body[0:2])}
		case ActSetVLANPCP:
			a = ActionSetVLANPCP{PCP: body[0]}
		case ActStripVLAN:
			a = ActionStripVLAN{}
		case ActSetDLSrc, ActSetDLDst:
			var addr EthAddr
			copy(addr[:], body[0:6])
			a = ActionSetDLAddr{Dst: t == ActSetDLDst, Addr: addr}
		case ActSetNWSrc, ActSetNWDst:
			var addr [4]byte
			copy(addr[:], body[0:4])
			a = ActionSetNWAddr{Dst: t == ActSetNWDst, Addr: addr}
		case ActSetNWTOS:
			a = ActionSetNWTOS{TOS: body[0]}
		case ActSetTPSrc, ActSetTPDst:
			a = ActionSetTPPort{Dst: t == ActSetTPDst, Port: binary.BigEndian.Uint16(body[0:2])}
		default:
			return nil, fmt.Errorf("of: unsupported action type %d", t)
		}
		actions = append(actions, a)
		buf = buf[l:]
	}
	return actions, nil
}

// ActionsEqual reports whether two action lists are identical (same actions
// in the same order). General probing uses this to decide whether a probe
// can distinguish the probed rule from a lower-priority rule (§3.2.2).
func ActionsEqual(a, b []Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
