package of

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMatch() Match {
	m := MatchAll()
	m.Wildcards &^= WcDLType | WcNWProto | WcNWTOS
	m.DLType = 0x0800
	m.NWProto = 6
	m.NWTOS = 0x20
	m.SetNWSrcWildBits(0)
	m.NWSrc = [4]byte{10, 0, 0, 1}
	m.SetNWDstWildBits(8)
	m.NWDst = [4]byte{10, 1, 2, 0}
	return m
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", m, err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", m, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch for %T:\n sent %#v\n got  %#v", m, m, got)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&Hello{xid: xid{1}},
		&Error{xid: xid{2}, ErrType: ErrTypeFlowModFailed, Code: 3, Data: []byte{0xde, 0xad}},
		&EchoRequest{xid: xid{3}, Data: []byte("ping")},
		&EchoReply{xid: xid{4}, Data: []byte("pong")},
		&Vendor{xid: xid{5}, VendorID: 0x2320, Data: []byte{1, 2, 3}},
		&FeaturesRequest{xid: xid{6}},
		&FeaturesReply{
			xid: xid{7}, DatapathID: 0xabcdef, NBuffers: 256, NTables: 2,
			Capabilities: 0x77, Actions: 0xfff,
			Ports: []PhyPort{
				{PortNo: 1, HWAddr: EthAddr{1, 2, 3, 4, 5, 6}, Name: "eth1", State: 1},
				{PortNo: 2, HWAddr: EthAddr{1, 2, 3, 4, 5, 7}, Name: "eth2"},
			},
		},
		&GetConfigRequest{xid: xid{8}},
		&GetConfigReply{xid: xid{9}, SwitchConfig: SwitchConfig{Flags: 1, MissSendLen: 128}},
		&SetConfig{xid: xid{10}, SwitchConfig: SwitchConfig{MissSendLen: 0xffff}},
		&PacketIn{xid: xid{11}, BufferID: BufferNone, TotalLen: 60, InPort: 3, Reason: ReasonAction, Data: []byte{9, 9, 9}},
		&FlowRemoved{xid: xid{12}, Match: sampleMatch(), Cookie: 42, Priority: 100,
			Reason: RemDelete, DurationSec: 1, DurationNsec: 5000, IdleTimeout: 10,
			PacketCount: 7, ByteCount: 420},
		&PortStatus{xid: xid{13}, Reason: 2, Desc: PhyPort{PortNo: 4, Name: "p4"}},
		&PacketOut{xid: xid{14}, BufferID: BufferNone, InPort: PortNone,
			Actions: []Action{ActionOutput{Port: 2, MaxLen: 0}},
			Data:    []byte{0xca, 0xfe}},
		&FlowMod{xid: xid{15}, Match: sampleMatch(), Cookie: 77, Command: FCAdd,
			IdleTimeout: 0, HardTimeout: 0, Priority: 500, BufferID: BufferNone,
			OutPort: PortNone, Flags: FFSendFlowRem,
			Actions: []Action{
				ActionSetNWTOS{TOS: 0x40},
				ActionSetVLANVID{VID: 100},
				ActionOutput{Port: 7},
			}},
		&StatsRequest{xid: xid{16}, StatsType: StatsFlow, Flags: 0, Body: (&FlowStatsRequestBody{Match: MatchAll(), OutPort: PortNone}).Marshal()},
		&StatsReply{xid: xid{17}, StatsType: StatsTable, Body: (&TableStatsEntry{TableID: 0, Name: "main", ActiveCount: 12}).Marshal()},
		&BarrierRequest{xid: xid{18}},
		&BarrierReply{xid: xid{19}},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestHeaderFields(t *testing.T) {
	m := &BarrierRequest{}
	m.SetXID(0xdeadbeef)
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != Version {
		t.Errorf("version byte = %#x, want %#x", buf[0], Version)
	}
	if MsgType(buf[1]) != TypeBarrierRequest {
		t.Errorf("type byte = %d, want %d", buf[1], TypeBarrierRequest)
	}
	if got := binary.BigEndian.Uint16(buf[2:4]); got != HeaderLen {
		t.Errorf("length = %d, want %d", got, HeaderLen)
	}
	if got := binary.BigEndian.Uint32(buf[4:8]); got != 0xdeadbeef {
		t.Errorf("xid = %#x, want 0xdeadbeef", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 0, 0}},
		{"bad version", []byte{9, 0, 0, 8, 0, 0, 0, 0}},
		{"length mismatch", []byte{1, 0, 0, 20, 0, 0, 0, 0}},
		{"unknown type", []byte{1, 99, 0, 8, 0, 0, 0, 0}},
		{"truncated flow_mod", append([]byte{1, 14, 0, 12, 0, 0, 0, 0}, 1, 2, 3, 4)},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.data); err == nil {
			t.Errorf("%s: Unmarshal succeeded, want error", tc.name)
		}
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	sent := []Message{
		&Hello{xid: xid{1}},
		&FlowMod{xid: xid{2}, Match: MatchAll(), Command: FCAdd, Priority: 1,
			BufferID: BufferNone, OutPort: PortNone,
			Actions: []Action{ActionOutput{Port: 1}}},
		&BarrierRequest{xid: xid{3}},
	}
	for _, m := range sent {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	for i, want := range sent {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("stream message %d mismatch: %#v vs %#v", i, want, got)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("ReadMessage on empty stream succeeded, want EOF")
	}
}

func TestRUMAckEncoding(t *testing.T) {
	ack := NewRUMAck(0x12345678, RUMAckInstalled)
	ack.SetXID(99)
	got := roundTrip(t, ack).(*Error)
	xidVal, code, ok := got.IsRUMAck()
	if !ok {
		t.Fatal("IsRUMAck = false, want true")
	}
	if xidVal != 0x12345678 {
		t.Errorf("acked xid = %#x, want 0x12345678", xidVal)
	}
	if code != RUMAckInstalled {
		t.Errorf("code = %d, want %d", code, RUMAckInstalled)
	}
	// A normal OpenFlow error must not be mistaken for a RUM ack.
	plain := &Error{ErrType: ErrTypeBadRequest, Code: 1, Data: []byte{0, 0, 0, 5}}
	if _, _, ok := plain.IsRUMAck(); ok {
		t.Error("plain error recognized as RUM ack")
	}
}

// randomMatch builds an arbitrary but valid match from random bits.
func randomMatch(r *rand.Rand) Match {
	var m Match
	m.Wildcards = r.Uint32() & (WcAll | WcNWSrcMask | WcNWDstMask)
	m.InPort = uint16(r.Uint32())
	r.Read(m.DLSrc[:])
	r.Read(m.DLDst[:])
	m.DLVLAN = uint16(r.Uint32())
	m.DLVLANPCP = uint8(r.Uint32() & 7)
	m.DLType = uint16(r.Uint32())
	m.NWTOS = uint8(r.Uint32())
	m.NWProto = uint8(r.Uint32())
	r.Read(m.NWSrc[:])
	r.Read(m.NWDst[:])
	m.TPSrc = uint16(r.Uint32())
	m.TPDst = uint16(r.Uint32())
	return m
}

func TestMatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatch(r)
		got, err := UnmarshalMatch(m.Marshal())
		if err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatch(r).Normalize()
		return m == m.Normalize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeClearsWildcardedFields(t *testing.T) {
	m := MatchAll()
	m.InPort = 5
	m.DLType = 0x0800
	m.TPDst = 80
	m.NWSrc = [4]byte{10, 0, 0, 1}
	n := m.Normalize()
	if n.InPort != 0 || n.DLType != 0 || n.TPDst != 0 || n.NWSrc != [4]byte{} {
		t.Errorf("Normalize left wildcarded values: %+v", n)
	}
	if n != MatchAll().Normalize() {
		t.Errorf("normalized all-wildcard matches differ: %+v vs %+v", n, MatchAll().Normalize())
	}
}

func TestNWWildBitsAccessors(t *testing.T) {
	var m Match
	for _, bits := range []int{0, 1, 8, 16, 31, 32, 40, -3} {
		m.SetNWSrcWildBits(bits)
		want := bits
		if want > 32 {
			want = 32
		}
		if want < 0 {
			want = 0
		}
		if got := m.NWSrcWildBits(); got != want {
			t.Errorf("SetNWSrcWildBits(%d) -> %d, want %d", bits, got, want)
		}
		m.SetNWDstWildBits(bits)
		if got := m.NWDstWildBits(); got != want {
			t.Errorf("SetNWDstWildBits(%d) -> %d, want %d", bits, got, want)
		}
	}
}

func TestActionListRoundTripProperty(t *testing.T) {
	mk := func(r *rand.Rand) []Action {
		n := r.Intn(6)
		acts := make([]Action, 0, n)
		for i := 0; i < n; i++ {
			switch r.Intn(8) {
			case 0:
				acts = append(acts, ActionOutput{Port: uint16(r.Uint32()), MaxLen: uint16(r.Uint32())})
			case 1:
				acts = append(acts, ActionSetVLANVID{VID: uint16(r.Uint32())})
			case 2:
				acts = append(acts, ActionSetVLANPCP{PCP: uint8(r.Uint32() & 7)})
			case 3:
				acts = append(acts, ActionStripVLAN{})
			case 4:
				var a EthAddr
				r.Read(a[:])
				acts = append(acts, ActionSetDLAddr{Dst: r.Intn(2) == 0, Addr: a})
			case 5:
				var a [4]byte
				r.Read(a[:])
				acts = append(acts, ActionSetNWAddr{Dst: r.Intn(2) == 0, Addr: a})
			case 6:
				acts = append(acts, ActionSetNWTOS{TOS: uint8(r.Uint32())})
			case 7:
				acts = append(acts, ActionSetTPPort{Dst: r.Intn(2) == 0, Port: uint16(r.Uint32())})
			}
		}
		return acts
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		acts := mk(r)
		got, err := UnmarshalActions(MarshalActions(acts))
		if err != nil {
			return false
		}
		if len(got) != len(acts) {
			return false
		}
		return ActionsEqual(acts, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestActionsEqual(t *testing.T) {
	a := []Action{ActionOutput{Port: 1}, ActionSetNWTOS{TOS: 4}}
	b := []Action{ActionOutput{Port: 1}, ActionSetNWTOS{TOS: 4}}
	c := []Action{ActionOutput{Port: 2}, ActionSetNWTOS{TOS: 4}}
	if !ActionsEqual(a, b) {
		t.Error("identical lists reported unequal")
	}
	if ActionsEqual(a, c) {
		t.Error("different lists reported equal")
	}
	if ActionsEqual(a, a[:1]) {
		t.Error("different lengths reported equal")
	}
	if !ActionsEqual(nil, nil) {
		t.Error("nil lists should be equal")
	}
}

func TestFlowModClone(t *testing.T) {
	fm := &FlowMod{Match: sampleMatch(), Command: FCAdd, Priority: 10,
		Actions: []Action{ActionOutput{Port: 1}}}
	fm.SetXID(7)
	c := fm.Clone()
	c.Actions[0] = ActionOutput{Port: 9}
	c.Priority = 20
	if fm.Actions[0] != (ActionOutput{Port: 1}) || fm.Priority != 10 {
		t.Errorf("Clone aliases original: %+v", fm)
	}
}

func TestMatchString(t *testing.T) {
	m := MatchAll()
	if got := m.String(); got != "match{*}" {
		t.Errorf("MatchAll().String() = %q", got)
	}
	m = sampleMatch()
	s := m.String()
	for _, want := range []string{"dl_type=0x0800", "nw_src=10.0.0.1/32", "nw_dst=10.1.2.0/24", "nw_tos=32"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestUnsupportedActionDecode(t *testing.T) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint16(buf[0:2], uint16(ActEnqueue))
	binary.BigEndian.PutUint16(buf[2:4], 8)
	if _, err := UnmarshalActions(buf); err == nil {
		t.Error("decoding enqueue action succeeded, want error")
	}
}

func TestFlowStatsEntriesRoundTrip(t *testing.T) {
	entries := []FlowStatsEntry{
		{TableID: 0, Match: sampleMatch(), Priority: 5, Cookie: 9,
			PacketCount: 100, ByteCount: 6400,
			Actions: []Action{ActionOutput{Port: 3}}},
		{TableID: 0, Match: MatchAll(), Priority: 1},
	}
	var body []byte
	for i := range entries {
		body = append(body, entries[i].Marshal()...)
	}
	got, err := UnmarshalFlowStatsEntries(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Match != entries[i].Match || got[i].Priority != entries[i].Priority ||
			got[i].PacketCount != entries[i].PacketCount || !ActionsEqual(got[i].Actions, entries[i].Actions) {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestTableStatsEntriesRoundTrip(t *testing.T) {
	entries := []TableStatsEntry{
		{TableID: 0, Name: "hardware", Wildcards: WcAll, MaxEntries: 1500, ActiveCount: 300, LookupCount: 10, MatchedCount: 9},
	}
	got, err := UnmarshalTableStatsEntries(entries[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, entries)
	}
}
