package of

import (
	"encoding/binary"
	"fmt"
)

// Hello opens version negotiation.
type Hello struct{ xid }

func (*Hello) MsgType() MsgType                      { return TypeHello }
func (*Hello) AppendBody(buf []byte) ([]byte, error) { return buf, nil }
func (*Hello) UnmarshalBody(data []byte) error       { return nil }

// EchoRequest is a liveness probe; the payload is echoed back.
type EchoRequest struct {
	xid
	Data []byte
}

func (*EchoRequest) MsgType() MsgType { return TypeEchoRequest }
func (m *EchoRequest) AppendBody(buf []byte) ([]byte, error) {
	return append(buf, m.Data...), nil
}
func (m *EchoRequest) UnmarshalBody(data []byte) error {
	m.Data = append(m.Data[:0], data...)
	return nil
}

// EchoReply answers an EchoRequest.
type EchoReply struct {
	xid
	Data []byte
}

func (*EchoReply) MsgType() MsgType { return TypeEchoReply }
func (m *EchoReply) AppendBody(buf []byte) ([]byte, error) {
	return append(buf, m.Data...), nil
}
func (m *EchoReply) UnmarshalBody(data []byte) error {
	m.Data = append(m.Data[:0], data...)
	return nil
}

// Vendor is an opaque vendor-extension message.
type Vendor struct {
	xid
	VendorID uint32
	Data     []byte
}

func (*Vendor) MsgType() MsgType { return TypeVendor }

func (m *Vendor) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 4)
	binary.BigEndian.PutUint32(b, m.VendorID)
	return append(buf, m.Data...), nil
}

func (m *Vendor) UnmarshalBody(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("vendor body too short (%d)", len(data))
	}
	m.VendorID = binary.BigEndian.Uint32(data[0:4])
	m.Data = append(m.Data[:0], data[4:]...)
	return nil
}

// Error reports a failure — or, under ErrTypeRUMAck, a positive RUM
// acknowledgment. Data conventionally carries the first 64 bytes of the
// offending request; RUM stores the acknowledged FlowMod's xid there.
type Error struct {
	xid
	ErrType uint16
	Code    uint16
	Data    []byte
}

func (*Error) MsgType() MsgType { return TypeError }

func (m *Error) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 4)
	binary.BigEndian.PutUint16(b[0:2], m.ErrType)
	binary.BigEndian.PutUint16(b[2:4], m.Code)
	return append(buf, m.Data...), nil
}

func (m *Error) UnmarshalBody(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("error body too short (%d)", len(data))
	}
	m.ErrType = binary.BigEndian.Uint16(data[0:2])
	m.Code = binary.BigEndian.Uint16(data[2:4])
	m.Data = append(m.Data[:0], data[4:]...)
	return nil
}

// IsRUMAck reports whether the error is a RUM positive acknowledgment and,
// if so, returns the xid of the acknowledged message.
func (m *Error) IsRUMAck() (ackedXID uint32, code uint16, ok bool) {
	if m.ErrType != ErrTypeRUMAck || len(m.Data) < 4 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(m.Data[0:4]), m.Code, true
}

// NewRUMAck builds the positive-acknowledgment error RUM sends to RUM-aware
// controllers for the FlowMod with the given xid.
func NewRUMAck(ackedXID uint32, code uint16) *Error {
	e := &Error{}
	FillRUMAck(e, ackedXID, code)
	return e
}

// FillRUMAck formats e (typically pool-recycled via AcquireError) as the
// positive acknowledgment for the FlowMod with the given xid, reusing
// e's payload buffer.
func FillRUMAck(e *Error, ackedXID uint32, code uint16) {
	e.ErrType = ErrTypeRUMAck
	e.Code = code
	var xid [4]byte
	binary.BigEndian.PutUint32(xid[:], ackedXID)
	e.Data = append(e.Data[:0], xid[:]...)
}

// FeaturesRequest asks the switch for its datapath description.
type FeaturesRequest struct{ xid }

func (*FeaturesRequest) MsgType() MsgType                      { return TypeFeaturesRequest }
func (*FeaturesRequest) AppendBody(buf []byte) ([]byte, error) { return buf, nil }
func (*FeaturesRequest) UnmarshalBody(data []byte) error       { return nil }

// PhyPort describes one physical port (ofp_phy_port, 48 bytes).
type PhyPort struct {
	PortNo     uint16
	HWAddr     EthAddr
	Name       string // at most 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

const phyPortLen = 48

func (p *PhyPort) marshal(buf []byte) []byte {
	buf, b := grow(buf, phyPortLen)
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	// Names are zero padded and always NUL terminated on the wire, so at
	// most 15 name bytes survive encoding — matching what the decoder
	// accepts.
	copy(b[8:24], p.Name)
	if len(p.Name) >= 16 {
		b[23] = 0
	}
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
	return buf
}

func unmarshalPhyPort(b []byte) (PhyPort, error) {
	var p PhyPort
	if len(b) < phyPortLen {
		return p, fmt.Errorf("phy_port needs %d bytes, have %d", phyPortLen, len(b))
	}
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	// The name field is NUL-terminated on the wire; cap unterminated
	// (non-conforming) input at 15 bytes — the longest name the encoder
	// can represent — so decode→encode→decode is a fixed point.
	name := b[8:23]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p, nil
}

// FeaturesReply describes the datapath.
type FeaturesReply struct {
	xid
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

func (*FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

func (m *FeaturesReply) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 24)
	binary.BigEndian.PutUint64(b[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], m.NBuffers)
	b[12] = m.NTables
	binary.BigEndian.PutUint32(b[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(b[20:24], m.Actions)
	for i := range m.Ports {
		buf = m.Ports[i].marshal(buf)
	}
	return buf, nil
}

func (m *FeaturesReply) UnmarshalBody(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("features_reply body too short (%d)", len(data))
	}
	m.DatapathID = binary.BigEndian.Uint64(data[0:8])
	m.NBuffers = binary.BigEndian.Uint32(data[8:12])
	m.NTables = data[12]
	m.Capabilities = binary.BigEndian.Uint32(data[16:20])
	m.Actions = binary.BigEndian.Uint32(data[20:24])
	rest := data[24:]
	if len(rest)%phyPortLen != 0 {
		return fmt.Errorf("features_reply port list length %d not a multiple of %d", len(rest), phyPortLen)
	}
	m.Ports = nil
	for len(rest) > 0 {
		p, err := unmarshalPhyPort(rest)
		if err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
		rest = rest[phyPortLen:]
	}
	return nil
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{ xid }

func (*GetConfigRequest) MsgType() MsgType                      { return TypeGetConfigRequest }
func (*GetConfigRequest) AppendBody(buf []byte) ([]byte, error) { return buf, nil }
func (*GetConfigRequest) UnmarshalBody(data []byte) error       { return nil }

// SwitchConfig carries flags and miss_send_len (shared by Get/Set config).
type SwitchConfig struct {
	Flags       uint16
	MissSendLen uint16
}

func (c *SwitchConfig) appendConfig(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 4)
	binary.BigEndian.PutUint16(b[0:2], c.Flags)
	binary.BigEndian.PutUint16(b[2:4], c.MissSendLen)
	return buf, nil
}

func (c *SwitchConfig) unmarshalConfig(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("switch config body too short (%d)", len(data))
	}
	c.Flags = binary.BigEndian.Uint16(data[0:2])
	c.MissSendLen = binary.BigEndian.Uint16(data[2:4])
	return nil
}

// GetConfigReply returns the switch configuration.
type GetConfigReply struct {
	xid
	SwitchConfig
}

func (*GetConfigReply) MsgType() MsgType                        { return TypeGetConfigReply }
func (m *GetConfigReply) AppendBody(buf []byte) ([]byte, error) { return m.appendConfig(buf) }
func (m *GetConfigReply) UnmarshalBody(data []byte) error       { return m.unmarshalConfig(data) }

// SetConfig updates the switch configuration.
type SetConfig struct {
	xid
	SwitchConfig
}

func (*SetConfig) MsgType() MsgType                        { return TypeSetConfig }
func (m *SetConfig) AppendBody(buf []byte) ([]byte, error) { return m.appendConfig(buf) }
func (m *SetConfig) UnmarshalBody(data []byte) error       { return m.unmarshalConfig(data) }

// PacketIn delivers a data-plane packet to the controller. RUM's probing
// techniques receive probe packets back through PacketIns (§3.2).
type PacketIn struct {
	xid
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

func (*PacketIn) MsgType() MsgType { return TypePacketIn }

func (m *PacketIn) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 10)
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(b[6:8], m.InPort)
	b[8] = m.Reason
	return append(buf, m.Data...), nil
}

func (m *PacketIn) UnmarshalBody(data []byte) error {
	if len(data) < 10 {
		return fmt.Errorf("packet_in body too short (%d)", len(data))
	}
	m.BufferID = binary.BigEndian.Uint32(data[0:4])
	m.TotalLen = binary.BigEndian.Uint16(data[4:6])
	m.InPort = binary.BigEndian.Uint16(data[6:8])
	m.Reason = data[8]
	m.Data = append(m.Data[:0], data[10:]...)
	return nil
}

// PacketOut injects a packet into the switch pipeline. RUM sends probe
// packets with a single output action toward the probed switch (§3.2).
type PacketOut struct {
	xid
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

func (*PacketOut) MsgType() MsgType { return TypePacketOut }

func (m *PacketOut) AppendBody(buf []byte) ([]byte, error) {
	start := len(buf)
	buf, b := grow(buf, 8)
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	buf = AppendActions(buf, m.Actions)
	actLen := len(buf) - start - 8
	binary.BigEndian.PutUint16(buf[start+6:start+8], uint16(actLen))
	return append(buf, m.Data...), nil
}

func (m *PacketOut) UnmarshalBody(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("packet_out body too short (%d)", len(data))
	}
	m.BufferID = binary.BigEndian.Uint32(data[0:4])
	m.InPort = binary.BigEndian.Uint16(data[4:6])
	actLen := int(binary.BigEndian.Uint16(data[6:8]))
	if 8+actLen > len(data) {
		return fmt.Errorf("packet_out actions_len %d exceeds body", actLen)
	}
	var err error
	m.Actions, err = UnmarshalActionsAppend(m.Actions[:0], data[8:8+actLen])
	if err != nil {
		return err
	}
	m.Data = append(m.Data[:0], data[8+actLen:]...)
	return nil
}

// FlowMod adds, modifies or deletes flow table entries.
type FlowMod struct {
	xid
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

func (*FlowMod) MsgType() MsgType { return TypeFlowMod }

func (m *FlowMod) AppendBody(buf []byte) ([]byte, error) {
	buf = m.Match.Append(buf)
	buf, b := grow(buf, 24)
	binary.BigEndian.PutUint64(b[0:8], m.Cookie)
	binary.BigEndian.PutUint16(b[8:10], m.Command)
	binary.BigEndian.PutUint16(b[10:12], m.IdleTimeout)
	binary.BigEndian.PutUint16(b[12:14], m.HardTimeout)
	binary.BigEndian.PutUint16(b[14:16], m.Priority)
	binary.BigEndian.PutUint32(b[16:20], m.BufferID)
	binary.BigEndian.PutUint16(b[20:22], m.OutPort)
	binary.BigEndian.PutUint16(b[22:24], m.Flags)
	return AppendActions(buf, m.Actions), nil
}

func (m *FlowMod) UnmarshalBody(data []byte) error {
	if len(data) < MatchLen+24 {
		return fmt.Errorf("flow_mod body too short (%d)", len(data))
	}
	var err error
	m.Match, err = UnmarshalMatch(data)
	if err != nil {
		return err
	}
	b := data[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(b[0:8])
	m.Command = binary.BigEndian.Uint16(b[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(b[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(b[12:14])
	m.Priority = binary.BigEndian.Uint16(b[14:16])
	m.BufferID = binary.BigEndian.Uint32(b[16:20])
	m.OutPort = binary.BigEndian.Uint16(b[20:22])
	m.Flags = binary.BigEndian.Uint16(b[22:24])
	m.Actions, err = UnmarshalActionsAppend(m.Actions[:0], b[24:])
	return err
}

// Clone returns a deep copy of the FlowMod; proxies duplicate messages
// before mutating them so buffered copies stay intact.
func (m *FlowMod) Clone() *FlowMod {
	c := *m
	c.Actions = append([]Action(nil), m.Actions...)
	return &c
}

func (m *FlowMod) String() string {
	cmd := map[uint16]string{
		FCAdd: "add", FCModify: "mod", FCModifyStrict: "mod_strict",
		FCDelete: "del", FCDeleteStrict: "del_strict",
	}[m.Command]
	return fmt.Sprintf("flow_mod{%s,prio=%d,%v,actions=%v}", cmd, m.Priority, m.Match, m.Actions)
}

// FlowRemoved notifies the controller that a rule expired or was deleted.
type FlowRemoved struct {
	xid
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

func (*FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

func (m *FlowRemoved) AppendBody(buf []byte) ([]byte, error) {
	buf = m.Match.Append(buf)
	buf, b := grow(buf, 40)
	binary.BigEndian.PutUint64(b[0:8], m.Cookie)
	binary.BigEndian.PutUint16(b[8:10], m.Priority)
	b[10] = m.Reason
	binary.BigEndian.PutUint32(b[12:16], m.DurationSec)
	binary.BigEndian.PutUint32(b[16:20], m.DurationNsec)
	binary.BigEndian.PutUint16(b[20:22], m.IdleTimeout)
	binary.BigEndian.PutUint64(b[24:32], m.PacketCount)
	binary.BigEndian.PutUint64(b[32:40], m.ByteCount)
	return buf, nil
}

func (m *FlowRemoved) UnmarshalBody(data []byte) error {
	if len(data) < MatchLen+40 {
		return fmt.Errorf("flow_removed body too short (%d)", len(data))
	}
	var err error
	m.Match, err = UnmarshalMatch(data)
	if err != nil {
		return err
	}
	b := data[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(b[0:8])
	m.Priority = binary.BigEndian.Uint16(b[8:10])
	m.Reason = b[10]
	m.DurationSec = binary.BigEndian.Uint32(b[12:16])
	m.DurationNsec = binary.BigEndian.Uint32(b[16:20])
	m.IdleTimeout = binary.BigEndian.Uint16(b[20:22])
	m.PacketCount = binary.BigEndian.Uint64(b[24:32])
	m.ByteCount = binary.BigEndian.Uint64(b[32:40])
	return nil
}

// PortStatus announces a port change.
type PortStatus struct {
	xid
	Reason uint8
	Desc   PhyPort
}

func (*PortStatus) MsgType() MsgType { return TypePortStatus }

func (m *PortStatus) AppendBody(buf []byte) ([]byte, error) {
	buf, b := grow(buf, 8)
	b[0] = m.Reason
	return m.Desc.marshal(buf), nil
}

func (m *PortStatus) UnmarshalBody(data []byte) error {
	if len(data) < 8+phyPortLen {
		return fmt.Errorf("port_status body too short (%d)", len(data))
	}
	m.Reason = data[0]
	var err error
	m.Desc, err = unmarshalPhyPort(data[8:])
	return err
}

// BarrierRequest asks the switch to finish all previous commands before
// processing anything after it — the primitive whose broken implementations
// motivate this whole system.
type BarrierRequest struct{ xid }

func (*BarrierRequest) MsgType() MsgType                      { return TypeBarrierRequest }
func (*BarrierRequest) AppendBody(buf []byte) ([]byte, error) { return buf, nil }
func (*BarrierRequest) UnmarshalBody(data []byte) error       { return nil }

// BarrierReply answers a BarrierRequest.
type BarrierReply struct{ xid }

func (*BarrierReply) MsgType() MsgType                      { return TypeBarrierReply }
func (*BarrierReply) AppendBody(buf []byte) ([]byte, error) { return buf, nil }
func (*BarrierReply) UnmarshalBody(data []byte) error       { return nil }
