package of

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Wildcard bits of ofp_match.wildcards (OpenFlow 1.0 §5.2.3).
const (
	WcInPort  uint32 = 1 << 0
	WcDLVLAN  uint32 = 1 << 1
	WcDLSrc   uint32 = 1 << 2
	WcDLDst   uint32 = 1 << 3
	WcDLType  uint32 = 1 << 4
	WcNWProto uint32 = 1 << 5
	WcTPSrc   uint32 = 1 << 6
	WcTPDst   uint32 = 1 << 7

	// NWSrc/NWDst are 6-bit CIDR-style wildcard counts: the value is the
	// number of least-significant address bits that are wildcarded (>= 32
	// means the whole address is ignored).
	WcNWSrcShift        = 8
	WcNWSrcMask  uint32 = 0x3f << WcNWSrcShift
	WcNWSrcAll   uint32 = 32 << WcNWSrcShift
	WcNWDstShift        = 14
	WcNWDstMask  uint32 = 0x3f << WcNWDstShift
	WcNWDstAll   uint32 = 32 << WcNWDstShift

	WcDLVLANPCP uint32 = 1 << 20
	WcNWTOS     uint32 = 1 << 21

	// WcAll wildcards every field.
	WcAll uint32 = ((1<<22)-1) & ^(WcNWSrcMask|WcNWDstMask) | WcNWSrcAll | WcNWDstAll
)

// MatchLen is the encoded size of ofp_match.
const MatchLen = 40

// EthAddr is a 48-bit Ethernet address.
type EthAddr [6]byte

func (a EthAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsZero reports whether the address is all zero bytes.
func (a EthAddr) IsZero() bool { return a == EthAddr{} }

// Match is the OpenFlow 1.0 12-tuple match structure. A field takes part in
// matching only when its wildcard bit is clear (for IP addresses: when fewer
// than 32 low bits are wildcarded).
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     EthAddr
	DLDst     EthAddr
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     [4]byte
	NWDst     [4]byte
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match that matches every packet.
func MatchAll() Match { return Match{Wildcards: WcAll} }

// NWSrcWildBits returns how many low bits of NWSrc are wildcarded (capped at 32).
func (m *Match) NWSrcWildBits() int {
	b := int((m.Wildcards & WcNWSrcMask) >> WcNWSrcShift)
	if b > 32 {
		b = 32
	}
	return b
}

// NWDstWildBits returns how many low bits of NWDst are wildcarded (capped at 32).
func (m *Match) NWDstWildBits() int {
	b := int((m.Wildcards & WcNWDstMask) >> WcNWDstShift)
	if b > 32 {
		b = 32
	}
	return b
}

// SetNWSrcWildBits sets the number of wildcarded low bits of NWSrc.
func (m *Match) SetNWSrcWildBits(bits int) {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	m.Wildcards = (m.Wildcards &^ WcNWSrcMask) | (uint32(bits) << WcNWSrcShift)
}

// SetNWDstWildBits sets the number of wildcarded low bits of NWDst.
func (m *Match) SetNWDstWildBits(bits int) {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	m.Wildcards = (m.Wildcards &^ WcNWDstMask) | (uint32(bits) << WcNWDstShift)
}

// Normalize clears the values of fully wildcarded fields so that two matches
// with identical matching semantics compare equal with ==. OpenFlow requires
// strict-delete/modify to compare match structures; normalizing first makes
// that comparison well defined.
func (m Match) Normalize() Match {
	if m.Wildcards&WcInPort != 0 {
		m.InPort = 0
	}
	if m.Wildcards&WcDLVLAN != 0 {
		m.DLVLAN = 0
	}
	if m.Wildcards&WcDLSrc != 0 {
		m.DLSrc = EthAddr{}
	}
	if m.Wildcards&WcDLDst != 0 {
		m.DLDst = EthAddr{}
	}
	if m.Wildcards&WcDLType != 0 {
		m.DLType = 0
	}
	if m.Wildcards&WcNWProto != 0 {
		m.NWProto = 0
	}
	if m.Wildcards&WcTPSrc != 0 {
		m.TPSrc = 0
	}
	if m.Wildcards&WcTPDst != 0 {
		m.TPDst = 0
	}
	if m.Wildcards&WcDLVLANPCP != 0 {
		m.DLVLANPCP = 0
	}
	if m.Wildcards&WcNWTOS != 0 {
		m.NWTOS = 0
	}
	// Zero the wildcarded low bits of the IP addresses and clamp the bit
	// counts so equivalent CIDR wildcards encode identically.
	sb := m.NWSrcWildBits()
	m.SetNWSrcWildBits(sb)
	src := binary.BigEndian.Uint32(m.NWSrc[:])
	src &= prefixMask(sb)
	binary.BigEndian.PutUint32(m.NWSrc[:], src)
	db := m.NWDstWildBits()
	m.SetNWDstWildBits(db)
	dst := binary.BigEndian.Uint32(m.NWDst[:])
	dst &= prefixMask(db)
	binary.BigEndian.PutUint32(m.NWDst[:], dst)
	// Clear any bits above the defined wildcard space.
	m.Wildcards &= WcAll | WcNWSrcMask | WcNWDstMask
	return m
}

// prefixMask returns a mask keeping the (32-wildBits) high bits.
func prefixMask(wildBits int) uint32 {
	if wildBits >= 32 {
		return 0
	}
	return ^uint32(0) << uint(wildBits)
}

// Marshal encodes the match in wire format (40 bytes).
func (m *Match) Marshal() []byte {
	buf := make([]byte, MatchLen)
	m.MarshalTo(buf)
	return buf
}

// Append appends the 40-byte wire encoding to buf in place.
func (m *Match) Append(buf []byte) []byte {
	buf, b := grow(buf, MatchLen)
	m.MarshalTo(b)
	return buf
}

// MarshalTo encodes the match into buf, which must be at least MatchLen long.
func (m *Match) MarshalTo(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(buf[4:6], m.InPort)
	copy(buf[6:12], m.DLSrc[:])
	copy(buf[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(buf[18:20], m.DLVLAN)
	buf[20] = m.DLVLANPCP
	buf[21] = 0 // pad
	binary.BigEndian.PutUint16(buf[22:24], m.DLType)
	buf[24] = m.NWTOS
	buf[25] = m.NWProto
	buf[26], buf[27] = 0, 0 // pad
	copy(buf[28:32], m.NWSrc[:])
	copy(buf[32:36], m.NWDst[:])
	binary.BigEndian.PutUint16(buf[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(buf[38:40], m.TPDst)
}

// UnmarshalMatch decodes a 40-byte wire match.
func UnmarshalMatch(buf []byte) (Match, error) {
	var m Match
	if len(buf) < MatchLen {
		return m, fmt.Errorf("of: match needs %d bytes, have %d", MatchLen, len(buf))
	}
	m.Wildcards = binary.BigEndian.Uint32(buf[0:4])
	m.InPort = binary.BigEndian.Uint16(buf[4:6])
	copy(m.DLSrc[:], buf[6:12])
	copy(m.DLDst[:], buf[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(buf[18:20])
	m.DLVLANPCP = buf[20]
	m.DLType = binary.BigEndian.Uint16(buf[22:24])
	m.NWTOS = buf[24]
	m.NWProto = buf[25]
	copy(m.NWSrc[:], buf[28:32])
	copy(m.NWDst[:], buf[32:36])
	m.TPSrc = binary.BigEndian.Uint16(buf[36:38])
	m.TPDst = binary.BigEndian.Uint16(buf[38:40])
	return m, nil
}

// SetNWSrc sets the IPv4 source with an exact (/32) match.
func (m *Match) SetNWSrc(a netip.Addr) {
	m.NWSrc = a.As4()
	m.SetNWSrcWildBits(0)
}

// SetNWDst sets the IPv4 destination with an exact (/32) match.
func (m *Match) SetNWDst(a netip.Addr) {
	m.NWDst = a.As4()
	m.SetNWDstWildBits(0)
}

// NWSrcAddr returns the source address as a netip.Addr.
func (m *Match) NWSrcAddr() netip.Addr { return netip.AddrFrom4(m.NWSrc) }

// NWDstAddr returns the destination address as a netip.Addr.
func (m *Match) NWDstAddr() netip.Addr { return netip.AddrFrom4(m.NWDst) }

func (m Match) String() string {
	var parts []string
	if m.Wildcards&WcInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.Wildcards&WcDLSrc == 0 {
		parts = append(parts, "dl_src="+m.DLSrc.String())
	}
	if m.Wildcards&WcDLDst == 0 {
		parts = append(parts, "dl_dst="+m.DLDst.String())
	}
	if m.Wildcards&WcDLVLAN == 0 {
		parts = append(parts, fmt.Sprintf("dl_vlan=%d", m.DLVLAN))
	}
	if m.Wildcards&WcDLVLANPCP == 0 {
		parts = append(parts, fmt.Sprintf("dl_vlan_pcp=%d", m.DLVLANPCP))
	}
	if m.Wildcards&WcDLType == 0 {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", m.DLType))
	}
	if m.Wildcards&WcNWTOS == 0 {
		parts = append(parts, fmt.Sprintf("nw_tos=%d", m.NWTOS))
	}
	if m.Wildcards&WcNWProto == 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NWProto))
	}
	if b := m.NWSrcWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%s/%d", m.NWSrcAddr(), 32-b))
	}
	if b := m.NWDstWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", m.NWDstAddr(), 32-b))
	}
	if m.Wildcards&WcTPSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TPSrc))
	}
	if m.Wildcards&WcTPDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TPDst))
	}
	if len(parts) == 0 {
		return "match{*}"
	}
	return "match{" + strings.Join(parts, ",") + "}"
}
