package switchsim

import (
	"net/netip"
	"testing"
	"time"

	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
	"rum/internal/sim"
	"rum/internal/transport"
)

// rig is a one-switch test network: h1 -(p1)- sw -(p2)- h2, with a pipe
// control channel whose controller end is returned.
type rig struct {
	sim  *sim.Sim
	net  *netsim.Network
	sw   *Switch
	h1   *netsim.Host
	h2   *netsim.Host
	ctrl transport.Conn
	got  []of.Message
}

func newRig(t *testing.T, prof Profile) *rig {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	sw := New("sw1", 1, prof, s, n)
	h1 := netsim.NewHost(n, "h1")
	h2 := netsim.NewHost(n, "h2")
	n.Connect(h1, h1.Port(), sw, 1, 10*time.Microsecond)
	n.Connect(sw, 2, h2, h2.Port(), 10*time.Microsecond)
	ctrlEnd, swEnd := transport.Pipe(s, 100*time.Microsecond)
	sw.AttachConn(swEnd)
	r := &rig{sim: s, net: n, sw: sw, h1: h1, h2: h2, ctrl: ctrlEnd}
	ctrlEnd.SetHandler(func(m of.Message) { r.got = append(r.got, m) })
	return r
}

func ipMatch(src, dst string) of.Match {
	m := of.MatchAll()
	m.Wildcards &^= of.WcDLType
	m.DLType = packet.EtherTypeIPv4
	m.SetNWSrc(netip.MustParseAddr(src))
	m.SetNWDst(netip.MustParseAddr(dst))
	return m
}

func flowMod(xid uint32, prio uint16, m of.Match, acts ...of.Action) *of.FlowMod {
	fm := &of.FlowMod{Command: of.FCAdd, Priority: prio, Match: m,
		BufferID: of.BufferNone, OutPort: of.PortNone, Actions: acts}
	fm.SetXID(xid)
	return fm
}

func (r *rig) msgsOfType(t of.MsgType) []of.Message {
	var out []of.Message
	for _, m := range r.got {
		if m.MsgType() == t {
			out = append(out, m)
		}
	}
	return out
}

func TestFeaturesAndEcho(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	fr := &of.FeaturesRequest{}
	fr.SetXID(1)
	_ = r.ctrl.Send(fr)
	er := &of.EchoRequest{Data: []byte("x")}
	er.SetXID(2)
	_ = r.ctrl.Send(er)
	r.sim.Run()

	reps := r.msgsOfType(of.TypeFeaturesReply)
	if len(reps) != 1 {
		t.Fatalf("got %d features replies, want 1", len(reps))
	}
	feat := reps[0].(*of.FeaturesReply)
	if feat.DatapathID != 1 || len(feat.Ports) != 2 {
		t.Errorf("features = dpid %d, %d ports; want dpid 1, 2 ports", feat.DatapathID, len(feat.Ports))
	}
	echoes := r.msgsOfType(of.TypeEchoReply)
	if len(echoes) != 1 || string(echoes[0].(*of.EchoReply).Data) != "x" {
		t.Errorf("echo replies = %v", echoes)
	}
}

func TestSoftwareSwitchForwardsAfterInstall(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	_ = r.ctrl.Send(flowMod(1, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2}))
	r.sim.RunFor(10 * time.Millisecond)

	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 7})
	r.sim.RunFor(10 * time.Millisecond)

	arr := r.h2.Arrivals()
	if len(arr) != 1 || arr[0].FlowID != 7 || arr[0].LastHop != "sw1" {
		t.Fatalf("arrivals = %+v, want one flow-7 arrival via sw1", arr)
	}
}

func TestHardwareDataPlaneLagsControlPlane(t *testing.T) {
	prof := ProfileHP5406zl()
	r := newRig(t, prof)
	_ = r.ctrl.Send(flowMod(1, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2}))
	br := &of.BarrierRequest{}
	br.SetXID(2)
	_ = r.ctrl.Send(br)

	// Run past control-plane processing but before the first sync.
	r.sim.RunFor(50 * time.Millisecond)
	if got := len(r.msgsOfType(of.TypeBarrierReply)); got != 1 {
		t.Fatalf("early-barrier switch sent %d replies by 50ms, want 1", got)
	}
	if r.sw.DataTable().Len() != 0 {
		t.Fatal("rule visible in data plane before sync")
	}
	if r.sw.CtrlTable().Len() != 1 {
		t.Fatal("rule missing from control-plane table")
	}
	// A packet sent now must be dropped: the data plane has no rule.
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 1})
	r.sim.RunFor(5 * time.Millisecond)
	if len(r.h2.Arrivals()) != 0 {
		t.Fatal("packet forwarded before data-plane sync")
	}

	// After the sync period the rule must be active.
	r.sim.RunFor(400 * time.Millisecond)
	if r.sw.DataTable().Len() != 1 {
		t.Fatal("rule not in data plane after sync period")
	}
	acts := r.sw.Activations()
	if len(acts) != 1 || acts[0].XID != 1 {
		t.Fatalf("activations = %+v", acts)
	}
	if acts[0].At < prof.SyncPeriod {
		t.Errorf("activation at %v, want >= sync period %v", acts[0].At, prof.SyncPeriod)
	}
	r.h1.Send(&netsim.Frame{Pkt: pkt.Clone(), FlowID: 1})
	r.sim.RunFor(5 * time.Millisecond)
	if len(r.h2.Arrivals()) != 1 {
		t.Fatal("packet not forwarded after sync")
	}
}

func TestCorrectBarrierWaitsForDataPlane(t *testing.T) {
	r := newRig(t, ProfileCorrect())
	_ = r.ctrl.Send(flowMod(1, 10, ipMatch("10.0.0.1", "10.0.0.2"), of.ActionOutput{Port: 2}))
	br := &of.BarrierRequest{}
	br.SetXID(2)
	_ = r.ctrl.Send(br)

	r.sim.RunFor(50 * time.Millisecond)
	if got := len(r.msgsOfType(of.TypeBarrierReply)); got != 0 {
		t.Fatalf("correct-barrier switch replied before sync (%d replies)", got)
	}
	r.sim.RunFor(500 * time.Millisecond)
	if got := len(r.msgsOfType(of.TypeBarrierReply)); got != 1 {
		t.Fatalf("no barrier reply after sync (%d replies)", got)
	}
	// The reply must not precede the activation.
	acts := r.sw.Activations()
	if len(acts) != 1 {
		t.Fatalf("activations = %+v", acts)
	}
}

func TestBarrierWithEmptyPipelineRepliesImmediately(t *testing.T) {
	r := newRig(t, ProfileCorrect())
	br := &of.BarrierRequest{}
	br.SetXID(9)
	_ = r.ctrl.Send(br)
	r.sim.RunFor(10 * time.Millisecond)
	if got := len(r.msgsOfType(of.TypeBarrierReply)); got != 1 {
		t.Fatalf("barrier on idle switch: %d replies, want 1", got)
	}
}

func TestOutputToControllerGeneratesPacketIn(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	_ = r.ctrl.Send(flowMod(1, 10, of.MatchAll(), of.ActionOutput{Port: of.PortController}))
	r.sim.RunFor(10 * time.Millisecond)

	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 5, 6)
	pkt.Fields.NWTOS = 0x14
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 3})
	r.sim.RunFor(10 * time.Millisecond)

	pins := r.msgsOfType(of.TypePacketIn)
	if len(pins) != 1 {
		t.Fatalf("got %d PacketIns, want 1", len(pins))
	}
	pin := pins[0].(*of.PacketIn)
	if pin.InPort != 1 {
		t.Errorf("PacketIn in_port = %d, want 1", pin.InPort)
	}
	decoded, err := packet.Unmarshal(pin.Data)
	if err != nil {
		t.Fatalf("PacketIn payload does not parse: %v", err)
	}
	if decoded.Fields.NWTOS != 0x14 || decoded.Fields.TPSrc != 5 {
		t.Errorf("PacketIn payload fields = %+v", decoded.Fields)
	}
}

func TestPacketOutInjection(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	pkt := packet.New(netip.MustParseAddr("10.9.9.1"), netip.MustParseAddr("10.9.9.2"), packet.ProtoUDP, 1, 2)
	po := &of.PacketOut{BufferID: of.BufferNone, InPort: of.PortNone,
		Actions: []of.Action{of.ActionOutput{Port: 2}}, Data: pkt.Marshal()}
	po.SetXID(5)
	_ = r.ctrl.Send(po)
	r.sim.RunFor(10 * time.Millisecond)
	arr := r.h2.Arrivals()
	if len(arr) != 1 || arr[0].FlowID != -1 {
		t.Fatalf("PacketOut injection arrivals = %+v", arr)
	}
}

func TestRewriteActionsApplied(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	_ = r.ctrl.Send(flowMod(1, 10, ipMatch("10.0.0.1", "10.0.0.2"),
		of.ActionSetNWTOS{TOS: 0x30}, of.ActionOutput{Port: 2}))
	r.sim.RunFor(10 * time.Millisecond)
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 1})
	r.sim.RunFor(10 * time.Millisecond)
	// The TOS rewrite must not be visible on the sender's copy but must
	// reach h2... we verify via a controller-bound copy instead: install a
	// probe-catch for tos 0x30 is overkill here; assert via drop log that
	// nothing was dropped and the arrival exists.
	if len(r.h2.Arrivals()) != 1 {
		t.Fatalf("no arrival after rewrite+output")
	}
}

func TestDropRuleDropsAndRecords(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	_ = r.ctrl.Send(flowMod(1, 1, of.MatchAll())) // no actions = drop
	r.sim.RunFor(10 * time.Millisecond)
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 4})
	r.sim.RunFor(10 * time.Millisecond)
	drops := r.net.Drops()
	if len(drops) != 1 || drops[0].FlowID != 4 || drops[0].Reason != "drop rule" {
		t.Fatalf("drops = %+v", drops)
	}
}

func TestTableMissDrops(t *testing.T) {
	r := newRig(t, ProfileSoftware())
	pkt := packet.New(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), packet.ProtoUDP, 1, 2)
	r.h1.Send(&netsim.Frame{Pkt: pkt, FlowID: 4})
	r.sim.RunFor(10 * time.Millisecond)
	drops := r.net.Drops()
	if len(drops) != 1 || drops[0].Reason != "table miss" {
		t.Fatalf("drops = %+v", drops)
	}
}

func TestPacketOutRateMatchesProfile(t *testing.T) {
	prof := ProfileHP5406zl()
	r := newRig(t, prof)
	const n = 700
	pkt := packet.New(netip.MustParseAddr("10.9.9.1"), netip.MustParseAddr("10.9.9.2"), packet.ProtoUDP, 1, 2)
	data := pkt.Marshal()
	for i := 0; i < n; i++ {
		po := &of.PacketOut{BufferID: of.BufferNone, InPort: of.PortNone,
			Actions: []of.Action{of.ActionOutput{Port: 2}}, Data: data}
		_ = r.ctrl.Send(po)
	}
	r.sim.Run()
	arr := r.h2.Arrivals()
	if len(arr) != n {
		t.Fatalf("delivered %d of %d PacketOuts", len(arr), n)
	}
	last := arr[len(arr)-1].At
	rate := float64(n) / last.Seconds()
	if rate < 6300 || rate > 7700 {
		t.Errorf("PacketOut rate = %.0f/s, want ≈7006/s", rate)
	}
}

func TestModRateSlowsWithOccupancy(t *testing.T) {
	prof := ProfileHP5406zl()
	prof.SyncPeriod = time.Hour // keep syncs out of the measurement
	r := newRig(t, prof)
	barriers := 0
	send := func(n int, start int) time.Duration {
		t0 := r.sim.Now()
		for i := 0; i < n; i++ {
			ip := netip.AddrFrom4([4]byte{10, 1, byte((start + i) >> 8), byte(start + i)})
			_ = r.ctrl.Send(flowMod(uint32(start+i), 10, ipMatch("10.0.0.1", ip.String()), of.ActionOutput{Port: 2}))
		}
		br := &of.BarrierRequest{}
		br.SetXID(uint32(900000 + start))
		_ = r.ctrl.Send(br)
		barriers++
		for len(r.msgsOfType(of.TypeBarrierReply)) < barriers {
			r.sim.RunFor(time.Millisecond)
		}
		return r.sim.Now() - t0
	}
	first := send(100, 0)
	// Fill the table, then measure again.
	send(900, 100)
	second := send(100, 1000)
	if second <= first {
		t.Errorf("mod processing did not slow with occupancy: %v then %v", first, second)
	}
}

func TestReorderingSwitchReordersAcrossBarriers(t *testing.T) {
	prof := ProfileReordering(42)
	prof.SyncBatch = 5
	r := newRig(t, prof)
	const n = 40
	for i := 0; i < n; i++ {
		ip := netip.AddrFrom4([4]byte{10, 2, 0, byte(i)})
		_ = r.ctrl.Send(flowMod(uint32(i+1), 10, ipMatch("10.0.0.1", ip.String()), of.ActionOutput{Port: 2}))
		br := &of.BarrierRequest{}
		br.SetXID(uint32(1000 + i))
		_ = r.ctrl.Send(br)
	}
	r.sim.RunFor(5 * time.Second)
	acts := r.sw.Activations()
	if len(acts) != n {
		t.Fatalf("activated %d rules, want %d", len(acts), n)
	}
	inOrder := true
	for i := 1; i < len(acts); i++ {
		if acts[i].XID < acts[i-1].XID {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("reordering switch applied every rule in order despite barriers")
	}
}

func TestEarlySwitchKeepsOrderWithinSyncs(t *testing.T) {
	r := newRig(t, ProfileHP5406zl())
	const n = 30
	for i := 0; i < n; i++ {
		ip := netip.AddrFrom4([4]byte{10, 2, 0, byte(i)})
		_ = r.ctrl.Send(flowMod(uint32(i+1), 10, ipMatch("10.0.0.1", ip.String()), of.ActionOutput{Port: 2}))
	}
	r.sim.RunFor(2 * time.Second)
	acts := r.sw.Activations()
	if len(acts) != n {
		t.Fatalf("activated %d rules, want %d", len(acts), n)
	}
	for i := 1; i < len(acts); i++ {
		if acts[i].XID < acts[i-1].XID {
			t.Fatalf("non-reordering switch activated out of order: %d before %d", acts[i].XID, acts[i-1].XID)
		}
	}
}

func TestPacketInterferenceSlowsMods(t *testing.T) {
	prof := ProfileHP5406zl()
	prof.SyncPeriod = time.Hour
	measure := func(withTraffic bool) time.Duration {
		r := newRig(t, prof)
		if withTraffic {
			// Flood-to-controller rule, installed directly in the data
			// plane via the control path, then continuous traffic.
			_ = r.ctrl.Send(flowMod(999, 5, of.MatchAll(), of.ActionOutput{Port: of.PortController}))
			r.sim.RunFor(400 * time.Millisecond)
			pkt := packet.New(netip.MustParseAddr("10.3.0.1"), netip.MustParseAddr("10.3.0.2"), packet.ProtoUDP, 1, 2)
			gen := netsim.NewGenerator(r.h1, []netsim.Flow{{ID: 1, Pkt: pkt, Period: 4 * time.Millisecond}})
			gen.Start(0)
			defer gen.Stop()
		} else {
			r.sim.RunFor(400 * time.Millisecond)
		}
		t0 := r.sim.Now()
		for i := 0; i < 200; i++ {
			ip := netip.AddrFrom4([4]byte{10, 4, 0, byte(i)})
			_ = r.ctrl.Send(flowMod(uint32(i+1), 10, ipMatch("10.0.0.1", ip.String()), of.ActionOutput{Port: 2}))
		}
		br := &of.BarrierRequest{}
		br.SetXID(7777)
		_ = r.ctrl.Send(br)
		for r.sim.Now() < t0+time.Minute {
			r.sim.RunFor(10 * time.Millisecond)
			if len(r.msgsOfType(of.TypeBarrierReply)) > 0 {
				break
			}
		}
		return r.sim.Now() - t0
	}
	quiet := measure(false)
	busy := measure(true)
	slowdown := float64(busy) / float64(quiet)
	if slowdown < 1.01 {
		t.Errorf("PacketIn traffic did not slow mods (%.3fx)", slowdown)
	}
	// The paper reports the mod rate stays >= 96% of the original under
	// PacketIn load; allow a loose upper bound on the slowdown.
	if slowdown > 1.15 {
		t.Errorf("PacketIn interference too strong: %.3fx slowdown", slowdown)
	}
}
