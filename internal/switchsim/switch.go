package switchsim

import (
	"math/rand"
	"sync"
	"time"

	"rum/internal/flowtable"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/sim"
	"rum/internal/transport"
)

// RuleActivation records one rule becoming visible (or disappearing) in the
// data plane — the ground truth the evaluation compares acknowledgment
// times against.
type RuleActivation struct {
	XID      uint32 // xid of the FlowMod that caused the change
	Match    of.Match
	Priority uint16
	Deleted  bool
	At       time.Duration
}

// queuedMsg is a control-plane message awaiting the FIFO server.
type queuedMsg struct {
	msg of.Message
	seq uint64 // FlowMod sequence number (0 for non-mods)
}

// pendingMod is a control-plane-completed FlowMod awaiting data-plane sync.
type pendingMod struct {
	fm  *of.FlowMod
	seq uint64
}

// barrierWaiter is a Correct-mode barrier reply held until the data plane
// catches up with every FlowMod received before it.
type barrierWaiter struct {
	xid uint32
	seq uint64 // all mods with seq <= this must be applied
}

// Switch is an emulated OpenFlow 1.0 switch attached to a netsim.Network.
type Switch struct {
	name string
	dpid uint64
	prof Profile
	clk  sim.Clock
	net  *netsim.Network

	mu   sync.Mutex
	conn transport.Conn
	// epoch invalidates in-flight timer callbacks across a Crash: every
	// scheduled completion captures the epoch at arm time and bails on
	// mismatch, so a restarted switch never executes a pre-crash job.
	epoch uint64

	// Control-plane view of the flow table (updated when the server
	// finishes a FlowMod) and the lagging data-plane copy (updated at
	// sync time). Lookups for real traffic go to dataTable only.
	ctrlTable *flowtable.Table
	dataTable *flowtable.Table

	ctrlQueue []queuedMsg
	ctrlBusy  bool
	syncDue   bool
	syncArmed bool

	pendingSync []pendingMod
	modSeq      uint64 // FlowMods enqueued
	appliedSeq  uint64 // highest FlowMod seq applied to the data plane (FIFO modes)
	barWaiters  []barrierWaiter

	pktOutQueue []*of.PacketOut
	pktOutBusy  bool
	pktInQueue  []pktInJob
	pktInBusy   bool

	stealAcc time.Duration

	activations []RuleActivation
	rng         *rand.Rand

	// Counters for benchmarks.
	modsProcessed    uint64
	barriersServed   uint64
	pktOutsProcessed uint64
	pktInsSent       uint64
	syncs            uint64
}

type pktInJob struct {
	fr     *netsim.Frame
	inPort uint16
	reason uint8
}

// New creates a switch, attaches it to the network, and starts its sync
// timer. The control channel is attached later with AttachConn.
func New(name string, dpid uint64, prof Profile, clk sim.Clock, net *netsim.Network) *Switch {
	sw := &Switch{
		name:      name,
		dpid:      dpid,
		prof:      prof,
		clk:       clk,
		net:       net,
		ctrlTable: flowtable.New(),
		dataTable: flowtable.New(),
		rng:       rand.New(rand.NewSource(prof.ReorderSeed)),
	}
	net.Attach(sw)
	return sw
}

// Name implements netsim.Node.
func (sw *Switch) Name() string { return sw.name }

// DPID returns the datapath id.
func (sw *Switch) DPID() uint64 { return sw.dpid }

// Profile returns the timing profile.
func (sw *Switch) Profile() Profile { return sw.prof }

// AttachConn wires the control channel; the switch starts consuming
// messages from it immediately.
func (sw *Switch) AttachConn(c transport.Conn) {
	sw.mu.Lock()
	sw.conn = c
	sw.mu.Unlock()
	c.SetHandler(sw.onCtrlMsg)
}

// onCtrlMsg dispatches a controller→switch message.
func (sw *Switch) onCtrlMsg(m of.Message) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	switch mm := m.(type) {
	case *of.PacketOut:
		sw.pktOutQueue = append(sw.pktOutQueue, mm)
		sw.kickPktOutLocked()
	case *of.Hello:
		// Nothing to do; transport owns version agreement.
	case *of.FlowMod:
		sw.modSeq++
		sw.ctrlQueue = append(sw.ctrlQueue, queuedMsg{msg: mm, seq: sw.modSeq})
		sw.kickCtrlLocked()
	default:
		sw.ctrlQueue = append(sw.ctrlQueue, queuedMsg{msg: m})
		sw.kickCtrlLocked()
	}
}

// kickCtrlLocked starts the control-plane server if it is idle. A due sync
// preempts the queue (the sync stall is what delays message processing on
// the real hardware).
func (sw *Switch) kickCtrlLocked() {
	if sw.ctrlBusy {
		return
	}
	if sw.syncDue {
		// Rules become visible at the sync boundary; the stall then
		// blocks the control plane while the push completes. The maximum
		// control→data lag is therefore exactly one sync period.
		sw.ctrlBusy = true
		sw.applySyncLocked()
		epoch := sw.epoch
		sw.clk.After(sw.prof.SyncStall, func() { sw.endSyncStall(epoch) })
		return
	}
	if len(sw.ctrlQueue) == 0 {
		return
	}
	job := sw.ctrlQueue[0]
	sw.ctrlQueue = sw.ctrlQueue[1:]
	sw.ctrlBusy = true
	st := sw.serviceTimeLocked(job.msg)
	epoch := sw.epoch
	sw.clk.After(st, func() { sw.completeCtrl(job, epoch) })
}

// serviceTimeLocked models per-message control-plane cost, including the
// occupancy-dependent FlowMod slowdown and fast-path interference stealing.
func (sw *Switch) serviceTimeLocked(m of.Message) time.Duration {
	switch m.(type) {
	case *of.FlowMod:
		base := sw.prof.ModBase + time.Duration(sw.ctrlTable.Len())*sw.prof.ModPerEntry
		steal := sw.stealAcc
		if max := time.Duration(float64(base) * sw.prof.MaxStealFactor); steal > max {
			steal = max
		}
		sw.stealAcc = 0
		return base + steal
	case *of.BarrierRequest:
		return sw.prof.BarrierTime
	default:
		return sw.prof.MiscTime
	}
}

// completeCtrl finishes one control-plane job.
func (sw *Switch) completeCtrl(job queuedMsg, epoch uint64) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.epoch != epoch {
		return // the switch crashed while this job was in service
	}
	switch m := job.msg.(type) {
	case *of.FlowMod:
		sw.modsProcessed++
		sw.ctrlTable.Apply(m)
		if sw.prof.SyncPeriod == 0 {
			// Software switch: the data plane is updated synchronously.
			sw.applyModLocked(pendingMod{fm: m, seq: job.seq})
			sw.appliedSeq = job.seq
			sw.releaseBarriersLocked()
		} else {
			sw.pendingSync = append(sw.pendingSync, pendingMod{fm: m, seq: job.seq})
			sw.armSyncLocked()
		}
	case *of.BarrierRequest:
		sw.completeBarrierLocked(m)
		// Served RUM-internal barrier requests are dead: RUM's strategies
		// and shards track barriers by xid and retain no reference once
		// the request reached the switch (over TCP the switch's copy was
		// decoded fresh; over a pipe the sender handed ownership over).
		// Recycle them through the codec pool. Controller barriers may
		// still be referenced by controller-side bookkeeping and are left
		// to the garbage collector.
		if of.IsRUMXID(m.GetXID()) {
			of.Release(m)
		}
	case *of.EchoRequest:
		reply := &of.EchoReply{Data: m.Data}
		reply.SetXID(m.GetXID())
		sw.sendLocked(reply)
	case *of.FeaturesRequest:
		sw.sendLocked(sw.featuresReplyLocked(m.GetXID()))
	case *of.GetConfigRequest:
		reply := &of.GetConfigReply{SwitchConfig: of.SwitchConfig{MissSendLen: 128}}
		reply.SetXID(m.GetXID())
		sw.sendLocked(reply)
	case *of.SetConfig:
		// Accepted silently.
	case *of.StatsRequest:
		sw.sendLocked(sw.statsReplyLocked(m))
	case *of.Vendor:
		e := &of.Error{ErrType: of.ErrTypeBadRequest, Code: 3 /* bad vendor */}
		e.SetXID(m.GetXID())
		sw.sendLocked(e)
	}
	sw.ctrlBusy = false
	sw.kickCtrlLocked()
}

// completeBarrierLocked implements the profile's barrier semantics.
// Replies come from the codec pool; their final consumer (RUM's ack
// layer for RUM barriers) recycles them.
func (sw *Switch) completeBarrierLocked(m *of.BarrierRequest) {
	sw.barriersServed++
	switch sw.prof.BarrierMode {
	case BarrierEarly, BarrierEarlyReorder:
		// The bug: reply before the data plane caught up.
		sw.sendBarrierReplyLocked(m.GetXID())
	case BarrierCorrect:
		// All FlowMods received before this barrier have been control-
		// processed (FIFO server); hold the reply until they are in the
		// data plane too.
		barrierSeq := sw.modSeq - uint64(sw.countQueuedModsLocked())
		if sw.appliedSeq >= barrierSeq {
			sw.sendBarrierReplyLocked(m.GetXID())
			return
		}
		sw.barWaiters = append(sw.barWaiters, barrierWaiter{xid: m.GetXID(), seq: barrierSeq})
	}
}

// sendBarrierReplyLocked emits one pool-backed barrier reply.
func (sw *Switch) sendBarrierReplyLocked(xid uint32) {
	reply := of.AcquireBarrierReply()
	reply.SetXID(xid)
	sw.sendLocked(reply)
}

func (sw *Switch) countQueuedModsLocked() int {
	n := 0
	for _, q := range sw.ctrlQueue {
		if _, ok := q.msg.(*of.FlowMod); ok {
			n++
		}
	}
	return n
}

func (sw *Switch) releaseBarriersLocked() {
	kept := sw.barWaiters[:0]
	for _, w := range sw.barWaiters {
		if sw.appliedSeq >= w.seq {
			sw.sendBarrierReplyLocked(w.xid)
		} else {
			kept = append(kept, w)
		}
	}
	sw.barWaiters = kept
}

// armSyncLocked schedules the next data-plane sync. The sync clock is
// phase-aligned to multiples of SyncPeriod (a free-running hardware sync
// engine) but armed lazily, so an idle switch schedules no events.
func (sw *Switch) armSyncLocked() {
	if sw.syncArmed || sw.prof.SyncPeriod == 0 || len(sw.pendingSync) == 0 {
		return
	}
	now := sw.clk.Now()
	period := sw.prof.SyncPeriod
	next := (now/period + 1) * period
	sw.syncArmed = true
	epoch := sw.epoch
	sw.clk.After(next-now, func() { sw.onSyncTimer(epoch) })
}

// onSyncTimer requests a sync when work is pending.
func (sw *Switch) onSyncTimer(epoch uint64) {
	sw.mu.Lock()
	if sw.epoch != epoch {
		sw.mu.Unlock()
		return
	}
	sw.syncArmed = false
	if len(sw.pendingSync) > 0 && !sw.syncDue {
		sw.syncDue = true
		sw.kickCtrlLocked()
	}
	sw.mu.Unlock()
}

// applySyncLocked pushes pending rules into the data plane.
func (sw *Switch) applySyncLocked() {
	sw.syncDue = false
	sw.syncs++
	batch := sw.pendingSync
	rest := []pendingMod(nil)
	if sw.prof.BarrierMode == BarrierEarlyReorder {
		// Shuffle, then honor the batch bound: later mods can land in an
		// earlier sync than their predecessors — reordering across
		// barriers.
		shuffled := append([]pendingMod(nil), batch...)
		sw.rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if sw.prof.SyncBatch > 0 && len(shuffled) > sw.prof.SyncBatch {
			applied := shuffled[:sw.prof.SyncBatch]
			appliedSet := make(map[uint64]bool, len(applied))
			for _, p := range applied {
				appliedSet[p.seq] = true
			}
			for _, p := range batch {
				if !appliedSet[p.seq] {
					rest = append(rest, p)
				}
			}
			batch = applied
		} else {
			batch = shuffled
		}
	} else if sw.prof.SyncBatch > 0 && len(batch) > sw.prof.SyncBatch {
		rest = append(rest, batch[sw.prof.SyncBatch:]...)
		batch = batch[:sw.prof.SyncBatch]
	}
	for _, p := range batch {
		sw.applyModLocked(p)
		if sw.prof.BarrierMode != BarrierEarlyReorder && p.seq > sw.appliedSeq {
			sw.appliedSeq = p.seq
		}
	}
	sw.pendingSync = rest
	sw.releaseBarriersLocked()
	sw.armSyncLocked() // leftovers (bounded batches) wait for the next sync
}

// endSyncStall resumes control-plane processing after the sync stall.
func (sw *Switch) endSyncStall(epoch uint64) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.epoch != epoch {
		return
	}
	sw.ctrlBusy = false
	sw.kickCtrlLocked()
}

// Crash models a switch failure: the control channel drops, every queued
// and in-service control-plane job dies with it, and — when wipeFIB is
// set — both flow tables are cleared, the way a real switch reboots with
// an empty FIB. The data-plane activation log survives as the
// experiment's ground truth. The switch stays down (it processes
// nothing) until AttachConn wires a fresh control channel; RUM's side of
// recovery is DetachSwitchCause + AttachSwitch + BootstrapSwitch.
func (sw *Switch) Crash(wipeFIB bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	conn := sw.conn
	sw.conn = nil
	sw.epoch++ // strands every scheduled completion from this life
	sw.ctrlQueue = nil
	sw.pendingSync = nil
	sw.barWaiters = nil
	sw.pktOutQueue = nil
	sw.pktInQueue = nil
	sw.ctrlBusy, sw.pktOutBusy, sw.pktInBusy = false, false, false
	sw.syncDue, sw.syncArmed = false, false
	sw.stealAcc = 0
	sw.modSeq, sw.appliedSeq = 0, 0
	if wipeFIB {
		sw.ctrlTable = flowtable.New()
		sw.dataTable = flowtable.New()
	}
	if conn != nil {
		_ = conn.Close()
	}
}

// MutateProfile adjusts the switch's timing profile in place (under the
// switch lock) — the slow-dataplane fault: e.g. stretching SyncPeriod
// and SyncStall mid-run degrades a software-profile switch to the HP
// hardware behaviour. The change applies to subsequent service-time and
// sync computations; jobs already in service finish on the old timings.
func (sw *Switch) MutateProfile(fn func(p *Profile)) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	fn(&sw.prof)
}

// applyModLocked pushes one FlowMod into the data-plane table and records
// the activations.
func (sw *Switch) applyModLocked(p pendingMod) {
	changed := sw.dataTable.Apply(p.fm)
	now := sw.clk.Now()
	for _, c := range changed {
		sw.activations = append(sw.activations, RuleActivation{
			XID:      p.fm.GetXID(),
			Match:    c.Match,
			Priority: c.Priority,
			Deleted:  c.Deleted,
			At:       now,
		})
	}
}

func (sw *Switch) sendLocked(m of.Message) {
	if sw.conn != nil {
		_ = sw.conn.Send(m)
	}
}

func (sw *Switch) featuresReplyLocked(xid uint32) *of.FeaturesReply {
	reply := &of.FeaturesReply{
		DatapathID: sw.dpid,
		NBuffers:   0,
		NTables:    1,
		Actions:    0xfff,
	}
	reply.SetXID(xid)
	for _, p := range sw.net.Ports(sw.name) {
		reply.Ports = append(reply.Ports, of.PhyPort{
			PortNo: p,
			Name:   portName(p),
			HWAddr: of.EthAddr{0x02, 0, byte(sw.dpid >> 8), byte(sw.dpid), 0, byte(p)},
		})
	}
	return reply
}

func portName(p uint16) string {
	const digits = "0123456789"
	if p < 10 {
		return "eth" + digits[p:p+1]
	}
	return "eth" + digits[p/10:p/10+1] + digits[p%10:p%10+1]
}

// statsReplyLocked answers the subset of stats requests the system uses.
// Replies reflect the control-plane table — deliberately: the paper notes
// statistics are a control-plane view and cannot substitute for data-plane
// acknowledgments (§3.1).
func (sw *Switch) statsReplyLocked(req *of.StatsRequest) *of.StatsReply {
	reply := &of.StatsReply{StatsType: req.StatsType}
	reply.SetXID(req.GetXID())
	switch req.StatsType {
	case of.StatsTable:
		lookups, matched := sw.dataTable.Stats()
		entry := of.TableStatsEntry{
			TableID:      0,
			Name:         sw.prof.Name,
			Wildcards:    of.WcAll,
			MaxEntries:   65536,
			ActiveCount:  uint32(sw.ctrlTable.Len()),
			LookupCount:  lookups,
			MatchedCount: matched,
		}
		reply.Body = entry.Marshal()
	case of.StatsFlow:
		for _, e := range sw.ctrlTable.Entries() {
			fe := of.FlowStatsEntry{
				Match:       e.Match,
				Priority:    e.Priority,
				Cookie:      e.Cookie,
				PacketCount: e.Packets,
				ByteCount:   e.Bytes,
				Actions:     e.Actions,
			}
			reply.Body = append(reply.Body, fe.Marshal()...)
		}
	}
	return reply
}

// Activations snapshots the data-plane activation log.
func (sw *Switch) Activations() []RuleActivation {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return append([]RuleActivation(nil), sw.activations...)
}

// DataTable exposes the data-plane table (read-mostly; used by tests and
// experiment assertions).
func (sw *Switch) DataTable() *flowtable.Table { return sw.dataTable }

// CtrlTable exposes the control-plane table.
func (sw *Switch) CtrlTable() *flowtable.Table { return sw.ctrlTable }

// Counters returns processing counters: FlowMods completed, PacketOuts
// executed, PacketIns emitted, and syncs performed.
func (sw *Switch) Counters() (mods, pktOuts, pktIns, syncs uint64) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.modsProcessed, sw.pktOutsProcessed, sw.pktInsSent, sw.syncs
}

// BarriersServed returns how many BarrierRequests the control plane has
// completed — the coalesced-barrier workload metric.
func (sw *Switch) BarriersServed() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.barriersServed
}
