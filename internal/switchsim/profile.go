// Package switchsim emulates OpenFlow 1.0 switches with configurable
// control-plane/data-plane synchronization behaviour. It substitutes for
// the paper's hardware testbed: the HP ProCurve 5406zl whose broken
// barriers motivate RUM, the software switches used as probe helpers, and
// the hypothetical reordering switch general probing targets.
//
// The model, calibrated against the behaviour reported in the paper and
// its companion tech report [7]:
//
//   - The control plane is a single FIFO server. FlowMod service time grows
//     with flow-table occupancy (the switch slows down as the table fills,
//     which is why the paper's "adaptive 250" technique under-waits at high
//     occupancy).
//   - Completed FlowMods are buffered and pushed to the data-plane table in
//     periodic syncs; rules become visible to packets only at sync
//     completion, 0–SyncPeriod(+stall) after the control plane finished
//     them — the 100–300 ms lag the paper measures. Each sync stalls the
//     control plane briefly, producing the "visible steps" in flow
//     installation times.
//   - BarrierEarly mode answers barriers when the control plane has
//     processed prior commands (the bug); BarrierCorrect answers only after
//     the covering sync; BarrierEarlyReorder additionally applies sync
//     batches in a shuffled order with a bounded batch size, so rules can
//     overtake each other across barriers.
//   - PacketOut and PacketIn are handled on fast-path servers with rate
//     caps (the paper measures 7006 PacketOut/s and 5531 PacketIn/s), and
//     each handled packet steals a small, configurable slice of
//     control-plane time from FlowMod processing (the ≥96 % / ≤13 %
//     interference results of §5.2).
package switchsim

import "time"

// BarrierMode selects the barrier semantics a switch implements.
type BarrierMode int

const (
	// BarrierCorrect replies only after all prior FlowMods are visible in
	// the data plane — what the spec (read strictly) intends.
	BarrierCorrect BarrierMode = iota
	// BarrierEarly replies as soon as the control plane processed prior
	// messages, before the data-plane push: the HP 5406zl behaviour.
	BarrierEarly
	// BarrierEarlyReorder replies early and also reorders rule
	// installations across barriers (both violations from §3.2).
	BarrierEarlyReorder
)

func (m BarrierMode) String() string {
	switch m {
	case BarrierCorrect:
		return "correct"
	case BarrierEarly:
		return "early"
	case BarrierEarlyReorder:
		return "early+reorder"
	default:
		return "unknown"
	}
}

// Profile parameterizes a switch's timing model.
type Profile struct {
	Name        string
	BarrierMode BarrierMode

	// Control-plane FlowMod service time: ModBase + ModPerEntry × table
	// occupancy.
	ModBase     time.Duration
	ModPerEntry time.Duration

	// Data-plane synchronization. SyncPeriod == 0 applies rules to the
	// data plane immediately when the control plane finishes them
	// (software-switch behaviour).
	SyncPeriod time.Duration
	// SyncStall blocks the control-plane server for this long per sync.
	SyncStall time.Duration
	// SyncBatch bounds rules applied per sync (0 = unbounded). Only
	// meaningful for BarrierEarlyReorder, where it makes reordering
	// observable across syncs.
	SyncBatch int

	// Fast-path service times. PacketOutTime == 1/rate.
	PacketOutTime time.Duration
	PacketInTime  time.Duration
	BarrierTime   time.Duration
	MiscTime      time.Duration // echo, features, config, stats

	// Interference: control-plane time stolen from FlowMod processing per
	// fast-path packet handled since the previous FlowMod.
	StealPerPacketOut time.Duration
	StealPerPacketIn  time.Duration
	// MaxStealFactor caps the stolen time at this fraction of the mod's
	// base service time.
	MaxStealFactor float64

	// ReorderSeed makes BarrierEarlyReorder shuffles reproducible.
	ReorderSeed int64
}

// ProfileHP5406zl models the paper's hardware switch: ~280 mods/s on an
// empty table falling to ~210 mods/s at 300 entries, early barrier
// replies, and a 300 ms data-plane sync period — matching the up-to-290 ms
// control/data gap of Figure 1 and the stepped installation curves of
// Figure 6.
func ProfileHP5406zl() Profile {
	return Profile{
		Name:              "hp5406zl",
		BarrierMode:       BarrierEarly,
		ModBase:           3500 * time.Microsecond,
		ModPerEntry:       3 * time.Microsecond,
		SyncPeriod:        300 * time.Millisecond,
		SyncStall:         25 * time.Millisecond,
		PacketOutTime:     time.Second / 7006,
		PacketInTime:      time.Second / 5531,
		BarrierTime:       100 * time.Microsecond,
		MiscTime:          100 * time.Microsecond,
		StealPerPacketOut: 100 * time.Microsecond,
		StealPerPacketIn:  160 * time.Microsecond,
		MaxStealFactor:    0.35,
	}
}

// ProfileCorrect is the same hardware model with spec-compliant barriers
// ("one of the tested switches does implement barriers correctly", §1).
func ProfileCorrect() Profile {
	p := ProfileHP5406zl()
	p.Name = "correct-hw"
	p.BarrierMode = BarrierCorrect
	return p
}

// ProfileReordering models a switch that reorders installations across
// barriers — the class general probing exists for (§3.2.2). Its sync
// engine runs at a fine grain (25 ms) with small shuffled batches: rules
// overtake each other constantly, but the absolute control→data lag stays
// small — which keeps the paper's buffered-barrier-layer overhead in the
// few-times range (≈2× per-10-mods, ≈5× per-command) rather than an order
// of magnitude.
func ProfileReordering(seed int64) Profile {
	p := ProfileHP5406zl()
	p.Name = "reordering-hw"
	p.BarrierMode = BarrierEarlyReorder
	p.SyncPeriod = 25 * time.Millisecond
	p.SyncStall = 1 * time.Millisecond
	p.SyncBatch = 8
	p.ReorderSeed = seed
	return p
}

// ProfileSoftware models the fast, correct software switches (S1, S3) of
// the evaluation topology: microsecond-scale installation, no sync lag.
func ProfileSoftware() Profile {
	return Profile{
		Name:          "software",
		BarrierMode:   BarrierCorrect,
		ModBase:       50 * time.Microsecond,
		ModPerEntry:   0,
		SyncPeriod:    0,
		PacketOutTime: 20 * time.Microsecond,
		PacketInTime:  20 * time.Microsecond,
		BarrierTime:   10 * time.Microsecond,
		MiscTime:      10 * time.Microsecond,
	}
}
