package switchsim

import (
	"fmt"

	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/packet"
)

// Receive implements netsim.Node: a frame arrived on a data-plane port.
// Lookup goes against the data-plane table — rules still waiting for a
// sync are invisible here, which is exactly the control/data gap RUM
// detects.
func (sw *Switch) Receive(fr *netsim.Frame, inPort uint16) {
	fields := fr.Pkt.Fields
	fields.InPort = inPort
	entry := sw.dataTable.Lookup(fields, len(fr.Pkt.Payload))
	if entry == nil {
		// Table miss. The evaluation's switches carry an explicit
		// low-priority drop-all rule, so a miss means genuinely
		// unroutable traffic; we drop and record rather than flooding
		// the controller (miss_send_len = 0 behaviour).
		sw.net.RecordDrop(fr, sw.name, "table miss")
		return
	}
	sw.executeActions(fr, inPort, entry.Actions, of.ReasonAction)
}

// executeActions applies an OpenFlow 1.0 action list to a frame: header
// rewrites mutate the packet in order; each output action forwards a copy.
// An action list without outputs (or an empty one) drops the packet.
func (sw *Switch) executeActions(fr *netsim.Frame, inPort uint16, actions []of.Action, pktInReason uint8) {
	if len(actions) == 0 {
		sw.net.RecordDrop(fr, sw.name, "drop rule")
		return
	}
	cur := fr // lazily cloned on first rewrite to keep the fast path cheap
	cloned := false
	mutate := func() *packet.Fields {
		if !cloned {
			cur = cur.Clone()
			cloned = true
		}
		return &cur.Pkt.Fields
	}
	outputs := 0
	for _, a := range actions {
		switch act := a.(type) {
		case of.ActionOutput:
			outputs++
			sw.output(cur.Clone(), inPort, act.Port, pktInReason)
		case of.ActionSetNWTOS:
			mutate().NWTOS = act.TOS
		case of.ActionSetVLANVID:
			f := mutate()
			f.DLVLAN = act.VID & 0x0fff
		case of.ActionSetVLANPCP:
			mutate().DLPCP = act.PCP & 7
		case of.ActionStripVLAN:
			f := mutate()
			f.DLVLAN = packet.VLANNone
			f.DLPCP = 0
		case of.ActionSetDLAddr:
			f := mutate()
			if act.Dst {
				f.DLDst = act.Addr
			} else {
				f.DLSrc = act.Addr
			}
		case of.ActionSetNWAddr:
			f := mutate()
			if act.Dst {
				f.NWDst = act.Addr
			} else {
				f.NWSrc = act.Addr
			}
		case of.ActionSetTPPort:
			f := mutate()
			if act.Dst {
				f.TPDst = act.Port
			} else {
				f.TPSrc = act.Port
			}
		}
	}
	if outputs == 0 {
		sw.net.RecordDrop(fr, sw.name, "no output action")
	}
}

// output forwards one frame copy to a (possibly special) port.
func (sw *Switch) output(fr *netsim.Frame, inPort uint16, port uint16, pktInReason uint8) {
	switch port {
	case of.PortController:
		sw.queuePacketIn(fr, inPort, pktInReason)
	case of.PortInPort:
		sw.net.Transmit(sw, inPort, fr)
	case of.PortFlood, of.PortAll:
		for _, p := range sw.net.Ports(sw.name) {
			if p == inPort {
				continue
			}
			sw.net.Transmit(sw, p, fr.Clone())
		}
	case of.PortTable, of.PortNormal, of.PortLocal, of.PortNone:
		sw.net.RecordDrop(fr, sw.name, fmt.Sprintf("unsupported special port %#x", port))
	default:
		sw.net.Transmit(sw, port, fr)
	}
}

// queuePacketIn funnels a frame through the rate-limited PacketIn path
// toward the controller.
func (sw *Switch) queuePacketIn(fr *netsim.Frame, inPort uint16, reason uint8) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.pktInQueue = append(sw.pktInQueue, pktInJob{fr: fr, inPort: inPort, reason: reason})
	sw.kickPktInLocked()
}

func (sw *Switch) kickPktInLocked() {
	if sw.pktInBusy || len(sw.pktInQueue) == 0 {
		return
	}
	job := sw.pktInQueue[0]
	sw.pktInQueue = sw.pktInQueue[1:]
	sw.pktInBusy = true
	epoch := sw.epoch
	sw.clk.After(sw.prof.PacketInTime, func() { sw.completePktIn(job, epoch) })
}

func (sw *Switch) completePktIn(job pktInJob, epoch uint64) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.epoch != epoch {
		return
	}
	sw.pktInsSent++
	sw.stealAcc += sw.prof.StealPerPacketIn
	data := job.fr.Pkt.Marshal()
	pin := &of.PacketIn{
		BufferID: of.BufferNone,
		TotalLen: uint16(len(data)),
		InPort:   job.inPort,
		Reason:   job.reason,
		Data:     data,
	}
	sw.sendLocked(pin)
	sw.pktInBusy = false
	sw.kickPktInLocked()
}

func (sw *Switch) kickPktOutLocked() {
	if sw.pktOutBusy || len(sw.pktOutQueue) == 0 {
		return
	}
	job := sw.pktOutQueue[0]
	sw.pktOutQueue = sw.pktOutQueue[1:]
	sw.pktOutBusy = true
	epoch := sw.epoch
	sw.clk.After(sw.prof.PacketOutTime, func() { sw.completePktOut(job, epoch) })
}

// completePktOut executes a PacketOut: decode the payload and run its
// action list as if the packet entered the pipeline.
func (sw *Switch) completePktOut(po *of.PacketOut, epoch uint64) {
	sw.mu.Lock()
	if sw.epoch != epoch {
		sw.mu.Unlock()
		return
	}
	sw.pktOutsProcessed++
	sw.stealAcc += sw.prof.StealPerPacketOut
	sw.pktOutBusy = false
	sw.kickPktOutLocked()
	sw.mu.Unlock()

	pkt, err := packet.Unmarshal(po.Data)
	if err != nil {
		sw.mu.Lock()
		e := &of.Error{ErrType: of.ErrTypeBadRequest, Code: 4 /* bad packet */}
		e.SetXID(po.GetXID())
		sw.sendLocked(e)
		sw.mu.Unlock()
		return
	}
	fr := &netsim.Frame{Pkt: pkt, FlowID: -1, SentAt: sw.clk.Now(), Trace: []string{sw.name}}
	inPort := po.InPort
	if inPort == of.PortNone || inPort == of.PortController {
		inPort = 0
	}
	sw.executeActions(fr, inPort, po.Actions, of.ReasonNoMatch)
}
