package cluster_test

import (
	"errors"
	"testing"
	"time"

	"rum/internal/cluster"
	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/netsim"
	"rum/internal/of"
	"rum/internal/retry"
	"rum/internal/sim"
	"rum/internal/switchsim"
	"rum/internal/transport"
)

// TestClusterShardMapDeterministic pins the rendezvous ordering
// contract: ranks are permutations, two maps agree, and killing one
// shard moves only that shard's switches.
func TestClusterShardMapDeterministic(t *testing.T) {
	m1, err := cluster.NewShardMap(4)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := cluster.NewShardMap(4)
	names := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		names = append(names, string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	owners := make(map[string]int)
	for _, sw := range names {
		r1, r2 := m1.Rank(sw), m2.Rank(sw)
		if len(r1) != 4 {
			t.Fatalf("Rank(%s) has %d entries", sw, len(r1))
		}
		seen := make(map[int]bool)
		for i, s := range r1 {
			if s != r2[i] {
				t.Fatalf("maps disagree on %s: %v vs %v", sw, r1, r2)
			}
			if s < 0 || s >= 4 || seen[s] {
				t.Fatalf("Rank(%s) = %v is not a permutation", sw, r1)
			}
			seen[s] = true
		}
		o, ok := m1.Owner(sw, nil)
		if !ok || o != r1[0] {
			t.Fatalf("Owner(%s) = %d,%v; want %d", sw, o, ok, r1[0])
		}
		owners[sw] = o
	}
	// Kill shard 2: only its switches move, each to its own rank[1].
	alive := func(i int) bool { return i != 2 }
	for _, sw := range names {
		o, ok := m1.Owner(sw, alive)
		if !ok {
			t.Fatalf("Owner(%s) found no live shard", sw)
		}
		if owners[sw] != 2 {
			if o != owners[sw] {
				t.Fatalf("%s moved %d→%d although its owner survived", sw, owners[sw], o)
			}
			continue
		}
		if o == 2 {
			t.Fatalf("%s still owned by dead shard", sw)
		}
		if want := m1.Rank(sw)[1]; o != want {
			t.Fatalf("%s adopted by %d; want next-preferred %d", sw, o, want)
		}
	}
}

// TestClusterShardMapPrimary pins explicit primaries and the pod-aware
// fat-tree assignment: a pod's edge and aggregation switches share a
// shard, and a pinned primary does not disturb the failover tail.
func TestClusterShardMapPrimary(t *testing.T) {
	m, _ := cluster.NewShardMap(3)
	if err := m.SetPrimary("sw", 7); err == nil {
		t.Fatal("out-of-range primary accepted")
	}
	if err := m.SetPrimary("sw", 2); err != nil {
		t.Fatal(err)
	}
	r := m.Rank("sw")
	if r[0] != 2 {
		t.Fatalf("Rank[0] = %d; want pinned 2", r[0])
	}

	ft, err := netsim.NewFatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	fm, _ := cluster.NewShardMap(4)
	cluster.AssignFatTree(fm, ft)
	half := ft.K / 2
	for p := 0; p < ft.K; p++ {
		want := p % 4
		for i := 0; i < half; i++ {
			for _, sw := range []string{ft.Edge[p*half+i], ft.Agg[p*half+i]} {
				if o, _ := fm.Owner(sw, nil); o != want {
					t.Fatalf("pod %d switch %s on shard %d; want %d", p, sw, o, want)
				}
			}
		}
	}
	for c, sw := range ft.Core {
		if o, _ := fm.Owner(sw, nil); o != c%4 {
			t.Fatalf("core %s on shard %d; want %d", sw, o, c%4)
		}
	}
}

// clusterBed is a two-member cluster proxying a fully connected
// three-switch triangle under a simulated clock: s1 and s2 live on
// shard 0, s3 on shard 1.
type clusterBed struct {
	s         *sim.Sim
	c         *cluster.Cluster
	client    *controller.Client
	switches  map[string]*switchsim.Switch
	ctrlConns map[string]transport.Conn
	links     []core.TopoLink
	net       *netsim.Network
}

func newClusterBed(t *testing.T) *clusterBed {
	return newClusterBedCfg(t, nil)
}

// newClusterBedCfg builds the bed, letting the caller adjust the cluster
// configuration (rescue FIB reader, handoff grace, technique) before the
// cluster is created. mod receives the switch map so a ReadFIB closure
// can capture it.
func newClusterBedCfg(t *testing.T, mod func(cfg *cluster.Config, switches map[string]*switchsim.Switch)) *clusterBed {
	t.Helper()
	s := sim.New()
	n := netsim.New(s)
	names := []string{"s1", "s2", "s3"}
	switches := make(map[string]*switchsim.Switch)
	for i, name := range names {
		switches[name] = switchsim.New(name, uint64(i+1), switchsim.ProfileSoftware(), s, n)
	}
	links := []core.TopoLink{
		{A: "s1", APort: 1, B: "s2", BPort: 1},
		{A: "s2", APort: 2, B: "s3", BPort: 1},
		{A: "s3", APort: 2, B: "s1", BPort: 2},
	}
	n.Connect(switches["s1"], 1, switches["s2"], 1, 20*time.Microsecond)
	n.Connect(switches["s2"], 2, switches["s3"], 1, 20*time.Microsecond)
	n.Connect(switches["s3"], 2, switches["s1"], 2, 20*time.Microsecond)

	smap, err := cluster.NewShardMap(2)
	if err != nil {
		t.Fatal(err)
	}
	for sw, shard := range map[string]int{"s1": 0, "s2": 0, "s3": 1} {
		if err := smap.SetPrimary(sw, shard); err != nil {
			t.Fatal(err)
		}
	}
	cfg := cluster.Config{
		Map:      smap,
		Core:     core.Config{Clock: s, Technique: core.TechBarriers, RUMAware: true},
		Topology: core.NewTopology(links),
	}
	if mod != nil {
		mod(&cfg, switches)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bed := &clusterBed{s: s, c: c, switches: switches,
		ctrlConns: make(map[string]transport.Conn), links: links, net: n}
	for _, name := range names {
		bed.attach(t, name)
	}
	bed.client = controller.NewClient(s, controller.AckRUM, bed.ctrlConns)
	if err := c.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(100 * time.Millisecond)
	return bed
}

// attach wires (or re-wires) one switch through fresh pipes, routed to
// its current live owner.
func (bed *clusterBed) attach(t *testing.T, name string) int {
	t.Helper()
	ctrlTop, ctrlBottom := transport.Pipe(bed.s, 100*time.Microsecond)
	rumSide, swSide := transport.Pipe(bed.s, 100*time.Microsecond)
	bed.switches[name].AttachConn(swSide)
	_, owner, err := bed.c.AttachSwitch(name, bed.switches[name].DPID(), ctrlBottom, rumSide)
	if err != nil {
		t.Fatalf("attaching %s: %v", name, err)
	}
	bed.ctrlConns[name] = ctrlTop
	if bed.client != nil {
		bed.client.SetConn(name, ctrlTop)
	}
	return owner
}

// issue sends one fresh flow rule to sw and returns its watch handle.
func (bed *clusterBed) issue(t *testing.T, sw string, flowID int) *core.UpdateHandle {
	t.Helper()
	f := controller.FlowSpec{ID: flowID}
	f.Src, f.Dst = controller.FlowAddr(flowID)
	fm := controller.AddRule(f, 100, 1)
	fm.SetXID(bed.client.NewXID())
	h := bed.c.Watch(sw, fm.GetXID())
	if err := bed.client.Send(sw, fm); err != nil {
		t.Fatalf("send to %s: %v", sw, err)
	}
	return h
}

// await drives the simulation until the handle resolves.
func (bed *clusterBed) await(t *testing.T, h *core.UpdateHandle) core.AckResult {
	t.Helper()
	for i := 0; i < 200; i++ {
		if ar, ok := h.Result(); ok {
			return ar
		}
		bed.s.RunFor(10 * time.Millisecond)
	}
	t.Fatal("handle never resolved")
	return core.AckResult{}
}

// TestClusterRoutingAndConfirm checks that attaches and watches land on
// the owning member and futures confirm through it.
func TestClusterRoutingAndConfirm(t *testing.T) {
	bed := newClusterBed(t)
	for sw, want := range map[string]int{"s1": 0, "s2": 0, "s3": 1} {
		got, ok := bed.c.Located(sw)
		if !ok || got != want {
			t.Fatalf("Located(%s) = %d,%v; want %d", sw, got, ok, want)
		}
	}
	ar := bed.await(t, bed.issue(t, "s3", 1))
	if ar.Outcome == core.OutcomeFailed {
		t.Fatalf("s3 update failed: %v", ar.Err)
	}
	acks, _, _ := bed.c.Stats()
	if acks == 0 {
		t.Fatal("no acks counted across members")
	}
}

// TestClusterKillHandoffReattach is the crash-handoff path: killing the
// member owning s3 fails its in-flight future with a ShardError that
// unwraps to ErrChannelLost, a watch during the ownerless window fails
// fast, and re-attaching routes s3 to the surviving member where fresh
// updates confirm again.
func TestClusterKillHandoffReattach(t *testing.T) {
	bed := newClusterBed(t)
	h := bed.issue(t, "s3", 10)
	orphans := bed.c.Kill(1)
	if len(orphans) != 1 || orphans[0] != "s3" {
		t.Fatalf("Kill(1) orphaned %v; want [s3]", orphans)
	}
	ar := bed.await(t, h)
	if ar.Outcome != core.OutcomeFailed {
		t.Fatalf("in-flight update on killed shard resolved %v; want failed", ar.Outcome)
	}
	var se *cluster.ShardError
	if !errors.As(ar.Err, &se) || se.Shard != 1 {
		t.Fatalf("cause %v does not name losing shard 1", ar.Err)
	}
	if !errors.Is(ar.Err, core.ErrChannelLost) {
		t.Fatalf("cause %v does not unwrap to ErrChannelLost", ar.Err)
	}
	if !errors.Is(ar.Err, cluster.ErrProxyLost) {
		t.Fatalf("cause %v does not match ErrProxyLost", ar.Err)
	}

	// Ownerless window: watches fail fast instead of wedging.
	gap := bed.c.Watch("s3", 0xdead)
	if gar, ok := gap.Result(); !ok || gar.Outcome != core.OutcomeFailed {
		t.Fatalf("gap watch = %v,%v; want immediate typed failure", gar, ok)
	}

	// Adoption: the reattach lands on shard 0, bootstrap rebuilds probe
	// state, and updates flow again.
	if owner := bed.attach(t, "s3"); owner != 0 {
		t.Fatalf("s3 adopted by shard %d; want 0", owner)
	}
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	bed.s.RunFor(50 * time.Millisecond)
	ar = bed.await(t, bed.issue(t, "s3", 11))
	if ar.Outcome == core.OutcomeFailed {
		t.Fatalf("post-handoff update failed: %v", ar.Err)
	}
}

// TestClusterReviveMidBackoffNoDoubleAdopt: killing shard 1 orphans s3
// and starts backoff-governed re-dials; reviving the shard mid-backoff
// puts two re-dial loops in a race for the same switch (the adoptive
// path and the revived primary's reclaim). Exactly one attach may land —
// AttachSwitch refuses the second so two members can never both hold the
// session — and the surviving session must still confirm updates.
func TestClusterReviveMidBackoffNoDoubleAdopt(t *testing.T) {
	bed := newClusterBed(t)
	if orphans := bed.c.Kill(1); len(orphans) != 1 || orphans[0] != "s3" {
		t.Fatalf("Kill(1) orphaned %v; want [s3]", orphans)
	}
	// Revive before any re-dial lands: s3's primary is live again, so
	// both loops route to shard 1 — the race is purely over who attaches
	// first.
	bed.c.Revive(1)
	winners, refused := 0, 0
	dial := func() (transport.Conn, error) {
		ctrlTop, ctrlBottom := transport.Pipe(bed.s, 100*time.Microsecond)
		rumSide, swSide := transport.Pipe(bed.s, 100*time.Microsecond)
		_, _, err := bed.c.AttachSwitch("s3", bed.switches["s3"].DPID(), ctrlBottom, rumSide)
		if err != nil {
			refused++
			return nil, err
		}
		winners++
		bed.switches["s3"].AttachConn(swSide)
		bed.ctrlConns["s3"] = ctrlTop
		return ctrlTop, nil
	}
	for i := 0; i < 2; i++ {
		b := retry.New(retry.Policy{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond,
			Multiplier: 2, Jitter: 0.5}, int64(i+1))
		bed.client.Reconnect("s3", b, 4, dial, nil)
	}
	bed.s.RunFor(500 * time.Millisecond)
	if winners != 1 {
		t.Fatalf("%d re-dials adopted s3; want exactly 1", winners)
	}
	if refused == 0 {
		t.Fatal("the losing re-dial loop never hit the double-adopt guard")
	}
	if owner, ok := bed.c.Located("s3"); !ok || owner != 1 {
		t.Fatalf("s3 located on %d,%v; want revived shard 1", owner, ok)
	}
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	bed.s.RunFor(50 * time.Millisecond)
	if ar := bed.await(t, bed.issue(t, "s3", 21)); ar.Outcome == core.OutcomeFailed {
		t.Fatalf("update through the single adopted session failed: %v", ar.Err)
	}
}

// TestClusterCompositeLosingShard fans one network-wide update across
// both members and kills shard 1 with the batch in flight: the
// composite future must still resolve (never wedge), count the
// survivors as confirmed, and name the losing shard in its error.
func TestClusterCompositeLosingShard(t *testing.T) {
	bed := newClusterBed(t)
	ups := make([]cluster.Update, 0, 3)
	for i, sw := range []string{"s1", "s2", "s3"} {
		f := controller.FlowSpec{ID: 100 + i}
		f.Src, f.Dst = controller.FlowAddr(100 + i)
		fm := controller.AddRule(f, 100, 1)
		fm.SetXID(bed.client.NewXID())
		ups = append(ups, cluster.Update{Switch: sw, FM: fm})
	}
	ch := bed.c.Fanout(ups, func(sw string, fm *of.FlowMod) error { return bed.client.Send(sw, fm) })
	bed.c.Kill(1)
	var res *cluster.CompositeResult
	for i := 0; i < 400; i++ {
		bed.s.RunFor(10 * time.Millisecond)
		if r, ok := ch.Result(); ok {
			res = r
			break
		}
		time.Sleep(time.Millisecond) // let the aggregator goroutine drain
	}
	if res == nil {
		t.Fatal("composite future never resolved")
	}
	if res.OK() || res.Failed != 1 || res.Confirmed != 2 {
		t.Fatalf("composite = %d confirmed / %d failed; want 2/1", res.Confirmed, res.Failed)
	}
	var se *cluster.ShardError
	if !errors.As(res.Err, &se) || se.Shard != 1 || se.Switch != "s3" {
		t.Fatalf("composite error %v does not identify shard 1 / s3", res.Err)
	}
	if len(res.Results) != 3 || res.Results[2].Switch != "s3" {
		t.Fatalf("composite results not in input order: %+v", res.Results)
	}
}

// TestClusterFanoutSendFailure pins the dead-controller-channel path: a
// send that fails immediately resolves its slot as a typed failure
// instead of leaving a watcher that can never fire.
func TestClusterFanoutSendFailure(t *testing.T) {
	bed := newClusterBed(t)
	f := controller.FlowSpec{ID: 200}
	f.Src, f.Dst = controller.FlowAddr(200)
	fm := controller.AddRule(f, 100, 1)
	fm.SetXID(bed.client.NewXID())
	sendErr := errors.New("conn down")
	ch := bed.c.Fanout([]cluster.Update{{Switch: "s2", FM: fm}},
		func(string, *of.FlowMod) error { return sendErr })
	var res *cluster.CompositeResult
	for i := 0; i < 100 && res == nil; i++ {
		bed.s.RunFor(time.Millisecond)
		time.Sleep(time.Millisecond)
		res, _ = ch.Result()
	}
	if res == nil {
		t.Fatal("composite never resolved")
	}
	if res.Failed != 1 || !errors.Is(res.Err, sendErr) {
		t.Fatalf("composite = %+v; want one failure wrapping the send error", res)
	}
	var se *cluster.ShardError
	if !errors.As(res.Err, &se) || se.Switch != "s2" {
		t.Fatalf("composite error %v does not name s2", res.Err)
	}
}
