package cluster

import (
	"fmt"

	"rum/internal/core"
)

// ErrProxyLost is the typed cause carried by futures failed because the
// RUM instance owning their switch died. It wraps core.ErrChannelLost —
// from one switch's point of view a proxy crash is its control channel
// dying — so existing errors.Is(err, core.ErrChannelLost) repair paths
// (the planner's re-plan, the experiments' reconnect harnesses) handle
// proxy loss without modification.
var ErrProxyLost = fmt.Errorf("cluster: owning proxy crashed: %w", core.ErrChannelLost)

// ShardError is the cluster's typed failure cause: it names the shard
// that lost an update (or a whole switch) on top of the underlying
// cause. Unwrap exposes the cause, so errors.Is against the core
// sentinels (ErrChannelLost, ErrSwitchRestarted, ErrSwitchRejected)
// keeps working through it, and errors.As(*ShardError) recovers the
// losing shard from a composite future's failure.
type ShardError struct {
	// Shard is the losing shard's index.
	Shard int
	// Switch is the switch the failure is about.
	Switch string
	// XID is the failed update's transaction id; zero when the error
	// covers the whole switch (e.g. a detach on proxy death).
	XID uint32
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	if e.XID != 0 {
		return fmt.Sprintf("cluster: shard %d lost update %d on %s: %v", e.Shard, e.XID, e.Switch, e.Err)
	}
	return fmt.Sprintf("cluster: shard %d lost switch %s: %v", e.Shard, e.Switch, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }
