package cluster_test

import (
	"errors"
	"testing"
	"time"

	"rum/internal/cluster"
	"rum/internal/controller"
	"rum/internal/core"
	"rum/internal/hsa"
	"rum/internal/switchsim"
)

// newRescueBed builds a cluster bed with intent replication and crash
// rescue enabled: members journal pending intents to their successor and
// BootstrapSwitch diffs the re-read switch FIB against the replica. The
// bed runs TechTimeout so every update has a wide installed-but-
// unconfirmed window (300 ms after the barrier reply) in which a kill can
// land deterministically.
func newRescueBed(t *testing.T, grace time.Duration) *clusterBed {
	t.Helper()
	return newClusterBedCfg(t, func(cfg *cluster.Config, switches map[string]*switchsim.Switch) {
		cfg.Core.Technique = core.TechTimeout
		cfg.ReadFIB = func(sw string) []hsa.Rule { return switches[sw].CtrlTable().Rules() }
		cfg.HandoffGrace = grace
	})
}

// TestClusterRescueConfirmsInstalled is the tentpole's happy path: the
// rule reached the switch but its owner died before the strategy
// confirmed it. The successor's replica still holds the intent, the
// rescue sweep finds the rule in the re-read FIB, and the future resolves
// positively — no re-install, no typed failure, no false ack.
func TestClusterRescueConfirmsInstalled(t *testing.T) {
	bed := newRescueBed(t, 0)
	h := bed.issue(t, "s3", 30)
	// 50 ms in, the FlowMod has been applied on s3 but TechTimeout holds
	// the confirmation for another 250 ms.
	bed.s.RunFor(50 * time.Millisecond)
	if _, ok := h.Result(); ok {
		t.Fatal("future resolved before the kill; the timing assumption is broken")
	}
	if len(bed.switches["s3"].CtrlTable().Rules()) == 0 {
		t.Fatal("rule not installed on s3 before the kill; the timing assumption is broken")
	}
	if orphans := bed.c.Kill(1); len(orphans) != 1 || orphans[0] != "s3" {
		t.Fatalf("Kill(1) orphaned %v; want [s3]", orphans)
	}
	if _, ok := h.Result(); ok {
		t.Fatal("kill resolved the future; rescue should have parked it")
	}
	if owner := bed.attach(t, "s3"); owner != 0 {
		t.Fatalf("s3 adopted by shard %d; want 0", owner)
	}
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	ar, ok := h.Result()
	if !ok {
		t.Fatal("rescued future still unresolved after adoption")
	}
	if ar.Outcome != core.OutcomeInstalled {
		t.Fatalf("rescued future resolved %v (%v); want installed", ar.Outcome, ar.Err)
	}
	st := bed.c.RescueStats()
	if st.Rescued != 1 || st.Reissued != 0 || st.Failed != 0 {
		t.Fatalf("rescue stats = %+v; want exactly one rescued, none failed", st)
	}
}

// TestClusterRescueReissuesMissing kills the owner with the FlowMod still
// in flight toward the switch: the intent was journaled but the rule never
// made the FIB, so the rescue re-binds the future on the adoptive member
// and re-injects the journaled FlowMod under its original xid — the
// future then confirms through the strategy's real ack machinery.
func TestClusterRescueReissuesMissing(t *testing.T) {
	bed := newRescueBed(t, 0)
	h := bed.issue(t, "s3", 31)
	// Long enough for the member to track and journal the intent
	// (controller pipe is 100 µs, the flush fires immediately after),
	// short enough that the batch is still inside the proxy→switch pipe.
	bed.s.RunFor(150 * time.Microsecond)
	bed.c.Kill(1)
	if owner := bed.attach(t, "s3"); owner != 0 {
		t.Fatalf("s3 adopted by shard %d; want 0", owner)
	}
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	st := bed.c.RescueStats()
	if st.Reissued != 1 || st.Rescued != 0 || st.Failed != 0 {
		t.Fatalf("rescue stats = %+v; want exactly one reissued, none failed", st)
	}
	ar := bed.await(t, h)
	if ar.Outcome != core.OutcomeInstalled {
		t.Fatalf("reissued future resolved %v (%v); want installed", ar.Outcome, ar.Err)
	}
	// The re-issued rule really is on the switch.
	if len(bed.switches["s3"].CtrlTable().Rules()) == 0 {
		t.Fatal("reissued rule never reached s3's FIB")
	}
}

// TestClusterRescueNoIntentFailsTyped pins the one honest failure class:
// the update died between the controller and the dead member's journal,
// so no replica ever saw an intent. The rescue must not guess — the
// future fails typed with the same ShardError/ErrProxyLost contract a
// non-rescuing cluster applies, routing the caller into repair.
func TestClusterRescueNoIntentFailsTyped(t *testing.T) {
	bed := newRescueBed(t, 0)
	h := bed.issue(t, "s3", 32)
	// No simulation time: the FlowMod never left the controller pipe, so
	// the member neither tracked nor journaled it.
	bed.c.Kill(1)
	bed.attach(t, "s3")
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	ar, ok := h.Result()
	if !ok {
		t.Fatal("no-intent future still unresolved after adoption")
	}
	if ar.Outcome != core.OutcomeFailed {
		t.Fatalf("no-intent future resolved %v; want typed failure", ar.Outcome)
	}
	var se *cluster.ShardError
	if !errors.As(ar.Err, &se) || se.Shard != 1 || se.Switch != "s3" {
		t.Fatalf("cause %v does not name dead shard 1 / s3", ar.Err)
	}
	if !errors.Is(ar.Err, cluster.ErrProxyLost) {
		t.Fatalf("cause %v does not match ErrProxyLost", ar.Err)
	}
	st := bed.c.RescueStats()
	if st.NoIntent != 1 || st.Failed != 0 {
		t.Fatalf("rescue stats = %+v; want one no-intent, zero failed", st)
	}
}

// TestClusterHandoffGraceRebindsOnAdoption: with a positive HandoffGrace
// a Watch during the ownerless window parks unresolved instead of failing
// fast, re-homes onto the adoptive member at attach, and confirms through
// it once the FlowMod is actually sent.
func TestClusterHandoffGraceRebindsOnAdoption(t *testing.T) {
	bed := newClusterBedCfg(t, func(cfg *cluster.Config, _ map[string]*switchsim.Switch) {
		cfg.HandoffGrace = 40 * time.Millisecond
	})
	bed.c.Kill(1)
	xid := bed.client.NewXID()
	h := bed.c.Watch("s3", xid)
	if _, ok := h.Result(); ok {
		t.Fatal("watch during grace window resolved immediately; want parked")
	}
	if owner := bed.attach(t, "s3"); owner != 0 {
		t.Fatalf("s3 adopted by shard %d; want 0", owner)
	}
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	bed.s.RunFor(50 * time.Millisecond)
	if ar, ok := h.Result(); ok {
		t.Fatalf("rebound watch resolved %v before the FlowMod was sent", ar)
	}
	f := controller.FlowSpec{ID: 40}
	f.Src, f.Dst = controller.FlowAddr(40)
	fm := controller.AddRule(f, 100, 1)
	fm.SetXID(xid)
	if err := bed.client.Send("s3", fm); err != nil {
		t.Fatal(err)
	}
	ar := bed.await(t, h)
	if ar.Outcome == core.OutcomeFailed {
		t.Fatalf("rebound watch failed: %v", ar.Err)
	}
}

// TestClusterHandoffGraceExpiresTyped: a parked watch whose grace runs
// out before any adoption fails with the same typed ShardError /
// ErrProxyLost contract the zero-grace fast path uses; a parked watch
// cancelled before expiry stays unresolved and releases its slot.
func TestClusterHandoffGraceExpiresTyped(t *testing.T) {
	bed := newClusterBedCfg(t, func(cfg *cluster.Config, _ map[string]*switchsim.Switch) {
		cfg.HandoffGrace = 40 * time.Millisecond
	})
	bed.c.Kill(1)
	h := bed.c.Watch("s3", 0x71)
	cancelled := bed.c.Watch("s3", 0x72)
	cancelled.Cancel()
	bed.s.RunFor(30 * time.Millisecond)
	if _, ok := h.Result(); ok {
		t.Fatal("parked watch resolved before its grace expired")
	}
	bed.s.RunFor(20 * time.Millisecond)
	ar, ok := h.Result()
	if !ok {
		t.Fatal("parked watch never expired")
	}
	if ar.Outcome != core.OutcomeFailed {
		t.Fatalf("expired watch resolved %v; want typed failure", ar.Outcome)
	}
	var se *cluster.ShardError
	if !errors.As(ar.Err, &se) || se.Switch != "s3" {
		t.Fatalf("cause %v does not carry a ShardError for s3", ar.Err)
	}
	if !errors.Is(ar.Err, cluster.ErrProxyLost) {
		t.Fatalf("cause %v does not match ErrProxyLost", ar.Err)
	}
	if res, resolved := cancelled.Result(); resolved {
		t.Fatalf("cancelled parked watch resolved %v; want left unresolved", res)
	}
}

// TestClusterKillRescueNoPoolLeak extends the zero-pool-leak contract to
// the kill/rescue/revive cycle: every pooled update tracked across the
// crash — confirmed, rescued, or re-issued — must return to the pool
// once the dust settles.
func TestClusterKillRescueNoPoolLeak(t *testing.T) {
	before := core.LiveUpdates()
	bed := newRescueBed(t, 0)
	h1 := bed.issue(t, "s1", 50) // survivor shard, confirms normally
	h3 := bed.issue(t, "s3", 51) // killed shard, rescued from the replica
	bed.s.RunFor(50 * time.Millisecond)
	bed.c.Kill(1)
	bed.attach(t, "s3")
	if err := bed.c.BootstrapSwitch("s3"); err != nil {
		t.Fatal(err)
	}
	if ar := bed.await(t, h1); ar.Outcome == core.OutcomeFailed {
		t.Fatalf("survivor-shard update failed: %v", ar.Err)
	}
	if ar := bed.await(t, h3); ar.Outcome == core.OutcomeFailed {
		t.Fatalf("rescued update failed: %v", ar.Err)
	}
	bed.c.Revive(1)
	for i := 0; i < 200; i++ {
		if core.LiveUpdates() == before {
			break
		}
		bed.s.RunFor(10 * time.Millisecond)
	}
	if live := core.LiveUpdates(); live != before {
		t.Fatalf("pooled-update leak across kill/rescue/revive: %d live before, %d after", before, live)
	}
}
