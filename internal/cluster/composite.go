package cluster

import (
	"context"
	"errors"
	"sync"

	"rum/internal/core"
	"rum/internal/of"
)

// SwitchXID identifies one tracked update: a FlowMod's transaction id on
// a switch.
type SwitchXID struct {
	Switch string
	XID    uint32
}

// Update is one FlowMod addressed to a switch — the unit Fanout routes.
type Update struct {
	Switch string
	FM     *of.FlowMod
}

// CompositeResult aggregates a network-wide update's per-switch
// acknowledgments.
type CompositeResult struct {
	// Results holds every sub-future's resolution, in input order.
	Results []core.AckResult
	// Confirmed counts positive outcomes; Failed counts OutcomeFailed.
	Confirmed int
	Failed    int
	// Err is nil when every update confirmed; otherwise it is the first
	// failure in input order, always a *ShardError naming the losing
	// shard (errors.As recovers it; errors.Is still matches the core
	// sentinels through it).
	Err error
}

// OK reports whether every update confirmed.
func (r *CompositeResult) OK() bool { return r.Failed == 0 }

// CompositeHandle is a single awaitable future for a network-wide
// update fanned out across shards. It resolves once every sub-future
// has resolved — failures included, so one dead shard cannot wedge the
// aggregate, and the losing shard is identified in the result's Err.
type CompositeHandle struct {
	done chan struct{}

	mu  sync.Mutex
	res *CompositeResult
}

// Done returns a channel closed when the aggregate has resolved.
func (h *CompositeHandle) Done() <-chan struct{} { return h.done }

// Result returns the aggregate if it has resolved.
func (h *CompositeHandle) Result() (*CompositeResult, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, h.res != nil
}

// AwaitAll blocks until the aggregate resolves or ctx is done. Under a
// simulated clock, drive the simulation and poll Result instead.
func (h *CompositeHandle) AwaitAll(ctx context.Context) (*CompositeResult, error) {
	select {
	case <-h.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	res, _ := h.Result()
	return res, nil
}

// WatchAll registers an ack future for every update — each on the
// member holding its switch — and returns one composite future over
// them. Call it before sending the FlowMods (same contract as
// RUM.Watch).
func (c *Cluster) WatchAll(ids []SwitchXID) *CompositeHandle {
	handles := make([]*core.UpdateHandle, len(ids))
	for i, id := range ids {
		handles[i] = c.Watch(id.Switch, id.XID)
	}
	return c.aggregate(handles)
}

// Fanout is the network-wide update front: it registers a watch for
// every FlowMod, then routes each send through the supplied transmit
// function (typically controller.Client.Send). A send that fails
// immediately — a dead controller-side channel — resolves that slot as
// failed with a ShardError rather than leaving a watcher that can never
// fire. The returned composite future resolves when every switch's
// owning proxy has answered.
func (c *Cluster) Fanout(ups []Update, send func(sw string, fm *of.FlowMod) error) *CompositeHandle {
	handles := make([]*core.UpdateHandle, len(ups))
	for i, u := range ups {
		handles[i] = c.Watch(u.Switch, u.FM.GetXID())
	}
	for i, u := range ups {
		if err := send(u.Switch, u.FM); err != nil {
			handles[i].Cancel()
			shard := c.smap.Rank(u.Switch)[0]
			if o, ok := c.Located(u.Switch); ok {
				shard = o
			}
			handles[i] = core.FailedHandle(c.clk.Now(), u.Switch, u.FM.GetXID(),
				&ShardError{Shard: shard, Switch: u.Switch, XID: u.FM.GetXID(), Err: err})
		}
	}
	return c.aggregate(handles)
}

// aggregate collects sub-futures into a composite. One goroutine awaits
// them in input order — completion needs all of them, so order is
// irrelevant for latency but makes "first failure" deterministic.
func (c *Cluster) aggregate(handles []*core.UpdateHandle) *CompositeHandle {
	h := &CompositeHandle{done: make(chan struct{})}
	go func() {
		res := &CompositeResult{Results: make([]core.AckResult, len(handles))}
		for i, sub := range handles {
			<-sub.Done()
			ar, _ := sub.Result()
			res.Results[i] = ar
			if ar.Outcome == core.OutcomeFailed {
				res.Failed++
				if res.Err == nil {
					res.Err = c.shardError(ar)
				}
			} else {
				res.Confirmed++
			}
		}
		h.mu.Lock()
		h.res = res
		h.mu.Unlock()
		close(h.done)
	}()
	return h
}

// shardError normalizes a failed AckResult's cause to a *ShardError
// naming the losing shard, preserving causes that already are one.
func (c *Cluster) shardError(ar core.AckResult) error {
	var se *ShardError
	if errors.As(ar.Err, &se) {
		return ar.Err
	}
	shard := c.smap.Rank(ar.Switch)[0]
	if o, ok := c.Located(ar.Switch); ok {
		shard = o
	}
	return &ShardError{Shard: shard, Switch: ar.Switch, XID: ar.XID, Err: ar.Err}
}
